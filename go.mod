module probkb

go 1.22
