package probkb

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"probkb/internal/obs/journal"
)

// journalConfig is an MPP run with inference: exercises every journal
// event type (profiles with per-segment stats, motions, repairs,
// checkpoints).
func journalConfig() Config {
	return Config{
		Engine:           MPP,
		Segments:         2,
		ApplyConstraints: true,
		RunInference:     true,
		GibbsBurnin:      50,
		GibbsSamples:     100,
		Seed:             7,
	}
}

// TestJournalFileMatchesInMemory checks -journal's file sink records the
// exact event stream the in-memory journal holds, and that the header
// carries the seed and config hash.
func TestJournalFileMatchesInMemory(t *testing.T) {
	cfg := journalConfig()
	cfg.JournalPath = filepath.Join(t.TempDir(), "run.jsonl")
	exp, err := paperKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fromFile, err := journal.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile.Events, exp.Journal().Events()) {
		t.Fatal("file journal differs from in-memory journal")
	}
	h := fromFile.Header
	if h == nil || h.Seed != 7 || h.Segments != 2 || h.ConfigHash != cfg.Hash() {
		t.Fatalf("header = %+v, want seed=7 segments=2 hash=%s", h, cfg.Hash())
	}
	if fromFile.End == nil || fromFile.End.InferredFacts != len(exp.InferredFacts()) {
		t.Fatalf("run_end = %+v", fromFile.End)
	}
	if len(fromFile.Profiles) == 0 || len(fromFile.Checkpoints) == 0 {
		t.Fatalf("journal missing profiles (%d) or checkpoints (%d)",
			len(fromFile.Profiles), len(fromFile.Checkpoints))
	}

	// An MPP run's profiles carry per-segment breakdowns the skew
	// analyzer can use.
	prof := journal.Analyze(fromFile)
	if len(prof.Skew) == 0 {
		t.Fatal("MPP run produced no skew rows")
	}
	if len(prof.Motions) == 0 {
		t.Fatal("MPP run produced no motion events")
	}
}

// TestJournalDeterministic: two same-seed runs differ only in timing, so
// their canonicalized journals are byte-identical — the diffability
// contract the header's seed and config hash promise.
func TestJournalDeterministic(t *testing.T) {
	canon := func() []journal.Event {
		exp, err := paperKB(t).Expand(journalConfig())
		if err != nil {
			t.Fatal(err)
		}
		return journal.Canonicalize(exp.Journal().Events())
	}
	a, b := canon(), canon()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(b[i])
		if string(ja) != string(jb) {
			t.Fatalf("event %d differs:\n%s\n%s", i, ja, jb)
		}
	}
}

// TestConfigHash: the hash pins run-determining knobs and ignores
// outputs like JournalPath.
func TestConfigHash(t *testing.T) {
	base := journalConfig()
	same := base
	same.JournalPath = "/elsewhere/run.jsonl"
	if base.Hash() != same.Hash() {
		t.Fatal("JournalPath changed the config hash")
	}
	reseeded := base
	reseeded.Seed = 8
	if base.Hash() == reseeded.Hash() {
		t.Fatal("seed change kept the config hash")
	}
	reengined := base
	reengined.Engine = SingleNode
	if base.Hash() == reengined.Hash() {
		t.Fatal("engine change kept the config hash")
	}
}
