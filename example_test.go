package probkb_test

import (
	"fmt"
	"sort"

	"probkb"
)

// Example reproduces the paper's introductory inference: Kale is rich in
// calcium, calcium helps prevent osteoporosis, so Kale probably helps
// prevent osteoporosis.
func Example() {
	k := probkb.New()
	k.AddFact("rich_in", "kale", "Food", "calcium", "Nutrient", 0.9)
	k.AddFact("prevents", "calcium", "Nutrient", "osteoporosis", "Disease", 0.8)
	k.MustAddRule("1.1 prevents(x:Food, y:Disease) :- rich_in(x:Food, z:Nutrient), prevents(z:Nutrient, y:Disease)")

	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: false})
	if err != nil {
		panic(err)
	}
	for _, f := range exp.InferredFacts() {
		fmt.Printf("%s(%s, %s)\n", f.Rel, f.X, f.Y)
	}
	// Output:
	// prevents(kale, osteoporosis)
}

// ExampleKB_Expand shows the full pipeline with quality control: the
// ambiguous name "Mandel" (two different people) is removed by the
// functional constraint on born_in before it can produce the bogus
// located_in(Berlin, Baltimore).
func ExampleKB_Expand() {
	k := probkb.New()
	k.AddFact("born_in", "Mandel", "Person", "Berlin", "City", 0.9)
	k.AddFact("born_in", "Mandel", "Person", "Baltimore", "City", 0.9)
	k.AddFact("born_in", "Freud", "Person", "Vienna", "City", 0.9)
	k.MustAddRule("0.5 located_in(x:City, y:City) :- born_in(z:Person, x:City), born_in(z, y:City)")
	if err := k.AddConstraint("born_in", probkb.TypeI, 1); err != nil {
		panic(err)
	}

	exp, err := k.Expand(probkb.Config{
		Engine:           probkb.SingleNode,
		ApplyConstraints: true,
		RunInference:     false,
	})
	if err != nil {
		panic(err)
	}
	bogus := exp.Find("located_in", "Berlin", "Baltimore")
	fmt.Printf("bogus inferences: %d\n", len(bogus))
	// Output:
	// bogus inferences: 0
}

// ExampleExpansion_Explain prints a derivation tree from the factor
// graph's lineage.
func ExampleExpansion_Explain() {
	k := probkb.New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: false})
	if err != nil {
		panic(err)
	}
	why, err := exp.Explain("live_in", "Ruth_Gruber", "Brooklyn", 2)
	if err != nil {
		panic(err)
	}
	fmt.Print(why)
	// Output:
	// NULL live_in(Ruth_Gruber:Writer, Brooklyn:Place), derived by 1 rule application(s):
	//   <- (w=1.40)
	//     0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
}

// ExampleKB_QuerySQL runs one of the paper's grounding queries verbatim
// against the KB's relational representation.
func ExampleKB_QuerySQL() {
	k := probkb.New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")

	res, err := k.QuerySQL(`
		SELECT M1.R1 AS R, T.x AS x, T.y AS y
		FROM M1 JOIN T ON M1.R2 = T.R AND M1.C1 = T.C1 AND M1.C2 = T.C2`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v -> %d row(s)\n", res.Columns, len(res.Rows))
	// Output:
	// [R x y] -> 1 row(s)
}

// ExampleKB_RuleScores ranks rules by their statistical significance,
// the signal rule cleaning thresholds on.
func ExampleKB_RuleScores() {
	k := probkb.New()
	k.AddFact("r1", "a", "A", "b", "B", 0.9)
	k.AddFact("r2", "a", "A", "b", "B", 0.9)
	k.AddFact("r3", "e", "A", "f", "B", 0.9)
	k.MustAddRule("1.0 r2(x:A, y:B) :- r1(x:A, y:B)") // supported by the data
	k.MustAddRule("1.0 r4(x:A, y:B) :- r3(x:A, y:B)") // no support

	scores := k.RuleScores()
	sort.Slice(scores, func(a, b int) bool { return scores[a].Score > scores[b].Score })
	for _, s := range scores {
		fmt.Printf("%d/%d supported\n", s.Hits, s.Matches)
	}
	// Output:
	// 1/1 supported
	// 0/1 supported
}
