GO ?= go

# Baseline for bench-diff (write one with `make bench-baseline`).
BENCH_BASE ?= BENCH_baseline.json

.PHONY: build vet test race check bench bench-baseline bench-diff report-smoke chaos-smoke incident-smoke query-smoke mvcc-smoke ingest-smoke proptest fuzz-smoke crash-smoke crashtest cover-store lint-metrics fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The standard verify loop: what CI (and every PR) should run.
check: build vet lint-metrics race proptest fuzz-smoke crash-smoke report-smoke chaos-smoke incident-smoke query-smoke mvcc-smoke ingest-smoke

# Metric hygiene: every Counter/Gauge/Histogram name is probkb_-prefixed
# snake_case with the right unit suffix and a Help() string (see
# cmd/lint-metrics for the exact rules and the gauge exemption).
lint-metrics:
	$(GO) run ./cmd/lint-metrics .

# Long-mode differential harness: thousands of random plans, each run
# serial, morsel-parallel, and on 1/2/8-segment clusters, results
# compared (plain `go test ./...` already runs the 500-case short mode).
proptest:
	$(GO) test -tags slow -run TestDifferentialLong ./internal/proptest

# 30 seconds of coverage-guided fuzzing per SQL target: the parser
# round-trip property and the distributed-vs-single-node query
# differential. New interesting inputs stay in the build cache; promote
# crashers into internal/sql/testdata/fuzz to pin them.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSQL -fuzztime 30s ./internal/sql
	$(GO) test -run '^$$' -fuzz FuzzDistSQL -fuzztime 30s ./internal/sql
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzIngestBatching -fuzztime 30s ./internal/ingest

# Quick durability gate for the check loop: the store's own tests plus
# the short crash matrix (every write truncated at frame boundaries,
# torn tails, dropped fsyncs — recovered KB compared against the
# prefix-durability oracle).
crash-smoke:
	$(GO) test ./internal/store ./internal/store/crashtest
	@echo "crash-smoke: ok"

# Full crash matrix: exhaustive byte-granularity crash points over the
# snapshot/WAL/checkpoint write schedule, all three corruption modes,
# with shrink-on-failure. Minutes, not seconds — hence behind the slow
# tag like proptest's long mode.
crashtest:
	$(GO) test -tags slow -run TestCrashMatrixLong -v ./internal/store/crashtest

# Coverage gate for the durable-storage engine: fails below 85%
# statement coverage of internal/store.
cover-store:
	@$(GO) test -coverprofile=/tmp/probkb-store-cover.out -coverpkg=./internal/store ./internal/store/... >/dev/null
	@$(GO) tool cover -func=/tmp/probkb-store-cover.out | tail -1
	@$(GO) tool cover -func=/tmp/probkb-store-cover.out | awk '/^total:/ { pct = $$3 + 0; if (pct < 85) { printf "cover-store: %.1f%% < 85%% gate\n", pct; exit 1 } }'

bench:
	$(GO) run ./cmd/probkb-bench -exp all

# Record the current commit's bench times as the regression baseline.
bench-baseline:
	$(GO) run ./cmd/probkb-bench -exp all -json $(BENCH_BASE)

# Re-run the bench and fail (exit nonzero) if any experiment regressed
# >20% (and >5ms absolute) against $(BENCH_BASE).
bench-diff:
	@test -f $(BENCH_BASE) || { echo "bench-diff: no baseline $(BENCH_BASE); run 'make bench-baseline' first" >&2; exit 2; }
	$(GO) run ./cmd/probkb-bench -exp all -json "" -compare $(BENCH_BASE)

# End-to-end smoke test of the run journal: expand a tiny KB with
# journaling on a 2-segment MPP cluster, then assert the report renders
# its key sections (phase breakdown, skew table, convergence timeline).
report-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/kbgen -out "$$tmp/kb" -scale 0.002 >/dev/null && \
	$(GO) run ./cmd/probkb expand -kb "$$tmp/kb" -engine probkb-p -segments 2 \
		-burnin 50 -samples 100 -journal "$$tmp/run.jsonl" >/dev/null && \
	$(GO) run ./cmd/probkb report "$$tmp/run.jsonl" > "$$tmp/report.txt" && \
	grep -q "Phase breakdown" "$$tmp/report.txt" && \
	grep -q "Per-segment skew" "$$tmp/report.txt" && \
	grep -q "Gibbs convergence timeline" "$$tmp/report.txt" && \
	grep -q "Top operators" "$$tmp/report.txt" && \
	echo "report-smoke: ok"

# Chaos smoke test: the same tiny journaled MPP expand, under -race
# with a seeded fault plan injecting segment failures, worker panics,
# and stragglers. Segment retries must absorb every fault: the run has
# to complete cleanly and the rendered report must show the fault-
# injection section.
chaos-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/kbgen -out "$$tmp/kb" -scale 0.002 >/dev/null && \
	$(GO) run -race ./cmd/probkb expand -kb "$$tmp/kb" -engine probkb-p -segments 2 \
		-burnin 50 -samples 100 -journal "$$tmp/run.jsonl" \
		-chaos-seed 1 -chaos-fail 0.15 -chaos-panic 0.05 -chaos-straggle 0.05 \
		-chaos-delay 1ms -retries 5 -retry-backoff 1ms >/dev/null && \
	$(GO) run ./cmd/probkb report "$$tmp/run.jsonl" > "$$tmp/report.txt" && \
	grep -q "Fault injection" "$$tmp/report.txt" && \
	grep -q "injected faults:" "$$tmp/report.txt" && \
	grep -q "segment retries:" "$$tmp/report.txt" && \
	$(GO) test -race -count=1 -run 'TestChaosFaultedExpandNeverSwaps|TestChaosCancelledExpandKeepsReaders' . >/dev/null && \
	echo "chaos-smoke: ok"

# Watchdog/incident smoke test: the end-to-end stuck-query path — a
# live /admin/expand flagged by a watchdog tick (injected clock, no
# sleeps), the incident served from GET /debug/incidents/{id} with its
# goroutine dump and flight-recorder timeline, and the observed query
# left running.
incident-smoke:
	$(GO) test -race -count=1 -run 'TestIncident|TestDebugContentType' ./internal/server
	@echo "incident-smoke: ok"

# Point-query smoke test: server up → GET /query (local grounding +
# neighborhood Gibbs) → cached re-query → /admin/expand invalidates →
# fresh re-query, plus concurrent readers racing the swap, all under
# -race. The library-level differential (local marginals vs the
# full-closure answer) rides along from the root package.
query-smoke:
	$(GO) test -race -count=1 -run 'TestQuerySmoke|TestQueryConcurrentInvalidation|TestQueryMarginalNull|TestQueryObservedAtom|TestQueryBadRequests' ./internal/server
	$(GO) test -race -count=1 -run 'TestQueryLocal|TestKBPointQuery|TestParseAtom' .
	@echo "query-smoke: ok"

# MVCC serving-tier smoke: the epoch manager's unit battery, the
# snapshot-isolation property test (randomized interleavings over the
# epoch manager + COW fork, shrink on failure), the API-level
# differential oracle (pinned-generation answers byte-identical to a
# serial replay while ExtendWith races), and the server's
# read-while-write surface (POST /facts publish, batch point queries,
# admission control, cancelled rebuilds never publishing) — all under
# -race, where a torn read is also a reported data race.
mvcc-smoke:
	$(GO) test -race -count=1 ./internal/epoch
	$(GO) test -race -count=1 -run 'TestSnapshotIsolation|TestReplayMVCCDeterministic|TestShrinkMVCCReduces' ./internal/proptest
	$(GO) test -race -count=1 -run 'TestMVCC' .
	$(GO) test -race -count=1 -run 'TestAdmissionControl|TestFactsPost|TestQueryBatch|TestCancelledExpandDoesNotPublish|TestQueryCancelPinnedReader' ./internal/server
	@echo "mvcc-smoke: ok"

# Streaming-ingest smoke: the pipeline's unit battery (batching
# triggers, error latch, cancellation, concurrent submitters), the
# split-invariance property test with shrinking, the API-level
# differential battery (every batch split of the firehose vs the t=0
# oracle, marginals included), the chaos leg (cancelled absorb
# publishes nothing, WAL recovery + idempotent re-streaming converges),
# and the server's streaming POST /facts contract — all under -race.
ingest-smoke:
	$(GO) test -race -count=1 ./internal/ingest
	$(GO) test -race -count=1 -run 'TestIngestSplitInvariance|TestReplayIngestDeterministic|TestShrinkIngestReduces' ./internal/proptest
	$(GO) test -race -count=1 -run 'TestIngest|TestExtendWithSplitDifferential' .
	$(GO) test -race -count=1 -run 'TestFactsStream|TestFactsPostAdmission' ./internal/server
	@echo "ingest-smoke: ok"

fmt:
	gofmt -l -w .
