GO ?= go

.PHONY: build vet test race check bench fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The standard verify loop: what CI (and every PR) should run.
check: build vet race

bench:
	$(GO) run ./cmd/probkb-bench -exp all

fmt:
	gofmt -l -w .
