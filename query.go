// Point queries: "what is P(Rel(x, y))?" answered by grounding only the
// atom's local proof graph and sampling only its Markov neighborhood,
// instead of paying full-KB closure + global Gibbs per lookup. This is
// the ProPPR / Wick-et-al. counterpart to Expand: approximate on
// purpose (Depth and Radius bound the proof), exact when the bounds
// cover the atom's component, and cheap enough for millions of lookups.
package probkb

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"probkb/internal/engine"
	"probkb/internal/factor"
	"probkb/internal/ground"
	"probkb/internal/infer"
	"probkb/internal/kb"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

func init() {
	obs.Default.Help("probkb_query_local_total",
		"Point queries answered by the local grounding path, by cache outcome.")
	obs.Default.Help("probkb_query_local_seconds",
		"Wall time of cache-miss local point queries (grounding + neighborhood Gibbs).")
}

// ParseAtom parses a query atom of the form "Rel(x, y)".
func ParseAtom(s string) (rel, x, y string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", "", "", fmt.Errorf("probkb: atom must look like Rel(x, y): %q", s)
	}
	args := strings.Split(s[open+1:len(s)-1], ",")
	if len(args) != 2 {
		return "", "", "", fmt.Errorf("probkb: atom needs exactly two arguments: %q", s)
	}
	rel = strings.TrimSpace(s[:open])
	x = strings.TrimSpace(args[0])
	y = strings.TrimSpace(args[1])
	if rel == "" || x == "" || y == "" {
		return "", "", "", fmt.Errorf("probkb: atom has an empty part: %q", s)
	}
	return rel, x, y, nil
}

// PointQuery asks for the marginal of one atom without touching the
// global fixpoint. Zero values mean defaults throughout, so
// PointQuery{Rel: "bornIn", X: "alice", Y: "paris"} is a complete query.
type PointQuery struct {
	Rel  string
	X, Y string
	// Depth bounds the local proof (rule backward-reachability and
	// closure iterations); 0 means ground.DefaultLocalDepth. Radius
	// bounds the evidence ball around {X, Y}; 0 means Depth+1.
	Depth  int
	Radius int
	// MarkovRadius bounds the Gibbs neighborhood around the target in
	// the local factor graph; 0 means the whole connected component.
	MarkovRadius int
	// Burnin and Samples size the sampling run; 0 falls back to the
	// expansion Config, then to the infer defaults (100 / 500).
	// Samples < 0 skips inference: the query reports whether the atom
	// is derivable, with a NaN marginal.
	Burnin  int
	Samples int
	// NoCache bypasses the marginal cache (no read, no store).
	NoCache bool
}

// Marginal is a point query's answer.
type Marginal struct {
	Rel  string
	X, Y string
	// Probability is P(atom): the stored weight for an observed fact,
	// the neighborhood-Gibbs estimate for a derived one, NaN when the
	// atom is unknown/undervable within the bounds or inference was
	// skipped.
	Probability float64
	// Found reports that the atom is observed or derivable within the
	// bounds; Observed that it is a base (evidence) fact.
	Found    bool
	Observed bool
	// Cached reports a marginal-cache hit; Coalesced that this call
	// waited on an identical in-flight query and shares its answer
	// (request batching: N concurrent identical lookups pay for one
	// grounding run). Generation identifies the expansion that computed
	// the answer (bumps on ExtendWith).
	Cached     bool
	Coalesced  bool
	Generation uint64
	// Depth and Radius are the resolved grounding bounds.
	Depth  int
	Radius int
	// Shape of the local computation: evidence ball size, local closure
	// size, neighborhood factor graph, rules in scope, closure
	// iterations, and post-burn-in Gibbs sweeps collected.
	SeedFacts      int
	LocalFacts     int
	LocalVars      int
	LocalFactors   int
	RulesReachable int
	Iterations     int
	Collected      int
	// Elapsed is this call's wall time (cache hits included).
	Elapsed time.Duration
}

// queryKey keys the marginal cache: the interned atom plus every knob
// that changes the answer. The expansion generation is implicit — each
// Expansion owns its cache, so a new generation starts empty.
type queryKey struct {
	rel, x, y       int32
	depth, radius   int
	markov          int
	burnin, samples int
}

// queryCacheLimit bounds the per-expansion marginal cache; past it an
// arbitrary entry is evicted (the workload is point lookups with heavy
// repetition, so any victim works).
const queryCacheLimit = 4096

// queryCall is one in-flight cache-miss computation; concurrent
// identical queries wait on done and share m/err instead of grounding
// the same neighborhood again.
type queryCall struct {
	done chan struct{}
	m    Marginal
	err  error
}

// expansionGen numbers expansions process-wide so cached marginals are
// attributable to the generation that computed them.
var expansionGen atomic.Uint64

// newExpansion is the one constructor every expansion path uses: it
// assigns the generation the point-query cache is keyed by.
func newExpansion(k *kb.KB, res *ground.Result, cfg Config, jr *journal.Writer) *Expansion {
	return &Expansion{
		kb:     k,
		res:    res,
		cfg:    cfg,
		jr:     jr,
		gen:    expansionGen.Add(1),
		qcache: make(map[queryKey]Marginal),
	}
}

// Generation identifies this expansion for cache-freshness checks: a
// new expansion (Expand, ExtendWith, /admin/expand) always has a new
// generation, so a Marginal whose Generation differs is stale.
func (e *Expansion) Generation() uint64 { return e.gen }

// localGrounder lazily builds the query-local grounder over this
// expansion's evidence: the rows whose fact ID predates inference
// (selected by ID, not row position — constraint deletions shift rows).
// Derived facts of *prior* rounds count as evidence here exactly as
// ExtendWith treats them.
func (e *Expansion) localGrounder() *ground.LocalGrounder {
	e.localOnce.Do(func() {
		t := e.res.Facts
		ids := t.Int32Col(kb.TPiI)
		rows := make([]int32, 0, e.res.BaseFacts)
		for r := 0; r < t.NumRows(); r++ {
			if int(ids[r]) < e.res.BaseFacts {
				rows = append(rows, int32(r))
			}
		}
		base := engine.NewTable("T_base", kb.FactsSchema())
		base.AppendRowsFrom(t, rows)
		e.local = ground.NewLocal(e.kb.Rules, base, ground.Options{
			Workers:   e.cfg.EngineWorkers,
			SemiNaive: true,
		})
	})
	return e.local
}

// QueryLocal answers a point query against this expansion's evidence:
// local grounding (rules backward-reachable from the atom, evidence
// ball around its entities) followed by Gibbs over the atom's Markov
// neighborhood. The global fixpoint is never consulted — an Expansion
// produced with RunInference false and even MaxIterations 1 serves
// point queries at full fidelity within the query bounds.
//
// Answers are cached per (atom, bounds, sampling shape); the cache dies
// with the expansion, so ExtendWith invalidates it wholesale. Negative
// answers (unknown or underivable atoms) cache too. Safe for concurrent
// use: symbol resolution is read-only and each query grounds into its
// own tables.
func (e *Expansion) QueryLocal(ctx context.Context, q PointQuery) (Marginal, error) {
	start := time.Now()
	m := Marginal{Rel: q.Rel, X: q.X, Y: q.Y, Generation: e.gen, Probability: math.NaN()}

	depth := q.Depth
	if depth <= 0 {
		depth = ground.DefaultLocalDepth
	}
	radius := q.Radius
	if radius <= 0 {
		radius = depth + 1
	}
	m.Depth, m.Radius = depth, radius

	burnin := q.Burnin
	if burnin <= 0 {
		burnin = e.cfg.GibbsBurnin
	}
	if burnin <= 0 {
		burnin = 100
	}
	samples := q.Samples
	if samples == 0 {
		samples = e.cfg.GibbsSamples
	}
	if samples == 0 {
		samples = 500
	}

	// Resolve the atom read-only: Intern would race with concurrent
	// queries, and an unknown symbol cannot name a derivable fact.
	rel, okR := e.kb.RelDict.Lookup(q.Rel)
	x, okX := e.kb.Entities.Lookup(q.X)
	y, okY := e.kb.Entities.Lookup(q.Y)
	if !okR || !okX || !okY {
		m.Elapsed = time.Since(start)
		obs.Default.Counter("probkb_query_local_total", obs.L("cache", "miss")).Inc()
		return m, nil
	}

	key := queryKey{rel: rel, x: x, y: y, depth: depth, radius: radius,
		markov: q.MarkovRadius, burnin: burnin, samples: samples}
	if q.NoCache {
		return e.queryLocalMiss(ctx, q, m, depth, radius, burnin, samples, start)
	}
	for {
		e.qmu.Lock()
		if hit, ok := e.qcache[key]; ok {
			e.qmu.Unlock()
			hit.Cached = true
			hit.Elapsed = time.Since(start)
			obs.Default.Counter("probkb_query_local_total", obs.L("cache", "hit")).Inc()
			return hit, nil
		}
		c, inflight := e.qflight[key]
		if !inflight {
			// Become the leader: compute, publish to cache and waiters.
			c = &queryCall{done: make(chan struct{})}
			if e.qflight == nil {
				e.qflight = make(map[queryKey]*queryCall)
			}
			e.qflight[key] = c
			e.qmu.Unlock()
			out, err := e.queryLocalMiss(ctx, q, m, depth, radius, burnin, samples, start)
			e.qmu.Lock()
			delete(e.qflight, key)
			if err == nil {
				if e.qcache == nil {
					e.qcache = make(map[queryKey]Marginal)
				}
				if len(e.qcache) >= queryCacheLimit {
					for k := range e.qcache {
						delete(e.qcache, k)
						break
					}
				}
				e.qcache[key] = out
			}
			e.qmu.Unlock()
			c.m, c.err = out, err
			close(c.done)
			return out, err
		}
		e.qmu.Unlock()
		// Coalesce onto the in-flight leader — but honor our own
		// context: a cancelled waiter must not hang on a slow leader.
		select {
		case <-ctx.Done():
			return m, &PartialError{Phase: "query-local", Err: ctx.Err()}
		case <-c.done:
		}
		if c.err != nil {
			// The leader failed (possibly its own cancellation, which
			// says nothing about our query); retry — we will find the
			// cache filled, a new leader to wait on, or lead ourselves.
			continue
		}
		hit := c.m
		hit.Cached, hit.Coalesced = true, true
		hit.Elapsed = time.Since(start)
		obs.Default.Counter("probkb_query_local_total", obs.L("cache", "coalesced")).Inc()
		return hit, nil
	}
}

// queryLocalMiss is the cache-miss path: local grounding, target
// resolution, and neighborhood Gibbs. m arrives pre-filled with the
// atom, generation, and resolved bounds; the caller owns caching and
// coalescing.
func (e *Expansion) queryLocalMiss(ctx context.Context, q PointQuery, m Marginal, depth, radius, burnin, samples int, start time.Time) (Marginal, error) {
	rel, _ := e.kb.RelDict.Lookup(q.Rel)
	x, _ := e.kb.Entities.Lookup(q.X)
	y, _ := e.kb.Entities.Lookup(q.Y)

	ctx, span := obs.StartSpan(ctx, "query-local")
	defer span.End()
	aq := obs.QueryFrom(ctx)
	if aq != nil {
		aq.SetPhase("ground-local")
	}

	lres, err := e.localGrounder().Ground(ctx, ground.LocalQuery{
		Rel: rel, X: x, Y: y, Depth: depth, Radius: radius,
	})
	if err != nil {
		if isCtxErr(err) {
			return m, &PartialError{Phase: "query-local", Err: err}
		}
		return m, err
	}
	m.SeedFacts = lres.SeedFacts
	m.RulesReachable = lres.RulesReachable
	m.LocalFacts = lres.Facts.NumRows()
	m.Iterations = lres.Iterations
	span.SetAttr("seed_facts", m.SeedFacts)
	span.SetAttr("local_facts", m.LocalFacts)

	// Prefer an observed row among the matches: evidence needs no
	// sampling, its weight is the answer. (Local grounding never runs
	// the constraint hook, so seed rows stay at positions < BaseFacts.)
	targetRow := -1
	for _, r := range lres.TargetRows {
		if r < lres.BaseFacts {
			targetRow, m.Observed = r, true
			break
		}
	}
	if targetRow < 0 && len(lres.TargetRows) > 0 {
		targetRow = lres.TargetRows[0]
	}

	switch {
	case targetRow < 0:
		// Neither observed nor derivable within the bounds: a cacheable
		// negative answer.
	case m.Observed:
		m.Found = true
		m.Probability = probability(lres.Facts.Float64Col(kb.TPiW)[targetRow])
	case q.Samples < 0:
		// Derivable, but inference skipped by request.
		m.Found = true
	default:
		m.Found = true
		if aq != nil {
			aq.SetPhase("infer-local")
		}
		g, gerr := factor.FromResult(lres.Result)
		if gerr != nil {
			return m, gerr
		}
		id := lres.Facts.Int32Col(kb.TPiI)[targetRow]
		v, ok := g.VarOf(id)
		if !ok {
			return m, fmt.Errorf("probkb: query target fact %d has no local graph variable", id)
		}
		iopts := inferOptions(e.cfg)
		iopts.Burnin, iopts.Samples = burnin, samples
		iopts.OnIteration = nil
		inres, ierr := infer.LocalMarginalContext(ctx, g, v, q.MarkovRadius, iopts)
		m.LocalVars, m.LocalFactors, m.Collected = inres.Vars, inres.Factors, inres.Collected
		if inres.Collected > 0 {
			m.Probability = inres.Probability
		}
		if ierr != nil {
			if isCtxErr(ierr) {
				return m, &PartialError{Phase: "query-local", Err: ierr}
			}
			return m, ierr
		}
	}

	m.Elapsed = time.Since(start)
	obs.Default.Counter("probkb_query_local_total", obs.L("cache", "miss")).Inc()
	obs.Default.Histogram("probkb_query_local_seconds", nil).Observe(m.Elapsed.Seconds())
	var p *float64
	if !math.IsNaN(m.Probability) {
		p = &m.Probability
	}
	e.jr.Emit(journal.TypeQueryLocal, journal.QueryLocal{
		Rel: q.Rel, X: q.X, Y: q.Y,
		Depth: depth, Radius: radius,
		Found: m.Found, Observed: m.Observed,
		SeedFacts: m.SeedFacts, LocalFacts: m.LocalFacts,
		LocalVars: m.LocalVars, LocalFactors: m.LocalFactors,
		Rules: m.RulesReachable, Collected: m.Collected,
		Probability: p,
		Seconds:     m.Elapsed.Seconds(),
	})
	return m, nil
}

// PointQuery answers a point query directly against a KB, with no
// prior Expand: the KB's facts are the evidence, the local grounding
// does all derivation. cfg supplies sampling defaults (Seed,
// GibbsBurnin, GibbsSamples, GibbsParallel, EngineWorkers); engine
// choice and iteration caps are ignored — locality comes from the
// query bounds.
func (k *KB) PointQuery(ctx context.Context, q PointQuery, cfg Config) (Marginal, error) {
	res := &ground.Result{
		Facts:     k.inner.FactsTable(),
		BaseFacts: len(k.inner.Facts),
		Converged: true,
	}
	return newExpansion(k.inner, res, cfg, journal.New()).QueryLocal(ctx, q)
}
