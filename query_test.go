package probkb

import (
	"context"
	"math"
	"testing"
)

func TestParseAtom(t *testing.T) {
	rel, x, y, err := ParseAtom("  born_in( Ruth_Gruber , Brooklyn ) ")
	if err != nil || rel != "born_in" || x != "Ruth_Gruber" || y != "Brooklyn" {
		t.Fatalf("got (%q, %q, %q, %v)", rel, x, y, err)
	}
	for _, bad := range []string{"", "born_in", "born_in()", "born_in(x)", "born_in(x, y, z)",
		"(x, y)", "born_in(x, y", "born_in(, y)", "born_in(x, )"} {
		if _, _, _, err := ParseAtom(bad); err == nil {
			t.Errorf("ParseAtom(%q) accepted", bad)
		}
	}
}

// TestQueryLocalDifferential is the acceptance gate of the point-query
// path: on a small KB, the local marginal (bounds generous enough to
// cover the whole proof graph) must agree with the full-closure global
// Gibbs answer within Monte Carlo tolerance. Both runs use 8000
// collected sweeps, so 0.05 is many sigma.
func TestQueryLocalDifferential(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{
		Engine: SingleNode, RunInference: true,
		GibbsBurnin: 500, GibbsSamples: 8000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	inferred := exp.InferredFacts()
	if len(inferred) != 3 {
		t.Fatalf("inferred facts = %d, want 3", len(inferred))
	}
	for _, f := range inferred {
		m, err := exp.QueryLocal(context.Background(), PointQuery{
			Rel: f.Rel, X: f.X, Y: f.Y,
			Depth: 5, Radius: 6, Burnin: 500, Samples: 8000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !m.Found || m.Observed {
			t.Fatalf("%s(%s, %s): found=%v observed=%v, want a derived atom", f.Rel, f.X, f.Y, m.Found, m.Observed)
		}
		if d := math.Abs(m.Probability - f.Probability); d > 0.05 {
			t.Errorf("%s(%s, %s): local %v vs full-closure %v (|Δ|=%v)",
				f.Rel, f.X, f.Y, m.Probability, f.Probability, d)
		}
		if m.SeedFacts != 2 || m.LocalFacts != 5 {
			t.Errorf("%s(%s, %s): local shape %d seed / %d facts, want 2 / 5",
				f.Rel, f.X, f.Y, m.SeedFacts, m.LocalFacts)
		}
	}
}

func TestQueryLocalObserved(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	m, err := exp.QueryLocal(context.Background(), PointQuery{Rel: "born_in", X: "Ruth_Gruber", Y: "New_York_City"})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found || !m.Observed {
		t.Fatalf("observed atom: %+v", m)
	}
	if m.Probability != 0.96 {
		t.Fatalf("observed probability = %v, want the stored 0.96", m.Probability)
	}
	if m.Collected != 0 {
		t.Fatalf("observed atom sampled %d sweeps, want none", m.Collected)
	}
}

func TestQueryLocalUnknownAtom(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	m, err := exp.QueryLocal(context.Background(), PointQuery{Rel: "born_in", X: "nobody", Y: "nowhere"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Found || !math.IsNaN(m.Probability) {
		t.Fatalf("unknown atom: %+v", m)
	}
}

func TestQueryLocalSkipInference(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	m, err := exp.QueryLocal(context.Background(), PointQuery{
		Rel: "located_in", X: "Brooklyn", Y: "New_York_City", Samples: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found || m.Observed {
		t.Fatalf("derivable atom with samples=-1: %+v", m)
	}
	if !math.IsNaN(m.Probability) {
		t.Fatalf("skipped inference still produced a marginal: %v", m.Probability)
	}
}

func TestQueryLocalCache(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := PointQuery{Rel: "located_in", X: "Brooklyn", Y: "New_York_City", Burnin: 50, Samples: 200}
	first, err := exp.QueryLocal(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query reported a cache hit")
	}
	second, err := exp.QueryLocal(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical query missed the cache")
	}
	if second.Probability != first.Probability || second.Generation != first.Generation {
		t.Fatalf("cache changed the answer: %+v vs %+v", second, first)
	}
	// Different knobs are different cache entries.
	q2 := q
	q2.Samples = 300
	third, err := exp.QueryLocal(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different sampling shape reused a cached answer")
	}
	// NoCache bypasses both read and store.
	q3 := q
	q3.NoCache = true
	fourth, err := exp.QueryLocal(context.Background(), q3)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Fatal("NoCache query reported a cache hit")
	}
}

// TestQueryLocalExtendWithInvalidates: an ExtendWith round produces a
// new generation whose queries never see the old cache — including
// cached negative answers that the new evidence overturns.
func TestQueryLocalExtendWithInvalidates(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: true, GibbsBurnin: 50, GibbsSamples: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := PointQuery{Rel: "live_in", X: "Freud", Y: "Vienna", Burnin: 50, Samples: 200}
	stale, err := exp.QueryLocal(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Found {
		t.Fatalf("atom derivable before its evidence arrived: %+v", stale)
	}

	next, err := exp.ExtendWith([]Fact{{
		Rel: "born_in", X: "Freud", XClass: "Writer", Y: "Vienna", YClass: "Place", Probability: 0.9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Generation() == exp.Generation() {
		t.Fatalf("ExtendWith kept generation %d", exp.Generation())
	}
	fresh, err := next.QueryLocal(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("new generation served the old generation's cached answer")
	}
	if !fresh.Found || math.IsNaN(fresh.Probability) {
		t.Fatalf("atom still unknown after its evidence arrived: %+v", fresh)
	}
	if fresh.Generation == stale.Generation {
		t.Fatal("answers from different expansions share a generation")
	}
	// The old expansion stays frozen at its contents: the atom remains
	// underivable there even though the shared dictionaries now know
	// its symbols.
	again, err := exp.QueryLocal(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if again.Found {
		t.Fatalf("old generation's answer changed: %+v", again)
	}
}

func TestKBPointQuery(t *testing.T) {
	k := paperKB(t)
	m, err := k.PointQuery(context.Background(), PointQuery{
		Rel: "located_in", X: "Brooklyn", Y: "New_York_City", Burnin: 100, Samples: 500,
	}, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found || m.Observed {
		t.Fatalf("point query without Expand: %+v", m)
	}
	if math.IsNaN(m.Probability) || m.Probability <= 0 || m.Probability >= 1 {
		t.Fatalf("probability = %v, want (0,1)", m.Probability)
	}
}
