package probkb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"probkb/internal/factor"
	"probkb/internal/infer"
	"probkb/internal/kb"
	"probkb/internal/obs/journal"
)

// chaosFaults is the fault plan the equivalence tests run under: heavy
// enough that faults actually land on the paper KB's handful of segment
// tasks, light enough that an 8-retry budget always absorbs them.
func chaosFaults() *FaultConfig {
	return &FaultConfig{
		Seed:          7,
		FailRate:      0.25,
		PanicRate:     0.1,
		StraggleRate:  0.05,
		StraggleDelay: 100 * time.Microsecond,
	}
}

// TestChaosEquivalence runs the same MPP expansion twice — once clean,
// once under a seeded fault plan with segment retries — and checks the
// tentpole's determinism contract: identical facts and stats, and
// byte-identical canonical journals (fault/retry events are
// nondeterministically interleaved bookkeeping, so Canonicalize drops
// them and renumbers).
func TestChaosEquivalence(t *testing.T) {
	dir := t.TempDir()

	clean := journalConfig()
	clean.JournalPath = filepath.Join(dir, "clean.jsonl")
	expClean, err := paperKB(t).Expand(clean)
	if err != nil {
		t.Fatal(err)
	}

	faulted := journalConfig()
	faulted.JournalPath = filepath.Join(dir, "faulted.jsonl")
	faulted.Faults = chaosFaults()
	faulted.SegmentRetries = 8
	faulted.RetryBackoff = 100 * time.Microsecond
	expFaulted, err := paperKB(t).Expand(faulted)
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}

	if !reflect.DeepEqual(expClean.Facts(), expFaulted.Facts()) {
		t.Errorf("facts differ between clean and faulted runs:\nclean:   %v\nfaulted: %v",
			expClean.Facts(), expFaulted.Facts())
	}
	// Wall-clock fields legitimately differ (retries cost time); every
	// logical field must not.
	stClean, stFaulted := expClean.Stats(), expFaulted.Stats()
	stClean.LoadTime, stClean.GroundingTime, stClean.FactorTime, stClean.InferenceTime = 0, 0, 0, 0
	stFaulted.LoadTime, stFaulted.GroundingTime, stFaulted.FactorTime, stFaulted.InferenceTime = 0, 0, 0, 0
	if !reflect.DeepEqual(stClean, stFaulted) {
		t.Errorf("stats differ:\nclean:   %+v\nfaulted: %+v", stClean, stFaulted)
	}

	runClean, err := journal.ReadFile(clean.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	runFaulted, err := journal.ReadFile(faulted.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	// The faulted run must actually have exercised the fault path …
	if len(runFaulted.Faults) == 0 {
		t.Fatal("fault plan injected nothing; raise the rates or change the seed")
	}
	if len(runFaulted.Retries) == 0 {
		t.Fatal("no segment retries recorded despite injected faults")
	}
	// … and Faults/SegmentRetries are excluded from the config hash, so
	// both journals describe the same logical run.
	if runClean.Header.ConfigHash != runFaulted.Header.ConfigHash {
		t.Errorf("config hashes differ: clean %q faulted %q",
			runClean.Header.ConfigHash, runFaulted.Header.ConfigHash)
	}
	canonClean := journal.Canonicalize(runClean.Events)
	canonFaulted := journal.Canonicalize(runFaulted.Events)
	if !reflect.DeepEqual(canonClean, canonFaulted) {
		n := len(canonClean)
		if len(canonFaulted) < n {
			n = len(canonFaulted)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(canonClean[i], canonFaulted[i]) {
				t.Fatalf("canonical journals diverge at event %d:\nclean:   %+v\nfaulted: %+v",
					i, canonClean[i], canonFaulted[i])
			}
		}
		t.Fatalf("canonical journals differ in length: clean %d, faulted %d",
			len(canonClean), len(canonFaulted))
	}
}

// TestExactOracleUnderFaults checks that a faulted-but-retried MPP run
// still agrees with exact inference: the Gibbs marginals written into
// the expanded facts stay close to the brute-force marginals of the
// same factor graph.
func TestExactOracleUnderFaults(t *testing.T) {
	cfg := journalConfig()
	cfg.GibbsBurnin = 300
	cfg.GibbsSamples = 6000
	cfg.Faults = chaosFaults()
	cfg.SegmentRetries = 8
	cfg.RetryBackoff = 100 * time.Microsecond
	exp, err := paperKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}

	g, err := factor.FromResult(exp.res)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := infer.Exact(g)
	if err != nil {
		t.Fatal(err)
	}

	ids := exp.res.Facts.Int32Col(kb.TPiI)
	ws := exp.res.Facts.Float64Col(kb.TPiW)
	checked := 0
	// Only inferred facts (rows past BaseFacts) carry Gibbs marginals;
	// observed facts keep their extraction confidence.
	for r := exp.res.BaseFacts; r < exp.res.Facts.NumRows(); r++ {
		v, ok := g.VarOf(ids[r])
		if !ok {
			continue
		}
		if math.IsNaN(ws[r]) {
			t.Fatalf("fact %d has NaN probability after inference", ids[r])
		}
		if diff := math.Abs(ws[r] - exact[v]); diff > 0.06 {
			t.Errorf("fact %d: Gibbs %.4f vs exact %.4f (diff %.4f)", ids[r], ws[r], exact[v], diff)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no facts mapped to factor-graph variables; oracle comparison checked nothing")
	}
}

// cancelDuringGrounding cancels the run from the first grounding
// iteration's callback and asserts the PartialError contract for the
// "ground" phase.
func cancelDuringGrounding(t *testing.T, cfg Config) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnIteration = func(st IterationStats) {
		if st.Iteration >= 1 {
			cancel()
		}
	}
	start := time.Now()
	exp, err := paperKB(t).ExpandContext(ctx, cfg)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v, want < 1s", elapsed)
	}
	if exp != nil {
		t.Fatal("interrupted expansion also returned a non-nil result")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PartialError", err, err)
	}
	if pe.Phase != "ground" {
		t.Fatalf("phase = %q, want %q", pe.Phase, "ground")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not unwrap to context.Canceled", err)
	}
	if pe.Partial == nil {
		t.Fatal("PartialError.Partial is nil")
	}
	st := pe.Partial.Stats()
	if st.Converged {
		t.Fatal("interrupted grounding reported Converged")
	}
	if st.TotalFacts < st.BaseFacts || st.BaseFacts == 0 {
		t.Fatalf("partial stats look empty: %+v", st)
	}
}

func TestCancelMidGrounding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunInference = false
	cancelDuringGrounding(t, cfg)
}

func TestCancelMidGroundingMPP(t *testing.T) {
	cfg := journalConfig()
	cfg.RunInference = false
	cancelDuringGrounding(t, cfg)
}

// TestCancelMidGibbs cancels during sampling and checks the "infer"
// phase contract: the partial expansion carries marginals estimated
// from the sweeps collected before the cut, and the cut is prompt even
// though millions of sweeps remain.
func TestCancelMidGibbs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.GibbsBurnin = 20
	cfg.GibbsSamples = 50_000_000
	cfg.OnGibbsSweep = func(sw GibbsSweep) {
		if sw.Sweep >= cfg.GibbsBurnin+40 {
			cancel()
		}
	}
	start := time.Now()
	_, err := paperKB(t).ExpandContext(ctx, cfg)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v, want < 1s", elapsed)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PartialError", err, err)
	}
	if pe.Phase != "infer" {
		t.Fatalf("phase = %q, want %q", pe.Phase, "infer")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not unwrap to context.Canceled", err)
	}
	st := pe.Partial.Stats()
	if st.Converged {
		t.Fatal("interrupted inference reported Converged")
	}
	if st.InferredFacts == 0 {
		t.Fatal("partial expansion has no inferred facts; grounding should have finished")
	}
	// Partial marginals from the collected sweeps must have been applied.
	withMarginal := 0
	for _, f := range pe.Partial.InferredFacts() {
		if !math.IsNaN(f.Probability) {
			if f.Probability < 0 || f.Probability > 1 {
				t.Fatalf("partial marginal out of range: %v", f)
			}
			withMarginal++
		}
	}
	if withMarginal == 0 {
		t.Fatal("no inferred fact carries a partial marginal")
	}
}

// TestDeadlineMidGibbs drives the same path with a deadline instead of
// an explicit cancel: the error must unwrap to DeadlineExceeded.
func TestDeadlineMidGibbs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.GibbsBurnin = 20
	cfg.GibbsSamples = 50_000_000
	start := time.Now()
	_, err := paperKB(t).ExpandContext(ctx, cfg)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PartialError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, does not unwrap to context.DeadlineExceeded", err)
	}
}

// --- MVCC under chaos: failed builds never reach readers ---

// raceChaosReaders hammers the serving generation's full query surface
// (observeGeneration, from mvcc_test.go) from n goroutines until the
// returned func is called, which stops them and reports the first
// divergence from want. Under -race this doubles as a data-race probe:
// the faulted/cancelled rebuild must write nothing these readers touch.
func raceChaosReaders(t *testing.T, exp *Expansion, want []byte, n int) func() error {
	t.Helper()
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := observeGeneration(t, exp); string(got) != string(want) {
					select {
					case errCh <- fmt.Errorf("serving generation drifted during a doomed rebuild:\n got %s\nwant %s", got, want):
					default:
					}
					return
				}
			}
		}()
	}
	return func() error {
		close(stop)
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}
}

// TestChaosFaultedExpandNeverSwaps serves a generation to racing
// readers, then rebuilds from that very generation's KB under a lethal
// fault plan (every segment task fails, zero retries). The rebuild must
// die, return nothing publishable, and leave the pinned readers'
// answers byte-identical throughout — the "swap never occurs" half of
// the MVCC publication contract, under injected faults rather than a
// clean cancel.
func TestChaosFaultedExpandNeverSwaps(t *testing.T) {
	clean := journalConfig()
	clean.RunInference = false
	exp, err := paperKB(t).Expand(clean)
	if err != nil {
		t.Fatal(err)
	}
	before := observeGeneration(t, exp)
	check := raceChaosReaders(t, exp, before, 4)

	lethal := journalConfig()
	lethal.RunInference = false
	lethal.Faults = &FaultConfig{Seed: 1, FailRate: 1}
	lethal.SegmentRetries = 0
	// Rebuild from the generation being served, exactly like a server
	// /admin/expand against the pinned snapshot.
	expFail, err := exp.KB().ExpandContext(context.Background(), lethal)
	if err == nil {
		t.Fatal("lethal fault plan did not kill the rebuild")
	}
	if expFail != nil {
		t.Fatal("failed rebuild returned a publishable expansion")
	}

	if rerr := check(); rerr != nil {
		t.Fatal(rerr)
	}
	if got := observeGeneration(t, exp); string(got) != string(before) {
		t.Fatalf("faulted rebuild mutated the serving generation:\n got %s\nwant %s", got, before)
	}

	// The machinery recovers: the same rebuild with the faults gone
	// succeeds from the untouched generation.
	ok := journalConfig()
	ok.RunInference = false
	if _, err := exp.KB().ExpandContext(context.Background(), ok); err != nil {
		t.Fatalf("clean rebuild after the faulted one failed: %v", err)
	}
}

// TestChaosCancelledExpandKeepsReaders is the cancellation variant:
// a rebuild from the served generation is cancelled mid-grounding
// (PartialError, phase "ground") while readers race; the served
// answers must not move and the partial result is never the serving
// generation's problem.
func TestChaosCancelledExpandKeepsReaders(t *testing.T) {
	clean := journalConfig()
	clean.RunInference = false
	exp, err := paperKB(t).Expand(clean)
	if err != nil {
		t.Fatal(err)
	}
	before := observeGeneration(t, exp)
	check := raceChaosReaders(t, exp, before, 4)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	doomed := journalConfig()
	doomed.RunInference = false
	doomed.OnIteration = func(st IterationStats) {
		if st.Iteration >= 1 {
			cancel()
		}
	}
	expFail, err := exp.KB().ExpandContext(ctx, doomed)
	if expFail != nil {
		t.Fatal("cancelled rebuild returned a publishable expansion")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PartialError", err, err)
	}
	if pe.Phase != "ground" {
		t.Fatalf("phase = %q, want %q", pe.Phase, "ground")
	}

	if rerr := check(); rerr != nil {
		t.Fatal(rerr)
	}
	if got := observeGeneration(t, exp); string(got) != string(before) {
		t.Fatalf("cancelled rebuild mutated the serving generation:\n got %s\nwant %s", got, before)
	}
}
