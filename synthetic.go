package probkb

import (
	"probkb/internal/kb"
	"probkb/internal/synth"
)

// Synthesize generates a ReVerb-Sherlock-like knowledge base with a
// planted ground truth (see DESIGN.md for the construction): web-scale
// extraction noise — wrong facts, unsound rules, ambiguous names — over
// a hidden true world. scale multiplies the paper's corpus sizes (407K
// facts at scale 1); runs are deterministic in seed.
//
// The returned Truth judges any fact against the hidden world, replacing
// the paper's human evaluators.
func Synthesize(scale float64, seed int64) (*KB, *Truth, error) {
	c, err := synth.ReVerbSherlock(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return &KB{inner: c.KB}, &Truth{corpus: c}, nil
}

// Truth is the oracle over a synthesized KB's hidden world.
type Truth struct {
	corpus *synth.Corpus
}

// Judge reports whether a symbolic fact is true in the hidden world.
func (t *Truth) Judge(f Fact) bool {
	k := t.corpus.KB
	rel, ok := k.RelDict.Lookup(f.Rel)
	if !ok {
		return false
	}
	x, ok := k.Entities.Lookup(f.X)
	if !ok {
		return false
	}
	y, ok := k.Entities.Lookup(f.Y)
	if !ok {
		return false
	}
	xc, ok := k.Classes.Lookup(f.XClass)
	if !ok {
		return false
	}
	yc, ok := k.Classes.Lookup(f.YClass)
	if !ok {
		return false
	}
	return t.corpus.Oracle.Judge(kb.Key{Rel: rel, X: x, XClass: xc, Y: y, YClass: yc})
}

// Precision judges an expansion's inferred facts and returns the
// fraction that are true, with the counts.
func (t *Truth) Precision(e *Expansion) (precision float64, correct, total int) {
	for _, f := range e.InferredFacts() {
		total++
		if t.Judge(f) {
			correct++
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return float64(correct) / float64(total), correct, total
}

// WorldSize returns the number of facts in the hidden true world.
func (t *Truth) WorldSize() int { return t.corpus.TrueWorldSize }
