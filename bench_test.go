// Benchmarks regenerating the measurements behind every table and figure
// of the paper's evaluation (Section 6), plus ablations of the design
// choices DESIGN.md calls out. The printable experiment reports live in
// internal/bench and cmd/probkb-bench; these testing.B wrappers measure
// the same code paths at a fixed small scale so `go test -bench=.` stays
// fast and comparable across machines.
//
// Index (see DESIGN.md §3 for the experiment table):
//
//	BenchmarkTable3_*     — load / Query 1 / Query 2 per system
//	BenchmarkFig4_*       — M3 join plan with vs without views
//	BenchmarkFig6a_*      — rule-count sweep (S1)
//	BenchmarkFig6b_*      — fact-count sweep (S2)
//	BenchmarkFig6c_*      — MPP variants (S2, Queries 1+2)
//	BenchmarkFig7a_*      — quality-control configurations
//	BenchmarkGibbs_*      — marginal inference (sequential vs chromatic)
//	BenchmarkAblation_*   — design-choice ablations
package probkb_test

import (
	"fmt"
	"sync"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/factor"
	"probkb/internal/ground"
	"probkb/internal/infer"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/mpp"
	"probkb/internal/quality"
	"probkb/internal/synth"
)

const (
	benchScale = 0.01
	benchSeed  = 42
	benchSegs  = 4
)

var (
	corpusOnce sync.Once
	corpusVal  *synth.Corpus
)

// benchCorpus generates (once) the shared benchmark corpus.
func benchCorpus(b *testing.B) *synth.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		c, err := synth.ReVerbSherlock(benchScale, benchSeed)
		if err != nil {
			panic(err)
		}
		corpusVal = c
	})
	return corpusVal
}

// preCleaned returns a constraint-pre-cleaned clone (the Table 3 setup).
func preCleaned(b *testing.B) *kb.KB {
	b.Helper()
	k := benchCorpus(b).KB.Clone()
	quality.PreClean(k)
	return k
}

// ---------------------------------------------------------------------------
// Table 3: load, Query 1 (4 iterations), Query 2

func BenchmarkTable3_Load_ProbKB(b *testing.B) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := k.FactsTable()
		_ = t.NumRows()
	}
}

func BenchmarkTable3_Load_TuffyT(b *testing.B) {
	// Tuffy's bulkload includes one predicate table per relation; measure
	// it through a 0-iteration grounding run.
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := ground.NewTuffy(k, ground.Options{MaxIterations: 1, SkipFactors: true})
		if err != nil {
			b.Fatal(err)
		}
		res, err := g.Ground()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LoadTime.Nanoseconds()), "load-ns/op")
	}
}

func benchGroundQuery1(b *testing.B, sys func(k *kb.KB) (*ground.Result, error)) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sys(k)
		if err != nil {
			b.Fatal(err)
		}
		if res.Facts.NumRows() == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable3_Query1_ProbKB(b *testing.B) {
	benchGroundQuery1(b, func(k *kb.KB) (*ground.Result, error) {
		return ground.Ground(k, ground.Options{MaxIterations: 4, SkipFactors: true})
	})
}

func BenchmarkTable3_Query1_ProbKBp(b *testing.B) {
	benchGroundQuery1(b, func(k *kb.KB) (*ground.Result, error) {
		g, err := ground.NewMPP(k, ground.Options{MaxIterations: 4, SkipFactors: true}, mpp.NewCluster(benchSegs), true)
		if err != nil {
			return nil, err
		}
		return g.Ground()
	})
}

func BenchmarkTable3_Query1_TuffyT(b *testing.B) {
	benchGroundQuery1(b, func(k *kb.KB) (*ground.Result, error) {
		g, err := ground.NewTuffy(k, ground.Options{MaxIterations: 4, SkipFactors: true})
		if err != nil {
			return nil, err
		}
		return g.Ground()
	})
}

func BenchmarkTable3_Query2_ProbKB(b *testing.B) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ground.Ground(k, ground.Options{MaxIterations: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.FactorTime.Nanoseconds()), "query2-ns/op")
	}
}

// ---------------------------------------------------------------------------
// Figure 4: the M3 grounding join with and without redistributed views

func benchFig4(b *testing.B, useViews bool) {
	c := benchCorpus(b)
	k, err := synth.S2(c, len(c.KB.Facts)+20000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ground.NewMPP(k, ground.Options{}, mpp.NewCluster(benchSegs), useViews)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Load(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := g.AtomsPlan(mln.P3)
		if _, err := plan.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_M3Join_WithViews(b *testing.B)    { benchFig4(b, true) }
func BenchmarkFig4_M3Join_WithoutViews(b *testing.B) { benchFig4(b, false) }

// ---------------------------------------------------------------------------
// Figure 6(a): rule-count sweep (first grounding iteration)

func benchFig6a(b *testing.B, nRules int, sysName string) {
	c := benchCorpus(b)
	k, err := synth.S1(c, nRules, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := ground.Options{MaxIterations: 1, SkipFactors: true}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var res *ground.Result
		var err error
		switch sysName {
		case "probkb":
			res, err = ground.Ground(k, opts)
		case "probkb-p":
			var g *ground.MPPGrounder
			if g, err = ground.NewMPP(k, opts, mpp.NewCluster(benchSegs), true); err == nil {
				res, err = g.Ground()
			}
		case "tuffy":
			var g *ground.TuffyGrounder
			if g, err = ground.NewTuffy(k, opts); err == nil {
				res, err = g.Ground()
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkFig6a_Rules1000_ProbKB(b *testing.B)  { benchFig6a(b, 1000, "probkb") }
func BenchmarkFig6a_Rules1000_ProbKBp(b *testing.B) { benchFig6a(b, 1000, "probkb-p") }
func BenchmarkFig6a_Rules1000_TuffyT(b *testing.B)  { benchFig6a(b, 1000, "tuffy") }
func BenchmarkFig6a_Rules5000_ProbKB(b *testing.B)  { benchFig6a(b, 5000, "probkb") }
func BenchmarkFig6a_Rules5000_ProbKBp(b *testing.B) { benchFig6a(b, 5000, "probkb-p") }
func BenchmarkFig6a_Rules5000_TuffyT(b *testing.B)  { benchFig6a(b, 5000, "tuffy") }

// ---------------------------------------------------------------------------
// Figure 6(b)/(c): fact-count sweep

func benchFig6bc(b *testing.B, nFacts int, sysName string, withFactors bool) {
	c := benchCorpus(b)
	k, err := synth.S2(c, nFacts, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := ground.Options{MaxIterations: 1, SkipFactors: !withFactors}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		switch sysName {
		case "probkb":
			_, err = ground.Ground(k, opts)
		case "probkb-p":
			var g *ground.MPPGrounder
			if g, err = ground.NewMPP(k, opts, mpp.NewCluster(benchSegs), true); err == nil {
				_, err = g.Ground()
			}
		case "probkb-pn":
			var g *ground.MPPGrounder
			if g, err = ground.NewMPP(k, opts, mpp.NewCluster(benchSegs), false); err == nil {
				_, err = g.Ground()
			}
		case "tuffy":
			var g *ground.TuffyGrounder
			if g, err = ground.NewTuffy(k, opts); err == nil {
				_, err = g.Ground()
			}
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b_Facts20K_ProbKB(b *testing.B)  { benchFig6bc(b, 20000, "probkb", false) }
func BenchmarkFig6b_Facts20K_ProbKBp(b *testing.B) { benchFig6bc(b, 20000, "probkb-p", false) }
func BenchmarkFig6b_Facts20K_TuffyT(b *testing.B)  { benchFig6bc(b, 20000, "tuffy", false) }

func BenchmarkFig6c_Facts20K_ProbKB(b *testing.B)   { benchFig6bc(b, 20000, "probkb", true) }
func BenchmarkFig6c_Facts20K_ProbKBpn(b *testing.B) { benchFig6bc(b, 20000, "probkb-pn", true) }
func BenchmarkFig6c_Facts20K_ProbKBp(b *testing.B)  { benchFig6bc(b, 20000, "probkb-p", true) }

// ---------------------------------------------------------------------------
// Figure 7(a): quality-control configurations

func benchFig7a(b *testing.B, constraints bool, theta float64) {
	c := benchCorpus(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := c.KB
		if theta < 1 {
			work = quality.CleanRules(work, theta)
		} else {
			work = work.Clone()
		}
		opts := ground.Options{MaxIterations: 4, SkipFactors: true}
		if constraints {
			quality.PreClean(work)
			opts.ConstraintHook = quality.NewChecker(work).Hook()
		}
		if _, err := ground.Ground(work, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_NoQC(b *testing.B)    { benchFig7a(b, false, 1) }
func BenchmarkFig7a_RC20(b *testing.B)    { benchFig7a(b, false, 0.2) }
func BenchmarkFig7a_SC(b *testing.B)      { benchFig7a(b, true, 1) }
func BenchmarkFig7a_SC_RC20(b *testing.B) { benchFig7a(b, true, 0.2) }

// BenchmarkFig7b_Categorize measures the violation taxonomy pass.
func BenchmarkFig7b_Categorize(b *testing.B) {
	c := benchCorpus(b)
	res, err := ground.Ground(c.KB, ground.Options{MaxIterations: 3, SkipFactors: true})
	if err != nil {
		b.Fatal(err)
	}
	checker := quality.NewChecker(c.KB)
	viol := checker.Violations(res.Facts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Oracle.CategorizeAll(viol, res.Facts, res.BaseFacts)
	}
}

// ---------------------------------------------------------------------------
// Marginal inference

func benchGibbs(b *testing.B, parallel bool) {
	k := preCleaned(b)
	res, err := ground.Ground(k, ground.Options{MaxIterations: 4})
	if err != nil {
		b.Fatal(err)
	}
	g, err := factor.FromResult(res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		infer.Marginals(g, infer.Options{Burnin: 20, Samples: 100, Seed: 1, Parallel: parallel})
	}
}

func BenchmarkGibbs_Sequential(b *testing.B) { benchGibbs(b, false) }
func BenchmarkGibbs_Chromatic(b *testing.B)  { benchGibbs(b, true) }

// ---------------------------------------------------------------------------
// Ablations

// BenchmarkAblation_IntKeys / _StringKeys quantify dictionary encoding:
// the same build-and-probe match counting with int32 keys vs raw string
// keys. Both sides do identical map work; only the key type differs.
func BenchmarkAblation_IntKeys(b *testing.B) {
	lk, rk := ablationIntKeys()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := make(map[int32]int32, len(lk))
		for _, k := range lk {
			m[k]++
		}
		matches := int32(0)
		for _, k := range rk {
			matches += m[k]
		}
		_ = matches
	}
}

func BenchmarkAblation_StringKeys(b *testing.B) {
	lk, rk := ablationStringKeys()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := make(map[string]int32, len(lk))
		for _, k := range lk {
			m[k]++
		}
		matches := int32(0)
		for _, k := range rk {
			matches += m[k]
		}
		_ = matches
	}
}

func ablationIntKeys() (l, r []int32) {
	l = make([]int32, 20000)
	r = make([]int32, 20000)
	for i := range l {
		l[i] = int32(i % 997)
		r[i] = int32(i % 1009)
	}
	return
}

func ablationStringKeys() (l, r []string) {
	l = make([]string, 20000)
	r = make([]string, 20000)
	for i := range l {
		l[i] = fmt.Sprintf("entity_with_a_longish_name_%d", i%997)
		r[i] = fmt.Sprintf("entity_with_a_longish_name_%d", i%1009)
	}
	return
}

// BenchmarkAblation_SingleTableLoad / _PerRelationLoad contrast the two
// physical designs of the Table 3 "Load" row: ProbKB's one facts table
// vs Tuffy's one table per relation. Both start from the same fact list.
func BenchmarkAblation_SingleTableLoad(b *testing.B) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.FactsTable()
	}
}

func BenchmarkAblation_PerRelationLoad(b *testing.B) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tpi := k.FactsTable()
		tables := make(map[int32]*engine.Table, k.RelDict.Len())
		for id := int32(0); id < int32(k.RelDict.Len()); id++ {
			tables[id] = engine.NewTable("pred", kb.FactsSchema())
		}
		rels := tpi.Int32Col(kb.TPiR)
		perRel := make(map[int32][]int32)
		for r := 0; r < tpi.NumRows(); r++ {
			perRel[rels[r]] = append(perRel[rels[r]], int32(r))
		}
		for rel, rows := range perRel {
			tables[rel].AppendRowsFrom(tpi, rows)
		}
	}
}

// BenchmarkAblation_TextKBLoad / _BinaryKBLoad contrast the on-disk
// formats' bulkload cost.
func BenchmarkAblation_TextKBLoad(b *testing.B) {
	c := benchCorpus(b)
	dir := b.TempDir() + "/kb"
	if err := c.KB.SaveDir(dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kb.LoadDir(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BinaryKBLoad(b *testing.B) {
	c := benchCorpus(b)
	path := b.TempDir() + "/kb.pkb"
	if err := c.KB.SaveBinary(path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kb.LoadBinary(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_NaiveVsSemiNaive contrasts the paper's naive closure
// loop with semi-naive (delta-driven) evaluation, on a corpus grounded
// to convergence.
func BenchmarkAblation_NaiveGrounding(b *testing.B) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ground.Ground(k, ground.Options{SkipFactors: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SemiNaiveGrounding(b *testing.B) {
	k := preCleaned(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ground.Ground(k, ground.Options{SkipFactors: true, SemiNaive: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ConstraintsInLoop measures grounding with vs without
// the per-iteration constraint pass (the §6.1.1 growth-control choice).
func BenchmarkAblation_GroundNoConstraints(b *testing.B) {
	c := benchCorpus(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ground.Ground(c.KB, ground.Options{MaxIterations: 4, SkipFactors: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_GroundWithConstraints(b *testing.B) {
	c := benchCorpus(b)
	work := c.KB.Clone()
	quality.PreClean(work)
	hook := quality.NewChecker(work).Hook()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ground.Ground(work, ground.Options{MaxIterations: 4, SkipFactors: true, ConstraintHook: hook}); err != nil {
			b.Fatal(err)
		}
	}
}
