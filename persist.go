package probkb

import (
	"fmt"
	"math"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/store"
)

// Store is a durable KB directory: a columnar snapshot plus an
// append-only WAL of everything since (fact inserts from grounding,
// constraint-repair deletes, marginal-probability updates). Attach one
// to Config.Persist and Expand makes the run durable as it goes: after
// a crash, OpenStore recovers the KB exactly as of the last completed
// grounding iteration — bit-identical to the in-memory state, which
// the crash harness in internal/store/crashtest verifies byte by byte.
//
// Only the knowledge itself is persisted. Derived artifacts — ground
// factor graphs, query plans, journals — are rebuilt by re-running
// Expand on the recovered KB, and rule-cleaning (RuleCleanTheta) never
// rewrites the durable rule set: the store always keeps the rules it
// was created with.
type Store struct {
	inner *store.Store
	// err latches the first persistence failure signalled from inside a
	// grounding observer (which cannot return errors); ExpandContext
	// checks it after every phase and fails the run loudly.
	err error
}

// CreateStore initializes dir as a durable copy of k: a generation-1
// snapshot plus an empty WAL. It refuses to overwrite an existing
// store — recover those with OpenStore instead. The store keeps its
// own mirror of k; later mutations of the caller's KB are not seen.
func CreateStore(dir string, k *KB) (*Store, error) {
	fs := store.OSFS{}
	if ok, err := store.Exists(fs, dir); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("probkb: %s already holds a store (use OpenStore)", dir)
	}
	inner, err := store.Create(fs, dir, k.inner)
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}

// StoreExists reports whether dir already holds a durable store — the
// check behind "create or resume" flows like `probkb expand -persist`.
func StoreExists(dir string) (bool, error) {
	return store.Exists(store.OSFS{}, dir)
}

// OpenStore recovers the store at dir: snapshot load, WAL replay,
// torn-tail truncation. The recovered KB is ready for further
// expansion; appends resume where the last durable record left off.
func OpenStore(dir string) (*Store, error) {
	inner, err := store.Open(store.OSFS{}, dir)
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}

// KB returns a copy of the durable KB — the recovered state after
// OpenStore, or the live mirror of everything appended so far.
func (s *Store) KB() *KB { return &KB{inner: s.inner.KB().Clone()} }

// Checkpoint folds the WAL into a fresh snapshot: the next recovery
// loads one file instead of replaying the log. Crash-safe at every
// point; the old snapshot stays authoritative until the new one lands.
func (s *Store) Checkpoint() error { return s.inner.Checkpoint() }

// Gen returns the current snapshot/WAL generation.
func (s *Store) Gen() uint32 { return s.inner.Gen() }

// WALRecords returns how many records the current WAL generation holds.
func (s *Store) WALRecords() int64 { return s.inner.WALRecords() }

// SnapshotBytes returns the size of the last snapshot this store wrote.
func (s *Store) SnapshotBytes() int64 { return s.inner.SnapshotBytes() }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.inner.Dir() }

// Facts returns how many facts the durable KB currently holds.
func (s *Store) Facts() int { return len(s.inner.KB().Facts) }

// Close releases the WAL handle. The directory stays recoverable.
func (s *Store) Close() error { return s.inner.Close() }

// Err returns the first persistence failure recorded during an
// expansion run, if any.
func (s *Store) Err() error { return s.err }

// sync diffs the grounding fact table against the store's mirror and
// appends the delta: inserts for rows the mirror lacks, deletes for
// mirror facts the table dropped (constraint repairs), and marginal
// updates where only the weight bits changed (inference). Records
// carry symbolic facts rendered through src's dictionaries, so replay
// re-interns in live order and recovery stays bit-identical. Calling
// it again with an unchanged table appends nothing — which is what
// makes the per-iteration observer plus the final post-inference sync
// safe to combine.
func (s *Store) sync(src *kb.KB, tpi *engine.Table) error {
	if s.err != nil {
		return s.err
	}
	mirror := s.inner.KB()
	have := make(map[kb.Key]float64, len(mirror.Facts))
	for _, f := range mirror.Facts {
		have[f.Key()] = f.W
	}
	seen := make(map[kb.Key]bool, tpi.NumRows())
	var adds, margs []store.FactRec
	for r := 0; r < tpi.NumRows(); r++ {
		f := kb.FactAtRow(tpi, r)
		// The mirror's dictionaries can assign different IDs than src's
		// (src may have interned symbols the store never saw), so the
		// membership check must go through symbols, not raw keys.
		rec := store.FactRecOf(src, f)
		key, ok := lookupMirrorKey(mirror, rec)
		if !ok {
			adds = append(adds, rec)
			continue
		}
		seen[key] = true
		if w, present := have[key]; !present {
			adds = append(adds, rec)
		} else if math.Float64bits(w) != math.Float64bits(f.W) {
			margs = append(margs, rec)
		}
	}
	var dels []store.FactRec
	for _, f := range mirror.Facts {
		if !seen[f.Key()] {
			dels = append(dels, store.FactRecOf(mirror, f))
		}
	}
	if err := s.inner.AppendDeletes(dels); err != nil {
		return err
	}
	if err := s.inner.AppendFacts(adds); err != nil {
		return err
	}
	return s.inner.AppendMarginals(margs)
}

// lookupMirrorKey resolves a symbolic fact to the mirror's ID space.
func lookupMirrorKey(mirror *kb.KB, rec store.FactRec) (kb.Key, bool) {
	rel, ok1 := mirror.RelDict.Lookup(rec.Rel)
	x, ok2 := mirror.Entities.Lookup(rec.X)
	xc, ok3 := mirror.Classes.Lookup(rec.XClass)
	y, ok4 := mirror.Entities.Lookup(rec.Y)
	yc, ok5 := mirror.Classes.Lookup(rec.YClass)
	if !(ok1 && ok2 && ok3 && ok4 && ok5) {
		return kb.Key{}, false
	}
	return kb.Key{Rel: rel, X: x, XClass: xc, Y: y, YClass: yc}, true
}

// observe is the per-iteration grounding observer: it syncs the
// iteration's fact table into the WAL, latching any failure for
// ExpandContext to surface (ground.Options.Observer cannot error).
func (s *Store) observe(src *kb.KB) func(iter int, tpi *engine.Table) {
	return func(_ int, tpi *engine.Table) {
		if s.err == nil {
			s.err = s.sync(src, tpi)
		}
	}
}

// attachPersist wires a store into grounding options: each completed
// iteration's delta becomes durable before the next one starts.
func attachPersist(opts *ground.Options, p *Store, src *kb.KB) {
	if p == nil {
		return
	}
	prev := opts.Observer
	obs := p.observe(src)
	opts.Observer = func(iter int, tpi *engine.Table) {
		if prev != nil {
			prev(iter, tpi)
		}
		obs(iter, tpi)
	}
}

// persistFinal runs the end-of-phase sync (grounding result or
// inference marginals) and reports the first error the run hit.
func persistFinal(p *Store, src *kb.KB, tpi *engine.Table) error {
	if p == nil {
		return nil
	}
	if err := p.sync(src, tpi); err != nil {
		return fmt.Errorf("probkb: persisting expansion: %w", err)
	}
	return nil
}
