package probkb

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"probkb/internal/engine"
	"probkb/internal/factor"
	"probkb/internal/ground"
	"probkb/internal/infer"
	"probkb/internal/kb"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
	"probkb/internal/quality"
)

// Fact is one fact of an expanded KB, rendered symbolically.
type Fact struct {
	Rel    string
	X      string
	XClass string
	Y      string
	YClass string
	// Probability is the extraction confidence for observed facts, or
	// the Gibbs marginal for inferred ones (NaN when inference was
	// skipped).
	Probability float64
	// Inferred reports whether expansion derived the fact.
	Inferred bool
}

// String renders the fact.
func (f Fact) String() string {
	return fmt.Sprintf("%.2f %s(%s:%s, %s:%s)", f.Probability, f.Rel, f.X, f.XClass, f.Y, f.YClass)
}

// ExpandStats summarizes what an expansion did.
type ExpandStats struct {
	BaseFacts     int
	InferredFacts int
	TotalFacts    int
	Factors       int
	Iterations    int
	Converged     bool
	// AtomQueries and FactorQueries count join queries — the O(k) vs
	// O(n) story of Section 4.3.1.
	AtomQueries   int
	FactorQueries int
	LoadTime      time.Duration
	GroundingTime time.Duration
	FactorTime    time.Duration
	InferenceTime time.Duration
}

// Expansion is the result of KB.Expand.
type Expansion struct {
	kb  *kb.KB
	res *ground.Result
	cfg Config
	jr  *journal.Writer

	graph         *factor.Graph
	inferenceTime time.Duration

	// Point-query state (query.go): the generation the marginal cache
	// is keyed by, the cache itself, the in-flight coalescing table
	// (concurrent identical lookups share one grounding run), and the
	// lazily built local grounder. The cache dies with the expansion,
	// which is what makes ExtendWith an invalidation.
	gen       uint64
	qmu       sync.RWMutex
	qcache    map[queryKey]Marginal
	qflight   map[queryKey]*queryCall
	localOnce sync.Once
	local     *ground.LocalGrounder
}

// KB returns the knowledge base this expansion was grounded from — the
// generation's frozen base. After ExtendWith it is the copy-on-write
// fork carrying the round's new symbols and memberships; the MVCC
// serving tier publishes it next to the expansion so SQL and dictionary
// lookups resolve against the same generation the expansion answers
// from. Callers must treat it as read-only while readers are pinned.
func (e *Expansion) KB() *KB { return &KB{inner: e.kb} }

// Journal returns the run's journal writer — the bounded in-memory
// event record every expansion keeps (and, when Config.JournalPath was
// set, also streamed to disk). The server's /debug/journal and
// /debug/profile endpoints read it; journal.FromEvents + journal.
// Analyze turn it into a workload profile.
func (e *Expansion) Journal() *journal.Writer { return e.jr }

// emitRunEnd closes the journal's event stream with the run summary.
func (e *Expansion) emitRunEnd() {
	st := e.Stats()
	e.jr.Emit(journal.TypeRunEnd, journal.RunEnd{
		Iterations:    st.Iterations,
		Converged:     st.Converged,
		BaseFacts:     st.BaseFacts,
		InferredFacts: st.InferredFacts,
		TotalFacts:    st.TotalFacts,
		Factors:       st.Factors,
		LoadSeconds:   st.LoadTime.Seconds(),
		GroundSeconds: st.GroundingTime.Seconds(),
		FactorSeconds: st.FactorTime.Seconds(),
		InferSeconds:  st.InferenceTime.Seconds(),
		DroppedEvents: e.jr.Dropped(),
	})
}

// runInference builds the factor graph and fills inferred facts'
// probabilities with Gibbs marginals. On context cancellation it
// applies the marginals estimated from the samples collected so far (if
// any) and returns the context error; ExpandContext wraps that into a
// PartialError.
func (e *Expansion) runInference(ctx context.Context) error {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "infer")
	defer span.End()

	_, fgSpan := obs.StartSpan(ctx, "factor-graph")
	g, err := factor.FromResult(e.res)
	if err != nil {
		fgSpan.End()
		return err
	}
	e.graph = g
	fgSpan.SetAttr("vars", g.NumVars())
	fgSpan.End()

	iopts := inferOptions(e.cfg)
	if e.jr != nil {
		// Journal the convergence timeline: periodic checkpoints with
		// split-half R-hat and ESS over tracked atoms, labeled by fact ID.
		iopts.OnCheckpoint = func(cp infer.Checkpoint) {
			jcp := journal.GibbsCheckpoint{
				Sweep:         cp.Sweep,
				Burnin:        cp.Burnin,
				Vars:          cp.Vars,
				Flips:         cp.Flips,
				Seconds:       cp.Elapsed.Seconds(),
				SamplesPerSec: cp.SamplesPerSec,
				RHatMax:       cp.RHatMax,
				ESSMin:        cp.ESSMin,
			}
			for _, d := range cp.Tracked {
				jcp.Tracked = append(jcp.Tracked, journal.VarDiagnostic{
					Var: d.Var, FactID: g.FactID(int32(d.Var)),
					Mean: d.Mean, RHat: d.RHat, ESS: d.ESS,
				})
			}
			e.jr.Emit(journal.TypeGibbsCheckpoint, jcp)
		}
	}
	probs, collected, err := infer.MarginalsContext(ctx, g, iopts)
	if collected > 0 {
		if aerr := infer.ApplyMarginals(g, e.res.Facts, probs); aerr != nil {
			return aerr
		}
	}
	e.inferenceTime = time.Since(start)
	span.SetAttr("vars", g.NumVars())
	observeStage("infer", start)
	return err
}

// Stats returns the expansion summary.
func (e *Expansion) Stats() ExpandStats {
	st := ExpandStats{
		BaseFacts:     e.res.BaseFacts,
		InferredFacts: e.res.InferredFacts(),
		TotalFacts:    e.res.Facts.NumRows(),
		Iterations:    e.res.Iterations,
		Converged:     e.res.Converged,
		AtomQueries:   e.res.AtomQueries,
		FactorQueries: e.res.FactorQueries,
		LoadTime:      e.res.LoadTime,
		GroundingTime: e.res.AtomTime,
		FactorTime:    e.res.FactorTime,
		InferenceTime: e.inferenceTime,
	}
	if e.res.Factors != nil {
		st.Factors = e.res.Factors.NumRows()
	}
	return st
}

// Facts returns every fact of the expanded KB, observed and inferred.
func (e *Expansion) Facts() []Fact {
	t := e.res.Facts
	out := make([]Fact, 0, t.NumRows())
	ids := t.Int32Col(kb.TPiI)
	for r := 0; r < t.NumRows(); r++ {
		f := kb.FactAtRow(t, r)
		out = append(out, Fact{
			Rel: e.kb.RelDict.Name(f.Rel),
			X:   e.kb.Entities.Name(f.X), XClass: e.kb.Classes.Name(f.XClass),
			Y: e.kb.Entities.Name(f.Y), YClass: e.kb.Classes.Name(f.YClass),
			Probability: probability(f.W),
			Inferred:    int(ids[r]) >= e.res.BaseFacts,
		})
	}
	return out
}

// InferredFacts returns only the newly derived facts.
func (e *Expansion) InferredFacts() []Fact {
	var out []Fact
	for _, f := range e.Facts() {
		if f.Inferred {
			out = append(out, f)
		}
	}
	return out
}

// Find returns the expanded facts matching the relation and entity names
// (empty strings match anything).
//
// Each non-wildcard name is resolved against the dictionaries once and
// rows are filtered on int32 IDs, so no Fact is rendered (five dict
// lookups per row) unless it matches; a name absent from its dictionary
// matches nothing.
func (e *Expansion) Find(rel, x, y string) []Fact {
	relID, x1, y1 := int32(-1), int32(-1), int32(-1)
	if rel != "" {
		id, ok := e.kb.RelDict.Lookup(rel)
		if !ok {
			return nil
		}
		relID = id
	}
	if x != "" {
		id, ok := e.kb.Entities.Lookup(x)
		if !ok {
			return nil
		}
		x1 = id
	}
	if y != "" {
		id, ok := e.kb.Entities.Lookup(y)
		if !ok {
			return nil
		}
		y1 = id
	}

	t := e.res.Facts
	ids := t.Int32Col(kb.TPiI)
	rels := t.Int32Col(kb.TPiR)
	xs := t.Int32Col(kb.TPiX)
	ys := t.Int32Col(kb.TPiY)
	var out []Fact
	for r := 0; r < t.NumRows(); r++ {
		if (relID < 0 || rels[r] == relID) && (x1 < 0 || xs[r] == x1) && (y1 < 0 || ys[r] == y1) {
			f := kb.FactAtRow(t, r)
			out = append(out, Fact{
				Rel: e.kb.RelDict.Name(f.Rel),
				X:   e.kb.Entities.Name(f.X), XClass: e.kb.Classes.Name(f.XClass),
				Y: e.kb.Entities.Name(f.Y), YClass: e.kb.Classes.Name(f.YClass),
				Probability: probability(f.W),
				Inferred:    int(ids[r]) >= e.res.BaseFacts,
			})
		}
	}
	return out
}

// Explain renders the derivation tree of the first fact matching
// (rel, x, y), using the factor graph's lineage (Definition 7 notes that
// TΦ carries the entire lineage). It requires RunInference or at least a
// factor table; depth bounds the recursion.
func (e *Expansion) Explain(rel, x, y string, depth int) (string, error) {
	if err := e.ensureGraph(); err != nil {
		return "", err
	}
	t := e.res.Facts
	ids := t.Int32Col(kb.TPiI)
	// One pass builds the fact-ID→row index the name closure needs;
	// rendering a node is then O(1) instead of a rescan of ids per node.
	rowOf := make(map[int32]int, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		rowOf[ids[r]] = r
	}
	targetID := int32(-1)
	for r := 0; r < t.NumRows(); r++ {
		f := kb.FactAtRow(t, r)
		if e.kb.RelDict.Name(f.Rel) == rel && e.kb.Entities.Name(f.X) == x && e.kb.Entities.Name(f.Y) == y {
			targetID = ids[r]
			break
		}
	}
	if targetID < 0 {
		return "", fmt.Errorf("probkb: no fact %s(%s, %s) in the expansion", rel, x, y)
	}
	target, ok := e.graph.VarOf(targetID)
	if !ok {
		return "", fmt.Errorf("probkb: fact %s(%s, %s) has no graph variable", rel, x, y)
	}
	name := func(v int32) string {
		id := e.graph.FactID(v)
		if r, ok := rowOf[id]; ok {
			return e.kb.FactString(kb.FactAtRow(t, r))
		}
		return fmt.Sprintf("fact#%d", id)
	}
	return e.graph.Explain(target, depth, name), nil
}

// FactorGraphStats exposes the ground factor graph's shape.
func (e *Expansion) FactorGraphStats() (vars, factors, singletons int, err error) {
	if err := e.ensureGraph(); err != nil {
		return 0, 0, 0, err
	}
	st := e.graph.Stats()
	return st.Vars, st.Factors, st.Singletons, nil
}

// ensureGraph lazily builds the factor graph.
func (e *Expansion) ensureGraph() error {
	if e.graph != nil {
		return nil
	}
	g, err := factor.FromResult(e.res)
	if err != nil {
		return err
	}
	e.graph = g
	return nil
}

// MAPWorld runs MAP inference (MaxWalkSAT) over the ground factor graph
// and returns the facts that are true in the most probable world, along
// with the world's unnormalized log score. This is the paper's
// "alternative inference type" of Section 2.2: a single consistent world
// instead of per-fact marginals.
func (e *Expansion) MAPWorld(seed int64) ([]Fact, float64, error) {
	if err := e.ensureGraph(); err != nil {
		return nil, 0, err
	}
	res := infer.MAP(e.graph, infer.MAPOptions{Seed: seed})
	t := e.res.Facts
	ids := t.Int32Col(kb.TPiI)
	var out []Fact
	for r := 0; r < t.NumRows(); r++ {
		v, ok := e.graph.VarOf(ids[r])
		if !ok || !res.Assignment[v] {
			continue
		}
		f := kb.FactAtRow(t, r)
		out = append(out, Fact{
			Rel: e.kb.RelDict.Name(f.Rel),
			X:   e.kb.Entities.Name(f.X), XClass: e.kb.Classes.Name(f.XClass),
			Y: e.kb.Entities.Name(f.Y), YClass: e.kb.Classes.Name(f.YClass),
			Probability: probability(f.W),
			Inferred:    int(ids[r]) >= e.res.BaseFacts,
		})
	}
	return out, res.LogScore, nil
}

// ConvergenceDiagnostics re-runs Gibbs sampling as `chains` independent
// chains and reports the worst split-chain R̂ (values near 1 mean the
// marginals have converged; < 1.1 is the conventional threshold).
func (e *Expansion) ConvergenceDiagnostics(chains int) (maxRHat float64, converged bool, err error) {
	if err := e.ensureGraph(); err != nil {
		return 0, false, err
	}
	d := infer.MarginalsWithDiagnostics(e.graph, inferOptions(e.cfg), chains)
	return d.MaxRHat, d.Converged(1.1), nil
}

// ToKB materializes the expansion as a new knowledge base whose facts
// are the expanded set (inferred probabilities as weights), suitable for
// Save or further expansion rounds.
func (e *Expansion) ToKB() *KB {
	out := e.kb.Fork()
	t := e.res.Facts
	facts := make([]kb.Fact, 0, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		facts = append(facts, kb.FactAtRow(t, r))
	}
	out.ReplaceFacts(facts)
	return &KB{inner: out}
}

// ExtendWith incrementally expands the KB with newly observed facts —
// the daily reality of a web-scale KB, where extractions keep arriving.
// The prior closure is reused and the first grounding iteration joins
// only the new facts (semi-naive seeding), so cost scales with the
// delta. The prior expansion must have run to convergence (Stats().
// Converged); otherwise derivations among old facts could be missing
// and ExtendWith refuses.
//
// The returned Expansion replaces the receiver for further queries; the
// receiver stays valid and genuinely frozen: the new round builds on a
// copy-on-write fork of the receiver's KB (kb.Fork), so readers pinned
// to the old generation — the MVCC serving tier keeps them lock-free
// mid-extend — never observe a new symbol, membership, or weight.
// Facts derived in earlier rounds count as *base* facts of the new
// expansion (their inferred probabilities, when inference ran, carry
// over as evidence weights); Stats().InferredFacts and Fact.Inferred
// describe only the new round.
func (e *Expansion) ExtendWith(newFacts []Fact) (*Expansion, error) {
	return e.ExtendWithContext(context.Background(), newFacts)
}

// ExtendWithContext is ExtendWith under the caller's context: grounding
// and inference observe cancellation cooperatively (a cancelled round
// returns an error and publishes nothing — the receiver generation is
// untouched), and the round's span tree hangs off ctx's trace.
func (e *Expansion) ExtendWithContext(ctx context.Context, newFacts []Fact) (*Expansion, error) {
	return e.extendWith(ctx, newFacts, false)
}

// ExtendWithDeferred is ExtendWithContext minus the factor phase and
// marginal inference: the new facts and their semi-naive closure become
// visible (and durable, when a store is attached) immediately, while
// derived facts keep NaN probabilities until RefreshMarginals runs.
// This is the streaming-ingest absorb step — the bounded-staleness
// model lets a firehose of batches land at delta-grounding cost and
// amortizes the closure-wide factor+Gibbs work over every K batches.
func (e *Expansion) ExtendWithDeferred(ctx context.Context, newFacts []Fact) (*Expansion, error) {
	return e.extendWith(ctx, newFacts, true)
}

// extendWith is the shared extend round. deferred skips the factor
// phase and inference (see ExtendWithDeferred).
func (e *Expansion) extendWith(ctx context.Context, newFacts []Fact, deferred bool) (*Expansion, error) {
	if !e.res.Converged {
		return nil, fmt.Errorf("probkb: ExtendWith requires a converged prior expansion")
	}
	work := e.kb.Fork()
	interned := make([]kb.Fact, 0, len(newFacts))
	for _, f := range newFacts {
		cx := work.Classes.Intern(f.XClass)
		cy := work.Classes.Intern(f.YClass)
		rel := work.AddRelation(f.Rel, cx, cy)
		work.AddMember(cx, work.Entities.Intern(f.X))
		work.AddMember(cy, work.Entities.Intern(f.Y))
		interned = append(interned, kb.Fact{
			Rel: rel,
			X:   work.Entities.Intern(f.X), XClass: cx,
			Y: work.Entities.Intern(f.Y), YClass: cy,
			W: f.Probability,
		})
	}

	ctx, root := obs.StartSpan(ctx, "extend")
	defer root.End()
	root.SetAttr("new_facts", len(newFacts))

	// Each incremental round keeps its own in-memory journal (no file
	// sink: the original JournalPath belongs to the prior run's record).
	jr := journal.New()
	jr.Emit(journal.TypeRunStart, journal.Header{
		Engine:     e.cfg.Engine.String(),
		Seed:       e.cfg.Seed,
		ConfigHash: e.cfg.Hash(),
		Start:      time.Now().UTC().Format(time.RFC3339),
	})

	opts := groundOptions(ctx, e.cfg)
	opts.SemiNaive = true
	opts.SkipFactors = deferred
	opts.Journal = jr
	if p := e.cfg.Persist; p != nil {
		p.inner.SetJournal(jr)
		defer p.inner.SetJournal(nil)
		attachPersist(&opts, p, work)
	}
	if e.cfg.ApplyConstraints {
		opts.ConstraintHook = journaledHook(jr, quality.NewChecker(work))
	}
	res, err := ground.Extend(work, e.res, interned, opts)
	if err != nil {
		return nil, err
	}
	if err := persistFinal(e.cfg.Persist, work, res.Facts); err != nil {
		return nil, err
	}
	next := newExpansion(work, res, e.cfg, jr)
	if !deferred && e.cfg.RunInference {
		if err := next.runInference(ctx); err != nil {
			return nil, err
		}
		if err := persistFinal(e.cfg.Persist, work, res.Facts); err != nil {
			return nil, err
		}
	}
	next.emitRunEnd()
	return next, nil
}

// RefreshMarginals pays down the staleness a run of ExtendWithDeferred
// rounds accumulated: it re-runs the factor phase over the (unchanged)
// closure and refreshes every marginal with a fresh Gibbs pass,
// regardless of Config.RunInference. Like ExtendWith it returns a new
// Expansion built on a cloned fact table — the receiver stays frozen
// for pinned readers — and persists the refreshed marginals when a
// store is attached. The closure itself is already a fixpoint, so the
// grounding step degenerates to one empty-delta iteration.
func (e *Expansion) RefreshMarginals(ctx context.Context) (*Expansion, error) {
	if !e.res.Converged {
		return nil, fmt.Errorf("probkb: RefreshMarginals requires a converged prior expansion")
	}
	ctx, root := obs.StartSpan(ctx, "refresh-marginals")
	defer root.End()

	jr := journal.New()
	jr.Emit(journal.TypeRunStart, journal.Header{
		Engine:     e.cfg.Engine.String(),
		Seed:       e.cfg.Seed,
		ConfigHash: e.cfg.Hash(),
		Start:      time.Now().UTC().Format(time.RFC3339),
	})

	opts := groundOptions(ctx, e.cfg)
	opts.SemiNaive = true
	opts.Journal = jr
	if p := e.cfg.Persist; p != nil {
		p.inner.SetJournal(jr)
		defer p.inner.SetJournal(nil)
		attachPersist(&opts, p, e.kb)
	}
	res, err := ground.Extend(e.kb, e.res, nil, opts)
	if err != nil {
		return nil, err
	}
	next := newExpansion(e.kb, res, e.cfg, jr)
	if err := next.runInference(ctx); err != nil {
		return nil, err
	}
	if err := persistFinal(e.cfg.Persist, e.kb, res.Facts); err != nil {
		return nil, err
	}
	next.emitRunEnd()
	return next, nil
}

// SaveFactorGraph writes the ground factor graph as two TSV files in
// dir — variables.tsv and factors.tsv — the relational hand-off format
// of the paper's architecture (Figure 1): any external marginal
// inference engine can consume it.
func (e *Expansion) SaveFactorGraph(dir string) error {
	if e.res.Factors == nil {
		return fmt.Errorf("probkb: expansion has no factor table")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	varsF, err := os.Create(filepath.Join(dir, "variables.tsv"))
	if err != nil {
		return err
	}
	defer varsF.Close()
	factorsF, err := os.Create(filepath.Join(dir, "factors.tsv"))
	if err != nil {
		return err
	}
	defer factorsF.Close()
	render := func(row int) string {
		return e.kb.FactString(kb.FactAtRow(e.res.Facts, row))
	}
	if err := factor.Export(e.res.Facts, e.res.Factors, varsF, factorsF, render); err != nil {
		return err
	}
	if err := varsF.Sync(); err != nil {
		return err
	}
	return factorsF.Sync()
}

// PerIteration reports per-iteration grounding progress: new facts and
// constraint deletions, in order.
func (e *Expansion) PerIteration() []IterationStats {
	out := make([]IterationStats, len(e.res.PerIteration))
	for i, st := range e.res.PerIteration {
		out[i] = IterationStats{
			Iteration: st.Iteration,
			NewFacts:  st.NewFacts,
			Deleted:   st.Deleted,
			Queries:   st.Queries,
			Elapsed:   st.Elapsed,
		}
	}
	return out
}

// IterationStats is one grounding iteration's summary.
type IterationStats struct {
	Iteration int
	NewFacts  int
	Deleted   int
	Queries   int
	Elapsed   time.Duration
}

var _ = engine.NullInt32 // engine types appear in exported docs
