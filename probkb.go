// Package probkb is a probabilistic knowledge base with scalable
// knowledge expansion, reproducing the ProbKB system of
//
//	Yang Chen, Daisy Zhe Wang.
//	"Knowledge Expansion over Probabilistic Knowledge Bases." SIGMOD 2014.
//
// A KB holds weighted facts, weighted Horn rules (a Markov logic
// network), and functional constraints. Expand grounds the MLN with the
// paper's batched relational algorithm — all rules of a structural
// partition applied by one join — on either a single-node engine or a
// simulated shared-nothing MPP cluster, applies the paper's quality-
// control methods (rule cleaning, semantic constraints, ambiguity
// removal), and runs Gibbs marginal inference over the resulting ground
// factor graph so every inferred fact carries a probability.
//
// Quick start:
//
//	k := probkb.New()
//	k.AddFact("rich_in", "kale", "Food", "calcium", "Nutrient", 0.9)
//	k.AddFact("prevents", "calcium", "Nutrient", "osteoporosis", "Disease", 0.8)
//	k.MustAddRule("1.1 prevents(x:Food, y:Disease) :- rich_in(x:Food, z:Nutrient), prevents(z:Nutrient, y:Disease)")
//	exp, err := k.Expand(probkb.DefaultConfig())
//	// exp.Facts() now contains prevents(kale, osteoporosis) with its probability.
package probkb

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"time"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/infer"
	"probkb/internal/kb"
	"probkb/internal/mpp"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
	"probkb/internal/quality"
)

func init() {
	obs.Default.Help("probkb_expand_total", "Knowledge-expansion runs completed, by engine.")
	obs.Default.Help("probkb_expand_stage_seconds", "Per-stage wall time of expansion runs.")
}

// Engine selects the execution substrate for grounding.
type Engine int

const (
	// SingleNode runs the batched grounding queries on the in-process
	// relational engine (the paper's "ProbKB" configuration on
	// PostgreSQL).
	SingleNode Engine = iota
	// MPP runs on the shared-nothing cluster simulator with
	// redistributed materialized views ("ProbKB-p" on Greenplum).
	MPP
	// MPPNoViews is MPP without the view optimization ("ProbKB-pn");
	// exists mainly for the Figure 6(c) comparison.
	MPPNoViews
	// Baseline runs the Tuffy-T per-rule grounder — O(#rules) queries
	// per iteration. It exists for comparison benchmarks.
	Baseline
)

// String names the engine as in the paper.
func (e Engine) String() string {
	switch e {
	case SingleNode:
		return "ProbKB"
	case MPP:
		return "ProbKB-p"
	case MPPNoViews:
		return "ProbKB-pn"
	case Baseline:
		return "Tuffy-T"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ConstraintType mirrors Definition 9: TypeI means the subject determines
// the object (a person is born in one place); TypeII the converse (a
// country has one capital).
type ConstraintType int

// Functional-constraint argument positions.
const (
	TypeI  ConstraintType = kb.TypeI
	TypeII ConstraintType = kb.TypeII
)

// Config controls Expand.
type Config struct {
	// Engine picks the substrate; Segments sizes the MPP cluster
	// (ignored for SingleNode; 0 means 4).
	Engine   Engine
	Segments int

	// EngineWorkers sizes the morsel-parallel worker pool relational
	// query plans run with. On SingleNode, 0 means runtime.NumCPU() and
	// 1 forces serial execution; on MPP it is the per-segment budget,
	// where 0 (and 1) keep the historical serial-per-segment behavior.
	// Results — and canonical journals — are identical for every
	// setting, which is why Hash excludes it (like Faults and retries).
	EngineWorkers int

	// MaxIterations caps the grounding fixpoint loop; 0 runs to
	// convergence. Machine-built KBs without constraints can blow up
	// (Section 6.1.1), so runs with ApplyConstraints=false should set a
	// cap.
	MaxIterations int

	// ApplyConstraints enables semantic constraints: Query 3 runs once
	// up front and again after every grounding iteration, greedily
	// removing entities that violate functional constraints.
	ApplyConstraints bool

	// RuleCleanTheta keeps the top-θ fraction of rules by statistical
	// significance before grounding; 1 (or 0, the zero value) disables
	// cleaning.
	RuleCleanTheta float64
	// ConstraintInformedCleaning ranks rules by constraint-adjusted
	// significance instead: rules whose conclusions concentrate on
	// functional-constraint violators sink in the ranking (the paper's
	// §6.2.3 suggestion of feeding constraint violations back into the
	// rule learner). Only meaningful with RuleCleanTheta < 1.
	ConstraintInformedCleaning bool

	// RunInference runs Gibbs marginal inference after grounding and
	// writes each inferred fact's probability into the result. Without
	// it, inferred facts carry probability NaN.
	RunInference bool
	// GibbsBurnin and GibbsSamples size the sampling run (defaults 100
	// and 500); GibbsParallel uses the chromatic parallel sampler.
	GibbsBurnin   int
	GibbsSamples  int
	GibbsParallel bool
	// Seed makes inference reproducible.
	Seed int64

	// JournalPath, when non-empty, streams the run journal to this file:
	// one JSON line per event (run header, grounding iterations, query
	// profiles with operator trees, motion volumes, constraint repairs,
	// Gibbs convergence checkpoints, run summary). Every run also keeps
	// a bounded in-memory journal reachable via Expansion.Journal(),
	// whether or not a path is set.
	JournalPath string

	// OnIteration, when non-nil, observes each grounding iteration as it
	// completes — live progress instead of polling PerIteration after
	// the fact.
	OnIteration func(IterationStats)
	// OnGibbsSweep, when non-nil, observes every Gibbs sweep of marginal
	// inference as it completes. It runs on the sampling goroutine; keep
	// it cheap.
	OnGibbsSweep func(GibbsSweep)

	// Persist, when non-nil, makes the run durable: each completed
	// grounding iteration's delta (new facts and constraint-repair
	// deletes) is appended to the store's WAL before the next iteration
	// starts, and inferred marginals are appended after inference. A
	// crash at any point recovers to the last completed iteration via
	// OpenStore. Persistence never changes results, so the field is
	// excluded from Hash() like the callbacks.
	Persist *Store

	// Faults, when non-nil, deterministically injects failures, worker
	// panics and stragglers into MPP segment tasks — chaos testing for
	// the distributed path. Injected faults never change results (tasks
	// are idempotent and retried), so this field is excluded from
	// Hash(). Ignored by non-MPP engines.
	Faults *FaultConfig
	// SegmentRetries re-executes a failed MPP segment task up to this
	// many times before the failure propagates; 0 disables retries.
	// RetryBackoff is the base delay before retry k (scaled linearly by
	// k). Both are excluded from Hash() for the same reason as Faults.
	SegmentRetries int
	RetryBackoff   time.Duration
}

// FaultConfig configures deterministic fault injection for MPP segment
// tasks (see Config.Faults). Whether a given task attempt faults is a
// pure function of the seed, so equal-seed runs inject identical faults
// regardless of scheduling. Rates are per-attempt probabilities tested
// in order (fail, panic, straggle) against one uniform draw; their sum
// should stay at or below 1.
type FaultConfig struct {
	// Seed selects the fault sequence.
	Seed int64
	// FailRate injects plain task failures.
	FailRate float64
	// PanicRate injects worker panics, exercising the task runner's
	// last-resort recover.
	PanicRate float64
	// StraggleRate injects stragglers that sleep StraggleDelay.
	StraggleRate  float64
	StraggleDelay time.Duration
}

// PartialError reports an expansion cut short by its context — the run
// was cancelled or hit its deadline mid-phase. Partial carries the work
// completed so far: the facts grounded up to the last finished
// iteration and, when inference was interrupted after collecting at
// least one sample, marginals normalized over the samples actually
// collected. Partial.Stats().Converged is always false. The error
// unwraps to the underlying context error, so
// errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both see through it.
type PartialError struct {
	// Phase names the interrupted pipeline phase: "ground" or "infer"
	// for expansions, "sql" for a cancelled ad-hoc query (whose Partial
	// is nil — a cut-short SELECT has no usable partial result).
	Phase string
	// Partial is the expansion built from the completed work.
	Partial *Expansion
	// Err is the context error that stopped the run.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("probkb: expansion interrupted during %s: %v", e.Phase, e.Err)
}

// Unwrap exposes the underlying context error to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// GibbsSweep is one Gibbs sweep's progress report (see Config.OnGibbsSweep).
type GibbsSweep struct {
	// Sweep is 1-based and counts burn-in sweeps.
	Sweep int
	// Burnin reports whether the sweep was discarded.
	Burnin bool
	// Vars is the number of variables resampled per sweep.
	Vars int
	// Flips is how many variables changed value in this sweep.
	Flips int
	// Elapsed is wall time since inference started.
	Elapsed time.Duration
}

// DefaultConstrainedIterations caps grounding when semantic constraints
// are active and no explicit MaxIterations is set (the paper grounds its
// constrained runs in 15 iterations). Without constraints the closure is
// monotone and always terminates, so no implicit cap applies.
const DefaultConstrainedIterations = 15

// DefaultConfig enables the full pipeline on the single-node engine:
// constraints on, no rule cleaning, inference on.
func DefaultConfig() Config {
	return Config{
		Engine:           SingleNode,
		ApplyConstraints: true,
		RunInference:     true,
	}
}

// Hash fingerprints the run-determining configuration as a 16-hex-digit
// FNV-64a digest. The journal header carries it next to the seed, so
// two journals are comparable exactly when their runs had identical
// inputs — the determinism contract Canonicalize diffs against.
// Callback fields and JournalPath do not affect results and are
// excluded.
func (c Config) Hash() string {
	h := fnv.New64a()
	// EngineWorkers is deliberately absent: worker counts never change
	// results (engine.Opts), so runs differing only in parallelism
	// remain journal-comparable.
	fmt.Fprintf(h, "engine=%d segments=%d maxiter=%d constraints=%t theta=%g cic=%t infer=%t burnin=%d samples=%d parallel=%t seed=%d",
		int(c.Engine), c.Segments, c.MaxIterations, c.ApplyConstraints,
		c.RuleCleanTheta, c.ConstraintInformedCleaning, c.RunInference,
		c.GibbsBurnin, c.GibbsSamples, c.GibbsParallel, c.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// KB is a probabilistic knowledge base Γ = (E, C, R, Π, L).
type KB struct {
	inner *kb.KB
}

// New returns an empty knowledge base.
func New() *KB { return &KB{inner: kb.New()} }

// Load reads a KB from disk: a directory of text files (see Save), or a
// binary snapshot file written by SaveSnapshot.
func Load(path string) (*KB, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var inner *kb.KB
	if info.IsDir() {
		inner, err = kb.LoadDir(path)
	} else {
		inner, err = kb.LoadBinary(path)
	}
	if err != nil {
		return nil, err
	}
	return &KB{inner: inner}, nil
}

// Save writes the KB as a directory of text files: relations.tsv,
// facts.tsv, rules.txt, constraints.tsv, members.tsv, taxonomy.tsv.
func (k *KB) Save(dir string) error { return k.inner.SaveDir(dir) }

// SaveSnapshot writes the KB as a single binary snapshot file — the
// fast bulkload path: loads are ID-stable (unlike the text directory,
// which re-interns symbols) and roughly twice as fast. Load() accepts
// either format.
func (k *KB) SaveSnapshot(path string) error { return k.inner.SaveBinary(path) }

// AddFact records the weighted fact rel(x, y) with the arguments' classes.
// Re-adding an existing fact keeps the maximum weight. It reports whether
// the fact was new.
func (k *KB) AddFact(rel, x, xClass, y, yClass string, weight float64) bool {
	_, fresh := k.inner.InternFact(rel, x, xClass, y, yClass, weight)
	return fresh
}

// AddRule parses and adds a weighted Horn rule, e.g.
//
//	1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)
//
// Bodies may have one or two atoms over at most three variables; every
// variable needs a class annotation on at least one occurrence.
func (k *KB) AddRule(line string) error {
	c, err := k.inner.ParseRule(line)
	if err != nil {
		return err
	}
	return k.inner.AddRule(c)
}

// MustAddRule is AddRule, panicking on error; for statically known rules.
func (k *KB) MustAddRule(line string) {
	if err := k.AddRule(line); err != nil {
		panic(err)
	}
}

// AddConstraint declares relation rel functional: each subject (TypeI) or
// object (TypeII) has at most degree partners. Violating entities are
// treated as errors or ambiguous names and removed during expansion when
// Config.ApplyConstraints is set.
func (k *KB) AddConstraint(rel string, typ ConstraintType, degree int) error {
	id, ok := k.inner.RelDict.Lookup(rel)
	if !ok {
		return fmt.Errorf("probkb: constraint over unknown relation %q", rel)
	}
	return k.inner.AddConstraint(kb.Constraint{Rel: id, Type: int(typ), Degree: degree})
}

// Stats summarizes the KB (Table 2 of the paper).
type Stats struct {
	Relations   int
	Rules       int
	Entities    int
	Facts       int
	Classes     int
	Constraints int
}

// Stats returns the KB's summary statistics.
func (k *KB) Stats() Stats {
	s := k.inner.Stats()
	return Stats{
		Relations: s.Relations, Rules: s.Rules, Entities: s.Entities,
		Facts: s.Facts, Classes: s.Classes, Constraints: s.Constraints,
	}
}

// DeclareSubclass records sub ⊆ super in the class hierarchy (Remark 1
// of the paper's Definition 1): members of sub automatically become
// members of super. Cycles are rejected.
func (k *KB) DeclareSubclass(sub, super string) error {
	return k.inner.DeclareSubclass(k.inner.Classes.Intern(sub), k.inner.Classes.Intern(super))
}

// Validate checks the KB's internal consistency (fact signatures, class
// memberships, rule shapes, constraint sanity) and returns every problem
// found; nil means clean.
func (k *KB) Validate() []error { return k.inner.Validate() }

// RuleScore reports one rule's statistical significance (Section 5.3):
// the smoothed conditional probability of the head given the body,
// estimated from the observed facts.
type RuleScore struct {
	Rule    string // the rule in rules.txt syntax
	Matches int    // body groundings found among the facts
	Hits    int    // of those, with the head also present
	Score   float64
}

// RuleScores scores every rule; Expand's RuleCleanTheta keeps the top-θ
// fraction of this ranking.
func (k *KB) RuleScores() []RuleScore {
	scores := quality.ScoreRules(k.inner)
	out := make([]RuleScore, len(scores))
	for i, s := range scores {
		out[i] = RuleScore{
			Rule:    k.inner.FormatRule(k.inner.Rules[s.Index]),
			Matches: s.Matches,
			Hits:    s.Hits,
			Score:   s.Score,
		}
	}
	return out
}

// Expand performs knowledge expansion: quality control, batched MLN
// grounding, and (optionally) marginal inference. The receiver is not
// modified; the returned Expansion holds the enlarged fact set.
func (k *KB) Expand(cfg Config) (*Expansion, error) {
	return k.ExpandContext(context.Background(), cfg)
}

// ExpandContext is Expand under the caller's tracing context: the run
// records an "expand" span tree — quality control, grounding (with
// per-iteration children), factor-graph construction, and inference —
// into the obs tracer, visible via `probkb --trace` on the CLI and
// GET /debug/traces on a running server.
func (k *KB) ExpandContext(ctx context.Context, cfg Config) (*Expansion, error) {
	ctx, root := obs.StartSpan(ctx, "expand")
	defer root.End()
	root.SetAttr("engine", cfg.Engine.String())

	// Every run records a bounded in-memory journal; a JournalPath adds
	// the JSONL file sink. The file closes on every return path; the
	// in-memory events outlive it via Expansion.Journal().
	jr := journal.New()
	if cfg.JournalPath != "" {
		if err := jr.SinkTo(cfg.JournalPath); err != nil {
			return nil, fmt.Errorf("probkb: journal: %w", err)
		}
	}
	defer jr.Close()
	segs := 0
	if cfg.Engine == MPP || cfg.Engine == MPPNoViews {
		if segs = cfg.Segments; segs <= 0 {
			segs = 4
		}
	}
	jr.Emit(journal.TypeRunStart, journal.Header{
		Engine:     cfg.Engine.String(),
		Segments:   segs,
		Seed:       cfg.Seed,
		ConfigHash: cfg.Hash(),
		Start:      time.Now().UTC().Format(time.RFC3339),
	})

	// Quality control: rule cleaning, then the up-front Query 3 pass.
	qualityStart := time.Now()
	_, qualitySpan := obs.StartSpan(ctx, "quality")
	work := k.inner
	switch {
	case cfg.RuleCleanTheta > 0 && cfg.RuleCleanTheta < 1 && cfg.ConstraintInformedCleaning:
		cleaned, err := quality.CleanRulesWithConstraints(work, cfg.RuleCleanTheta, 4)
		if err != nil {
			qualitySpan.End()
			return nil, err
		}
		work = cleaned
	case cfg.RuleCleanTheta > 0 && cfg.RuleCleanTheta < 1:
		work = quality.CleanRules(work, cfg.RuleCleanTheta)
	default:
		// A copy-on-write fork, not a deep clone: the run only pays for
		// a copy if quality repair actually deletes facts, and the
		// receiver stays frozen for concurrent readers either way.
		work = work.Fork()
	}

	opts := groundOptions(ctx, cfg)
	opts.Journal = jr
	if p := cfg.Persist; p != nil {
		p.inner.SetJournal(jr)
		defer p.inner.SetJournal(nil)
		attachPersist(&opts, p, work)
	}
	if cfg.ApplyConstraints {
		// Query 3 runs once before inference starts (Section 6.1.1), and
		// again after every grounding iteration (Algorithm 1).
		precleaned := quality.PreClean(work)
		qualitySpan.SetAttr("precleaned", precleaned)
		opts.ConstraintHook = journaledHook(jr, quality.NewChecker(work))
		// Greedy constraint deletion can oscillate (delete a violating
		// fact, re-derive it, delete it again...), so a constrained run
		// without an explicit cap gets the paper's 15 iterations instead
		// of running to a fixpoint that may not exist.
		if opts.MaxIterations == 0 {
			opts.MaxIterations = DefaultConstrainedIterations
		}
	}
	qualitySpan.SetAttr("rules", len(work.Rules))
	qualitySpan.End()
	observeStage("quality", qualityStart)

	groundStart := time.Now()
	var (
		res *ground.Result
		err error
	)
	switch cfg.Engine {
	case SingleNode:
		res, err = ground.Ground(work, opts)
	case Baseline:
		var g *ground.TuffyGrounder
		if g, err = ground.NewTuffy(work, opts); err == nil {
			res, err = g.Ground()
		}
	case MPP, MPPNoViews:
		cl := mpp.NewCluster(segs)
		cl.SetContext(ctx)
		cl.SetJournal(jr)
		cl.SetWorkers(cfg.EngineWorkers)
		if f := cfg.Faults; f != nil {
			cl.SetFaults(&mpp.FaultPlan{
				Seed: f.Seed, FailRate: f.FailRate, PanicRate: f.PanicRate,
				StraggleRate: f.StraggleRate, StraggleDelay: f.StraggleDelay,
			})
		}
		cl.SetRetry(mpp.RetryPolicy{MaxRetries: cfg.SegmentRetries, Backoff: cfg.RetryBackoff})
		var g *ground.MPPGrounder
		if g, err = ground.NewMPP(work, opts, cl, cfg.Engine == MPP); err == nil {
			res, err = g.Ground()
		}
	default:
		return nil, fmt.Errorf("probkb: unknown engine %v", cfg.Engine)
	}
	if err != nil {
		// A cancelled or deadline-exceeded grounder still returns the
		// facts derived so far; surface them instead of dropping the
		// completed iterations.
		if res != nil && isCtxErr(err) {
			observeStage("ground", groundStart)
			exp := newExpansion(work, res, cfg, jr)
			exp.emitRunEnd()
			return nil, &PartialError{Phase: "ground", Partial: exp, Err: err}
		}
		return nil, err
	}
	observeStage("ground", groundStart)
	// The observer already made each iteration durable; this final sync
	// catches engines that do not invoke it and surfaces any append
	// error latched inside the observer.
	if err := persistFinal(cfg.Persist, work, res.Facts); err != nil {
		return nil, err
	}

	exp := newExpansion(work, res, cfg, jr)
	if cfg.RunInference {
		if err := exp.runInference(ctx); err != nil {
			if isCtxErr(err) {
				// The run as a whole did not complete: a partial
				// expansion never reports Converged, even though the
				// grounding fixpoint itself was reached.
				res.Converged = false
				exp.emitRunEnd()
				return nil, &PartialError{Phase: "infer", Partial: exp, Err: err}
			}
			return nil, err
		}
		// Inference rewrote inferred facts' weights in place; persist
		// the marginals so recovery carries the probabilities too.
		if err := persistFinal(cfg.Persist, work, res.Facts); err != nil {
			return nil, err
		}
	}
	exp.emitRunEnd()
	root.SetAttr("facts", res.Facts.NumRows())
	obs.Default.Counter("probkb_expand_total", obs.L("engine", cfg.Engine.String())).Inc()
	return exp, nil
}

// journaledHook builds the grounders' constraint hook with a journal
// feed: each pass that found violations records a constraint_repair
// event tagged with the iteration the hook ran in.
func journaledHook(jr *journal.Writer, checker *quality.Checker) func(*engine.Table) int {
	iter := 0
	inner := checker.HookWithObserver(func(r quality.Repair) {
		jr.Emit(journal.TypeConstraintRepair, journal.Repair{
			Iteration: iter, Violations: r.Violations, Deleted: r.Deleted,
		})
	})
	return func(tpi *engine.Table) int {
		iter++
		return inner(tpi)
	}
}

// groundOptions builds the grounding options shared by ExpandContext and
// ExtendWith: the tracing context plus the progress-callback bridge.
func groundOptions(ctx context.Context, cfg Config) ground.Options {
	opts := ground.Options{MaxIterations: cfg.MaxIterations, Ctx: ctx, Workers: cfg.EngineWorkers}
	if cfg.OnIteration != nil {
		cb := cfg.OnIteration
		opts.OnIteration = func(st ground.IterStats) {
			cb(IterationStats{
				Iteration: st.Iteration,
				NewFacts:  st.NewFacts,
				Deleted:   st.Deleted,
				Queries:   st.Queries,
				Elapsed:   st.Elapsed,
			})
		}
	}
	return opts
}

// inferOptions builds the sampling options for cfg, bridging the
// OnGibbsSweep callback.
func inferOptions(cfg Config) infer.Options {
	opts := infer.Options{
		Burnin:   cfg.GibbsBurnin,
		Samples:  cfg.GibbsSamples,
		Seed:     cfg.Seed,
		Parallel: cfg.GibbsParallel,
	}
	if cfg.OnGibbsSweep != nil {
		cb := cfg.OnGibbsSweep
		opts.OnIteration = func(st infer.SweepStats) {
			cb(GibbsSweep{
				Sweep:   st.Sweep,
				Burnin:  st.Burnin,
				Vars:    st.Vars,
				Flips:   st.Flips,
				Elapsed: st.Elapsed,
			})
		}
	}
	return opts
}

// observeStage records one expansion stage's wall time.
func observeStage(stage string, start time.Time) {
	obs.Default.Histogram("probkb_expand_stage_seconds", nil, obs.L("stage", stage)).
		Observe(time.Since(start).Seconds())
}

// probability converts a stored weight to the exported probability:
// observed weights pass through, NULL becomes NaN.
func probability(w float64) float64 {
	if engine.IsNullFloat64(w) {
		return math.NaN()
	}
	return w
}
