package probkb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probkb/internal/obs/journal"
)

// persistConfig is a single-node run with inference on a fixed seed —
// the configuration the durability tests expand under.
func persistConfig() Config {
	return Config{
		Engine:           SingleNode,
		ApplyConstraints: true,
		RunInference:     true,
		GibbsBurnin:      50,
		GibbsSamples:     100,
		Seed:             7,
	}
}

// snapshotBytes renders a KB as its binary snapshot — the bitwise
// yardstick the recovery tests compare with.
func snapshotBytes(t *testing.T, k *KB) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := k.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPersistedExpandRecovers runs a persisted expansion, drops the
// store handle without any shutdown courtesy (the crash), and recovers:
// the reopened KB must be bit-identical to the live mirror — facts,
// marginal probabilities, dictionaries, IDs.
func TestPersistedExpandRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := CreateStore(dir, paperKB(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := persistConfig()
	cfg.Persist = st
	exp, err := paperKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Err() != nil {
		t.Fatalf("persistence error latched: %v", st.Err())
	}
	if st.WALRecords() == 0 {
		t.Fatal("persisted expansion appended no WAL records")
	}
	live := snapshotBytes(t, st.KB())
	// No Close, no Checkpoint: recovery gets whatever the WAL holds.

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := snapshotBytes(t, re.KB()); string(got) != string(live) {
		t.Fatal("recovered KB differs from the live mirror")
	}
	if re.Facts() != exp.Stats().TotalFacts {
		t.Fatalf("recovered %d facts, expansion holds %d", re.Facts(), exp.Stats().TotalFacts)
	}
	// Every inferred fact's marginal survived: probabilities live in the
	// recovered weights, not just in the expansion object.
	recovered := re.KB()
	for _, f := range exp.InferredFacts() {
		found := recovered.inner.Facts
		ok := false
		for _, rf := range found {
			if recovered.inner.RelDict.Name(rf.Rel) == f.Rel &&
				recovered.inner.Entities.Name(rf.X) == f.X &&
				recovered.inner.Entities.Name(rf.Y) == f.Y &&
				rf.W == f.Probability {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("inferred fact %s(%s, %s) p=%v missing from recovered KB", f.Rel, f.X, f.Y, f.Probability)
		}
	}
}

// TestPersistCheckpointFoldsWAL checkpoints after a persisted run: the
// WAL resets, the generation advances, and recovery still lands on the
// same KB from the snapshot alone.
func TestPersistCheckpointFoldsWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := CreateStore(dir, paperKB(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := persistConfig()
	cfg.Persist = st
	if _, err := paperKB(t).Expand(cfg); err != nil {
		t.Fatal(err)
	}
	live := snapshotBytes(t, st.KB())
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st.Gen() != 2 || st.WALRecords() != 0 {
		t.Fatalf("after checkpoint: gen=%d records=%d, want gen=2 records=0", st.Gen(), st.WALRecords())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := snapshotBytes(t, re.KB()); string(got) != string(live) {
		t.Fatal("post-checkpoint recovery differs from the live mirror")
	}
}

// TestCreateStoreRefusesExisting pins the clobber guard: pointing
// CreateStore at a directory that already holds a store must fail.
func TestCreateStoreRefusesExisting(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := CreateStore(dir, paperKB(t))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := CreateStore(dir, paperKB(t)); err == nil || !strings.Contains(err.Error(), "already holds a store") {
		t.Fatalf("CreateStore over an existing store: %v", err)
	}
}

// TestRecoveredKBExtendsIdentically is the differential determinism
// test: expanding and then extending a *recovered* KB must produce
// byte-identical canonical journals to the same pipeline on a KB that
// was never persisted. Same seed, same Config.Hash() — persistence and
// recovery must be invisible to every result-determining byte.
func TestRecoveredKBExtendsIdentically(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := CreateStore(dir, paperKB(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := persistConfig()
	cfg.Persist = st
	exp, err := paperKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Path A: the never-persisted continuation — the expanded KB kept in
	// memory. Path B: the same state read back through snapshot + WAL
	// replay.
	memKB := exp.ToKB()
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recKB := re.KB()

	delta := []Fact{{
		Rel: "born_in", X: "Elie_Wiesel", XClass: "Writer",
		Y: "New_York_City", YClass: "City", Probability: 0.9,
	}}
	pipeline := func(k *KB) ([]journal.Event, []journal.Event) {
		t.Helper()
		e, err := k.Expand(persistConfig())
		if err != nil {
			t.Fatal(err)
		}
		ext, err := e.ExtendWith(delta)
		if err != nil {
			t.Fatal(err)
		}
		return journal.Canonicalize(e.Journal().Events()),
			journal.Canonicalize(ext.Journal().Events())
	}
	memExpand, memExtend := pipeline(memKB)
	recExpand, recExtend := pipeline(recKB)

	diff := func(name string, a, b []journal.Event) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: event counts differ: %d in-memory vs %d recovered", name, len(a), len(b))
		}
		for i := range a {
			ja, _ := json.Marshal(a[i])
			jb, _ := json.Marshal(b[i])
			if string(ja) != string(jb) {
				t.Fatalf("%s: event %d differs:\nin-memory: %s\nrecovered: %s", name, i, ja, jb)
			}
		}
	}
	diff("expand", memExpand, recExpand)
	diff("extend", memExtend, recExtend)
}
