// Knowledge expansion over a web-scale-style noisy KB: the full ProbKB
// pipeline of the paper on a synthetic ReVerb-Sherlock-like corpus with
// a planted ground truth.
//
// The example contrasts four quality-control configurations (Table 4 of
// the paper) and scores each expansion's inferred facts against the
// hidden truth — the Figure 7(a) experiment in miniature.
//
// Run with:
//
//	go run ./examples/knowledge-expansion
package main

import (
	"fmt"
	"log"

	"probkb"
)

func main() {
	// A synthetic knowledge base: ~8K extracted facts, ~600 learned Horn
	// rules (a third of them unsound), functional constraints, ambiguous
	// surface names — plus an oracle that knows the hidden true world.
	kb, truth, err := probkb.Synthesize(0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := kb.Stats()
	fmt.Printf("synthetic KB: %d facts, %d rules, %d relations, %d entities, %d constraints\n",
		st.Facts, st.Rules, st.Relations, st.Entities, st.Constraints)
	fmt.Printf("hidden true world: %d facts\n\n", truth.WorldSize())

	configs := []struct {
		name string
		cfg  probkb.Config
	}{
		{"no quality control", probkb.Config{
			Engine: probkb.SingleNode, MaxIterations: 4,
		}},
		{"rule cleaning (top 20%)", probkb.Config{
			Engine: probkb.SingleNode, MaxIterations: 4, RuleCleanTheta: 0.2,
		}},
		{"semantic constraints", probkb.Config{
			Engine: probkb.SingleNode, MaxIterations: 15, ApplyConstraints: true,
		}},
		{"constraints + rule cleaning", probkb.Config{
			Engine: probkb.SingleNode, MaxIterations: 15, ApplyConstraints: true, RuleCleanTheta: 0.2,
		}},
	}

	fmt.Printf("%-30s %10s %10s %10s %12s\n", "configuration", "#inferred", "#correct", "precision", "grounding")
	for _, c := range configs {
		exp, err := kb.Expand(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		prec, correct, total := truth.Precision(exp)
		fmt.Printf("%-30s %10d %10d %10.3f %12s\n",
			c.name, total, correct, prec, exp.Stats().GroundingTime.Round(1000))
	}

	fmt.Println("\nquality control removes unsound rules and ambiguous entities before")
	fmt.Println("they can poison the inference chain (Section 5 of the paper).")
}
