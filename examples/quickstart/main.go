// Quickstart: the smallest end-to-end ProbKB run, using the paper's
// introductory example — Wikipedia states that kale is rich in calcium
// and that calcium helps prevent osteoporosis, so ProbKB infers that
// kale helps prevent osteoporosis, with a probability.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probkb"
)

func main() {
	k := probkb.New()

	// Facts extracted from text, with extraction confidences.
	k.AddFact("rich_in", "kale", "Food", "calcium", "Nutrient", 0.9)
	k.AddFact("prevents", "calcium", "Nutrient", "osteoporosis", "Disease", 0.8)
	k.AddFact("rich_in", "spinach", "Food", "iron", "Nutrient", 0.85)
	k.AddFact("prevents", "iron", "Nutrient", "anemia", "Disease", 0.75)

	// One learned Horn rule: a food rich in a nutrient that prevents a
	// disease probably prevents that disease too.
	k.MustAddRule("1.1 prevents(x:Food, y:Disease) :- rich_in(x:Food, z:Nutrient), prevents(z:Nutrient, y:Disease)")

	// Expand: batched grounding + Gibbs marginal inference.
	exp, err := k.Expand(probkb.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	st := exp.Stats()
	fmt.Printf("expanded %d base facts into %d (+%d inferred) using %d grounding queries\n",
		st.BaseFacts, st.TotalFacts, st.InferredFacts, st.AtomQueries)
	fmt.Println("\ninferred facts with marginal probabilities:")
	for _, f := range exp.InferredFacts() {
		fmt.Println(" ", f)
	}

	// Every inferred fact carries its lineage.
	why, err := exp.Explain("prevents", "kale", "osteoporosis", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhy prevents(kale, osteoporosis)?")
	fmt.Print(why)
}
