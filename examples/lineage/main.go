// Lineage: the ground factor table TΦ records which facts derived which
// (Definition 7 of the paper notes it "contains the entire lineage"),
// so every inferred fact can be explained. This example rebuilds the
// paper's running example (Table 1: Ruth Gruber) and prints proof trees.
//
// Run with:
//
//	go run ./examples/lineage
package main

import (
	"fmt"
	"log"

	"probkb"
)

func main() {
	k := probkb.New()

	// The extractions of Table 1.
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)

	// The Sherlock-style rules of Table 1.
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	k.MustAddRule("1.53 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)")
	k.MustAddRule("0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)")
	k.MustAddRule("0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)")

	exp, err := k.Expand(probkb.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("expanded KB:")
	for _, f := range exp.Facts() {
		marker := " "
		if f.Inferred {
			marker = "+"
		}
		fmt.Printf(" %s %s\n", marker, f)
	}

	vars, factors, singletons, err := exp.FactorGraphStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nground factor graph: %d variables, %d factors (%d singleton) — Figure 2/3 of the paper\n",
		vars, factors, singletons)

	// located_in(Brooklyn, New_York_City) has two derivations: through
	// the live_in pair (w=0.32) and through the born_in pair (w=0.52).
	why, err := exp.Explain("located_in", "Brooklyn", "New_York_City", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhy located_in(Brooklyn, New_York_City)?")
	fmt.Print(why)
}
