// MPP scaling: the same knowledge expansion on the single-node engine,
// the Tuffy-style per-rule baseline, and the shared-nothing MPP cluster
// with and without redistributed materialized views — the systems
// compared in Section 6.1 of the paper.
//
// Run with:
//
//	go run ./examples/mpp-scaling [-scale 0.05] [-segments 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"probkb"
)

func main() {
	scale := flag.Float64("scale", 0.05, "corpus scale (1.0 = the paper's 407K facts)")
	segments := flag.Int("segments", 4, "MPP cluster segments")
	flag.Parse()

	kb, _, err := probkb.Synthesize(*scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := kb.Stats()
	fmt.Printf("corpus: %d facts, %d rules; cluster: %d segments\n\n", st.Facts, st.Rules, *segments)

	engines := []probkb.Engine{probkb.Baseline, probkb.SingleNode, probkb.MPPNoViews, probkb.MPP}
	fmt.Printf("%-10s %10s %12s %12s %10s %10s\n",
		"engine", "load", "grounding", "factors", "queries", "facts")
	for _, eng := range engines {
		exp, err := kb.Expand(probkb.Config{
			Engine:           eng,
			Segments:         *segments,
			MaxIterations:    4,
			ApplyConstraints: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := exp.Stats()
		fmt.Printf("%-10s %10s %12s %12s %10d %10d\n",
			eng, s.LoadTime.Round(10000), s.GroundingTime.Round(10000), s.FactorTime.Round(10000),
			s.AtomQueries+s.FactorQueries, s.TotalFacts)
	}

	fmt.Println("\nProbKB applies each rule partition with one join (O(partitions) queries);")
	fmt.Println("Tuffy-T issues one query per rule (O(rules)). The MPP engines parallelize")
	fmt.Println("across segments; the views variant avoids motion by keeping a copy of the")
	fmt.Println("facts table distributed on every join key (Section 4.4).")
}
