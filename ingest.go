package probkb

import (
	"context"
	"sync"

	"probkb/internal/epoch"
	"probkb/internal/ingest"
)

// Ingester adapts an Expansion to the streaming-ingest pipeline: it is
// the ingest.Absorber that lands each batch with a deferred extend
// (semi-naive delta grounding plus WAL durability, no inference) and
// pays down marginal staleness with RefreshMarginals. Every absorbed
// batch publishes a fresh immutable generation through an epoch
// manager, so concurrent readers see each batch's closure as soon as
// its ack is computed — exactly-once, never torn.
//
// All methods are safe for concurrent use, but absorption is serial: an
// ingest.Pipeline's single writer is the intended caller of Absorb and
// Refresh.
type Ingester struct {
	mu     sync.Mutex
	cur    *Expansion
	epochs *epoch.Manager[*Expansion]

	// onPublish, when set, observes every published generation.
	onPublish func(gen uint64, e *Expansion)
}

// IngesterOption tweaks NewIngester.
type IngesterOption func(*Ingester)

// WithOnPublish observes every generation the ingester publishes —
// both batch absorptions and marginal refreshes. The hook runs with the
// ingester's write lock held; keep it cheap.
func WithOnPublish(fn func(gen uint64, e *Expansion)) IngesterOption {
	return func(in *Ingester) { in.onPublish = fn }
}

// NewIngester serves e as generation 1 and absorbs batches on top of
// it.
func NewIngester(e *Expansion, opts ...IngesterOption) *Ingester {
	in := &Ingester{cur: e, epochs: epoch.New(e, nil)}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Pipeline wires the ingester into a new ingest.Pipeline with cfg and
// starts it under ctx. Closing the pipeline (or cancelling ctx) leaves
// the ingester serving its last published generation.
func (in *Ingester) Pipeline(ctx context.Context, cfg ingest.Config) *ingest.Pipeline {
	p := ingest.New(in, cfg)
	p.Start(ctx)
	return p
}

// Current pins the latest published expansion for reading. The caller
// must Unpin when done; the expansion is immutable and stays valid
// until then even as later batches publish newer generations.
func (in *Ingester) Current() *epoch.Pin[*Expansion] { return in.epochs.Pin() }

// Generation returns the latest published generation number.
func (in *Ingester) Generation() uint64 { return in.epochs.Current() }

// Absorb lands one batch: a deferred extend (facts + closure visible
// and durable immediately, marginals left stale) published as a new
// generation. It implements ingest.Absorber.
func (in *Ingester) Absorb(ctx context.Context, facts []ingest.Fact) (ingest.Ack, error) {
	batch := make([]Fact, len(facts))
	for i, f := range facts {
		batch[i] = Fact{
			Rel: f.Rel,
			X:   f.X, XClass: f.XClass,
			Y: f.Y, YClass: f.YClass,
			Probability: f.Probability,
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	prev := in.cur
	prevFacts := prev.res.Facts.NumRows()
	next, err := prev.ExtendWithDeferred(ctx, batch)
	if err != nil {
		return ingest.Ack{}, err
	}
	ack := ingest.Ack{
		Added:   next.res.BaseFacts - prevFacts,
		Derived: next.res.InferredFacts(),
	}
	if p := next.cfg.Persist; p != nil {
		ack.DurableSeq = p.WALRecords()
	}
	ack.Generation = in.publishLocked(next)
	return ack, nil
}

// Refresh pays down marginal staleness: a factor pass plus Gibbs
// inference over the accumulated closure, published as a new
// generation. It implements ingest.Absorber.
func (in *Ingester) Refresh(ctx context.Context) (uint64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	next, err := in.cur.RefreshMarginals(ctx)
	if err != nil {
		return 0, err
	}
	return in.publishLocked(next), nil
}

func (in *Ingester) publishLocked(next *Expansion) uint64 {
	in.cur = next
	gen := in.epochs.Publish(next)
	if in.onPublish != nil {
		in.onPublish(gen, next)
	}
	return gen
}
