package kb

import (
	"reflect"
	"sync"
	"testing"
)

func forkFixture(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.InternFact("born_in", "kafka", "Writer", "prague", "Place", 0.9)
	k.InternFact("located_in", "prague", "Place", "czechia", "Country", 0.8)
	c, err := k.ParseRule("1.2 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(c); err != nil {
		t.Fatal(err)
	}
	if err := k.AddConstraint(Constraint{Rel: k.RelDict.Intern("born_in"), Type: TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	return k
}

// snapshotOf captures every externally observable piece of a KB so a
// test can assert the frozen side of a fork did not move.
type kbSnapshot struct {
	stats    Stats
	facts    []Fact
	members  []ClassMember
	entities []string
	classes  []string
	rels     []string
}

func snapshotOf(k *KB) kbSnapshot {
	return kbSnapshot{
		stats:    k.Stats(),
		facts:    append([]Fact(nil), k.Facts...),
		members:  append([]ClassMember(nil), k.Members...),
		entities: append([]string(nil), k.Entities.Names()...),
		classes:  append([]string(nil), k.Classes.Names()...),
		rels:     append([]string(nil), k.RelDict.Names()...),
	}
}

// TestForkIsolation is the COW contract: every mutation class applied
// to a fork — new symbols, new facts, in-place weight writes, fact
// deletion, wholesale replacement, rules, constraints, hierarchy — must
// leave the frozen parent byte-for-byte unchanged, and vice versa.
func TestForkIsolation(t *testing.T) {
	parent := forkFixture(t)
	before := snapshotOf(parent)

	fork := parent.Fork()
	// Mutate the fork through every write path.
	fork.InternFact("died_in", "kafka", "Writer", "vienna", "Place", 0.7)
	if !fork.SetWeight(fork.Facts[0].Key(), 0.123) {
		t.Fatal("SetWeight missed an existing fact")
	}
	fork.DeleteFacts(map[Key]bool{fork.Facts[1].Key(): true})
	if err := fork.DeclareSubclass(fork.Classes.Intern("Novelist"), fork.Classes.Intern("Writer")); err != nil {
		t.Fatal(err)
	}
	fork.AddMember(fork.Classes.Intern("Novelist"), fork.Entities.Intern("kafka"))
	if err := fork.AddConstraint(Constraint{Rel: fork.RelDict.Intern("died_in"), Type: TypeII, Degree: 2}); err != nil {
		t.Fatal(err)
	}

	if got := snapshotOf(parent); !reflect.DeepEqual(got, before) {
		t.Fatalf("fork mutations leaked into the frozen parent:\nbefore: %+v\nafter:  %+v", before, got)
	}

	// The reverse direction: mutate the parent, the fork must not move.
	forkBefore := snapshotOf(fork)
	parent.InternFact("wrote", "kafka", "Writer", "the_trial", "Book", 0.95)
	parent.SetWeight(parent.Facts[0].Key(), 0.5)
	if got := snapshotOf(fork); !reflect.DeepEqual(got, forkBefore) {
		t.Fatalf("parent mutations leaked into the fork:\nbefore: %+v\nafter:  %+v", forkBefore, got)
	}
}

// TestForkOfFork chains forks: generation N+2 built on N+1 built on N,
// each isolated from the others.
func TestForkOfFork(t *testing.T) {
	g1 := forkFixture(t)
	g2 := g1.Fork()
	g2.InternFact("died_in", "kafka", "Writer", "vienna", "Place", 0.7)
	g3 := g2.Fork()
	g3.InternFact("buried_in", "kafka", "Writer", "prague", "Place", 0.6)

	if got := g1.Stats().Facts; got != 2 {
		t.Errorf("g1 facts: got %d, want 2", got)
	}
	if got := g2.Stats().Facts; got != 3 {
		t.Errorf("g2 facts: got %d, want 3", got)
	}
	if got := g3.Stats().Facts; got != 4 {
		t.Errorf("g3 facts: got %d, want 4", got)
	}
}

// TestForkPreservesIDs asserts dictionary IDs survive a fork unchanged
// and new symbols extend, never renumber — cached query keys and tables
// built against generation N stay valid against N+1.
func TestForkPreservesIDs(t *testing.T) {
	parent := forkFixture(t)
	fork := parent.Fork()
	fork.InternFact("died_in", "kafka", "Writer", "vienna", "Place", 0.7)
	for _, name := range parent.Entities.Names() {
		pid, _ := parent.Entities.Lookup(name)
		fid, ok := fork.Entities.Lookup(name)
		if !ok || pid != fid {
			t.Fatalf("entity %q: parent id %d, fork id %d (ok=%v)", name, pid, fid, ok)
		}
	}
	if _, ok := parent.Entities.Lookup("vienna"); ok {
		t.Fatal("fork's new symbol visible in the frozen parent")
	}
}

// TestForkConcurrentReadsDuringWrite drives the serving-tier access
// pattern under -race: readers resolve symbols and scan facts on the
// frozen side while the fork interns, appends, deletes and rewrites
// weights concurrently.
func TestForkConcurrentReadsDuringWrite(t *testing.T) {
	parent := forkFixture(t)
	fork := parent.Fork()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if id, ok := parent.Entities.Lookup("kafka"); !ok || parent.Entities.Name(id) != "kafka" {
					t.Error("frozen parent lost a symbol mid-write")
					return
				}
				n := 0
				for _, f := range parent.Facts {
					if f.W < 0 || f.W > 1 {
						t.Errorf("frozen parent fact weight torn: %v", f.W)
						return
					}
					n++
				}
				if n != 2 {
					t.Errorf("frozen parent fact count moved: %d", n)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		fork.InternFact("rel", "e", "C", "e2", "C", float64(i%100)/100)
		fork.SetWeight(fork.Facts[0].Key(), float64(i%100)/100)
		if i%50 == 0 {
			fork.DeleteFacts(map[Key]bool{fork.Facts[len(fork.Facts)-1].Key(): true})
		}
	}
	close(stop)
	wg.Wait()
}
