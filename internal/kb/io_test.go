package kb

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probkb/internal/mln"
)

func TestParseRuleShapes(t *testing.T) {
	k := New()
	cases := []struct {
		line string
		want int
	}{
		{"1.4 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)", mln.P1},
		{"0.9 author_of(x:Writer, y:Book) :- wrote(y:Book, x:Writer)", mln.P2},
		{"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)", mln.P3},
		{"0.5 p(x:A, y:B) :- q(x:A, z:C), r(z, y:B)", mln.P4},
		{"0.5 p(x:A, y:B) :- q(z:C, x:A), r(y:B, z)", mln.P5},
		{"0.5 p(x:A, y:B) :- q(x:A, z:C), r(y:B, z)", mln.P6},
	}
	for _, tc := range cases {
		c, err := k.ParseRule(tc.line)
		if err != nil {
			t.Errorf("parse %q: %v", tc.line, err)
			continue
		}
		got, err := c.Partition()
		if err != nil || got != tc.want {
			t.Errorf("%q: partition = %d, %v; want %d", tc.line, got, err, tc.want)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	k := New()
	cases := []string{
		"",                                        // empty
		"1.4",                                     // no atoms
		"oops p(x:A, y:B) :- q(x, y)",             // bad weight
		"1.4 p(x:A, y:B)",                         // missing :-
		"1.4 p(x:A) :- q(x, y:B)",                 // unary head
		"1.4 p(x:A, y:B) :- q(x, y), r(x, y)",     // body atom with both head vars
		"1.4 p(x:A, y:B) :- q(x, z)",              // dangling z
		"1.4 p(x, y) :- q(x, y)",                  // no class annotations
		"1.4 p(x:A, y:B) :- q(x:Z, y)",            // conflicting annotation for x
		"1.4 p(x:A, y:B) :- q(w:C, v:D), r(v, y)", // too many variables
		"1.4 (x:A, y:B) :- q(x, y)",               // empty relation name
	}
	for _, line := range cases {
		if _, err := k.ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", line)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	k := New()
	lines := []string{
		"1.4 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z:Writer, y:City)",
		"0.5 p(x:A, y:B) :- q(x:A, z:C), r(y:B, z:C)",
	}
	for _, line := range lines {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		formatted := k.FormatRule(c)
		c2, err := k.ParseRule(formatted)
		if err != nil {
			t.Fatalf("re-parse %q: %v", formatted, err)
		}
		if c.Head != c2.Head || len(c.Body) != len(c2.Body) || c.Class != c2.Class || c.Weight != c2.Weight {
			t.Fatalf("round trip changed clause: %q -> %q", line, formatted)
		}
		for i := range c.Body {
			if c.Body[i] != c2.Body[i] {
				t.Fatalf("round trip changed body: %q -> %q", line, formatted)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	k := exampleKB(t)
	dir := filepath.Join(t.TempDir(), "kbdir")
	if err := k.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != k.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", loaded.Stats(), k.Stats())
	}
	// Every original fact must exist in the loaded KB under its names.
	for _, f := range k.Facts {
		name := k.FactString(f)
		found := false
		for _, lf := range loaded.Facts {
			if loaded.FactString(lf) == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fact %q lost in round trip", name)
		}
	}
	// Rules and constraints survive.
	if len(loaded.Rules) != len(k.Rules) || len(loaded.Constraints) != len(k.Constraints) {
		t.Fatal("rules or constraints lost")
	}
}

func TestLoadDirMissingOptionalFiles(t *testing.T) {
	k := New()
	k.InternFact("r", "a", "C", "b", "D", 0.5)
	dir := filepath.Join(t.TempDir(), "kbdir")
	if err := k.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []string{"rules.txt", "constraints.tsv", "members.tsv"} {
		if err := os.Remove(filepath.Join(dir, opt)); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Facts != 1 {
		t.Fatal("facts lost")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading a missing directory should fail")
	}
	// Corrupt facts file.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "relations.tsv"), []byte("r\tA\tB\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "facts.tsv"), []byte("only\ttwo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "facts.tsv:1") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestWeightFormatting(t *testing.T) {
	cases := map[string]float64{
		"inf":  math.Inf(1),
		"0.96": 0.96,
	}
	for s, w := range cases {
		got, err := parseWeight(s)
		if err != nil {
			t.Fatalf("parseWeight(%q): %v", s, err)
		}
		if got != w {
			t.Fatalf("parseWeight(%q) = %v, want %v", s, got, w)
		}
	}
	if v, err := parseWeight("null"); err != nil || !math.IsNaN(v) {
		t.Fatal("null weight should parse to NaN")
	}
	if formatWeight(math.NaN()) != "null" || formatWeight(math.Inf(1)) != "inf" {
		t.Fatal("formatWeight sentinel handling wrong")
	}
	if _, err := parseWeight("abc"); err == nil {
		t.Fatal("bad weight accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	dir := t.TempDir()
	content := "# comment\n\nr\tA\tB\n"
	if err := os.WriteFile(filepath.Join(dir, "relations.tsv"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "facts.tsv"), []byte("# none\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RelDict.Len() != 1 {
		t.Fatal("comment or blank line mishandled")
	}
}
