// Package kb implements the probabilistic knowledge base model of
// Definition 1 in the paper: Γ = (E, C, R, Π, L), with L split into the
// deductive Horn rules H (package mln) and the semantic constraints Ω
// (Section 5.1).
//
// The package owns the string dictionaries, the typed relation catalog,
// the weighted fact set Π, and the serialization format the command-line
// tools exchange. The relational projections of all of these (TΠ, TC, TR,
// and the dictionary tables) live in relational.go.
package kb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"probkb/internal/mln"
)

// Relation describes one typed binary relation R(Domain, Range) ∈ R.
type Relation struct {
	ID     int32
	Name   string
	Domain int32 // class ID
	Range  int32 // class ID
}

// Fact is one weighted relationship (r, w) ∈ Π: Rel(X, Y) with the
// argument classes replicated per Definition 4 (the C1/C2 columns exist
// to avoid joining TC during grounding). A NaN weight marks an inferred
// fact whose probability is pending marginal inference.
type Fact struct {
	Rel    int32
	X      int32
	XClass int32
	Y      int32
	YClass int32
	W      float64
}

// Key identifies a fact up to weight; TΠ holds one row per key.
type Key struct {
	Rel, X, XClass, Y, YClass int32
}

// Key returns the fact's identity key.
func (f Fact) Key() Key {
	return Key{Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass}
}

// Constraint types (Definition 9/10): a Type I functional relation maps
// each x to at most Degree distinct y; Type II is the converse.
const (
	TypeI  = 1
	TypeII = 2
)

// Constraint is one functional (or pseudo-functional) semantic constraint
// ω ∈ Ω over relation Rel. Degree is δ, the degree of functionality; 1
// for strictly functional relations.
type Constraint struct {
	Rel    int32
	Type   int
	Degree int
}

// KB is an in-memory probabilistic knowledge base.
type KB struct {
	Entities *Dict
	Classes  *Dict
	RelDict  *Dict

	// Relations is indexed by relation ID (parallel to RelDict).
	Relations []Relation
	// Members lists the (class, entity) typing pairs that make up TC.
	Members []ClassMember
	// Facts is Π. The slice index of a base fact is its initial fact ID
	// in TΠ.
	Facts []Fact
	// Rules is H, the deductive MLN.
	Rules []mln.Clause
	// Constraints is Ω.
	Constraints []Constraint

	// superOf[c] lists c's direct superclasses (Remark 1 of Definition 1:
	// Ci ⊆ Cj defines a class hierarchy; membership propagates upward).
	superOf map[int32][]int32

	memberSet map[ClassMember]struct{}
	factSet   map[Key]int
	relSigs   map[Relation]struct{}

	// shared marks this KB's slices and maps as visible to a Fork; the
	// next mutation copies them privately first (see materialize).
	shared bool
}

// ClassMember is one (class, entity) typing pair.
type ClassMember struct {
	Class  int32
	Entity int32
}

// New returns an empty knowledge base.
func New() *KB {
	return &KB{
		Entities:  NewDict(),
		Classes:   NewDict(),
		RelDict:   NewDict(),
		superOf:   make(map[int32][]int32),
		memberSet: make(map[ClassMember]struct{}),
		factSet:   make(map[Key]int),
		relSigs:   make(map[Relation]struct{}),
	}
}

// AddRelation interns a relation name and registers the (R, domain,
// range) signature, returning the relation's name ID. One name may carry
// several signatures — the paper's Table 1 has both born_in(W, P) and
// born_in(W, C) — so TR is a *set* of triples, not a function of the
// name.
func (k *KB) AddRelation(name string, domain, rng int32) int32 {
	k.materialize()
	id := k.RelDict.Intern(name)
	sig := Relation{ID: id, Name: name, Domain: domain, Range: rng}
	if _, ok := k.relSigs[sig]; !ok {
		k.relSigs[sig] = struct{}{}
		k.Relations = append(k.Relations, sig)
	}
	return id
}

// AddMember records entity ∈ class and propagates the membership to every
// (transitive) superclass; duplicates are ignored.
func (k *KB) AddMember(class, entity int32) {
	k.materialize()
	m := ClassMember{Class: class, Entity: entity}
	if _, ok := k.memberSet[m]; ok {
		return
	}
	k.memberSet[m] = struct{}{}
	k.Members = append(k.Members, m)
	for _, super := range k.superOf[class] {
		k.AddMember(super, entity)
	}
}

// DeclareSubclass records sub ⊆ super, propagating sub's existing members
// into super. Cycles are rejected (a class hierarchy is a DAG).
func (k *KB) DeclareSubclass(sub, super int32) error {
	k.materialize()
	if sub == super {
		return fmt.Errorf("kb: class %s cannot be its own superclass", k.Classes.Name(sub))
	}
	if k.IsSubclass(super, sub) {
		return fmt.Errorf("kb: declaring %s ⊆ %s would create a cycle",
			k.Classes.Name(sub), k.Classes.Name(super))
	}
	for _, s := range k.superOf[sub] {
		if s == super {
			return nil // already declared
		}
	}
	k.superOf[sub] = append(k.superOf[sub], super)
	// Propagate existing members.
	for _, m := range k.MembersOf(sub) {
		k.AddMember(super, m)
	}
	return nil
}

// IsSubclass reports whether sub ⊆ super holds transitively (every class
// is a subclass of itself).
func (k *KB) IsSubclass(sub, super int32) bool {
	if sub == super {
		return true
	}
	for _, s := range k.superOf[sub] {
		if k.IsSubclass(s, super) {
			return true
		}
	}
	return false
}

// Superclasses returns the transitive superclasses of c (excluding c),
// in breadth-first order without duplicates.
func (k *KB) Superclasses(c int32) []int32 {
	seen := map[int32]bool{c: true}
	var out []int32
	frontier := []int32{c}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, f := range frontier {
			for _, s := range k.superOf[f] {
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
					next = append(next, s)
				}
			}
		}
		frontier = next
	}
	return out
}

// SubclassEdge is one declared Sub ⊆ Super relationship.
type SubclassEdge struct {
	Sub, Super int32
}

// SubclassEdges returns every declared subclass edge, sorted for
// deterministic serialization.
func (k *KB) SubclassEdges() []SubclassEdge {
	var out []SubclassEdge
	for sub, supers := range k.superOf {
		for _, super := range supers {
			out = append(out, SubclassEdge{Sub: sub, Super: super})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Sub != out[b].Sub {
			return out[a].Sub < out[b].Sub
		}
		return out[a].Super < out[b].Super
	})
	return out
}

// MembersOf returns the entities recorded as members of class c.
func (k *KB) MembersOf(c int32) []int32 {
	var out []int32
	for _, m := range k.Members {
		if m.Class == c {
			out = append(out, m.Entity)
		}
	}
	return out
}

// AddFact appends a weighted fact, deduplicating on the fact key; it
// returns the fact's index and whether it was newly added. A duplicate
// keeps the maximum weight seen (extractions repeat with varying
// confidence).
func (k *KB) AddFact(f Fact) (int, bool) {
	k.materialize()
	if i, ok := k.factSet[f.Key()]; ok {
		if f.W > k.Facts[i].W {
			k.Facts[i].W = f.W
		}
		return i, false
	}
	i := len(k.Facts)
	k.Facts = append(k.Facts, f)
	k.factSet[f.Key()] = i
	k.AddMember(f.XClass, f.X)
	k.AddMember(f.YClass, f.Y)
	return i, true
}

// ReplaceFacts swaps the fact set Π for a new one, rebuilding the
// deduplication index. Quality control uses it after constraint-driven
// deletions.
func (k *KB) ReplaceFacts(facts []Fact) {
	k.materialize()
	k.Facts = k.Facts[:0]
	k.factSet = make(map[Key]int, len(facts))
	for _, f := range facts {
		k.AddFact(f)
	}
}

// HasFact reports whether the key is present.
func (k *KB) HasFact(key Key) bool {
	_, ok := k.factSet[key]
	return ok
}

// SetWeight assigns the weight of the fact with the given key and
// reports whether the fact exists. Assignment (not max-merge) makes it
// idempotent — the storage engine replays marginal updates through it,
// and a duplicated WAL tail must not change the outcome.
func (k *KB) SetWeight(key Key, w float64) bool {
	k.materialize()
	i, ok := k.factSet[key]
	if !ok {
		return false
	}
	k.Facts[i].W = w
	return true
}

// DeleteFacts removes the facts whose keys appear in keys, preserving
// the order of the survivors, and returns how many were removed.
// Class memberships are untouched (the paper's Query 3 deletes facts,
// not typings). Deleting absent keys is a no-op, which makes WAL
// replay of deletions idempotent.
func (k *KB) DeleteFacts(keys map[Key]bool) int {
	k.materialize()
	if len(keys) == 0 {
		return 0
	}
	kept := make([]Fact, 0, len(k.Facts))
	for _, f := range k.Facts {
		if !keys[f.Key()] {
			kept = append(kept, f)
		}
	}
	deleted := len(k.Facts) - len(kept)
	if deleted > 0 {
		k.Facts = k.Facts[:0:0]
		k.factSet = make(map[Key]int, len(kept))
		for _, f := range kept {
			i := len(k.Facts)
			k.Facts = append(k.Facts, f)
			k.factSet[f.Key()] = i
		}
	}
	return deleted
}

// AddRule appends a deductive Horn clause to H. Hard rules (infinite
// weight) belong in Constraints, not H; AddRule rejects them.
func (k *KB) AddRule(c mln.Clause) error {
	k.materialize()
	if c.Hard() {
		return fmt.Errorf("kb: hard rules are semantic constraints; use AddConstraint")
	}
	if _, err := c.Partition(); err != nil {
		return err
	}
	k.Rules = append(k.Rules, c)
	return nil
}

// AddConstraint appends a functional constraint to Ω.
func (k *KB) AddConstraint(c Constraint) error {
	k.materialize()
	if c.Type != TypeI && c.Type != TypeII {
		return fmt.Errorf("kb: constraint type must be %d or %d, got %d", TypeI, TypeII, c.Type)
	}
	if c.Degree < 1 {
		return fmt.Errorf("kb: constraint degree must be >= 1, got %d", c.Degree)
	}
	k.Constraints = append(k.Constraints, c)
	return nil
}

// InternFact is the string-level convenience used by loaders and tests:
// it interns all symbols, registers the relation signature and class
// memberships, and adds the fact.
func (k *KB) InternFact(rel, x, xClass, y, yClass string, w float64) (int, bool) {
	cx := k.Classes.Intern(xClass)
	cy := k.Classes.Intern(yClass)
	r := k.AddRelation(rel, cx, cy)
	return k.AddFact(Fact{
		Rel: r,
		X:   k.Entities.Intern(x), XClass: cx,
		Y: k.Entities.Intern(y), YClass: cy,
		W: w,
	})
}

// Stats summarizes the KB the way Table 2 of the paper does.
type Stats struct {
	Relations   int
	Rules       int
	Entities    int
	Facts       int
	Classes     int
	Constraints int
}

// Stats returns the KB's summary statistics.
func (k *KB) Stats() Stats {
	return Stats{
		Relations:   k.RelDict.Len(),
		Rules:       len(k.Rules),
		Entities:    k.Entities.Len(),
		Facts:       len(k.Facts),
		Classes:     k.Classes.Len(),
		Constraints: len(k.Constraints),
	}
}

// String renders the stats as the two-column layout of Table 2.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# relations %8d    # entities %8d\n", s.Relations, s.Entities)
	fmt.Fprintf(&b, "# rules     %8d    # facts    %8d\n", s.Rules, s.Facts)
	fmt.Fprintf(&b, "# classes   %8d    # constraints %5d\n", s.Classes, s.Constraints)
	return b.String()
}

// FactString renders a fact with symbolic names for debugging and reports.
func (k *KB) FactString(f Fact) string {
	w := "NULL"
	if !math.IsNaN(f.W) {
		w = fmt.Sprintf("%.2f", f.W)
	}
	return fmt.Sprintf("%s %s(%s:%s, %s:%s)", w,
		k.RelDict.Name(f.Rel),
		k.Entities.Name(f.X), k.Classes.Name(f.XClass),
		k.Entities.Name(f.Y), k.Classes.Name(f.YClass))
}

// RuleString renders a clause with symbolic names.
func (k *KB) RuleString(c mln.Clause) string {
	var b strings.Builder
	if c.Hard() {
		b.WriteString("inf ")
	} else {
		fmt.Fprintf(&b, "%.2f ", c.Weight)
	}
	atom := func(a mln.Atom) {
		fmt.Fprintf(&b, "%s(%s:%s, %s:%s)", k.RelDict.Name(a.Rel),
			a.Arg1, k.Classes.Name(c.Class[a.Arg1]),
			a.Arg2, k.Classes.Name(c.Class[a.Arg2]))
	}
	atom(c.Head)
	b.WriteString(" :- ")
	for i, a := range c.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		atom(a)
	}
	return b.String()
}

// Clone returns a deep copy of the KB. Quality-control experiments mutate
// fact and rule sets; cloning lets each configuration start from the same
// base.
func (k *KB) Clone() *KB {
	n := New()
	for _, name := range k.Entities.Names() {
		n.Entities.Intern(name)
	}
	for _, name := range k.Classes.Names() {
		n.Classes.Intern(name)
	}
	for _, r := range k.Relations {
		n.AddRelation(r.Name, r.Domain, r.Range)
	}
	for _, e := range k.SubclassEdges() {
		if err := n.DeclareSubclass(e.Sub, e.Super); err != nil {
			panic(err) // the source hierarchy was acyclic; a copy must be too
		}
	}
	for _, m := range k.Members {
		n.AddMember(m.Class, m.Entity)
	}
	for _, f := range k.Facts {
		n.AddFact(f)
	}
	n.Rules = append(n.Rules, k.Rules...)
	n.Constraints = append(n.Constraints, k.Constraints...)
	return n
}
