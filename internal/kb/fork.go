package kb

import "probkb/internal/mln"

// Fork returns a copy-on-write snapshot of the KB — the mutation
// barrier the MVCC serving tier builds generations on. The fork is O(1):
// both sides share every slice backing array and index map until one of
// them mutates, at which point the mutating side copies privately
// (materialize) and the other side keeps the frozen state untouched.
//
// Concurrency contract: reads on either side are safe concurrently with
// reads and with the *other* side's mutations (a mutator never writes
// into shared memory — that is the whole point); mutations on one KB
// remain single-writer, exactly as for an unforked KB. This is what
// lets epoch-pinned readers serve generation N lock-free while
// ExtendWith, quality repair, or a re-expansion builds generation N+1
// on a fork.
//
// Clone remains the eager deep copy for callers that want to bypass the
// COW machinery and scribble on exported fields directly (the quality
// experiments do); Fork is for the serving path, where forks are
// frequent and mutations are sparse.
//
// Fork writes nothing a concurrent reader of the receiver could
// observe: the child gets capacity-capped copies of the slice HEADERS
// (so its appends reallocate away from the shared backing arrays), the
// maps are shared by reference, and the receiver itself only has its
// shared flag set — a field no read path consults. That is what makes
// forking a *published, pinned* generation legal while readers scan it.
func (k *KB) Fork() *KB {
	k.shared = true
	return &KB{
		Entities: k.Entities.Fork(),
		Classes:  k.Classes.Fork(),
		RelDict:  k.RelDict.Fork(),

		Relations:   capped(k.Relations),
		Members:     capped(k.Members),
		Facts:       capped(k.Facts),
		Rules:       capped(k.Rules),
		Constraints: capped(k.Constraints),

		superOf:   k.superOf,
		memberSet: k.memberSet,
		factSet:   k.factSet,
		relSigs:   k.relSigs,

		shared: true,
	}
}

// capped returns a full-slice view with capacity capped at length, so
// appending through it reallocates instead of writing into the shared
// backing array.
func capped[T any](s []T) []T { return s[:len(s):len(s)] }

// materialize is the write barrier every mutating method passes
// through: when this KB's state is shared with a fork, copy the slices
// and maps privately first. In-place element writes (SetWeight's
// Facts[i].W, AddFact's max-merge) and slice rewrites (ReplaceFacts,
// DeleteFacts) would otherwise corrupt the frozen generation readers
// are pinned to. After the copy the KB is private again and further
// mutations are direct.
func (k *KB) materialize() {
	if !k.shared {
		return
	}
	k.Facts = append([]Fact(nil), k.Facts...)
	k.Relations = append([]Relation(nil), k.Relations...)
	k.Members = append([]ClassMember(nil), k.Members...)
	k.Rules = append([]mln.Clause(nil), k.Rules...)
	k.Constraints = append([]Constraint(nil), k.Constraints...)

	superOf := make(map[int32][]int32, len(k.superOf))
	for c, supers := range k.superOf {
		// Value slices are capacity-capped, not copied: DeclareSubclass
		// appends to them, and a capped append reallocates privately.
		superOf[c] = supers[:len(supers):len(supers)]
	}
	k.superOf = superOf

	memberSet := make(map[ClassMember]struct{}, len(k.memberSet))
	for m := range k.memberSet {
		memberSet[m] = struct{}{}
	}
	k.memberSet = memberSet

	factSet := make(map[Key]int, len(k.factSet))
	for key, i := range k.factSet {
		factSet[key] = i
	}
	k.factSet = factSet

	relSigs := make(map[Relation]struct{}, len(k.relSigs))
	for s := range k.relSigs {
		relSigs[s] = struct{}{}
	}
	k.relSigs = relSigs

	k.shared = false
}
