package kb

import (
	"probkb/internal/engine"

	"probkb/internal/mln"
)

// Column indices of the facts table TΠ (Definition 4 and Figure 3(a)).
// Every module that touches TΠ uses these constants, so the layout is
// defined exactly once.
const (
	TPiI  = 0 // I: integer fact identifier
	TPiR  = 1 // R: relation ID
	TPiX  = 2 // x: subject entity ID
	TPiC1 = 3 // C1: subject class ID (replicated from TC for join locality)
	TPiY  = 4 // y: object entity ID
	TPiC2 = 5 // C2: object class ID
	TPiW  = 6 // w: weight; NULL for inferred facts
)

// FactsSchema returns the schema of TΠ.
func FactsSchema() engine.Schema {
	return engine.NewSchema(
		engine.C("I", engine.Int32),
		engine.C("R", engine.Int32),
		engine.C("x", engine.Int32),
		engine.C("C1", engine.Int32),
		engine.C("y", engine.Int32),
		engine.C("C2", engine.Int32),
		engine.C("w", engine.Float64),
	)
}

// FactsTable materializes TΠ from the KB's fact list; fact i gets ID i.
func (k *KB) FactsTable() *engine.Table {
	n := len(k.Facts)
	ids := make([]int32, n)
	rels := make([]int32, n)
	xs := make([]int32, n)
	c1s := make([]int32, n)
	ys := make([]int32, n)
	c2s := make([]int32, n)
	ws := make([]float64, n)
	for i, f := range k.Facts {
		ids[i] = int32(i)
		rels[i] = f.Rel
		xs[i] = f.X
		c1s[i] = f.XClass
		ys[i] = f.Y
		c2s[i] = f.YClass
		ws[i] = f.W
	}
	return engine.TableFromColumns("T", FactsSchema(), ids, rels, xs, c1s, ys, c2s, ws)
}

// FactAtRow reconstructs a Fact value from row r of a TΠ-shaped table.
func FactAtRow(t *engine.Table, r int) Fact {
	return Fact{
		Rel: t.Int32Col(TPiR)[r],
		X:   t.Int32Col(TPiX)[r], XClass: t.Int32Col(TPiC1)[r],
		Y: t.Int32Col(TPiY)[r], YClass: t.Int32Col(TPiC2)[r],
		W: t.Float64Col(TPiW)[r],
	}
}

// ClassTable materializes TC (Definition 2): tuples (C, e).
func (k *KB) ClassTable() *engine.Table {
	t := engine.NewTable("TC", engine.NewSchema(
		engine.C("C", engine.Int32),
		engine.C("e", engine.Int32),
	))
	t.Reserve(len(k.Members))
	for _, m := range k.Members {
		t.AppendRow(m.Class, m.Entity)
	}
	return t
}

// RelationTable materializes TR (Definition 3): tuples (R, C1, C2).
func (k *KB) RelationTable() *engine.Table {
	t := engine.NewTable("TR", engine.NewSchema(
		engine.C("R", engine.Int32),
		engine.C("C1", engine.Int32),
		engine.C("C2", engine.Int32),
	))
	t.Reserve(len(k.Relations))
	for _, r := range k.Relations {
		t.AppendRow(r.ID, r.Domain, r.Range)
	}
	return t
}

// Column indices of the constraints table TΩ (Definition 11).
const (
	TOmegaR    = 0 // R: relation ID
	TOmegaType = 1 // α: functionality type (1 or 2)
	TOmegaDeg  = 2 // δ: degree of pseudo-functionality
)

// ConstraintsTable materializes TΩ. The degree is stored as Float64 so
// Query 3's HAVING COUNT(*) > MIN(deg) can use the engine's float
// aggregates directly.
func (k *KB) ConstraintsTable() *engine.Table {
	t := engine.NewTable("FC", engine.NewSchema(
		engine.C("R", engine.Int32),
		engine.C("arg", engine.Int32),
		engine.C("deg", engine.Float64),
	))
	t.Reserve(len(k.Constraints))
	for _, c := range k.Constraints {
		t.AppendRow(c.Rel, int32(c.Type), float64(c.Degree))
	}
	return t
}

// DictTable materializes a dictionary as an (id, name) table, e.g. the DE,
// DC, DR tables of Section 4.2.
func DictTable(name string, d *Dict) *engine.Table {
	t := engine.NewTable(name, engine.NewSchema(
		engine.C("id", engine.Int32),
		engine.C("name", engine.String),
	))
	t.Reserve(d.Len())
	for id, s := range d.Names() {
		t.AppendRow(int32(id), s)
	}
	return t
}

// MLNPartitions builds the six MLN partition tables M1..M6 from the KB's
// rule set.
func (k *KB) MLNPartitions() (*mln.Partitions, error) {
	return mln.Build(k.Rules)
}
