package kb

import (
	"fmt"
	"math"
)

// Validate checks the KB's internal consistency and returns every
// problem found (nil means clean). It verifies the invariants
// Definition 1 implies:
//
//   - every fact's (relation, classes) signature is registered in R;
//   - every fact's arguments are members of their declared classes;
//   - every rule partitions into one of the six Horn shapes and
//     references interned relations and classes;
//   - every constraint references an interned relation with a valid type
//     and degree;
//   - observed fact weights are finite (NaN marks inferred facts and
//     must not appear in a base KB).
func (k *KB) Validate() []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	for i, f := range k.Facts {
		sig := Relation{ID: f.Rel, Name: k.RelDict.Name(f.Rel), Domain: f.XClass, Range: f.YClass}
		if _, ok := k.relSigs[sig]; !ok {
			report("fact %d (%s): signature %s(%s, %s) not registered in R",
				i, k.FactString(f), sig.Name, k.Classes.Name(f.XClass), k.Classes.Name(f.YClass))
		}
		if _, ok := k.memberSet[ClassMember{Class: f.XClass, Entity: f.X}]; !ok {
			report("fact %d (%s): subject not a member of %s", i, k.FactString(f), k.Classes.Name(f.XClass))
		}
		if _, ok := k.memberSet[ClassMember{Class: f.YClass, Entity: f.Y}]; !ok {
			report("fact %d (%s): object not a member of %s", i, k.FactString(f), k.Classes.Name(f.YClass))
		}
		if math.IsNaN(f.W) {
			report("fact %d (%s): base fact has NULL weight", i, k.FactString(f))
		}
		if math.IsInf(f.W, 0) {
			report("fact %d (%s): base fact has infinite weight", i, k.FactString(f))
		}
	}

	nRel := int32(k.RelDict.Len())
	nCls := int32(k.Classes.Len())
	for i, c := range k.Rules {
		if _, err := c.Partition(); err != nil {
			report("rule %d: %v", i, err)
			continue
		}
		atoms := append([]int32{c.Head.Rel}, c.Body[0].Rel)
		if len(c.Body) == 2 {
			atoms = append(atoms, c.Body[1].Rel)
		}
		for _, r := range atoms {
			if r < 0 || r >= nRel {
				report("rule %d: relation id %d not interned", i, r)
			}
		}
		for v, cls := range c.Class {
			if v == 2 && len(c.Body) == 1 {
				continue
			}
			if cls < 0 || cls >= nCls {
				report("rule %d: class id %d not interned", i, cls)
			}
		}
		if math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			report("rule %d: weight %v is not a finite number", i, c.Weight)
		}
	}

	for i, c := range k.Constraints {
		if c.Rel < 0 || c.Rel >= nRel {
			report("constraint %d: relation id %d not interned", i, c.Rel)
		}
		if c.Type != TypeI && c.Type != TypeII {
			report("constraint %d: bad type %d", i, c.Type)
		}
		if c.Degree < 1 {
			report("constraint %d: bad degree %d", i, c.Degree)
		}
	}
	return errs
}
