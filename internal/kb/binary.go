package kb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"probkb/internal/mln"
)

// Binary snapshot format: a single file holding the whole KB, the fast
// counterpart of the text directory for bulkload-heavy workflows (the
// Table 3 "Load" row is exactly this cost). Little-endian throughout.
//
//	magic "PKB\x01"
//	u32 × 6: #entities #classes #relations(sigs) #members #facts #rules
//	u32 × 2: #constraints #taxonomyEdges
//	dict entities, dict classes, dict relation names
//	    (each: u32 count, then per name u32 len + bytes)
//	relations:  (u32 nameID, u32 domain, u32 range) ×
//	members:    (u32 class, u32 entity) ×
//	facts:      (u32 rel, u32 x, u32 xc, u32 y, u32 yc, f64 w) ×
//	rules:      (u8 shape, u32 head, u32 b0, u32 b1, u32 c1, u32 c2,
//	             u32 c3, f64 w) ×   (b1/c3 are 0 for one-atom bodies)
//	constraints:(u32 rel, u8 type, u32 degree) ×
//	taxonomy:   (u32 sub, u32 super) ×
var binaryMagic = [4]byte{'P', 'K', 'B', 1}

// SaveBinary writes the KB as one binary snapshot file.
func (k *KB) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := k.writeBinary(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a snapshot written by SaveBinary.
func LoadBinary(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readBinary(bufio.NewReaderSize(f, 1<<20))
}

func (k *KB) writeBinary(w io.Writer) error {
	le := binary.LittleEndian
	if _, err := w.Write(binaryMagic[:]); err != nil {
		return err
	}
	edges := k.SubclassEdges()
	counts := []uint32{
		uint32(k.Entities.Len()), uint32(k.Classes.Len()), uint32(len(k.Relations)),
		uint32(len(k.Members)), uint32(len(k.Facts)), uint32(len(k.Rules)),
		uint32(len(k.Constraints)), uint32(len(edges)),
	}
	for _, c := range counts {
		if err := binary.Write(w, le, c); err != nil {
			return err
		}
	}
	writeDict := func(d *Dict) error {
		if err := binary.Write(w, le, uint32(d.Len())); err != nil {
			return err
		}
		for _, name := range d.Names() {
			if err := binary.Write(w, le, uint32(len(name))); err != nil {
				return err
			}
			if _, err := io.WriteString(w, name); err != nil {
				return err
			}
		}
		return nil
	}
	for _, d := range []*Dict{k.Entities, k.Classes, k.RelDict} {
		if err := writeDict(d); err != nil {
			return err
		}
	}
	for _, r := range k.Relations {
		if err := binary.Write(w, le, []uint32{uint32(r.ID), uint32(r.Domain), uint32(r.Range)}); err != nil {
			return err
		}
	}
	for _, m := range k.Members {
		if err := binary.Write(w, le, []uint32{uint32(m.Class), uint32(m.Entity)}); err != nil {
			return err
		}
	}
	for _, f := range k.Facts {
		if err := binary.Write(w, le, []uint32{uint32(f.Rel), uint32(f.X), uint32(f.XClass), uint32(f.Y), uint32(f.YClass)}); err != nil {
			return err
		}
		if err := binary.Write(w, le, f.W); err != nil {
			return err
		}
	}
	for _, c := range k.Rules {
		part, err := c.Partition()
		if err != nil {
			return fmt.Errorf("kb: rule does not partition: %w", err)
		}
		var b1 uint32
		if len(c.Body) == 2 {
			b1 = uint32(c.Body[1].Rel)
		}
		if err := binary.Write(w, le, uint8(part)); err != nil {
			return err
		}
		if err := binary.Write(w, le, []uint32{
			uint32(c.Head.Rel), uint32(c.Body[0].Rel), b1,
			uint32(c.Class[mln.X]), uint32(c.Class[mln.Y]), uint32(c.Class[mln.Z]),
		}); err != nil {
			return err
		}
		if err := binary.Write(w, le, c.Weight); err != nil {
			return err
		}
	}
	for _, c := range k.Constraints {
		if err := binary.Write(w, le, uint32(c.Rel)); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint8(c.Type)); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint32(c.Degree)); err != nil {
			return err
		}
	}
	for _, e := range edges {
		if err := binary.Write(w, le, []uint32{uint32(e.Sub), uint32(e.Super)}); err != nil {
			return err
		}
	}
	return nil
}

func readBinary(r io.Reader) (*KB, error) {
	le := binary.LittleEndian
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("kb: reading snapshot magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("kb: not a ProbKB snapshot (magic %v)", magic)
	}
	var counts [8]uint32
	for i := range counts {
		if err := binary.Read(r, le, &counts[i]); err != nil {
			return nil, err
		}
	}
	const sane = 1 << 28
	for i, c := range counts {
		if c > sane {
			return nil, fmt.Errorf("kb: snapshot count %d implausible (%d)", i, c)
		}
	}

	k := New()
	// anySize skips the header cross-check (the relation-name dictionary
	// is smaller than the signature count when names carry several
	// signatures).
	const anySize = ^uint32(0)
	readDict := func(d *Dict, want uint32) error {
		var n uint32
		if err := binary.Read(r, le, &n); err != nil {
			return err
		}
		if want != anySize && n != want {
			return fmt.Errorf("kb: dictionary size %d does not match header %d", n, want)
		}
		if n > sane {
			return fmt.Errorf("kb: dictionary size %d implausible", n)
		}
		buf := make([]byte, 0, 64)
		for i := uint32(0); i < n; i++ {
			var l uint32
			if err := binary.Read(r, le, &l); err != nil {
				return err
			}
			if l > 1<<20 {
				return fmt.Errorf("kb: symbol length %d implausible", l)
			}
			if uint32(cap(buf)) < l {
				buf = make([]byte, l)
			}
			buf = buf[:l]
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			d.Intern(string(buf))
		}
		return nil
	}
	if err := readDict(k.Entities, counts[0]); err != nil {
		return nil, err
	}
	if err := readDict(k.Classes, counts[1]); err != nil {
		return nil, err
	}
	if err := readDict(k.RelDict, anySize); err != nil {
		return nil, err
	}

	for i := uint32(0); i < counts[2]; i++ {
		var rec [3]uint32
		if err := binary.Read(r, le, rec[:]); err != nil {
			return nil, err
		}
		if int(rec[0]) >= k.RelDict.Len() {
			return nil, fmt.Errorf("kb: relation name id %d out of range", rec[0])
		}
		k.AddRelation(k.RelDict.Name(int32(rec[0])), int32(rec[1]), int32(rec[2]))
	}
	for i := uint32(0); i < counts[3]; i++ {
		var rec [2]uint32
		if err := binary.Read(r, le, rec[:]); err != nil {
			return nil, err
		}
		k.AddMember(int32(rec[0]), int32(rec[1]))
	}
	for i := uint32(0); i < counts[4]; i++ {
		var rec [5]uint32
		var w float64
		if err := binary.Read(r, le, rec[:]); err != nil {
			return nil, err
		}
		if err := binary.Read(r, le, &w); err != nil {
			return nil, err
		}
		k.AddFact(Fact{
			Rel: int32(rec[0]),
			X:   int32(rec[1]), XClass: int32(rec[2]),
			Y: int32(rec[3]), YClass: int32(rec[4]),
			W: w,
		})
	}
	for i := uint32(0); i < counts[5]; i++ {
		var shape uint8
		var rec [6]uint32
		var w float64
		if err := binary.Read(r, le, &shape); err != nil {
			return nil, err
		}
		if err := binary.Read(r, le, rec[:]); err != nil {
			return nil, err
		}
		if err := binary.Read(r, le, &w); err != nil {
			return nil, err
		}
		c, err := ClauseFromShape(int(shape), int32(rec[0]), int32(rec[1]), int32(rec[2]),
			int32(rec[3]), int32(rec[4]), int32(rec[5]), w)
		if err != nil {
			return nil, err
		}
		if err := k.AddRule(c); err != nil {
			return nil, err
		}
	}
	for i := uint32(0); i < counts[6]; i++ {
		var rel uint32
		var typ uint8
		var deg uint32
		if err := binary.Read(r, le, &rel); err != nil {
			return nil, err
		}
		if err := binary.Read(r, le, &typ); err != nil {
			return nil, err
		}
		if err := binary.Read(r, le, &deg); err != nil {
			return nil, err
		}
		if err := k.AddConstraint(Constraint{Rel: int32(rel), Type: int(typ), Degree: int(deg)}); err != nil {
			return nil, err
		}
	}
	for i := uint32(0); i < counts[7]; i++ {
		var rec [2]uint32
		if err := binary.Read(r, le, rec[:]); err != nil {
			return nil, err
		}
		if int(rec[0]) >= k.Classes.Len() || int(rec[1]) >= k.Classes.Len() {
			return nil, fmt.Errorf("kb: taxonomy edge %d ⊆ %d out of class range", rec[0], rec[1])
		}
		if err := k.DeclareSubclass(int32(rec[0]), int32(rec[1])); err != nil {
			return nil, err
		}
	}
	return k, nil
}

// WriteBinary writes the KB snapshot to w. Exported for the storage
// engine: the byte stream is a deterministic function of the KB
// (dictionaries in ID order, slices in insertion order), so it doubles
// as the canonical dump the crash-recovery harness compares bit-wise.
func (k *KB) WriteBinary(w io.Writer) error { return k.writeBinary(w) }

// ReadBinary reads a snapshot written by WriteBinary.
func ReadBinary(r io.Reader) (*KB, error) { return readBinary(r) }

// ClauseFromShape reconstructs a canonical clause from its partition
// shape and identifier tuple, rejecting (never panicking on) an
// out-of-range shape — decoders feed it untrusted bytes.
func ClauseFromShape(part int, head, b0, b1, c1, c2, c3 int32, w float64) (mln.Clause, error) {
	if part < mln.P1 || part > mln.P6 {
		return mln.Clause{}, fmt.Errorf("kb: rule shape %d out of range", part)
	}
	return clauseFromShape(part, head, b0, b1, c1, c2, c3, w)
}

// clauseFromShape reconstructs a canonical clause from its partition
// shape and identifier tuple.
func clauseFromShape(part int, head, b0, b1, c1, c2, c3 int32, w float64) (mln.Clause, error) {
	h, body := mln.Shape(part)
	c := mln.Clause{Head: h, Weight: w}
	c.Head.Rel = head
	c.Body = append(c.Body, body[0])
	c.Body[0].Rel = b0
	if len(body) == 2 {
		c.Body = append(c.Body, body[1])
		c.Body[1].Rel = b1
	}
	c.Class[mln.X] = c1
	c.Class[mln.Y] = c2
	c.Class[mln.Z] = c3
	if _, err := c.Partition(); err != nil {
		return mln.Clause{}, fmt.Errorf("kb: snapshot rule invalid: %w", err)
	}
	return c, nil
}
