package kb

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	k := exampleKB(t)
	// Exercise every section: taxonomy and an extra member too.
	city, _ := k.Classes.Lookup("City")
	place, _ := k.Classes.Lookup("Place")
	if err := k.DeclareSubclass(city, place); err != nil {
		t.Fatal(err)
	}
	k.AddMember(k.Classes.Intern("Org"), k.Entities.Intern("UN"))

	path := filepath.Join(t.TempDir(), "kb.pkb")
	if err := k.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Stats() != k.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", loaded.Stats(), k.Stats())
	}
	// Dictionaries preserve IDs exactly (binary snapshots are
	// ID-stable, unlike the text format).
	for id, name := range k.Entities.Names() {
		if loaded.Entities.Name(int32(id)) != name {
			t.Fatalf("entity %d renamed: %q vs %q", id, loaded.Entities.Name(int32(id)), name)
		}
	}
	for i, f := range k.Facts {
		if loaded.Facts[i] != f {
			t.Fatalf("fact %d changed: %+v vs %+v", i, loaded.Facts[i], f)
		}
	}
	for i, c := range k.Rules {
		lc := loaded.Rules[i]
		if lc.Head != c.Head || lc.Weight != c.Weight || lc.Class != c.Class || len(lc.Body) != len(c.Body) {
			t.Fatalf("rule %d changed", i)
		}
		for j := range c.Body {
			if lc.Body[j] != c.Body[j] {
				t.Fatalf("rule %d body changed", i)
			}
		}
	}
	if len(loaded.Constraints) != len(k.Constraints) {
		t.Fatal("constraints lost")
	}
	lc, _ := loaded.Classes.Lookup("City")
	lp, _ := loaded.Classes.Lookup("Place")
	if !loaded.IsSubclass(lc, lp) {
		t.Fatal("taxonomy lost")
	}
	if errs := loaded.Validate(); len(errs) != 0 {
		t.Fatalf("loaded snapshot invalid: %v", errs)
	}
}

func TestBinaryNaNWeightSurvives(t *testing.T) {
	k := New()
	k.InternFact("r", "a", "A", "b", "B", 0.5)
	k.Facts = append(k.Facts, Fact{Rel: 0, X: 1, XClass: 0, Y: 0, YClass: 1, W: math.NaN()})
	path := filepath.Join(t.TempDir(), "kb.pkb")
	if err := k.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Facts) != 2 || !math.IsNaN(loaded.Facts[1].W) {
		t.Fatalf("NaN weight lost: %+v", loaded.Facts)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pkb")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated valid prefix.
	k := exampleKB(t)
	good := filepath.Join(dir, "good.pkb")
	if err := k.SaveBinary(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.pkb")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(trunc); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := LoadBinary(filepath.Join(dir, "missing.pkb")); err == nil {
		t.Fatal("missing file accepted")
	}
}
