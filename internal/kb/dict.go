package kb

import "fmt"

// Dict is a bidirectional string ↔ int32 dictionary. ProbKB dictionary-
// encodes every entity, class, and relation symbol so that the grounding
// joins compare integers, never strings (Section 4.2 of the paper).
type Dict struct {
	names []string
	ids   map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Intern returns the ID of name, assigning the next free ID on first use.
func (d *Dict) Intern(name string) int32 {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the ID of name if it has been interned.
func (d *Dict) Lookup(name string) (int32, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the string for an ID; it panics on an unknown ID, which is
// always a programming error (IDs only come from Intern).
func (d *Dict) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("kb: dictionary has no id %d (size %d)", id, len(d.names)))
	}
	return d.names[id]
}

// Len returns the number of interned symbols.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the interned symbols in ID order. The caller must not
// modify the returned slice.
func (d *Dict) Names() []string { return d.names }
