package kb

import "fmt"

// Dict is a bidirectional string ↔ int32 dictionary. ProbKB dictionary-
// encodes every entity, class, and relation symbol so that the grounding
// joins compare integers, never strings (Section 4.2 of the paper).
//
// Dictionaries are copy-on-write forkable (see Fork): the MVCC serving
// tier snapshots a whole KB in O(1) and lets the writer intern new
// symbols into its fork while readers keep resolving against the frozen
// one. Lookups are safe concurrently with a Fork; Intern remains
// single-writer, as ever.
type Dict struct {
	names []string
	ids   map[string]int32
	// shared marks the ids map (and the names backing array, via its
	// capped capacity) as visible to another fork; the next Intern
	// copies before writing.
	shared bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Fork returns a copy-on-write fork: O(1) now, with the map and slice
// copied on either side's first Intern after the fork. The child's
// names header is capacity-capped so its growth always reallocates
// instead of writing into the shared backing array; the parent's
// memory is NOT touched — a fork of a generation being served performs
// no writes any concurrent reader (Lookup, Name, Len, Names) could
// observe, only the shared flag that read paths never consult.
func (d *Dict) Fork() *Dict {
	d.shared = true
	n := len(d.names)
	return &Dict{names: d.names[:n:n], ids: d.ids, shared: true}
}

// Intern returns the ID of name, assigning the next free ID on first use.
func (d *Dict) Intern(name string) int32 {
	if id, ok := d.ids[name]; ok {
		return id
	}
	if d.shared {
		// First mutation after a fork: copy both directions privately so
		// neither side ever writes memory the other reads.
		d.names = append([]string(nil), d.names...)
		ids := make(map[string]int32, len(d.ids)+1)
		for k, v := range d.ids {
			ids[k] = v
		}
		d.ids = ids
		d.shared = false
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the ID of name if it has been interned.
func (d *Dict) Lookup(name string) (int32, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the string for an ID; it panics on an unknown ID, which is
// always a programming error (IDs only come from Intern).
func (d *Dict) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("kb: dictionary has no id %d (size %d)", id, len(d.names)))
	}
	return d.names[id]
}

// Len returns the number of interned symbols.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the interned symbols in ID order. The caller must not
// modify the returned slice.
func (d *Dict) Names() []string { return d.names }
