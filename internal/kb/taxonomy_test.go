package kb

import (
	"path/filepath"
	"testing"
)

func TestSubclassDeclarationAndPropagation(t *testing.T) {
	k := New()
	place := k.Classes.Intern("Place")
	city := k.Classes.Intern("City")
	capital := k.Classes.Intern("Capital")
	e := k.Entities.Intern("Paris")

	// Member added before the hierarchy exists.
	k.AddMember(capital, e)
	if err := k.DeclareSubclass(capital, city); err != nil {
		t.Fatal(err)
	}
	if err := k.DeclareSubclass(city, place); err != nil {
		t.Fatal(err)
	}
	// Declaration propagates the existing member up the chain.
	for _, c := range []int32{capital, city, place} {
		if _, ok := k.memberSet[ClassMember{Class: c, Entity: e}]; !ok {
			t.Fatalf("Paris missing from %s", k.Classes.Name(c))
		}
	}
	// A member added after the hierarchy propagates too.
	e2 := k.Entities.Intern("Lyon")
	k.AddMember(city, e2)
	if _, ok := k.memberSet[ClassMember{Class: place, Entity: e2}]; !ok {
		t.Fatal("Lyon missing from Place")
	}
	if _, ok := k.memberSet[ClassMember{Class: capital, Entity: e2}]; ok {
		t.Fatal("membership propagated downward")
	}
}

func TestSubclassQueries(t *testing.T) {
	k := New()
	a := k.Classes.Intern("A")
	b := k.Classes.Intern("B")
	c := k.Classes.Intern("C")
	d := k.Classes.Intern("D")
	if err := k.DeclareSubclass(a, b); err != nil {
		t.Fatal(err)
	}
	if err := k.DeclareSubclass(b, c); err != nil {
		t.Fatal(err)
	}
	if !k.IsSubclass(a, c) || !k.IsSubclass(a, a) {
		t.Fatal("transitive/reflexive subclass wrong")
	}
	if k.IsSubclass(c, a) || k.IsSubclass(a, d) {
		t.Fatal("inverse or unrelated subclass reported")
	}
	supers := k.Superclasses(a)
	if len(supers) != 2 || supers[0] != b || supers[1] != c {
		t.Fatalf("Superclasses = %v", supers)
	}
	edges := k.SubclassEdges()
	if len(edges) != 2 || edges[0] != (SubclassEdge{Sub: a, Super: b}) {
		t.Fatalf("edges = %v", edges)
	}
}

func TestSubclassRejectsCycles(t *testing.T) {
	k := New()
	a := k.Classes.Intern("A")
	b := k.Classes.Intern("B")
	if err := k.DeclareSubclass(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := k.DeclareSubclass(a, b); err != nil {
		t.Fatal(err)
	}
	if err := k.DeclareSubclass(b, a); err == nil {
		t.Fatal("cycle accepted")
	}
	// Re-declaring is a no-op, not an error.
	if err := k.DeclareSubclass(a, b); err != nil {
		t.Fatal(err)
	}
	if len(k.SubclassEdges()) != 1 {
		t.Fatal("duplicate edge recorded")
	}
}

func TestTaxonomySaveLoadAndClone(t *testing.T) {
	k := New()
	city := k.Classes.Intern("City")
	place := k.Classes.Intern("Place")
	if err := k.DeclareSubclass(city, place); err != nil {
		t.Fatal(err)
	}
	k.InternFact("born_in", "P", "Person", "NYC", "City", 0.9)

	dir := filepath.Join(t.TempDir(), "kb")
	if err := k.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := loaded.Classes.Lookup("City")
	lp, _ := loaded.Classes.Lookup("Place")
	if !loaded.IsSubclass(lc, lp) {
		t.Fatal("taxonomy lost in round trip")
	}
	// NYC ∈ City must have propagated to Place on load.
	nyc, _ := loaded.Entities.Lookup("NYC")
	found := false
	for _, m := range loaded.MembersOf(lp) {
		if m == nyc {
			found = true
		}
	}
	if !found {
		t.Fatal("membership did not propagate on load")
	}

	clone := k.Clone()
	if !clone.IsSubclass(city, place) {
		t.Fatal("taxonomy lost in clone")
	}
}

func TestValidateCleanKB(t *testing.T) {
	k := New()
	k.InternFact("born_in", "P", "Person", "NYC", "City", 0.9)
	c, err := k.ParseRule("1.0 live_in(x:Person, y:City) :- born_in(x:Person, y:City)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(c); err != nil {
		t.Fatal(err)
	}
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(Constraint{Rel: bornIn, Type: TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	if errs := k.Validate(); len(errs) != 0 {
		t.Fatalf("clean KB reported errors: %v", errs)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	k := New()
	k.InternFact("r", "a", "A", "b", "B", 0.9)

	// Unregistered signature: inject a fact bypassing InternFact.
	k.Facts = append(k.Facts, Fact{Rel: 0, X: 0, XClass: 1, Y: 1, YClass: 0, W: 0.5})
	// NULL-weight base fact.
	k.Facts = append(k.Facts, Fact{Rel: 0, X: 0, XClass: 0, Y: 1, YClass: 1, W: nan()})
	// Bad constraint injected directly.
	k.Constraints = append(k.Constraints, Constraint{Rel: 99, Type: 7, Degree: 0})

	errs := k.Validate()
	if len(errs) < 4 {
		t.Fatalf("expected several validation errors, got %v", errs)
	}
}

func nan() float64 {
	var z float64
	return z / z
}
