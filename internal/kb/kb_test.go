package kb

import (
	"math"
	"strings"
	"testing"

	"probkb/internal/mln"
)

// exampleKB reconstructs the Table 1 example from the paper.
func exampleKB(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	rules := []string{
		"1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"1.53 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)",
		"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)",
		"0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)",
	}
	for _, line := range rules {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatalf("add %q: %v", line, err)
		}
	}
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(Constraint{Rel: bornIn, Type: TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("kale")
	b := d.Intern("calcium")
	if a == b {
		t.Fatal("distinct symbols share an ID")
	}
	if again := d.Intern("kale"); again != a {
		t.Fatal("re-interning changed the ID")
	}
	if id, ok := d.Lookup("calcium"); !ok || id != b {
		t.Fatal("lookup failed")
	}
	if _, ok := d.Lookup("osteoporosis"); ok {
		t.Fatal("lookup invented a symbol")
	}
	if d.Name(a) != "kale" || d.Len() != 2 {
		t.Fatal("name/len wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Name on unknown ID did not panic")
		}
	}()
	d.Name(99)
}

func TestAddFactDedup(t *testing.T) {
	k := New()
	i1, fresh1 := k.InternFact("r", "a", "C", "b", "D", 0.5)
	i2, fresh2 := k.InternFact("r", "a", "C", "b", "D", 0.9)
	if !fresh1 || fresh2 {
		t.Fatalf("dedup flags wrong: %v %v", fresh1, fresh2)
	}
	if i1 != i2 {
		t.Fatal("duplicate fact got a new index")
	}
	if k.Facts[i1].W != 0.9 {
		t.Fatalf("duplicate should keep max weight, got %v", k.Facts[i1].W)
	}
	if len(k.Facts) != 1 {
		t.Fatalf("fact count = %d, want 1", len(k.Facts))
	}
	if !k.HasFact(k.Facts[0].Key()) {
		t.Fatal("HasFact lost the fact")
	}
}

func TestAddRelationSignatures(t *testing.T) {
	k := New()
	c1 := k.Classes.Intern("A")
	c2 := k.Classes.Intern("B")
	id := k.AddRelation("r", c1, c2)
	if again := k.AddRelation("r", c1, c2); again != id {
		t.Fatal("re-adding changed relation ID")
	}
	if len(k.Relations) != 1 {
		t.Fatalf("duplicate signature registered twice: %d", len(k.Relations))
	}
	// The paper's Table 1 needs one name with several signatures:
	// born_in(W, P) and born_in(W, C).
	if other := k.AddRelation("r", c2, c1); other != id {
		t.Fatal("second signature should reuse the name ID")
	}
	if len(k.Relations) != 2 {
		t.Fatalf("distinct signature not registered: %d", len(k.Relations))
	}
}

func TestAddRuleValidation(t *testing.T) {
	k := New()
	hard := mln.Clause{
		Head:   mln.Atom{Rel: 0, Arg1: mln.X, Arg2: mln.Y},
		Body:   []mln.Atom{{Rel: 1, Arg1: mln.X, Arg2: mln.Y}},
		Weight: math.Inf(1),
	}
	if err := k.AddRule(hard); err == nil {
		t.Fatal("AddRule accepted a hard rule")
	}
	bad := mln.Clause{Head: mln.Atom{Rel: 0, Arg1: mln.Y, Arg2: mln.X}, Weight: 1}
	if err := k.AddRule(bad); err == nil {
		t.Fatal("AddRule accepted a malformed clause")
	}
}

func TestAddConstraintValidation(t *testing.T) {
	k := New()
	if err := k.AddConstraint(Constraint{Rel: 0, Type: 3, Degree: 1}); err == nil {
		t.Fatal("bad type accepted")
	}
	if err := k.AddConstraint(Constraint{Rel: 0, Type: TypeI, Degree: 0}); err == nil {
		t.Fatal("bad degree accepted")
	}
	if err := k.AddConstraint(Constraint{Rel: 0, Type: TypeII, Degree: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndStrings(t *testing.T) {
	k := exampleKB(t)
	s := k.Stats()
	if s.Facts != 2 || s.Rules != 4 || s.Constraints != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Entities != 3 {
		t.Fatalf("entities = %d, want 3", s.Entities)
	}
	if !strings.Contains(s.String(), "# rules") {
		t.Fatal("Stats.String malformed")
	}
	fs := k.FactString(k.Facts[0])
	if !strings.Contains(fs, "born_in(Ruth_Gruber:Writer, New_York_City:City)") {
		t.Fatalf("FactString = %q", fs)
	}
	rs := k.RuleString(k.Rules[0])
	if !strings.Contains(rs, "live_in") || !strings.Contains(rs, ":-") {
		t.Fatalf("RuleString = %q", rs)
	}
}

func TestFactsTableLayout(t *testing.T) {
	k := exampleKB(t)
	tab := k.FactsTable()
	if tab.NumRows() != 2 {
		t.Fatalf("TΠ rows = %d, want 2", tab.NumRows())
	}
	if !tab.Schema().Equal(FactsSchema()) {
		t.Fatalf("TΠ schema = %s", tab.Schema())
	}
	if tab.Int32Col(TPiI)[1] != 1 {
		t.Fatal("fact IDs should be row indices")
	}
	f := FactAtRow(tab, 0)
	if f != k.Facts[0] {
		t.Fatalf("FactAtRow = %+v, want %+v", f, k.Facts[0])
	}
}

func TestClassRelationConstraintTables(t *testing.T) {
	k := exampleKB(t)
	tc := k.ClassTable()
	// 3 entities across 3 classes: Ruth(Writer), NYC(City), Brooklyn(Place).
	if tc.NumRows() != 3 {
		t.Fatalf("TC rows = %d, want 3:\n%s", tc.NumRows(), tc)
	}
	tr := k.RelationTable()
	// Signatures: born_in(W,C), born_in(W,P) from facts; live_in(W,P),
	// live_in(W,C), located_in(P,C) from rules.
	if tr.NumRows() != 5 {
		t.Fatalf("TR rows = %d, want 5:\n%s", tr.NumRows(), tr)
	}
	fc := k.ConstraintsTable()
	if fc.NumRows() != 1 || fc.Float64Col(TOmegaDeg)[0] != 1.0 {
		t.Fatalf("TΩ wrong:\n%s", fc)
	}
	de := DictTable("DE", k.Entities)
	if de.NumRows() != 3 || de.StringCol(1)[0] != "Ruth_Gruber" {
		t.Fatalf("DE wrong:\n%s", de)
	}
}

func TestMLNPartitionsFromKB(t *testing.T) {
	k := exampleKB(t)
	p, err := k.MLNPartitions()
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if stats[mln.P1] != 2 || stats[mln.P3] != 2 {
		t.Fatalf("partition stats = %v", stats)
	}
}

func TestClone(t *testing.T) {
	k := exampleKB(t)
	c := k.Clone()
	c.InternFact("r_new", "e1", "C1", "e2", "C2", 0.1)
	c.Rules = c.Rules[:1]
	if len(k.Facts) != 2 || len(k.Rules) != 4 {
		t.Fatal("mutating the clone changed the original")
	}
	if c.Stats().Facts != 3 || c.Stats().Rules != 1 {
		t.Fatalf("clone stats wrong: %+v", c.Stats())
	}
	// Dictionaries must agree on shared symbols.
	id1, _ := k.Entities.Lookup("Ruth_Gruber")
	id2, _ := c.Entities.Lookup("Ruth_Gruber")
	if id1 != id2 {
		t.Fatal("clone renumbered entities")
	}
}
