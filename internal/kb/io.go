package kb

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"probkb/internal/mln"
)

// On-disk layout: a KB directory holds
//
//	relations.tsv    name <TAB> domainClass <TAB> rangeClass
//	facts.tsv        rel <TAB> x <TAB> xClass <TAB> y <TAB> yClass <TAB> weight
//	rules.txt        one weighted Horn clause per line (see ParseRule)
//	constraints.tsv  rel <TAB> type(1|2) <TAB> degree
//	members.tsv      class <TAB> entity   (memberships beyond those implied by facts)
//	taxonomy.tsv     subclass <TAB> superclass
//
// Lines starting with '#' and blank lines are ignored everywhere.

// SaveDir writes the KB into dir, creating it if needed.
func (k *KB) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("kb: creating %s: %w", dir, err)
	}
	if err := k.writeRelations(filepath.Join(dir, "relations.tsv")); err != nil {
		return err
	}
	if err := k.writeFacts(filepath.Join(dir, "facts.tsv")); err != nil {
		return err
	}
	if err := k.writeRules(filepath.Join(dir, "rules.txt")); err != nil {
		return err
	}
	if err := k.writeConstraints(filepath.Join(dir, "constraints.tsv")); err != nil {
		return err
	}
	if err := k.writeTaxonomy(filepath.Join(dir, "taxonomy.tsv")); err != nil {
		return err
	}
	return k.writeMembers(filepath.Join(dir, "members.tsv"))
}

// LoadDir reads a KB directory written by SaveDir. Missing optional files
// (rules, constraints, members) load as empty.
func LoadDir(dir string) (*KB, error) {
	k := New()
	if err := k.readRelations(filepath.Join(dir, "relations.tsv")); err != nil {
		return nil, err
	}
	if err := k.readFacts(filepath.Join(dir, "facts.tsv")); err != nil {
		return nil, err
	}
	for _, f := range []struct {
		name string
		read func(string) error
	}{
		{"taxonomy.tsv", k.readTaxonomy}, // before members: propagation
		{"rules.txt", k.readRules},
		{"constraints.tsv", k.readConstraints},
		{"members.tsv", k.readMembers},
	} {
		path := filepath.Join(dir, f.name)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			continue
		}
		if err := f.read(path); err != nil {
			return nil, err
		}
	}
	return k, nil
}

func writeLines(path string, write func(w *bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kb: creating %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readLines(path string, handle func(lineno int, line string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("kb: opening %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := handle(lineno, line); err != nil {
			return fmt.Errorf("kb: %s:%d: %w", path, lineno, err)
		}
	}
	return sc.Err()
}

func (k *KB) writeRelations(path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		for _, r := range k.Relations {
			fmt.Fprintf(w, "%s\t%s\t%s\n", r.Name, k.Classes.Name(r.Domain), k.Classes.Name(r.Range))
		}
		return nil
	})
}

func (k *KB) readRelations(path string) error {
	return readLines(path, func(_ int, line string) error {
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return fmt.Errorf("want 3 tab-separated fields, got %d", len(parts))
		}
		dom := k.Classes.Intern(parts[1])
		rng := k.Classes.Intern(parts[2])
		k.AddRelation(parts[0], dom, rng)
		return nil
	})
}

func (k *KB) writeFacts(path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		for _, f := range k.Facts {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
				k.RelDict.Name(f.Rel),
				k.Entities.Name(f.X), k.Classes.Name(f.XClass),
				k.Entities.Name(f.Y), k.Classes.Name(f.YClass),
				formatWeight(f.W))
		}
		return nil
	})
}

func (k *KB) readFacts(path string) error {
	return readLines(path, func(_ int, line string) error {
		parts := strings.Split(line, "\t")
		if len(parts) != 6 {
			return fmt.Errorf("want 6 tab-separated fields, got %d", len(parts))
		}
		w, err := parseWeight(parts[5])
		if err != nil {
			return err
		}
		k.InternFact(parts[0], parts[1], parts[2], parts[3], parts[4], w)
		return nil
	})
}

func (k *KB) writeRules(path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		for _, c := range k.Rules {
			fmt.Fprintln(w, k.FormatRule(c))
		}
		return nil
	})
}

func (k *KB) readRules(path string) error {
	return readLines(path, func(_ int, line string) error {
		c, err := k.ParseRule(line)
		if err != nil {
			return err
		}
		return k.AddRule(c)
	})
}

func (k *KB) writeConstraints(path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		for _, c := range k.Constraints {
			fmt.Fprintf(w, "%s\t%d\t%d\n", k.RelDict.Name(c.Rel), c.Type, c.Degree)
		}
		return nil
	})
}

func (k *KB) readConstraints(path string) error {
	return readLines(path, func(_ int, line string) error {
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return fmt.Errorf("want 3 tab-separated fields, got %d", len(parts))
		}
		rel, ok := k.RelDict.Lookup(parts[0])
		if !ok {
			return fmt.Errorf("constraint over unknown relation %q", parts[0])
		}
		typ, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("bad constraint type %q", parts[1])
		}
		deg, err := strconv.Atoi(parts[2])
		if err != nil {
			return fmt.Errorf("bad constraint degree %q", parts[2])
		}
		return k.AddConstraint(Constraint{Rel: rel, Type: typ, Degree: deg})
	})
}

func (k *KB) writeTaxonomy(path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		for _, e := range k.SubclassEdges() {
			fmt.Fprintf(w, "%s\t%s\n", k.Classes.Name(e.Sub), k.Classes.Name(e.Super))
		}
		return nil
	})
}

func (k *KB) readTaxonomy(path string) error {
	return readLines(path, func(_ int, line string) error {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			return fmt.Errorf("want 2 tab-separated fields, got %d", len(parts))
		}
		return k.DeclareSubclass(k.Classes.Intern(parts[0]), k.Classes.Intern(parts[1]))
	})
}

func (k *KB) writeMembers(path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		for _, m := range k.Members {
			fmt.Fprintf(w, "%s\t%s\n", k.Classes.Name(m.Class), k.Entities.Name(m.Entity))
		}
		return nil
	})
}

func (k *KB) readMembers(path string) error {
	return readLines(path, func(_ int, line string) error {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			return fmt.Errorf("want 2 tab-separated fields, got %d", len(parts))
		}
		k.AddMember(k.Classes.Intern(parts[0]), k.Entities.Intern(parts[1]))
		return nil
	})
}

func formatWeight(w float64) string {
	if math.IsInf(w, +1) {
		return "inf"
	}
	if math.IsNaN(w) {
		return "null"
	}
	return strconv.FormatFloat(w, 'g', -1, 64)
}

func parseWeight(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "inf", "+inf", "infinity":
		return math.Inf(+1), nil
	case "null", "nan":
		return math.NaN(), nil
	}
	w, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad weight %q", s)
	}
	return w, nil
}

// FormatRule renders a clause in the rules.txt syntax, with class
// annotations on every variable occurrence:
//
//	1.4 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)
func (k *KB) FormatRule(c mln.Clause) string {
	var b strings.Builder
	b.WriteString(formatWeight(c.Weight))
	b.WriteByte(' ')
	atom := func(a mln.Atom) {
		fmt.Fprintf(&b, "%s(%s:%s, %s:%s)", k.RelDict.Name(a.Rel),
			a.Arg1, k.Classes.Name(c.Class[a.Arg1]),
			a.Arg2, k.Classes.Name(c.Class[a.Arg2]))
	}
	atom(c.Head)
	b.WriteString(" :- ")
	for i, a := range c.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		atom(a)
	}
	return b.String()
}

// ParseRule parses one rules.txt line into a canonical clause, interning
// relation and class symbols into the KB's dictionaries. The grammar is
//
//	rule   := weight atom ":-" atom ["," atom]
//	weight := float | "inf"
//	atom   := relName "(" arg "," arg ")"
//	arg    := varName [":" className]
//
// Each variable needs a class annotation on at least one occurrence;
// conflicting annotations are an error.
func (k *KB) ParseRule(line string) (mln.Clause, error) {
	weightStr, rest, ok := strings.Cut(strings.TrimSpace(line), " ")
	if !ok {
		return mln.Clause{}, fmt.Errorf("rule %q: missing weight", line)
	}
	weight, err := parseWeight(weightStr)
	if err != nil {
		return mln.Clause{}, fmt.Errorf("rule %q: %w", line, err)
	}

	headStr, bodyStr, ok := strings.Cut(rest, ":-")
	if !ok {
		return mln.Clause{}, fmt.Errorf("rule %q: missing \":-\"", line)
	}

	vars := make(map[string]int)   // var name → raw var number
	classes := make(map[int]int32) // raw var number → class ID
	varNo := func(name string) int {
		if n, ok := vars[name]; ok {
			return n
		}
		n := len(vars)
		vars[name] = n
		return n
	}

	parseAtom := func(s string) (mln.RawAtom, error) {
		s = strings.TrimSpace(s)
		open := strings.IndexByte(s, '(')
		if open < 0 || !strings.HasSuffix(s, ")") {
			return mln.RawAtom{}, fmt.Errorf("bad atom %q", s)
		}
		rel := strings.TrimSpace(s[:open])
		if rel == "" {
			return mln.RawAtom{}, fmt.Errorf("bad atom %q: empty relation", s)
		}
		argsStr := s[open+1 : len(s)-1]
		args := strings.Split(argsStr, ",")
		if len(args) != 2 {
			return mln.RawAtom{}, fmt.Errorf("bad atom %q: want 2 arguments", s)
		}
		var nums [2]int
		var argClasses [2]int32
		var haveClass [2]bool
		for i, a := range args {
			a = strings.TrimSpace(a)
			name, cls, annotated := strings.Cut(a, ":")
			name = strings.TrimSpace(name)
			if name == "" {
				return mln.RawAtom{}, fmt.Errorf("bad atom %q: empty variable", s)
			}
			nums[i] = varNo(name)
			if annotated {
				cls = strings.TrimSpace(cls)
				if cls == "" {
					return mln.RawAtom{}, fmt.Errorf("bad atom %q: empty class", s)
				}
				argClasses[i] = k.Classes.Intern(cls)
				haveClass[i] = true
			}
		}
		for i := range nums {
			if !haveClass[i] {
				continue
			}
			if prev, seen := classes[nums[i]]; seen && prev != argClasses[i] {
				return mln.RawAtom{}, fmt.Errorf("variable %q annotated with conflicting classes", args[i])
			}
			classes[nums[i]] = argClasses[i]
		}
		return mln.RawAtom{Rel: k.RelDict.Intern(rel), Arg1: nums[0], Arg2: nums[1]}, nil
	}

	head, err := parseAtom(headStr)
	if err != nil {
		return mln.Clause{}, fmt.Errorf("rule %q: head: %w", line, err)
	}
	var body []mln.RawAtom
	for _, part := range splitAtoms(bodyStr) {
		a, err := parseAtom(part)
		if err != nil {
			return mln.Clause{}, fmt.Errorf("rule %q: body: %w", line, err)
		}
		body = append(body, a)
	}
	for name, n := range vars {
		if _, ok := classes[n]; !ok {
			return mln.Clause{}, fmt.Errorf("rule %q: variable %q has no class annotation", line, name)
		}
	}
	c, err := mln.Canonicalize(head, body, classes, weight)
	if err != nil {
		return mln.Clause{}, fmt.Errorf("rule %q: %w", line, err)
	}
	// A rule atom p(x:C1, y:C2) declares a signature of p; register it so
	// TR covers relations that appear only in rules.
	register := func(a mln.Atom) {
		k.AddRelation(k.RelDict.Name(a.Rel), c.Class[a.Arg1], c.Class[a.Arg2])
	}
	register(c.Head)
	for _, a := range c.Body {
		register(a)
	}
	return c, nil
}

// splitAtoms splits "a(x,y), b(y,z)" on the commas *between* atoms (the
// ones outside parentheses).
func splitAtoms(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
