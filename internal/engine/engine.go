// Package engine implements the in-memory relational engine that ProbKB
// uses as its single-node database substrate (the paper runs on
// PostgreSQL; this package plays that role).
//
// The engine is deliberately batch oriented: every operator consumes fully
// materialized tables and produces a fully materialized table, mirroring
// how an analytical DBMS executes the large set-oriented grounding queries
// of Section 4.3 of the paper. Materialize-per-operator also makes the
// per-node timing annotations of Figure 4 directly observable via
// Explain.
//
// Storage is columnar. Three column types cover everything ProbKB needs:
// Int32 (dictionary-encoded entities, classes, relations, fact IDs),
// Float64 (rule and fact weights), and String (dictionary tables and
// debugging output). NULLs use in-band sentinels: NullInt32 for Int32
// columns and NaN for Float64 columns; inferred facts carry a NULL weight
// until marginal inference fills it in, exactly as in the paper.
package engine

import (
	"fmt"
	"math"
	"strings"
)

// ColType enumerates the storage types a column may have.
type ColType int

const (
	// Int32 is the workhorse type: all KB symbols are dictionary-encoded
	// to int32 IDs so joins compare integers, never strings.
	Int32 ColType = iota
	// Float64 stores weights and probabilities.
	Float64
	// String stores raw symbols; only dictionary tables use it.
	String
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case Int32:
		return "int"
	case Float64:
		return "float"
	case String:
		return "text"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// NullInt32 is the in-band NULL sentinel for Int32 columns.
const NullInt32 int32 = math.MinInt32

// NullFloat64 returns the in-band NULL sentinel for Float64 columns (NaN).
func NullFloat64() float64 { return math.NaN() }

// IsNullFloat64 reports whether v is the Float64 NULL sentinel.
func IsNullFloat64(v float64) bool { return math.IsNaN(v) }

// ColDef describes one column of a schema.
type ColDef struct {
	Name string
	Type ColType
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Cols []ColDef
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...ColDef) Schema { return Schema{Cols: cols} }

// C is shorthand for constructing a ColDef.
func C(name string, t ColType) ColDef { return ColDef{Name: name, Type: t} }

// NumCols returns the number of columns.
func (s Schema) NumCols() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1 if absent.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex but panics on a missing column. Schemas are
// static program data in ProbKB, so a miss is a programming error.
func (s Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("engine: schema has no column %q (have %s)", name, s))
	}
	return i
}

// Equal reports whether two schemas have identical column names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(a int, b float, c text)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns a new schema with the given column indices, in order.
func (s Schema) Project(idx []int) Schema {
	out := Schema{Cols: make([]ColDef, len(idx))}
	for i, j := range idx {
		out.Cols[i] = s.Cols[j]
	}
	return out
}
