package engine

import (
	"fmt"
	"strings"
	"time"
)

// EXPLAIN ANALYZE: render a just-run plan with the optimizer's estimates
// NEXT TO the actuals the run collected, so per-operator estimation
// error is visible at a glance — the view a DBA uses to find the join
// whose cardinality model went wrong. The classic Explain output stays
// untouched (golden files pin it); this is a second renderer over the
// same NodeStats.

// estNode is the optional interface SetEstRows uses; every operator
// embedding base implements it.
type estNode interface{ setEstRows(float64) }

func (b *base) setEstRows(est float64) { b.stats.EstRows = est }

// SetEstRows records the optimizer's cardinality estimate on a plan
// node. Nodes that never received an estimate render without one.
func SetEstRows(n Node, est float64) {
	if e, ok := n.(estNode); ok {
		e.setEstRows(est)
	}
}

// ExplainAnalyze renders the plan tree with actuals and estimates from
// the most recent Run: actual rows vs estimated rows (with the error
// factor), self time, output bytes, motion volumes, per-segment row
// counts, retries, and the worker/morsel footprint. Everything but the
// time is deterministic for a fixed input, so golden files pin it.
func ExplainAnalyze(root Node) string { return ExplainAnalyzeOf[Node](root) }

// ExplainAnalyzeOf is ExplainAnalyze over any plan-shaped tree; the mpp
// package reuses it for distributed plans.
func ExplainAnalyzeOf[N PlanLike[N]](root N) string {
	var b strings.Builder
	analyzeNode(&b, root, 0)
	return b.String()
}

func analyzeNode[N PlanLike[N]](b *strings.Builder, n N, depth int) {
	st := n.Stats()
	fmt.Fprintf(b, "%s-> %s  (rows=%d%s time=%s mem=%dB%s%s%s%s)\n",
		strings.Repeat("  ", depth), n.Label(),
		st.Rows, estNote(st), st.Elapsed.Round(time.Microsecond), st.OutBytes,
		st.Extra, st.ExecNote(), segNote(st), retryNote(st))
	for _, k := range n.Children() {
		analyzeNode(b, k, depth+1)
	}
}

// estNote renders " est=N off=K.Kx" for nodes carrying an estimate: the
// off factor is how far the optimizer's guess was from reality, in
// whichever direction (>=1.0; 1.0x is a perfect estimate).
func estNote(st *NodeStats) string {
	if st.EstRows <= 0 {
		return ""
	}
	est := st.EstRows
	note := fmt.Sprintf(" est=%.0f", est)
	if st.Rows > 0 {
		off := float64(st.Rows) / est
		if off < 1 {
			off = 1 / off
		}
		note += fmt.Sprintf(" off=%.1fx", off)
	}
	return note
}

// segNote renders the per-segment actual row counts of a distributed
// operator, or "" single-node.
func segNote(st *NodeStats) string {
	if st.SegRows == nil {
		return ""
	}
	return fmt.Sprintf(" seg_rows=%v", st.SegRows)
}

func retryNote(st *NodeStats) string {
	if st.Retries == 0 {
		return ""
	}
	return fmt.Sprintf(" retries=%d", st.Retries)
}
