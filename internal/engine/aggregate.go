package engine

import "fmt"

// AggKind enumerates the aggregate functions GroupByNode supports. They
// are exactly the ones ProbKB's quality-control queries need (Query 3 in
// the paper groups by (R, x, C1, C2) and filters on COUNT(*) > MIN(deg)).
type AggKind int

const (
	// AggCount counts rows per group; Col is ignored.
	AggCount AggKind = iota
	// AggCountDistinct counts distinct values of an Int32 column per group.
	AggCountDistinct
	// AggMinF64 takes the minimum of a Float64 column per group.
	AggMinF64
	// AggMaxF64 takes the maximum of a Float64 column per group.
	AggMaxF64
	// AggSumF64 sums a Float64 column per group.
	AggSumF64
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count(*)"
	case AggCountDistinct:
		return "count(distinct)"
	case AggMinF64:
		return "min"
	case AggMaxF64:
		return "max"
	case AggSumF64:
		return "sum"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggSpec requests one aggregate output column.
type AggSpec struct {
	Kind AggKind
	Col  int // input column; ignored for AggCount
	Name string
}

// GroupByNode groups its input on a tuple of Int32 key columns and emits
// one row per group: the key columns followed by the aggregates.
type GroupByNode struct {
	base
	child Node
	keys  []int
	aggs  []AggSpec
}

// NewGroupBy constructs a hash aggregation over child.
func NewGroupBy(child Node, keyCols []int, aggs []AggSpec) *GroupByNode {
	sch := GroupBySchema(child.OutSchema(), keyCols, aggs)
	return &GroupByNode{base: base{schema: sch}, child: child, keys: keyCols, aggs: aggs}
}

func (n *GroupByNode) Children() []Node { return []Node{n.child} }

func (n *GroupByNode) Label() string {
	return fmt.Sprintf("GroupAggregate (%d keys, %d aggs)", len(n.keys), len(n.aggs))
}

// groupState accumulates one group's aggregates.
type groupState struct {
	firstRow int
	count    int32
	distinct []map[int32]struct{} // one per AggCountDistinct
	minv     []float64
	maxv     []float64
	sumv     []float64
}

// Run executes the aggregation.
func (n *GroupByNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, func() (*Table, error) {
		return groupByTable(in, n.keys, n.aggs, n.schema)
	})
}

// GroupBySchema derives the output schema of a grouping over the given
// input schema.
func GroupBySchema(in Schema, keys []int, aggs []AggSpec) Schema {
	sch := Schema{Cols: make([]ColDef, 0, len(keys)+len(aggs))}
	for _, k := range keys {
		sch.Cols = append(sch.Cols, in.Cols[k])
	}
	for _, a := range aggs {
		switch a.Kind {
		case AggCount, AggCountDistinct:
			sch.Cols = append(sch.Cols, ColDef{Name: a.Name, Type: Int32})
		case AggMinF64, AggMaxF64, AggSumF64:
			sch.Cols = append(sch.Cols, ColDef{Name: a.Name, Type: Float64})
		}
	}
	return sch
}

// GroupByTable runs the aggregation kernel directly on a materialized
// table. The MPP layer calls it once per segment.
func GroupByTable(in *Table, keys []int, aggs []AggSpec) (*Table, error) {
	return groupByTable(in, keys, aggs, GroupBySchema(in.Schema(), keys, aggs))
}

// groupByTable is the aggregation kernel, shared with the MPP layer.
func groupByTable(in *Table, keys []int, aggs []AggSpec, schema Schema) (*Table, error) {
	// Count per-kind slots so each group state sizes its slices once.
	nDistinct, nMin, nMax, nSum := 0, 0, 0, 0
	for _, a := range aggs {
		switch a.Kind {
		case AggCountDistinct:
			nDistinct++
		case AggMinF64:
			nMin++
		case AggMaxF64:
			nMax++
		case AggSumF64:
			nSum++
		}
	}

	groups := make(map[uint64][]*groupState)
	var order []*groupState

	for r := 0; r < in.NumRows(); r++ {
		h := HashRow(in, r, keys)
		var g *groupState
		for _, cand := range groups[h] {
			if rowsEqualOn(in, cand.firstRow, keys, in, r, keys) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &groupState{firstRow: r}
			if nDistinct > 0 {
				g.distinct = make([]map[int32]struct{}, nDistinct)
				for i := range g.distinct {
					g.distinct[i] = make(map[int32]struct{})
				}
			}
			if nMin > 0 {
				g.minv = make([]float64, nMin)
				for i := range g.minv {
					g.minv[i] = NullFloat64()
				}
			}
			if nMax > 0 {
				g.maxv = make([]float64, nMax)
				for i := range g.maxv {
					g.maxv[i] = NullFloat64()
				}
			}
			if nSum > 0 {
				g.sumv = make([]float64, nSum)
			}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		g.count++
		di, mi, xi, si := 0, 0, 0, 0
		for _, a := range aggs {
			switch a.Kind {
			case AggCountDistinct:
				g.distinct[di][in.cols[a.Col].i32[r]] = struct{}{}
				di++
			case AggMinF64:
				v := in.cols[a.Col].f64[r]
				if IsNullFloat64(g.minv[mi]) || v < g.minv[mi] {
					g.minv[mi] = v
				}
				mi++
			case AggMaxF64:
				v := in.cols[a.Col].f64[r]
				if IsNullFloat64(g.maxv[xi]) || v > g.maxv[xi] {
					g.maxv[xi] = v
				}
				xi++
			case AggSumF64:
				g.sumv[si] += in.cols[a.Col].f64[r]
				si++
			}
		}
	}

	out := NewTable("groupby", schema)
	out.Reserve(len(order))
	for _, g := range order {
		col := 0
		for _, k := range keys {
			oc := out.cols[col]
			ic := in.cols[k]
			switch ic.typ {
			case Int32:
				oc.i32 = append(oc.i32, ic.i32[g.firstRow])
			case Float64:
				oc.f64 = append(oc.f64, ic.f64[g.firstRow])
			case String:
				oc.str = append(oc.str, ic.str[g.firstRow])
			}
			col++
		}
		di, mi, xi, si := 0, 0, 0, 0
		for _, a := range aggs {
			oc := out.cols[col]
			switch a.Kind {
			case AggCount:
				oc.i32 = append(oc.i32, g.count)
			case AggCountDistinct:
				oc.i32 = append(oc.i32, int32(len(g.distinct[di])))
				di++
			case AggMinF64:
				oc.f64 = append(oc.f64, g.minv[mi])
				mi++
			case AggMaxF64:
				oc.f64 = append(oc.f64, g.maxv[xi])
				xi++
			case AggSumF64:
				oc.f64 = append(oc.f64, g.sumv[si])
				si++
			}
			col++
		}
		out.nrows++
	}
	return out, nil
}
