package engine

import "fmt"

// AggKind enumerates the aggregate functions GroupByNode supports. They
// are exactly the ones ProbKB's quality-control queries need (Query 3 in
// the paper groups by (R, x, C1, C2) and filters on COUNT(*) > MIN(deg)).
type AggKind int

const (
	// AggCount counts rows per group; Col is ignored.
	AggCount AggKind = iota
	// AggCountDistinct counts distinct values of an Int32 column per group.
	AggCountDistinct
	// AggMinF64 takes the minimum of a Float64 column per group.
	AggMinF64
	// AggMaxF64 takes the maximum of a Float64 column per group.
	AggMaxF64
	// AggSumF64 sums a Float64 column per group.
	AggSumF64
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count(*)"
	case AggCountDistinct:
		return "count(distinct)"
	case AggMinF64:
		return "min"
	case AggMaxF64:
		return "max"
	case AggSumF64:
		return "sum"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggSpec requests one aggregate output column.
type AggSpec struct {
	Kind AggKind
	Col  int // input column; ignored for AggCount
	Name string
}

// GroupByNode groups its input on a tuple of Int32 key columns and emits
// one row per group: the key columns followed by the aggregates.
type GroupByNode struct {
	base
	child Node
	keys  []int
	aggs  []AggSpec
}

// NewGroupBy constructs a hash aggregation over child.
func NewGroupBy(child Node, keyCols []int, aggs []AggSpec) *GroupByNode {
	sch := GroupBySchema(child.OutSchema(), keyCols, aggs)
	return &GroupByNode{base: base{schema: sch}, child: child, keys: keyCols, aggs: aggs}
}

func (n *GroupByNode) Children() []Node { return []Node{n.child} }

func (n *GroupByNode) Label() string {
	return fmt.Sprintf("GroupAggregate (%d keys, %d aggs)", len(n.keys), len(n.aggs))
}

// groupState accumulates one group's aggregates.
type groupState struct {
	firstRow int
	count    int32
	distinct []map[int32]struct{} // one per AggCountDistinct
	minv     []float64
	maxv     []float64
	sumv     []float64
}

// Run executes the aggregation.
func (n *GroupByNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		return groupByTable(in, n.keys, n.aggs, n.schema, n.exec, &n.stats)
	})
}

// GroupBySchema derives the output schema of a grouping over the given
// input schema.
func GroupBySchema(in Schema, keys []int, aggs []AggSpec) Schema {
	sch := Schema{Cols: make([]ColDef, 0, len(keys)+len(aggs))}
	for _, k := range keys {
		sch.Cols = append(sch.Cols, in.Cols[k])
	}
	for _, a := range aggs {
		switch a.Kind {
		case AggCount, AggCountDistinct:
			sch.Cols = append(sch.Cols, ColDef{Name: a.Name, Type: Int32})
		case AggMinF64, AggMaxF64, AggSumF64:
			sch.Cols = append(sch.Cols, ColDef{Name: a.Name, Type: Float64})
		}
	}
	return sch
}

// GroupByTable runs the aggregation kernel directly on a materialized
// table, serially. Prefer GroupByTableOpts when a worker pool is
// available.
func GroupByTable(in *Table, keys []int, aggs []AggSpec) (*Table, error) {
	return GroupByTableOpts(in, keys, aggs, Opts{Workers: 1}, nil)
}

// GroupByTableOpts runs the aggregation kernel under the given execution
// options, recording worker/morsel counts into st when non-nil. The MPP
// layer calls it once per segment.
func GroupByTableOpts(in *Table, keys []int, aggs []AggSpec, o Opts, st *NodeStats) (*Table, error) {
	return groupByTable(in, keys, aggs, GroupBySchema(in.Schema(), keys, aggs), o, st)
}

// aggSlots counts per-kind aggregate slots so group states size their
// slices once.
type aggSlots struct{ nDistinct, nMin, nMax, nSum int }

func countAggSlots(aggs []AggSpec) aggSlots {
	var s aggSlots
	for _, a := range aggs {
		switch a.Kind {
		case AggCountDistinct:
			s.nDistinct++
		case AggMinF64:
			s.nMin++
		case AggMaxF64:
			s.nMax++
		case AggSumF64:
			s.nSum++
		}
	}
	return s
}

func newGroupState(r int, s aggSlots) *groupState {
	g := &groupState{firstRow: r}
	if s.nDistinct > 0 {
		g.distinct = make([]map[int32]struct{}, s.nDistinct)
		for i := range g.distinct {
			g.distinct[i] = make(map[int32]struct{})
		}
	}
	if s.nMin > 0 {
		g.minv = make([]float64, s.nMin)
		for i := range g.minv {
			g.minv[i] = NullFloat64()
		}
	}
	if s.nMax > 0 {
		g.maxv = make([]float64, s.nMax)
		for i := range g.maxv {
			g.maxv[i] = NullFloat64()
		}
	}
	if s.nSum > 0 {
		g.sumv = make([]float64, s.nSum)
	}
	return g
}

// accumulateRow folds input row r into group g.
func accumulateRow(g *groupState, in *Table, aggs []AggSpec, r int) {
	g.count++
	di, mi, xi, si := 0, 0, 0, 0
	for _, a := range aggs {
		switch a.Kind {
		case AggCountDistinct:
			g.distinct[di][in.cols[a.Col].i32[r]] = struct{}{}
			di++
		case AggMinF64:
			v := in.cols[a.Col].f64[r]
			if IsNullFloat64(g.minv[mi]) || v < g.minv[mi] {
				g.minv[mi] = v
			}
			mi++
		case AggMaxF64:
			v := in.cols[a.Col].f64[r]
			if IsNullFloat64(g.maxv[xi]) || v > g.maxv[xi] {
				g.maxv[xi] = v
			}
			xi++
		case AggSumF64:
			g.sumv[si] += in.cols[a.Col].f64[r]
			si++
		}
	}
}

// mergeGroup folds one morsel's partial state for a group into the
// global state. Merges happen in morsel-index order, which is what makes
// float sums identical for every worker count.
func mergeGroup(dst, src *groupState) {
	dst.count += src.count
	for i, set := range src.distinct {
		for v := range set {
			dst.distinct[i][v] = struct{}{}
		}
	}
	for i, v := range src.minv {
		if IsNullFloat64(v) {
			continue
		}
		if IsNullFloat64(dst.minv[i]) || v < dst.minv[i] {
			dst.minv[i] = v
		}
	}
	for i, v := range src.maxv {
		if IsNullFloat64(v) {
			continue
		}
		if IsNullFloat64(dst.maxv[i]) || v > dst.maxv[i] {
			dst.maxv[i] = v
		}
	}
	for i, v := range src.sumv {
		dst.sumv[i] += v
	}
}

// aggPartial is one morsel's partial aggregation.
type aggPartial struct {
	groups map[uint64][]*groupState
	order  []*groupState
	hashes []uint64 // parallel to order: each group's key hash
}

// groupByTable is the aggregation kernel, shared with the MPP layer.
//
// Every worker count uses the same morsel path: each morsel aggregates
// its rows into a partial (group order = first occurrence within the
// morsel, firstRow = global row index), and partials merge sequentially
// in morsel-index order. Group output order is therefore first occurrence
// by (morsel index, row index) = global row order, and float sums add in
// a fixed order — both independent of the worker count. A single-morsel
// input skips the merge and is bitwise-identical to the historical serial
// kernel.
func groupByTable(in *Table, keys []int, aggs []AggSpec, schema Schema, o Opts, st *NodeStats) (*Table, error) {
	slots := countAggSlots(aggs)

	nm := morselCount(in.NumRows(), o.morsel())
	parts := make([]aggPartial, nm)
	runMorsels("groupby", in.NumRows(), o, st, func(m, lo, hi int) {
		p := aggPartial{groups: make(map[uint64][]*groupState)}
		for r := lo; r < hi; r++ {
			h := HashRow(in, r, keys)
			var g *groupState
			for _, cand := range p.groups[h] {
				if rowsEqualOn(in, cand.firstRow, keys, in, r, keys) {
					g = cand
					break
				}
			}
			if g == nil {
				g = newGroupState(r, slots)
				p.groups[h] = append(p.groups[h], g)
				p.order = append(p.order, g)
				p.hashes = append(p.hashes, h)
			}
			accumulateRow(g, in, aggs, r)
		}
		parts[m] = p
	})

	var order []*groupState
	if nm == 1 {
		order = parts[0].order
	} else if nm > 1 {
		groups := make(map[uint64][]*groupState)
		for _, p := range parts {
			for i, src := range p.order {
				h := p.hashes[i]
				var g *groupState
				for _, cand := range groups[h] {
					if rowsEqualOn(in, cand.firstRow, keys, in, src.firstRow, keys) {
						g = cand
						break
					}
				}
				if g == nil {
					groups[h] = append(groups[h], src)
					order = append(order, src)
					continue
				}
				mergeGroup(g, src)
			}
		}
	}

	out := NewTable("groupby", schema)
	out.Reserve(len(order))
	for _, g := range order {
		col := 0
		for _, k := range keys {
			oc := out.cols[col]
			ic := in.cols[k]
			switch ic.typ {
			case Int32:
				oc.i32 = append(oc.i32, ic.i32[g.firstRow])
			case Float64:
				oc.f64 = append(oc.f64, ic.f64[g.firstRow])
			case String:
				oc.str = append(oc.str, ic.str[g.firstRow])
			}
			col++
		}
		di, mi, xi, si := 0, 0, 0, 0
		for _, a := range aggs {
			oc := out.cols[col]
			switch a.Kind {
			case AggCount:
				oc.i32 = append(oc.i32, g.count)
			case AggCountDistinct:
				oc.i32 = append(oc.i32, int32(len(g.distinct[di])))
				di++
			case AggMinF64:
				oc.f64 = append(oc.f64, g.minv[mi])
				mi++
			case AggMaxF64:
				oc.f64 = append(oc.f64, g.maxv[xi])
				xi++
			case AggSumF64:
				oc.f64 = append(oc.f64, g.sumv[si])
				si++
			}
			col++
		}
		out.nrows++
	}
	return out, nil
}
