package engine

import (
	"fmt"
	"strings"
	"time"
)

// Node is one operator of a physical query plan. Plans are trees; Run
// materializes the node's full output, timing itself and recording row
// counts so Explain can annotate the tree the way Figure 4 of the paper
// annotates Greenplum plans.
type Node interface {
	// OutSchema returns the schema of the node's output.
	OutSchema() Schema
	// Children returns the input operators.
	Children() []Node
	// Label returns a one-line description, e.g. "Hash Join (T.R = M1.R2)".
	Label() string
	// Run executes the subtree rooted at the node and returns its output.
	Run() (*Table, error)
	// Stats returns the row count and wall time of the most recent Run.
	Stats() *NodeStats
}

// NodeStats records what the most recent Run of a node did.
type NodeStats struct {
	Rows    int
	Elapsed time.Duration
	// Extra carries operator-specific annotations (e.g. bytes moved by an
	// MPP motion) that Explain appends to the label.
	Extra string

	// EstRows is the optimizer's cardinality estimate for this operator,
	// set at plan time by SetEstRows; 0 means no estimate was recorded.
	// ExplainAnalyze renders it next to the actual row count so the
	// estimation error of every operator is visible.
	EstRows float64
	// OutBytes is the byte size of the operator's materialized output —
	// the peak batch memory the operator pinned. Table.ByteSize is a pure
	// function of the data, so the value is deterministic across worker
	// counts and safe to pin in golden EXPLAIN ANALYZE files.
	OutBytes int64
	// Retries counts segment-task re-executions a distributed operator
	// needed during its most recent Run (always 0 single-node). It
	// depends on the active fault plan, so the journal strips it when
	// canonicalizing.
	Retries int

	// Per-segment breakdowns, filled only by distributed (mpp) operators
	// and nil on single-node plans. SegRows is the output row count per
	// segment; SegSeconds the per-segment task wall time — the raw
	// material of skew/straggler analysis. MovedRows/MovedBytes record the
	// volume a motion operator shipped across segments.
	SegRows    []int
	SegSeconds []float64
	MovedRows  int
	MovedBytes int64

	// Workers and Morsels record the most recent Run's parallel footprint:
	// the worker-goroutine count of the operator's widest parallel region
	// and the total number of fixed-size morsels it processed (summed over
	// regions; distributed operators sum over segments). Both stay zero
	// for operators without parallel regions (scans, sorts, motions).
	// Morsels is deterministic — a pure function of row counts and the
	// morsel size — while Workers depends on the configured pool, so the
	// journal strips only the latter when canonicalizing.
	Workers int
	Morsels int
}

// ExecNote renders the worker/morsel annotation Explain appends after
// Extra, or "" for operators that ran no parallel region.
func (st *NodeStats) ExecNote() string {
	if st.Morsels == 0 {
		return ""
	}
	return fmt.Sprintf(" workers=%d morsels=%d", st.Workers, st.Morsels)
}

// base carries the bookkeeping shared by every operator.
type base struct {
	schema Schema
	stats  NodeStats
	// exec holds the parallel-execution options installed by Configure;
	// the zero value means package defaults (see Opts).
	exec Opts
}

func (b *base) OutSchema() Schema { return b.schema }
func (b *base) Stats() *NodeStats { return &b.stats }

// timeRun wraps an operator body with timing and row accounting. The
// elapsed time recorded is *self* time only (children timed separately),
// matching the per-operator durations in Figure 4. The execution options
// carry the per-query hooks: Cancel is checked before the body runs, so
// a cancelled query stops at the next operator boundary, and OnRows
// reports the rows this operator produced to the active-query registry.
func timeRun(st *NodeStats, o Opts, body func() (*Table, error)) (*Table, error) {
	if o.Cancel != nil {
		if err := o.Cancel(); err != nil {
			return nil, err
		}
	}
	st.Workers, st.Morsels, st.Retries = 0, 0, 0
	start := time.Now()
	out, err := body()
	st.Elapsed = time.Since(start)
	if out != nil {
		st.Rows = out.NumRows()
		st.OutBytes = out.ByteSize()
	}
	if o.OnRows != nil && err == nil {
		o.OnRows(st.Rows)
	}
	return out, err
}

// runChildren executes all children first and returns their outputs. Child
// execution time is excluded from the parent's self time.
func runChildren(n Node) ([]*Table, error) {
	kids := n.Children()
	outs := make([]*Table, len(kids))
	for i, k := range kids {
		t, err := k.Run()
		if err != nil {
			return nil, err
		}
		outs[i] = t
	}
	return outs, nil
}

// Explain renders the plan tree with per-node row counts and self times
// from the most recent Run. Call Run first for an EXPLAIN ANALYZE view;
// without a prior Run the annotations are zero.
func Explain(root Node) string {
	var b strings.Builder
	explainNode(&b, root, 0)
	return b.String()
}

func explainNode(b *strings.Builder, n Node, depth int) {
	st := n.Stats()
	fmt.Fprintf(b, "%s-> %s  (rows=%d time=%s%s%s)\n",
		strings.Repeat("  ", depth), n.Label(), st.Rows, st.Elapsed.Round(time.Microsecond), st.Extra, st.ExecNote())
	for _, k := range n.Children() {
		explainNode(b, k, depth+1)
	}
}

// TotalTime sums the self time of every node in the plan, recursing
// through the entire tree.
func TotalTime(root Node) time.Duration { return TotalTimeOf[Node](root) }

// TotalTimeOf is TotalTime over any plan-shaped tree — single-node or
// distributed (mpp) plans; the obs metrics bridge uses it for both.
func TotalTimeOf[N PlanLike[N]](root N) time.Duration {
	total := root.Stats().Elapsed
	for _, k := range root.Children() {
		total += TotalTimeOf(k)
	}
	return total
}
