package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// buildABW makes an (a int, b int, w float) table with n rows drawn from
// a small key domain so joins and groups collide heavily.
func buildABW(rng *rand.Rand, name string, n int) *Table {
	t := NewTable(name, NewSchema(C("a", Int32), C("b", Int32), C("w", Float64)))
	for i := 0; i < n; i++ {
		t.AppendRow(rng.Int31n(7), rng.Int31n(5), rng.Float64())
	}
	return t
}

// tablesIdentical requires bit-identical contents including row order;
// floats compare by bit pattern so NaN-boxed NULLs match too.
func tablesIdentical(a, b *Table) bool {
	if a.Schema().String() != b.Schema().String() || a.NumRows() != b.NumRows() {
		return false
	}
	for c := 0; c < a.Schema().NumCols(); c++ {
		switch a.Schema().Cols[c].Type {
		case Int32:
			av, bv := a.Int32Col(c), b.Int32Col(c)
			for r := range av {
				if av[r] != bv[r] {
					return false
				}
			}
		case Float64:
			av, bv := a.Float64Col(c), b.Float64Col(c)
			for r := range av {
				if math.Float64bits(av[r]) != math.Float64bits(bv[r]) {
					return false
				}
			}
		case String:
			av, bv := a.StringCol(c), b.StringCol(c)
			for r := range av {
				if av[r] != bv[r] {
					return false
				}
			}
		}
	}
	return true
}

// runWorkers executes a freshly built plan under the given options.
func runWorkers(build func() Node, o Opts) *Table {
	p := build()
	Configure(p, o)
	out, err := p.Run()
	if err != nil {
		panic(err)
	}
	return out
}

// TestParallelMatchesSerial: every parallel operator must produce output
// bit-identical (row order included) to Workers=1, across worker counts
// and with a tiny morsel size that forces multi-morsel merges even on
// small inputs.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := buildABW(rng, "T", 300)
	right := buildABW(rng, "R", 200)

	plans := map[string]func() Node{
		"filter": func() Node {
			return NewFilter(NewScan(in), "a > 2", func(t *Table, r int) bool { return t.Int32Col(0)[r] > 2 })
		},
		"project": func() Node {
			return NewProject(NewScan(in), ColExpr("b", 1), ConstI32Expr("c", 9), NullF64Expr("nw"))
		},
		"distinct": func() Node { return NewDistinct(NewScan(in), []int{0, 1}) },
		"join": func() Node {
			return NewHashJoin(NewScan(in), NewScan(right), []int{0}, []int{0},
				[]JoinOut{BuildCol("a", 0), BuildCol("b", 1), ProbeCol("rb", 1)}, "T.a = R.a")
		},
		"groupby": func() Node {
			return NewGroupBy(NewScan(in), []int{0}, []AggSpec{
				{Kind: AggCount, Name: "n"},
				{Kind: AggCountDistinct, Col: 1, Name: "nd"},
				{Kind: AggMinF64, Col: 2, Name: "mn"},
				{Kind: AggMaxF64, Col: 2, Name: "mx"},
				{Kind: AggSumF64, Col: 2, Name: "sm"},
			})
		},
	}
	for name, build := range plans {
		serial := runWorkers(build, Opts{Workers: 1, MorselSize: 16})
		for _, w := range []int{2, 3, 4, 8} {
			par := runWorkers(build, Opts{Workers: w, MorselSize: 16})
			if !tablesIdentical(serial, par) {
				t.Fatalf("%s: Workers=%d output differs from serial\nserial:\n%s\nparallel:\n%s",
					name, w, serial, par)
			}
		}
	}
}

// TestGroupBySingleMorselMatchesLegacySerial: inputs that fit one morsel
// must take the merge-free path, keeping historical bitwise behavior.
func TestGroupBySingleMorselMatchesLegacySerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := buildABW(rng, "T", 500)
	var st NodeStats
	one, err := GroupByTableOpts(in, []int{0}, []AggSpec{{Kind: AggSumF64, Col: 2, Name: "s"}},
		Opts{Workers: 8}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Morsels != 1 {
		t.Fatalf("500 rows at default morsel size should be 1 morsel, got %d", st.Morsels)
	}
	legacy, err := GroupByTable(in, []int{0}, []AggSpec{{Kind: AggSumF64, Col: 2, Name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if !tablesIdentical(one, legacy) {
		t.Fatal("single-morsel groupby differs from legacy serial kernel")
	}
}

// TestExplainExecNote: after a parallel run, Explain annotates operators
// with worker and morsel counts.
func TestExplainExecNote(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := buildABW(rng, "T", 100)
	f := NewFilter(NewScan(in), "true", func(*Table, int) bool { return true })
	Configure(f, Opts{Workers: 4, MorselSize: 16})
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	exp := Explain(f)
	if !strings.Contains(exp, "workers=4") || !strings.Contains(exp, "morsels=7") {
		t.Fatalf("Explain missing exec note:\n%s", exp)
	}
	// Workers=1 runs record the note too (morsels still counted).
	Configure(f, Opts{Workers: 1, MorselSize: 16})
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(f), "workers=1 morsels=7") {
		t.Fatalf("serial Explain missing exec note:\n%s", Explain(f))
	}
}

// TestRunMorselsPanicPropagates: a panic on a worker goroutine re-raises
// on the caller, so the MPP segment runner's recover still sees it.
func TestRunMorselsPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	runMorsels("test", 100, Opts{Workers: 4, MorselSize: 8}, nil, func(m, lo, hi int) {
		if m == 5 {
			panic("boom")
		}
	})
}

// TestCatalogConcurrent is the -race regression test for Catalog locking:
// goroutines mutate the catalog while others resolve tables and execute
// parallel plans over them.
func TestCatalogConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cat := NewCatalog()
	cat.Put(buildABW(rng, "base", 256))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g)
			for i := 0; i < 50; i++ {
				tab := NewTable(name, NewSchema(C("a", Int32), C("b", Int32), C("w", Float64)))
				tab.AppendRow(int32(g), int32(i), 0.5)
				cat.Put(tab)
				base := cat.MustGet("base")
				f := NewFilter(NewScan(base), "a>3", func(t *Table, r int) bool { return t.Int32Col(0)[r] > 3 })
				Configure(f, Opts{Workers: 2, MorselSize: 32})
				if _, err := f.Run(); err != nil {
					panic(err)
				}
				if _, err := cat.Get(name); err != nil {
					panic(err)
				}
				cat.Names()
				cat.Len()
				if i%10 == 9 {
					cat.Drop(name)
				}
			}
		}(g)
	}
	wg.Wait()
}
