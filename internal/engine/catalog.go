package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog is a tiny name → table registry, playing the role of a database
// schema for the CLI tools and the grounders. All methods are safe for
// concurrent use — the engine itself spawns worker goroutines now, and
// callers run plans over a shared catalog from multiple goroutines. The
// registry is what's synchronized, not the tables: a *Table read out of
// the catalog must not be mutated while other goroutines scan it.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Put registers (or replaces) a table under its own name.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name()] = t
}

// Get returns the named table or an error.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: no table %q in catalog", name)
	}
	return t, nil
}

// MustGet is Get but panics on a missing table.
func (c *Catalog) MustGet(name string) *Table {
	t, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Drop removes the named table; dropping a missing table is a no-op.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}

// Names returns the registered table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}
