package engine

import (
	"fmt"
	"sort"
)

// Catalog is a tiny name → table registry, playing the role of a database
// schema for the CLI tools and the grounders. It is not synchronized;
// callers that share a Catalog across goroutines must coordinate.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Put registers (or replaces) a table under its own name.
func (c *Catalog) Put(t *Table) {
	c.tables[t.Name()] = t
}

// Get returns the named table or an error.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q in catalog", name)
	}
	return t, nil
}

// MustGet is Get but panics on a missing table.
func (c *Catalog) MustGet(name string) *Table {
	t, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Drop removes the named table; dropping a missing table is a no-op.
func (c *Catalog) Drop(name string) {
	delete(c.tables, name)
}

// Names returns the registered table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int { return len(c.tables) }
