package engine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestScanAndExplain(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 2}, []int32{3, 4})
	s := NewScan(tab)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != tab {
		t.Fatal("scan should alias the base table")
	}
	exp := Explain(s)
	if !strings.Contains(exp, "Seq Scan on T") || !strings.Contains(exp, "rows=2") {
		t.Fatalf("Explain output missing annotations:\n%s", exp)
	}
}

func TestFilter(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 2, 3, 4}, []int32{0, 0, 0, 0})
	f := NewFilter(NewScan(tab), "a > 2", func(in *Table, r int) bool {
		return in.Int32Col(0)[r] > 2
	})
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("filter rows = %d, want 2", out.NumRows())
	}
	if !strings.Contains(f.Label(), "a > 2") {
		t.Fatalf("label = %q", f.Label())
	}
}

func TestProjectColumnsAndConstants(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 2}, []int32{10, 20})
	p := NewProject(NewScan(tab),
		ColExpr("b", 1),
		ConstI32Expr("c", 7),
		NullF64Expr("w"),
		ConstF64Expr("v", 2.5),
	)
	out, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantSchema := "(b int, c int, w float, v float)"
	if out.Schema().String() != wantSchema {
		t.Fatalf("schema = %s, want %s", out.Schema(), wantSchema)
	}
	if out.Int32Col(0)[1] != 20 || out.Int32Col(1)[0] != 7 {
		t.Fatalf("projected values wrong: %s", out)
	}
	if !IsNullFloat64(out.Float64Col(2)[0]) || out.Float64Col(3)[1] != 2.5 {
		t.Fatalf("constant columns wrong: %s", out)
	}
}

func TestDistinct(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 1, 2, 1}, []int32{5, 5, 6, 7})
	d := NewDistinct(NewScan(tab), []int{0, 1})
	out, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 5}, {1, 7}, {2, 6}}
	if !rowsEqual(sortedRows(out), want) {
		t.Fatalf("distinct = %v, want %v", sortedRows(out), want)
	}
	// Distinct on only the first column keeps one row per a-value.
	d2 := NewDistinct(NewScan(tab), []int{0})
	out2, _ := d2.Run()
	if out2.NumRows() != 2 {
		t.Fatalf("distinct on col 0 rows = %d, want 2", out2.NumRows())
	}
}

// TestDistinctIdempotent: applying DISTINCT twice equals applying it once.
func TestDistinctIdempotent(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]int32, int(n)%32)
		b := make([]int32, len(a))
		for i := range a {
			a[i] = rng.Int31n(4)
			b[i] = rng.Int31n(4)
		}
		tab := buildTwoCol("T", a, b)
		once, err := NewDistinct(NewScan(tab), []int{0, 1}).Run()
		if err != nil {
			return false
		}
		twice, err := NewDistinct(NewScan(once), []int{0, 1}).Run()
		if err != nil {
			return false
		}
		return rowsEqual(sortedRows(once), sortedRows(twice))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionAll(t *testing.T) {
	a := buildTwoCol("A", []int32{1}, []int32{2})
	b := buildTwoCol("B", []int32{3, 4}, []int32{5, 6})
	u := NewUnionAll(NewScan(a), NewScan(b))
	out, err := u.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("union rows = %d, want 3", out.NumRows())
	}
	// Bag semantics: duplicates survive.
	u2 := NewUnionAll(NewScan(a), NewScan(a))
	out2, _ := u2.Run()
	if out2.NumRows() != 2 {
		t.Fatalf("bag union rows = %d, want 2", out2.NumRows())
	}
}

func TestUnionAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnionAll() did not panic")
		}
	}()
	NewUnionAll()
}

func TestRunHelperAndTotalTime(t *testing.T) {
	tab := buildTwoCol("T", []int32{1}, []int32{2})
	f := NewFilter(NewScan(tab), "all", func(*Table, int) bool { return true })
	out, err := Run(f, "result")
	if err != nil {
		t.Fatal(err)
	}
	if out.Name() != "result" {
		t.Fatalf("result name = %q", out.Name())
	}
	if TotalTime(f) < 0 {
		t.Fatal("TotalTime negative")
	}
}

func TestExplainTreeStructure(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 2}, []int32{1, 2})
	j := NewHashJoin(NewScan(tab), NewScan(tab), []int{0}, []int{0},
		[]JoinOut{BuildCol("a", 0)}, "T.a = T.a")
	if _, err := j.Run(); err != nil {
		t.Fatal(err)
	}
	exp := Explain(j)
	if strings.Count(exp, "Seq Scan on T") != 2 {
		t.Fatalf("expected two scans in explain:\n%s", exp)
	}
	if !strings.Contains(exp, "Hash Join") {
		t.Fatalf("expected hash join node:\n%s", exp)
	}
	// Children are indented deeper than the root.
	lines := strings.Split(strings.TrimSpace(exp), "\n")
	if len(lines) != 3 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("unexpected explain layout:\n%s", exp)
	}
}

func TestSortNode(t *testing.T) {
	tab := NewTable("T", NewSchema(C("a", Int32), C("w", Float64), C("s", String)))
	tab.AppendRow(2, 0.5, "b")
	tab.AppendRow(1, 0.7, "c")
	tab.AppendRow(NullInt32, 0.1, "a")
	tab.AppendRow(1, NullFloat64(), "d")

	// Ascending int: NULL last; ties broken by the second key descending.
	s := NewSort(NewScan(tab), SortKey{Col: 0}, SortKey{Col: 1, Desc: true})
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantA := []int32{1, 1, 2, NullInt32}
	for r, w := range wantA {
		if out.Int32Col(0)[r] != w {
			t.Fatalf("sorted col a = %v", out.Int32Col(0))
		}
	}
	// Row 0 must be the (1, 0.7) row (0.7 > NULL under desc? NULL
	// handling: desc flips the comparison, so NULL sorts first there —
	// accept either of the two tie orders but assert the non-NULL value
	// is present among the first two rows).
	if out.Float64Col(1)[0] != 0.7 && out.Float64Col(1)[1] != 0.7 {
		t.Fatalf("tie-break lost the 0.7 row: %v", out.Float64Col(1))
	}

	// String sort.
	s2 := NewSort(NewScan(tab), SortKey{Col: 2})
	out2, _ := s2.Run()
	if out2.StringCol(2)[0] != "a" || out2.StringCol(2)[3] != "d" {
		t.Fatalf("string sort wrong: %v", out2.StringCol(2))
	}
	// Sorting does not mutate the input.
	if tab.Int32Col(0)[0] != 2 {
		t.Fatal("sort mutated its input")
	}
}

func TestLimitNode(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 2, 3}, []int32{4, 5, 6})
	out, err := NewLimit(NewScan(tab), 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Int32Col(0)[1] != 2 {
		t.Fatalf("limit output wrong:\n%s", out)
	}
	// Limit larger than input passes through.
	out2, _ := NewLimit(NewScan(tab), 99).Run()
	if out2.NumRows() != 3 {
		t.Fatal("oversized limit truncated")
	}
	out3, _ := NewLimit(NewScan(tab), 0).Run()
	if out3.NumRows() != 0 {
		t.Fatal("limit 0 kept rows")
	}
}

func TestTableFromColumns(t *testing.T) {
	sch := NewSchema(C("a", Int32), C("w", Float64), C("s", String))
	tab := TableFromColumns("T", sch, []int32{1, 2}, []float64{0.1, 0.2}, []string{"x", "y"})
	if tab.NumRows() != 2 || tab.Int32Col(0)[1] != 2 || tab.StringCol(2)[0] != "x" {
		t.Fatalf("TableFromColumns wrong:\n%s", tab)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged columns did not panic")
		}
	}()
	TableFromColumns("T", sch, []int32{1}, []float64{0.1, 0.2}, []string{"x"})
}

func TestTableFromColumnsTypeMismatch(t *testing.T) {
	sch := NewSchema(C("a", Int32))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong column type did not panic")
		}
	}()
	TableFromColumns("T", sch, []float64{1})
}

func TestRowSet(t *testing.T) {
	tab := buildTwoCol("T", []int32{1, 2}, []int32{10, 20})
	s := NewRowSet(tab, []int{0, 1})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	probe := buildTwoCol("P", []int32{1, 3}, []int32{10, 30})
	if !s.Contains(probe, 0, []int{0, 1}) {
		t.Fatal("existing key reported absent")
	}
	if s.Contains(probe, 1, []int{0, 1}) {
		t.Fatal("missing key reported present")
	}
	before := tab.NumRows()
	tab.AppendRow(3, 30)
	s.NoteAppended(before)
	if !s.Contains(probe, 1, []int{0, 1}) {
		t.Fatal("appended key not found")
	}
}

func TestNodeLabels(t *testing.T) {
	tab := buildTwoCol("T", []int32{1}, []int32{2})
	scan := NewScan(tab)
	nodes := []Node{
		scan,
		NewFilter(scan, "p", func(*Table, int) bool { return true }),
		NewProject(scan, ColExpr("a", 0)),
		NewDistinct(scan, []int{0}),
		NewUnionAll(scan),
		NewGroupBy(scan, []int{0}, []AggSpec{{Kind: AggCount, Name: "n"}}),
		NewSort(scan, SortKey{Col: 0}),
		NewLimit(scan, 1),
		NewHashJoin(scan, scan, []int{0}, []int{0}, []JoinOut{BuildCol("a", 0)}, "c"),
	}
	for _, n := range nodes {
		if n.Label() == "" {
			t.Fatalf("%T has empty label", n)
		}
	}
}

func TestKernelWrappers(t *testing.T) {
	left := buildTwoCol("L", []int32{1, 2}, []int32{5, 6})
	right := buildTwoCol("R", []int32{1, 1}, []int32{7, 8})
	out, err := HashJoinTables(left, right, []int{0}, []int{0}, nil,
		[]JoinOut{BuildCol("a", 0), ProbeCol("rb", 1)})
	if err != nil || out.NumRows() != 2 {
		t.Fatalf("HashJoinTables: rows=%d err=%v", out.NumRows(), err)
	}
	g, err := GroupByTable(left, []int{0}, []AggSpec{{Kind: AggCount, Name: "n"}})
	if err != nil || g.NumRows() != 2 {
		t.Fatalf("GroupByTable: rows=%d err=%v", g.NumRows(), err)
	}
}

func TestHashInt32sStability(t *testing.T) {
	a := hashInt32s(1, 2, 3)
	b := hashInt32s(1, 2, 3)
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if hashInt32s(1, 2, 3) == hashInt32s(3, 2, 1) {
		t.Fatal("hash ignores order (suspicious)")
	}
}

func TestHashRowMatchesHashInt32s(t *testing.T) {
	tab := buildTwoCol("T", []int32{7}, []int32{-9})
	if HashRow(tab, 0, []int{0, 1}) != hashInt32s(7, -9) {
		t.Fatal("HashRow disagrees with hashInt32s")
	}
}
