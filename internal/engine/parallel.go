package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Morsel-driven parallel execution (Leis et al., adapted to this
// materialize-per-operator engine): operators split their input into
// fixed-size row ranges — morsels — and a small worker pool processes
// them, merging per-morsel results in morsel-index order. Because the
// morsel boundaries depend only on the input row count and the morsel
// size, never on the worker count, every operator produces bit-identical
// output (row order included) for every Workers setting — the property
// the differential harness in internal/proptest asserts.

// DefaultMorselSize is the fixed number of rows per morsel. It is a
// constant of the execution model, not a tuning knob derived from the
// worker count: floating-point aggregates sum per morsel and then merge
// in morsel order, so keeping the boundaries fixed is what makes results
// identical across worker counts.
const DefaultMorselSize = 4096

// defaultWorkers overrides the package-wide worker default; 0 means
// runtime.NumCPU().
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the worker count unconfigured plans run with
// (the -engine-workers CLI flag lands here); n <= 0 restores the
// runtime.NumCPU() default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Opts configures parallel plan execution.
type Opts struct {
	// Workers is the number of worker goroutines an operator's parallel
	// regions may use. 0 means the package default (runtime.NumCPU(),
	// unless SetDefaultWorkers changed it); 1 preserves serial execution.
	Workers int
	// MorselSize overrides DefaultMorselSize; 0 keeps the default. Runs
	// that must produce identical float aggregates must use the same
	// morsel size (the worker count never matters). Tests shrink it to
	// exercise parallel merges on small inputs.
	MorselSize int

	// Cancel, when set, is consulted at every operator boundary: a
	// non-nil return aborts the plan with that error before the next
	// operator runs. Queries wire it to their context so DELETE
	// /debug/queries/{id} (and client disconnects) stop a running plan.
	Cancel func() error
	// OnRows, when set, receives each operator's output row count as it
	// materializes — the "rows produced so far" feed of the active-query
	// registry. It may be called from the plan's driving goroutine only.
	OnRows func(rows int)
}

func (o Opts) workers() int {
	w := o.Workers
	if w <= 0 {
		w = int(defaultWorkers.Load())
	}
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return w
}

func (o Opts) morsel() int {
	if o.MorselSize > 0 {
		return o.MorselSize
	}
	return DefaultMorselSize
}

// execNode is the optional interface Configure uses to install execution
// options; every operator embedding base implements it.
type execNode interface{ setExec(Opts) }

func (b *base) setExec(o Opts) { b.exec = o }

// Configure installs the execution options on every node of a plan tree.
// Call it after building a plan and before Run; an unconfigured plan runs
// with the package defaults.
func Configure(root Node, o Opts) {
	if root == nil {
		return
	}
	if n, ok := root.(execNode); ok {
		n.setExec(o)
	}
	for _, k := range root.Children() {
		Configure(k, o)
	}
}

// morselCount returns how many morsels cover rows at the given size.
func morselCount(rows, size int) int {
	if rows <= 0 {
		return 0
	}
	return (rows + size - 1) / size
}

// runMorsels processes the half-open ranges covering [0, rows) on the
// worker pool: f(m, lo, hi) handles morsel m. Morsels are handed out by
// an atomic counter (work stealing); f must write only morsel-local
// state, and callers merge per-morsel results in morsel-index order to
// keep output deterministic. Worker and morsel counts accumulate into st
// (which timeRun resets per Run), and the morsel/utilization metrics
// feed the obs registry under the op label.
//
// A panic inside f is re-raised on the calling goroutine, so spawning
// workers does not change the engine's panic behavior (the MPP segment
// runner's recover still sees it).
func runMorsels(op string, rows int, o Opts, st *NodeStats, f func(m, lo, hi int)) {
	sz := o.morsel()
	nm := morselCount(rows, sz)
	if nm == 0 {
		return
	}
	w := o.workers()
	if w > nm {
		w = nm
	}
	if st != nil {
		if w > st.Workers {
			st.Workers = w
		}
		st.Morsels += nm
	}
	observeMorsels(op, nm)
	if w <= 1 {
		for m := 0; m < nm; m++ {
			f(m, m*sz, min((m+1)*sz, rows))
		}
		return
	}
	start := time.Now()
	var next atomic.Int64
	var busy atomic.Int64
	var panicOnce sync.Once
	var panicVal any
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			defer func() {
				busy.Add(int64(time.Since(t0)))
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				m := int(next.Add(1)) - 1
				if m >= nm {
					return
				}
				f(m, m*sz, min((m+1)*sz, rows))
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if el := time.Since(start); el > 0 {
		observeUtilization(op, float64(busy.Load())/(float64(el)*float64(w)))
	}
}

// runParallel runs f(0), ..., f(n-1) concurrently on n goroutines,
// re-raising the first panic on the caller like runMorsels does. It backs
// the fixed-partition phases (hash-join build, distinct) where each task
// owns one partition rather than pulling morsels.
func runParallel(n int, f func(i int)) {
	if n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var panicOnce sync.Once
	var panicVal any
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			f(i)
		}(i)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
