package engine

import (
	"math"
	"strings"
	"testing"
)

func factsSchema() Schema {
	return NewSchema(C("R", Int32), C("x", Int32), C("y", Int32), C("w", Float64))
}

func TestSchemaBasics(t *testing.T) {
	s := factsSchema()
	if got := s.NumCols(); got != 4 {
		t.Fatalf("NumCols = %d, want 4", got)
	}
	if got := s.ColIndex("y"); got != 2 {
		t.Fatalf("ColIndex(y) = %d, want 2", got)
	}
	if got := s.ColIndex("nope"); got != -1 {
		t.Fatalf("ColIndex(nope) = %d, want -1", got)
	}
	if got := s.MustColIndex("w"); got != 3 {
		t.Fatalf("MustColIndex(w) = %d, want 3", got)
	}
	if !s.Equal(factsSchema()) {
		t.Fatal("identical schemas not Equal")
	}
	if s.Equal(NewSchema(C("R", Int32))) {
		t.Fatal("different schemas reported Equal")
	}
	want := "(R int, x int, y int, w float)"
	if s.String() != want {
		t.Fatalf("String = %q, want %q", s.String(), want)
	}
	p := s.Project([]int{3, 0})
	if p.String() != "(w float, R int)" {
		t.Fatalf("Project = %q", p.String())
	}
}

func TestSchemaMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustColIndex on missing column did not panic")
		}
	}()
	factsSchema().MustColIndex("missing")
}

func TestColTypeString(t *testing.T) {
	cases := map[ColType]string{Int32: "int", Float64: "float", String: "text", ColType(9): "ColType(9)"}
	for ct, want := range cases {
		if got := ct.String(); got != want {
			t.Errorf("ColType(%d).String() = %q, want %q", int(ct), got, want)
		}
	}
}

func TestAppendAndAccess(t *testing.T) {
	tab := NewTable("T", factsSchema())
	tab.AppendRow(int32(1), int32(10), int32(20), 0.5)
	tab.AppendRow(2, 11, 21, NullFloat64()) // plain ints accepted
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tab.NumRows())
	}
	if got := tab.Int32Col(0)[1]; got != 2 {
		t.Fatalf("R[1] = %d, want 2", got)
	}
	if got := tab.Float64Col(3)[0]; got != 0.5 {
		t.Fatalf("w[0] = %v, want 0.5", got)
	}
	if !IsNullFloat64(tab.Float64Col(3)[1]) {
		t.Fatal("w[1] should be NULL")
	}
	if got := tab.ValueString(1, 3); got != "NULL" {
		t.Fatalf("ValueString NULL float = %q", got)
	}
}

func TestAppendRowArityPanics(t *testing.T) {
	tab := NewTable("T", factsSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong arity did not panic")
		}
	}()
	tab.AppendRow(int32(1))
}

func TestAppendRowTypePanics(t *testing.T) {
	tab := NewTable("T", factsSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong type did not panic")
		}
	}()
	tab.AppendRow("oops", int32(1), int32(2), 0.1)
}

func TestWrongColumnTypeAccessPanics(t *testing.T) {
	tab := NewTable("T", factsSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("Float64Col on Int32 column did not panic")
		}
	}()
	tab.Float64Col(0)
}

func TestAppendTableAndClone(t *testing.T) {
	a := NewTable("A", factsSchema())
	a.AppendRow(1, 2, 3, 1.0)
	b := NewTable("B", factsSchema())
	b.AppendRow(4, 5, 6, 2.0)
	b.AppendRow(7, 8, 9, 3.0)
	a.AppendTable(b)
	if a.NumRows() != 3 {
		t.Fatalf("NumRows after AppendTable = %d, want 3", a.NumRows())
	}
	c := a.Clone()
	c.Int32Col(0)[0] = 99
	if a.Int32Col(0)[0] == 99 {
		t.Fatal("Clone shares storage with the original")
	}
	a.Truncate()
	if a.NumRows() != 0 {
		t.Fatal("Truncate left rows behind")
	}
	if c.NumRows() != 3 {
		t.Fatal("Truncate of original affected clone")
	}
}

func TestDeleteWhere(t *testing.T) {
	tab := NewTable("T", factsSchema())
	for i := 0; i < 10; i++ {
		tab.AppendRow(i, i*10, i*100, float64(i))
	}
	n := tab.DeleteWhere(func(r int) bool { return tab.Int32Col(0)[r]%2 == 0 })
	if n != 5 {
		t.Fatalf("deleted %d rows, want 5", n)
	}
	if tab.NumRows() != 5 {
		t.Fatalf("NumRows = %d, want 5", tab.NumRows())
	}
	for r := 0; r < tab.NumRows(); r++ {
		if tab.Int32Col(0)[r]%2 == 0 {
			t.Fatalf("even row %d survived delete", tab.Int32Col(0)[r])
		}
	}
	// Deleting nothing is a no-op.
	if n := tab.DeleteWhere(func(int) bool { return false }); n != 0 {
		t.Fatalf("no-op delete removed %d rows", n)
	}
}

func TestSortByInt32Cols(t *testing.T) {
	tab := NewTable("T", NewSchema(C("a", Int32), C("b", Int32)))
	tab.AppendRow(2, 1)
	tab.AppendRow(1, 2)
	tab.AppendRow(2, 0)
	tab.AppendRow(1, 1)
	tab.SortByInt32Cols(0, 1)
	wantA := []int32{1, 1, 2, 2}
	wantB := []int32{1, 2, 0, 1}
	for r := 0; r < 4; r++ {
		if tab.Int32Col(0)[r] != wantA[r] || tab.Int32Col(1)[r] != wantB[r] {
			t.Fatalf("row %d = (%d,%d), want (%d,%d)", r,
				tab.Int32Col(0)[r], tab.Int32Col(1)[r], wantA[r], wantB[r])
		}
	}
}

func TestTableStringAndByteSize(t *testing.T) {
	tab := NewTable("D", NewSchema(C("id", Int32), C("name", String)))
	tab.AppendRow(1, "kale")
	tab.AppendRow(NullInt32, "calcium")
	s := tab.String()
	if !strings.Contains(s, "kale") || !strings.Contains(s, "NULL") {
		t.Fatalf("String output missing content:\n%s", s)
	}
	if tab.ByteSize() <= 0 {
		t.Fatal("ByteSize should be positive")
	}
}

func TestReserveKeepsData(t *testing.T) {
	tab := NewTable("T", factsSchema())
	tab.AppendRow(1, 2, 3, 4.0)
	tab.Reserve(1000)
	if tab.NumRows() != 1 || tab.Int32Col(0)[0] != 1 {
		t.Fatal("Reserve lost existing rows")
	}
}

func TestNullSentinels(t *testing.T) {
	if !IsNullFloat64(NullFloat64()) {
		t.Fatal("NullFloat64 not recognized as NULL")
	}
	if IsNullFloat64(0) || IsNullFloat64(math.Inf(1)) {
		t.Fatal("non-NULL values reported as NULL")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	a := NewTable("TPi", factsSchema())
	c.Put(a)
	got, err := c.Get("TPi")
	if err != nil || got != a {
		t.Fatalf("Get(TPi) = %v, %v", got, err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Fatal("Get of missing table should error")
	}
	c.Put(NewTable("M1", factsSchema()))
	names := c.Names()
	if len(names) != 2 || names[0] != "M1" || names[1] != "TPi" {
		t.Fatalf("Names = %v", names)
	}
	c.Drop("M1")
	if c.Len() != 1 {
		t.Fatalf("Len after Drop = %d, want 1", c.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing table did not panic")
		}
	}()
	c.MustGet("M1")
}
