package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTwoCol builds a table with two Int32 columns from parallel slices.
func buildTwoCol(name string, a, b []int32) *Table {
	t := NewTable(name, NewSchema(C("a", Int32), C("b", Int32)))
	for i := range a {
		t.AppendRow(a[i], b[i])
	}
	return t
}

func sortedRows(t *Table) [][]int32 {
	t = t.Clone()
	cols := make([]int, t.Schema().NumCols())
	for i := range cols {
		cols[i] = i
	}
	t.SortByInt32Cols(cols...)
	out := make([][]int32, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		row := make([]int32, len(cols))
		for c := range cols {
			row[c] = t.Int32Col(c)[r]
		}
		out[r] = row
	}
	return out
}

func rowsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestHashJoinBasic(t *testing.T) {
	left := buildTwoCol("L", []int32{1, 2, 3, 2}, []int32{10, 20, 30, 21})
	right := buildTwoCol("R", []int32{2, 3, 4}, []int32{200, 300, 400})
	outs := []JoinOut{BuildCol("la", 0), BuildCol("lb", 1), ProbeCol("rb", 1)}
	j := NewHashJoin(NewScan(left), NewScan(right), []int{0}, []int{0}, outs, "L.a = R.a")
	got, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{2, 20, 200}, {2, 21, 200}, {3, 30, 300}}
	if !rowsEqual(sortedRows(got), want) {
		t.Fatalf("join result:\n%v\nwant %v", sortedRows(got), want)
	}
	if j.Stats().Rows != 3 {
		t.Fatalf("stats rows = %d, want 3", j.Stats().Rows)
	}
}

func TestHashJoinResidual(t *testing.T) {
	left := buildTwoCol("L", []int32{1, 1, 2}, []int32{5, 6, 7})
	right := buildTwoCol("R", []int32{1, 1, 2}, []int32{5, 9, 7})
	outs := []JoinOut{BuildCol("a", 0), BuildCol("lb", 1), ProbeCol("rb", 1)}
	j := NewHashJoin(NewScan(left), NewScan(right), []int{0}, []int{0}, outs, "L.a = R.a").
		WithResidual("L.b = R.b", func(b *Table, br int, p *Table, pr int) bool {
			return b.Int32Col(1)[br] == p.Int32Col(1)[pr]
		})
	got, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 5, 5}, {2, 7, 7}}
	if !rowsEqual(sortedRows(got), want) {
		t.Fatalf("residual join result %v, want %v", sortedRows(got), want)
	}
}

func TestHashJoinMultiKey(t *testing.T) {
	left := buildTwoCol("L", []int32{1, 1, 2}, []int32{5, 6, 5})
	right := buildTwoCol("R", []int32{1, 2, 1}, []int32{5, 5, 6})
	outs := []JoinOut{BuildCol("a", 0), ProbeCol("b", 1)}
	j := NewHashJoin(NewScan(left), NewScan(right), []int{0, 1}, []int{0, 1}, outs, "both cols")
	got, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 5}, {1, 6}, {2, 5}}
	if !rowsEqual(sortedRows(got), want) {
		t.Fatalf("multi-key join result %v, want %v", sortedRows(got), want)
	}
}

func TestHashJoinKeyArityPanics(t *testing.T) {
	l := buildTwoCol("L", nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched key lists did not panic")
		}
	}()
	NewHashJoin(NewScan(l), NewScan(l), []int{0}, []int{0, 1}, nil, "bad")
}

func TestHashJoinEmptyInputs(t *testing.T) {
	l := buildTwoCol("L", nil, nil)
	r := buildTwoCol("R", []int32{1}, []int32{2})
	outs := []JoinOut{BuildCol("a", 0)}
	j := NewHashJoin(NewScan(l), NewScan(r), []int{0}, []int{0}, outs, "empty build")
	got, err := j.Run()
	if err != nil || got.NumRows() != 0 {
		t.Fatalf("empty build join: rows=%d err=%v", got.NumRows(), err)
	}
	j2 := NewHashJoin(NewScan(r), NewScan(l), []int{0}, []int{0}, outs, "empty probe")
	got2, err := j2.Run()
	if err != nil || got2.NumRows() != 0 {
		t.Fatalf("empty probe join: rows=%d err=%v", got2.NumRows(), err)
	}
}

// TestHashJoinAgreesWithNestedLoop is the core correctness property: on
// random inputs the hash join must produce exactly the bag of rows the
// nested-loop oracle produces.
func TestHashJoinAgreesWithNestedLoop(t *testing.T) {
	prop := func(seed int64, nl, nr uint8, domain uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dom := int32(domain%8) + 1
		mk := func(n uint8, name string) *Table {
			a := make([]int32, int(n)%24)
			b := make([]int32, len(a))
			for i := range a {
				a[i] = rng.Int31n(dom)
				b[i] = rng.Int31n(dom)
			}
			return buildTwoCol(name, a, b)
		}
		left, right := mk(nl, "L"), mk(nr, "R")
		outs := []JoinOut{BuildCol("la", 0), BuildCol("lb", 1), ProbeCol("ra", 0), ProbeCol("rb", 1)}
		j := NewHashJoin(NewScan(left), NewScan(right), []int{0}, []int{1}, outs, "L.a = R.b")
		got, err := j.Run()
		if err != nil {
			return false
		}
		want := NestedLoopJoin(left, right, []int{0}, []int{1}, nil, outs)
		return rowsEqual(sortedRows(got), sortedRows(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHashJoinResidualAgreesWithNestedLoop extends the property to joins
// with residual predicates (the T2.x = T3.x checks of Query 1-3).
func TestHashJoinResidualAgreesWithNestedLoop(t *testing.T) {
	residual := func(b *Table, br int, p *Table, pr int) bool {
		return b.Int32Col(1)[br] <= p.Int32Col(1)[pr]
	}
	prop := func(seed int64, nl, nr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n uint8, name string) *Table {
			a := make([]int32, int(n)%16)
			b := make([]int32, len(a))
			for i := range a {
				a[i] = rng.Int31n(4)
				b[i] = rng.Int31n(4)
			}
			return buildTwoCol(name, a, b)
		}
		left, right := mk(nl, "L"), mk(nr, "R")
		outs := []JoinOut{BuildCol("la", 0), BuildCol("lb", 1), ProbeCol("rb", 1)}
		j := NewHashJoin(NewScan(left), NewScan(right), []int{0}, []int{0}, outs, "eq").
			WithResidual("le", residual)
		got, err := j.Run()
		if err != nil {
			return false
		}
		want := NestedLoopJoin(left, right, []int{0}, []int{0}, residual, outs)
		return rowsEqual(sortedRows(got), sortedRows(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinDesc(t *testing.T) {
	bs := NewSchema(C("R", Int32), C("C1", Int32))
	ps := NewSchema(C("R2", Int32), C("C1", Int32))
	got := JoinDesc("M1", bs, []int{0, 1}, "T", ps, []int{0, 1})
	want := "M1.R = T.R2 AND M1.C1 = T.C1"
	if got != want {
		t.Fatalf("JoinDesc = %q, want %q", got, want)
	}
}

func TestHashJoinFloatAndStringOutputs(t *testing.T) {
	l := NewTable("L", NewSchema(C("k", Int32), C("w", Float64)))
	l.AppendRow(1, 0.5)
	r := NewTable("R", NewSchema(C("k", Int32), C("s", String)))
	r.AppendRow(1, "hello")
	outs := []JoinOut{BuildCol("w", 1), ProbeCol("s", 1)}
	j := NewHashJoin(NewScan(l), NewScan(r), []int{0}, []int{0}, outs, "k")
	got, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 || got.Float64Col(0)[0] != 0.5 || got.StringCol(1)[0] != "hello" {
		t.Fatalf("mixed-type join output wrong: %s", got)
	}
}
