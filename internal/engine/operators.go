package engine

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Seq Scan

// ScanNode produces the rows of a base table. The output aliases the
// table's storage (zero copy); downstream operators never mutate inputs.
type ScanNode struct {
	base
	t *Table
}

// NewScan returns a sequential scan over t.
func NewScan(t *Table) *ScanNode {
	return &ScanNode{base: base{schema: t.Schema()}, t: t}
}

func (n *ScanNode) Children() []Node { return nil }
func (n *ScanNode) Label() string    { return "Seq Scan on " + n.t.Name() }

// Run returns the scanned table.
func (n *ScanNode) Run() (*Table, error) {
	return timeRun(&n.stats, func() (*Table, error) { return n.t, nil })
}

// ---------------------------------------------------------------------------
// Filter

// FilterNode keeps the rows for which Pred returns true.
type FilterNode struct {
	base
	child Node
	pred  func(t *Table, row int) bool
	desc  string
}

// NewFilter returns a filter over child; desc is used in Explain output.
func NewFilter(child Node, desc string, pred func(t *Table, row int) bool) *FilterNode {
	return &FilterNode{base: base{schema: child.OutSchema()}, child: child, pred: pred, desc: desc}
}

func (n *FilterNode) Children() []Node { return []Node{n.child} }
func (n *FilterNode) Label() string    { return "Filter (" + n.desc + ")" }

// Run materializes the filtered rows.
func (n *FilterNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, func() (*Table, error) {
		out := NewTable("filter", n.schema)
		for r := 0; r < in.NumRows(); r++ {
			if n.pred(in, r) {
				out.appendFrom(in, r)
			}
		}
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Project

// OutExpr describes one output column of a projection: either a source
// column, or a constant (including NULL).
type OutExpr struct {
	Name string
	Type ColType
	// Col is the source column index when >= 0.
	Col int
	// Constant payloads, used when Col < 0.
	I32   int32
	F64   float64
	Str   string
	IsNul bool
}

// ColExpr projects source column col under a new name (type inferred at
// plan construction).
func ColExpr(name string, col int) OutExpr { return OutExpr{Name: name, Col: col} }

// NullF64Expr emits a NULL float column (inferred fact weights).
func NullF64Expr(name string) OutExpr {
	return OutExpr{Name: name, Type: Float64, Col: -1, IsNul: true}
}

// ConstF64Expr emits a constant float column.
func ConstF64Expr(name string, v float64) OutExpr {
	return OutExpr{Name: name, Type: Float64, Col: -1, F64: v}
}

// ConstI32Expr emits a constant int column.
func ConstI32Expr(name string, v int32) OutExpr {
	return OutExpr{Name: name, Type: Int32, Col: -1, I32: v}
}

// ProjectNode computes a new row layout from its child.
type ProjectNode struct {
	base
	child Node
	exprs []OutExpr
}

// NewProject returns a projection of child through exprs.
func NewProject(child Node, exprs ...OutExpr) *ProjectNode {
	cs := child.OutSchema()
	// Copy before resolving column types below: callers (e.g. the MPP
	// project, once per segment in parallel) may share one exprs slice
	// across concurrent NewProject calls.
	exprs = append([]OutExpr(nil), exprs...)
	sch := Schema{Cols: make([]ColDef, len(exprs))}
	for i, e := range exprs {
		typ := e.Type
		if e.Col >= 0 {
			typ = cs.Cols[e.Col].Type
			exprs[i].Type = typ
		}
		sch.Cols[i] = ColDef{Name: e.Name, Type: typ}
	}
	return &ProjectNode{base: base{schema: sch}, child: child, exprs: exprs}
}

func (n *ProjectNode) Children() []Node { return []Node{n.child} }

func (n *ProjectNode) Label() string {
	names := make([]string, len(n.exprs))
	for i, e := range n.exprs {
		names[i] = e.Name
	}
	return "Project (" + strings.Join(names, ", ") + ")"
}

// Run materializes the projection.
func (n *ProjectNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, func() (*Table, error) {
		out := NewTable("project", n.schema)
		nr := in.NumRows()
		out.Reserve(nr)
		for c, e := range n.exprs {
			oc := out.cols[c]
			if e.Col >= 0 {
				ic := in.cols[e.Col]
				switch e.Type {
				case Int32:
					oc.i32 = append(oc.i32, ic.i32...)
				case Float64:
					oc.f64 = append(oc.f64, ic.f64...)
				case String:
					oc.str = append(oc.str, ic.str...)
				}
				continue
			}
			switch e.Type {
			case Int32:
				v := e.I32
				if e.IsNul {
					v = NullInt32
				}
				for i := 0; i < nr; i++ {
					oc.i32 = append(oc.i32, v)
				}
			case Float64:
				v := e.F64
				if e.IsNul {
					v = NullFloat64()
				}
				for i := 0; i < nr; i++ {
					oc.f64 = append(oc.f64, v)
				}
			case String:
				for i := 0; i < nr; i++ {
					oc.str = append(oc.str, e.Str)
				}
			}
		}
		out.nrows = nr
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Distinct

// DistinctNode removes duplicate rows, judging duplicates by the given
// Int32 key columns. The first occurrence of each key survives.
type DistinctNode struct {
	base
	child Node
	keys  []int
}

// NewDistinct returns a duplicate-eliminating operator over child.
func NewDistinct(child Node, keyCols []int) *DistinctNode {
	return &DistinctNode{base: base{schema: child.OutSchema()}, child: child, keys: keyCols}
}

func (n *DistinctNode) Children() []Node { return []Node{n.child} }
func (n *DistinctNode) Label() string {
	return fmt.Sprintf("HashAggregate (distinct on %d cols)", len(n.keys))
}

// Run materializes the distinct rows.
func (n *DistinctNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, func() (*Table, error) {
		out := NewTable("distinct", n.schema)
		seen := NewRowSet(out, n.keys)
		for r := 0; r < in.NumRows(); r++ {
			if seen.Contains(in, r, n.keys) {
				continue
			}
			before := out.NumRows()
			out.appendFrom(in, r)
			seen.NoteAppended(before)
		}
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Union All

// UnionAllNode concatenates the outputs of its children (bag union, the
// ∪B of Algorithm 1 lines 9–10).
type UnionAllNode struct {
	base
	children []Node
}

// NewUnionAll returns the bag union of the children, whose schemas must be
// type-compatible.
func NewUnionAll(children ...Node) *UnionAllNode {
	if len(children) == 0 {
		panic("engine: UnionAll needs at least one input")
	}
	return &UnionAllNode{base: base{schema: children[0].OutSchema()}, children: children}
}

func (n *UnionAllNode) Children() []Node { return n.children }
func (n *UnionAllNode) Label() string    { return fmt.Sprintf("Append (%d inputs)", len(n.children)) }

// Run materializes the concatenation.
func (n *UnionAllNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	return timeRun(&n.stats, func() (*Table, error) {
		out := NewTable("union_all", n.schema)
		for _, in := range ins {
			out.AppendTable(in)
		}
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Sort and Limit

// SortKey orders by one column; Desc flips the direction. Int32 and
// Float64 columns sort numerically (NULLs last), String columns
// lexicographically.
type SortKey struct {
	Col  int
	Desc bool
}

// SortNode orders its input by a list of keys (stable).
type SortNode struct {
	base
	child Node
	keys  []SortKey
}

// NewSort returns a sorting operator over child.
func NewSort(child Node, keys ...SortKey) *SortNode {
	return &SortNode{base: base{schema: child.OutSchema()}, child: child, keys: keys}
}

func (n *SortNode) Children() []Node { return []Node{n.child} }
func (n *SortNode) Label() string    { return fmt.Sprintf("Sort (%d keys)", len(n.keys)) }

// Run materializes the sorted rows.
func (n *SortNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, func() (*Table, error) {
		out := in.Clone()
		out.SortBy(n.keys)
		return out, nil
	})
}

// LimitNode keeps the first N input rows.
type LimitNode struct {
	base
	child Node
	n     int
}

// NewLimit returns a row-count limiter over child.
func NewLimit(child Node, limit int) *LimitNode {
	return &LimitNode{base: base{schema: child.OutSchema()}, child: child, n: limit}
}

func (n *LimitNode) Children() []Node { return []Node{n.child} }
func (n *LimitNode) Label() string    { return fmt.Sprintf("Limit %d", n.n) }

// Run materializes the first N rows.
func (n *LimitNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, func() (*Table, error) {
		if in.NumRows() <= n.n {
			return in, nil
		}
		keep := make([]int32, n.n)
		for i := range keep {
			keep[i] = int32(i)
		}
		out := NewTable("limit", n.schema)
		out.AppendRowsFrom(in, keep)
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Materialize helper

// Run executes a plan and names its result.
func Run(root Node, name string) (*Table, error) {
	t, err := root.Run()
	if err != nil {
		return nil, err
	}
	out := t
	if out.Name() != name {
		out = t.Clone()
		out.SetName(name)
	}
	return out, nil
}
