package engine

import (
	"fmt"
	"slices"
	"strings"
)

// ---------------------------------------------------------------------------
// Seq Scan

// ScanNode produces the rows of a base table. The output aliases the
// table's storage (zero copy); downstream operators never mutate inputs.
type ScanNode struct {
	base
	t *Table
}

// NewScan returns a sequential scan over t.
func NewScan(t *Table) *ScanNode {
	return &ScanNode{base: base{schema: t.Schema()}, t: t}
}

func (n *ScanNode) Children() []Node { return nil }
func (n *ScanNode) Label() string    { return "Seq Scan on " + n.t.Name() }

// Run returns the scanned table.
func (n *ScanNode) Run() (*Table, error) {
	return timeRun(&n.stats, n.exec, func() (*Table, error) { return n.t, nil })
}

// ---------------------------------------------------------------------------
// Filter

// FilterNode keeps the rows for which Pred returns true.
type FilterNode struct {
	base
	child Node
	pred  func(t *Table, row int) bool
	desc  string
}

// NewFilter returns a filter over child; desc is used in Explain output.
func NewFilter(child Node, desc string, pred func(t *Table, row int) bool) *FilterNode {
	return &FilterNode{base: base{schema: child.OutSchema()}, child: child, pred: pred, desc: desc}
}

func (n *FilterNode) Children() []Node { return []Node{n.child} }
func (n *FilterNode) Label() string    { return "Filter (" + n.desc + ")" }

// Run materializes the filtered rows.
func (n *FilterNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		return FilterTableOpts(in, n.pred, n.exec, &n.stats), nil
	})
}

// FilterTableOpts runs the filter kernel directly on a materialized
// table under the given execution options; the MPP layer calls it once
// per segment. Each morsel evaluates the predicate into a keep-list, and
// the lists append in morsel order, reproducing the serial row order.
func FilterTableOpts(in *Table, pred func(t *Table, row int) bool, o Opts, st *NodeStats) *Table {
	out := NewTable("filter", in.Schema())
	nr := in.NumRows()
	keep := make([][]int32, morselCount(nr, o.morsel()))
	runMorsels("filter", nr, o, st, func(m, lo, hi int) {
		var rows []int32
		for r := lo; r < hi; r++ {
			if pred(in, r) {
				rows = append(rows, int32(r))
			}
		}
		keep[m] = rows
	})
	for _, rows := range keep {
		out.AppendRowsFrom(in, rows)
	}
	return out
}

// ---------------------------------------------------------------------------
// Project

// OutExpr describes one output column of a projection: either a source
// column, or a constant (including NULL).
type OutExpr struct {
	Name string
	Type ColType
	// Col is the source column index when >= 0.
	Col int
	// Constant payloads, used when Col < 0.
	I32   int32
	F64   float64
	Str   string
	IsNul bool
}

// ColExpr projects source column col under a new name (type inferred at
// plan construction).
func ColExpr(name string, col int) OutExpr { return OutExpr{Name: name, Col: col} }

// NullF64Expr emits a NULL float column (inferred fact weights).
func NullF64Expr(name string) OutExpr {
	return OutExpr{Name: name, Type: Float64, Col: -1, IsNul: true}
}

// ConstF64Expr emits a constant float column.
func ConstF64Expr(name string, v float64) OutExpr {
	return OutExpr{Name: name, Type: Float64, Col: -1, F64: v}
}

// ConstI32Expr emits a constant int column.
func ConstI32Expr(name string, v int32) OutExpr {
	return OutExpr{Name: name, Type: Int32, Col: -1, I32: v}
}

// ProjectNode computes a new row layout from its child.
type ProjectNode struct {
	base
	child Node
	exprs []OutExpr
}

// NewProject returns a projection of child through exprs.
func NewProject(child Node, exprs ...OutExpr) *ProjectNode {
	cs := child.OutSchema()
	// Copy before resolving column types below: callers (e.g. the MPP
	// project, once per segment in parallel) may share one exprs slice
	// across concurrent NewProject calls.
	exprs = append([]OutExpr(nil), exprs...)
	sch := Schema{Cols: make([]ColDef, len(exprs))}
	for i, e := range exprs {
		typ := e.Type
		if e.Col >= 0 {
			typ = cs.Cols[e.Col].Type
			exprs[i].Type = typ
		}
		sch.Cols[i] = ColDef{Name: e.Name, Type: typ}
	}
	return &ProjectNode{base: base{schema: sch}, child: child, exprs: exprs}
}

func (n *ProjectNode) Children() []Node { return []Node{n.child} }

func (n *ProjectNode) Label() string {
	names := make([]string, len(n.exprs))
	for i, e := range n.exprs {
		names[i] = e.Name
	}
	return "Project (" + strings.Join(names, ", ") + ")"
}

// Run materializes the projection.
func (n *ProjectNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		return projectTable(in, n.exprs, n.schema, n.exec, &n.stats), nil
	})
}

// projectTable is the projection kernel: output columns are allocated at
// full length up front so each morsel fills a disjoint row range
// concurrently — the merge is implicit and the row order trivially
// matches serial execution.
func projectTable(in *Table, exprs []OutExpr, schema Schema, o Opts, st *NodeStats) *Table {
	out := NewTable("project", schema)
	nr := in.NumRows()
	for c := range exprs {
		oc := out.cols[c]
		switch oc.typ {
		case Int32:
			oc.i32 = make([]int32, nr)
		case Float64:
			oc.f64 = make([]float64, nr)
		case String:
			oc.str = make([]string, nr)
		}
	}
	runMorsels("project", nr, o, st, func(m, lo, hi int) {
		for c, e := range exprs {
			oc := out.cols[c]
			if e.Col >= 0 {
				ic := in.cols[e.Col]
				switch e.Type {
				case Int32:
					copy(oc.i32[lo:hi], ic.i32[lo:hi])
				case Float64:
					copy(oc.f64[lo:hi], ic.f64[lo:hi])
				case String:
					copy(oc.str[lo:hi], ic.str[lo:hi])
				}
				continue
			}
			switch e.Type {
			case Int32:
				v := e.I32
				if e.IsNul {
					v = NullInt32
				}
				for i := lo; i < hi; i++ {
					oc.i32[i] = v
				}
			case Float64:
				v := e.F64
				if e.IsNul {
					v = NullFloat64()
				}
				for i := lo; i < hi; i++ {
					oc.f64[i] = v
				}
			case String:
				for i := lo; i < hi; i++ {
					oc.str[i] = e.Str
				}
			}
		}
	})
	out.nrows = nr
	return out
}

// ---------------------------------------------------------------------------
// Distinct

// DistinctNode removes duplicate rows, judging duplicates by the given
// Int32 key columns. The first occurrence of each key survives.
type DistinctNode struct {
	base
	child Node
	keys  []int
}

// NewDistinct returns a duplicate-eliminating operator over child.
func NewDistinct(child Node, keyCols []int) *DistinctNode {
	return &DistinctNode{base: base{schema: child.OutSchema()}, child: child, keys: keyCols}
}

func (n *DistinctNode) Children() []Node { return []Node{n.child} }
func (n *DistinctNode) Label() string {
	return fmt.Sprintf("HashAggregate (distinct on %d cols)", len(n.keys))
}

// Run materializes the distinct rows.
func (n *DistinctNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		return distinctTable(in, n.keys, n.schema, n.exec, &n.stats), nil
	})
}

// distinctTable is the duplicate-elimination kernel. The parallel path
// partitions rows by key hash so each partition deduplicates
// independently; the survivor of every key is its globally-first
// occurrence in both paths, and survivors merge sorted by row index, so
// the output is identical for every worker (and partition) count.
func distinctTable(in *Table, keys []int, schema Schema, o Opts, st *NodeStats) *Table {
	out := NewTable("distinct", schema)
	nr := in.NumRows()
	w := o.workers()
	if w <= 1 || morselCount(nr, o.morsel()) <= 1 {
		seen := NewRowSet(out, keys)
		for r := 0; r < nr; r++ {
			if seen.Contains(in, r, keys) {
				continue
			}
			before := out.NumRows()
			out.appendFrom(in, r)
			seen.NoteAppended(before)
		}
		return out
	}
	hashes := make([]uint64, nr)
	runMorsels("distinct", nr, o, st, func(m, lo, hi int) {
		for r := lo; r < hi; r++ {
			hashes[r] = HashRow(in, r, keys)
		}
	})
	parts := make([][]int32, w)
	runParallel(w, func(p int) {
		seen := make(map[uint64][]int32)
		var surv []int32
		pp := uint64(p)
		for r := 0; r < nr; r++ {
			h := hashes[r]
			if h%uint64(w) != pp {
				continue
			}
			dup := false
			for _, cand := range seen[h] {
				if rowsEqualOn(in, int(cand), keys, in, r, keys) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[h] = append(seen[h], int32(r))
			surv = append(surv, int32(r))
		}
		parts[p] = surv
	})
	total := 0
	for _, s := range parts {
		total += len(s)
	}
	all := make([]int32, 0, total)
	for _, s := range parts {
		all = append(all, s...)
	}
	slices.Sort(all)
	out.AppendRowsFrom(in, all)
	return out
}

// ---------------------------------------------------------------------------
// Union All

// UnionAllNode concatenates the outputs of its children (bag union, the
// ∪B of Algorithm 1 lines 9–10).
type UnionAllNode struct {
	base
	children []Node
}

// NewUnionAll returns the bag union of the children, whose schemas must be
// type-compatible.
func NewUnionAll(children ...Node) *UnionAllNode {
	if len(children) == 0 {
		panic("engine: UnionAll needs at least one input")
	}
	return &UnionAllNode{base: base{schema: children[0].OutSchema()}, children: children}
}

func (n *UnionAllNode) Children() []Node { return n.children }
func (n *UnionAllNode) Label() string    { return fmt.Sprintf("Append (%d inputs)", len(n.children)) }

// Run materializes the concatenation.
func (n *UnionAllNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		out := NewTable("union_all", n.schema)
		for _, in := range ins {
			out.AppendTable(in)
		}
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Sort and Limit

// SortKey orders by one column; Desc flips the direction. Int32 and
// Float64 columns sort numerically (NULLs last), String columns
// lexicographically.
type SortKey struct {
	Col  int
	Desc bool
}

// SortNode orders its input by a list of keys (stable).
type SortNode struct {
	base
	child Node
	keys  []SortKey
}

// NewSort returns a sorting operator over child.
func NewSort(child Node, keys ...SortKey) *SortNode {
	return &SortNode{base: base{schema: child.OutSchema()}, child: child, keys: keys}
}

func (n *SortNode) Children() []Node { return []Node{n.child} }
func (n *SortNode) Label() string    { return fmt.Sprintf("Sort (%d keys)", len(n.keys)) }

// Run materializes the sorted rows.
func (n *SortNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		out := in.Clone()
		out.SortBy(n.keys)
		return out, nil
	})
}

// LimitNode keeps the first N input rows.
type LimitNode struct {
	base
	child Node
	n     int
}

// NewLimit returns a row-count limiter over child.
func NewLimit(child Node, limit int) *LimitNode {
	return &LimitNode{base: base{schema: child.OutSchema()}, child: child, n: limit}
}

func (n *LimitNode) Children() []Node { return []Node{n.child} }
func (n *LimitNode) Label() string    { return fmt.Sprintf("Limit %d", n.n) }

// Run materializes the first N rows.
func (n *LimitNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		if in.NumRows() <= n.n {
			return in, nil
		}
		keep := make([]int32, n.n)
		for i := range keep {
			keep[i] = int32(i)
		}
		out := NewTable("limit", n.schema)
		out.AppendRowsFrom(in, keep)
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Materialize helper

// Run executes a plan and names its result.
func Run(root Node, name string) (*Table, error) {
	t, err := root.Run()
	if err != nil {
		return nil, err
	}
	out := t
	if out.Name() != name {
		out = t.Clone()
		out.SetName(name)
	}
	return out, nil
}
