package engine

// Table statistics for cardinality estimation. The SQL planner's
// join-order optimizer uses per-column distinct counts the way a DBMS
// uses its ANALYZE output.

// ColStats summarizes one column.
type ColStats struct {
	// Distinct is the exact number of distinct values (NULL counts as a
	// value).
	Distinct int
	// Nulls is the number of NULL cells (Int32/Float64 columns only).
	Nulls int
}

// TableStats summarizes a table.
type TableStats struct {
	Rows int
	Cols []ColStats
}

// Analyze computes exact per-column statistics. Cost is O(rows × cols);
// callers cache the result keyed by (table, row count).
func Analyze(t *Table) *TableStats {
	st := &TableStats{Rows: t.NumRows(), Cols: make([]ColStats, len(t.cols))}
	for ci, c := range t.cols {
		switch c.typ {
		case Int32:
			seen := make(map[int32]struct{}, len(c.i32))
			nulls := 0
			for _, v := range c.i32 {
				seen[v] = struct{}{}
				if v == NullInt32 {
					nulls++
				}
			}
			st.Cols[ci] = ColStats{Distinct: len(seen), Nulls: nulls}
		case Float64:
			seen := make(map[float64]struct{}, len(c.f64))
			nulls := 0
			for _, v := range c.f64 {
				if IsNullFloat64(v) {
					nulls++
					continue
				}
				seen[v] = struct{}{}
			}
			d := len(seen)
			if nulls > 0 {
				d++
			}
			st.Cols[ci] = ColStats{Distinct: d, Nulls: nulls}
		case String:
			seen := make(map[string]struct{}, len(c.str))
			for _, v := range c.str {
				seen[v] = struct{}{}
			}
			st.Cols[ci] = ColStats{Distinct: len(seen)}
		}
	}
	return st
}

// DistinctOf returns the distinct count of a column, defaulting to the
// row count when the column index is out of range.
func (s *TableStats) DistinctOf(col int) int {
	if col < 0 || col >= len(s.Cols) {
		return s.Rows
	}
	d := s.Cols[col].Distinct
	if d < 1 {
		return 1
	}
	return d
}
