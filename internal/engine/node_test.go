package engine

import (
	"testing"
	"time"
)

// stubNode is a plan node with preset stats, for tree-walk tests.
type stubNode struct {
	base
	label string
	kids  []Node
}

func newStub(label string, elapsed time.Duration, rows int, kids ...Node) *stubNode {
	n := &stubNode{label: label, kids: kids}
	n.stats.Elapsed = elapsed
	n.stats.Rows = rows
	return n
}

func (n *stubNode) Children() []Node     { return n.kids }
func (n *stubNode) Label() string        { return n.label }
func (n *stubNode) Run() (*Table, error) { return nil, nil }

// TestTotalTimeFullTree pins TotalTime to summing *every* level of the
// plan, not just the root and its immediate children: a 3-level tree
// with distinct per-node self times must sum to their exact total.
func TestTotalTimeFullTree(t *testing.T) {
	//        root (1ms)
	//        /        \
	//   mid1 (2ms)   mid2 (4ms)
	//    /    \          \
	// leaf1   leaf2     leaf3
	// (8ms)  (16ms)    (32ms)
	leaf1 := newStub("leaf1", 8*time.Millisecond, 1)
	leaf2 := newStub("leaf2", 16*time.Millisecond, 2)
	leaf3 := newStub("leaf3", 32*time.Millisecond, 3)
	mid1 := newStub("mid1", 2*time.Millisecond, 4, leaf1, leaf2)
	mid2 := newStub("mid2", 4*time.Millisecond, 5, leaf3)
	root := newStub("root", 1*time.Millisecond, 6, mid1, mid2)

	want := 63 * time.Millisecond // 1+2+4+8+16+32: every node exactly once
	if got := TotalTime(root); got != want {
		t.Fatalf("TotalTime = %v, want %v (grandchildren missing or double-counted)", got, want)
	}

	// A deeper chain exercises recursion past depth 3.
	chain := newStub("a", time.Millisecond, 0,
		newStub("b", time.Millisecond, 0,
			newStub("c", time.Millisecond, 0,
				newStub("d", time.Millisecond, 0))))
	if got := TotalTime(chain); got != 4*time.Millisecond {
		t.Fatalf("TotalTime(chain) = %v, want 4ms", got)
	}
}

func TestOpKind(t *testing.T) {
	cases := map[string]string{
		"Hash Join (T.R = M1.R2)":    "Hash Join",
		"Seq Scan on TPi [hashed]":   "Seq Scan",
		"Redistribute Motion [by 1]": "Redistribute Motion",
		"Distinct":                   "Distinct",
	}
	for in, want := range cases {
		if got := opKind(in); got != want {
			t.Errorf("opKind(%q) = %q, want %q", in, got, want)
		}
	}
}
