package engine

import (
	"strings"

	"probkb/internal/obs"
)

// Bridge from per-plan NodeStats to the obs metrics registry: one Run's
// operator timings are ephemeral (overwritten by the next Run), so this
// walks a just-executed plan and accumulates its numbers into counters
// and histograms, letting plan timings aggregate across queries the way
// a DBMS's cumulative statistics views do.

func init() {
	obs.Default.Help("probkb_engine_plan_seconds", "Total self time of executed query plans, by query site.")
	obs.Default.Help("probkb_engine_operator_seconds", "Per-operator self time of executed plan nodes.")
	obs.Default.Help("probkb_engine_operator_rows_total", "Rows produced by executed plan nodes, by operator kind.")
	obs.Default.Help("probkb_engine_morsels_total", "Morsels processed by parallel operator regions, by region kind.")
	obs.Default.Help("probkb_engine_worker_utilization_ratio", "Fraction of worker-pool time spent busy per parallel region (0-1).")
}

// observeMorsels and observeUtilization feed the morsel-execution metrics
// from runMorsels; op is the bounded region kind ("filter", "join-probe",
// ...), not a free-form label.
func observeMorsels(op string, nm int) {
	obs.Default.Counter("probkb_engine_morsels_total", obs.L("op", op)).Add(int64(nm))
}

func observeUtilization(op string, u float64) {
	obs.Default.Histogram("probkb_engine_worker_utilization_ratio", nil, obs.L("op", op)).Observe(u)
}

// PlanLike is the shape ObserveTree needs from a plan node; both
// engine.Node and mpp.Node satisfy it.
type PlanLike[N any] interface {
	Stats() *NodeStats
	Label() string
	Children() []N
}

// ObservePlan records a just-run single-node plan into the default
// registry under the given query site label (e.g. "ground-atoms").
func ObservePlan(query string, root Node) {
	obs.Default.Histogram("probkb_engine_plan_seconds", nil, obs.L("query", query)).
		Observe(TotalTime(root).Seconds())
	ObserveTree[Node](root)
}

// ObserveTree walks any plan tree (single-node or distributed) and
// accumulates per-operator self times and row counts.
func ObserveTree[N PlanLike[N]](root N) {
	st := root.Stats()
	op := opKind(root.Label())
	obs.Default.Histogram("probkb_engine_operator_seconds", nil, obs.L("op", op)).
		Observe(st.Elapsed.Seconds())
	obs.Default.Counter("probkb_engine_operator_rows_total", obs.L("op", op)).Add(int64(st.Rows))
	for _, k := range root.Children() {
		ObserveTree(k)
	}
}

// opKind reduces an operator label like "Hash Join (T.R = M1.R2)" to its
// bounded-cardinality kind ("Hash Join") for metric labels.
func opKind(label string) string {
	if i := strings.IndexAny(label, "(["); i > 0 {
		label = label[:i]
	}
	if i := strings.Index(label, " on "); i > 0 {
		label = label[:i]
	}
	return strings.TrimSpace(label)
}
