package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// column is the physical storage for one column. Exactly one of the three
// slices is non-nil, matching the declared ColType.
type column struct {
	typ ColType
	i32 []int32
	f64 []float64
	str []string
}

func newColumn(t ColType) *column {
	return &column{typ: t}
}

func (c *column) grow(capacity int) {
	switch c.typ {
	case Int32:
		if cap(c.i32) < capacity {
			n := make([]int32, len(c.i32), capacity)
			copy(n, c.i32)
			c.i32 = n
		}
	case Float64:
		if cap(c.f64) < capacity {
			n := make([]float64, len(c.f64), capacity)
			copy(n, c.f64)
			c.f64 = n
		}
	case String:
		if cap(c.str) < capacity {
			n := make([]string, len(c.str), capacity)
			copy(n, c.str)
			c.str = n
		}
	}
}

// Table is a named, schema-typed, column-oriented relation.
//
// Tables are not safe for concurrent mutation; the MPP layer gives each
// segment its own Table and parallelizes across segments, never within one.
type Table struct {
	name   string
	schema Schema
	cols   []*column
	nrows  int
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{name: name, schema: schema}
	t.cols = make([]*column, schema.NumCols())
	for i, c := range schema.Cols {
		t.cols[i] = newColumn(c.Type)
	}
	return t
}

// TableFromColumns builds a table directly from column slices ([]int32,
// []float64, or []string matching the schema). The table takes ownership
// of the slices. This is the fast bulkload path — no per-row boxing.
func TableFromColumns(name string, schema Schema, cols ...any) *Table {
	if len(cols) != schema.NumCols() {
		panic(fmt.Sprintf("engine: TableFromColumns %s: %d columns for schema %s", name, len(cols), schema))
	}
	t := &Table{name: name, schema: schema}
	t.cols = make([]*column, schema.NumCols())
	n := -1
	check := func(l int) {
		if n == -1 {
			n = l
		} else if n != l {
			panic(fmt.Sprintf("engine: TableFromColumns %s: ragged columns (%d vs %d)", name, n, l))
		}
	}
	for i, cd := range schema.Cols {
		col := newColumn(cd.Type)
		switch cd.Type {
		case Int32:
			v, ok := cols[i].([]int32)
			if !ok {
				panic(fmt.Sprintf("engine: TableFromColumns %s col %d: got %T, want []int32", name, i, cols[i]))
			}
			check(len(v))
			col.i32 = v
		case Float64:
			v, ok := cols[i].([]float64)
			if !ok {
				panic(fmt.Sprintf("engine: TableFromColumns %s col %d: got %T, want []float64", name, i, cols[i]))
			}
			check(len(v))
			col.f64 = v
		case String:
			v, ok := cols[i].([]string)
			if !ok {
				panic(fmt.Sprintf("engine: TableFromColumns %s col %d: got %T, want []string", name, i, cols[i]))
			}
			check(len(v))
			col.str = v
		}
		t.cols[i] = col
	}
	if n < 0 {
		n = 0
	}
	t.nrows = n
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetName renames the table (used when materializing views and results).
func (t *Table) SetName(n string) { t.name = n }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// Reserve pre-allocates capacity for n rows.
func (t *Table) Reserve(n int) {
	for _, c := range t.cols {
		c.grow(n)
	}
}

// Int32Col returns the backing slice of an Int32 column. The caller must
// not resize it; reading and element assignment are fine.
func (t *Table) Int32Col(i int) []int32 {
	c := t.cols[i]
	if c.typ != Int32 {
		panic(fmt.Sprintf("engine: column %d of %s is %s, not int", i, t.name, c.typ))
	}
	return c.i32
}

// Float64Col returns the backing slice of a Float64 column.
func (t *Table) Float64Col(i int) []float64 {
	c := t.cols[i]
	if c.typ != Float64 {
		panic(fmt.Sprintf("engine: column %d of %s is %s, not float", i, t.name, c.typ))
	}
	return c.f64
}

// StringCol returns the backing slice of a String column.
func (t *Table) StringCol(i int) []string {
	c := t.cols[i]
	if c.typ != String {
		panic(fmt.Sprintf("engine: column %d of %s is %s, not text", i, t.name, c.typ))
	}
	return c.str
}

// AppendRow appends one row. vals must match the schema: int32 for Int32
// columns, float64 for Float64 columns, string for String columns. Plain
// int is accepted for Int32 columns as a convenience for literals.
func (t *Table) AppendRow(vals ...any) {
	if len(vals) != t.schema.NumCols() {
		panic(fmt.Sprintf("engine: AppendRow to %s: got %d values, want %d", t.name, len(vals), t.schema.NumCols()))
	}
	for i, v := range vals {
		c := t.cols[i]
		switch c.typ {
		case Int32:
			switch x := v.(type) {
			case int32:
				c.i32 = append(c.i32, x)
			case int:
				c.i32 = append(c.i32, int32(x))
			default:
				panic(fmt.Sprintf("engine: AppendRow to %s col %d: got %T, want int32", t.name, i, v))
			}
		case Float64:
			x, ok := v.(float64)
			if !ok {
				panic(fmt.Sprintf("engine: AppendRow to %s col %d: got %T, want float64", t.name, i, v))
			}
			c.f64 = append(c.f64, x)
		case String:
			x, ok := v.(string)
			if !ok {
				panic(fmt.Sprintf("engine: AppendRow to %s col %d: got %T, want string", t.name, i, v))
			}
			c.str = append(c.str, x)
		}
	}
	t.nrows++
}

// appendFrom copies row src of table o into t. Schemas must be
// type-compatible (same column types in the same order).
func (t *Table) appendFrom(o *Table, src int) {
	for i, c := range t.cols {
		oc := o.cols[i]
		switch c.typ {
		case Int32:
			c.i32 = append(c.i32, oc.i32[src])
		case Float64:
			c.f64 = append(c.f64, oc.f64[src])
		case String:
			c.str = append(c.str, oc.str[src])
		}
	}
	t.nrows++
}

// AppendRowsFrom appends the rows of o whose indices appear in rows, in
// that order. Column types must match. This is the bulk row-movement
// primitive the MPP motions use.
func (t *Table) AppendRowsFrom(o *Table, rows []int32) {
	if len(t.cols) != len(o.cols) {
		panic(fmt.Sprintf("engine: AppendRowsFrom %s += %s: column count mismatch", t.name, o.name))
	}
	for i, c := range t.cols {
		oc := o.cols[i]
		switch c.typ {
		case Int32:
			for _, r := range rows {
				c.i32 = append(c.i32, oc.i32[r])
			}
		case Float64:
			for _, r := range rows {
				c.f64 = append(c.f64, oc.f64[r])
			}
		case String:
			for _, r := range rows {
				c.str = append(c.str, oc.str[r])
			}
		}
	}
	t.nrows += len(rows)
}

// AppendTable appends all rows of o (same column types required).
func (t *Table) AppendTable(o *Table) {
	if len(t.cols) != len(o.cols) {
		panic(fmt.Sprintf("engine: AppendTable %s += %s: column count mismatch", t.name, o.name))
	}
	for i, c := range t.cols {
		oc := o.cols[i]
		if c.typ != oc.typ {
			panic(fmt.Sprintf("engine: AppendTable %s += %s: column %d type mismatch", t.name, o.name, i))
		}
		switch c.typ {
		case Int32:
			c.i32 = append(c.i32, oc.i32...)
		case Float64:
			c.f64 = append(c.f64, oc.f64...)
		case String:
			c.str = append(c.str, oc.str...)
		}
	}
	t.nrows += o.nrows
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	n := NewTable(t.name, t.schema)
	n.AppendTable(t)
	return n
}

// Truncate removes all rows but keeps the schema and allocated capacity.
func (t *Table) Truncate() {
	for _, c := range t.cols {
		c.i32 = c.i32[:0]
		c.f64 = c.f64[:0]
		c.str = c.str[:0]
	}
	t.nrows = 0
}

// KeepRows replaces the table contents with the rows whose indices appear
// in keep, in that order. keep may be any permutation or subset, so this
// doubles as the row-reorder primitive behind SortByInt32Cols.
func (t *Table) KeepRows(keep []int32) {
	for _, c := range t.cols {
		switch c.typ {
		case Int32:
			dst := make([]int32, len(keep))
			for i, r := range keep {
				dst[i] = c.i32[r]
			}
			c.i32 = dst
		case Float64:
			dst := make([]float64, len(keep))
			for i, r := range keep {
				dst[i] = c.f64[r]
			}
			c.f64 = dst
		case String:
			dst := make([]string, len(keep))
			for i, r := range keep {
				dst[i] = c.str[r]
			}
			c.str = dst
		}
	}
	t.nrows = len(keep)
}

// DeleteWhere removes rows for which pred returns true and reports how
// many were deleted. This is the engine primitive behind Query 3
// (applyConstraints) in the paper.
func (t *Table) DeleteWhere(pred func(row int) bool) int {
	keep := make([]int32, 0, t.nrows)
	for r := 0; r < t.nrows; r++ {
		if !pred(r) {
			keep = append(keep, int32(r))
		}
	}
	deleted := t.nrows - len(keep)
	if deleted > 0 {
		t.KeepRows(keep)
	}
	return deleted
}

// SortBy orders the rows by the given keys (stable). NULLs sort last
// within ascending order.
func (t *Table) SortBy(keys []SortKey) {
	idx := make([]int32, t.nrows)
	for i := range idx {
		idx[i] = int32(i)
	}
	// cmp returns -1/0/+1 for rows a, b under key k (ascending sense).
	cmp := func(k SortKey, a, b int32) int {
		c := t.cols[k.Col]
		switch c.typ {
		case Int32:
			va, vb := c.i32[a], c.i32[b]
			na, nb := va == NullInt32, vb == NullInt32
			switch {
			case na && nb:
				return 0
			case na:
				return 1
			case nb:
				return -1
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
			return 0
		case Float64:
			va, vb := c.f64[a], c.f64[b]
			na, nb := IsNullFloat64(va), IsNullFloat64(vb)
			switch {
			case na && nb:
				return 0
			case na:
				return 1
			case nb:
				return -1
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
			return 0
		default:
			va, vb := c.str[a], c.str[b]
			switch {
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
			return 0
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, k := range keys {
			c := cmp(k, idx[a], idx[b])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	t.KeepRows(idx)
}

// SortByInt32Cols sorts the table rows lexicographically by the given
// Int32 columns. Used by tests and pretty printing for deterministic
// output; operators never rely on ordering.
func (t *Table) SortByInt32Cols(cols ...int) {
	idx := make([]int32, t.nrows)
	for i := range idx {
		idx[i] = int32(i)
	}
	keyCols := make([][]int32, len(cols))
	for i, c := range cols {
		keyCols[i] = t.Int32Col(c)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for _, kc := range keyCols {
			if kc[ra] != kc[rb] {
				return kc[ra] < kc[rb]
			}
		}
		return false
	})
	t.KeepRows(idx)
}

// ValueString renders cell (row, col) for debugging output.
func (t *Table) ValueString(row, col int) string {
	c := t.cols[col]
	switch c.typ {
	case Int32:
		v := c.i32[row]
		if v == NullInt32 {
			return "NULL"
		}
		return strconv.Itoa(int(v))
	case Float64:
		v := c.f64[row]
		if IsNullFloat64(v) {
			return "NULL"
		}
		return strconv.FormatFloat(v, 'g', 4, 64)
	case String:
		return c.str[row]
	}
	return "?"
}

// String renders the whole table; intended for tests and small tables.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d rows]\n", t.name, t.schema, t.nrows)
	for r := 0; r < t.nrows; r++ {
		for c := range t.cols {
			if c > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(t.ValueString(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ByteSize estimates the memory footprint of the table payload in bytes.
// The MPP layer uses it to account for data shipped by motions.
func (t *Table) ByteSize() int64 {
	var n int64
	for _, c := range t.cols {
		switch c.typ {
		case Int32:
			n += int64(len(c.i32)) * 4
		case Float64:
			n += int64(len(c.f64)) * 8
		case String:
			for _, s := range c.str {
				n += int64(len(s)) + 16
			}
		}
	}
	return n
}
