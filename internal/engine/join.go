package engine

import (
	"fmt"
	"strings"
)

// JoinOut selects one output column of a hash join: column Col of the
// build side (Side == BuildSide) or probe side (Side == ProbeSide),
// renamed to Name.
type JoinOut struct {
	Name string
	Side int
	Col  int
}

// Side constants for JoinOut.
const (
	BuildSide = 0
	ProbeSide = 1
)

// BuildCol selects column col of the build input.
func BuildCol(name string, col int) JoinOut { return JoinOut{Name: name, Side: BuildSide, Col: col} }

// ProbeCol selects column col of the probe input.
func ProbeCol(name string, col int) JoinOut { return JoinOut{Name: name, Side: ProbeSide, Col: col} }

// HashJoinNode is an equi-join on tuples of Int32 columns. The build input
// is hashed; the probe input streams. An optional residual predicate
// filters matched pairs (used for the extra equality checks of Queries 1-3
// and 2-3, e.g. T2.x = T3.x).
//
// Batch rule application (the paper's core idea) is expressed as hash
// joins between the MLN partition tables and the facts table, so this
// operator carries most of the grounding work.
type HashJoinNode struct {
	base
	build, probe         Node
	buildKeys, probeKeys []int
	residual             func(b *Table, br int, p *Table, pr int) bool
	residualDesc         string
	outs                 []JoinOut
	desc                 string
}

// NewHashJoin constructs a hash equi-join.
//
// buildKeys and probeKeys are parallel lists of Int32 column indices; a
// build row and probe row match when the key tuples are equal and the
// residual predicate (if any) accepts the pair. outs selects and renames
// the output columns. desc is a human-readable join condition for Explain.
func NewHashJoin(build, probe Node, buildKeys, probeKeys []int, outs []JoinOut, desc string) *HashJoinNode {
	if len(buildKeys) != len(probeKeys) {
		panic("engine: HashJoin key lists differ in length")
	}
	sch := JoinSchema(build.OutSchema(), probe.OutSchema(), outs)
	return &HashJoinNode{
		base:      base{schema: sch},
		build:     build,
		probe:     probe,
		buildKeys: buildKeys,
		probeKeys: probeKeys,
		outs:      outs,
		desc:      desc,
	}
}

// WithResidual attaches a residual predicate evaluated on each key-matched
// (build, probe) row pair; desc describes it for Explain.
func (n *HashJoinNode) WithResidual(desc string, pred func(b *Table, br int, p *Table, pr int) bool) *HashJoinNode {
	n.residual = pred
	n.residualDesc = desc
	return n
}

func (n *HashJoinNode) Children() []Node { return []Node{n.build, n.probe} }

func (n *HashJoinNode) Label() string {
	l := "Hash Join (" + n.desc + ")"
	if n.residualDesc != "" {
		l += " Residual (" + n.residualDesc + ")"
	}
	return l
}

// Run executes the join.
func (n *HashJoinNode) Run() (*Table, error) {
	ins, err := runChildren(n)
	if err != nil {
		return nil, err
	}
	bt, pt := ins[0], ins[1]
	return timeRun(&n.stats, n.exec, func() (*Table, error) {
		return hashJoinTables(bt, pt, n.buildKeys, n.probeKeys, n.residual, n.outs, n.schema, n.exec, &n.stats)
	})
}

// JoinSchema derives the output schema a join with the given output spec
// produces.
func JoinSchema(buildSchema, probeSchema Schema, outs []JoinOut) Schema {
	sch := Schema{Cols: make([]ColDef, len(outs))}
	for i, o := range outs {
		src := buildSchema
		if o.Side == ProbeSide {
			src = probeSchema
		}
		sch.Cols[i] = ColDef{Name: o.Name, Type: src.Cols[o.Col].Type}
	}
	return sch
}

// HashJoinTables runs the hash-join kernel directly on materialized
// tables, serially. The MPP layer's historical entry point; prefer
// HashJoinTablesOpts when a worker pool is available.
func HashJoinTables(bt, pt *Table, buildKeys, probeKeys []int,
	residual func(b *Table, br int, p *Table, pr int) bool,
	outs []JoinOut) (*Table, error) {
	return HashJoinTablesOpts(bt, pt, buildKeys, probeKeys, residual, outs, Opts{Workers: 1}, nil)
}

// HashJoinTablesOpts runs the hash-join kernel under the given execution
// options, recording worker/morsel counts into st when non-nil. The MPP
// layer calls it once per segment.
func HashJoinTablesOpts(bt, pt *Table, buildKeys, probeKeys []int,
	residual func(b *Table, br int, p *Table, pr int) bool,
	outs []JoinOut, o Opts, st *NodeStats) (*Table, error) {
	return hashJoinTables(bt, pt, buildKeys, probeKeys, residual, outs,
		JoinSchema(bt.Schema(), pt.Schema(), outs), o, st)
}

// joinSrc precomputes one output column's source for the emit fast path.
type joinSrc struct {
	side int
	col  int
	typ  ColType
}

func joinSrcs(outs []JoinOut, schema Schema) []joinSrc {
	srcs := make([]joinSrc, len(outs))
	for i, o := range outs {
		srcs[i] = joinSrc{side: o.Side, col: o.Col, typ: schema.Cols[i].Type}
	}
	return srcs
}

func emitJoinRow(out *Table, srcs []joinSrc, bt, pt *Table, br, pr int) {
	for i, s := range srcs {
		oc := out.cols[i]
		src := bt
		row := br
		if s.side == ProbeSide {
			src = pt
			row = pr
		}
		ic := src.cols[s.col]
		switch s.typ {
		case Int32:
			oc.i32 = append(oc.i32, ic.i32[row])
		case Float64:
			oc.f64 = append(oc.f64, ic.f64[row])
		case String:
			oc.str = append(oc.str, ic.str[row])
		}
	}
	out.nrows++
}

// hashJoinTables is the join kernel, shared with the MPP layer (which runs
// it once per segment).
//
// The serial contract — bucket candidates stored in increasing build-row
// order, probe rows visited in order — fixes the output row order. The
// parallel path reproduces it exactly: the partitioned build assigns each
// hash to one partition and scans build rows in increasing order, so every
// bucket's candidate list matches the serial one; the probe splits into
// morsels whose output chunks concatenate in morsel-index order.
func hashJoinTables(bt, pt *Table, buildKeys, probeKeys []int,
	residual func(b *Table, br int, p *Table, pr int) bool,
	outs []JoinOut, schema Schema, o Opts, st *NodeStats) (*Table, error) {

	out := NewTable("join", schema)
	srcs := joinSrcs(outs, schema)
	w := o.workers()

	if w <= 1 {
		ht := make(map[uint64][]int32, bt.NumRows()*2)
		for r := 0; r < bt.NumRows(); r++ {
			h := HashRow(bt, r, buildKeys)
			ht[h] = append(ht[h], int32(r))
		}
		for pr := 0; pr < pt.NumRows(); pr++ {
			h := HashRow(pt, pr, probeKeys)
			for _, cand := range ht[h] {
				br := int(cand)
				if !rowsEqualOn(bt, br, buildKeys, pt, pr, probeKeys) {
					continue
				}
				if residual != nil && !residual(bt, br, pt, pr) {
					continue
				}
				emitJoinRow(out, srcs, bt, pt, br, pr)
			}
		}
		return out, nil
	}

	// Parallel build: hash all build rows, then each worker owns the
	// partition h % w and scans rows in increasing order.
	bh := make([]uint64, bt.NumRows())
	runMorsels("join-build", bt.NumRows(), o, st, func(m, lo, hi int) {
		for r := lo; r < hi; r++ {
			bh[r] = HashRow(bt, r, buildKeys)
		}
	})
	parts := make([]map[uint64][]int32, w)
	runParallel(w, func(p int) {
		ht := make(map[uint64][]int32)
		pp := uint64(p)
		for r, h := range bh {
			if h%uint64(w) == pp {
				ht[h] = append(ht[h], int32(r))
			}
		}
		parts[p] = ht
	})

	// Parallel probe: each morsel emits into its own chunk; chunks
	// concatenate in morsel order.
	chunks := make([]*Table, morselCount(pt.NumRows(), o.morsel()))
	runMorsels("join-probe", pt.NumRows(), o, st, func(m, lo, hi int) {
		chunk := NewTable("join", schema)
		for pr := lo; pr < hi; pr++ {
			h := HashRow(pt, pr, probeKeys)
			for _, cand := range parts[h%uint64(w)][h] {
				br := int(cand)
				if !rowsEqualOn(bt, br, buildKeys, pt, pr, probeKeys) {
					continue
				}
				if residual != nil && !residual(bt, br, pt, pr) {
					continue
				}
				emitJoinRow(chunk, srcs, bt, pt, br, pr)
			}
		}
		chunks[m] = chunk
	})
	for _, chunk := range chunks {
		out.AppendTable(chunk)
	}
	return out, nil
}

// NestedLoopJoin joins two tables by exhaustive pairing; it exists only as
// a correctness oracle for tests (hash join must agree with it).
func NestedLoopJoin(bt, pt *Table, buildKeys, probeKeys []int,
	residual func(b *Table, br int, p *Table, pr int) bool,
	outs []JoinOut) *Table {

	sch := JoinSchema(bt.Schema(), pt.Schema(), outs)
	out := NewTable("nljoin", sch)
	for br := 0; br < bt.NumRows(); br++ {
		for pr := 0; pr < pt.NumRows(); pr++ {
			if !rowsEqualOn(bt, br, buildKeys, pt, pr, probeKeys) {
				continue
			}
			if residual != nil && !residual(bt, br, pt, pr) {
				continue
			}
			for i, o := range outs {
				oc := out.cols[i]
				src, row := bt, br
				if o.Side == ProbeSide {
					src, row = pt, pr
				}
				ic := src.cols[o.Col]
				switch sch.Cols[i].Type {
				case Int32:
					oc.i32 = append(oc.i32, ic.i32[row])
				case Float64:
					oc.f64 = append(oc.f64, ic.f64[row])
				case String:
					oc.str = append(oc.str, ic.str[row])
				}
			}
			out.nrows++
		}
	}
	return out
}

// JoinDesc formats a join condition like "T.R = M.R2 AND T.C1 = M.C1" from
// column names, for Explain labels.
func JoinDesc(buildName string, buildSchema Schema, buildKeys []int, probeName string, probeSchema Schema, probeKeys []int) string {
	parts := make([]string, len(buildKeys))
	for i := range buildKeys {
		parts[i] = fmt.Sprintf("%s.%s = %s.%s",
			buildName, buildSchema.Cols[buildKeys[i]].Name,
			probeName, probeSchema.Cols[probeKeys[i]].Name)
	}
	return strings.Join(parts, " AND ")
}
