package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func aggInput() *Table {
	t := NewTable("T", NewSchema(C("g", Int32), C("v", Int32), C("w", Float64)))
	t.AppendRow(1, 10, 1.0)
	t.AppendRow(1, 10, 2.0)
	t.AppendRow(1, 11, 3.0)
	t.AppendRow(2, 10, -1.0)
	t.AppendRow(3, 12, 0.0)
	return t
}

func TestGroupByCountAndDistinct(t *testing.T) {
	in := aggInput()
	g := NewGroupBy(NewScan(in), []int{0}, []AggSpec{
		{Kind: AggCount, Name: "n"},
		{Kind: AggCountDistinct, Col: 1, Name: "nd"},
	})
	out, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	out.SortByInt32Cols(0)
	wantN := map[int32][2]int32{1: {3, 2}, 2: {1, 1}, 3: {1, 1}}
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	for r := 0; r < out.NumRows(); r++ {
		gk := out.Int32Col(0)[r]
		w := wantN[gk]
		if out.Int32Col(1)[r] != w[0] || out.Int32Col(2)[r] != w[1] {
			t.Fatalf("group %d: (n=%d, nd=%d), want %v", gk, out.Int32Col(1)[r], out.Int32Col(2)[r], w)
		}
	}
}

func TestGroupByMinMaxSum(t *testing.T) {
	in := aggInput()
	g := NewGroupBy(NewScan(in), []int{0}, []AggSpec{
		{Kind: AggMinF64, Col: 2, Name: "mn"},
		{Kind: AggMaxF64, Col: 2, Name: "mx"},
		{Kind: AggSumF64, Col: 2, Name: "sm"},
	})
	out, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	out.SortByInt32Cols(0)
	type trio struct{ mn, mx, sm float64 }
	want := map[int32]trio{1: {1, 3, 6}, 2: {-1, -1, -1}, 3: {0, 0, 0}}
	for r := 0; r < out.NumRows(); r++ {
		gk := out.Int32Col(0)[r]
		w := want[gk]
		if out.Float64Col(1)[r] != w.mn || out.Float64Col(2)[r] != w.mx || out.Float64Col(3)[r] != w.sm {
			t.Fatalf("group %d: got (%v,%v,%v), want %+v", gk,
				out.Float64Col(1)[r], out.Float64Col(2)[r], out.Float64Col(3)[r], w)
		}
	}
}

func TestGroupByMultiKey(t *testing.T) {
	in := NewTable("T", NewSchema(C("a", Int32), C("b", Int32)))
	in.AppendRow(1, 1)
	in.AppendRow(1, 1)
	in.AppendRow(1, 2)
	in.AppendRow(2, 1)
	g := NewGroupBy(NewScan(in), []int{0, 1}, []AggSpec{{Kind: AggCount, Name: "n"}})
	out, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	in := NewTable("T", NewSchema(C("a", Int32)))
	g := NewGroupBy(NewScan(in), []int{0}, []AggSpec{{Kind: AggCount, Name: "n"}})
	out, err := g.Run()
	if err != nil || out.NumRows() != 0 {
		t.Fatalf("empty groupby: rows=%d err=%v", out.NumRows(), err)
	}
}

// TestGroupByCountAgreesWithBruteForce: per-group counts must match a map
// computed directly.
func TestGroupByCountAgreesWithBruteForce(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := NewTable("T", NewSchema(C("g", Int32), C("v", Int32)))
		want := make(map[int32]int32)
		wantDistinct := make(map[int32]map[int32]bool)
		for i := 0; i < int(n)%64; i++ {
			gk := rng.Int31n(5)
			v := rng.Int31n(3)
			in.AppendRow(gk, v)
			want[gk]++
			if wantDistinct[gk] == nil {
				wantDistinct[gk] = map[int32]bool{}
			}
			wantDistinct[gk][v] = true
		}
		g := NewGroupBy(NewScan(in), []int{0}, []AggSpec{
			{Kind: AggCount, Name: "n"},
			{Kind: AggCountDistinct, Col: 1, Name: "nd"},
		})
		out, err := g.Run()
		if err != nil {
			return false
		}
		if out.NumRows() != len(want) {
			return false
		}
		for r := 0; r < out.NumRows(); r++ {
			gk := out.Int32Col(0)[r]
			if out.Int32Col(1)[r] != want[gk] {
				return false
			}
			if int(out.Int32Col(2)[r]) != len(wantDistinct[gk]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupBySumAgreesWithBruteForce checks float sums per group.
func TestGroupBySumAgreesWithBruteForce(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := NewTable("T", NewSchema(C("g", Int32), C("w", Float64)))
		want := make(map[int32]float64)
		for i := 0; i < int(n)%48; i++ {
			gk := rng.Int31n(4)
			w := float64(rng.Intn(100)) / 10
			in.AppendRow(gk, w)
			want[gk] += w
		}
		g := NewGroupBy(NewScan(in), []int{0}, []AggSpec{{Kind: AggSumF64, Col: 1, Name: "s"}})
		out, err := g.Run()
		if err != nil || out.NumRows() != len(want) {
			return false
		}
		for r := 0; r < out.NumRows(); r++ {
			if math.Abs(out.Float64Col(1)[r]-want[out.Int32Col(0)[r]]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{
		AggCount: "count(*)", AggCountDistinct: "count(distinct)",
		AggMinF64: "min", AggMaxF64: "max", AggSumF64: "sum",
	} {
		if k.String() != want {
			t.Errorf("AggKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

// TestGroupByHavingPattern exercises the shape of Query 3 in the paper:
// GROUP BY ... HAVING COUNT(*) > MIN(deg).
func TestGroupByHavingPattern(t *testing.T) {
	// (relation R, entity x, object y, degree deg)
	in := NewTable("TJ", NewSchema(C("R", Int32), C("x", Int32), C("y", Int32), C("deg", Float64)))
	// Entity 1 maps to two distinct y under functional relation (deg 1): violation.
	in.AppendRow(1, 1, 100, 1.0)
	in.AppendRow(1, 1, 101, 1.0)
	// Entity 2 maps to one y: fine.
	in.AppendRow(1, 2, 100, 1.0)
	// Entity 3 under a pseudo-functional relation with deg 2 and two
	// values: fine.
	in.AppendRow(2, 3, 100, 2.0)
	in.AppendRow(2, 3, 101, 2.0)
	g := NewGroupBy(NewScan(in), []int{0, 1}, []AggSpec{
		{Kind: AggCountDistinct, Col: 2, Name: "ny"},
		{Kind: AggMinF64, Col: 3, Name: "deg"},
	})
	having := NewFilter(g, "count(distinct y) > min(deg)", func(t *Table, r int) bool {
		return float64(t.Int32Col(2)[r]) > t.Float64Col(3)[r]
	})
	out, err := having.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Int32Col(1)[0] != 1 {
		t.Fatalf("HAVING selected wrong groups: %s", out)
	}
}
