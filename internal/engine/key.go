package engine

// Composite-key hashing for hash joins, distinct, grouping, and the MPP
// layer's hash distribution. Keys are always tuples of Int32 column values.
// We hash into uint64 and verify real equality on probe, so hash collisions
// cost time but never correctness.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashInt32s combines a tuple of int32 values into a 64-bit hash (FNV-1a
// over the 4 bytes of each value).
func hashInt32s(vals ...int32) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		u := uint32(v)
		h ^= uint64(u & 0xff)
		h *= fnvPrime64
		h ^= uint64((u >> 8) & 0xff)
		h *= fnvPrime64
		h ^= uint64((u >> 16) & 0xff)
		h *= fnvPrime64
		h ^= uint64(u >> 24)
		h *= fnvPrime64
	}
	return h
}

// HashRow hashes the given Int32 columns of row r. Exported for the MPP
// layer, which uses the same function so that "distributed by (k...)"
// means the same placement everywhere.
func HashRow(t *Table, r int, cols []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		u := uint32(t.cols[c].i32[r])
		h ^= uint64(u & 0xff)
		h *= fnvPrime64
		h ^= uint64((u >> 8) & 0xff)
		h *= fnvPrime64
		h ^= uint64((u >> 16) & 0xff)
		h *= fnvPrime64
		h ^= uint64(u >> 24)
		h *= fnvPrime64
	}
	return h
}

// rowsEqualOn reports whether row ra of a equals row rb of b on the given
// column lists (element-wise; the lists must have equal length).
func rowsEqualOn(a *Table, ra int, acols []int, b *Table, rb int, bcols []int) bool {
	for i := range acols {
		if a.cols[acols[i]].i32[ra] != b.cols[bcols[i]].i32[rb] {
			return false
		}
	}
	return true
}

// RowSet is a set of rows of one table keyed by a tuple of Int32 columns.
// It backs set-union semantics (facts tables dedup on (R,x,C1,y,C2)) and
// DISTINCT.
type RowSet struct {
	t    *Table
	cols []int
	m    map[uint64][]int32
}

// NewRowSet builds a set over the existing rows of t keyed on cols.
func NewRowSet(t *Table, cols []int) *RowSet {
	s := &RowSet{t: t, cols: cols, m: make(map[uint64][]int32, t.NumRows()*2)}
	for r := 0; r < t.NumRows(); r++ {
		s.addRow(r)
	}
	return s
}

func (s *RowSet) addRow(r int) {
	h := HashRow(s.t, r, s.cols)
	s.m[h] = append(s.m[h], int32(r))
}

// Contains reports whether a row with the same key as row r of table o
// (keyed on ocols) is already present.
func (s *RowSet) Contains(o *Table, r int, ocols []int) bool {
	h := HashRow(o, r, ocols)
	for _, cand := range s.m[h] {
		if rowsEqualOn(s.t, int(cand), s.cols, o, r, ocols) {
			return true
		}
	}
	return false
}

// NoteAppended registers that rows [from, t.NumRows()) were appended to the
// underlying table and must join the set.
func (s *RowSet) NoteAppended(from int) {
	for r := from; r < s.t.NumRows(); r++ {
		s.addRow(r)
	}
}

// Len returns the number of indexed rows.
func (s *RowSet) Len() int {
	n := 0
	for _, v := range s.m {
		n += len(v)
	}
	return n
}
