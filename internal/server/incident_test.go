package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"probkb/internal/obs"
)

// TestIncidentStuckQueryEndToEnd is the tentpole's acceptance path: a
// long-running /admin/expand becomes a stuck query, a watchdog tick
// (with an injected clock — nothing here sleeps its way past a
// threshold) opens an incident, and GET /debug/incidents/{id} serves
// the full report with its goroutine dump and flight-recorder
// timeline. The query is never cancelled by the detector — watchdogs
// observe, they don't kill.
func TestIncidentStuckQueryEndToEnd(t *testing.T) {
	obs.DefaultIncidents.Reset()
	t.Cleanup(obs.DefaultIncidents.Reset)
	srv := testServer(t)

	type result struct {
		code int
		out  map[string]string
	}
	done := make(chan result, 1)
	go func() {
		var out map[string]string
		// Enough Gibbs sweeps to hold the query in flight until the test
		// cancels it during cleanup.
		code := postJSON(t, srv.URL+"/admin/expand",
			`{"inference": true, "burnin": 0, "samples": 50000000}`, &out)
		done <- result{code, out}
	}()

	// Poll the registry until the expand request is running.
	var id string
	deadline := time.Now().Add(10 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("expand request never appeared in /debug/queries")
		}
		var list struct {
			Queries []struct {
				ID    string `json:"id"`
				Kind  string `json:"kind"`
				Phase string `json:"phase"`
			} `json:"queries"`
		}
		if code := getJSON(t, srv.URL+"/debug/queries", &list); code != 200 {
			t.Fatalf("queries status %d", code)
		}
		for _, q := range list.Queries {
			if q.Kind == "expand" && (q.Phase == "ground" || q.Phase == "infer") {
				id = q.ID
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The watchdog, wired exactly as probkb-server wires it, evaluated
	// with a clock one hour ahead: the expand query is now "stuck".
	runner := obs.NewRunner(time.Second)
	runner.OnFire = func(f obs.Finding) { obs.DefaultIncidents.Open(f) }
	runner.Add(&obs.StuckQueryDetector{Registry: obs.Queries, MaxElapsed: 30 * time.Second}, obs.Hysteresis{FireAfter: 2})
	future := time.Now().Add(time.Hour)
	runner.Tick(future)
	runner.Tick(future.Add(time.Second))

	// The incident is listed...
	var list struct {
		Incidents []struct {
			ID       string `json:"id"`
			Detector string `json:"detector"`
			QueryID  string `json:"query_id"`
		} `json:"incidents"`
	}
	if code := getJSON(t, srv.URL+"/debug/incidents", &list); code != 200 {
		t.Fatalf("incidents status %d", code)
	}
	if len(list.Incidents) != 1 {
		t.Fatalf("incident count %d, want 1", len(list.Incidents))
	}
	got := list.Incidents[0]
	if got.Detector != "stuck_query" || got.QueryID != id {
		t.Fatalf("incident summary: %+v (stuck query was %s)", got, id)
	}

	// ...and the full report carries the captures.
	var inc struct {
		ID         string             `json:"id"`
		Summary    string             `json:"summary"`
		Timeline   string             `json:"timeline"`
		Goroutines string             `json:"goroutines"`
		Metrics    map[string]float64 `json:"metrics"`
		Queries    []struct {
			ID string `json:"id"`
		} `json:"queries"`
		Flight []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"flight"`
	}
	if code := getJSON(t, srv.URL+"/debug/incidents/"+got.ID, &inc); code != 200 {
		t.Fatalf("incident detail status %d", code)
	}
	if !strings.Contains(inc.Summary, id) {
		t.Errorf("summary %q does not name query %s", inc.Summary, id)
	}
	if len(inc.Flight) == 0 || inc.Timeline == "" {
		t.Error("incident has no flight-recorder slice")
	}
	// The timeline must show the activity leading up to the anomaly: the
	// stuck expansion's Gibbs checkpoints flooding past (journal events),
	// and at least one correlated event kind per source.
	if !strings.Contains(inc.Timeline, "gibbs_checkpoint") {
		t.Errorf("timeline does not show the stuck expansion's activity:\n%.2000s", inc.Timeline)
	}
	if !strings.Contains(inc.Goroutines, "goroutine") {
		t.Error("incident has no goroutine dump")
	}
	if inc.Metrics["probkb_queries_in_flight"] < 1 {
		t.Errorf("metrics snapshot in-flight gauge = %v", inc.Metrics["probkb_queries_in_flight"])
	}
	var sawStuck bool
	for _, q := range inc.Queries {
		sawStuck = sawStuck || q.ID == id
	}
	if !sawStuck {
		t.Errorf("incident's active-query capture misses %s: %+v", id, inc.Queries)
	}

	// The stuck query was observed, not killed: it is still in flight.
	var still struct {
		Queries []struct {
			ID string `json:"id"`
		} `json:"queries"`
	}
	if code := getJSON(t, srv.URL+"/debug/queries", &still); code != 200 {
		t.Fatalf("queries status %d", code)
	}
	var alive bool
	for _, q := range still.Queries {
		alive = alive || q.ID == id
	}
	if !alive {
		t.Fatal("watchdog killed the query it observed")
	}

	// Unknown incident ids are a 404.
	var errOut map[string]string
	if code := getJSON(t, srv.URL+"/debug/incidents/i999", &errOut); code != 404 {
		t.Fatalf("unknown incident status %d", code)
	}

	// Cleanup: cancel the expand and wait for it to unwind.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/debug/queries/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case r := <-done:
		if r.code != statusClientClosedRequest {
			t.Fatalf("cancelled expand status %d (%v)", r.code, r.out)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled expand did not unwind")
	}
}

// TestIncidentJournaled pins the journal schema hook: an incident
// opened while a server is attached lands in the served expansion's
// journal as an `incident` event, and Canonicalize drops it.
func TestIncidentJournaled(t *testing.T) {
	obs.DefaultIncidents.Reset()
	t.Cleanup(obs.DefaultIncidents.Reset)
	srv := testServer(t)

	obs.DefaultIncidents.Open(obs.Finding{Detector: "goroutine_leak", Summary: "synthetic"})

	var out struct {
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	if code := getJSON(t, srv.URL+"/debug/journal", &out); code != 200 {
		t.Fatalf("journal status %d", code)
	}
	var found bool
	for _, ev := range out.Events {
		found = found || ev.Type == "incident"
	}
	if !found {
		t.Fatal("incident event missing from the served journal")
	}
}

// TestDebugContentTypeAndRetryAfter pins the HTTP hygiene satellites:
// every /debug/* JSON endpoint (and /readyz) declares
// application/json, and the 503 "starting" readyz response carries a
// Retry-After hint.
func TestDebugContentTypeAndRetryAfter(t *testing.T) {
	obs.DefaultIncidents.Reset()
	t.Cleanup(obs.DefaultIncidents.Reset)
	inc := obs.DefaultIncidents.Open(obs.Finding{Detector: "goroutine_leak", Summary: "synthetic"})
	srv := testServer(t)

	for _, path := range []string{
		"/readyz", "/stats",
		"/debug/queries", "/debug/slow", "/debug/journal", "/debug/profile",
		"/debug/incidents", "/debug/incidents/" + inc.ID,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q", path, ct)
		}
	}

	// A pending server's readyz 503 tells clients when to retry.
	psrv := httptest.NewServer(NewPending())
	t.Cleanup(psrv.Close)
	resp, err := http.Get(psrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("pending readyz status %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Errorf("pending readyz Retry-After = %q", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("pending readyz Content-Type = %q", ct)
	}
}
