package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"probkb"
	"probkb/internal/obs"
)

// TestReadyz pins the pending-server lifecycle: a NewPending handler
// is alive (/healthz 200) but not ready (/readyz 503, data endpoints
// 503) until an expansion attaches and SetReady flips.
func TestReadyz(t *testing.T) {
	s := NewPending()
	srv := httptest.NewServer(s)
	defer srv.Close()

	var out map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &out); code != 200 {
		t.Fatalf("pending healthz: %d", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", &out); code != 503 || out["status"] != "starting" {
		t.Fatalf("pending readyz: %d %v, want 503 starting", code, out)
	}
	var errOut map[string]string
	if code := getJSON(t, srv.URL+"/stats", &errOut); code != 503 {
		t.Fatalf("pending stats: %d, want 503", code)
	}
	if !strings.Contains(errOut["error"], "not ready") {
		t.Fatalf("pending stats error: %v", errOut)
	}
	// /metrics and /debug/queries stay reachable while pending — they
	// are exactly what an operator watches during a long recovery.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pending metrics: %d", resp.StatusCode)
	}

	k := probkb.New()
	k.AddFact("born_in", "RG", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode})
	if err != nil {
		t.Fatal(err)
	}
	s.Attach(k, exp)
	s.SetReady(true)
	if code := getJSON(t, srv.URL+"/readyz", &out); code != 200 || out["status"] != "ready" {
		t.Fatalf("attached readyz: %d %v", code, out)
	}
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/stats", &stats); code != 200 {
		t.Fatalf("attached stats: %d", code)
	}
}

// TestSQLAnalyzeResponse asserts analyze=1 adds the EXPLAIN ANALYZE
// plan — actual rows with estimates alongside — to both the GET
// (single-node) and POST (distributed) forms.
func TestSQLAnalyzeResponse(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Rows [][]string `json:"rows"`
		Plan string     `json:"plan"`
	}
	q := "/sql?analyze=1&q=" + strings.ReplaceAll("SELECT T.R, COUNT(*) AS n FROM T GROUP BY T.R", " ", "+")
	if code := getJSON(t, srv.URL+q, &out); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if len(out.Rows) == 0 {
		t.Fatal("analyze dropped the result rows")
	}
	for _, want := range []string{"GroupAggregate", "rows=", "est=", "off=", "mem="} {
		if !strings.Contains(out.Plan, want) {
			t.Errorf("single-node plan missing %q:\n%s", want, out.Plan)
		}
	}

	out.Plan = ""
	body := `{"q": "SELECT a.x, d.name FROM T a JOIN DE d ON a.x = d.id", "segments": 2, "analyze": true}`
	if code := postJSON(t, srv.URL+"/sql", body, &out); code != 200 {
		t.Fatalf("distributed analyze status %d", code)
	}
	for _, want := range []string{"Hash Join", "rows=", "est=", "seg_rows="} {
		if !strings.Contains(out.Plan, want) {
			t.Errorf("distributed plan missing %q:\n%s", want, out.Plan)
		}
	}
	// Without analyze, no plan rides along.
	var plain map[string]any
	if code := getJSON(t, srv.URL+"/sql?q=SELECT+T.R+FROM+T", &plain); code != 200 {
		t.Fatalf("plain status %d", code)
	}
	if _, ok := plain["plan"]; ok {
		t.Error("plan present without analyze=1")
	}
}

// TestSlowQueryLog drives the slow-query path end to end: with a 1ns
// threshold every query is slow, lands in /debug/slow newest-first with
// its analyzed plan, and bumps the counter.
func TestSlowQueryLog(t *testing.T) {
	srv := testServer(t)
	obs.DefaultSlowLog.SetThreshold(time.Nanosecond)
	t.Cleanup(func() { obs.DefaultSlowLog.SetThreshold(0) })

	var qOut map[string]any
	if code := getJSON(t, srv.URL+"/sql?q=SELECT+T.R+FROM+T", &qOut); code != 200 {
		t.Fatalf("sql status %d", code)
	}
	var out struct {
		ThresholdNS int64 `json:"threshold_ns"`
		Queries     []struct {
			ID      string `json:"id"`
			Kind    string `json:"kind"`
			Text    string `json:"query"`
			Plan    string `json:"plan"`
			Elapsed int64  `json:"elapsed_ns"`
		} `json:"queries"`
	}
	if code := getJSON(t, srv.URL+"/debug/slow", &out); code != 200 {
		t.Fatalf("slow status %d", code)
	}
	if out.ThresholdNS != 1 {
		t.Fatalf("threshold_ns = %d", out.ThresholdNS)
	}
	if len(out.Queries) == 0 {
		t.Fatal("slow log empty after an over-threshold query")
	}
	sq := out.Queries[0] // newest first: our query
	if sq.Kind != "sql" || sq.Text != "SELECT T.R FROM T" {
		t.Fatalf("slow entry: %+v", sq)
	}
	if !strings.Contains(sq.Plan, "rows=") {
		t.Fatalf("slow entry kept no analyzed plan: %q", sq.Plan)
	}
	if sq.Elapsed <= 0 {
		t.Fatalf("slow entry elapsed = %d", sq.Elapsed)
	}
}

// TestRuntimeMetrics asserts the Go runtime health satellite: /metrics
// carries goroutines, heap, GC pause histogram, and build info.
func TestRuntimeMetrics(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE probkb_go_goroutines gauge",
		"# TYPE probkb_go_heap_bytes gauge",
		"# TYPE probkb_go_gc_pause_seconds histogram",
		"# TYPE probkb_build_info gauge",
		`probkb_build_info{goversion="go`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSQLMethodLabelSplit pins the per-method metric split: GET /sql
// and POST /sql count into distinct label values, so single-node and
// distributed query traffic are separable on a dashboard.
func TestSQLMethodLabelSplit(t *testing.T) {
	srv := testServer(t)
	var out map[string]any
	if code := getJSON(t, srv.URL+"/sql?q=SELECT+T.R+FROM+T", &out); code != 200 {
		t.Fatalf("get status %d", code)
	}
	if code := postJSON(t, srv.URL+"/sql",
		`{"q": "SELECT a.x, d.name FROM T a JOIN DE d ON a.x = d.id", "segments": 2}`, &out); code != 200 {
		t.Fatalf("post status %d", code)
	}
	snap := obs.Default.Snapshot()
	if snap[`probkb_http_requests_total{code="200",path="GET /sql"}`] < 1 {
		t.Error("GET /sql not counted under its own path label")
	}
	if snap[`probkb_http_requests_total{code="200",path="POST /sql"}`] < 1 {
		t.Error("POST /sql not counted under its own path label")
	}
	if snap[`probkb_http_request_seconds_count{path="GET /sql"}`] < 1 ||
		snap[`probkb_http_request_seconds_count{path="POST /sql"}`] < 1 {
		t.Error("latency histogram not split by method")
	}
}

// TestQueriesCancelEndToEnd is the registry's acceptance path: a
// long-running /admin/expand shows up in /debug/queries with its phase
// and progress, DELETE /debug/queries/{id} cancels it, and the original
// request unwinds with 499 and the PartialError phase.
func TestQueriesCancelEndToEnd(t *testing.T) {
	srv := testServer(t)

	type result struct {
		code int
		out  map[string]string
	}
	done := make(chan result, 1)
	go func() {
		var out map[string]string
		// Enough Gibbs sweeps to hold the query in the infer phase for
		// seconds — the cancel below lands long before it finishes.
		code := postJSON(t, srv.URL+"/admin/expand",
			`{"inference": true, "burnin": 0, "samples": 50000000}`, &out)
		done <- result{code, out}
	}()

	// Poll the registry until the expand request is listed and in flight.
	var id string
	deadline := time.Now().Add(10 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("expand request never appeared in /debug/queries")
		}
		var list struct {
			Queries []struct {
				ID    string `json:"id"`
				Kind  string `json:"kind"`
				Phase string `json:"phase"`
			} `json:"queries"`
		}
		if code := getJSON(t, srv.URL+"/debug/queries", &list); code != 200 {
			t.Fatalf("queries status %d", code)
		}
		for _, q := range list.Queries {
			// Wait for a phase beyond registration so the cancel provably
			// interrupts running work, not setup.
			if q.Kind == "expand" && (q.Phase == "ground" || q.Phase == "infer") {
				id = q.ID
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/debug/queries/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	select {
	case r := <-done:
		if r.code != statusClientClosedRequest {
			t.Fatalf("cancelled expand status %d (%v), want 499", r.code, r.out)
		}
		if p := r.out["phase"]; p != "ground" && p != "infer" {
			t.Fatalf("cancelled expand phase %q", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled expand request did not unwind")
	}

	// The registry must drain and the server keep serving.
	var list struct {
		Queries []struct {
			ID string `json:"id"`
		} `json:"queries"`
	}
	if code := getJSON(t, srv.URL+"/debug/queries", &list); code != 200 {
		t.Fatalf("queries status %d", code)
	}
	for _, q := range list.Queries {
		if q.ID == id {
			t.Fatal("cancelled query still listed after unwinding")
		}
	}
	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatal("server did not survive the cancellation")
	}
}

// TestQueryCancelUnknownID: cancelling a query that is not in flight is
// a 404, not a silent success.
func TestQueryCancelUnknownID(t *testing.T) {
	srv := testServer(t)
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/debug/queries/q999999", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d, want 404", resp.StatusCode)
	}
}
