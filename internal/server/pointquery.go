package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"probkb"
	"probkb/internal/obs"
)

// marginalJSON is the GET /query payload. Marginal is null — not NaN,
// which JSON cannot carry — when the atom is unknown, underivable
// within the bounds, or inference was skipped (samples<0); check
// "found" to tell the cases apart.
type marginalJSON struct {
	Atom         string   `json:"atom"`
	Rel          string   `json:"rel"`
	X            string   `json:"x"`
	Y            string   `json:"y"`
	Marginal     *float64 `json:"marginal"`
	Found        bool     `json:"found"`
	Observed     bool     `json:"observed"`
	Cached       bool     `json:"cached"`
	Coalesced    bool     `json:"coalesced"`
	Generation   uint64   `json:"generation"`
	Depth        int      `json:"depth"`
	Radius       int      `json:"radius"`
	SeedFacts    int      `json:"seedFacts"`
	LocalFacts   int      `json:"localFacts"`
	LocalVars    int      `json:"localVars"`
	LocalFactors int      `json:"localFactors"`
	Collected    int      `json:"collected"`
	ElapsedMS    float64  `json:"elapsedMs"`
}

func marginalToJSON(atom string, m probkb.Marginal) marginalJSON {
	out := marginalJSON{
		Atom: atom, Rel: m.Rel, X: m.X, Y: m.Y,
		Found: m.Found, Observed: m.Observed,
		Cached: m.Cached, Coalesced: m.Coalesced,
		Generation: m.Generation, Depth: m.Depth, Radius: m.Radius,
		SeedFacts: m.SeedFacts, LocalFacts: m.LocalFacts,
		LocalVars: m.LocalVars, LocalFactors: m.LocalFactors,
		Collected: m.Collected,
		ElapsedMS: float64(m.Elapsed) / float64(time.Millisecond),
	}
	if !math.IsNaN(m.Probability) {
		p := m.Probability
		out.Marginal = &p
	}
	return out
}

// intParam parses an optional integer query parameter into *dst,
// reporting a 400-worthy error on garbage. Negative values pass
// through — samples=-1 is the documented way to skip inference.
func intParam(q url.Values, name string, dst *int) error {
	s := q.Get(name)
	if s == "" {
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("bad %s %q", name, s)
	}
	*dst = n
	return nil
}

// handleQuery answers GET /query?atom=Rel(x,y): a point query via
// local grounding and neighborhood Gibbs (probkb.QueryLocal), never the
// global fixpoint, against the generation pinned for this request.
// Optional knobs: depth, radius (grounding bounds), markov (Gibbs
// neighborhood radius), burnin, samples (samples=-1 skips inference),
// nocache=1 (bypass the marginal cache). Cancellation via DELETE
// /debug/queries/{id} unwinds as a 499.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, snap *snapshot, _ uint64) {
	qv := r.URL.Query()
	atom := qv.Get("atom")
	if atom == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query needs atom=Rel(x, y)"))
		return
	}
	rel, x, y, err := probkb.ParseAtom(atom)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pq := probkb.PointQuery{Rel: rel, X: x, Y: y}
	for name, dst := range map[string]*int{
		"depth": &pq.Depth, "radius": &pq.Radius, "markov": &pq.MarkovRadius,
		"burnin": &pq.Burnin, "samples": &pq.Samples,
	} {
		if err := intParam(qv, name, dst); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if nc := qv.Get("nocache"); nc != "" {
		v, err := strconv.ParseBool(nc)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad nocache %q", nc))
			return
		}
		pq.NoCache = v
	}

	ctx, aq := obs.Queries.Begin(r.Context(), "query", atom)
	defer obs.Queries.Finish(aq)
	start := time.Now()
	m, err := snap.exp.QueryLocal(ctx, pq)
	s.noteQuery(r, aq, snap.exp, time.Since(start), "", nil)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, marginalToJSON(atom, m))
}

// maxBatchAtoms bounds one POST /query/batch request; a bigger batch is
// a 400, not a slow request admission control can't see inside.
const maxBatchAtoms = 256

// batchEntryJSON is one atom's answer in a /query/batch response; Error
// is set (and the marginal zero) when that atom failed individually.
type batchEntryJSON struct {
	marginalJSON
	Error string `json:"error,omitempty"`
}

// handleQueryBatch answers POST /query/batch: many point queries
// against ONE pinned generation, so the whole batch observes a single
// consistent snapshot no matter what writers publish mid-flight. Atoms
// share the bounds knobs and run concurrently; identical concurrent
// lookups coalesce into one grounding run (Marginal.Coalesced). Per-
// atom failures come back inline; a cancelled request unwinds as 499.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request, snap *snapshot, gen uint64) {
	var req struct {
		Atoms   []string `json:"atoms"`
		Depth   int      `json:"depth"`
		Radius  int      `json:"radius"`
		Markov  int      `json:"markov"`
		Burnin  int      `json:"burnin"`
		Samples int      `json:"samples"`
		NoCache bool     `json:"nocache"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Atoms) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`no atoms: body must be {"atoms": ["Rel(x, y)", ...]}`))
		return
	}
	if len(req.Atoms) > maxBatchAtoms {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d atoms exceeds the %d-atom limit", len(req.Atoms), maxBatchAtoms))
		return
	}
	pqs := make([]probkb.PointQuery, len(req.Atoms))
	for i, atom := range req.Atoms {
		rel, x, y, err := probkb.ParseAtom(atom)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("atoms[%d]: %w", i, err))
			return
		}
		pqs[i] = probkb.PointQuery{
			Rel: rel, X: x, Y: y,
			Depth: req.Depth, Radius: req.Radius, MarkovRadius: req.Markov,
			Burnin: req.Burnin, Samples: req.Samples, NoCache: req.NoCache,
		}
	}

	ctx, aq := obs.Queries.Begin(r.Context(), "query", fmt.Sprintf("batch of %d atoms", len(req.Atoms)))
	defer obs.Queries.Finish(aq)
	aq.SetPhase("run")
	start := time.Now()

	// Fan the batch out with bounded concurrency; every worker reads the
	// same pinned snapshot, so ordering within the batch is irrelevant.
	results := make([]batchEntryJSON, len(pqs))
	errs := make([]error, len(pqs))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := range pqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := snap.exp.QueryLocal(ctx, pqs[i])
			if err != nil {
				errs[i] = err
				results[i] = batchEntryJSON{Error: err.Error()}
				return
			}
			results[i] = batchEntryJSON{marginalJSON: marginalToJSON(req.Atoms[i], m)}
			aq.AddRows(1)
		}(i)
	}
	wg.Wait()
	s.noteQuery(r, aq, snap.exp, time.Since(start), "", nil)

	// A cancelled request (client gone, or DELETE /debug/queries/{id})
	// fails wholesale with the 499 contract rather than returning a
	// batch of per-atom cancellation errors.
	if ctx.Err() != nil {
		for _, err := range errs {
			if err != nil {
				writeQueryError(w, err)
				return
			}
		}
		writeQueryError(w, &probkb.PartialError{Phase: "query-local", Err: ctx.Err()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"results":    results,
	})
}
