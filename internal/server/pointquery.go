package server

import (
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"probkb"
	"probkb/internal/obs"
)

// marginalJSON is the GET /query payload. Marginal is null — not NaN,
// which JSON cannot carry — when the atom is unknown, underivable
// within the bounds, or inference was skipped (samples<0); check
// "found" to tell the cases apart.
type marginalJSON struct {
	Atom         string   `json:"atom"`
	Rel          string   `json:"rel"`
	X            string   `json:"x"`
	Y            string   `json:"y"`
	Marginal     *float64 `json:"marginal"`
	Found        bool     `json:"found"`
	Observed     bool     `json:"observed"`
	Cached       bool     `json:"cached"`
	Generation   uint64   `json:"generation"`
	Depth        int      `json:"depth"`
	Radius       int      `json:"radius"`
	SeedFacts    int      `json:"seedFacts"`
	LocalFacts   int      `json:"localFacts"`
	LocalVars    int      `json:"localVars"`
	LocalFactors int      `json:"localFactors"`
	Collected    int      `json:"collected"`
	ElapsedMS    float64  `json:"elapsedMs"`
}

func marginalToJSON(atom string, m probkb.Marginal) marginalJSON {
	out := marginalJSON{
		Atom: atom, Rel: m.Rel, X: m.X, Y: m.Y,
		Found: m.Found, Observed: m.Observed, Cached: m.Cached,
		Generation: m.Generation, Depth: m.Depth, Radius: m.Radius,
		SeedFacts: m.SeedFacts, LocalFacts: m.LocalFacts,
		LocalVars: m.LocalVars, LocalFactors: m.LocalFactors,
		Collected: m.Collected,
		ElapsedMS: float64(m.Elapsed) / float64(time.Millisecond),
	}
	if !math.IsNaN(m.Probability) {
		p := m.Probability
		out.Marginal = &p
	}
	return out
}

// intParam parses an optional integer query parameter into *dst,
// reporting a 400-worthy error on garbage. Negative values pass
// through — samples=-1 is the documented way to skip inference.
func intParam(q url.Values, name string, dst *int) error {
	s := q.Get(name)
	if s == "" {
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("bad %s %q", name, s)
	}
	*dst = n
	return nil
}

// handleQuery answers GET /query?atom=Rel(x,y): a point query via
// local grounding and neighborhood Gibbs (probkb.QueryLocal), never the
// global fixpoint. Optional knobs: depth, radius (grounding bounds),
// markov (Gibbs neighborhood radius), burnin, samples (samples=-1
// skips inference), nocache=1 (bypass the marginal cache). Cancellation
// via DELETE /debug/queries/{id} unwinds as a 499.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	atom := qv.Get("atom")
	if atom == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query needs atom=Rel(x, y)"))
		return
	}
	rel, x, y, err := probkb.ParseAtom(atom)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pq := probkb.PointQuery{Rel: rel, X: x, Y: y}
	for name, dst := range map[string]*int{
		"depth": &pq.Depth, "radius": &pq.Radius, "markov": &pq.MarkovRadius,
		"burnin": &pq.Burnin, "samples": &pq.Samples,
	} {
		if err := intParam(qv, name, dst); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if nc := qv.Get("nocache"); nc != "" {
		v, err := strconv.ParseBool(nc)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad nocache %q", nc))
			return
		}
		pq.NoCache = v
	}

	ctx, aq := obs.Queries.Begin(r.Context(), "query", atom)
	defer obs.Queries.Finish(aq)
	start := time.Now()
	m, err := s.expansion().QueryLocal(ctx, pq)
	s.noteQuery(r, aq, time.Since(start), "", nil)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, marginalToJSON(atom, m))
}
