package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"probkb"
)

// These tests pin the streaming POST /facts contract: per-batch NDJSON
// acks with monotone generation and durable sequence, refresh policy
// behavior, no torn generation on a mid-stream disconnect, and the 429
// admission interaction.

// streamClient drives one POST /facts?stream=1 request: chunks are
// written through a pipe and acks decoded one line at a time, so each
// assert happens at a precise point of the stream.
type streamClient struct {
	t      *testing.T
	pw     *io.PipeWriter
	respCh chan streamResult
	resp   *http.Response
	dec    *json.Decoder
}

type streamResult struct {
	resp *http.Response
	err  error
}

func openStream(t *testing.T, url string) *streamClient {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", url, pr)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan streamResult, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		ch <- streamResult{resp, err}
	}()
	return &streamClient{t: t, pw: pw, respCh: ch}
}

func (c *streamClient) send(chunk string) {
	c.t.Helper()
	if _, err := io.WriteString(c.pw, chunk); err != nil {
		c.t.Fatalf("writing chunk: %v", err)
	}
}

// ack reads the next NDJSON line. The first call waits for the response
// headers (the server sends them with the first flushed line).
func (c *streamClient) ack() ingestAck {
	c.t.Helper()
	c.waitResp()
	var a ingestAck
	if err := c.dec.Decode(&a); err != nil {
		c.t.Fatalf("decoding ack: %v", err)
	}
	return a
}

func (c *streamClient) waitResp() {
	c.t.Helper()
	if c.resp != nil {
		return
	}
	select {
	case r := <-c.respCh:
		if r.err != nil {
			c.t.Fatalf("stream request: %v", r.err)
		}
		c.resp = r.resp
		c.dec = json.NewDecoder(c.resp.Body)
	case <-time.After(10 * time.Second):
		c.t.Fatal("no response within 10s")
	}
}

func (c *streamClient) close() {
	c.t.Helper()
	c.pw.Close()
	if c.resp != nil {
		io.Copy(io.Discard, c.resp.Body)
		c.resp.Body.Close()
	}
}

// ingestTestServer builds a serving stack with a durable store attached
// so acks carry real durable sequences.
func ingestTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	build := func() *probkb.KB {
		k := probkb.New()
		k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
		k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
		return k
	}
	dir := filepath.Join(t.TempDir(), "store")
	st, err := probkb.CreateStore(dir, build())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	exp, err := build().Expand(probkb.Config{
		Engine: probkb.SingleNode, RunInference: true,
		GibbsBurnin: 20, GibbsSamples: 100, Persist: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(build(), exp, WithStore(st))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, s
}

func chunk(names ...string) string {
	var facts []string
	for _, n := range names {
		facts = append(facts, fmt.Sprintf(
			`{"rel":"born_in","x":%q,"xClass":"Writer","y":"Vienna","yClass":"Place","probability":0.9}`, n))
	}
	return fmt.Sprintf(`{"facts":[%s]}`, strings.Join(facts, ","))
}

// TestFactsStreamAcks: every chunk is acked with the batch's own
// published generation and durable sequence, both strictly advancing.
func TestFactsStreamAcks(t *testing.T) {
	srv, _ := ingestTestServer(t)
	c := openStream(t, srv.URL+"/facts?stream=1")
	defer c.close()

	var acks []ingestAck
	for i, names := range [][]string{{"Freud"}, {"Mahler", "Zweig"}, {"Kafka"}} {
		c.send(chunk(names...))
		a := c.ack()
		if a.Batch != i+1 {
			t.Fatalf("ack %d has batch %d", i, a.Batch)
		}
		if a.Facts != len(names) || a.Added != len(names) {
			t.Fatalf("ack %d = %+v, want %d facts added", i, a, len(names))
		}
		// Every streamed writer derives a live_in fact.
		if a.Derived != len(names) {
			t.Fatalf("ack %d derived %d, want %d", i, a.Derived, len(names))
		}
		if a.DurableSeq == 0 {
			t.Fatalf("ack %d has no durable sequence with a store attached", i)
		}
		if len(acks) > 0 {
			prev := acks[len(acks)-1]
			if a.Generation <= prev.Generation {
				t.Fatalf("generations not strictly monotone: %d then %d", prev.Generation, a.Generation)
			}
			if a.DurableSeq < prev.DurableSeq {
				t.Fatalf("durable seqs went backwards: %d then %d", prev.DurableSeq, a.DurableSeq)
			}
		}
		if a.StaleBatches == 0 {
			t.Fatalf("ack %d reports zero staleness without a refresh policy", i)
		}
		acks = append(acks, a)
	}
	c.pw.Close()
	c.waitResp()
	var done struct {
		Done    bool `json:"done"`
		Batches int  `json:"batches"`
	}
	if err := c.dec.Decode(&done); err != nil || !done.Done || done.Batches != 3 {
		t.Fatalf("terminal line = %+v, %v", done, err)
	}

	// Acked batches are all visible to new readers.
	var facts struct {
		Total int `json:"total"`
	}
	if code := getJSON(t, srv.URL+"/facts?rel=born_in", &facts); code != 200 || facts.Total != 5 {
		t.Fatalf("after stream: %d born_in facts (code %d), want 5", facts.Total, code)
	}
}

// TestFactsStreamRefreshEvery: with refreshEvery=2 the second batch's
// ack reports a refresh and zero staleness, and the refresh fills the
// deferred batches' NaN marginals (probability non-null over the API).
func TestFactsStreamRefreshEvery(t *testing.T) {
	srv, _ := ingestTestServer(t)
	c := openStream(t, srv.URL+"/facts?stream=1&refreshEvery=2")
	defer c.close()

	c.send(chunk("Freud"))
	a1 := c.ack()
	if a1.Refreshed || a1.StaleBatches != 1 {
		t.Fatalf("ack 1 = %+v, want stale=1 unrefreshed", a1)
	}
	c.send(chunk("Mahler"))
	a2 := c.ack()
	if !a2.Refreshed || a2.StaleBatches != 0 {
		t.Fatalf("ack 2 = %+v, want refreshed with stale=0", a2)
	}
	c.pw.Close()

	// After the refresh every derived fact has a marginal: live_in rows
	// only exist by derivation, so none may report a null probability.
	var facts struct {
		Facts []struct {
			Probability *float64 `json:"probability"`
		} `json:"facts"`
	}
	if code := getJSON(t, srv.URL+"/facts?rel=live_in", &facts); code != 200 || len(facts.Facts) != 3 {
		t.Fatalf("live_in facts: code %d, %d facts, want 3", code, len(facts.Facts))
	}
	for i, f := range facts.Facts {
		if f.Probability == nil {
			t.Fatalf("derived fact %d still has a NaN marginal after refresh", i)
		}
	}
}

// TestFactsStreamDisconnectNoTornGeneration: a client that dies after a
// partial chunk loses only that chunk — every acked batch stays
// published, the in-flight one publishes nothing, and the generation
// observable through /stats is exactly the last acked one.
func TestFactsStreamDisconnectNoTornGeneration(t *testing.T) {
	srv, _ := ingestTestServer(t)
	c := openStream(t, srv.URL+"/facts?stream=1")

	c.send(chunk("Freud"))
	a1 := c.ack()
	// Die mid-chunk: half a JSON object, then the transport error.
	c.send(`{"facts":[{"rel":"born_in","x":"Torn`)
	c.pw.CloseWithError(io.ErrUnexpectedEOF)
	io.Copy(io.Discard, c.resp.Body)
	c.resp.Body.Close()

	// The server settles: generation is a1's, not a torn successor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			Epoch struct {
				Generation uint64 `json:"generation"`
			} `json:"epoch"`
		}
		if code := getJSON(t, srv.URL+"/stats", &stats); code != 200 {
			t.Fatalf("stats code %d", code)
		}
		if stats.Epoch.Generation == a1.Generation {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("generation = %d, want %d (last acked)", stats.Epoch.Generation, a1.Generation)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var facts struct {
		Total int `json:"total"`
	}
	if code := getJSON(t, srv.URL+"/facts?rel=born_in&x=Freud", &facts); code != 200 || facts.Total != 1 {
		t.Fatalf("acked batch lost after disconnect: total=%d code=%d", facts.Total, code)
	}
	if code := getJSON(t, srv.URL+"/facts?rel=born_in&x=Torn", &facts); code != 200 || facts.Total != 0 {
		t.Fatalf("torn chunk visible after disconnect: total=%d code=%d", facts.Total, code)
	}
	// The server still ingests: a fresh stream picks up from a1.
	c2 := openStream(t, srv.URL+"/facts?stream=1")
	defer c2.close()
	c2.send(chunk("Mahler"))
	a2 := c2.ack()
	if a2.Generation <= a1.Generation {
		t.Fatalf("post-disconnect generation %d not after %d", a2.Generation, a1.Generation)
	}
	c2.pw.Close()
}

// TestFactsPostAdmission: POST /facts sits behind admission control —
// while a streaming ingest holds the only slot, other data requests
// shed with 429 + Retry-After, and the slot frees when the stream ends.
func TestFactsPostAdmission(t *testing.T) {
	srv, s := ingestTestServer(t)
	// One admission slot: the long-lived stream will hold it for its
	// entire request lifetime.
	s.SetMaxInFlight(1)

	c := openStream(t, srv.URL+"/facts?stream=1")
	defer c.close()
	c.send(chunk("Freud"))
	c.ack() // the stream is admitted and mid-request now

	resp, err := http.Post(srv.URL+"/facts", "application/json",
		strings.NewReader(chunk("Mahler")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("competing POST /facts = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Stream ends; the slot frees; writes are admitted again.
	c.pw.Close()
	c.waitResp()
	io.Copy(io.Discard, c.resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/facts", "application/json",
			strings.NewReader(chunk("Zweig")))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("POST /facts still %d after stream closed", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
