// Package server exposes an expanded knowledge base over HTTP — the
// "improving system responsivity" goal the paper gives for storing all
// inferred results (Section 2.2): queries hit the materialized
// expansion, never inference.
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz                         liveness probe
//	GET  /stats                           expansion statistics
//	GET  /facts?rel=&x=&y=&inferred=&limit=
//	                                      facts, filterable by relation,
//	                                      arguments, and inferred flag
//	GET  /explain?rel=&x=&y=&depth=       derivation tree (text/plain)
//	GET  /sql?q=SELECT...                 run a SQL query (see probkb.QuerySQL)
//	POST /sql {"q": "...", "segments": N} run a SQL query as a distributed
//	                                      plan (see probkb.QueryDistSQL);
//	                                      non-collocated joins are a 400,
//	                                      never a crash
//	GET  /metrics                         Prometheus text exposition (text/plain)
//	GET  /debug/traces                    recent pipeline span trees (text/plain)
//	GET  /debug/journal                   the served expansion's run journal events
//	GET  /debug/profile                   analyzed workload profile (phases, operator
//	                                      costs, per-segment skew, motions, Gibbs
//	                                      convergence timeline)
//	GET  /debug/pprof/*                   Go runtime profiles
//	POST /admin/snapshot                  checkpoint the attached durable
//	                                      store: fold its WAL into a fresh
//	                                      columnar snapshot (409 when the
//	                                      server runs without a store)
//
// Every endpoint runs behind middleware that records per-endpoint
// request counts and latency histograms, an in-flight gauge, recovers
// handler panics into logged 500s, and emits a structured log line per
// request (see internal/obs).
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"probkb"
)

// Server serves one expansion.
type Server struct {
	kb    *probkb.KB
	exp   *probkb.Expansion
	store *probkb.Store
	mux   *http.ServeMux
}

// Option configures optional server wiring.
type Option func(*Server)

// WithStore attaches the durable store the served expansion persisted
// into, enabling POST /admin/snapshot.
func WithStore(st *probkb.Store) Option {
	return func(s *Server) { s.store = st }
}

// New builds the handler for an expanded KB.
func New(kb *probkb.KB, exp *probkb.Expansion, opts ...Option) *Server {
	s := &Server{kb: kb, exp: exp, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /stats", instrument("/stats", s.handleStats))
	s.mux.HandleFunc("GET /facts", instrument("/facts", s.handleFacts))
	s.mux.HandleFunc("GET /explain", instrument("/explain", s.handleExplain))
	s.mux.HandleFunc("GET /sql", instrument("/sql", s.handleSQL))
	s.mux.HandleFunc("POST /sql", instrument("/sql", s.handleDistSQL))
	s.mux.HandleFunc("GET /metrics", instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /debug/traces", instrument("/debug/traces", s.handleTraces))
	s.mux.HandleFunc("GET /debug/journal", instrument("/debug/journal", s.handleJournal))
	s.mux.HandleFunc("GET /debug/profile", instrument("/debug/profile", s.handleProfile))
	s.mux.HandleFunc("POST /admin/snapshot", instrument("/admin/snapshot", s.handleSnapshot))
	s.registerDebug()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before writing the header so an encoding failure can still
	// become a proper 500 instead of an empty 200.
	w.Header().Set("Content-Type", "application/json")
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse is the /stats payload.
type statsResponse struct {
	KB        probkb.Stats       `json:"kb"`
	Expansion probkb.ExpandStats `json:"expansion"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{KB: s.kb.Stats(), Expansion: s.exp.Stats()})
}

// factJSON is one fact in API responses. Probability is null for
// inferred facts when marginal inference was skipped (JSON has no NaN).
type factJSON struct {
	Rel         string   `json:"rel"`
	X           string   `json:"x"`
	XClass      string   `json:"xClass"`
	Y           string   `json:"y"`
	YClass      string   `json:"yClass"`
	Probability *float64 `json:"probability"`
	Inferred    bool     `json:"inferred"`
}

func toJSON(f probkb.Fact) factJSON {
	out := factJSON{
		Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass,
		Inferred: f.Inferred,
	}
	if !math.IsNaN(f.Probability) {
		p := f.Probability
		out.Probability = &p
	}
	return out
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
		limit = n
	}
	var inferredFilter *bool
	if is := q.Get("inferred"); is != "" {
		v, err := strconv.ParseBool(is)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad inferred %q", is))
			return
		}
		inferredFilter = &v
	}

	matches := s.exp.Find(q.Get("rel"), q.Get("x"), q.Get("y"))
	out := make([]factJSON, 0, limit)
	total := 0
	for _, f := range matches {
		if inferredFilter != nil && f.Inferred != *inferredFilter {
			continue
		}
		total++
		if len(out) < limit {
			out = append(out, toJSON(f))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "facts": out})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rel, x, y := q.Get("rel"), q.Get("x"), q.Get("y")
	if rel == "" || x == "" || y == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("explain needs rel, x, y"))
		return
	}
	depth := 4
	if ds := q.Get("depth"); ds != "" {
		n, err := strconv.Atoi(ds)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad depth %q", ds))
			return
		}
		depth = n
	}
	text, err := s.exp.Explain(rel, x, y, depth)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

// handleSnapshot checkpoints the attached store: the WAL folds into a
// fresh columnar snapshot and the next recovery loads one file.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("no durable store attached (start with -persist)"))
		return
	}
	if err := s.store.Checkpoint(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"gen":           s.store.Gen(),
		"walRecords":    s.store.WALRecords(),
		"snapshotBytes": s.store.SnapshotBytes(),
		"facts":         s.store.Facts(),
		"dir":           s.store.Dir(),
	})
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query().Get("q")
	if query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	res, err := s.kb.QuerySQL(query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": res.Columns,
		"rows":    res.Rows,
	})
}

// handleDistSQL runs a SELECT as a distributed MPP plan. Invalid plans
// — including joins whose inputs are not collocated, which once
// panicked deep inside the MPP layer — come back as a 400 with the
// planner's error; the process stays up.
func (s *Server) handleDistSQL(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Q        string `json:"q"`
		Segments int    `json:"segments"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q field"))
		return
	}
	res, err := s.kb.QueryDistSQL(req.Q, req.Segments)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": res.Columns,
		"rows":    res.Rows,
	})
}
