// Package server exposes an expanded knowledge base over HTTP — the
// "improving system responsivity" goal the paper gives for storing all
// inferred results (Section 2.2): queries hit the materialized
// expansion, never inference.
//
// # MVCC serving tier
//
// The server is a multi-version store over (KB, Expansion) snapshots.
// Every data request pins the current generation through an epoch
// manager (internal/epoch) for its whole lifetime — a pointer load and
// a refcount CAS, never a lock — and answers entirely from that frozen
// snapshot. Writers (POST /admin/expand, POST /facts) build generation
// N+1 off to the side on a copy-on-write fork of the KB and publish it
// with one atomic swap; in-flight readers keep serving generation N
// and are never blocked, torn, or retried. A failed or cancelled build
// publishes nothing. Old generations are reclaimed by refcount when
// their last reader unpins. Competing writers serialize on a writer
// mutex that readers never touch.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                       liveness probe (always 200)
//	GET    /readyz                        readiness probe: 503 while the server
//	                                      is still recovering/expanding, 200
//	                                      once an expansion is attached and
//	                                      SetReady was called
//	GET    /stats                         expansion statistics + epoch state
//	GET    /facts?rel=&x=&y=&inferred=&limit=
//	                                      facts, filterable by relation,
//	                                      arguments, and inferred flag
//	POST   /facts {"facts": [...]}        stream newly observed facts in:
//	                                      ExtendWith builds the next generation
//	                                      (semi-naive, cost scales with the
//	                                      delta) and publishes it; concurrent
//	                                      readers stay on their pinned
//	                                      generation throughout
//	POST   /facts?stream=1&refreshEvery=K chunked streaming ingest: the body is
//	                                      a sequence of {"facts": [...]} JSON
//	                                      objects; each chunk is absorbed as one
//	                                      deferred extend (facts + closure
//	                                      visible immediately, marginals stale)
//	                                      and acked with its own NDJSON line
//	                                      carrying the published generation and
//	                                      durable WAL sequence. refreshEvery=K
//	                                      refreshes marginals every K batches
//	                                      (0 = leave them stale). A mid-stream
//	                                      disconnect keeps every acked batch
//	                                      and publishes nothing for the one in
//	                                      flight — no torn generation
//	GET    /explain?rel=&x=&y=&depth=     derivation tree (text/plain)
//	GET    /query?atom=Rel(x,y)&depth=&radius=&markov=&burnin=&samples=&nocache=
//	                                      point query: local grounding +
//	                                      neighborhood Gibbs, cached per
//	                                      (atom, bounds) until the expansion
//	                                      is swapped; "marginal" is null when
//	                                      the atom is unknown/underivable or
//	                                      samples=-1 skipped inference
//	POST   /query/batch {"atoms": [...]}  many point queries answered against
//	                                      ONE pinned generation (shared knobs:
//	                                      depth/radius/markov/burnin/samples);
//	                                      identical in-flight lookups coalesce
//	                                      into a single grounding run
//	GET    /sql?q=SELECT...&analyze=1     run a SQL query (see probkb.QuerySQL);
//	                                      analyze=1 adds the EXPLAIN ANALYZE
//	                                      plan (estimates vs actuals) to the
//	                                      response and journals it
//	POST   /sql {"q": "...", "segments": N, "analyze": true}
//	                                      run a SQL query as a distributed
//	                                      plan (see probkb.QueryDistSQL);
//	                                      non-collocated joins are a 400,
//	                                      never a crash
//	GET    /metrics                       Prometheus text exposition, including
//	                                      Go runtime health and the epoch
//	                                      gauges (generation, live generations,
//	                                      outstanding pins) (text/plain)
//	GET    /debug/queries                 in-flight queries: id, kind, text,
//	                                      phase, elapsed, rows produced so far
//	DELETE /debug/queries/{id}            cancel an in-flight query; its request
//	                                      fails with 499 and a PartialError phase
//	GET    /debug/slow                    recent queries over the slow threshold,
//	                                      newest first, with analyzed plans
//	GET    /debug/incidents               watchdog incident reports, newest first
//	                                      (summaries; fetch one for the capture)
//	GET    /debug/incidents/{id}          one full incident: flight-recorder
//	                                      timeline, goroutine dump, metrics
//	                                      snapshot, active queries, offending
//	                                      query's plan
//	GET    /debug/traces                  recent pipeline span trees (text/plain)
//	GET    /debug/journal                 the served expansion's run journal events
//	GET    /debug/profile                 analyzed workload profile (phases, operator
//	                                      costs, per-segment skew, motions, Gibbs
//	                                      convergence timeline)
//	GET    /debug/pprof/*                 Go runtime profiles
//	POST   /admin/expand                  re-run the expansion pipeline (body
//	                                      selects iterations/inference); the
//	                                      served expansion swaps on success
//	POST   /admin/snapshot                checkpoint the attached durable
//	                                      store: fold its WAL into a fresh
//	                                      columnar snapshot (409 when the
//	                                      server runs without a store)
//
// Read endpoints sit behind admission control: WithMaxInFlight (or
// SetMaxInFlight at runtime) caps concurrently admitted data-plane
// requests, and overload answers 429 with Retry-After instead of
// queueing without bound; rejections count in
// probkb_http_rejected_total and show in `probkb top`.
//
// Every endpoint runs behind middleware that records per-endpoint
// request counts and latency histograms (the /sql series are split by
// method: "GET /sql" vs "POST /sql"), an in-flight gauge, recovers
// handler panics into logged 500s, and emits a structured log line per
// request (see internal/obs). SQL, explain, point-query, extend, and
// expand requests additionally register in the active-query registry
// for the lifetime of the request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probkb"
	"probkb/internal/epoch"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

// The streaming ingest path shares internal/ingest's metric names; the
// Help strings are registered here too so a server binary that never
// links the pipeline package still exposes them documented.
func init() {
	obs.Default.Help("probkb_ingest_facts_total", "Facts absorbed by the streaming-ingest pipeline.")
	obs.Default.Help("probkb_ingest_batches_total", "Fact batches absorbed by the streaming-ingest pipeline.")
	obs.Default.Help("probkb_ingest_refreshes_total", "Marginal refresh passes run by the streaming-ingest pipeline.")
	obs.Default.Help("probkb_ingest_staleness_batches", "Batches absorbed since the last marginal refresh.")
	obs.Default.Help("probkb_ingest_absorb_seconds", "Wall time absorbing one ingest batch (delta grounding + publication).")
}

// statusClientClosedRequest reports a request whose query was cancelled
// (via DELETE /debug/queries/{id} or a client disconnect) — the nginx
// 499 convention, since no standard code covers it.
const statusClientClosedRequest = 499

// snapshot is one immutable generation of the serving state: a frozen
// KB (the generation's dictionaries, hierarchy, and base facts) and the
// expansion answering queries over it. Writers never mutate a published
// snapshot — they fork the KB, build, and publish a fresh one.
type snapshot struct {
	kb  *probkb.KB
	exp *probkb.Expansion
}

// Server serves one expansion per generation, MVCC-style.
type Server struct {
	// snaps is the epoch manager readers pin generations through. The
	// pending server publishes a nil snapshot as generation 1; Attach
	// publishes the first real one.
	snaps *epoch.Manager[*snapshot]
	// wmu serializes generation builders (Attach, POST /admin/expand,
	// POST /facts). Readers never take it: a build runs off to the side
	// and publication is a single atomic swap inside the manager.
	wmu   sync.Mutex
	store *probkb.Store
	mux   *http.ServeMux
	ready atomic.Bool

	// Admission control: maxInFlight caps concurrently admitted
	// data-plane requests (0 = unlimited), admitted counts them. Excess
	// load sheds as 429 + Retry-After instead of queueing unboundedly.
	maxInFlight atomic.Int64
	admitted    atomic.Int64

	// staleBatches counts deferred-ingest batches published since the
	// last marginal refresh — the server side of the bounded-staleness
	// knob, exported as probkb_ingest_staleness_batches.
	staleBatches atomic.Int64
}

// Option configures optional server wiring.
type Option func(*Server)

// WithStore attaches the durable store the served expansion persisted
// into, enabling POST /admin/snapshot.
func WithStore(st *probkb.Store) Option {
	return func(s *Server) { s.store = st }
}

// WithMaxInFlight caps concurrently admitted data-plane requests;
// n <= 0 means unlimited. See Server.SetMaxInFlight.
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.SetMaxInFlight(n) }
}

// New builds the handler for an expanded KB, ready to serve.
func New(kb *probkb.KB, exp *probkb.Expansion, opts ...Option) *Server {
	s := NewPending()
	s.Attach(kb, exp, opts...)
	s.SetReady(true)
	return s
}

// NewPending builds a handler that can listen before its expansion
// exists: /healthz answers 200 and /readyz 503 until Attach and
// SetReady, while data endpoints answer 503. This is what lets the
// server binary bind its port first and recover/expand afterwards.
func NewPending() *Server {
	s := &Server{mux: http.NewServeMux(), snaps: epoch.New[*snapshot](nil, nil)}
	// data wires a read endpoint: instrumented, admission-controlled,
	// and pinned to one generation for the whole request.
	data := func(path string, h snapHandler) http.HandlerFunc {
		return instrument(path, s.admit(path, s.withSnap(h)))
	}
	s.mux.HandleFunc("GET /healthz", instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", instrument("/readyz", s.handleReady))
	s.mux.HandleFunc("GET /stats", data("/stats", s.handleStats))
	s.mux.HandleFunc("GET /facts", data("/facts", s.handleFacts))
	s.mux.HandleFunc("POST /facts", instrument("POST /facts", s.admit("POST /facts", s.handleFactsPost)))
	s.mux.HandleFunc("GET /explain", data("/explain", s.handleExplain))
	s.mux.HandleFunc("GET /query", data("/query", s.handleQuery))
	s.mux.HandleFunc("POST /query/batch", data("/query/batch", s.handleQueryBatch))
	s.mux.HandleFunc("GET /sql", data("GET /sql", s.handleSQL))
	s.mux.HandleFunc("POST /sql", data("POST /sql", s.handleDistSQL))
	s.mux.HandleFunc("GET /metrics", instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /debug/queries", instrument("/debug/queries", s.handleQueries))
	s.mux.HandleFunc("DELETE /debug/queries/{id}", instrument("/debug/queries", s.handleQueryCancel))
	s.mux.HandleFunc("GET /debug/slow", instrument("/debug/slow", s.handleSlow))
	s.mux.HandleFunc("GET /debug/incidents", instrument("/debug/incidents", s.handleIncidents))
	s.mux.HandleFunc("GET /debug/incidents/{id}", instrument("/debug/incidents", s.handleIncident))
	s.mux.HandleFunc("GET /debug/traces", instrument("/debug/traces", s.handleTraces))
	s.mux.HandleFunc("GET /debug/journal", instrument("/debug/journal", s.withSnap(s.handleJournal)))
	s.mux.HandleFunc("GET /debug/profile", instrument("/debug/profile", s.withSnap(s.handleProfile)))
	s.mux.HandleFunc("POST /admin/expand", instrument("/admin/expand", s.handleExpand))
	s.mux.HandleFunc("POST /admin/snapshot", instrument("/admin/snapshot", s.handleSnapshot))
	s.registerDebug()
	return s
}

// Attach installs the KB and expansion a pending server will serve as
// the first real generation, and points the incident store's journal
// and plan-capture hooks at the serving tier: incidents opened from
// here on are journaled into the *current* generation's run journal,
// and a finding that names a SQL query gets its EXPLAIN plan captured
// against the current generation.
func (s *Server) Attach(kb *probkb.KB, exp *probkb.Expansion, opts ...Option) {
	for _, opt := range opts {
		opt(s)
	}
	s.wmu.Lock()
	s.publish(kb, exp)
	s.wmu.Unlock()
	obs.DefaultIncidents.SetPlanner(func(kind, text string) string {
		if kind != "sql" && kind != "dist-sql" {
			return ""
		}
		pin := s.snaps.Pin()
		defer pin.Unpin()
		snap := pin.Value()
		if snap == nil {
			return ""
		}
		plan, err := snap.kb.ExplainSQL(text)
		if err != nil {
			return ""
		}
		return plan
	})
}

// publish swaps in (kb, exp) as the next generation and re-points the
// incident journal at the new expansion's run record. Callers hold wmu.
func (s *Server) publish(kb *probkb.KB, exp *probkb.Expansion) uint64 {
	gen := s.snaps.Publish(&snapshot{kb: kb, exp: exp})
	obs.DefaultIncidents.SetJournal(exp.Journal())
	return gen
}

// SetReady flips the /readyz state; data endpoints serve only while
// ready with an attached expansion.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetMaxInFlight re-caps admission control at runtime; n <= 0 lifts the
// cap. Requests already admitted are unaffected.
func (s *Server) SetMaxInFlight(n int) {
	if n < 0 {
		n = 0
	}
	s.maxInFlight.Store(int64(n))
}

// Epoch exposes the serving tier's epoch manager — the bench harness
// and tests assert on generation, pin, and reclamation counts.
func (s *Server) Epoch() *epoch.Manager[*snapshot] { return s.snaps }

// serving reports whether a real generation is attached and the server
// was marked ready.
func (s *Server) serving() bool {
	if !s.ready.Load() {
		return false
	}
	pin := s.snaps.Pin()
	defer pin.Unpin()
	return pin.Value() != nil
}

// snapHandler is a read handler bound to one pinned generation: snap is
// immutable for the duration of the call and gen is its epoch number.
type snapHandler func(w http.ResponseWriter, r *http.Request, snap *snapshot, gen uint64)

// withSnap gates a data handler on readiness and pins the current
// generation for the request's whole lifetime: everything the handler
// reads — dictionaries, fact tables, the marginal cache, the journal —
// comes from one immutable snapshot, no matter how many generations
// writers publish meanwhile.
func (s *Server) withSnap(h snapHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is not ready (still recovering or expanding)"))
			return
		}
		pin := s.snaps.Pin()
		defer pin.Unpin()
		snap := pin.Value()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is not ready (no expansion attached)"))
			return
		}
		h(w, r, snap, pin.Gen())
	}
}

// admit is the admission-control middleware for data-plane endpoints:
// when a cap is set and reached, the request is shed immediately with
// 429 + Retry-After rather than queued, keeping latency bounded for
// admitted requests under overload.
func (s *Server) admit(path string, h http.HandlerFunc) http.HandlerFunc {
	rejected := obs.Default.Counter("probkb_http_rejected_total", obs.L("path", path))
	return func(w http.ResponseWriter, r *http.Request) {
		if max := s.maxInFlight.Load(); max > 0 {
			if s.admitted.Add(1) > max {
				s.admitted.Add(-1)
				rejected.Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("server at capacity (%d data requests in flight); retry shortly", max))
				return
			}
			defer s.admitted.Add(-1)
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before writing the header so an encoding failure can still
	// become a proper 500 instead of an empty 200.
	w.Header().Set("Content-Type", "application/json")
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: distinct from /healthz (alive) so
// load balancers don't route queries to a server still recovering its
// store or running its initial expansion.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.serving() {
		// Retry-After tells probes and load balancers when to come back;
		// recovery and initial expansion usually finish within seconds.
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// epochJSON is the serving tier's epoch state in /stats.
type epochJSON struct {
	Generation uint64 `json:"generation"`
	Live       int64  `json:"liveGenerations"`
	Pins       int64  `json:"pins"`
	Reclaimed  uint64 `json:"reclaimedGenerations"`
}

// statsResponse is the /stats payload.
type statsResponse struct {
	KB        probkb.Stats       `json:"kb"`
	Expansion probkb.ExpandStats `json:"expansion"`
	Epoch     epochJSON          `json:"epoch"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request, snap *snapshot, gen uint64) {
	writeJSON(w, http.StatusOK, statsResponse{
		KB:        snap.kb.Stats(),
		Expansion: snap.exp.Stats(),
		Epoch: epochJSON{
			Generation: gen,
			Live:       s.snaps.Live(),
			Pins:       s.snaps.Pins(),
			Reclaimed:  s.snaps.Reclaimed(),
		},
	})
}

// factJSON is one fact in API responses. Probability is null for
// inferred facts when marginal inference was skipped (JSON has no NaN).
type factJSON struct {
	Rel         string   `json:"rel"`
	X           string   `json:"x"`
	XClass      string   `json:"xClass"`
	Y           string   `json:"y"`
	YClass      string   `json:"yClass"`
	Probability *float64 `json:"probability"`
	Inferred    bool     `json:"inferred"`
}

func toJSON(f probkb.Fact) factJSON {
	out := factJSON{
		Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass,
		Inferred: f.Inferred,
	}
	if !math.IsNaN(f.Probability) {
		p := f.Probability
		out.Probability = &p
	}
	return out
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request, snap *snapshot, _ uint64) {
	q := r.URL.Query()
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
		limit = n
	}
	var inferredFilter *bool
	if is := q.Get("inferred"); is != "" {
		v, err := strconv.ParseBool(is)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad inferred %q", is))
			return
		}
		inferredFilter = &v
	}

	matches := snap.exp.Find(q.Get("rel"), q.Get("x"), q.Get("y"))
	out := make([]factJSON, 0, limit)
	total := 0
	for _, f := range matches {
		if inferredFilter != nil && f.Inferred != *inferredFilter {
			continue
		}
		total++
		if len(out) < limit {
			out = append(out, toJSON(f))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "facts": out})
}

// factIn is one observed fact in a POST /facts body.
type factIn struct {
	Rel         string  `json:"rel"`
	X           string  `json:"x"`
	XClass      string  `json:"xClass"`
	Y           string  `json:"y"`
	YClass      string  `json:"yClass"`
	Probability float64 `json:"probability"`
}

// parseFacts validates a request's fact list into the API type.
func parseFacts(in []factIn) ([]probkb.Fact, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf(`no facts: body must be {"facts": [{"rel": ..., "x": ..., "xClass": ..., "y": ..., "yClass": ..., "probability": ...}]}`)
	}
	facts := make([]probkb.Fact, 0, len(in))
	for i, f := range in {
		if f.Rel == "" || f.X == "" || f.XClass == "" || f.Y == "" || f.YClass == "" {
			return nil, fmt.Errorf("facts[%d]: rel, x, xClass, y, yClass are all required", i)
		}
		if f.Probability < 0 || f.Probability > 1 {
			return nil, fmt.Errorf("facts[%d]: probability %v outside [0, 1]", i, f.Probability)
		}
		facts = append(facts, probkb.Fact{
			Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass,
			Probability: f.Probability,
		})
	}
	return facts, nil
}

// handleFactsPost streams newly observed facts into the KB: ExtendWith
// builds the next generation on a copy-on-write fork (semi-naive, cost
// scales with the delta) and on success the server publishes it.
// Readers pinned to older generations are untouched throughout — they
// never see a partial extend, and a failed or cancelled build (the
// request registers as kind "extend", so DELETE /debug/queries/{id}
// can kill it) publishes nothing. With ?stream=1 the body is a sequence
// of {"facts": [...]} chunks, each absorbed and acked independently
// (handleFactsStream).
func (s *Server) handleFactsPost(w http.ResponseWriter, r *http.Request) {
	if !s.serving() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is not ready (still recovering or expanding)"))
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		s.handleFactsStream(w, r)
		return
	}
	var req struct {
		Facts []factIn `json:"facts"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	facts, err := parseFacts(req.Facts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx, aq := obs.Queries.Begin(r.Context(), "extend", fmt.Sprintf("extend +%d facts", len(facts)))
	defer obs.Queries.Finish(aq)
	aq.SetPhase("queue")
	s.wmu.Lock()
	defer s.wmu.Unlock()
	aq.SetPhase("ground")

	// Pin the newest generation *after* winning the writer mutex: a
	// competing writer may have published while we queued, and the new
	// round must extend that, not a stale base.
	pin := s.snaps.Pin()
	defer pin.Unpin()
	base := pin.Value()
	if base == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is not ready (no expansion attached)"))
		return
	}
	next, err := base.exp.ExtendWithContext(ctx, facts)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	gen := s.publish(next.KB(), next)
	writeJSON(w, http.StatusOK, map[string]any{
		"added":      len(facts),
		"generation": gen,
		"stats":      next.Stats(),
	})
}

// ingestAck is one streamed batch's NDJSON ack line.
type ingestAck struct {
	Batch int `json:"batch"`
	Facts int `json:"facts"`
	// Added/Derived are the batch's genuinely new observed facts and
	// the facts delta grounding derived from them.
	Added   int `json:"added"`
	Derived int `json:"derived"`
	// Generation is the epoch the batch was published as: readers that
	// pin it (or any later one) see the batch's whole closure.
	Generation uint64 `json:"generation"`
	// DurableSeq is the WAL record count after the batch landed (0
	// without -persist): replay up to here recovers the batch.
	DurableSeq int64 `json:"durableSeq"`
	// StaleBatches is the marginal staleness after this batch;
	// Refreshed marks an ack whose batch triggered a refresh.
	StaleBatches int64 `json:"staleBatches"`
	Refreshed    bool  `json:"refreshed,omitempty"`
}

// handleFactsStream is the chunked ingest path: each decoded
// {"facts": [...]} chunk becomes one deferred extend — the batch's
// facts and semi-naive closure publish immediately; marginals refresh
// every refreshEvery batches — and one flushed ack line. The loop is
// strictly decode → absorb → ack, so by the time a client reads ack N,
// batches 1..N are published and (with a store) durable; a disconnect
// between chunks loses nothing, and a disconnect mid-absorb cancels
// that extend before it publishes.
func (s *Server) handleFactsStream(w http.ResponseWriter, r *http.Request) {
	refreshEvery := 0
	if re := r.URL.Query().Get("refreshEvery"); re != "" {
		n, err := strconv.Atoi(re)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad refreshEvery %q", re))
			return
		}
		refreshEvery = n
	}
	ctx, aq := obs.Queries.Begin(r.Context(), "extend", "extend stream")
	defer obs.Queries.Finish(aq)

	// HTTP/1.1 is half-duplex by default: writing the response headers
	// drains the rest of the request body first, which would deadlock
	// against a client that waits for ack N before sending chunk N+1.
	// Full-duplex lets each ack line go out while the body stays open.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("streaming unsupported on this connection: %w", err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	line := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	dec := json.NewDecoder(r.Body)
	batch := 0
	for dec.More() {
		var req struct {
			Facts []factIn `json:"facts"`
		}
		aq.SetPhase("decode")
		if err := dec.Decode(&req); err != nil {
			line(map[string]string{"error": fmt.Sprintf("batch %d: bad chunk: %v", batch+1, err)})
			return
		}
		batch++
		facts, err := parseFacts(req.Facts)
		if err != nil {
			line(map[string]string{"error": fmt.Sprintf("batch %d: %v", batch, err)})
			return
		}
		ack, err := s.absorbBatch(ctx, aq, facts, refreshEvery)
		if err != nil {
			line(map[string]string{"error": fmt.Sprintf("batch %d: %v", batch, err)})
			return
		}
		ack.Batch = batch
		ack.Facts = len(facts)
		aq.AddRows(len(facts))
		line(ack)
	}
	line(map[string]any{"done": true, "batches": batch})
}

// absorbBatch lands one streamed batch under the writer mutex: deferred
// extend, publish, refresh policy. The returned ack carries the
// published generation and durable sequence.
func (s *Server) absorbBatch(ctx context.Context, aq *obs.ActiveQuery, facts []probkb.Fact, refreshEvery int) (ingestAck, error) {
	start := time.Now()
	aq.SetPhase("queue")
	s.wmu.Lock()
	defer s.wmu.Unlock()
	aq.SetPhase("ground")

	pin := s.snaps.Pin()
	defer pin.Unpin()
	base := pin.Value()
	if base == nil {
		return ingestAck{}, fmt.Errorf("server is not ready (no expansion attached)")
	}
	prevFacts := base.exp.Stats().TotalFacts
	next, err := base.exp.ExtendWithDeferred(ctx, facts)
	if err != nil {
		return ingestAck{}, err
	}
	st := next.Stats()
	ack := ingestAck{
		Added:   st.BaseFacts - prevFacts,
		Derived: st.InferredFacts,
	}
	ack.Generation = s.publish(next.KB(), next)
	if s.store != nil {
		ack.DurableSeq = s.store.WALRecords()
	}
	ack.StaleBatches = s.staleBatches.Add(1)

	obs.Default.Counter("probkb_ingest_facts_total").Add(int64(len(facts)))
	obs.Default.Counter("probkb_ingest_batches_total").Inc()
	obs.Default.Histogram("probkb_ingest_absorb_seconds", nil).Observe(time.Since(start).Seconds())

	if refreshEvery > 0 && ack.StaleBatches >= int64(refreshEvery) {
		aq.SetPhase("infer")
		ref, err := next.RefreshMarginals(ctx)
		if err != nil {
			// The batch itself is published and durable; only the refresh
			// failed. Report the error — staleness stays, nothing tears.
			obs.Default.Gauge("probkb_ingest_staleness_batches").Set(float64(ack.StaleBatches))
			return ingestAck{}, fmt.Errorf("refresh after batch: %w", err)
		}
		ack.Generation = s.publish(ref.KB(), ref)
		if s.store != nil {
			ack.DurableSeq = s.store.WALRecords()
		}
		s.staleBatches.Store(0)
		ack.StaleBatches = 0
		ack.Refreshed = true
		obs.Default.Counter("probkb_ingest_refreshes_total").Inc()
	}
	obs.Default.Gauge("probkb_ingest_staleness_batches").Set(float64(s.staleBatches.Load()))
	return ack, nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, snap *snapshot, _ uint64) {
	q := r.URL.Query()
	rel, x, y := q.Get("rel"), q.Get("x"), q.Get("y")
	if rel == "" || x == "" || y == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("explain needs rel, x, y"))
		return
	}
	depth := 4
	if ds := q.Get("depth"); ds != "" {
		n, err := strconv.Atoi(ds)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad depth %q", ds))
			return
		}
		depth = n
	}
	_, aq := obs.Queries.Begin(r.Context(), "explain", fmt.Sprintf("explain %s(%s, %s)", rel, x, y))
	defer obs.Queries.Finish(aq)
	aq.SetPhase("run")
	text, err := snap.exp.Explain(rel, x, y, depth)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

// handleSnapshot checkpoints the attached store: the WAL folds into a
// fresh columnar snapshot and the next recovery loads one file.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("no durable store attached (start with -persist)"))
		return
	}
	if err := s.store.Checkpoint(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"gen":           s.store.Gen(),
		"walRecords":    s.store.WALRecords(),
		"snapshotBytes": s.store.SnapshotBytes(),
		"facts":         s.store.Facts(),
		"dir":           s.store.Dir(),
	})
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request, snap *snapshot, _ uint64) {
	query := r.URL.Query().Get("q")
	if query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	analyze := r.URL.Query().Get("analyze") == "1"
	ctx, aq := obs.Queries.Begin(r.Context(), "sql", query)
	defer obs.Queries.Finish(aq)
	aq.SetPhase("run")

	start := time.Now()
	res, planText, planNode, err := snap.kb.QuerySQLAnalyze(ctx, query)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	s.noteQuery(r, aq, snap.exp, time.Since(start), planText, planNode)
	payload := map[string]any{"columns": res.Columns, "rows": res.Rows}
	if analyze {
		payload["plan"] = planText
		journalAnalyzed(snap.exp, aq, query, time.Since(start), planNode)
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleDistSQL runs a SELECT as a distributed MPP plan. Invalid plans
// — including joins whose inputs are not collocated, which once
// panicked deep inside the MPP layer — come back as a 400 with the
// planner's error; the process stays up.
func (s *Server) handleDistSQL(w http.ResponseWriter, r *http.Request, snap *snapshot, _ uint64) {
	var req struct {
		Q        string `json:"q"`
		Segments int    `json:"segments"`
		Analyze  bool   `json:"analyze"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q field"))
		return
	}
	ctx, aq := obs.Queries.Begin(r.Context(), "dist-sql", req.Q)
	defer obs.Queries.Finish(aq)
	aq.SetPhase("run")

	start := time.Now()
	res, planText, planNode, err := snap.kb.QueryDistSQLAnalyze(ctx, req.Q, req.Segments)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	s.noteQuery(r, aq, snap.exp, time.Since(start), planText, planNode)
	payload := map[string]any{"columns": res.Columns, "rows": res.Rows}
	if req.Analyze {
		payload["plan"] = planText
		journalAnalyzed(snap.exp, aq, req.Q, time.Since(start), planNode)
	}
	writeJSON(w, http.StatusOK, payload)
}

// writeQueryError maps a failed query onto a response: a cancellation
// (PartialError) becomes a 499 naming the interrupted phase; anything
// else is the planner's or executor's fault and stays a 400.
func writeQueryError(w http.ResponseWriter, err error) {
	var pe *probkb.PartialError
	if errors.As(err, &pe) {
		writeJSON(w, statusClientClosedRequest, map[string]string{
			"error": err.Error(),
			"phase": pe.Phase,
		})
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// noteQuery feeds a finished query into the slow-query log: requests
// over the threshold retain their analyzed plan and emit a slow_query
// journal event into the generation that served them.
func (s *Server) noteQuery(r *http.Request, aq *obs.ActiveQuery, exp *probkb.Expansion, elapsed time.Duration, planText string, planNode *journal.PlanNode) {
	if aq == nil {
		return
	}
	slow := obs.DefaultSlowLog.Note(r.Context(), obs.SlowQuery{
		ID: aq.ID(), Kind: aq.Kind(), Text: aq.Text(), Elapsed: elapsed, Plan: planText,
	})
	if slow && planNode != nil {
		exp.Journal().Emit(journal.TypeSlowQuery, journal.AnalyzedQuery{
			ID: aq.ID(), Kind: aq.Kind(), Query: aq.Text(),
			Seconds: elapsed.Seconds(), Plan: *planNode,
		})
	}
}

// journalAnalyzed records an analyze=1 request's profiled plan in the
// serving generation's journal (nil-safe when the expansion has none).
func journalAnalyzed(exp *probkb.Expansion, aq *obs.ActiveQuery, query string, elapsed time.Duration, planNode *journal.PlanNode) {
	if aq == nil || planNode == nil {
		return
	}
	exp.Journal().Emit(journal.TypeQueryAnalyzed, journal.AnalyzedQuery{
		ID: aq.ID(), Kind: aq.Kind(), Query: query,
		Seconds: elapsed.Seconds(), Plan: *planNode,
	})
}

// handleQueries lists the in-flight queries, oldest first.
func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"queries": obs.Queries.List()})
}

// handleQueryCancel cancels one in-flight query by registry ID. The
// cancelled request itself unwinds with a 499; this endpoint returns
// whether the ID was found.
func (s *Server) handleQueryCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.Queries.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight query %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled", "id": id})
}

// handleSlow serves the retained slow-query records, newest first.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": obs.DefaultSlowLog.Threshold(),
		"queries":      obs.DefaultSlowLog.List(),
	})
}

// incidentSummary is the /debug/incidents listing view: the header of
// an incident without its bulky captures.
type incidentSummary struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Detector string    `json:"detector"`
	Summary  string    `json:"summary"`
	QueryID  string    `json:"query_id,omitempty"`
}

// handleIncidents lists watchdog incidents, newest first. Like
// /debug/queries it is not readiness-gated: incidents during recovery
// or the initial expansion are exactly what an operator wants to see.
func (s *Server) handleIncidents(w http.ResponseWriter, _ *http.Request) {
	all := obs.DefaultIncidents.List()
	out := make([]incidentSummary, len(all))
	for i, inc := range all {
		out[i] = incidentSummary{
			ID: inc.ID, Time: inc.Time, Detector: inc.Detector,
			Summary: inc.Summary, QueryID: inc.QueryID,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"incidents": out})
}

// handleIncident serves one full incident report.
func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	inc := obs.DefaultIncidents.Get(id)
	if inc == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no incident %q", id))
		return
	}
	writeJSON(w, http.StatusOK, inc)
}

// handleExpand re-runs the expansion pipeline on the served KB and, on
// success, publishes the fresh expansion as the next generation —
// readers pinned to the old one keep serving it lock-free for as long
// as their requests last. The request registers in the active-query
// registry (kind "expand"), so a runaway expansion shows in
// /debug/queries and DELETE /debug/queries/{id} cancels it through the
// same PartialError path ExpandContext uses; a cancelled or failed
// expansion publishes nothing.
func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	if !s.serving() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is not ready (still recovering or expanding)"))
		return
	}
	var req struct {
		Iterations int   `json:"iterations"`
		Inference  bool  `json:"inference"`
		Burnin     int   `json:"burnin"`
		Samples    int   `json:"samples"`
		Seed       int64 `json:"seed"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	desc := fmt.Sprintf("expand iterations=%d inference=%v samples=%d", req.Iterations, req.Inference, req.Samples)
	ctx, aq := obs.Queries.Begin(r.Context(), "expand", desc)
	defer obs.Queries.Finish(aq)
	aq.SetPhase("queue")
	s.wmu.Lock()
	defer s.wmu.Unlock()
	aq.SetPhase("ground")

	// Pin the newest generation after winning the writer mutex (see
	// handleFactsPost) — the re-expansion grounds that generation's KB.
	pin := s.snaps.Pin()
	defer pin.Unpin()
	base := pin.Value()
	if base == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is not ready (no expansion attached)"))
		return
	}

	cfg := probkb.Config{
		Engine:        probkb.SingleNode,
		MaxIterations: req.Iterations,
		RunInference:  req.Inference,
		GibbsBurnin:   req.Burnin,
		GibbsSamples:  req.Samples,
		Seed:          req.Seed,
		OnIteration: func(it probkb.IterationStats) {
			aq.SetPhase("ground")
			aq.AddRows(it.NewFacts)
		},
		OnGibbsSweep: func(probkb.GibbsSweep) { aq.SetPhase("infer") },
	}
	exp, err := base.kb.ExpandContext(ctx, cfg)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	gen := s.publish(base.kb, exp)
	writeJSON(w, http.StatusOK, map[string]any{"stats": exp.Stats(), "generation": gen})
}
