package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"probkb"
)

// queryServer builds a server over a KB with a derivable chain, so
// GET /query exercises local grounding + neighborhood Gibbs.
func queryServer(t *testing.T) *httptest.Server {
	t.Helper()
	k := probkb.New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	k.MustAddRule("0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)")
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: false, GibbsBurnin: 20, GibbsSamples: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(k, exp))
	t.Cleanup(srv.Close)
	return srv
}

func queryURL(srv *httptest.Server, atom string, extra string) string {
	u := srv.URL + "/query?atom=" + url.QueryEscape(atom)
	if extra != "" {
		u += "&" + extra
	}
	return u
}

// TestQuerySmoke is the make query-smoke scenario: point query →
// cached re-query → invalidate via /admin/expand → fresh re-query.
func TestQuerySmoke(t *testing.T) {
	srv := queryServer(t)
	atom := "located_in(Brooklyn, New_York_City)"
	var m marginalJSON
	if code := getJSON(t, queryURL(srv, atom, "burnin=20&samples=100"), &m); code != 200 {
		t.Fatalf("query: %d %+v", code, m)
	}
	if !m.Found || m.Observed || m.Cached || m.Marginal == nil {
		t.Fatalf("cold query: %+v", m)
	}
	if *m.Marginal <= 0 || *m.Marginal >= 1 {
		t.Fatalf("marginal = %v", *m.Marginal)
	}
	gen := m.Generation

	var cached marginalJSON
	if code := getJSON(t, queryURL(srv, atom, "burnin=20&samples=100"), &cached); code != 200 {
		t.Fatalf("re-query: %d", code)
	}
	if !cached.Cached || cached.Generation != gen || *cached.Marginal != *m.Marginal {
		t.Fatalf("cached re-query: %+v (cold %+v)", cached, m)
	}

	// /admin/expand swaps the served expansion: a new generation whose
	// cache starts empty.
	var ex map[string]any
	if code := postJSON(t, srv.URL+"/admin/expand", `{"inference": false}`, &ex); code != 200 {
		t.Fatalf("expand: %d %v", code, ex)
	}
	var fresh marginalJSON
	if code := getJSON(t, queryURL(srv, atom, "burnin=20&samples=100"), &fresh); code != 200 {
		t.Fatalf("post-expand query: %d", code)
	}
	if fresh.Cached {
		t.Fatalf("post-expand query served the stale generation's cache: %+v", fresh)
	}
	if fresh.Generation == gen {
		t.Fatalf("generation did not bump across /admin/expand: %+v", fresh)
	}
	if !fresh.Found || fresh.Marginal == nil {
		t.Fatalf("post-expand query: %+v", fresh)
	}
}

func TestQueryMarginalNull(t *testing.T) {
	srv := queryServer(t)
	// Unknown atom: 200 with an explicit "marginal": null, never a 500.
	var raw map[string]any
	if code := getJSON(t, queryURL(srv, "born_in(nobody, nowhere)", ""), &raw); code != 200 {
		t.Fatalf("unknown atom: %d", code)
	}
	if v, present := raw["marginal"]; !present || v != nil {
		t.Fatalf("marginal = %v, want explicit null", v)
	}
	if raw["found"] != false {
		t.Fatalf("found = %v", raw["found"])
	}

	// samples=-1 skips inference on a derivable atom: found, null marginal.
	if code := getJSON(t, queryURL(srv, "located_in(Brooklyn, New_York_City)", "samples=-1"), &raw); code != 200 {
		t.Fatalf("samples=-1: %d", code)
	}
	if raw["found"] != true || raw["marginal"] != nil {
		t.Fatalf("samples=-1: %+v", raw)
	}
}

func TestQueryObservedAtom(t *testing.T) {
	srv := queryServer(t)
	var m marginalJSON
	if code := getJSON(t, queryURL(srv, "born_in(Ruth_Gruber, Brooklyn)", ""), &m); code != 200 {
		t.Fatalf("observed query: %d", code)
	}
	if !m.Found || !m.Observed || m.Marginal == nil || *m.Marginal != 0.93 {
		t.Fatalf("observed query: %+v", m)
	}
}

func TestQueryBadRequests(t *testing.T) {
	srv := queryServer(t)
	for _, u := range []string{
		srv.URL + "/query",
		srv.URL + "/query?atom=" + url.QueryEscape("born_in"),
		srv.URL + "/query?atom=" + url.QueryEscape("born_in(a, b, c)"),
		queryURL(srv, "born_in(Ruth_Gruber, Brooklyn)", "depth=zero"),
		queryURL(srv, "born_in(Ruth_Gruber, Brooklyn)", "nocache=maybe"),
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", u, resp.StatusCode)
		}
	}
}

// TestQueryConcurrentInvalidation races concurrent GET /query readers
// against repeated /admin/expand swaps: every response must decode as
// a valid 200 answer, never an error or a stale-generation crash (the
// interesting assertions are the -race instrumentation and the server
// staying consistent while its expansion is swapped underneath).
func TestQueryConcurrentInvalidation(t *testing.T) {
	srv := queryServer(t)
	atoms := []string{
		"located_in(Brooklyn, New_York_City)",
		"live_in(Ruth_Gruber, Brooklyn)",
		"born_in(Ruth_Gruber, Brooklyn)",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := queryURL(srv, atoms[(c+i)%len(atoms)], "burnin=10&samples=20")
				resp, err := http.Get(u)
				if err != nil {
					report(fmt.Errorf("reader %d: %v", c, err))
					return
				}
				var m marginalJSON
				err = json.NewDecoder(resp.Body).Decode(&m)
				resp.Body.Close()
				if err != nil {
					report(fmt.Errorf("reader %d: decoding %s: %v", c, u, err))
					return
				}
				if resp.StatusCode != 200 {
					report(fmt.Errorf("reader %d: %s -> %d", c, u, resp.StatusCode))
					return
				}
			}
		}(c)
	}
	for i := 0; i < 3; i++ {
		var ex map[string]any
		if code := postJSON(t, srv.URL+"/admin/expand", `{"inference": false}`, &ex); code != 200 {
			t.Fatalf("expand %d: %d %v", i, code, ex)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// After the last swap, the next uncached answer must come from the
	// final generation.
	var m marginalJSON
	if code := getJSON(t, queryURL(srv, atoms[0], "nocache=1"), &m); code != 200 {
		t.Fatalf("final query: %d", code)
	}
	if m.Cached {
		t.Fatalf("nocache query hit the cache: %+v", m)
	}
}
