package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probkb"
	"probkb/internal/obs"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	k := probkb.New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.AddFact("born_in", "Freud", "Writer", "Vienna", "Place", 0.9)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: true, GibbsBurnin: 20, GibbsSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(k, exp))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	var out map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &out); code != 200 || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, out)
	}
}

func TestStats(t *testing.T) {
	srv := testServer(t)
	var out struct {
		KB struct {
			Facts int `json:"Facts"`
		} `json:"kb"`
		Expansion struct {
			InferredFacts int `json:"InferredFacts"`
		} `json:"expansion"`
	}
	if code := getJSON(t, srv.URL+"/stats", &out); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if out.KB.Facts != 2 || out.Expansion.InferredFacts != 2 {
		t.Fatalf("stats payload: %+v", out)
	}
}

func TestFactsFilters(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Total int                       `json:"total"`
		Facts []struct{ Rel, X string } `json:"facts"`
	}
	if code := getJSON(t, srv.URL+"/facts?rel=live_in", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Total != 2 {
		t.Fatalf("live_in total = %d", out.Total)
	}
	if code := getJSON(t, srv.URL+"/facts?inferred=true&x=Freud", &out); code != 200 || out.Total != 1 {
		t.Fatalf("filtered total = %d", out.Total)
	}
	if code := getJSON(t, srv.URL+"/facts?limit=1", &out); code != 200 || len(out.Facts) != 1 || out.Total != 4 {
		t.Fatalf("limit: total=%d len=%d", out.Total, len(out.Facts))
	}
	// Bad parameters.
	var errOut map[string]string
	if code := getJSON(t, srv.URL+"/facts?limit=x", &errOut); code != 400 {
		t.Fatalf("bad limit status %d", code)
	}
	if code := getJSON(t, srv.URL+"/facts?inferred=maybe", &errOut); code != 400 {
		t.Fatalf("bad inferred status %d", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/explain?rel=live_in&x=Freud&y=Vienna")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "born_in(Freud:Writer, Vienna:Place)") {
		t.Fatalf("explain body:\n%s", sb.String())
	}

	var errOut map[string]string
	if code := getJSON(t, srv.URL+"/explain?rel=live_in&x=Nobody&y=Nowhere", &errOut); code != 404 {
		t.Fatalf("missing fact status %d", code)
	}
	if code := getJSON(t, srv.URL+"/explain", &errOut); code != 400 {
		t.Fatalf("missing params status %d", code)
	}
}

func TestFactsWithoutInference(t *testing.T) {
	// Inferred facts have NaN probabilities when inference is skipped;
	// the API must render them as JSON null, not fail to encode
	// (regression: empty 200 responses).
	k := probkb.New()
	k.AddFact("born_in", "RG", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(k, exp))
	defer srv.Close()

	var out struct {
		Facts []struct {
			Probability *float64 `json:"probability"`
			Inferred    bool     `json:"inferred"`
		} `json:"facts"`
	}
	if code := getJSON(t, srv.URL+"/facts?inferred=true", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Facts) != 1 || out.Facts[0].Probability != nil {
		t.Fatalf("payload: %+v", out)
	}
	// Observed facts keep their probability.
	if code := getJSON(t, srv.URL+"/facts?inferred=false", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Facts) != 1 || out.Facts[0].Probability == nil || *out.Facts[0].Probability != 0.93 {
		t.Fatalf("payload: %+v", out)
	}
}

func TestSQLEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	q := "/sql?q=" + strings.ReplaceAll("SELECT T.R, COUNT(*) AS n FROM T GROUP BY T.R", " ", "+")
	if code := getJSON(t, srv.URL+q, &out); code != 200 {
		t.Fatalf("sql status %d", code)
	}
	if len(out.Columns) != 2 || len(out.Rows) == 0 {
		t.Fatalf("sql payload: %+v", out)
	}
	var errOut map[string]string
	if code := getJSON(t, srv.URL+"/sql", &errOut); code != 400 {
		t.Fatalf("missing q status %d", code)
	}
	if code := getJSON(t, srv.URL+"/sql?q=NOT+SQL", &errOut); code != 400 {
		t.Fatalf("bad sql status %d", code)
	}
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestDistSQLEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	// Happy path: the hash-distributed fact table joined against a
	// replicated dictionary is collocated and runs distributed.
	body := `{"q": "SELECT a.x, d.name FROM T a JOIN DE d ON a.x = d.id", "segments": 2}`
	if code := postJSON(t, srv.URL+"/sql", body, &out); code != 200 {
		t.Fatalf("distributed sql status %d", code)
	}
	if len(out.Columns) != 2 || len(out.Rows) == 0 {
		t.Fatalf("distributed sql payload: %+v", out)
	}
	var errOut map[string]string
	if code := postJSON(t, srv.URL+"/sql", `{"segments": 2}`, &errOut); code != 400 {
		t.Fatalf("missing q status %d", code)
	}
	if code := postJSON(t, srv.URL+"/sql", `not json`, &errOut); code != 400 {
		t.Fatalf("bad body status %d", code)
	}
}

// TestDistSQLNonCollocatedJoin is the regression for the crash this PR
// removes: a self-join of T on non-distribution columns is not
// collocated, and the old MPP layer panicked while *constructing* the
// plan — taking the whole server process down from a user query. Now
// the violation surfaces as an error response and the server keeps
// serving.
func TestDistSQLNonCollocatedJoin(t *testing.T) {
	srv := testServer(t)
	var errOut map[string]string
	body := `{"q": "SELECT a.I FROM T a JOIN T b ON a.x = b.y", "segments": 2}`
	code := postJSON(t, srv.URL+"/sql", body, &errOut)
	if code < 400 || code > 599 {
		t.Fatalf("non-collocated join status = %d, want an error status", code)
	}
	if !strings.Contains(errOut["error"], "not collocated") {
		t.Fatalf("error = %q, want a collocation violation", errOut["error"])
	}
	// The process must still be alive and serving.
	var health map[string]string
	if c := getJSON(t, srv.URL+"/healthz", &health); c != 200 || health["status"] != "ok" {
		t.Fatalf("server did not survive the bad query: %d %v", c, health)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Warm the request-path metrics with one ordinary request.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	// The test server ran a real expansion, so the exposition must carry
	// at least one counter, one gauge, and one histogram from it, plus
	// the HTTP middleware's own series.
	for _, want := range []string{
		"# TYPE probkb_expand_total counter",
		`probkb_expand_total{engine="ProbKB"}`,
		"# TYPE probkb_infer_samples_per_second gauge",
		"# TYPE probkb_expand_stage_seconds histogram",
		`probkb_expand_stage_seconds_bucket{stage="ground",le="+Inf"}`,
		`probkb_http_requests_total{code="200",path="/healthz"}`,
		`probkb_http_request_seconds_bucket{path="/healthz",le="+Inf"}`,
		"probkb_http_in_flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
}

func TestDebugTraces(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("traces status %d", resp.StatusCode)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	// The expansion behind the test server left an "expand" trace with
	// its stage children.
	body := sb.String()
	for _, want := range []string{"-> expand", "-> quality", "-> ground", "-> infer"} {
		if !strings.Contains(body, want) {
			t.Errorf("traces body missing %q in:\n%s", want, body)
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	obs.NewTextLogger(io.Discard, slog.LevelError+4) // silence the panic log
	defer obs.SetLogger(slog.Default())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	beforeSnap := obs.Default.Snapshot()
	before := beforeSnap[`probkb_http_panics_total{path="/boom"}`]
	beforeLatency := beforeSnap[`probkb_http_request_seconds_count{path="/boom"}`]
	var out map[string]string
	if code := getJSON(t, srv.URL+"/boom", &out); code != 500 {
		t.Fatalf("panic status %d", code)
	}
	if !strings.Contains(out["error"], "kaboom") {
		t.Fatalf("panic body: %v", out)
	}
	afterSnap := obs.Default.Snapshot()
	after := afterSnap[`probkb_http_panics_total{path="/boom"}`]
	if after != before+1 {
		t.Fatalf("panics_total %v -> %v", before, after)
	}
	if afterSnap[`probkb_http_requests_total{code="500",path="/boom"}`] < 1 {
		t.Fatal("panic not counted as a 500 request")
	}
	// The panicked request must still land in the latency histogram: a
	// crash-looping endpoint should not vanish from latency dashboards.
	if afterSnap[`probkb_http_request_seconds_count{path="/boom"}`] != beforeLatency+1 {
		t.Fatal("panicked request missing from the latency histogram")
	}
	// And the server must keep serving after the panic.
	if code := getJSON(t, srv.URL+"/boom", &out); code != 500 {
		t.Fatalf("second request after panic: status %d", code)
	}
}

func TestPprofIndex(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
}

func TestDebugJournal(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Events []struct {
			Seq  int    `json:"seq"`
			Type string `json:"type"`
		} `json:"events"`
		Dropped int `json:"dropped"`
	}
	if code := getJSON(t, srv.URL+"/debug/journal", &out); code != 200 {
		t.Fatalf("journal status %d", code)
	}
	if len(out.Events) == 0 {
		t.Fatal("journal has no events")
	}
	types := map[string]bool{}
	for _, ev := range out.Events {
		types[ev.Type] = true
	}
	for _, want := range []string{"run_start", "iteration", "gibbs_checkpoint", "run_end"} {
		if !types[want] {
			t.Errorf("journal missing %s event; saw %v", want, types)
		}
	}
	if out.Dropped != 0 {
		t.Fatalf("dropped = %d on a tiny run", out.Dropped)
	}
}

func TestDebugProfile(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Header *struct {
			Engine     string `json:"engine"`
			ConfigHash string `json:"config_hash"`
		} `json:"header"`
		Phases []struct {
			Phase string `json:"phase"`
		} `json:"phases"`
		Convergence *struct {
			Timeline []struct {
				Sweep int `json:"sweep"`
			} `json:"timeline"`
		} `json:"convergence"`
	}
	if code := getJSON(t, srv.URL+"/debug/profile", &out); code != 200 {
		t.Fatalf("profile status %d", code)
	}
	if out.Header == nil || out.Header.ConfigHash == "" {
		t.Fatalf("profile header = %+v", out.Header)
	}
	if len(out.Phases) != 4 {
		t.Fatalf("phases = %+v", out.Phases)
	}
	if out.Convergence == nil || len(out.Convergence.Timeline) == 0 {
		t.Fatal("profile has no convergence timeline")
	}
}

// TestAdminSnapshot drives the checkpoint endpoint: without a store it
// is a 409; with one, a POST folds the WAL into a fresh snapshot and
// reports the new generation.
func TestAdminSnapshot(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot without a store: %d, want 409", resp.StatusCode)
	}

	k := probkb.New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	st, err := probkb.CreateStore(t.TempDir()+"/store", k)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, Persist: st})
	if err != nil {
		t.Fatal(err)
	}
	if st.WALRecords() == 0 {
		t.Fatal("persisted expansion appended no WAL records")
	}
	withStore := httptest.NewServer(New(k, exp, WithStore(st)))
	defer withStore.Close()
	resp, err = http.Post(withStore.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Gen        uint32 `json:"gen"`
		WALRecords int64  `json:"walRecords"`
		Facts      int    `json:"facts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Gen != 2 || out.WALRecords != 0 {
		t.Fatalf("snapshot: %d %+v, want 200 gen=2 walRecords=0", resp.StatusCode, out)
	}
	if out.Facts != exp.Stats().TotalFacts {
		t.Fatalf("snapshot reports %d facts, expansion holds %d", out.Facts, exp.Stats().TotalFacts)
	}
}
