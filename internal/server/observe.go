package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"

	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

func init() {
	obs.Default.Help("probkb_http_requests_total", "HTTP requests served, by endpoint and status code.")
	obs.Default.Help("probkb_http_request_seconds", "HTTP request latency, by endpoint.")
	obs.Default.Help("probkb_http_in_flight", "HTTP requests currently being served.")
	obs.Default.Help("probkb_http_panics_total", "Handler panics recovered by the server middleware.")
	obs.Default.Help("probkb_http_rejected_total", "Data-plane requests shed by admission control (429), by endpoint.")
	obs.Default.Help("probkb_epoch_generation", "Current published serving-tier generation number.")
	obs.Default.Help("probkb_epoch_generations_live", "Generations published but not yet reclaimed (current + still-pinned).")
	obs.Default.Help("probkb_epoch_pins", "Outstanding reader pins across all generations.")
	obs.Default.Help("probkb_epoch_generations_reclaimed", "Generations reclaimed since startup (monotonic).")
}

// statusRecorder captures the status code a handler writes so the
// middleware can label its metrics and decide whether a recovered panic
// still owns the response.
type statusRecorder struct {
	http.ResponseWriter
	code    int
	written bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.written {
		r.code = code
		r.written = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.written {
		r.code = http.StatusOK
		r.written = true
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers
// (POST /facts?stream=1) can push each ack line to the client as soon
// as its batch is published.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, which
// the streaming ingest handler uses to enable full-duplex HTTP/1.1
// (respond while the chunked request body is still open).
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// instrument wraps a handler with the server's observability middleware:
// a request span, per-endpoint latency histogram and request counter, an
// in-flight gauge, panic recovery, and structured request logging. The
// path label is passed statically (not taken from the URL) so metric
// cardinality stays bounded.
func instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	inFlight := obs.Default.Gauge("probkb_http_in_flight")
	latency := obs.Default.Histogram("probkb_http_request_seconds", obs.DurationBuckets, obs.L("path", path))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		defer inFlight.Add(-1)

		ctx, span := obs.StartSpan(r.Context(), "http "+path)
		defer span.End()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}

		defer func() {
			if p := recover(); p != nil {
				obs.Default.Counter("probkb_http_panics_total", obs.L("path", path)).Inc()
				obs.Log(ctx).Error("handler panic",
					"path", path, "panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if !rec.written {
					writeError(rec, http.StatusInternalServerError,
						fmt.Errorf("internal error: %v", p))
				}
				rec.code = http.StatusInternalServerError
			}
			elapsed := time.Since(start)
			latency.Observe(elapsed.Seconds())
			obs.Default.Counter("probkb_http_requests_total",
				obs.L("path", path), obs.L("code", strconv.Itoa(rec.code))).Inc()
			span.SetAttr("code", rec.code)
			obs.Log(ctx).Info("request",
				"method", r.Method, "path", path, "query", r.URL.RawQuery,
				"code", rec.code, "elapsed", elapsed)
		}()

		h(rec, r.WithContext(ctx))
	}
}

// handleMetrics serves the registry in Prometheus text exposition
// format. Go runtime health (goroutines, heap, GC pauses, build info)
// refreshes at scrape time, so no background poller is needed.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	obs.UpdateRuntimeMetrics()
	// Epoch state refreshes at scrape time, like the runtime gauges.
	obs.Default.Gauge("probkb_epoch_generation").Set(float64(s.snaps.Current()))
	obs.Default.Gauge("probkb_epoch_generations_live").Set(float64(s.snaps.Live()))
	obs.Default.Gauge("probkb_epoch_pins").Set(float64(s.snaps.Pins()))
	obs.Default.Gauge("probkb_epoch_generations_reclaimed").Set(float64(s.snaps.Reclaimed()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// handleTraces dumps the recent span trees, most recent first.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	traces := obs.DefaultTracer.Traces()
	if len(traces) == 0 {
		fmt.Fprintln(w, "no traces recorded yet")
		return
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprint(w, tr.Render())
	}
}

// handleJournal serves the served expansion's run journal as JSON: the
// raw typed event stream (the same record `probkb expand -journal`
// writes as JSONL).
func (s *Server) handleJournal(w http.ResponseWriter, _ *http.Request, snap *snapshot, _ uint64) {
	jr := snap.exp.Journal()
	if jr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("expansion has no run journal"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events":  jr.Events(),
		"dropped": jr.Dropped(),
	})
}

// handleProfile serves the analyzed workload profile of the served
// expansion's journal: phase breakdown, operator costs, per-segment
// skew rows, motion volumes, and the Gibbs convergence timeline — the
// JSON twin of `probkb report`.
func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request, snap *snapshot, _ uint64) {
	jr := snap.exp.Journal()
	if jr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("expansion has no run journal"))
		return
	}
	run, err := journal.FromEvents(jr.Events())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, journal.Analyze(run))
}

// registerDebug wires the pprof handlers onto the mux. They are grouped
// under one static metrics label so profile names don't blow up
// cardinality.
func (s *Server) registerDebug() {
	s.mux.HandleFunc("GET /debug/pprof/", instrument("/debug/pprof", pprof.Index))
	s.mux.HandleFunc("GET /debug/pprof/cmdline", instrument("/debug/pprof", pprof.Cmdline))
	s.mux.HandleFunc("GET /debug/pprof/profile", instrument("/debug/pprof", pprof.Profile))
	s.mux.HandleFunc("GET /debug/pprof/symbol", instrument("/debug/pprof", pprof.Symbol))
	s.mux.HandleFunc("GET /debug/pprof/trace", instrument("/debug/pprof", pprof.Trace))
}
