package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"probkb"
)

// This file is the serving tier's MVCC acceptance battery: admission
// control sheds load without touching health/debug endpoints, POST
// /facts publishes a new generation without disturbing in-flight
// readers, POST /query/batch answers from one pinned snapshot, and a
// cancelled rebuild never advances the epoch.

// mvccServer is like testServer but also returns the Server value, so
// tests can reach the admission internals and epoch manager directly.
func mvccServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	k := probkb.New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.AddFact("born_in", "Freud", "Writer", "Vienna", "Place", 0.9)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(k, exp)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

// statsEpoch reads the generation counter and fact count out of /stats.
func statsEpoch(t *testing.T, srv *httptest.Server) (gen uint64, facts int) {
	t.Helper()
	var out struct {
		KB struct {
			Facts int `json:"Facts"`
		} `json:"kb"`
		Epoch struct {
			Generation uint64 `json:"generation"`
		} `json:"epoch"`
	}
	if code := getJSON(t, srv.URL+"/stats", &out); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	return out.Epoch.Generation, out.KB.Facts
}

// TestAdmissionControl pins the load-shedding contract: with the cap
// reached, further data requests answer 429 with a Retry-After header
// and bump probkb_http_rejected_total, while health and debug
// endpoints keep answering; releasing the slot (or lifting the cap at
// runtime via SetMaxInFlight) restores service.
func TestAdmissionControl(t *testing.T) {
	s, srv := mvccServer(t)
	s.SetMaxInFlight(1)

	// Occupy the single slot deterministically: drive the admit wrapper
	// directly with a handler that parks until released.
	release := make(chan struct{})
	parked := s.admit("/query", func(w http.ResponseWriter, r *http.Request) { <-release })
	go parked(httptest.NewRecorder(), httptest.NewRequest("GET", "/query", nil))
	deadline := time.Now().Add(5 * time.Second)
	for s.admitted.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Data requests shed with 429 + Retry-After.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rej map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /stats status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if !strings.Contains(rej["error"], "capacity") {
		t.Fatalf("shed error = %q", rej["error"])
	}

	// Health, metrics, and the query registry are exempt — exactly what
	// an operator needs while the server sheds.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/queries"} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != 200 {
			t.Fatalf("saturated %s status %d, want 200", path, r2.StatusCode)
		}
	}

	// The rejection counter moved and is exposed for scraping.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mbody)
	if !strings.Contains(metrics, "probkb_http_rejected_total") {
		t.Fatal("/metrics does not expose probkb_http_rejected_total")
	}
	rejectedNonZero := false
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "probkb_http_rejected_total") && !strings.HasSuffix(line, " 0") {
			rejectedNonZero = true
		}
	}
	if !rejectedNonZero {
		t.Fatal("probkb_http_rejected_total did not move after a shed request")
	}

	// Release the slot: service resumes under the same cap.
	close(release)
	for s.admitted.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never drained")
		}
		time.Sleep(time.Millisecond)
	}
	var out map[string]any
	if code := getJSON(t, srv.URL+"/stats", &out); code != 200 {
		t.Fatalf("drained /stats status %d, want 200", code)
	}

	// Runtime reconfiguration: lifting the cap disables shedding.
	s.SetMaxInFlight(0)
	if code := getJSON(t, srv.URL+"/stats", &out); code != 200 {
		t.Fatalf("uncapped /stats status %d, want 200", code)
	}
}

// TestFactsPostPublishesNewGeneration: streaming facts in via POST
// /facts bumps the epoch generation, the new facts answer immediately,
// and concurrent readers racing the publish only ever observe a whole
// generation — (old gen, old closure size) or (new gen, new closure
// size), never a mixture of the two.
func TestFactsPostPublishesNewGeneration(t *testing.T) {
	_, srv := mvccServer(t)

	type genObs struct {
		Gen   uint64
		Total int
	}
	readStats := func() (genObs, error) {
		var out struct {
			Expansion struct {
				TotalFacts int
			} `json:"expansion"`
			Epoch struct {
				Generation uint64 `json:"generation"`
			} `json:"epoch"`
		}
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			return genObs{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return genObs{}, fmt.Errorf("stats status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return genObs{}, err
		}
		return genObs{out.Epoch.Generation, out.Expansion.TotalFacts}, nil
	}

	p0, err := readStats()
	if err != nil {
		t.Fatal(err)
	}

	// Before the extend the streamed entity is unknown: the query
	// answers (no 500) with a null marginal. Note the expansion
	// generation that served it — the expansion counter is process-
	// global, so only before/after comparisons are meaningful.
	var preM marginalJSON
	if code := getJSON(t, srv.URL+"/query?atom=live_in(Zweig,+Vienna)&burnin=10&samples=20", &preM); code != 200 {
		t.Fatalf("query before extend: %d", code)
	}
	if preM.Marginal != nil {
		t.Fatalf("unknown atom answered marginal %v before the extend", *preM.Marginal)
	}

	// Readers race the extend+publish, recording every (generation,
	// closure size) pair they see; the pairs are validated once the
	// post-publish state is known.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var obsMu sync.Mutex
	observed := map[genObs]bool{}
	errc := make(chan error, 1)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := readStats()
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				obsMu.Lock()
				observed[p] = true
				obsMu.Unlock()
			}
		}()
	}

	var out struct {
		Added      int    `json:"added"`
		Generation uint64 `json:"generation"`
	}
	body := `{"facts": [
		{"rel": "born_in", "x": "Zweig", "xClass": "Writer", "y": "Vienna", "yClass": "Place", "probability": 0.8},
		{"rel": "born_in", "x": "Mahler", "xClass": "Writer", "y": "Vienna", "yClass": "Place", "probability": 0.85}
	]}`
	if code := postJSON(t, srv.URL+"/facts", body, &out); code != 200 {
		t.Fatalf("POST /facts status %d", code)
	}
	p1, err := readStats()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case rerr := <-errc:
		t.Fatal(rerr)
	default:
	}
	for p := range observed {
		if p != p0 && p != p1 {
			t.Fatalf("reader observed torn state %+v, want %+v or %+v", p, p0, p1)
		}
	}

	if out.Added != 2 {
		t.Fatalf("added = %d, want 2", out.Added)
	}
	if out.Generation != p0.Gen+1 {
		t.Fatalf("generation = %d, want %d", out.Generation, p0.Gen+1)
	}
	if p1.Gen != p0.Gen+1 || p1.Total <= p0.Total {
		t.Fatalf("stats after extend: %+v, want generation %d with a larger closure than %d", p1, p0.Gen+1, p0.Total)
	}

	// The streamed fact is queryable on the new generation: the atom
	// that had no marginal now derives one (born_in(Zweig, Vienna) feeds
	// the live_in rule), and the answer carries a fresher expansion
	// generation than the pre-extend answer did.
	var m marginalJSON
	if code := getJSON(t, srv.URL+"/query?atom=live_in(Zweig,+Vienna)&burnin=10&samples=20", &m); code != 200 {
		t.Fatalf("query on extended generation: %d", code)
	}
	if m.Generation <= preM.Generation {
		t.Fatalf("post-extend marginal served from generation %d, want newer than %d", m.Generation, preM.Generation)
	}
	if m.Marginal == nil || !m.Found {
		t.Fatalf("streamed fact not queryable after the extend: %+v", m)
	}
}

// TestFactsPostValidation: malformed streams never reach the writer.
func TestFactsPostValidation(t *testing.T) {
	_, srv := mvccServer(t)
	g0, _ := statsEpoch(t, srv)
	for _, tc := range []struct{ name, body string }{
		{"empty", `{"facts": []}`},
		{"missing names", `{"facts": [{"rel": "born_in", "probability": 0.5}]}`},
		{"bad probability", `{"facts": [{"rel": "r", "x": "a", "xClass": "C", "y": "b", "yClass": "C", "probability": 1.5}]}`},
		{"not json", `{"facts": [`},
	} {
		var out map[string]string
		if code := postJSON(t, srv.URL+"/facts", tc.body, &out); code != 400 {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, code, out)
		}
	}
	if g, _ := statsEpoch(t, srv); g != g0 {
		t.Fatalf("rejected posts advanced the generation from %d to %d", g0, g)
	}
}

// TestQueryBatch answers several atoms from one pinned generation.
func TestQueryBatch(t *testing.T) {
	_, srv := mvccServer(t)
	var out struct {
		Generation uint64 `json:"generation"`
		Results    []struct {
			Atom  string `json:"atom"`
			Error string `json:"error,omitempty"`
		} `json:"results"`
	}
	body := `{"atoms": ["live_in(Freud, Vienna)", "live_in(Ruth_Gruber, Brooklyn)", "born_in(Freud, Vienna)"], "burnin": 10, "samples": 20}`
	if code := postJSON(t, srv.URL+"/query/batch", body, &out); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if out.Generation == 0 {
		t.Fatal("batch response missing the serving generation")
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Errorf("results[%d] (%s): %s", i, res.Atom, res.Error)
		}
	}

	for _, tc := range []struct{ name, body string }{
		{"empty", `{"atoms": []}`},
		{"unparsable atom", `{"atoms": ["not an atom"]}`},
		{"oversize", fmt.Sprintf(`{"atoms": [%s"live_in(a, b)"]}`, strings.Repeat(`"live_in(a, b)", `, maxBatchAtoms))},
	} {
		var errOut map[string]string
		if code := postJSON(t, srv.URL+"/query/batch", tc.body, &errOut); code != 400 {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, code, errOut)
		}
	}
}

// TestCancelledExpandDoesNotPublish is the server half of the MVCC
// publication contract: a rebuild killed via DELETE /debug/queries/{id}
// unwinds with 499 and the epoch generation never advances — readers
// stay on the generation they were on.
func TestCancelledExpandDoesNotPublish(t *testing.T) {
	_, srv := mvccServer(t)
	g0, f0 := statsEpoch(t, srv)

	done := make(chan int, 1)
	go func() {
		var out map[string]string
		done <- postJSON(t, srv.URL+"/admin/expand",
			`{"inference": true, "burnin": 0, "samples": 50000000}`, &out)
	}()

	id := waitForActive(t, srv, "expand")
	cancelActive(t, srv, id)

	select {
	case code := <-done:
		if code != statusClientClosedRequest {
			t.Fatalf("cancelled expand status %d, want 499", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled expand did not unwind")
	}

	g1, f1 := statsEpoch(t, srv)
	if g1 != g0 || f1 != f0 {
		t.Fatalf("cancelled expand published: gen %d->%d facts %d->%d", g0, g1, f0, f1)
	}
	var m marginalJSON
	if code := getJSON(t, srv.URL+"/query?atom=live_in(Freud,+Vienna)&burnin=10&samples=20", &m); code != 200 {
		t.Fatalf("query after cancelled expand: %d", code)
	}
}

// TestQueryCancelPinnedReader: DELETE /debug/queries/{id} on a pinned
// point-query reader unwinds it with 499 and the query-local
// PartialError phase, and the pin is released (a following write can
// still publish).
func TestQueryCancelPinnedReader(t *testing.T) {
	s, srv := mvccServer(t)

	type result struct {
		code int
		out  map[string]string
	}
	done := make(chan result, 1)
	go func() {
		var out map[string]string
		code := getJSON(t, srv.URL+"/query?atom=live_in(Freud,+Vienna)&burnin=0&samples=50000000&nocache=1", &out)
		done <- result{code, out}
	}()

	id := waitForActive(t, srv, "query")
	cancelActive(t, srv, id)

	select {
	case r := <-done:
		if r.code != statusClientClosedRequest {
			t.Fatalf("cancelled query status %d (%v), want 499", r.code, r.out)
		}
		if r.out["phase"] != "query-local" {
			t.Fatalf("cancelled query phase %q, want query-local", r.out["phase"])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not unwind")
	}

	// The reader's pin drained; the epoch can still turn over.
	deadline := time.Now().Add(5 * time.Second)
	for s.snaps.Pins() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d pins leaked after the cancelled reader unwound", s.snaps.Pins())
		}
		time.Sleep(time.Millisecond)
	}
	var out map[string]any
	body := `{"facts": [{"rel": "born_in", "x": "Zweig", "xClass": "Writer", "y": "Vienna", "yClass": "Place", "probability": 0.8}]}`
	if code := postJSON(t, srv.URL+"/facts", body, &out); code != 200 {
		t.Fatalf("POST /facts after cancelled reader: %d", code)
	}
}

// waitForActive polls /debug/queries until a query of the given kind is
// past registration, returning its id.
func waitForActive(t *testing.T, srv *httptest.Server, kind string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no active %q ever appeared in /debug/queries", kind)
		}
		var list struct {
			Queries []struct {
				ID    string `json:"id"`
				Kind  string `json:"kind"`
				Phase string `json:"phase"`
			} `json:"queries"`
		}
		if code := getJSON(t, srv.URL+"/debug/queries", &list); code != 200 {
			t.Fatalf("queries status %d", code)
		}
		for _, q := range list.Queries {
			if q.Kind == kind && q.Phase != "" && q.Phase != "start" {
				return q.ID
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cancelActive issues DELETE /debug/queries/{id} and asserts 200.
func cancelActive(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/debug/queries/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
}
