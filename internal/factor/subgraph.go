package factor

import "sort"

// Subgraph extracts the factor graph induced by the variables within
// radius hops of seed in the Markov graph (two variables are one hop
// apart when they share a factor). radius <= 0 means unbounded, which
// yields seed's entire connected component — the exact support of its
// marginal, since disconnected factors cancel in the conditional.
//
// The subgraph keeps the original fact IDs, so VarOf and FactID keep
// working on it; only the variable indices are renumbered (in
// increasing original order, for determinism). Factors with any
// variable outside the ball are dropped — the truncated-neighborhood
// approximation of query-time MCMC: the boundary variables keep their
// singleton evidence but lose potentials reaching further out, so a
// bounded radius trades accuracy for locality. Inference over the
// subgraph is exact for the component when radius covers it.
func (g *Graph) Subgraph(seed int32, radius int) *Graph {
	in := map[int32]bool{seed: true}
	frontier := []int32{seed}
	for hop := 0; len(frontier) > 0 && (radius <= 0 || hop < radius); hop++ {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if !in[u] {
					in[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}

	vars := make([]int32, 0, len(in))
	for v := range in {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(a, b int) bool { return vars[a] < vars[b] })

	sub := &Graph{
		nvars: len(vars),
		adj:   make([][]int32, len(vars)),
		ids:   make([]int32, len(vars)),
		byID:  make(map[int32]int32, len(vars)),
	}
	remap := make(map[int32]int32, len(vars))
	for i, v := range vars {
		remap[v] = int32(i)
		sub.ids[i] = g.ids[v]
		sub.byID[g.ids[v]] = int32(i)
	}

	// Only factors touching an included variable can qualify; walk their
	// adjacency lists instead of the full factor list.
	seenFactor := map[int32]bool{}
	for _, v := range vars {
		for _, fi := range g.adj[v] {
			if seenFactor[fi] {
				continue
			}
			seenFactor[fi] = true
			f := g.factors[fi]
			inside := true
			for _, u := range f.Vars() {
				if !in[u] {
					inside = false
					break
				}
			}
			if !inside {
				continue
			}
			nf := Factor{Head: remap[f.Head], W: f.W}
			for _, u := range f.Body {
				nf.Body = append(nf.Body, remap[u])
			}
			idx := int32(len(sub.factors))
			sub.factors = append(sub.factors, nf)
			for _, u := range nf.Vars() {
				sub.adj[u] = append(sub.adj[u], idx)
			}
		}
	}
	return sub
}
