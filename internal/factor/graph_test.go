package factor

import (
	"strings"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
)

// paperGraph grounds the Table 1 example and builds its factor graph.
func paperGraph(t *testing.T) (*Graph, *kb.KB, *ground.Result) {
	t.Helper()
	k := kb.New()
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	for _, line := range []string{
		"1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"1.53 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)",
		"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)",
		"0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)",
	} {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ground.Ground(k, ground.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return g, k, res
}

// findFact returns the fact ID for a relation name in the result table,
// failing if not exactly one matches.
func findFact(t *testing.T, k *kb.KB, res *ground.Result, rel string) int32 {
	t.Helper()
	relID, ok := k.RelDict.Lookup(rel)
	if !ok {
		t.Fatalf("unknown relation %s", rel)
	}
	var found []int32
	rels := res.Facts.Int32Col(kb.TPiR)
	ids := res.Facts.Int32Col(kb.TPiI)
	for r := 0; r < res.Facts.NumRows(); r++ {
		if rels[r] == relID {
			found = append(found, ids[r])
		}
	}
	if len(found) != 1 {
		t.Fatalf("relation %s has %d facts, want 1", rel, len(found))
	}
	return found[0]
}

func TestGraphFromPaperExample(t *testing.T) {
	g, _, _ := paperGraph(t)
	st := g.Stats()
	if st.Vars != 5 {
		t.Fatalf("vars = %d, want 5", st.Vars)
	}
	if st.Factors != 6 {
		t.Fatalf("factors = %d, want 6", st.Factors)
	}
	if st.Singletons != 2 {
		t.Fatalf("singletons = %d, want 2", st.Singletons)
	}
	if st.MaxDegree < 3 {
		t.Fatalf("max degree = %d; born_in facts participate in 3+ factors", st.MaxDegree)
	}
	if st.AvgDegree <= 0 {
		t.Fatal("avg degree should be positive")
	}
}

func TestLineage(t *testing.T) {
	g, k, res := paperGraph(t)
	located := findFact(t, k, res, "located_in")
	derivs := g.Lineage(located)
	// located_in is derivable from the live_in pair (w=0.32) and the
	// born_in pair (w=0.52).
	if len(derivs) != 2 {
		t.Fatalf("lineage size = %d, want 2", len(derivs))
	}
	for _, f := range derivs {
		if f.Head != located || len(f.Body) != 2 {
			t.Fatalf("bad derivation %+v", f)
		}
	}
	// A base fact has no derivations.
	bornRel, _ := k.RelDict.Lookup("born_in")
	rels := res.Facts.Int32Col(kb.TPiR)
	for r := 0; r < res.Facts.NumRows(); r++ {
		if rels[r] == bornRel {
			if len(g.Lineage(res.Facts.Int32Col(kb.TPiI)[r])) != 0 {
				t.Fatal("base fact has derivations")
			}
		}
	}
}

func TestExplain(t *testing.T) {
	g, k, res := paperGraph(t)
	located := findFact(t, k, res, "located_in")
	name := func(v int32) string {
		for r := 0; r < res.Facts.NumRows(); r++ {
			if res.Facts.Int32Col(kb.TPiI)[r] == v {
				return k.FactString(kb.FactAtRow(res.Facts, r))
			}
		}
		return "?"
	}
	out := g.Explain(located, 3, name)
	if !strings.Contains(out, "located_in") || !strings.Contains(out, "born_in") {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "derived by 2 rule application(s)") {
		t.Fatalf("explain should show both derivations:\n%s", out)
	}
	// Depth 0 prints just the fact.
	if got := g.Explain(located, 0, name); strings.Contains(got, "derived") {
		t.Fatalf("depth-0 explain should not recurse:\n%s", got)
	}
}

func TestSatisfiedSemantics(t *testing.T) {
	// Clause factor: head ← b1, b2.
	f := Factor{Head: 0, Body: []int32{1, 2}, W: 1}
	cases := []struct {
		assign []bool
		want   bool
	}{
		{[]bool{false, true, true}, false}, // body true, head false: violated
		{[]bool{true, true, true}, true},
		{[]bool{false, false, true}, true}, // body not satisfied
		{[]bool{false, true, false}, true},
		{[]bool{true, false, false}, true},
	}
	for _, tc := range cases {
		if got := f.Satisfied(tc.assign); got != tc.want {
			t.Errorf("Satisfied(%v) = %v, want %v", tc.assign, got, tc.want)
		}
	}
	s := Factor{Head: 0, W: 0.9}
	if s.Satisfied([]bool{false}) || !s.Satisfied([]bool{true}) {
		t.Fatal("singleton satisfaction wrong")
	}
	if !s.Singleton() || f.Singleton() {
		t.Fatal("Singleton() wrong")
	}
}

func TestLogScore(t *testing.T) {
	g, _, _ := paperGraph(t)
	allTrue := make([]bool, g.NumVars())
	for i := range allTrue {
		allTrue[i] = true
	}
	allFalse := make([]bool, g.NumVars())
	// All-true satisfies every factor: score = sum of all weights.
	wantTrue := 0.96 + 0.93 + 1.40 + 1.53 + 0.32 + 0.52
	if got := g.LogScore(allTrue); mathAbs(got-wantTrue) > 1e-9 {
		t.Fatalf("LogScore(all true) = %v, want %v", got, wantTrue)
	}
	// All-false satisfies every clause factor (empty body never true ...
	// body false) but no singleton.
	wantFalse := 1.40 + 1.53 + 0.32 + 0.52
	if got := g.LogScore(allFalse); mathAbs(got-wantFalse) > 1e-9 {
		t.Fatalf("LogScore(all false) = %v, want %v", got, wantFalse)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestNeighbors(t *testing.T) {
	g, k, res := paperGraph(t)
	located := findFact(t, k, res, "located_in")
	nb := g.Neighbors(located)
	// located_in shares factors with both live_in facts and both born_in
	// facts: 4 neighbors.
	if len(nb) != 4 {
		t.Fatalf("neighbors = %v, want 4", nb)
	}
	for _, u := range nb {
		if u == located {
			t.Fatal("variable is its own neighbor")
		}
	}
}

func TestAccessorsAndExport(t *testing.T) {
	g, k, res := paperGraph(t)
	if g.NumFactors() != 6 {
		t.Fatalf("NumFactors = %d", g.NumFactors())
	}
	f0 := g.Factor(0)
	if f0.Head < 0 {
		t.Fatal("Factor accessor broken")
	}
	located := findFact(t, k, res, "located_in")
	v, _ := g.VarOf(located)
	if len(g.FactorsOf(v)) < 2 {
		t.Fatalf("FactorsOf(%d) = %v", v, g.FactorsOf(v))
	}

	var vars, factors strings.Builder
	err := Export(res.Facts, res.Factors, &vars, &factors, func(row int) string {
		return k.FactString(kb.FactAtRow(res.Facts, row))
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(vars.String(), "\n") != 5 || strings.Count(factors.String(), "\n") != 6 {
		t.Fatalf("export sizes wrong:\n%s\n%s", vars.String(), factors.String())
	}
	if !strings.Contains(vars.String(), "\tnull\t0\t") {
		t.Fatalf("inferred variable rendering missing:\n%s", vars.String())
	}
	if !strings.Contains(factors.String(), "\tnull\tnull\t") {
		t.Fatalf("singleton factor rendering missing:\n%s", factors.String())
	}
	// Without a renderer, variables.tsv has three columns.
	var bare strings.Builder
	if err := Export(res.Facts, res.Factors, &bare, &strings.Builder{}, nil); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(bare.String(), "\n", 2)[0]
	if got := len(strings.Split(first, "\t")); got != 3 {
		t.Fatalf("bare export columns = %d, want 3 (%q)", got, first)
	}
}

func TestFromTablesErrors(t *testing.T) {
	// Sparse fact IDs are fine (quality control deletes rows without
	// renumbering); the ID mapping must round-trip.
	facts := engine.NewTable("T", kb.FactsSchema())
	facts.AppendRow(5, 0, 0, 0, 0, 0, 0.5)
	factors := engine.NewTable("TPhi", ground.FactorSchema())
	factors.AppendRow(5, engine.NullInt32, engine.NullInt32, 0.5)
	g, err := FromTables(facts, factors)
	if err != nil {
		t.Fatalf("sparse fact IDs rejected: %v", err)
	}
	v, ok := g.VarOf(5)
	if !ok || g.FactID(v) != 5 {
		t.Fatal("sparse ID mapping broken")
	}
	if _, ok := g.VarOf(0); ok {
		t.Fatal("VarOf invented a variable")
	}

	// Duplicate IDs are rejected.
	dup := engine.NewTable("T", kb.FactsSchema())
	dup.AppendRow(1, 0, 0, 0, 0, 0, 0.5)
	dup.AppendRow(1, 0, 1, 0, 1, 0, 0.5)
	if _, err := FromTables(dup, engine.NewTable("TPhi", ground.FactorSchema())); err == nil {
		t.Fatal("duplicate fact IDs accepted")
	}

	facts2 := engine.NewTable("T", kb.FactsSchema())
	facts2.AppendRow(0, 0, 0, 0, 0, 0, 0.5)
	bad := engine.NewTable("TPhi", ground.FactorSchema())
	bad.AppendRow(7, engine.NullInt32, engine.NullInt32, 0.5) // unknown fact
	if _, err := FromTables(facts2, bad); err == nil {
		t.Fatal("factor referencing unknown fact accepted")
	}

	if _, err := FromResult(&ground.Result{Facts: facts2}); err == nil {
		t.Fatal("FromResult without factors accepted")
	}
}
