package factor

import (
	"reflect"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
)

func TestSubgraphWholeComponent(t *testing.T) {
	g, _, _ := paperGraph(t)
	// The paper example is one connected component, so an unbounded
	// subgraph from any seed is the whole graph.
	for v := int32(0); int(v) < g.NumVars(); v++ {
		sub := g.Subgraph(v, 0)
		if sub.NumVars() != g.NumVars() {
			t.Fatalf("seed %d: vars = %d, want %d", v, sub.NumVars(), g.NumVars())
		}
		if sub.NumFactors() != g.NumFactors() {
			t.Fatalf("seed %d: factors = %d, want %d", v, sub.NumFactors(), g.NumFactors())
		}
	}
}

func TestSubgraphKeepsFactIDs(t *testing.T) {
	g, _, _ := paperGraph(t)
	sub := g.Subgraph(0, 0)
	for v := int32(0); int(v) < sub.NumVars(); v++ {
		id := sub.FactID(v)
		if _, ok := g.VarOf(id); !ok {
			t.Fatalf("subgraph var %d carries fact id %d unknown to the parent", v, id)
		}
		if u, _ := sub.VarOf(id); u != v {
			t.Fatalf("VarOf(FactID(%d)) = %d in the subgraph", v, u)
		}
	}
}

func TestSubgraphRadiusGrowsToComponent(t *testing.T) {
	g, _, _ := paperGraph(t)
	prev := 0
	for radius := 1; radius <= g.NumVars(); radius++ {
		sub := g.Subgraph(0, radius)
		if sub.NumVars() < prev {
			t.Fatalf("radius %d shrank the ball: %d < %d", radius, sub.NumVars(), prev)
		}
		prev = sub.NumVars()
	}
	if prev != g.NumVars() {
		t.Fatalf("radius %d ball has %d vars, want the whole component (%d)", g.NumVars(), prev, g.NumVars())
	}
}

func TestSubgraphDropsCrossBoundaryFactors(t *testing.T) {
	// A 3-chain a -> b -> c: radius 1 around a keeps {a, b} and must
	// drop the b->c implication factor (c is outside the ball) while
	// keeping singletons and the a->b factor.
	facts := engine.NewTable("T", kb.FactsSchema())
	for i := 0; i < 3; i++ {
		facts.AppendRow(i, 0, i, 0, i+10, 0, engine.NullFloat64())
	}
	null := engine.NullInt32
	factors := engine.NewTable("TPhi", ground.FactorSchema())
	factors.AppendRow(0, null, null, 0.5)
	factors.AppendRow(1, 0, null, 1.0)
	factors.AppendRow(2, 1, null, 1.0)
	g, err := FromTables(facts, factors)
	if err != nil {
		t.Fatal(err)
	}
	sub := g.Subgraph(0, 1)
	if sub.NumVars() != 2 {
		t.Fatalf("vars = %d, want 2", sub.NumVars())
	}
	if sub.NumFactors() != 2 {
		t.Fatalf("factors = %d, want 2 (singleton on a, implication a->b)", sub.NumFactors())
	}
}

func TestSubgraphDeterministic(t *testing.T) {
	g, _, _ := paperGraph(t)
	a, b := g.Subgraph(0, 2), g.Subgraph(0, 2)
	if !reflect.DeepEqual(a.ids, b.ids) || !reflect.DeepEqual(a.factors, b.factors) {
		t.Fatal("two identical Subgraph calls disagree")
	}
}
