// Package factor implements the ground factor graph (Section 2.2 and
// Definition 7 of the paper): the output of grounding and the input to
// marginal inference.
//
// A variable is one fact of TΠ (a binary ground atom); a factor is one
// row of TΦ. Two factor kinds exist:
//
//   - clause factors (I1, I2[, I3], w): the ground Horn clause
//     I1 ← I2[, I3] with weight w, contributing e^w unless the body is
//     true and the head false;
//   - singleton factors (I1, NULL, NULL, w): an observed fact's own
//     weight, a unit clause contributing e^w when the fact is true.
//
// Because TΦ records which facts derived which, it carries the entire
// lineage of the expanded KB; Lineage and Explain query it.
package factor

import (
	"fmt"
	"strings"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
)

// Factor is one ground factor. Head is the consequent variable; Body has
// 0 (singleton), 1, or 2 antecedent variables.
type Factor struct {
	Head int32
	Body []int32
	W    float64
}

// Singleton reports whether the factor is an observed fact's unit clause.
func (f Factor) Singleton() bool { return len(f.Body) == 0 }

// Vars returns all variables the factor touches (head first).
func (f Factor) Vars() []int32 {
	out := make([]int32, 0, 1+len(f.Body))
	out = append(out, f.Head)
	return append(out, f.Body...)
}

// Graph is a materialized ground factor graph. Variables are graph-local
// indices 0..NumVars-1; VarOf and FactID translate between them and the
// (possibly sparse, after constraint deletions) fact IDs of TΠ.
type Graph struct {
	nvars   int
	factors []Factor
	// adj[v] lists the indices of the factors touching variable v.
	adj [][]int32
	// ids[v] is variable v's fact ID; byID is the inverse.
	ids  []int32
	byID map[int32]int32
}

// FromTables builds a Graph from a grounding result's TΠ and TΦ tables.
// Fact IDs may be sparse (quality control deletes rows without
// renumbering); every factor must reference a present fact.
func FromTables(facts, factors *engine.Table) (*Graph, error) {
	n := facts.NumRows()
	ids := facts.Int32Col(kb.TPiI)
	g := &Graph{
		nvars: n,
		adj:   make([][]int32, n),
		ids:   make([]int32, n),
		byID:  make(map[int32]int32, n),
	}
	for r := 0; r < n; r++ {
		if _, dup := g.byID[ids[r]]; dup {
			return nil, fmt.Errorf("factor: duplicate fact ID %d", ids[r])
		}
		g.ids[r] = ids[r]
		g.byID[ids[r]] = int32(r)
	}

	i1s := factors.Int32Col(ground.TPhiI1)
	i2s := factors.Int32Col(ground.TPhiI2)
	i3s := factors.Int32Col(ground.TPhiI3)
	ws := factors.Float64Col(ground.TPhiW)
	for r := 0; r < factors.NumRows(); r++ {
		mapID := func(id int32) (int32, error) {
			v, ok := g.byID[id]
			if !ok {
				return 0, fmt.Errorf("factor: factor row %d references unknown fact %d", r, id)
			}
			return v, nil
		}
		head, err := mapID(i1s[r])
		if err != nil {
			return nil, err
		}
		f := Factor{Head: head, W: ws[r]}
		if i2s[r] != engine.NullInt32 {
			v, err := mapID(i2s[r])
			if err != nil {
				return nil, err
			}
			f.Body = append(f.Body, v)
		}
		if i3s[r] != engine.NullInt32 {
			v, err := mapID(i3s[r])
			if err != nil {
				return nil, err
			}
			f.Body = append(f.Body, v)
		}
		idx := int32(len(g.factors))
		g.factors = append(g.factors, f)
		for _, v := range f.Vars() {
			g.adj[v] = append(g.adj[v], idx)
		}
	}
	return g, nil
}

// VarOf translates a fact ID to its graph variable index.
func (g *Graph) VarOf(factID int32) (int32, bool) {
	v, ok := g.byID[factID]
	return v, ok
}

// FactID translates a graph variable index back to its fact ID.
func (g *Graph) FactID(v int32) int32 { return g.ids[v] }

// FromResult builds a Graph straight from a grounding result.
func FromResult(res *ground.Result) (*Graph, error) {
	if res.Factors == nil {
		return nil, fmt.Errorf("factor: grounding result has no factor table (SkipFactors?)")
	}
	return FromTables(res.Facts, res.Factors)
}

// NumVars returns the number of variables (facts).
func (g *Graph) NumVars() int { return g.nvars }

// NumFactors returns the number of factors.
func (g *Graph) NumFactors() int { return len(g.factors) }

// Factor returns factor i.
func (g *Graph) Factor(i int) Factor { return g.factors[i] }

// FactorsOf returns the indices of the factors touching variable v.
func (g *Graph) FactorsOf(v int32) []int32 { return g.adj[v] }

// Satisfied evaluates a factor's clause under an assignment: false only
// when the body is fully true and the head false (clause semantics);
// singleton factors are satisfied when the fact itself is true.
func (f Factor) Satisfied(assign []bool) bool {
	if f.Singleton() {
		return assign[f.Head]
	}
	for _, b := range f.Body {
		if !assign[b] {
			return true
		}
	}
	return assign[f.Head]
}

// LogScore returns the assignment's unnormalized log probability
// Σ w_i · n_i(x) over all factors (equation (4) of the paper).
func (g *Graph) LogScore(assign []bool) float64 {
	var s float64
	for _, f := range g.factors {
		if f.Satisfied(assign) {
			s += f.W
		}
	}
	return s
}

// Neighbors returns the distinct variables sharing a factor with v (its
// Markov blanket), excluding v itself.
func (g *Graph) Neighbors(v int32) []int32 {
	seen := map[int32]bool{v: true}
	var out []int32
	for _, fi := range g.adj[v] {
		for _, u := range g.factors[fi].Vars() {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// Lineage returns the derivation factors of variable v: the non-singleton
// factors whose head is v, each one a rule application that produced the
// fact.
func (g *Graph) Lineage(v int32) []Factor {
	var out []Factor
	for _, fi := range g.adj[v] {
		f := g.factors[fi]
		if f.Head == v && !f.Singleton() {
			out = append(out, f)
		}
	}
	return out
}

// Explain renders the proof tree of variable v down to the given depth,
// naming facts through the provided renderer. Facts with no derivations
// print as base extractions.
func (g *Graph) Explain(v int32, depth int, name func(int32) string) string {
	var b strings.Builder
	g.explain(&b, v, depth, 0, name)
	return b.String()
}

func (g *Graph) explain(b *strings.Builder, v int32, depth, indent int, name func(int32) string) {
	pad := strings.Repeat("  ", indent)
	derivs := g.Lineage(v)
	if len(derivs) == 0 || depth == 0 {
		fmt.Fprintf(b, "%s%s\n", pad, name(v))
		return
	}
	fmt.Fprintf(b, "%s%s, derived by %d rule application(s):\n", pad, name(v), len(derivs))
	for _, f := range derivs {
		fmt.Fprintf(b, "%s<- (w=%.2f)\n", pad+"  ", f.W)
		for _, u := range f.Body {
			g.explain(b, u, depth-1, indent+2, name)
		}
	}
}

// Stats summarizes the graph for reports.
type Stats struct {
	Vars       int
	Factors    int
	Singletons int
	MaxDegree  int
	AvgDegree  float64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{Vars: g.nvars, Factors: len(g.factors)}
	for _, f := range g.factors {
		if f.Singleton() {
			st.Singletons++
		}
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
		if len(a) > st.MaxDegree {
			st.MaxDegree = len(a)
		}
	}
	if g.nvars > 0 {
		st.AvgDegree = float64(total) / float64(g.nvars)
	}
	return st
}
