package factor

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
)

// Export writes a ground factor graph in the relational text format the
// paper's architecture hands to external inference engines ("the result
// factor graph in relational format ... existing inference engines,
// e.g., Gibbs, GraphLab, can be used" — Figure 1).
//
// variables.tsv:  id <TAB> weight|null <TAB> observed(0|1) [<TAB> rendering]
// factors.tsv:    i1 <TAB> i2|null <TAB> i3|null <TAB> weight
//
// render may be nil; when provided it appends a human-readable fact
// column to variables.tsv.
func Export(facts, factors *engine.Table, varsW, factorsW io.Writer, render func(row int) string) error {
	bw := bufio.NewWriter(varsW)
	ids := facts.Int32Col(kb.TPiI)
	ws := facts.Float64Col(kb.TPiW)
	for r := 0; r < facts.NumRows(); r++ {
		w := "null"
		observed := 0
		if !engine.IsNullFloat64(ws[r]) {
			w = formatF(ws[r])
			observed = 1
		}
		if render != nil {
			fmt.Fprintf(bw, "%d\t%s\t%d\t%s\n", ids[r], w, observed, render(r))
		} else {
			fmt.Fprintf(bw, "%d\t%s\t%d\n", ids[r], w, observed)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	bf := bufio.NewWriter(factorsW)
	i1 := factors.Int32Col(ground.TPhiI1)
	i2 := factors.Int32Col(ground.TPhiI2)
	i3 := factors.Int32Col(ground.TPhiI3)
	fw := factors.Float64Col(ground.TPhiW)
	nullable := func(v int32) string {
		if v == engine.NullInt32 {
			return "null"
		}
		return fmt.Sprint(v)
	}
	for r := 0; r < factors.NumRows(); r++ {
		fmt.Fprintf(bf, "%d\t%s\t%s\t%s\n", i1[r], nullable(i2[r]), nullable(i3[r]), formatF(fw[r]))
	}
	return bf.Flush()
}

func formatF(v float64) string {
	if math.IsInf(v, +1) {
		return "inf"
	}
	return fmt.Sprintf("%g", v)
}
