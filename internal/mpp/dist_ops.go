package mpp

import (
	"fmt"

	"probkb/internal/engine"
)

// ---------------------------------------------------------------------------
// Filter

// FilterNode keeps rows matching a predicate; it runs segment-local and
// preserves the input distribution.
type FilterNode struct {
	dbase
	child Node
	pred  func(t *engine.Table, row int) bool
	desc  string
}

// NewFilter returns a distributed filter.
func NewFilter(child Node, desc string, pred func(t *engine.Table, row int) bool) *FilterNode {
	return &FilterNode{
		dbase: childBase(child, child.OutSchema(), child.OutDist()),
		child: child, pred: pred, desc: desc,
	}
}

func (n *FilterNode) Children() []Node { return []Node{n.child} }
func (n *FilterNode) Label() string    { return "Filter (" + n.desc + ")" }

// Run filters every segment in parallel. The segment task builds a fresh
// local table and assigns it last, so a retried attempt cannot leave
// partial rows behind.
func (n *FilterNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("filter", n.schema, n.dist)
		opts := n.cluster.engineOpts()
		segStats := make([]engine.NodeStats, n.cluster.nseg)
		segSecs, retries, err := n.cluster.forEachSegment(func(i int) error {
			// Fresh local stats per attempt so a retried task stays
			// idempotent; the slot is overwritten wholesale.
			var st engine.NodeStats
			t := engine.FilterTableOpts(in.segs[i], n.pred, opts, &st)
			t.SetName(fmt.Sprintf("filter.seg%d", i))
			out.segs[i] = t
			segStats[i] = st
			return nil
		})
		n.stats.SegSeconds = segSecs
		n.stats.Retries = retries
		mergeExecStats(&n.stats, segStats)
		return out, err
	})
}

// ---------------------------------------------------------------------------
// Project

// ProjectNode computes a new row layout, segment-local.
type ProjectNode struct {
	dbase
	child Node
	exprs []engine.OutExpr
}

// NewProject returns a distributed projection. The output distribution is
// derived: if every distribution-key column of the input survives as a
// plain column reference, the output stays hashed on the mapped columns;
// otherwise it degrades to random (replicated stays replicated).
func NewProject(child Node, exprs ...engine.OutExpr) *ProjectNode {
	// engine.NewProject resolves types; reuse it on a dummy scan to get
	// the schema without duplicating that logic.
	probe := engine.NewProject(engine.NewScan(engine.NewTable("", child.OutSchema())), exprs...)
	dist := remapDist(child.OutDist(), exprs)
	return &ProjectNode{
		dbase: childBase(child, probe.OutSchema(), dist),
		child: child, exprs: exprs,
	}
}

// remapDist maps a distribution through a projection list.
func remapDist(d Distribution, exprs []engine.OutExpr) Distribution {
	if d.Replicated {
		return d
	}
	if d.Key == nil {
		return RandomDist()
	}
	mapped := make([]int, len(d.Key))
	for i, k := range d.Key {
		found := -1
		for j, e := range exprs {
			if e.Col == k {
				found = j
				break
			}
		}
		if found < 0 {
			return RandomDist()
		}
		mapped[i] = found
	}
	return HashedBy(mapped...)
}

func (n *ProjectNode) Children() []Node { return []Node{n.child} }
func (n *ProjectNode) Label() string    { return fmt.Sprintf("Project (%d cols)", len(n.exprs)) }

// Run projects every segment in parallel.
func (n *ProjectNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("project", n.schema, n.dist)
		opts := n.cluster.engineOpts()
		segStats := make([]engine.NodeStats, n.cluster.nseg)
		segSecs, retries, err := n.cluster.forEachSegment(func(i int) error {
			p := engine.NewProject(engine.NewScan(in.segs[i]), n.exprs...)
			engine.Configure(p, opts)
			t, err := p.Run()
			if err != nil {
				return err
			}
			t.SetName(fmt.Sprintf("project.seg%d", i))
			out.segs[i] = t
			segStats[i] = *p.Stats()
			return nil
		})
		n.stats.SegSeconds = segSecs
		n.stats.Retries = retries
		mergeExecStats(&n.stats, segStats)
		return out, err
	})
}

// ---------------------------------------------------------------------------
// Hash Join

// HashJoinNode joins two collocated inputs segment-locally in parallel.
//
// Collocation is a *precondition*: either at least one input is
// replicated, or both inputs are hash-distributed on exactly the join key
// tuples. The planner (PlanJoin) is responsible for inserting motions to
// establish it; a join constructed over non-collocated inputs records a
// deferred error and fails at Run, because silently joining them would
// drop matches that live on different segments.
type HashJoinNode struct {
	dbase
	build, probe         Node
	buildKeys, probeKeys []int
	residual             func(b *engine.Table, br int, p *engine.Table, pr int) bool
	residualDesc         string
	outs                 []engine.JoinOut
	desc                 string
}

// NewHashJoin constructs a distributed hash join. See HashJoinNode for the
// collocation precondition.
func NewHashJoin(build, probe Node, buildKeys, probeKeys []int, outs []engine.JoinOut, desc string) *HashJoinNode {
	bd, pd := build.OutDist(), probe.OutDist()
	sch := engine.JoinSchema(build.OutSchema(), probe.OutSchema(), outs)
	n := &HashJoinNode{
		dbase:     childBase(build, sch, joinOutputDist(bd, pd, buildKeys, probeKeys, outs)),
		build:     build,
		probe:     probe,
		buildKeys: buildKeys,
		probeKeys: probeKeys,
		outs:      outs,
		desc:      desc,
	}
	if n.err == nil {
		switch collocated := bd.Replicated || pd.Replicated ||
			(keysEqual(bd.Key, buildKeys) && keysEqual(pd.Key, probeKeys)); {
		case len(buildKeys) != len(probeKeys):
			n.err = fmt.Errorf("mpp: HashJoin key lists differ in length: %v vs %v", buildKeys, probeKeys)
		case !collocated:
			n.err = fmt.Errorf("mpp: HashJoin inputs not collocated: build %s on %v, probe %s on %v",
				bd, buildKeys, pd, probeKeys)
		}
	}
	return n
}

// joinOutputDist derives the output distribution of a collocated join.
func joinOutputDist(bd, pd Distribution, buildKeys, probeKeys []int, outs []engine.JoinOut) Distribution {
	if bd.Replicated && pd.Replicated {
		return ReplicatedDist()
	}
	// Rows land on the segment of the non-replicated side (or either, if
	// both hashed on the join keys). Map that side's distribution key
	// through the output spec.
	trySide := func(side int, key []int) (Distribution, bool) {
		if key == nil {
			return Distribution{}, false
		}
		mapped := make([]int, len(key))
		for i, k := range key {
			found := -1
			for j, o := range outs {
				if o.Side == side && o.Col == k {
					found = j
					break
				}
			}
			if found < 0 {
				return Distribution{}, false
			}
			mapped[i] = found
		}
		return HashedBy(mapped...), true
	}
	if !bd.Replicated {
		if d, ok := trySide(engine.BuildSide, bd.Key); ok {
			return d
		}
	}
	if !pd.Replicated {
		if d, ok := trySide(engine.ProbeSide, pd.Key); ok {
			return d
		}
	}
	return RandomDist()
}

// WithResidual attaches a residual predicate (see engine.HashJoinNode).
func (n *HashJoinNode) WithResidual(desc string, pred func(b *engine.Table, br int, p *engine.Table, pr int) bool) *HashJoinNode {
	n.residual = pred
	n.residualDesc = desc
	return n
}

func (n *HashJoinNode) Children() []Node { return []Node{n.build, n.probe} }

func (n *HashJoinNode) Label() string {
	l := "Hash Join (" + n.desc + ")"
	if n.residualDesc != "" {
		l += " Residual (" + n.residualDesc + ")"
	}
	return l
}

// Run joins every segment pair in parallel.
func (n *HashJoinNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	bt, pt := ins[0], ins[1]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("join", n.schema, n.dist)
		opts := n.cluster.engineOpts()
		segStats := make([]engine.NodeStats, n.cluster.nseg)
		segSecs, retries, err := n.cluster.forEachSegment(func(i int) error {
			var st engine.NodeStats
			t, err := engine.HashJoinTablesOpts(bt.segs[i], pt.segs[i], n.buildKeys, n.probeKeys, n.residual, n.outs, opts, &st)
			if err != nil {
				return err
			}
			out.segs[i] = t
			out.segs[i].SetName(fmt.Sprintf("join.seg%d", i))
			segStats[i] = st
			return nil
		})
		n.stats.SegSeconds = segSecs
		n.stats.Retries = retries
		mergeExecStats(&n.stats, segStats)
		if err != nil {
			return nil, err
		}
		// Joining two replicated inputs produces identical output on every
		// segment; that is exactly the replicated invariant, keep it.
		return out, nil
	})
}

// ---------------------------------------------------------------------------
// Distinct

// DistinctNode removes duplicate rows by key, segment-locally. The
// precondition mirrors the join's: equal keys must be collocated, i.e. the
// input is replicated or hashed on a tuple of columns that is a subset of
// the distinct keys.
type DistinctNode struct {
	dbase
	child Node
	keys  []int
}

// NewDistinct constructs a distributed duplicate elimination.
func NewDistinct(child Node, keys []int) *DistinctNode {
	d := child.OutDist()
	n := &DistinctNode{
		dbase: childBase(child, child.OutSchema(), d),
		child: child, keys: keys,
	}
	if n.err == nil && !d.Replicated && !subsetOf(d.Key, keys) {
		n.err = fmt.Errorf("mpp: Distinct on %v over input distributed %s: equal keys not collocated", keys, d)
	}
	return n
}

// subsetOf reports whether every element of sub appears in super; a nil
// sub (random distribution) is not a subset of anything.
func subsetOf(sub, super []int) bool {
	if sub == nil {
		return false
	}
	for _, s := range sub {
		found := false
		for _, t := range super {
			if s == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (n *DistinctNode) Children() []Node { return []Node{n.child} }
func (n *DistinctNode) Label() string {
	return fmt.Sprintf("HashAggregate (distinct on %d cols)", len(n.keys))
}

// Run deduplicates every segment in parallel.
func (n *DistinctNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("distinct", n.schema, n.dist)
		opts := n.cluster.engineOpts()
		segStats := make([]engine.NodeStats, n.cluster.nseg)
		segSecs, retries, err := n.cluster.forEachSegment(func(i int) error {
			d := engine.NewDistinct(engine.NewScan(in.segs[i]), n.keys)
			engine.Configure(d, opts)
			t, err := d.Run()
			if err != nil {
				return err
			}
			t.SetName(fmt.Sprintf("distinct.seg%d", i))
			out.segs[i] = t
			segStats[i] = *d.Stats()
			return nil
		})
		n.stats.SegSeconds = segSecs
		n.stats.Retries = retries
		mergeExecStats(&n.stats, segStats)
		return out, err
	})
}

// ---------------------------------------------------------------------------
// Group By

// GroupByNode aggregates segment-locally; the same collocation
// precondition as Distinct applies (group keys must be collocated).
type GroupByNode struct {
	dbase
	child Node
	keys  []int
	aggs  []engine.AggSpec
}

// NewGroupBy constructs a distributed aggregation.
func NewGroupBy(child Node, keys []int, aggs []engine.AggSpec) *GroupByNode {
	d := child.OutDist()
	sch := engine.GroupBySchema(child.OutSchema(), keys, aggs)
	// Key columns come first in the output; remap the input's hash key.
	var outDist Distribution
	if d.Replicated {
		outDist = ReplicatedDist()
	} else {
		mapped := make([]int, len(d.Key))
		ok := true
		for i, k := range d.Key {
			pos := -1
			for j, gk := range keys {
				if gk == k {
					pos = j
					break
				}
			}
			if pos < 0 {
				ok = false
				break
			}
			mapped[i] = pos
		}
		if ok {
			outDist = HashedBy(mapped...)
		} else {
			outDist = RandomDist()
		}
	}
	n := &GroupByNode{
		dbase: childBase(child, sch, outDist),
		child: child, keys: keys, aggs: aggs,
	}
	if n.err == nil && !d.Replicated && !subsetOf(d.Key, keys) {
		n.err = fmt.Errorf("mpp: GroupBy on %v over input distributed %s: groups not collocated", keys, d)
	}
	return n
}

func (n *GroupByNode) Children() []Node { return []Node{n.child} }
func (n *GroupByNode) Label() string {
	return fmt.Sprintf("GroupAggregate (%d keys, %d aggs)", len(n.keys), len(n.aggs))
}

// Run aggregates every segment in parallel.
func (n *GroupByNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("groupby", n.schema, n.dist)
		opts := n.cluster.engineOpts()
		segStats := make([]engine.NodeStats, n.cluster.nseg)
		segSecs, retries, err := n.cluster.forEachSegment(func(i int) error {
			var st engine.NodeStats
			t, err := engine.GroupByTableOpts(in.segs[i], n.keys, n.aggs, opts, &st)
			if err != nil {
				return err
			}
			t.SetName(fmt.Sprintf("groupby.seg%d", i))
			out.segs[i] = t
			segStats[i] = st
			return nil
		})
		n.stats.SegSeconds = segSecs
		n.stats.Retries = retries
		mergeExecStats(&n.stats, segStats)
		return out, err
	})
}
