package mpp

import (
	"context"
	"errors"
	"time"

	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

// Fault-injection and retry metrics. Retries and injected faults also
// land in the run journal (segment_fault / segment_retry events) so
// `probkb report` can show them; Canonicalize drops both types because
// their interleaving with other events is scheduling-dependent.
func init() {
	obs.Default.Help("probkb_mpp_faults_injected_total", "Segment task faults injected by the active FaultPlan, by kind.")
	obs.Default.Help("probkb_mpp_segment_retries_total", "Segment task retries after a failed attempt.")
}

// FaultPlan deterministically injects faults into segment task execution:
// plain failures, worker panics (exercising the last-resort recover in
// the task runner), and stragglers (an injected sleep). Whether a given
// (task, segment, attempt) triple faults is a pure function of the seed,
// so two runs with the same plan draw exactly the same faults regardless
// of goroutine scheduling — and because segment tasks are pure functions
// of their input partitions, retried execution is idempotent and a
// faulted run's results are byte-identical to a fault-free run's.
type FaultPlan struct {
	// Seed selects the fault sequence.
	Seed int64
	// FailRate, PanicRate and StraggleRate are per-attempt probabilities
	// in [0, 1]; they are tested in that order against one uniform draw,
	// so their sum should stay <= 1.
	FailRate     float64
	PanicRate    float64
	StraggleRate float64
	// StraggleDelay is how long an injected straggler sleeps.
	StraggleDelay time.Duration
}

// RetryPolicy bounds how often the cluster re-executes a failed segment
// task. The zero value disables retries.
type RetryPolicy struct {
	// MaxRetries is the number of re-executions after the first attempt.
	MaxRetries int
	// Backoff is the base delay before retry k (scaled linearly by k).
	Backoff time.Duration
}

type faultKind int

const (
	faultNone faultKind = iota
	faultFail
	faultPanic
	faultStraggle
)

func (k faultKind) String() string {
	switch k {
	case faultFail:
		return "fail"
	case faultPanic:
		return "panic"
	case faultStraggle:
		return "straggle"
	}
	return "none"
}

// splitmix is the splitmix64 finalizer: a cheap, well-mixed integer hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw decides what fault (if any) attempt number `attempt` of segment
// `seg`'s part of task `task` suffers. Pure: no shared RNG state, so the
// decision is independent of execution order.
func (p *FaultPlan) draw(task int64, seg, attempt int) faultKind {
	if p == nil {
		return faultNone
	}
	h := splitmix(uint64(p.Seed))
	h = splitmix(h ^ uint64(task))
	h = splitmix(h ^ uint64(seg))
	h = splitmix(h ^ uint64(attempt))
	u := float64(h>>11) / float64(uint64(1)<<53)
	switch {
	case u < p.FailRate:
		return faultFail
	case u < p.FailRate+p.PanicRate:
		return faultPanic
	case u < p.FailRate+p.PanicRate+p.StraggleRate:
		return faultStraggle
	}
	return faultNone
}

// noteFault records one injected fault in the registry and the journal.
func (c *Cluster) noteFault(task int64, seg, attempt int, kind faultKind) {
	obs.Default.Counter("probkb_mpp_faults_injected_total", obs.L("kind", kind.String())).Inc()
	c.jr.Emit(journal.TypeSegmentFault, journal.SegmentFault{
		Task: task, Segment: seg, Attempt: attempt, Kind: kind.String(),
	})
}

// noteRetry records one segment task re-execution.
func (c *Cluster) noteRetry(task int64, seg, attempt int, cause error) {
	obs.Default.Counter("probkb_mpp_segment_retries_total").Inc()
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	c.jr.Emit(journal.TypeSegmentRetry, journal.SegmentRetry{
		Task: task, Segment: seg, Attempt: attempt, Cause: msg,
	})
}

// isCtxErr reports whether err is a cancellation or deadline error;
// those are never retried — the caller asked the work to stop.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
