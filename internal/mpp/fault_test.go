package mpp

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"probkb/internal/engine"
	"probkb/internal/obs/journal"
)

// TestFaultDrawDeterminism: the fault decision is a pure function of
// (seed, task, segment, attempt) — repeated draws agree, and a different
// seed gives a different sequence.
func TestFaultDrawDeterminism(t *testing.T) {
	p := &FaultPlan{Seed: 42, FailRate: 0.2, PanicRate: 0.1, StraggleRate: 0.1}
	q := &FaultPlan{Seed: 43, FailRate: 0.2, PanicRate: 0.1, StraggleRate: 0.1}
	diff := 0
	for task := int64(1); task <= 64; task++ {
		for seg := 0; seg < 4; seg++ {
			for attempt := 0; attempt < 3; attempt++ {
				k := p.draw(task, seg, attempt)
				if k != p.draw(task, seg, attempt) {
					t.Fatalf("draw(%d,%d,%d) not deterministic", task, seg, attempt)
				}
				if k != q.draw(task, seg, attempt) {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 drew identical fault sequences")
	}
}

// TestRetryAbsorbsFaults: with injected failures and panics but a
// generous retry budget, every distributed query still completes with
// the correct result, and the injected faults land in the journal.
func TestRetryAbsorbsFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomTable(rng, "T", 200, 10)
	c := NewCluster(4)
	jr := journal.New()
	c.SetJournal(jr)
	c.SetFaults(&FaultPlan{Seed: 5, FailRate: 0.2, PanicRate: 0.1})
	c.SetRetry(RetryPolicy{MaxRetries: 10, Backoff: 0})
	d := c.Distribute(base, []int{0})

	keep := func(*engine.Table, int) bool { return true }
	for i := 0; i < 20; i++ {
		out, err := NewFilter(NewScan(d), "true", keep).Run()
		if err != nil {
			t.Fatalf("query %d failed despite retries: %v", i, err)
		}
		if out.NumRows() != base.NumRows() {
			t.Fatalf("query %d: %d rows, want %d", i, out.NumRows(), base.NumRows())
		}
	}
	var faults, retries int
	for _, ev := range jr.Events() {
		switch ev.Type {
		case journal.TypeSegmentFault:
			faults++
		case journal.TypeSegmentRetry:
			retries++
		}
	}
	if faults == 0 || retries == 0 {
		t.Fatalf("journal recorded %d faults, %d retries; expected both > 0", faults, retries)
	}
}

// TestInjectedPanicBecomesError: with panics on every attempt and no
// retries, the runner's recover converts the worker panic into a
// per-segment error instead of crashing the process.
func TestInjectedPanicBecomesError(t *testing.T) {
	base := twoColTable("T", []int32{1, 2, 3}, []int32{4, 5, 6})
	c := NewCluster(2)
	c.SetFaults(&FaultPlan{Seed: 3, PanicRate: 1})
	d := c.Distribute(base, []int{0})
	_, err := NewFilter(NewScan(d), "true", func(*engine.Table, int) bool { return true }).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a recovered panic error", err)
	}
}

// TestClusterContextCancel: a dead context stops segment tasks before
// they run and is never retried.
func TestClusterContextCancel(t *testing.T) {
	base := twoColTable("T", []int32{1, 2, 3}, []int32{4, 5, 6})
	c := NewCluster(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.SetContext(ctx)
	c.SetRetry(RetryPolicy{MaxRetries: 5, Backoff: time.Second})
	d := c.Distribute(base, []int{0})
	start := time.Now()
	_, err := NewFilter(NewScan(d), "true", func(*engine.Table, int) bool { return true }).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must not burn the retry budget (5 retries x 1s backoff
	// would blow this bound).
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled query took %v", elapsed)
	}
}

// TestStragglerDelaysButCompletes: injected stragglers slow a task down
// without failing it.
func TestStragglerDelaysButCompletes(t *testing.T) {
	base := twoColTable("T", []int32{1, 2, 3}, []int32{4, 5, 6})
	c := NewCluster(2)
	c.SetFaults(&FaultPlan{Seed: 9, StraggleRate: 1, StraggleDelay: time.Millisecond})
	d := c.Distribute(base, []int{0})
	out, err := NewFilter(NewScan(d), "true", func(*engine.Table, int) bool { return true }).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != base.NumRows() {
		t.Fatalf("rows = %d, want %d", out.NumRows(), base.NumRows())
	}
}
