package mpp

import (
	"bytes"
	"path/filepath"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/store"
	"probkb/internal/store/crashtest"
)

// factsTable builds a small Int32 relation with rows 0..n-1 keyed on
// the first column.
func factsTable(name string, n, base int) *engine.Table {
	t := engine.NewTable(name, engine.NewSchema(
		engine.C("x", engine.Int32), engine.C("y", engine.Int32),
	))
	for i := 0; i < n; i++ {
		t.AppendRow(int32(base+i), int32(2*(base+i)))
	}
	return t
}

// dumpDist renders every segment's shard as canonical snapshot bytes —
// the bitwise-equality yardstick for recovered clusters.
func dumpDist(d *DistTable) []byte {
	var buf bytes.Buffer
	for _, s := range d.segs {
		buf.Write(store.EncodeTables([]*engine.Table{s}))
	}
	return buf.Bytes()
}

func TestDistStoreRoundTrip(t *testing.T) {
	for _, replicated := range []bool{false, true} {
		name := "hashed"
		if replicated {
			name = "replicated"
		}
		t.Run(name, func(t *testing.T) {
			fs := store.OSFS{}
			dir := filepath.Join(t.TempDir(), "dist")
			c := NewCluster(3)
			base := factsTable("T", 17, 0)
			var d *DistTable
			if replicated {
				d = c.Replicate(base)
			} else {
				d = c.Distribute(base, []int{0})
			}
			ds, err := CreateDistStore(fs, dir, d)
			if err != nil {
				t.Fatal(err)
			}
			// Two durable deltas, one of them empty on some segments.
			grown := base.Clone()
			grown.AppendRow(int32(100), int32(200))
			grown.AppendRow(int32(101), int32(202))
			if err := ds.AppendFrom(grown, 17); err != nil {
				t.Fatal(err)
			}
			grown.AppendRow(int32(102), int32(204))
			if err := ds.AppendFrom(grown, 19); err != nil {
				t.Fatal(err)
			}
			want := dumpDist(ds.Table())
			wantRows := ds.Table().NumRows()
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenDistStore(fs, dir, NewCluster(3))
			if err != nil {
				t.Fatalf("OpenDistStore: %v", err)
			}
			defer re.Close()
			if got := dumpDist(re.Table()); !bytes.Equal(want, got) {
				t.Fatal("recovered shards differ from the live cluster")
			}
			if re.Table().NumRows() != wantRows {
				t.Fatalf("recovered %d rows, want %d", re.Table().NumRows(), wantRows)
			}
			if re.Seq() != 2 {
				t.Fatalf("recovered seq %d, want 2", re.Seq())
			}
			if re.Table().Dist().String() != d.Dist().String() {
				t.Fatalf("recovered distribution %v, want %v", re.Table().Dist(), d.Dist())
			}
			// Appends resume with the recovered sequence.
			grown.AppendRow(int32(103), int32(206))
			if err := re.AppendFrom(grown, 20); err != nil {
				t.Fatal(err)
			}
			if re.Seq() != 3 {
				t.Fatalf("resumed seq %d, want 3", re.Seq())
			}
		})
	}
}

func TestDistStoreWrongClusterSize(t *testing.T) {
	fs := store.OSFS{}
	dir := filepath.Join(t.TempDir(), "dist")
	ds, err := CreateDistStore(fs, dir, NewCluster(3).Distribute(factsTable("T", 9, 0), []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
	if _, err := OpenDistStore(fs, dir, NewCluster(4)); err == nil {
		t.Fatal("recovery onto a different-size cluster must fail, not redistribute silently")
	}
}

func TestDistStoreRejectsRandomDistribution(t *testing.T) {
	c := NewCluster(2)
	d := c.newDistTable("T", engine.NewSchema(engine.C("x", engine.Int32)), RandomDist())
	if _, err := CreateDistStore(store.OSFS{}, filepath.Join(t.TempDir(), "d"), d); err == nil {
		t.Fatal("persisting a randomly distributed table must fail")
	}
}

// TestDistStoreTornTailTruncation crashes an append after some segment
// WALs got the record and others did not: recovery must roll every
// segment back to the last delta durable on all of them.
func TestDistStoreTornTailTruncation(t *testing.T) {
	fs := crashtest.NewMemFS()
	c := NewCluster(3)
	base := factsTable("T", 17, 0)
	ds, err := CreateDistStore(fs, "dist", c.Distribute(base, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	grown := base.Clone()
	grown.AppendRow(int32(100), int32(200))
	grown.AppendRow(int32(101), int32(202))
	if err := ds.AppendFrom(grown, 17); err != nil {
		t.Fatal(err)
	}
	oracle := dumpDist(ds.Table())

	// Second delta: give the byte budget roughly one record, so some
	// segment WAL writes land while another tears mid-record.
	fs.Arm(100, -1, crashtest.KeepTorn)
	grown.AppendRow(int32(102), int32(204))
	if err := ds.AppendFrom(grown, 19); err == nil {
		t.Fatal("expected the torn append to fail")
	}

	re, err := OpenDistStore(fs.DurableView(), "dist", NewCluster(3))
	if err != nil {
		t.Fatalf("recovery after torn append: %v", err)
	}
	defer re.Close()
	if re.Seq() != 1 {
		t.Fatalf("recovered seq %d, want 1 (the torn delta must be rolled back)", re.Seq())
	}
	if got := dumpDist(re.Table()); !bytes.Equal(oracle, got) {
		t.Fatal("recovered shards differ from the pre-crash durable state")
	}
}

// TestDistStoreCheckpointCrashWindows checkpoints, then verifies that a
// recovery from every op-budget crash window around Checkpoint yields
// either the pre-checkpoint or post-checkpoint durable state — both of
// which dump identically, since checkpoints never change table content.
func TestDistStoreCheckpointCrashWindows(t *testing.T) {
	// Clean run to count FS ops.
	run := func(fs *crashtest.MemFS) (string, error) {
		c := NewCluster(2)
		base := factsTable("T", 9, 0)
		ds, err := CreateDistStore(fs, "dist", c.Distribute(base, []int{0}))
		if err != nil {
			return "", err
		}
		defer ds.Close()
		grown := base.Clone()
		grown.AppendRow(int32(100), int32(200))
		if err := ds.AppendFrom(grown, 9); err != nil {
			return "", err
		}
		if err := ds.Checkpoint(); err != nil {
			return "", err
		}
		grown.AppendRow(int32(101), int32(202))
		if err := ds.AppendFrom(grown, 10); err != nil {
			return "", err
		}
		return string(dumpDist(ds.Table())), nil
	}
	clean := crashtest.NewMemFS()
	finalDump, err := run(clean)
	if err != nil {
		t.Fatal(err)
	}
	totalOps := clean.Ops()

	for opN := int64(1); opN <= totalOps; opN++ {
		fs := crashtest.NewMemFS()
		fs.Arm(-1, opN, crashtest.KeepTorn)
		_, runErr := run(fs)
		re, err := OpenDistStore(fs.DurableView(), "dist", NewCluster(2))
		if err != nil {
			// Before the first snapshots are complete there is nothing to
			// recover; that window must be before any append succeeded.
			if runErr == nil {
				t.Fatalf("op %d: clean run but recovery failed: %v", opN, err)
			}
			continue
		}
		// Whatever the window, the recovered table must be a delta-atomic
		// prefix: seq ∈ {0, 1, 2} and the dump must match a clean run cut
		// at that sequence.
		got := dumpDist(re.Table())
		switch re.Seq() {
		case 0:
			if re.Table().NumRows() != 9 {
				t.Fatalf("op %d: seq 0 with %d rows", opN, re.Table().NumRows())
			}
		case 1:
			if re.Table().NumRows() != 10 {
				t.Fatalf("op %d: seq 1 with %d rows", opN, re.Table().NumRows())
			}
		case 2:
			if string(got) != finalDump {
				t.Fatalf("op %d: seq 2 dump differs from the clean run", opN)
			}
		default:
			t.Fatalf("op %d: impossible recovered seq %d", opN, re.Seq())
		}
		re.Close()
	}
}
