package mpp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"probkb/internal/engine"
	"probkb/internal/store"
)

// Distributed persistence: a DistStore makes one DistTable durable as
// per-segment files in a directory — each segment owns a columnar
// snapshot of its local shard plus an append-only WAL of the row deltas
// appended since. Segments persist and recover in parallel, and the
// snapshot records the table's distribution, so a recovered cluster
// resumes with every row already on its hash-correct segment: no
// redistribution motion is ever needed after recovery.
//
// Cross-segment consistency uses aligned WALs: every appended delta
// gets one record (possibly with zero rows) in every segment's WAL,
// all carrying the same sequence number. A crash can tear the tails
// unevenly; recovery computes the highest sequence durable on *every*
// segment and truncates all WALs back to it, so the recovered table is
// always a delta-atomic prefix of the append history. Snapshots written
// by Checkpoint record the sequence they cover; a checkpoint that
// crashes half-way leaves some segments on the new snapshot and some on
// the old WAL, which recovery reconciles by replaying each segment only
// between its own snapshot sequence and the common durable sequence.

// Per-segment file names inside a DistStore directory.
func segSnapName(i int) string { return fmt.Sprintf("seg-%03d.pks", i) }
func segWALName(i int) string  { return fmt.Sprintf("seg-%03d.wal", i) }

// segMetaName is the per-segment metadata table stored ahead of the
// shard data in each snapshot file.
const segMetaName = "segmeta"

// segMetaVersion is the logical layout version of DistStore snapshots.
const segMetaVersion = 1

func segMetaSchema() engine.Schema {
	return engine.NewSchema(
		engine.C("key", engine.String),
		engine.C("ival", engine.Int32),
		engine.C("sval", engine.String),
	)
}

// DistStore is a durable DistTable. It is not safe for concurrent use;
// callers serialize appends, as the grounding loop already does.
type DistStore struct {
	fs   store.FS
	dir  string
	d    *DistTable
	wals []store.File
	seq  uint64 // sequence of the last durable delta
}

// Table returns the live distributed table. Callers must treat it as
// read-only; mutations go through AppendFrom.
func (s *DistStore) Table() *DistTable { return s.d }

// Seq returns the sequence number of the last durable delta.
func (s *DistStore) Seq() uint64 { return s.seq }

// parallelSegs runs f(i) for every segment concurrently and returns the
// first error.
func parallelSegs(n int, f func(i int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// segMetaTable renders segment i's metadata rows.
func (s *DistStore) segMetaTable(i int, baseSeq uint64) *engine.Table {
	keys, ivals, svals := []string{"format", "nseg", "seg", "replicated", "seqlo", "seqhi", "name"},
		[]int32{segMetaVersion, int32(len(s.d.segs)), int32(i), 0, int32(baseSeq & 0xffffffff), int32(baseSeq >> 32), 0},
		[]string{"", "", "", "", "", "", s.d.name}
	if s.d.dist.Replicated {
		ivals[3] = 1
	}
	for k, col := range s.d.dist.Key {
		keys = append(keys, fmt.Sprintf("key%d", k))
		ivals = append(ivals, int32(col))
		svals = append(svals, "")
	}
	return engine.TableFromColumns(segMetaName, segMetaSchema(), keys, ivals, svals)
}

// writeSegSnapshot atomically replaces segment i's snapshot file,
// recording baseSeq as the sequence the shard data already includes.
func (s *DistStore) writeSegSnapshot(i int, baseSeq uint64) error {
	data := store.EncodeTables([]*engine.Table{s.segMetaTable(i, baseSeq), s.d.segs[i]})
	return store.WriteAtomic(s.fs, s.dir, segSnapName(i), data)
}

// CreateDistStore initializes dir (created if missing) with per-segment
// snapshots of d and empty per-segment WALs, written in parallel. The
// store takes ownership of d: further mutations must go through
// AppendFrom so they are logged.
func CreateDistStore(fs store.FS, dir string, d *DistTable) (*DistStore, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.dist.Random() {
		return nil, fmt.Errorf("mpp: cannot persist randomly distributed table %s", d.name)
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &DistStore{fs: fs, dir: dir, d: d, wals: make([]store.File, len(d.segs))}
	err := parallelSegs(len(d.segs), func(i int) error {
		if err := s.writeSegSnapshot(i, 0); err != nil {
			return err
		}
		w, err := fs.Create(s.dir + "/" + segWALName(i))
		if err != nil {
			return err
		}
		if err := w.Sync(); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if err := fs.SyncDir(s.dir); err != nil {
			return err
		}
		s.wals[i], err = fs.Append(s.dir + "/" + segWALName(i))
		return err
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// encodeSegRecord renders one aligned WAL record: the delta sequence
// number followed by the segment's (possibly empty) slice of the delta.
func encodeSegRecord(seq uint64, delta *engine.Table) []byte {
	var p bytes.Buffer
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	p.Write(b[:])
	p.Write(store.EncodeTables([]*engine.Table{delta}))
	return store.EncodeBlob(p.Bytes())
}

// decodeSegRecord parses one WAL record payload.
func decodeSegRecord(payload []byte) (seq uint64, delta *engine.Table, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("mpp: segment WAL record too short (%d bytes)", len(payload))
	}
	seq = binary.LittleEndian.Uint64(payload[:8])
	tables, err := store.DecodeTables(payload[8:])
	if err != nil {
		return 0, nil, err
	}
	if len(tables) != 1 {
		return 0, nil, fmt.Errorf("mpp: segment WAL record holds %d tables, want 1", len(tables))
	}
	return seq, tables[0], nil
}

// AppendFrom durably appends rows [from, t.NumRows()) of t to the
// distributed table: the delta is scattered by the table's distribution
// (or replicated), each segment's slice is WAL-appended and fsynced in
// parallel, and only then applied to the in-memory shards. Every
// segment logs a record for every delta — empty slices included — so
// the WALs stay sequence-aligned for recovery. Durable when it returns.
func (s *DistStore) AppendFrom(t *engine.Table, from int) error {
	if s.wals == nil {
		return fmt.Errorf("mpp: dist store closed")
	}
	n := t.NumRows()
	if from >= n {
		return nil
	}
	rows := make([]int32, 0, n-from)
	for r := from; r < n; r++ {
		rows = append(rows, int32(r))
	}
	delta := engine.NewTable("delta", s.d.schema)
	delta.AppendRowsFrom(t, rows)

	nseg := len(s.d.segs)
	parts := make([]*engine.Table, nseg)
	for i := range parts {
		parts[i] = engine.NewTable("delta", s.d.schema)
	}
	if s.d.Replicated() {
		for i := range parts {
			parts[i].AppendTable(delta)
		}
	} else {
		perSeg := make([][]int32, nseg)
		for r := 0; r < delta.NumRows(); r++ {
			seg := segmentOf(delta, r, s.d.dist.Key, nseg)
			perSeg[seg] = append(perSeg[seg], int32(r))
		}
		for i, segRows := range perSeg {
			if len(segRows) > 0 {
				parts[i].AppendRowsFrom(delta, segRows)
			}
		}
	}

	seq := s.seq + 1
	err := parallelSegs(nseg, func(i int) error {
		if _, err := s.wals[i].Write(encodeSegRecord(seq, parts[i])); err != nil {
			return err
		}
		return s.wals[i].Sync()
	})
	if err != nil {
		return err
	}
	for i, part := range parts {
		if part.NumRows() > 0 {
			s.d.segs[i].AppendTable(part)
		}
	}
	s.seq = seq
	return nil
}

// Checkpoint rewrites every segment's snapshot at the current sequence
// (in parallel) and resets the WALs. Crash-safe: a half-finished
// checkpoint leaves a mix of new snapshots and old snapshot+WAL pairs,
// and recovery replays each segment only from its own snapshot's
// sequence, so every mix recovers to the same table.
func (s *DistStore) Checkpoint() error {
	if s.wals == nil {
		return fmt.Errorf("mpp: dist store closed")
	}
	if err := parallelSegs(len(s.d.segs), func(i int) error {
		return s.writeSegSnapshot(i, s.seq)
	}); err != nil {
		return err
	}
	// The snapshots cover everything; the WAL records are now stale
	// (their sequences are ≤ the snapshot's) and can be dropped. A crash
	// between the snapshot writes and these truncations is fine: replay
	// skips records at or below the snapshot sequence.
	return parallelSegs(len(s.d.segs), func(i int) error {
		return s.fs.Truncate(s.dir+"/"+segWALName(i), 0)
	})
}

// segRecovery is one segment's recovered state before cross-segment
// reconciliation.
type segRecovery struct {
	baseSeq    uint64
	data       *engine.Table
	recs       []segRec
	durableSeq uint64
	name       string
	nseg       int
	replicated bool
	key        []int
}

type segRec struct {
	seq   uint64
	delta *engine.Table
	end   int64 // byte offset just past this record in the WAL
}

// readSegMeta validates and decodes a segment snapshot's metadata.
func readSegMeta(t *engine.Table) (*segRecovery, error) {
	if t.Name() != segMetaName || t.Schema().NumCols() != 3 {
		return nil, fmt.Errorf("mpp: segment snapshot starts with %q, want %q", t.Name(), segMetaName)
	}
	keys, ivals, svals := t.StringCol(0), t.Int32Col(1), t.StringCol(2)
	rec := &segRecovery{}
	var lo, hi uint32
	kcols := map[int]int32{}
	for r := 0; r < t.NumRows(); r++ {
		switch k := keys[r]; k {
		case "format":
			if ivals[r] != segMetaVersion {
				return nil, fmt.Errorf("mpp: segment snapshot format %d, want %d", ivals[r], segMetaVersion)
			}
		case "nseg":
			rec.nseg = int(ivals[r])
		case "seg":
		case "replicated":
			rec.replicated = ivals[r] != 0
		case "seqlo":
			lo = uint32(ivals[r])
		case "seqhi":
			hi = uint32(ivals[r])
		case "name":
			rec.name = svals[r]
		default:
			var idx int
			if _, err := fmt.Sscanf(k, "key%d", &idx); err != nil {
				return nil, fmt.Errorf("mpp: unknown segment meta key %q", k)
			}
			kcols[idx] = ivals[r]
		}
	}
	rec.baseSeq = uint64(hi)<<32 | uint64(lo)
	if rec.nseg < 1 {
		return nil, fmt.Errorf("mpp: segment snapshot declares %d segments", rec.nseg)
	}
	for i := 0; i < len(kcols); i++ {
		col, ok := kcols[i]
		if !ok {
			return nil, fmt.Errorf("mpp: segment meta missing key%d", i)
		}
		rec.key = append(rec.key, int(col))
	}
	if !rec.replicated && len(rec.key) == 0 {
		return nil, fmt.Errorf("mpp: segment snapshot has neither a distribution key nor the replicated flag")
	}
	return rec, nil
}

// recoverSegment loads one segment's snapshot and the durable prefix of
// its WAL.
func recoverSegment(fs store.FS, dir string, i int) (*segRecovery, error) {
	raw, err := fs.ReadFile(dir + "/" + segSnapName(i))
	if err != nil {
		return nil, fmt.Errorf("mpp: segment %d snapshot: %w", i, err)
	}
	tables, err := store.DecodeTables(raw)
	if err != nil {
		return nil, fmt.Errorf("mpp: segment %d snapshot: %w", i, err)
	}
	if len(tables) != 2 {
		return nil, fmt.Errorf("mpp: segment %d snapshot holds %d tables, want 2", i, len(tables))
	}
	rec, err := readSegMeta(tables[0])
	if err != nil {
		return nil, err
	}
	rec.data = tables[1]
	rec.durableSeq = rec.baseSeq

	walPath := dir + "/" + segWALName(i)
	if ok, err := fs.Exists(walPath); err != nil {
		return nil, err
	} else if ok {
		data, err := fs.ReadFile(walPath)
		if err != nil {
			return nil, err
		}
		payloads, _, err := store.DecodeBlobs(data)
		if err != nil {
			return nil, err
		}
		off := int64(0)
		for _, p := range payloads {
			off += int64(len(p)) + 8
			seq, delta, err := decodeSegRecord(p)
			if err != nil {
				return nil, fmt.Errorf("mpp: segment %d WAL: %w", i, err)
			}
			rec.recs = append(rec.recs, segRec{seq: seq, delta: delta, end: off})
			if seq > rec.durableSeq {
				rec.durableSeq = seq
			}
		}
	}
	return rec, nil
}

// OpenDistStore recovers the DistTable persisted in dir onto cluster c,
// all segments in parallel. The common durable sequence is the highest
// delta every segment holds; later records (torn tails of a crash) are
// truncated away, and each segment replays only the records between its
// own snapshot's sequence and the common one. The recovered table keeps
// its recorded distribution, so no redistribution runs afterwards.
func OpenDistStore(fs store.FS, dir string, c *Cluster) (*DistStore, error) {
	if c.err != nil {
		return nil, c.err
	}
	recs := make([]*segRecovery, c.nseg)
	if err := parallelSegs(c.nseg, func(i int) error {
		r, err := recoverSegment(fs, dir, i)
		if err == nil {
			recs[i] = r
			// A crash can leave a stale temp file next to any segment.
			if ok, _ := fs.Exists(dir + "/" + segSnapName(i) + ".tmp"); ok {
				_ = fs.Remove(dir + "/" + segSnapName(i) + ".tmp")
				_ = fs.SyncDir(dir)
			}
		}
		return err
	}); err != nil {
		return nil, err
	}

	// Cross-segment reconciliation: the durable sequence is the minimum
	// over segments; everything later is a torn multi-segment append.
	common := recs[0].durableSeq
	for i, r := range recs {
		if r.nseg != c.nseg {
			return nil, fmt.Errorf("mpp: store has %d segments, cluster has %d", r.nseg, c.nseg)
		}
		if r.name != recs[0].name || r.replicated != recs[0].replicated || !keysEqual(r.key, recs[0].key) {
			return nil, fmt.Errorf("mpp: segment %d metadata disagrees with segment 0", i)
		}
		if r.durableSeq < common {
			common = r.durableSeq
		}
	}
	for i, r := range recs {
		if r.baseSeq > common {
			return nil, fmt.Errorf("mpp: segment %d snapshot at sequence %d is past the common durable sequence %d",
				i, r.baseSeq, common)
		}
	}

	dist := ReplicatedDist()
	if !recs[0].replicated {
		dist = HashedBy(recs[0].key...)
	}
	d := c.newDistTable(recs[0].name, recs[0].data.Schema(), dist)
	s := &DistStore{fs: fs, dir: dir, d: d, wals: make([]store.File, c.nseg), seq: common}
	if err := parallelSegs(c.nseg, func(i int) error {
		r := recs[i]
		d.segs[i].AppendTable(r.data)
		keep := int64(0)
		for _, rec := range r.recs {
			if rec.seq > common {
				break
			}
			keep = rec.end
			if rec.seq > r.baseSeq && rec.delta.NumRows() > 0 {
				d.segs[i].AppendTable(rec.delta)
			}
		}
		walPath := dir + "/" + segWALName(i)
		if ok, _ := fs.Exists(walPath); ok {
			if err := fs.Truncate(walPath, keep); err != nil {
				return err
			}
		}
		var err error
		s.wals[i], err = fs.Append(walPath)
		return err
	}); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Close releases the per-segment WAL handles; the store stays
// recoverable at its last durable sequence.
func (s *DistStore) Close() error {
	if s.wals == nil {
		return nil
	}
	var first error
	for _, w := range s.wals {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.wals = nil
	return first
}
