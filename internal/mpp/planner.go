package mpp

import (
	"fmt"
	"strings"

	"probkb/internal/engine"
)

// Views is the registry of redistributed materialized views (Section 4.4
// of the paper). Each view is a full copy of a base distributed table,
// hash-distributed by a different key tuple so that joins on that tuple
// need no motion. The paper creates views of TΠ distributed by
// (R,C1,C2), (R,C1,x,C2), (R,C1,C2,y), and (R,C1,x,C2,y); the grounder
// registers exactly those.
type Views struct {
	cluster *Cluster
	byBase  map[string][]*DistTable
}

// NewViews returns an empty view registry for the cluster.
func NewViews(c *Cluster) *Views {
	return &Views{cluster: c, byBase: make(map[string][]*DistTable)}
}

// Materialize creates (or refreshes) the view of base distributed by key
// and registers it under base's name. Refreshing replaces the previous
// copy for that key. A placement mistake (empty key, invalid cluster)
// is deferred onto the returned view's Err.
func (v *Views) Materialize(base *DistTable, key []int) *DistTable {
	full := Gather(base)
	view := v.cluster.Distribute(full, key)
	view.SetName(fmt.Sprintf("%s_by%s", base.Name(), keyString(key)))
	list := v.byBase[base.Name()]
	for i, old := range list {
		if keysEqual(old.dist.Key, view.dist.Key) {
			list[i] = view
			v.byBase[base.Name()] = list
			return view
		}
	}
	v.byBase[base.Name()] = append(list, view)
	return view
}

// Lookup returns the registered view of the named base table distributed
// by key, if one exists.
func (v *Views) Lookup(baseName string, key []int) (*DistTable, bool) {
	for _, view := range v.byBase[baseName] {
		if keysEqual(view.dist.Key, key) {
			return view, true
		}
	}
	return nil, false
}

// AppendFrom incrementally maintains every view of the named base table
// with rows [from, t.NumRows()) of the master copy t, returning the
// first maintenance error.
func (v *Views) AppendFrom(baseName string, t *engine.Table, from int) error {
	for _, view := range v.byBase[baseName] {
		if err := view.AppendFrom(t, from); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of registered views.
func (v *Views) Count() int {
	n := 0
	for _, l := range v.byBase {
		n += len(l)
	}
	return n
}

func keyString(key []int) string {
	parts := make([]string, len(key))
	for i, k := range key {
		parts[i] = fmt.Sprint(k)
	}
	return "_" + strings.Join(parts, "_")
}

// PlanJoin builds a distributed hash-join plan over build and probe,
// inserting whatever motions (or view substitutions) are needed to make
// the inputs collocated. It is the paper's Example 5 planner:
//
//  1. If an input is replicated, or both inputs are already hashed on the
//     join keys, join directly — no motion.
//  2. If an input is a base-table scan and views holds a copy of that
//     table distributed by the join key, scan the view instead — no
//     motion (the optimized plan of Figure 4).
//  3. If one input is hashed on its join keys, redistribute the other.
//  4. Otherwise broadcast the build side — by convention the grounding
//     queries put the smaller input (rule table or intermediate result)
//     on the build side, so this reproduces the expensive Broadcast
//     Motion of Figure 4's unoptimized plan.
//
// views may be nil to disable view substitution (the ProbKB-pn
// configuration in Figure 6(c)).
func PlanJoin(build, probe Node, buildKeys, probeKeys []int, outs []engine.JoinOut, desc string, views *Views) Node {
	bd, pd := build.OutDist(), probe.OutDist()

	buildOK := bd.Replicated || keysEqual(bd.Key, buildKeys)
	probeOK := pd.Replicated || keysEqual(pd.Key, probeKeys)

	// Try view substitution before paying for a motion.
	if !buildOK && views != nil {
		if s, ok := build.(*ScanNode); ok {
			if view, found := views.Lookup(s.d.Name(), buildKeys); found {
				build = NewScan(view)
				buildOK = true
			}
		}
	}
	if !probeOK && views != nil {
		if s, ok := probe.(*ScanNode); ok {
			if view, found := views.Lookup(s.d.Name(), probeKeys); found {
				probe = NewScan(view)
				probeOK = true
			}
		}
	}

	switch {
	case buildOK && probeOK:
		// Collocated (possibly via replication); join directly.
	case buildOK:
		probe = NewRedistribute(probe, probeKeys)
	case probeOK:
		build = NewRedistribute(build, buildKeys)
	default:
		// Neither side placed usefully: broadcast the (conventionally
		// smaller) build side.
		build = NewBroadcast(build)
	}
	return NewHashJoin(build, probe, buildKeys, probeKeys, outs, desc)
}

// EnsureDistributedBy returns a plan whose output is hash-distributed by
// key, inserting a Redistribute motion if the input is not already placed
// that way. Replicated inputs pass through unchanged (every segment
// already has all rows).
func EnsureDistributedBy(n Node, key []int) Node {
	d := n.OutDist()
	if d.Replicated || keysEqual(d.Key, key) {
		return n
	}
	return NewRedistribute(n, key)
}
