package mpp

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"probkb/internal/engine"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden EXPLAIN files")

// timeRe matches the only nondeterministic part of an EXPLAIN line.
var timeRe = regexp.MustCompile(`time=[^ )]+`)

func normalizeExplain(s string) string {
	return timeRe.ReplaceAllString(s, "time=T")
}

// goldenTables builds the grounding-shaped fixture: a facts table T
// (fact id, class pair, argument, weight) and a small MLN partition M1
// (head class, body class, rule weight).
func goldenTables() (facts, mln *engine.Table) {
	rng := rand.New(rand.NewSource(1))
	facts = engine.NewTable("T", engine.NewSchema(
		engine.C("i", engine.Int32), engine.C("c1", engine.Int32),
		engine.C("j", engine.Int32), engine.C("c2", engine.Int32),
		engine.C("w", engine.Float64)))
	for r := 0; r < 300; r++ {
		facts.AppendRow(int32(r), rng.Int31n(8), rng.Int31n(50), rng.Int31n(8), rng.Float64())
	}
	mln = engine.NewTable("M1", engine.NewSchema(
		engine.C("h", engine.Int32), engine.C("b", engine.Int32),
		engine.C("wr", engine.Float64)))
	for r := 0; r < 24; r++ {
		mln.AppendRow(rng.Int31n(8), rng.Int31n(8), rng.Float64())
	}
	return facts, mln
}

// goldenOpts pins the execution shape the golden files encode: 4 workers
// over 64-row morsels regardless of the host's CPU count.
var goldenOpts = engine.Opts{Workers: 4, MorselSize: 64}

// goldenPlans returns the three representative grounding plans, each as
// a (single-node builder, distributed builder) pair over the fixture.
//
//   - rule-join: MLN partition joined against the facts by body class,
//     deduplicated — the batch rule application at the heart of the
//     paper's grounding (Figure 3); distributed, it needs motions.
//   - delta-candidates: filter + project + distinct over the facts — the
//     semi-naive delta step; distributed it is motion-free because the
//     distinct keys contain the distribution key.
//   - qc-stats: per-class aggregates over the facts — the quality-control
//     profile; collocated aggregation, no motion.
func goldenPlans() []struct {
	name   string
	engine func(facts, mln *engine.Table) engine.Node
	mpp    func(cl *Cluster, facts, mln *engine.Table) Node
} {
	joinOuts := []engine.JoinOut{
		engine.ProbeCol("i", 0), engine.BuildCol("h", 0), engine.BuildCol("wr", 2),
	}
	highClass := func(t *engine.Table, row int) bool { return t.Int32Col(3)[row] > 3 }
	projExprs := []engine.OutExpr{engine.ColExpr("i", 0), engine.ColExpr("c1", 1)}
	qcAggs := []engine.AggSpec{
		{Kind: engine.AggCount, Name: "n"},
		{Kind: engine.AggCountDistinct, Col: 2, Name: "args"},
		{Kind: engine.AggMinF64, Col: 4, Name: "wmin"},
		{Kind: engine.AggSumF64, Col: 4, Name: "wsum"},
	}
	return []struct {
		name   string
		engine func(facts, mln *engine.Table) engine.Node
		mpp    func(cl *Cluster, facts, mln *engine.Table) Node
	}{
		{
			name: "rule-join",
			engine: func(facts, mln *engine.Table) engine.Node {
				j := engine.NewHashJoin(engine.NewScan(mln), engine.NewScan(facts),
					[]int{1}, []int{1}, joinOuts, "M1.b = T.c1")
				return engine.NewDistinct(j, []int{0, 1})
			},
			mpp: func(cl *Cluster, facts, mln *engine.Table) Node {
				build := NewScan(cl.Distribute(mln, []int{0}))
				probe := NewScan(cl.Distribute(facts, []int{1}))
				j := PlanJoin(build, probe, []int{1}, []int{1}, joinOuts, "M1.b = T.c1", nil)
				return NewDistinct(EnsureDistributedBy(j, []int{0}), []int{0, 1})
			},
		},
		{
			name: "delta-candidates",
			engine: func(facts, mln *engine.Table) engine.Node {
				f := engine.NewFilter(engine.NewScan(facts), "c2 > 3", highClass)
				return engine.NewDistinct(engine.NewProject(f, projExprs...), []int{0, 1})
			},
			mpp: func(cl *Cluster, facts, mln *engine.Table) Node {
				f := NewFilter(NewScan(cl.Distribute(facts, []int{1})), "c2 > 3", highClass)
				return NewDistinct(NewProject(f, projExprs...), []int{0, 1})
			},
		},
		{
			name: "qc-stats",
			engine: func(facts, mln *engine.Table) engine.Node {
				return engine.NewGroupBy(engine.NewScan(facts), []int{1}, qcAggs)
			},
			mpp: func(cl *Cluster, facts, mln *engine.Table) Node {
				return NewGroupBy(NewScan(cl.Distribute(facts, []int{1})), []int{1}, qcAggs)
			},
		},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output changed (rerun with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenExplain pins the EXPLAIN output — operator tree, row counts,
// motion volumes, and the worker/morsel annotations of the morsel-parallel
// engine — for three representative grounding plans, single-node and
// distributed. Times are normalized; everything else must be stable.
// Refresh with: go test ./internal/mpp -run TestGoldenExplain -update
func TestGoldenExplain(t *testing.T) {
	for _, p := range goldenPlans() {
		t.Run(p.name+"/engine", func(t *testing.T) {
			facts, mln := goldenTables()
			plan := p.engine(facts, mln)
			engine.Configure(plan, goldenOpts)
			if _, err := plan.Run(); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "explain_"+p.name+"_engine", normalizeExplain(engine.Explain(plan)))
		})
		t.Run(p.name+"/mpp", func(t *testing.T) {
			facts, mln := goldenTables()
			cl := NewCluster(2)
			cl.SetWorkers(goldenOpts.Workers)
			cl.SetMorselSize(goldenOpts.MorselSize)
			plan := p.mpp(cl, facts, mln)
			if _, err := plan.Run(); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "explain_"+p.name+"_mpp", normalizeExplain(Explain(plan)))
		})
	}
}

// execNoteRe strips the whole worker/morsel annotation when comparing
// runs at DIFFERENT worker counts: workers=1 takes the serial path (no
// parallel region, no annotation at all), so the note can't be part of
// the cross-worker invariant. The per-worker-count golden files keep
// it — that is where morsel counts are pinned.
var execNoteRe = regexp.MustCompile(` workers=\d+ morsels=\d+`)

// TestGoldenExplainAnalyze pins the EXPLAIN ANALYZE output — actual
// rows, estimate/error annotations, output bytes, morsel counts,
// per-segment rows, and motion volumes — for the same three grounding
// plans, single-node and distributed, at 1 and 8 workers. Only the
// time= field is normalized: everything else, including mem= and
// morsels=, must be bit-stable for a fixed fixture.
// Refresh with: go test ./internal/mpp -run TestGoldenExplainAnalyze -update
func TestGoldenExplainAnalyze(t *testing.T) {
	for _, workers := range []int{1, 8} {
		opts := engine.Opts{Workers: workers, MorselSize: 64}
		suffix := fmt.Sprintf("_w%d", workers)
		for _, p := range goldenPlans() {
			t.Run(fmt.Sprintf("%s/engine/w%d", p.name, workers), func(t *testing.T) {
				facts, mln := goldenTables()
				plan := p.engine(facts, mln)
				// Stamp a plausible estimate on the root so the golden
				// pins the est=/off= rendering alongside the actuals.
				engine.SetEstRows(plan, 100)
				engine.Configure(plan, opts)
				if _, err := plan.Run(); err != nil {
					t.Fatal(err)
				}
				checkGolden(t, "analyze_"+p.name+"_engine"+suffix,
					normalizeExplain(engine.ExplainAnalyze(plan)))
			})
			t.Run(fmt.Sprintf("%s/mpp/w%d", p.name, workers), func(t *testing.T) {
				facts, mln := goldenTables()
				cl := NewCluster(2)
				cl.SetWorkers(opts.Workers)
				cl.SetMorselSize(opts.MorselSize)
				plan := p.mpp(cl, facts, mln)
				SetEstRows(plan, 100)
				if _, err := plan.Run(); err != nil {
					t.Fatal(err)
				}
				checkGolden(t, "analyze_"+p.name+"_mpp"+suffix,
					normalizeExplain(ExplainAnalyze(plan)))
			})
		}
	}
}

// TestAnalyzeActualsWorkerInvariant asserts the determinism contract
// EXPLAIN ANALYZE relies on: for a fixed-seed KB fixture, every
// operator's actual rows, output bytes, per-segment rows, and motion
// volumes are identical at 1, 2, and 8 workers — only time and the
// worker/morsel execution note may differ.
func TestAnalyzeActualsWorkerInvariant(t *testing.T) {
	normalize := func(s string) string {
		return execNoteRe.ReplaceAllString(normalizeExplain(s), "")
	}
	for _, p := range goldenPlans() {
		t.Run(p.name, func(t *testing.T) {
			var baseEngine, baseMPP string
			for i, workers := range []int{1, 2, 8} {
				facts, mln := goldenTables()
				plan := p.engine(facts, mln)
				engine.Configure(plan, engine.Opts{Workers: workers, MorselSize: 64})
				if _, err := plan.Run(); err != nil {
					t.Fatal(err)
				}
				gotEngine := normalize(engine.ExplainAnalyze(plan))

				facts, mln = goldenTables()
				cl := NewCluster(2)
				cl.SetWorkers(workers)
				cl.SetMorselSize(64)
				dplan := p.mpp(cl, facts, mln)
				if _, err := dplan.Run(); err != nil {
					t.Fatal(err)
				}
				gotMPP := normalize(ExplainAnalyze(dplan))

				if i == 0 {
					baseEngine, baseMPP = gotEngine, gotMPP
					continue
				}
				if gotEngine != baseEngine {
					t.Errorf("engine actuals differ at workers=%d\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, baseEngine, workers, gotEngine)
				}
				if gotMPP != baseMPP {
					t.Errorf("mpp actuals differ at workers=%d\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, baseMPP, workers, gotMPP)
				}
			}
		})
	}
}
