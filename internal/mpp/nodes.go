package mpp

import (
	"fmt"
	"strings"
	"time"

	"probkb/internal/engine"
	"probkb/internal/obs"
)

// Node is one operator of a distributed query plan. As in the single-node
// engine, Run fully materializes the operator's output — here a DistTable
// — and records self time and row counts for Explain.
type Node interface {
	// OutSchema returns the output schema.
	OutSchema() engine.Schema
	// OutDist returns the output's distribution.
	OutDist() Distribution
	// Children returns the input operators.
	Children() []Node
	// Label describes the operator for Explain.
	Label() string
	// Run executes the subtree and returns the distributed output.
	Run() (*DistTable, error)
	// Stats returns row count, self time, and motion annotations from the
	// most recent Run.
	Stats() *engine.NodeStats
}

type dbase struct {
	cluster *Cluster
	schema  engine.Schema
	dist    Distribution
	stats   engine.NodeStats
	// err defers construction-time violations (collocation mistakes,
	// invalid clusters, non-scan leaves) to Run, so building a malformed
	// plan never panics: the error surfaces when the plan executes.
	err error
}

func (b *dbase) OutSchema() engine.Schema { return b.schema }
func (b *dbase) OutDist() Distribution    { return b.dist }
func (b *dbase) Stats() *engine.NodeStats { return &b.stats }

func (b *dbase) setEstRows(est float64) { b.stats.EstRows = est }

// SetEstRows records the planner's cardinality estimate on a
// distributed plan node, for ExplainAnalyze — the distributed twin of
// engine.SetEstRows.
func SetEstRows(n Node, est float64) {
	if e, ok := n.(interface{ setEstRows(float64) }); ok {
		e.setEstRows(est)
	}
}

// childBase builds a dbase for an operator over child, inheriting the
// cluster (and any deferred error) from the plan's leaves.
func childBase(child Node, schema engine.Schema, dist Distribution) dbase {
	b := dbase{schema: schema, dist: dist}
	b.cluster = clusterOf(child)
	switch {
	case b.cluster == nil:
		b.err = fmt.Errorf("mpp: plan has a leaf that is not a scan")
	case b.cluster.err != nil:
		b.err = b.cluster.err
	}
	return b
}

func timeRunD(st *engine.NodeStats, body func() (*DistTable, error)) (*DistTable, error) {
	st.Workers, st.Morsels, st.Retries = 0, 0, 0
	start := time.Now()
	out, err := body()
	st.Elapsed = time.Since(start)
	if out != nil {
		st.Rows = out.NumRows()
		st.OutBytes = out.ByteSize()
		st.SegRows = make([]int, len(out.segs))
		for i, s := range out.segs {
			st.SegRows[i] = s.NumRows()
		}
	}
	return out, err
}

// mergeExecStats folds the per-segment kernel stats into a distributed
// operator's stats: Workers is the widest parallel region on any segment,
// Morsels sums over segments (still deterministic — segment partition
// sizes are a pure function of the data and the hash).
func mergeExecStats(dst *engine.NodeStats, segs []engine.NodeStats) {
	for _, s := range segs {
		if s.Workers > dst.Workers {
			dst.Workers = s.Workers
		}
		dst.Morsels += s.Morsels
	}
}

func runChildrenD(n Node) ([]*DistTable, error) {
	kids := n.Children()
	outs := make([]*DistTable, len(kids))
	for i, k := range kids {
		t, err := k.Run()
		if err != nil {
			return nil, err
		}
		outs[i] = t
	}
	return outs, nil
}

// Explain renders a distributed plan with per-node row counts, self times,
// and motion annotations, in the style of Figure 4.
func Explain(root Node) string {
	var b strings.Builder
	explainNode(&b, root, 0)
	return b.String()
}

func explainNode(b *strings.Builder, n Node, depth int) {
	st := n.Stats()
	fmt.Fprintf(b, "%s-> %s  (rows=%d time=%s%s%s)\n",
		strings.Repeat("  ", depth), n.Label(), st.Rows, st.Elapsed.Round(time.Microsecond), st.Extra, st.ExecNote())
	for _, k := range n.Children() {
		explainNode(b, k, depth+1)
	}
}

// ExplainAnalyze renders a distributed plan with actuals next to the
// optimizer's estimates — per-segment row counts, motion volumes, output
// bytes, and segment-task retries included. See engine.ExplainAnalyze
// for the single-node twin; the classic Explain stays unchanged.
func ExplainAnalyze(root Node) string { return engine.ExplainAnalyzeOf[Node](root) }

// CountMotions returns how many motion operators (redistribute or
// broadcast) the plan contains; tests and the Figure 4 harness use it to
// characterize plan shapes.
func CountMotions(root Node) (redistribute, broadcast int) {
	switch root.(type) {
	case *RedistributeNode:
		redistribute++
	case *BroadcastNode:
		broadcast++
	}
	for _, k := range root.Children() {
		r, b := CountMotions(k)
		redistribute += r
		broadcast += b
	}
	return
}

// MotionBytes sums the bytes shipped by every motion in the plan during
// the most recent Run.
func MotionBytes(root Node) int64 {
	var total int64
	switch n := root.(type) {
	case *RedistributeNode:
		total += n.movedBytes
	case *BroadcastNode:
		total += n.movedBytes
	}
	for _, k := range root.Children() {
		total += MotionBytes(k)
	}
	return total
}

// ---------------------------------------------------------------------------
// Scan

// ScanNode produces an existing distributed table.
type ScanNode struct {
	dbase
	d *DistTable
}

// NewScan returns a scan over d; a table with a deferred error makes the
// scan (and any plan built on it) fail at Run.
func NewScan(d *DistTable) *ScanNode {
	return &ScanNode{dbase: dbase{cluster: d.cluster, schema: d.schema, dist: d.dist, err: d.err}, d: d}
}

func (n *ScanNode) Children() []Node { return nil }

func (n *ScanNode) Label() string {
	return fmt.Sprintf("Seq Scan on %s [%s]", n.d.name, n.d.dist)
}

// Run returns the scanned table.
func (n *ScanNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	return timeRunD(&n.stats, func() (*DistTable, error) { return n.d, nil })
}

// ---------------------------------------------------------------------------
// Motions

// RedistributeNode reshuffles its input so the output is hash-distributed
// by the given key columns. Rows already on their target segment are not
// shipped; the stats record how many rows and bytes crossed segments.
type RedistributeNode struct {
	dbase
	child      Node
	key        []int
	movedBytes int64
}

// NewRedistribute returns a redistribute motion to the given key.
func NewRedistribute(child Node, key []int) *RedistributeNode {
	return &RedistributeNode{
		dbase: childBase(child, child.OutSchema(), HashedBy(append([]int(nil), key...)...)),
		child: child,
		key:   key,
	}
}

func (n *RedistributeNode) Children() []Node { return []Node{n.child} }
func (n *RedistributeNode) Label() string    { return fmt.Sprintf("Redistribute Motion [by %v]", n.key) }

// Run reshuffles the child output.
func (n *RedistributeNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("redist", n.schema, n.dist)
		var movedRows int
		n.movedBytes = 0
		recv := make([]int, n.cluster.nseg)
		// A replicated input only needs one copy's worth of rows, taken
		// from segment 0 (in a real system each segment would hash its
		// slice; the result is the same placement).
		if in.Replicated() {
			perSeg := scatterInto(in.segs[0], out.segs, n.key)
			for dst, rows := range perSeg {
				movedRows += len(rows)
				recv[dst] = len(rows)
			}
			n.movedBytes = in.segs[0].ByteSize()
		} else {
			for src := 0; src < n.cluster.nseg; src++ {
				seg := in.segs[src]
				perSeg := scatterInto(seg, out.segs, n.key)
				for dst, rows := range perSeg {
					if dst != src {
						movedRows += len(rows)
						recv[dst] += len(rows)
						if seg.NumRows() > 0 {
							n.movedBytes += int64(len(rows)) * (seg.ByteSize() / int64(seg.NumRows()))
						}
					}
				}
			}
		}
		n.stats.MovedRows = movedRows
		n.stats.MovedBytes = n.movedBytes
		n.stats.Extra = fmt.Sprintf(" moved=%d rows (%dB) recv=%v", movedRows, n.movedBytes, recv)
		observeMotion("redistribute", movedRows, n.movedBytes)
		return out, nil
	})
}

// observeMotion accumulates one motion's shipped volume into the
// registry (rows/bytes counters plus a byte-volume histogram).
func observeMotion(kind string, rows int, bytes int64) {
	obs.Default.Counter("probkb_mpp_motion_rows_total", obs.L("motion", kind)).Add(int64(rows))
	obs.Default.Counter("probkb_mpp_motion_bytes_total", obs.L("motion", kind)).Add(bytes)
	obs.Default.Histogram("probkb_mpp_motion_bytes", obs.SizeBuckets, obs.L("motion", kind)).
		Observe(float64(bytes))
}

// BroadcastNode replicates its input onto every segment. All rows ship to
// all other segments, which is why the paper's unoptimized plan in
// Figure 4 is slow.
type BroadcastNode struct {
	dbase
	child      Node
	movedBytes int64
}

// NewBroadcast returns a broadcast motion.
func NewBroadcast(child Node) *BroadcastNode {
	return &BroadcastNode{
		dbase: childBase(child, child.OutSchema(), ReplicatedDist()),
		child: child,
	}
}

func (n *BroadcastNode) Children() []Node { return []Node{n.child} }
func (n *BroadcastNode) Label() string    { return "Broadcast Motion" }

// Run replicates the child output.
func (n *BroadcastNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("broadcast", n.schema, ReplicatedDist())
		if in.Replicated() {
			// Already everywhere; nothing moves.
			for i := range out.segs {
				out.segs[i].AppendTable(in.segs[0])
			}
			n.movedBytes = 0
			n.stats.MovedRows = 0
			n.stats.MovedBytes = 0
			n.stats.Extra = " moved=0 rows (0B)"
			return out, nil
		}
		full := Gather(in)
		for i := range out.segs {
			out.segs[i].AppendTable(full)
		}
		// Every row is shipped to every segment but its own.
		moved := full.NumRows() * (n.cluster.nseg - 1)
		n.movedBytes = full.ByteSize() * int64(n.cluster.nseg-1)
		recv := make([]int, n.cluster.nseg)
		for i := range recv {
			recv[i] = full.NumRows() - in.segs[i].NumRows()
		}
		n.stats.MovedRows = moved
		n.stats.MovedBytes = n.movedBytes
		n.stats.Extra = fmt.Sprintf(" moved=%d rows (%dB) recv=%v", moved, n.movedBytes, recv)
		observeMotion("broadcast", moved, n.movedBytes)
		return out, nil
	})
}

// GatherNode collects all rows onto a single segment (the "master"),
// modeled as segment 0 holding everything.
type GatherNode struct {
	dbase
	child Node
}

// NewGather returns a gather motion.
func NewGather(child Node) *GatherNode {
	return &GatherNode{
		dbase: childBase(child, child.OutSchema(), RandomDist()),
		child: child,
	}
}

func (n *GatherNode) Children() []Node { return []Node{n.child} }
func (n *GatherNode) Label() string    { return "Gather Motion" }

// Run gathers the child output onto segment 0.
func (n *GatherNode) Run() (*DistTable, error) {
	if n.err != nil {
		return nil, n.err
	}
	ins, err := runChildrenD(n)
	if err != nil {
		return nil, err
	}
	in := ins[0]
	return timeRunD(&n.stats, func() (*DistTable, error) {
		out := n.cluster.newDistTable("gather", n.schema, RandomDist())
		out.segs[0] = Gather(in)
		return out, nil
	})
}

// clusterOf extracts the cluster a plan runs on, or nil when the plan
// has a leaf that is not a scan (recorded as a deferred error by
// childBase).
func clusterOf(n Node) *Cluster {
	for {
		kids := n.Children()
		if len(kids) == 0 {
			if s, ok := n.(*ScanNode); ok {
				return s.d.cluster
			}
			return nil
		}
		n = kids[0]
	}
}
