package mpp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"probkb/internal/engine"
)

func twoColTable(name string, a, b []int32) *engine.Table {
	t := engine.NewTable(name, engine.NewSchema(engine.C("a", engine.Int32), engine.C("b", engine.Int32)))
	for i := range a {
		t.AppendRow(a[i], b[i])
	}
	return t
}

func randomTable(rng *rand.Rand, name string, n int, domain int32) *engine.Table {
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = rng.Int31n(domain)
		b[i] = rng.Int31n(domain)
	}
	return twoColTable(name, a, b)
}

// sortedFlat renders a table's rows as a sorted [][]int32 for comparison.
func sortedFlat(t *engine.Table) [][]int32 {
	t = t.Clone()
	cols := make([]int, t.Schema().NumCols())
	for i := range cols {
		cols[i] = i
	}
	t.SortByInt32Cols(cols...)
	out := make([][]int32, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		row := make([]int32, len(cols))
		for c := range cols {
			row[c] = t.Int32Col(c)[r]
		}
		out[r] = row
	}
	return out
}

func flatEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestDistributeGatherRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := randomTable(rng, "T", 500, 50)
	c := NewCluster(4)
	d := c.Distribute(base, []int{0})
	if d.NumRows() != 500 {
		t.Fatalf("NumRows = %d, want 500", d.NumRows())
	}
	if !flatEqual(sortedFlat(Gather(d)), sortedFlat(base)) {
		t.Fatal("gather after distribute lost or changed rows")
	}
	// Placement invariant: every row sits on its hash segment.
	for i := 0; i < c.NumSegments(); i++ {
		seg := d.Segment(i)
		for r := 0; r < seg.NumRows(); r++ {
			if segmentOf(seg, r, []int{0}, c.NumSegments()) != i {
				t.Fatalf("row on segment %d hashes elsewhere", i)
			}
		}
	}
	if d.Dist().String() != "hashed[0]" {
		t.Fatalf("dist = %s", d.Dist())
	}
}

func TestReplicate(t *testing.T) {
	base := twoColTable("M", []int32{1, 2}, []int32{3, 4})
	c := NewCluster(3)
	d := c.Replicate(base)
	if !d.Replicated() {
		t.Fatal("replicated table not marked replicated")
	}
	if d.NumRows() != 2 {
		t.Fatalf("replicated NumRows = %d, want 2 (one copy)", d.NumRows())
	}
	for i := 0; i < 3; i++ {
		if d.Segment(i).NumRows() != 2 {
			t.Fatalf("segment %d has %d rows, want 2", i, d.Segment(i).NumRows())
		}
	}
	if !flatEqual(sortedFlat(Gather(d)), sortedFlat(base)) {
		t.Fatal("gather of replicated table should yield one copy")
	}
}

func TestDistributeEmptyKeyError(t *testing.T) {
	c := NewCluster(2)
	d := c.Distribute(twoColTable("T", nil, nil), nil)
	if d.Err() == nil {
		t.Fatal("Distribute with empty key did not record an error")
	}
	// The deferred error surfaces when a plan over the table runs.
	if _, err := NewScan(d).Run(); err == nil {
		t.Fatal("scan over invalid distribution ran without error")
	}
}

func TestNewClusterValidation(t *testing.T) {
	c := NewCluster(0)
	if c.Err() == nil {
		t.Fatal("NewCluster(0) did not record an error")
	}
	// The broken cluster must still be safe to plan against: the error
	// surfaces at Run, not as a crash.
	d := c.Distribute(twoColTable("T", []int32{1}, []int32{2}), []int{0})
	if _, err := NewScan(d).Run(); err == nil {
		t.Fatal("scan on zero-segment cluster ran without error")
	}
}

func TestRedistributeMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := randomTable(rng, "T", 300, 20)
	c := NewCluster(4)
	d := c.Distribute(base, []int{0})
	re := NewRedistribute(NewScan(d), []int{1})
	out, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(sortedFlat(Gather(out)), sortedFlat(base)) {
		t.Fatal("redistribute changed the row multiset")
	}
	if out.Dist().String() != "hashed[1]" {
		t.Fatalf("output dist = %s, want hashed[1]", out.Dist())
	}
	for i := 0; i < c.NumSegments(); i++ {
		seg := out.Segment(i)
		for r := 0; r < seg.NumRows(); r++ {
			if segmentOf(seg, r, []int{1}, c.NumSegments()) != i {
				t.Fatal("redistributed row on wrong segment")
			}
		}
	}
	if !strings.Contains(re.Stats().Extra, "moved=") {
		t.Fatalf("redistribute stats missing motion annotation: %q", re.Stats().Extra)
	}
}

func TestRedistributeReplicatedInput(t *testing.T) {
	base := twoColTable("M", []int32{1, 2, 3}, []int32{4, 5, 6})
	c := NewCluster(3)
	re := NewRedistribute(NewScan(c.Replicate(base)), []int{0})
	out, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(sortedFlat(Gather(out)), sortedFlat(base)) {
		t.Fatal("redistributing a replicated table should keep exactly one copy")
	}
}

func TestBroadcastMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomTable(rng, "T", 100, 10)
	c := NewCluster(4)
	d := c.Distribute(base, []int{0})
	bc := NewBroadcast(NewScan(d))
	out, err := bc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Replicated() {
		t.Fatal("broadcast output not replicated")
	}
	for i := 0; i < 4; i++ {
		if !flatEqual(sortedFlat(out.Segment(i)), sortedFlat(base)) {
			t.Fatalf("segment %d missing broadcast rows", i)
		}
	}
	if MotionBytes(bc) <= 0 {
		t.Fatal("broadcast should account moved bytes")
	}
	// Broadcasting an already-replicated input moves nothing.
	bc2 := NewBroadcast(NewScan(c.Replicate(base)))
	if _, err := bc2.Run(); err != nil {
		t.Fatal(err)
	}
	if MotionBytes(bc2) != 0 {
		t.Fatal("broadcast of replicated input should move 0 bytes")
	}
}

func TestGatherNode(t *testing.T) {
	base := twoColTable("T", []int32{1, 2, 3}, []int32{1, 2, 3})
	c := NewCluster(2)
	g := NewGather(NewScan(c.Distribute(base, []int{0})))
	out, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Segment(0).NumRows() != 3 || out.Segment(1).NumRows() != 0 {
		t.Fatal("gather should place all rows on segment 0")
	}
}

// TestDistributedJoinAgreesWithSingleNode is the core MPP property: for
// random tables under every collocation scenario the planner produces, the
// distributed join result equals the single-node join result.
func TestDistributedJoinAgreesWithSingleNode(t *testing.T) {
	outs := []engine.JoinOut{
		engine.BuildCol("ba", 0), engine.BuildCol("bb", 1),
		engine.ProbeCol("pa", 0), engine.ProbeCol("pb", 1),
	}
	prop := func(seed int64, nl, nr uint8, scenario uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		left := randomTable(rng, "L", int(nl)%40, 8)
		right := randomTable(rng, "R", int(nr)%40, 8)
		c := NewCluster(3)

		var build, probe Node
		switch scenario % 4 {
		case 0: // both collocated on join keys
			build = NewScan(c.Distribute(left, []int{0}))
			probe = NewScan(c.Distribute(right, []int{1}))
		case 1: // build replicated
			build = NewScan(c.Replicate(left))
			probe = NewScan(c.Distribute(right, []int{0}))
		case 2: // probe needs redistribution
			build = NewScan(c.Distribute(left, []int{0}))
			probe = NewScan(c.Distribute(right, []int{0})) // wrong key: join uses col 1
		case 3: // neither placed usefully: broadcast build
			build = NewScan(c.Distribute(left, []int{1}))
			probe = NewScan(c.Distribute(right, []int{0}))
		}
		plan := PlanJoin(build, probe, []int{0}, []int{1}, outs, "L.a = R.b", nil)
		got, err := plan.Run()
		if err != nil {
			return false
		}
		want := engine.NestedLoopJoin(left, right, []int{0}, []int{1}, nil, outs)
		return flatEqual(sortedFlat(Gather(got)), sortedFlat(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanJoinMotionChoices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	left := randomTable(rng, "L", 50, 5)
	right := randomTable(rng, "R", 50, 5)
	c := NewCluster(2)
	outs := []engine.JoinOut{engine.BuildCol("a", 0)}

	// Collocated: no motions.
	p := PlanJoin(NewScan(c.Distribute(left, []int{0})), NewScan(c.Distribute(right, []int{0})),
		[]int{0}, []int{0}, outs, "j", nil)
	if r, b := CountMotions(p); r != 0 || b != 0 {
		t.Fatalf("collocated plan has motions: %d redistribute, %d broadcast", r, b)
	}

	// Probe mis-keyed: one redistribute.
	p = PlanJoin(NewScan(c.Distribute(left, []int{0})), NewScan(c.Distribute(right, []int{1})),
		[]int{0}, []int{0}, outs, "j", nil)
	if r, b := CountMotions(p); r != 1 || b != 0 {
		t.Fatalf("mis-keyed probe: %d redistribute, %d broadcast; want 1, 0", r, b)
	}

	// Neither keyed: broadcast build.
	p = PlanJoin(NewScan(c.Distribute(left, []int{1})), NewScan(c.Distribute(right, []int{1})),
		[]int{0}, []int{0}, outs, "j", nil)
	if r, b := CountMotions(p); r != 0 || b != 1 {
		t.Fatalf("unkeyed join: %d redistribute, %d broadcast; want 0, 1", r, b)
	}
}

func TestViewsEliminateMotions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomTable(rng, "T", 200, 10)
	small := randomTable(rng, "M", 20, 10)
	c := NewCluster(3)
	dT := c.Distribute(base, []int{0})
	dM := c.Distribute(small, []int{1})

	views := NewViews(c)
	views.Materialize(dT, []int{1})
	if views.Count() != 1 {
		t.Fatalf("views count = %d, want 1", views.Count())
	}
	if _, ok := views.Lookup("T", []int{1}); !ok {
		t.Fatal("registered view not found")
	}
	if _, ok := views.Lookup("T", []int{0, 1}); ok {
		t.Fatal("lookup found view with wrong key")
	}

	outs := []engine.JoinOut{engine.BuildCol("ma", 0), engine.ProbeCol("tb", 1)}
	// Join M (build, keyed fine on col 1) against T on T.b: without views
	// this needs a motion on T; with the view it does not.
	noViews := PlanJoin(NewScan(dM), NewScan(dT), []int{1}, []int{1}, outs, "M.b = T.b", nil)
	if r, b := CountMotions(noViews); r+b == 0 {
		t.Fatal("expected a motion without views")
	}
	withViews := PlanJoin(NewScan(dM), NewScan(dT), []int{1}, []int{1}, outs, "M.b = T.b", views)
	if r, b := CountMotions(withViews); r+b != 0 {
		t.Fatalf("view plan still has motions: %d redistribute, %d broadcast", r, b)
	}
	// Both must compute the same result.
	g1, err := noViews.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := withViews.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(sortedFlat(Gather(g1)), sortedFlat(Gather(g2))) {
		t.Fatal("view-based plan computed a different join result")
	}
}

func TestMaterializeRefresh(t *testing.T) {
	base := twoColTable("T", []int32{1}, []int32{2})
	c := NewCluster(2)
	d := c.Distribute(base, []int{0})
	views := NewViews(c)
	views.Materialize(d, []int{1})
	// Table grows; refresh replaces the old copy.
	d.Segment(0).AppendRow(int32(9), int32(9))
	views.Materialize(d, []int{1})
	if views.Count() != 1 {
		t.Fatalf("refresh duplicated the view: count = %d", views.Count())
	}
	v, _ := views.Lookup("T", []int{1})
	if v.NumRows() != 2 {
		t.Fatalf("refreshed view rows = %d, want 2", v.NumRows())
	}
}

func TestHashJoinCollocationError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	left := randomTable(rng, "L", 10, 4)
	right := randomTable(rng, "R", 10, 4)
	c := NewCluster(2)
	j := NewHashJoin(NewScan(c.Distribute(left, []int{1})), NewScan(c.Distribute(right, []int{1})),
		[]int{0}, []int{0}, []engine.JoinOut{engine.BuildCol("a", 0)}, "bad")
	if _, err := j.Run(); err == nil {
		t.Fatal("non-collocated join ran without error")
	}
}

func TestDistributedFilterProject(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomTable(rng, "T", 200, 10)
	c := NewCluster(4)
	d := c.Distribute(base, []int{0})

	f := NewFilter(NewScan(d), "a > 4", func(t *engine.Table, r int) bool {
		return t.Int32Col(0)[r] > 4
	})
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Dist().String() != "hashed[0]" {
		t.Fatalf("filter changed distribution: %s", out.Dist())
	}
	gathered := Gather(out)
	for r := 0; r < gathered.NumRows(); r++ {
		if gathered.Int32Col(0)[r] <= 4 {
			t.Fatal("filter kept a row it should drop")
		}
	}

	// Projection keeping the key preserves hashing on the mapped column.
	p := NewProject(NewScan(d), engine.ColExpr("b", 1), engine.ColExpr("a", 0))
	if p.OutDist().String() != "hashed[1]" {
		t.Fatalf("projected dist = %s, want hashed[1]", p.OutDist())
	}
	// Dropping the key degrades to random.
	p2 := NewProject(NewScan(d), engine.ColExpr("b", 1))
	if !p2.OutDist().Random() {
		t.Fatalf("key-dropping projection dist = %s, want random", p2.OutDist())
	}
	pout, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pout.NumRows() != 200 {
		t.Fatalf("project rows = %d, want 200", pout.NumRows())
	}
}

func TestDistributedDistinctAndGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := randomTable(rng, "T", 400, 6)
	c := NewCluster(4)
	d := c.Distribute(base, []int{0})

	// Distinct on (a, b): collocated because dist key {0} ⊆ {0,1}.
	dn := NewDistinct(NewScan(d), []int{0, 1})
	got, err := dn.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.NewDistinct(engine.NewScan(base), []int{0, 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(sortedFlat(Gather(got)), sortedFlat(want)) {
		t.Fatal("distributed distinct disagrees with single-node")
	}

	// GroupBy count on a.
	gb := NewGroupBy(NewScan(d), []int{0}, []engine.AggSpec{{Kind: engine.AggCount, Name: "n"}})
	gout, err := gb.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantG, err := engine.GroupByTable(base, []int{0}, []engine.AggSpec{{Kind: engine.AggCount, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(sortedFlat(Gather(gout)), sortedFlat(wantG)) {
		t.Fatal("distributed groupby disagrees with single-node")
	}
}

func TestDistinctCollocationError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := randomTable(rng, "T", 20, 4)
	c := NewCluster(2)
	d := c.Distribute(base, []int{0})
	if _, err := NewDistinct(NewScan(d), []int{1}).Run(); err == nil {
		t.Fatal("distinct on non-collocated keys ran without error")
	}
}

func TestEnsureDistributedBy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	base := randomTable(rng, "T", 50, 5)
	c := NewCluster(2)
	d := c.Distribute(base, []int{0})

	same := EnsureDistributedBy(NewScan(d), []int{0})
	if _, ok := same.(*ScanNode); !ok {
		t.Fatal("EnsureDistributedBy inserted a motion it did not need")
	}
	moved := EnsureDistributedBy(NewScan(d), []int{1})
	if _, ok := moved.(*RedistributeNode); !ok {
		t.Fatal("EnsureDistributedBy did not insert a redistribute")
	}
}

func TestExplainShowsMotions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	left := randomTable(rng, "L", 30, 4)
	right := randomTable(rng, "R", 30, 4)
	c := NewCluster(2)
	p := PlanJoin(NewScan(c.Distribute(left, []int{1})), NewScan(c.Distribute(right, []int{1})),
		[]int{0}, []int{0}, []engine.JoinOut{engine.BuildCol("a", 0)}, "L.a = R.a", nil)
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	exp := Explain(p)
	if !strings.Contains(exp, "Broadcast Motion") {
		t.Fatalf("explain missing broadcast motion:\n%s", exp)
	}
	if !strings.Contains(exp, "Seq Scan on L") {
		t.Fatalf("explain missing scans:\n%s", exp)
	}
}

// TestRedistributePreservesMultiset: any chain of redistributions keeps
// the exact row multiset and lands rows on their hash segments.
func TestRedistributePreservesMultiset(t *testing.T) {
	prop := func(seed int64, n uint8, segs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomTable(rng, "T", int(n)%60, 10)
		c := NewCluster(1 + int(segs)%5)
		var node Node = NewScan(c.Distribute(base, []int{0}))
		keys := [][]int{{1}, {0, 1}, {0}}
		for _, k := range keys {
			node = NewRedistribute(node, k)
		}
		out, err := node.Run()
		if err != nil {
			return false
		}
		if !flatEqual(sortedFlat(Gather(out)), sortedFlat(base)) {
			return false
		}
		for i := 0; i < c.NumSegments(); i++ {
			seg := out.Segment(i)
			for r := 0; r < seg.NumRows(); r++ {
				if segmentOf(seg, r, []int{0}, c.NumSegments()) != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionString(t *testing.T) {
	if HashedBy(1, 2).String() != "hashed[1 2]" {
		t.Fatalf("HashedBy string = %s", HashedBy(1, 2))
	}
	if !ReplicatedDist().Replicated || ReplicatedDist().String() != "replicated" {
		t.Fatal("ReplicatedDist wrong")
	}
	if !RandomDist().Random() || RandomDist().String() != "random" {
		t.Fatal("RandomDist wrong")
	}
}

func TestLabelsAndSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := randomTable(rng, "T", 20, 4)
	c := NewCluster(2)
	d := c.Distribute(base, []int{0})
	if !d.Schema().Equal(base.Schema()) {
		t.Fatal("DistTable schema wrong")
	}
	scan := NewScan(d)
	f := NewFilter(scan, "x", func(*engine.Table, int) bool { return true })
	p := NewProject(scan, engine.ColExpr("a", 0))
	j := NewHashJoin(NewScan(c.Replicate(base)), scan, []int{0}, []int{0},
		[]engine.JoinOut{engine.BuildCol("a", 0)}, "cond").
		WithResidual("res", func(b *engine.Table, br int, pt *engine.Table, pr int) bool { return true })
	dn := NewDistinct(scan, []int{0, 1})
	gb := NewGroupBy(scan, []int{0}, []engine.AggSpec{{Kind: engine.AggCount, Name: "n"}})
	re := NewRedistribute(scan, []int{1})
	ga := NewGather(scan)
	for _, n := range []Node{scan, f, p, j, dn, gb, re, ga} {
		if n.Label() == "" {
			t.Fatalf("%T has empty label", n)
		}
	}
	if out, err := j.Run(); err != nil || out.NumRows() == 0 {
		t.Fatalf("residual join: %v", err)
	}
}

func TestDistTableAppendFrom(t *testing.T) {
	base := twoColTable("T", []int32{1, 2, 3}, []int32{4, 5, 6})
	c := NewCluster(3)
	d := c.Distribute(base, []int{0})
	rep := c.Replicate(base)

	// Grow the master copy and ship only the delta.
	base.AppendRow(int32(9), int32(9))
	base.AppendRow(int32(10), int32(10))
	if err := d.AppendFrom(base, 3); err != nil {
		t.Fatal(err)
	}
	if err := rep.AppendFrom(base, 3); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 5 {
		t.Fatalf("hashed append rows = %d, want 5", d.NumRows())
	}
	if !flatEqual(sortedFlat(Gather(d)), sortedFlat(base)) {
		t.Fatal("hashed append changed contents")
	}
	for i := 0; i < 3; i++ {
		if rep.Segment(i).NumRows() != 5 {
			t.Fatalf("replicated append segment %d rows = %d", i, rep.Segment(i).NumRows())
		}
	}
	// Empty delta is a no-op.
	if err := d.AppendFrom(base, base.NumRows()); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 5 {
		t.Fatal("empty delta changed table")
	}
	// Appending into a random-dist table is an error.
	g, err := NewGather(NewScan(d)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AppendFrom(base, 0); err == nil {
		t.Fatal("AppendFrom into random dist did not return an error")
	}
}

func TestViewsAppendFrom(t *testing.T) {
	base := twoColTable("T", []int32{1, 2}, []int32{3, 4})
	c := NewCluster(2)
	d := c.Distribute(base, []int{0})
	views := NewViews(c)
	views.Materialize(d, []int{1})
	base.AppendRow(int32(7), int32(8))
	views.AppendFrom("T", base, 2)
	v, _ := views.Lookup("T", []int{1})
	if v.NumRows() != 3 {
		t.Fatalf("view rows after append = %d, want 3", v.NumRows())
	}
}

func TestJoinReplicatedBothSides(t *testing.T) {
	left := twoColTable("L", []int32{1, 2}, []int32{1, 2})
	right := twoColTable("R", []int32{1, 3}, []int32{1, 3})
	c := NewCluster(3)
	j := NewHashJoin(NewScan(c.Replicate(left)), NewScan(c.Replicate(right)),
		[]int{0}, []int{0}, []engine.JoinOut{engine.BuildCol("a", 0)}, "L.a = R.a")
	out, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Replicated() {
		t.Fatal("join of two replicated inputs should stay replicated")
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
}
