// Package mpp implements the shared-nothing massively parallel processing
// database substrate that ProbKB-p runs on (the paper uses Greenplum 4.2;
// this package plays that role).
//
// A Cluster owns a fixed number of segments. A DistTable is a relation
// whose rows are hash-partitioned across segments by a tuple of Int32
// "distribution key" columns, or fully replicated on every segment.
// Distributed operators execute the single-node engine kernels once per
// segment, in parallel goroutines, and insert *motion* operators —
// Redistribute, Broadcast, Gather — whenever the data placement an
// operator needs differs from the placement it has. Motions account for
// the rows and bytes they ship, so Explain output reproduces the
// plan-shape comparison of Figure 4 in the paper: a join against a table
// already distributed on the join key shows a cheap Redistribute Motion on
// the other input, while the unoptimized plan shows an expensive Broadcast
// Motion.
//
// Section 4.4 of the paper keys its optimization on *redistributed
// materialized views*: extra copies of TΠ distributed by the exact key
// tuples the grounding joins use. Cluster.Materialize registers such a
// view; the planner (planner.go) picks the collocated copy when one
// exists.
package mpp

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probkb/internal/engine"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

// Cluster metrics: per-segment task wall times (the skew view Figure 6
// cares about) and motion volumes; see nodes.go for the motion side.
func init() {
	obs.Default.Help("probkb_mpp_segment_seconds", "Per-segment task wall time across distributed operators.")
	obs.Default.Help("probkb_mpp_motion_rows_total", "Rows shipped across segments, by motion kind.")
	obs.Default.Help("probkb_mpp_motion_bytes_total", "Bytes shipped across segments, by motion kind.")
	obs.Default.Help("probkb_mpp_motion_bytes", "Per-motion shipped byte volume distribution.")
}

// ObservePlan records a just-run distributed plan into the default
// registry under the given query site label; the distributed analogue of
// engine.ObservePlan.
func ObservePlan(query string, root Node) {
	obs.Default.Histogram("probkb_engine_plan_seconds", nil, obs.L("query", query)).
		Observe(engine.TotalTimeOf[Node](root).Seconds())
	engine.ObserveTree[Node](root)
}

// Cluster models a shared-nothing MPP database with a fixed segment count.
//
// Setup or collocation mistakes never panic: an invalid cluster carries a
// deferred error that every derived table and plan inherits and that
// surfaces when the plan runs, so a malformed distributed query is an
// ordinary error at the SQL/HTTP surface instead of a process exit.
type Cluster struct {
	nseg int
	err  error

	// ctx, faults, retry and jr configure segment-task execution; see
	// SetContext, SetFaults, SetRetry and SetJournal.
	ctx     context.Context
	faults  *FaultPlan
	retry   RetryPolicy
	jr      *journal.Writer
	taskSeq atomic.Int64

	// workers is the per-segment worker budget; see SetWorkers.
	workers    int
	morselSize int
}

// NewCluster returns a cluster with n segments. A cluster with n < 1 is
// invalid; it is still returned (with one inert segment) and every plan
// run against it fails with the recorded error.
func NewCluster(n int) *Cluster {
	if n < 1 {
		return &Cluster{nseg: 1, err: fmt.Errorf("mpp: cluster needs at least one segment, got %d", n)}
	}
	return &Cluster{nseg: n}
}

// NumSegments returns the cluster's segment count.
func (c *Cluster) NumSegments() int { return c.nseg }

// Err returns the cluster's deferred setup error, if any.
func (c *Cluster) Err() error { return c.err }

// SetContext attaches a context to the cluster. Segment tasks check it
// before (and retries during) execution, so cancelling it stops a
// running distributed plan at the next task boundary.
func (c *Cluster) SetContext(ctx context.Context) { c.ctx = ctx }

// SetFaults installs a deterministic fault-injection plan (nil disables).
func (c *Cluster) SetFaults(p *FaultPlan) { c.faults = p }

// SetRetry installs the segment-task retry policy.
func (c *Cluster) SetRetry(p RetryPolicy) { c.retry = p }

// SetJournal attaches a run journal; injected faults and retries are
// recorded as segment_fault / segment_retry events.
func (c *Cluster) SetJournal(w *journal.Writer) { c.jr = w }

// SetWorkers sets the worker budget each segment task hands to the engine
// kernels it runs. The default (anything < 2) keeps the historical
// behavior — segments execute their inner plans serially, and all
// parallelism comes from the goroutine-per-segment in forEachSegment.
// Results are identical for every setting (see engine.Opts).
func (c *Cluster) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// SetMorselSize overrides engine.DefaultMorselSize for the engine kernels
// segment tasks run (0 keeps the default). Like the worker budget it never
// changes results, but tests shrink it so small per-segment partitions
// still split into enough morsels to engage the worker pool.
func (c *Cluster) SetMorselSize(n int) {
	if n < 0 {
		n = 0
	}
	c.morselSize = n
}

// engineOpts returns the engine execution options segment tasks run under.
func (c *Cluster) engineOpts() engine.Opts {
	w := c.workers
	if w < 1 {
		w = 1
	}
	return engine.Opts{Workers: w, MorselSize: c.morselSize}
}

// ctxErr returns the attached context's error, if any.
func (c *Cluster) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// sleep waits d, returning early with the context error on cancellation.
func (c *Cluster) sleep(d time.Duration) error {
	if d <= 0 {
		return c.ctxErr()
	}
	if c.ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.ctx.Done():
		return c.ctx.Err()
	case <-t.C:
		return nil
	}
}

// Distribution describes how a DistTable's rows are placed.
//
// Exactly one of three states holds: hash-distributed by Key (Key != nil),
// replicated on every segment (Replicated), or scattered with no placement
// invariant (both zero — "distributed randomly" in Greenplum terms).
type Distribution struct {
	Key        []int
	Replicated bool
}

// HashedBy returns a hash distribution on the given key columns.
func HashedBy(key ...int) Distribution { return Distribution{Key: key} }

// ReplicatedDist returns the replicated distribution.
func ReplicatedDist() Distribution { return Distribution{Replicated: true} }

// RandomDist returns the no-invariant distribution.
func RandomDist() Distribution { return Distribution{} }

// Random reports whether the distribution carries no placement invariant.
func (d Distribution) Random() bool { return d.Key == nil && !d.Replicated }

// String renders the distribution for Explain output.
func (d Distribution) String() string {
	switch {
	case d.Replicated:
		return "replicated"
	case d.Key != nil:
		return fmt.Sprintf("hashed%v", d.Key)
	default:
		return "random"
	}
}

// DistTable is a relation partitioned (or replicated) across the segments
// of one cluster. A table created under an invalid cluster or placement
// carries a deferred error (Err); plans over it fail at Run instead of
// panicking.
type DistTable struct {
	cluster *Cluster
	name    string
	schema  engine.Schema
	dist    Distribution
	segs    []*engine.Table
	err     error
}

// Name returns the distributed table's name.
func (d *DistTable) Name() string { return d.name }

// Err returns the table's deferred setup error, if any.
func (d *DistTable) Err() error { return d.err }

// SetName renames the distributed table.
func (d *DistTable) SetName(n string) {
	d.name = n
	for i, s := range d.segs {
		s.SetName(fmt.Sprintf("%s.seg%d", n, i))
	}
}

// Schema returns the table schema.
func (d *DistTable) Schema() engine.Schema { return d.schema }

// Dist returns the table's distribution.
func (d *DistTable) Dist() Distribution { return d.dist }

// Replicated reports whether every segment holds a full copy.
func (d *DistTable) Replicated() bool { return d.dist.Replicated }

// Segment returns segment i's local slice of the table.
func (d *DistTable) Segment(i int) *engine.Table { return d.segs[i] }

// ByteSize returns the total bytes the table's segment slices pin —
// every copy counted, so a replicated table costs nseg copies. Like
// engine.Table.ByteSize it is a pure function of the data, making it
// safe to pin in golden EXPLAIN ANALYZE files.
func (d *DistTable) ByteSize() int64 {
	var n int64
	for _, s := range d.segs {
		n += s.ByteSize()
	}
	return n
}

// NumRows returns the logical row count: the sum over segments for a
// distributed table, or one copy's count for a replicated one.
func (d *DistTable) NumRows() int {
	if d.Replicated() {
		return d.segs[0].NumRows()
	}
	n := 0
	for _, s := range d.segs {
		n += s.NumRows()
	}
	return n
}

// segmentOf returns the segment a row of t belongs on under key.
func segmentOf(t *engine.Table, row int, key []int, nseg int) int {
	return int(engine.HashRow(t, row, key) % uint64(nseg))
}

// newDistTable allocates the per-segment shells; the table inherits the
// cluster's deferred error.
func (c *Cluster) newDistTable(name string, schema engine.Schema, dist Distribution) *DistTable {
	d := &DistTable{cluster: c, name: name, schema: schema, dist: dist, err: c.err}
	d.segs = make([]*engine.Table, c.nseg)
	for i := range d.segs {
		d.segs[i] = engine.NewTable(fmt.Sprintf("%s.seg%d", name, i), schema)
	}
	return d
}

// Distribute loads t into the cluster hash-partitioned by the given key
// columns. This is the bulkload path (CREATE TABLE ... DISTRIBUTED BY).
// An empty key is a placement error, recorded on the returned table
// (use Replicate for replicated tables).
func (c *Cluster) Distribute(t *engine.Table, key []int) *DistTable {
	if len(key) == 0 {
		d := c.newDistTable(t.Name(), t.Schema(), RandomDist())
		d.err = fmt.Errorf("mpp: Distribute %s needs a non-empty key; use Replicate for replicated tables", t.Name())
		return d
	}
	d := c.newDistTable(t.Name(), t.Schema(), HashedBy(append([]int(nil), key...)...))
	if d.err != nil {
		return d
	}
	scatterInto(t, d.segs, key)
	return d
}

// Replicate loads t as a replicated table: every segment gets a full copy
// (CREATE TABLE ... DISTRIBUTED REPLICATED). The paper replicates the
// small MLN partition tables M1..M6 this way.
func (c *Cluster) Replicate(t *engine.Table) *DistTable {
	d := c.newDistTable(t.Name(), t.Schema(), ReplicatedDist())
	for i := range d.segs {
		d.segs[i].AppendTable(t)
	}
	return d
}

// scatterInto hash-partitions t's rows into the given per-segment tables
// and returns the per-segment row lists (useful to motions for
// accounting).
func scatterInto(t *engine.Table, segs []*engine.Table, key []int) [][]int32 {
	nseg := len(segs)
	perSeg := make([][]int32, nseg)
	for r := 0; r < t.NumRows(); r++ {
		s := segmentOf(t, r, key, nseg)
		perSeg[s] = append(perSeg[s], int32(r))
	}
	for s, rows := range perSeg {
		if len(rows) == 0 {
			continue
		}
		segs[s].AppendRowsFrom(t, rows)
	}
	return perSeg
}

// AppendFrom incrementally loads rows [from, t.NumRows()) of t into the
// distributed table: hashed tables scatter the delta by their key,
// replicated tables append it everywhere. This is the incremental
// materialized-view maintenance path the grounder uses between
// iterations (a full rebuild is only needed after deletions). Appending
// into an errored or randomly distributed table is an error.
func (d *DistTable) AppendFrom(t *engine.Table, from int) error {
	if d.err != nil {
		return d.err
	}
	n := t.NumRows()
	if from >= n {
		return nil
	}
	rows := make([]int32, 0, n-from)
	for r := from; r < n; r++ {
		rows = append(rows, int32(r))
	}
	delta := engine.NewTable("delta", d.schema)
	delta.AppendRowsFrom(t, rows)
	if d.Replicated() {
		for i := range d.segs {
			d.segs[i].AppendTable(delta)
		}
		return nil
	}
	key := d.dist.Key
	if key == nil {
		return fmt.Errorf("mpp: AppendFrom into randomly distributed table %s", d.name)
	}
	scatterInto(delta, d.segs, key)
	return nil
}

// Gather collects a distributed table onto the master as one engine table.
func Gather(d *DistTable) *engine.Table {
	out := engine.NewTable(d.name, d.schema)
	if d.Replicated() {
		out.AppendTable(d.segs[0])
		return out
	}
	for _, s := range d.segs {
		out.AppendTable(s)
	}
	return out
}

// forEachSegment runs f(i) for every segment index concurrently and
// returns each segment task's wall time in seconds, the number of
// segment-task re-executions the retry policy performed, and the first
// error. The times also land in /metrics; operators additionally stash
// them (and the retry count) in their NodeStats so per-operator
// straggler and fault analysis can see them.
//
// Each per-segment execution goes through the segment-task runner, which
// honors the cluster context, injects faults from the active FaultPlan,
// recovers worker panics into per-segment errors, and retries failed
// attempts under the retry policy. Segment tasks must be pure functions
// of their input partitions (build fresh output, assign at the end) so
// re-execution is idempotent.
func (c *Cluster) forEachSegment(f func(i int) error) ([]float64, int, error) {
	if c.err != nil {
		return nil, 0, c.err
	}
	if err := c.ctxErr(); err != nil {
		return nil, 0, err
	}
	// Task IDs are assigned in plan-execution order, which is sequential
	// per cluster, so fault draws are deterministic; the counter is
	// atomic only to stay race-clean if plans ever overlap.
	task := c.taskSeq.Add(1)
	var wg sync.WaitGroup
	var retries atomic.Int64
	errs := make([]error, c.nseg)
	secs := make([]float64, c.nseg)
	for i := 0; i < c.nseg; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			r, err := c.runSegmentTask(task, i, f)
			errs[i] = err
			retries.Add(int64(r))
			secs[i] = time.Since(start).Seconds()
			obs.Default.Histogram("probkb_mpp_segment_seconds", nil,
				obs.L("segment", strconv.Itoa(i))).Observe(secs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return secs, int(retries.Load()), err
		}
	}
	return secs, int(retries.Load()), nil
}

// runSegmentTask executes one segment's share of a task, retrying failed
// attempts up to the retry policy's bound with linear backoff; it
// returns how many re-executions it needed. Cancellation is never
// retried.
func (c *Cluster) runSegmentTask(task int64, seg int, f func(i int) error) (int, error) {
	var lastErr error
	retried := 0
	for attempt := 0; attempt <= c.retry.MaxRetries; attempt++ {
		if err := c.ctxErr(); err != nil {
			return retried, err
		}
		if attempt > 0 {
			retried++
			c.noteRetry(task, seg, attempt, lastErr)
			if err := c.sleep(time.Duration(attempt) * c.retry.Backoff); err != nil {
				return retried, err
			}
		}
		err := c.attemptSegmentTask(task, seg, attempt, f)
		if err == nil {
			return retried, nil
		}
		if isCtxErr(err) {
			return retried, err
		}
		lastErr = err
	}
	if c.retry.MaxRetries > 0 {
		return retried, fmt.Errorf("mpp: segment %d task %d failed after %d attempts: %w",
			seg, task, c.retry.MaxRetries+1, lastErr)
	}
	return retried, lastErr
}

// attemptSegmentTask is one attempt: draw (and apply) any injected
// fault, then run the task body. A panicking worker — injected or real —
// is recovered here and surfaces as a per-segment error gathered at the
// motion boundary; this is the last-resort guard that keeps distributed
// queries panic-free.
func (c *Cluster) attemptSegmentTask(task int64, seg, attempt int, f func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mpp: segment %d task %d panicked: %v", seg, task, r)
		}
	}()
	if c.faults != nil {
		switch kind := c.faults.draw(task, seg, attempt); kind {
		case faultFail:
			c.noteFault(task, seg, attempt, kind)
			return fmt.Errorf("mpp: injected failure (task %d, segment %d, attempt %d)", task, seg, attempt)
		case faultPanic:
			c.noteFault(task, seg, attempt, kind)
			// The only panic in this package; the recover above converts it
			// into a per-segment error like any real worker panic.
			panic(fmt.Sprintf("injected panic (task %d, segment %d, attempt %d)", task, seg, attempt))
		case faultStraggle:
			c.noteFault(task, seg, attempt, kind)
			if err := c.sleep(c.faults.StraggleDelay); err != nil {
				return err
			}
		}
	}
	return f(seg)
}

// keysEqual reports whether two distribution key tuples are identical.
func keysEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
