// Package ingest is the streaming-ingest pipeline: a bounded firehose
// queue feeding a batcher (size and latency triggers) feeding a single
// writer that absorbs fact batches through an Absorber — in probkb, a
// semi-naive delta-grounding extend round per batch — and pays down
// marginal staleness through a bounded-staleness refresh policy.
//
// The pipeline owns no knowledge-base machinery. It owns the queueing
// discipline: facts submitted concurrently are absorbed in arrival
// order, one batch at a time; a full queue pushes back on Submit
// instead of buffering without bound; a batch forms when MaxBatch facts
// are waiting or MaxDelay has passed since the batch's first fact,
// whichever comes first. Absorption is serial, so the Absorber never
// sees two concurrent calls.
//
// Staleness model: every absorbed batch makes its facts (and their
// closure) visible immediately, but marginal refresh — the expensive
// factor + Gibbs pass — runs only when the policy fires: every
// RefreshEvery batches, or when RefreshInterval has passed since the
// last refresh, or at Close when RefreshOnClose is set. The current
// staleness (batches absorbed since the last refresh) is exported as
// the probkb_ingest_staleness_batches gauge.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

func init() {
	obs.Default.Help("probkb_ingest_facts_total", "Facts absorbed by the streaming-ingest pipeline.")
	obs.Default.Help("probkb_ingest_batches_total", "Fact batches absorbed by the streaming-ingest pipeline.")
	obs.Default.Help("probkb_ingest_refreshes_total", "Marginal refresh passes run by the streaming-ingest pipeline.")
	obs.Default.Help("probkb_ingest_queue_depth", "Facts waiting in the ingest firehose queue.")
	obs.Default.Help("probkb_ingest_staleness_batches", "Batches absorbed since the last marginal refresh.")
	obs.Default.Help("probkb_ingest_absorb_seconds", "Wall time absorbing one ingest batch (delta grounding + publication).")
}

// Fact is one symbolic observed fact in the ingest stream.
type Fact struct {
	Rel         string
	X, XClass   string
	Y, YClass   string
	Probability float64
}

// Ack describes one absorbed batch. The Absorber fills the absorption
// fields; the pipeline fills the bookkeeping ones.
type Ack struct {
	// Batch is the 1-based index of the batch within this pipeline run.
	Batch int
	// Facts is how many facts the batch carried.
	Facts int
	// Added is how many were genuinely new (not already in the closure).
	Added int
	// Derived is how many new facts delta grounding inferred from them.
	Derived int
	// Generation identifies the published expansion the batch landed in.
	Generation uint64
	// DurableSeq is the durable WAL record count after the batch (0
	// when no store is attached).
	DurableSeq int64
	// StaleBatches is the marginal staleness after this batch: batches
	// absorbed since the last refresh.
	StaleBatches int
	// Refreshed reports whether a marginal refresh ran right after this
	// batch.
	Refreshed bool
}

// Absorber lands batches. Calls are serialized by the pipeline.
type Absorber interface {
	// Absorb makes one batch's facts and their closure visible (and
	// durable, if the implementation persists). It fills Added, Derived,
	// Generation, and DurableSeq of the returned Ack.
	Absorb(ctx context.Context, facts []Fact) (Ack, error)
	// Refresh pays down accumulated marginal staleness. It returns the
	// generation the refreshed state was published as.
	Refresh(ctx context.Context) (uint64, error)
}

// Config tunes the pipeline. Zero values mean the documented defaults.
type Config struct {
	// MaxBatch is the batch-size trigger (default 256 facts).
	MaxBatch int
	// MaxDelay is the batch-latency trigger: a batch closes at most
	// this long after its first fact arrived (default 50ms).
	MaxDelay time.Duration
	// QueueDepth bounds the firehose queue in facts; Submit blocks when
	// it is full (default 4096).
	QueueDepth int
	// RefreshEvery runs a marginal refresh every K absorbed batches
	// (0 = no batch-count trigger).
	RefreshEvery int
	// RefreshInterval runs a marginal refresh when this much time has
	// passed since the last one (0 = no time trigger).
	RefreshInterval time.Duration
	// RefreshOnClose runs a final refresh at Close when any batch was
	// absorbed since the last refresh.
	RefreshOnClose bool
	// OnBatch, when non-nil, observes every absorbed batch's Ack.
	OnBatch func(Ack)
	// Journal, when non-nil, receives ingest_batch and ingest_refresh
	// events (nil-safe; payloads are deterministic for a fixed stream
	// and batch split, so Canonicalize keeps them).
	Journal *journal.Writer
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 50 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	return c
}

// Stats is a point-in-time snapshot of the pipeline's counters.
type Stats struct {
	Facts        int64 // facts absorbed
	Batches      int64 // batches absorbed
	Refreshes    int64 // refresh passes run
	QueueDepth   int   // facts currently queued
	StaleBatches int   // batches since the last refresh
}

// ErrClosed reports a Submit after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// Pipeline is the firehose: Submit feeds it, a single writer goroutine
// drains it through the Absorber. Create with New, start with Start.
type Pipeline struct {
	cfg Config
	abs Absorber

	ch   chan Fact
	done chan struct{} // closed when the writer exits

	// sendMu fences Submit's channel sends against Close's close(ch):
	// senders hold it shared, Close holds it exclusive, so no send can
	// be in flight when the channel closes.
	sendMu sync.RWMutex

	mu          sync.Mutex
	closed      bool
	err         error
	facts       int64
	batches     int64
	refreshes   int64
	stale       int
	lastRefresh time.Time

	qdepth    *obs.Gauge
	staleness *obs.Gauge
}

// New builds a pipeline over the absorber; Start launches its writer.
func New(a Absorber, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		cfg:       cfg,
		abs:       a,
		ch:        make(chan Fact, cfg.QueueDepth),
		done:      make(chan struct{}),
		qdepth:    obs.Default.Gauge("probkb_ingest_queue_depth"),
		staleness: obs.Default.Gauge("probkb_ingest_staleness_batches"),
	}
}

// Start launches the writer goroutine under ctx: cancelling ctx aborts
// the in-flight batch (the Absorber sees the cancellation and must
// publish nothing for it) and stops the pipeline.
func (p *Pipeline) Start(ctx context.Context) {
	go p.run(ctx)
}

// Submit enqueues facts in order, blocking while the queue is full. It
// fails once the pipeline is closed, stopped, or ctx is cancelled;
// facts enqueued before the failure are still absorbed.
func (p *Pipeline) Submit(ctx context.Context, facts ...Fact) error {
	for _, f := range facts {
		if err := p.send(ctx, f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pipeline) send(ctx context.Context, f Fact) error {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	p.mu.Lock()
	closed, err := p.closed, p.err
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		return ErrClosed
	}
	select {
	case p.ch <- f:
		p.qdepth.Set(float64(len(p.ch)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		if err := p.Err(); err != nil {
			return err
		}
		return ErrClosed
	}
}

// Close stops intake, drains everything already submitted, runs the
// final refresh when configured, and waits for the writer to exit. It
// returns the first pipeline error (nil after a clean drain).
func (p *Pipeline) Close(ctx context.Context) error {
	p.sendMu.Lock()
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		close(p.ch)
	}
	p.sendMu.Unlock()
	select {
	case <-p.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return p.Err()
}

// Err returns the first error that stopped the writer, if any.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Facts:        p.facts,
		Batches:      p.batches,
		Refreshes:    p.refreshes,
		QueueDepth:   len(p.ch),
		StaleBatches: p.stale,
	}
}

// fail latches the writer's terminal error.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// run is the writer: batch formation and serial absorption.
func (p *Pipeline) run(ctx context.Context) {
	defer close(p.done)
	p.mu.Lock()
	p.lastRefresh = time.Now()
	p.mu.Unlock()
	for {
		// Block for the batch's first fact.
		var batch []Fact
		select {
		case f, ok := <-p.ch:
			if !ok {
				p.finish(ctx)
				return
			}
			batch = append(batch, f)
		case <-ctx.Done():
			p.fail(ctx.Err())
			return
		}

		// Fill until the size or latency trigger fires.
		drained := false
		deadline := time.NewTimer(p.cfg.MaxDelay)
		for len(batch) < p.cfg.MaxBatch && !drained {
			select {
			case f, ok := <-p.ch:
				if !ok {
					drained = true // channel closed: this is the last batch
					continue
				}
				batch = append(batch, f)
			case <-deadline.C:
				drained = true
			case <-ctx.Done():
				deadline.Stop()
				p.fail(ctx.Err())
				return
			}
		}
		deadline.Stop()
		p.qdepth.Set(float64(len(p.ch)))

		if err := p.absorb(ctx, batch); err != nil {
			p.fail(err)
			return
		}
	}
}

// finish drains whatever Close left in the queue and runs the final
// refresh.
func (p *Pipeline) finish(ctx context.Context) {
	var batch []Fact
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		if err := p.absorb(ctx, batch); err != nil {
			p.fail(err)
			return false
		}
		batch = batch[:0]
		return true
	}
	for f := range p.ch {
		batch = append(batch, f)
		if len(batch) >= p.cfg.MaxBatch && !flush() {
			return
		}
	}
	if !flush() {
		return
	}
	p.mu.Lock()
	stale := p.stale
	p.mu.Unlock()
	if p.cfg.RefreshOnClose && stale > 0 {
		if err := p.refresh(ctx, int(p.batchCount())); err != nil {
			p.fail(err)
		}
	}
}

func (p *Pipeline) batchCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batches
}

// absorb lands one batch and applies the refresh policy.
func (p *Pipeline) absorb(ctx context.Context, batch []Fact) error {
	ctx, span := obs.StartSpan(ctx, "ingest.batch")
	defer span.End()
	start := time.Now()
	ack, err := p.abs.Absorb(ctx, batch)
	if err != nil {
		return fmt.Errorf("ingest: absorbing batch of %d: %w", len(batch), err)
	}
	elapsed := time.Since(start)

	p.mu.Lock()
	p.facts += int64(len(batch))
	p.batches++
	p.stale++
	ack.Batch = int(p.batches)
	ack.Facts = len(batch)
	ack.StaleBatches = p.stale
	stale, last := p.stale, p.lastRefresh
	p.mu.Unlock()

	obs.Default.Counter("probkb_ingest_facts_total").Add(int64(len(batch)))
	obs.Default.Counter("probkb_ingest_batches_total").Inc()
	obs.Default.Histogram("probkb_ingest_absorb_seconds", nil).Observe(elapsed.Seconds())
	p.staleness.Set(float64(stale))
	span.SetAttr("facts", len(batch))
	span.SetAttr("added", ack.Added)
	span.SetAttr("derived", ack.Derived)

	due := (p.cfg.RefreshEvery > 0 && stale >= p.cfg.RefreshEvery) ||
		(p.cfg.RefreshInterval > 0 && time.Since(last) >= p.cfg.RefreshInterval)
	if due {
		if err := p.refresh(ctx, ack.Batch); err != nil {
			return err
		}
		ack.Refreshed = true
		ack.StaleBatches = 0
	}

	p.cfg.Journal.Emit(journal.TypeIngestBatch, journal.IngestBatch{
		Batch:        ack.Batch,
		Facts:        ack.Facts,
		Added:        ack.Added,
		Derived:      ack.Derived,
		StaleBatches: ack.StaleBatches,
		Seconds:      elapsed.Seconds(),
	})
	if p.cfg.OnBatch != nil {
		p.cfg.OnBatch(ack)
	}
	return nil
}

// refresh runs one marginal refresh pass and resets staleness.
func (p *Pipeline) refresh(ctx context.Context, afterBatch int) error {
	ctx, span := obs.StartSpan(ctx, "ingest.refresh")
	defer span.End()
	start := time.Now()
	gen, err := p.abs.Refresh(ctx)
	if err != nil {
		return fmt.Errorf("ingest: refreshing marginals: %w", err)
	}
	p.mu.Lock()
	p.refreshes++
	p.stale = 0
	p.lastRefresh = time.Now()
	p.mu.Unlock()
	obs.Default.Counter("probkb_ingest_refreshes_total").Inc()
	p.staleness.Set(0)
	span.SetAttr("generation", int(gen))
	p.cfg.Journal.Emit(journal.TypeIngestRefresh, journal.IngestRefresh{
		Batch:   afterBatch,
		Seconds: time.Since(start).Seconds(),
	})
	return nil
}
