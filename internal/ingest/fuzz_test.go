package ingest

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// FuzzIngestBatching pins the firehose's conservation law under
// arbitrary stream contents and batching parameters: every submitted
// fact is absorbed exactly once, in submission order, in batches never
// larger than the size trigger, with the refresh policy honored and
// staleness fully paid down at close. The absorber is the recording
// fake — the property under fuzz is the queue/batcher/writer machinery
// itself, not grounding (the differential and property batteries cover
// that).
func FuzzIngestBatching(f *testing.F) {
	f.Add([]byte("abcdef"), uint8(3), uint8(0))
	f.Add([]byte{}, uint8(0), uint8(2))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint8(255), uint8(1))
	f.Add([]byte{0x00, 0xff}, uint8(1), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, maxBatch, refreshEvery uint8) {
		if len(data) > 512 {
			data = data[:512]
		}
		mb := int(maxBatch)%16 + 1
		re := int(refreshEvery) % 4
		abs := &fakeAbsorber{}
		p := New(abs, Config{
			// An unreachable latency trigger keeps batch shapes a pure
			// function of the inputs, so violations reproduce.
			MaxBatch: mb, MaxDelay: time.Hour, QueueDepth: 8,
			RefreshEvery: re, RefreshOnClose: true,
		})
		ctx := context.Background()
		p.Start(ctx)

		want := make([]Fact, len(data))
		for i, b := range data {
			want[i] = Fact{
				Rel: "r", X: fmt.Sprintf("x%d", i), XClass: "C",
				Y: fmt.Sprintf("y%d", b), YClass: "C",
				Probability: float64(b) / 255,
			}
			if err := p.Submit(ctx, want[i]); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
		if err := p.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.Submit(ctx, Fact{Rel: "r"}); err != ErrClosed {
			t.Fatalf("submit after close: %v, want ErrClosed", err)
		}

		abs.mu.Lock()
		var got []Fact
		for _, b := range abs.batches {
			if len(b) == 0 || len(b) > mb {
				abs.mu.Unlock()
				t.Fatalf("batch of %d facts outside (0, %d]", len(b), mb)
			}
			got = append(got, b...)
		}
		batches, refreshes := len(abs.batches), abs.refreshes
		abs.mu.Unlock()

		if len(got) != len(want) {
			t.Fatalf("absorbed %d facts, submitted %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fact %d reordered or corrupted: got %+v, want %+v", i, got[i], want[i])
			}
		}
		st := p.Stats()
		if int(st.Facts) != len(want) || int(st.Batches) != batches || int(st.Refreshes) != refreshes {
			t.Fatalf("stats %+v disagree with absorber (%d batches, %d refreshes, %d facts)",
				st, batches, refreshes, len(want))
		}
		if batches > 0 && st.StaleBatches != 0 {
			t.Fatalf("staleness %d after close with RefreshOnClose", st.StaleBatches)
		}
		if re > 0 {
			// Every re-th batch refreshes; the close pass covers the tail.
			min := batches / re
			if refreshes < min {
				t.Fatalf("%d refreshes for %d batches at refreshEvery=%d, want >= %d",
					refreshes, batches, re, min)
			}
		}
	})
}
