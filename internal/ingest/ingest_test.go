package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"probkb/internal/obs/journal"
)

// fakeAbsorber records batches; configurable failure and latency.
type fakeAbsorber struct {
	mu        sync.Mutex
	batches   [][]Fact
	refreshes int
	gen       uint64
	failOn    int // 1-based batch index to fail on (0 = never)
	delay     time.Duration
}

func (a *fakeAbsorber) Absorb(ctx context.Context, facts []Fact) (Ack, error) {
	if a.delay > 0 {
		select {
		case <-time.After(a.delay):
		case <-ctx.Done():
			return Ack{}, ctx.Err()
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failOn > 0 && len(a.batches)+1 == a.failOn {
		return Ack{}, errors.New("boom")
	}
	cp := append([]Fact(nil), facts...)
	a.batches = append(a.batches, cp)
	a.gen++
	return Ack{Added: len(facts), Derived: 2 * len(facts), Generation: a.gen, DurableSeq: int64(a.gen)}, nil
}

func (a *fakeAbsorber) Refresh(ctx context.Context) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.refreshes++
	a.gen++
	return a.gen, nil
}

func (a *fakeAbsorber) snapshot() (n int, refreshes int, total int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, b := range a.batches {
		total += len(b)
	}
	return len(a.batches), a.refreshes, total
}

func fact(i int) Fact {
	return Fact{Rel: "r", X: fmt.Sprintf("x%d", i), XClass: "C", Y: fmt.Sprintf("y%d", i), YClass: "C", Probability: 0.9}
}

func TestPipelineBatchesBySize(t *testing.T) {
	abs := &fakeAbsorber{}
	var acks []Ack
	var ackMu sync.Mutex
	p := New(abs, Config{
		MaxBatch: 10,
		MaxDelay: time.Hour, // size trigger only
		OnBatch: func(a Ack) {
			ackMu.Lock()
			acks = append(acks, a)
			ackMu.Unlock()
		},
	})
	p.Start(context.Background())
	for i := 0; i < 95; i++ {
		if err := p.Submit(context.Background(), fact(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n, _, total := abs.snapshot()
	if total != 95 {
		t.Fatalf("absorbed %d facts, want 95", total)
	}
	// 95 facts at MaxBatch 10: at least 10 batches, none over the cap.
	if n < 10 {
		t.Fatalf("got %d batches, want >= 10", n)
	}
	for i, b := range abs.batches {
		if len(b) > 10 {
			t.Fatalf("batch %d has %d facts, exceeds MaxBatch 10", i, len(b))
		}
	}
	// Facts absorbed in submission order.
	seen := 0
	for _, b := range abs.batches {
		for _, f := range b {
			if want := fact(seen); f != want {
				t.Fatalf("fact %d = %+v, want %+v", seen, f, want)
			}
			seen++
		}
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acks) != n {
		t.Fatalf("got %d acks, want %d", len(acks), n)
	}
	for i, a := range acks {
		if a.Batch != i+1 {
			t.Fatalf("ack %d has Batch %d, want %d", i, a.Batch, i+1)
		}
		if i > 0 && a.Generation <= acks[i-1].Generation {
			t.Fatalf("ack generations not monotone: %d then %d", acks[i-1].Generation, a.Generation)
		}
		if i > 0 && a.DurableSeq < acks[i-1].DurableSeq {
			t.Fatalf("ack durable seqs not monotone: %d then %d", acks[i-1].DurableSeq, a.DurableSeq)
		}
	}
	st := p.Stats()
	if st.Facts != 95 || st.Batches != int64(n) || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPipelineLatencyTrigger(t *testing.T) {
	abs := &fakeAbsorber{}
	p := New(abs, Config{MaxBatch: 1 << 20, MaxDelay: 20 * time.Millisecond})
	p.Start(context.Background())
	if err := p.Submit(context.Background(), fact(0), fact(1)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _, total := abs.snapshot(); n >= 1 && total == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("latency trigger never flushed the batch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPipelineRefreshEvery(t *testing.T) {
	abs := &fakeAbsorber{}
	p := New(abs, Config{MaxBatch: 5, MaxDelay: time.Hour, RefreshEvery: 2, RefreshOnClose: true})
	p.Start(context.Background())
	for i := 0; i < 25; i++ {
		if err := p.Submit(context.Background(), fact(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n, refreshes, _ := abs.snapshot()
	// Every 2 batches triggers a refresh; the close-time refresh covers a
	// trailing odd batch.
	wantMin := n / 2
	if refreshes < wantMin {
		t.Fatalf("got %d refreshes over %d batches, want >= %d", refreshes, n, wantMin)
	}
	st := p.Stats()
	if st.StaleBatches != 0 {
		t.Fatalf("staleness after close = %d, want 0 (RefreshOnClose)", st.StaleBatches)
	}
	if st.Refreshes != int64(refreshes) {
		t.Fatalf("stats.Refreshes = %d, absorber saw %d", st.Refreshes, refreshes)
	}
}

func TestPipelineErrorLatch(t *testing.T) {
	abs := &fakeAbsorber{failOn: 2}
	p := New(abs, Config{MaxBatch: 1, MaxDelay: time.Hour})
	p.Start(context.Background())
	// Keep submitting until the latched failure surfaces.
	var submitErr error
	for i := 0; i < 1000; i++ {
		if submitErr = p.Submit(context.Background(), fact(i)); submitErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if submitErr == nil {
		t.Fatal("Submit never surfaced the absorb failure")
	}
	if err := p.Close(context.Background()); err == nil {
		t.Fatal("Close returned nil after an absorb failure")
	}
	n, _, _ := abs.snapshot()
	if n != 1 {
		t.Fatalf("absorber landed %d batches, want 1 (batch 2 failed)", n)
	}
}

func TestPipelineSubmitAfterClose(t *testing.T) {
	abs := &fakeAbsorber{}
	p := New(abs, Config{MaxBatch: 4, MaxDelay: time.Hour})
	p.Start(context.Background())
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Submit(context.Background(), fact(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestPipelineCancelAbortsInFlight(t *testing.T) {
	abs := &fakeAbsorber{delay: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	p := New(abs, Config{MaxBatch: 1, MaxDelay: time.Hour})
	p.Start(ctx)
	if err := p.Submit(context.Background(), fact(0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // let the writer pick the batch up
	cancel()
	closeCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
	defer done()
	err := p.Close(closeCtx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel = %v, want context.Canceled", err)
	}
	n, _, _ := abs.snapshot()
	if n != 0 {
		t.Fatalf("cancelled pipeline landed %d batches, want 0", n)
	}
}

func TestPipelineConcurrentSubmitters(t *testing.T) {
	abs := &fakeAbsorber{}
	p := New(abs, Config{MaxBatch: 32, MaxDelay: 5 * time.Millisecond, QueueDepth: 64})
	p.Start(context.Background())
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := p.Submit(context.Background(), fact(w*each+i)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, _, total := abs.snapshot()
	if total != workers*each {
		t.Fatalf("absorbed %d facts, want %d", total, workers*each)
	}
}

func TestPipelineJournalEvents(t *testing.T) {
	abs := &fakeAbsorber{}
	jr := journal.New()
	p := New(abs, Config{MaxBatch: 3, MaxDelay: time.Hour, RefreshEvery: 2, Journal: jr})
	p.Start(context.Background())
	for i := 0; i < 12; i++ {
		if err := p.Submit(context.Background(), fact(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	batchEvents, refreshEvents := 0, 0
	for _, ev := range jr.Events() {
		switch ev.Type {
		case journal.TypeIngestBatch:
			batchEvents++
		case journal.TypeIngestRefresh:
			refreshEvents++
		}
	}
	n, refreshes, _ := abs.snapshot()
	if batchEvents != n {
		t.Fatalf("journal has %d ingest_batch events, absorber saw %d batches", batchEvents, n)
	}
	if refreshEvents != refreshes {
		t.Fatalf("journal has %d ingest_refresh events, absorber saw %d refreshes", refreshEvents, refreshes)
	}
}
