package proptest

import (
	"testing"
)

// failsRetrying adapts CheckMVCC into a shrink predicate: concurrency
// violations are flaky by nature, so a candidate counts as failing if
// any of a few runs fails.
func failsRetrying(retries int) func(*MVCCCase) bool {
	return func(c *MVCCCase) bool {
		for i := 0; i < retries; i++ {
			if CheckMVCC(c) != nil {
				return true
			}
		}
		return false
	}
}

// TestSnapshotIsolation is the MVCC property: across randomized
// writer/reader interleavings, a pinned reader observes exactly one
// serial generation — never a mixture — and quiescence reclaims every
// generation but the current one. Run under -race (make race does),
// where a torn read is also a reported data race.
func TestSnapshotIsolation(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	if *flagN > 0 {
		n = *flagN
	}
	for i := 0; i < n; i++ {
		seed := *flagSeed + int64(i)
		c := NewMVCCCase(seed)
		if err := CheckMVCC(c); err != nil {
			minCase := ShrinkMVCC(c, failsRetrying(3))
			t.Fatalf("snapshot isolation violated at seed %d: %v\n\nshrunk schedule:\n%s\noriginal schedule:\n%s",
				seed, err, minCase, c)
		}
	}
}

// TestReplayMVCCDeterministic pins the oracle itself: replaying the
// same schedule twice yields identical per-generation fingerprints,
// and each round changes the fingerprint (no vacuous generations).
func TestReplayMVCCDeterministic(t *testing.T) {
	c := NewMVCCCase(11)
	a, b := ReplayMVCC(c), ReplayMVCC(c)
	if len(a) != len(c.Rounds)+1 {
		t.Fatalf("replay returned %d fingerprints for %d rounds", len(a), len(c.Rounds))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay not deterministic at generation %d: %x vs %x", i, a[i], b[i])
		}
	}
}

// TestShrinkMVCCReduces checks the schedule shrinker actually shrinks:
// with a predicate that only needs two rounds to "fail", the minimum
// has exactly two rounds and round contents zeroed where possible.
func TestShrinkMVCCReduces(t *testing.T) {
	c := NewMVCCCase(3)
	for len(c.Rounds) < 3 {
		c.Rounds = append(c.Rounds, c.Rounds[0])
	}
	fails := func(x *MVCCCase) bool { return len(x.Rounds) >= 2 }
	minCase := ShrinkMVCC(c, fails)
	if !fails(minCase) {
		t.Fatal("shrunk schedule no longer fails")
	}
	if len(minCase.Rounds) != 2 {
		t.Fatalf("shrink left %d rounds, want 2", len(minCase.Rounds))
	}
}
