package proptest

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"probkb/internal/epoch"
	"probkb/internal/kb"
)

// This file is the MVCC serving tier's property-based battery: it
// generates randomized writer/reader interleavings over the epoch
// manager and the KB's copy-on-write fork, checks snapshot isolation —
// every pinned reader observes exactly one generation of the KB, never
// a mix of two — and shrinks failing schedules to a minimal one.
//
// The oracle is a serial replay: the same rounds applied with no
// concurrency yield one fingerprint per generation, and a concurrent
// reader's observation must equal one of them bit-for-bit. A torn read
// (a fingerprint matching no generation) or a drifting pin (two
// fingerprints of the same pinned value disagreeing) is a violation.

// MVCCFact is one symbolic fact in a generated schedule.
type MVCCFact struct {
	Rel, X, Y string
	W         float64
}

// MVCCRound is one writer step: the mutations that build generation
// N+1 from N on a fork. The three fields exercise the three mutation
// classes that could tear a frozen reader: appends (Adds), in-place
// element writes (Reweight), and wholesale slice rewrites (Delete).
type MVCCRound struct {
	Adds     []MVCCFact
	Reweight int // rewrite the weights of this many earliest facts
	Delete   int // delete this many latest facts
}

// MVCCCase is one generated schedule: Rounds sequential writer steps
// racing Readers concurrent pin/scan/unpin loops, with per-goroutine
// jitter drawn from Seed to randomize the interleaving.
type MVCCCase struct {
	Seed    int64
	Rounds  []MVCCRound
	Readers int
}

// String renders the schedule compactly for failure reports.
func (c *MVCCCase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d readers=%d rounds=%d\n", c.Seed, c.Readers, len(c.Rounds))
	for i, r := range c.Rounds {
		fmt.Fprintf(&b, "round %d: +%d facts, reweight %d, delete %d\n", i, len(r.Adds), r.Reweight, r.Delete)
	}
	return b.String()
}

// NewMVCCCase generates a random schedule. Small symbol domains make
// duplicate interns, weight-merge collisions, and re-added deleted
// facts common.
func NewMVCCCase(seed int64) *MVCCCase {
	rng := rand.New(rand.NewSource(seed))
	c := &MVCCCase{Seed: seed, Readers: 2 + rng.Intn(3)}
	rounds := 1 + rng.Intn(4)
	for i := 0; i < rounds; i++ {
		var r MVCCRound
		for n := 1 + rng.Intn(6); n > 0; n-- {
			r.Adds = append(r.Adds, MVCCFact{
				Rel: fmt.Sprintf("r%d", rng.Intn(3)),
				X:   fmt.Sprintf("e%d", rng.Intn(8)),
				Y:   fmt.Sprintf("e%d", rng.Intn(8)),
				W:   float64(rng.Intn(100)) / 100,
			})
		}
		r.Reweight = rng.Intn(4)
		r.Delete = rng.Intn(2)
		c.Rounds = append(c.Rounds, r)
	}
	return c
}

// mvccBase builds the generation-0 KB every schedule starts from.
func mvccBase() *kb.KB {
	k := kb.New()
	k.InternFact("r0", "e0", "C", "e1", "C", 0.9)
	k.InternFact("r1", "e1", "C", "e2", "C", 0.8)
	return k
}

// applyRound applies one round's mutations to a (forked) KB. The
// reweight values are a pure function of (round, index) so the serial
// replay and the concurrent writer produce identical generations.
func applyRound(k *kb.KB, r MVCCRound, round int) {
	for _, f := range r.Adds {
		k.InternFact(f.Rel, f.X, "C", f.Y, "C", f.W)
	}
	for i := 0; i < r.Reweight && i < len(k.Facts); i++ {
		k.SetWeight(k.Facts[i].Key(), float64((round*31+i)%100)/100)
	}
	if r.Delete > 0 && len(k.Facts) > 0 {
		drop := map[kb.Key]bool{}
		for i := 0; i < r.Delete && i < len(k.Facts); i++ {
			drop[k.Facts[len(k.Facts)-1-i].Key()] = true
		}
		k.DeleteFacts(drop)
	}
}

// fingerprint hashes everything a reader can observe about a KB — the
// resolved fact tuples, the symbol tables, and the membership rows —
// into one canonical value. Two KBs fingerprint equal iff a reader
// could not tell them apart.
func fingerprint(k *kb.KB) uint64 {
	lines := make([]string, 0, len(k.Facts)+len(k.Members))
	for _, f := range k.Facts {
		lines = append(lines, fmt.Sprintf("f|%s|%s|%s|%s|%s|%.6f",
			k.RelDict.Name(f.Rel), k.Entities.Name(f.X), k.Classes.Name(f.XClass),
			k.Entities.Name(f.Y), k.Classes.Name(f.YClass), f.W))
	}
	for _, m := range k.Members {
		lines = append(lines, fmt.Sprintf("m|%s|%s", k.Classes.Name(m.Class), k.Entities.Name(m.Entity)))
	}
	lines = append(lines, "e|"+strings.Join(k.Entities.Names(), ","))
	lines = append(lines, "r|"+strings.Join(k.RelDict.Names(), ","))
	sort.Strings(lines[:len(k.Facts)+len(k.Members)])
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// ReplayMVCC is the serial oracle: it applies the schedule's rounds
// with no concurrency and returns the fingerprint of every generation,
// index 0 being the base.
func ReplayMVCC(c *MVCCCase) []uint64 {
	fps := make([]uint64, 0, len(c.Rounds)+1)
	cur := mvccBase()
	fps = append(fps, fingerprint(cur))
	for i, r := range c.Rounds {
		next := cur.Fork()
		applyRound(next, r, i)
		fps = append(fps, fingerprint(next))
		cur = next
	}
	return fps
}

// CheckMVCC runs the schedule concurrently — one writer publishing
// generations through an epoch manager, c.Readers readers pinning and
// scanning — and returns an error describing the first snapshot-
// isolation or reclamation violation. Run it under -race: the torn
// reads it hunts are also data races.
func CheckMVCC(c *MVCCCase) error {
	expected := ReplayMVCC(c)
	want := make(map[uint64]int, len(expected))
	for g, fp := range expected {
		want[fp] = g
	}

	mgr := epoch.New(mvccBase(), nil)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	done := make(chan struct{})

	for rd := 0; rd < c.Readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.Seed ^ int64(rd+1)))
			for {
				select {
				case <-done:
					return
				default:
				}
				pin := mgr.Pin()
				k := pin.Value()
				fp1 := fingerprint(k)
				// Randomized interleaving: yield a random number of times
				// mid-read so the writer can publish (and earlier
				// generations can be reclaimed) while this pin is live.
				for n := rng.Intn(4); n > 0; n-- {
					runtime.Gosched()
				}
				fp2 := fingerprint(k)
				gen := pin.Gen()
				pin.Unpin()
				if fp1 != fp2 {
					report(fmt.Errorf("reader %d: pinned generation %d drifted mid-read (%x -> %x)", rd, gen, fp1, fp2))
					return
				}
				if _, ok := want[fp1]; !ok {
					report(fmt.Errorf("reader %d: generation %d fingerprint %x matches NO serial generation — mixed/torn state", rd, gen, fp1))
					return
				}
			}
		}(rd)
	}

	// The single writer (competing writers serialize on the server's
	// writer mutex; the property under test is reader isolation).
	wrng := rand.New(rand.NewSource(c.Seed))
	cur := mgr.Pin() // hold the base so the builder's source can't be reclaimed mid-fork
	for i, r := range c.Rounds {
		next := cur.Value().Fork()
		applyRound(next, r, i)
		if got, wantFP := fingerprint(next), expected[i+1]; got != wantFP {
			close(done)
			wg.Wait()
			cur.Unpin()
			return fmt.Errorf("writer: generation %d fingerprint %x != serial replay %x", i+1, got, wantFP)
		}
		mgr.Publish(next)
		cur.Unpin()
		cur = mgr.Pin()
		for n := wrng.Intn(3); n > 0; n-- {
			runtime.Gosched()
		}
	}
	cur.Unpin()
	close(done)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Reclamation: every reader unpinned and the current generation is
	// the only survivor — nothing freed while pinned would have shown up
	// as a torn read above; nothing may leak now.
	if pins := mgr.Pins(); pins != 0 {
		return fmt.Errorf("reclamation: %d pins leaked after all readers exited", pins)
	}
	if live := mgr.Live(); live != 1 {
		return fmt.Errorf("reclamation: %d generations live after quiescence, want 1", live)
	}
	if got, wantN := mgr.Reclaimed(), uint64(len(c.Rounds)); got != wantN {
		return fmt.Errorf("reclamation: %d generations reclaimed, want %d", got, wantN)
	}
	return nil
}

// ShrinkMVCC reduces a failing schedule greedily: drop whole rounds,
// then halve each round's adds, zero its reweights/deletes, and reduce
// the reader count. Concurrency failures are flaky by nature, so
// callers pass a fails predicate that retries CheckMVCC several times.
func ShrinkMVCC(c *MVCCCase, fails func(*MVCCCase) bool) *MVCCCase {
	cur := c
	for {
		next, ok := shrinkMVCCStep(cur, fails)
		if !ok {
			return cur
		}
		cur = next
	}
}

func shrinkMVCCStep(c *MVCCCase, fails func(*MVCCCase) bool) (*MVCCCase, bool) {
	for i := range c.Rounds {
		cand := &MVCCCase{Seed: c.Seed, Readers: c.Readers}
		cand.Rounds = append(append([]MVCCRound(nil), c.Rounds[:i]...), c.Rounds[i+1:]...)
		if fails(cand) {
			return cand, true
		}
	}
	for i := range c.Rounds {
		r := c.Rounds[i]
		for _, mut := range []MVCCRound{
			{Adds: r.Adds[:len(r.Adds)/2], Reweight: r.Reweight, Delete: r.Delete},
			{Adds: r.Adds, Reweight: 0, Delete: r.Delete},
			{Adds: r.Adds, Reweight: r.Reweight, Delete: 0},
		} {
			if len(mut.Adds) == len(r.Adds) && mut.Reweight == r.Reweight && mut.Delete == r.Delete {
				continue // no reduction
			}
			cand := &MVCCCase{Seed: c.Seed, Readers: c.Readers, Rounds: append([]MVCCRound(nil), c.Rounds...)}
			cand.Rounds[i] = mut
			if fails(cand) {
				return cand, true
			}
		}
	}
	if c.Readers > 1 {
		cand := &MVCCCase{Seed: c.Seed, Readers: c.Readers - 1, Rounds: c.Rounds}
		if fails(cand) {
			return cand, true
		}
	}
	return nil, false
}
