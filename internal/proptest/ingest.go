package proptest

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"probkb"
	"probkb/internal/ingest"
)

// This file is the streaming-ingest property battery: it generates
// random fact streams and random batch partitions of them, absorbs the
// stream through the Ingester's deferred-extend path (semi-naive delta
// grounding, one published generation per batch), and checks the split
// invariant — the final closure is identical to a t=0 expansion of the
// whole stream, no matter how the firehose was chopped into batches or
// where a batch was cancelled mid-flight. Failing cases shrink to a
// minimal stream/partition.

// IngestFact is one streamed fact in a generated case. Streams use a
// single observed relation so generated facts never collide with
// derived ones (weight-merge policy differences would otherwise make
// legitimate paths diverge).
type IngestFact struct {
	X, Y string
	W    float64
}

// IngestCase is one generated scenario: Facts streamed in order,
// partitioned into batches of the sizes in Splits (summing to
// len(Facts)). CancelAt > 0 aborts batch number CancelAt with an
// already-cancelled context — the absorber must publish nothing for it
// — after which the whole stream is re-absorbed, modeling the
// crash-recovery resume (idempotent re-streaming).
type IngestCase struct {
	Seed     int64
	Facts    []IngestFact
	Splits   []int
	CancelAt int
}

// String renders the case compactly for failure reports.
func (c *IngestCase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d facts=%d splits=%v cancelAt=%d\n", c.Seed, len(c.Facts), c.Splits, c.CancelAt)
	for i, f := range c.Facts {
		fmt.Fprintf(&b, "fact %d: r0(%s, %s) w=%.2f\n", i, f.X, f.Y, f.W)
	}
	return b.String()
}

// NewIngestCase generates a random stream over a small entity domain
// (duplicate join keys are common, so the transitive rule has real
// work) and a random batch partition of it. Fact keys are unique by
// construction: the closure's keep-first and the oracle's max-merge
// dedup policies only differ on duplicates, which is not the property
// under test.
func NewIngestCase(seed int64) *IngestCase {
	rng := rand.New(rand.NewSource(seed))
	c := &IngestCase{Seed: seed}
	n := 3 + rng.Intn(10)
	seen := map[string]bool{}
	for tries := 0; len(c.Facts) < n && tries < n*20; tries++ {
		f := IngestFact{
			X: fmt.Sprintf("e%d", rng.Intn(8)),
			Y: fmt.Sprintf("e%d", rng.Intn(8)),
			W: float64(50+rng.Intn(50)) / 100,
		}
		if seen[f.X+"|"+f.Y] {
			continue
		}
		seen[f.X+"|"+f.Y] = true
		c.Facts = append(c.Facts, f)
	}
	for left := len(c.Facts); left > 0; {
		sz := 1 + rng.Intn(left)
		c.Splits = append(c.Splits, sz)
		left -= sz
	}
	if rng.Intn(2) == 0 {
		c.CancelAt = 1 + rng.Intn(len(c.Splits))
	}
	return c
}

// ingestPropBase is the fixed starting KB: one seed fact and two rules
// (a copy rule and a self-join), so every streamed fact derives and
// pairs of streamed facts join.
func ingestPropBase() *probkb.KB {
	k := probkb.New()
	k.AddFact("r0", "e0", "C", "e1", "C", 0.9)
	k.MustAddRule("1.10 r1(x:C, y:C) :- r0(x:C, y:C)")
	k.MustAddRule("0.80 r2(x:C, y:C) :- r0(z:C, x:C), r0(z, y:C)")
	return k
}

func ingestCaseFacts(c *IngestCase) []ingest.Fact {
	out := make([]ingest.Fact, len(c.Facts))
	for i, f := range c.Facts {
		out[i] = ingest.Fact{Rel: "r0", X: f.X, XClass: "C", Y: f.Y, YClass: "C", Probability: f.W}
	}
	return out
}

// closureFingerprint canonicalizes an expansion's closure — every fact
// tuple with its weight (NaN prints stably for not-yet-refreshed
// marginals) — into one FNV-64a value, order-independent.
func closureFingerprint(e *probkb.Expansion) uint64 {
	facts := e.Facts()
	lines := make([]string, len(facts))
	for i, f := range facts {
		lines[i] = fmt.Sprintf("%s(%s:%s, %s:%s) w=%v", f.Rel, f.X, f.XClass, f.Y, f.YClass, f.Probability)
	}
	sort.Strings(lines)
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// ReplayIngest is the t=0 oracle: the whole stream lands in the base KB
// before a single from-scratch expansion. Its closure fingerprint is
// what every batched absorption must converge to.
func ReplayIngest(c *IngestCase) (uint64, error) {
	k := ingestPropBase()
	for _, f := range c.Facts {
		k.AddFact("r0", f.X, "C", f.Y, "C", f.W)
	}
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode})
	if err != nil {
		return 0, err
	}
	return closureFingerprint(exp), nil
}

// CheckIngest absorbs the case's stream batch-by-batch through an
// Ingester and returns an error describing the first violated
// property: a cancelled batch that published, a non-monotone
// generation, or a final closure differing from the serial t=0 oracle.
func CheckIngest(c *IngestCase) error {
	want, err := ReplayIngest(c)
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}

	exp, err := ingestPropBase().Expand(probkb.Config{Engine: probkb.SingleNode})
	if err != nil {
		return fmt.Errorf("base expand: %w", err)
	}
	ing := probkb.NewIngester(exp)
	ctx := context.Background()
	stream := ingestCaseFacts(c)
	gen := ing.Generation()
	idx := 0
	for bi, sz := range c.Splits {
		batch := stream[idx : idx+sz]
		idx += sz
		if c.CancelAt == bi+1 {
			// The batch dies mid-flight: an already-cancelled context is
			// the deterministic stand-in for a kill at the worst moment.
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			if _, err := ing.Absorb(cctx, batch); err == nil {
				return fmt.Errorf("batch %d: cancelled absorb reported success", bi+1)
			}
			if g := ing.Generation(); g != gen {
				return fmt.Errorf("batch %d: cancelled absorb published generation %d (was %d) — torn", bi+1, g, gen)
			}
			continue
		}
		ack, err := ing.Absorb(ctx, batch)
		if err != nil {
			return fmt.Errorf("batch %d: %w", bi+1, err)
		}
		if ack.Generation <= gen {
			return fmt.Errorf("batch %d: generation %d not after %d", bi+1, ack.Generation, gen)
		}
		gen = ack.Generation
	}
	if c.CancelAt > 0 {
		// Recovery: re-stream the whole firehose in one batch. Absorption
		// is idempotent (the closure dedups), so this must land exactly
		// the facts the cancelled batch lost.
		if _, err := ing.Absorb(ctx, stream); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	}

	pin := ing.Current()
	defer pin.Unpin()
	if got := closureFingerprint(pin.Value()); got != want {
		return fmt.Errorf("final closure fingerprint %x != t=0 oracle %x (splits %v, cancelAt %d)",
			got, want, c.Splits, c.CancelAt)
	}
	return nil
}

// ShrinkIngest reduces a failing case greedily: drop a fact (shrinking
// the batch that carried it), merge adjacent batches, then clear the
// cancel point. CheckIngest is deterministic, so no retry wrapper is
// needed in the predicate.
func ShrinkIngest(c *IngestCase, fails func(*IngestCase) bool) *IngestCase {
	cur := c
	for {
		next, ok := shrinkIngestStep(cur, fails)
		if !ok {
			return cur
		}
		cur = next
	}
}

func shrinkIngestStep(c *IngestCase, fails func(*IngestCase) bool) (*IngestCase, bool) {
	// Drop fact i, shrinking the split that carried it (and dropping
	// the split if it empties).
	for i := range c.Facts {
		cand := &IngestCase{Seed: c.Seed, CancelAt: c.CancelAt}
		cand.Facts = append(append([]IngestFact(nil), c.Facts[:i]...), c.Facts[i+1:]...)
		splits := append([]int(nil), c.Splits...)
		pos := 0
		for j := range splits {
			if i < pos+splits[j] {
				splits[j]--
				if splits[j] == 0 {
					splits = append(splits[:j], splits[j+1:]...)
				}
				break
			}
			pos += splits[j]
		}
		cand.Splits = splits
		if len(cand.Splits) == 0 || cand.CancelAt > len(cand.Splits) {
			cand.CancelAt = len(cand.Splits)
		}
		if fails(cand) {
			return cand, true
		}
	}
	// Merge adjacent splits.
	for i := 0; i+1 < len(c.Splits); i++ {
		cand := &IngestCase{Seed: c.Seed, Facts: c.Facts, CancelAt: c.CancelAt}
		cand.Splits = append(append([]int(nil), c.Splits[:i]...), c.Splits[i]+c.Splits[i+1])
		cand.Splits = append(cand.Splits, c.Splits[i+2:]...)
		if cand.CancelAt > len(cand.Splits) {
			cand.CancelAt = len(cand.Splits)
		}
		if fails(cand) {
			return cand, true
		}
	}
	if c.CancelAt > 0 {
		cand := &IngestCase{Seed: c.Seed, Facts: c.Facts, Splits: c.Splits}
		if fails(cand) {
			return cand, true
		}
	}
	return nil, false
}
