// Package proptest is the randomized differential-testing harness for
// the relational layer: it generates random schemas, tables, and plans,
// runs each plan on the serial engine (Workers=1), the morsel-parallel
// engine, and MPP clusters of several segment counts, and asserts the
// results agree. Failing cases shrink to a minimal plan before being
// reported.
//
// The harness is what lets the morsel-parallel execution model
// (internal/engine/parallel.go) change join/aggregate internals without
// silently changing result sets: serial vs parallel must match
// bit-for-bit including row order, and single-node vs MPP must match as
// multisets (float aggregates may differ by ulps because per-segment
// sums associate differently).
package proptest

import (
	"fmt"
	"math/rand"
	"strings"

	"probkb/internal/engine"
)

// Op enumerates the plan operators the generator emits — exactly the
// subset the MPP layer supports, so one spec drives both builds.
type Op int

// The generated operator kinds.
const (
	OpScan Op = iota
	OpFilter
	OpProject
	OpDistinct
	OpGroupBy
	OpJoin
)

// TableSpec is one generated base table: NInt Int32 columns (column 0 is
// the MPP distribution key) and, when HasFloat, one trailing Float64
// column whose value is a pure function of the row's Int32 columns —
// that invariant makes DISTINCT representatives identical across
// engines regardless of which duplicate survives.
type TableSpec struct {
	Name       string
	NInt       int
	HasFloat   bool
	Rows       [][]int32
	Replicated bool // MPP placement: replicated instead of hashed by col 0
}

// floatOf derives the deterministic float column value for a row.
func floatOf(ints []int32) float64 {
	h := int32(7)
	for _, v := range ints {
		h = h*31 + v
	}
	if h < 0 {
		h = -h
	}
	return float64(h%97) / 97
}

// AggSel selects one aggregate for a groupby spec.
type AggSel struct {
	Kind engine.AggKind
	Col  int
}

// PlanSpec is one node of a generated plan tree.
type PlanSpec struct {
	Op    Op
	Table int   // OpScan: index into Case.Tables
	Col   int   // OpFilter: Int32 column compared
	Val   int32 // OpFilter: threshold (keep rows with col > Val)
	Cols  []int // OpProject: input columns to keep, in order
	Keys  []int // OpDistinct / OpGroupBy keys; OpJoin build keys
	PKeys []int // OpJoin probe keys
	BOuts []int // OpJoin: build-side output columns
	POuts []int // OpJoin: probe-side output columns
	Aggs  []AggSel
	Left  *PlanSpec
	Right *PlanSpec
}

// Case is one generated differential test case.
type Case struct {
	Seed   int64
	Tables []TableSpec
	Plan   *PlanSpec
}

// String renders the case compactly for failure reports.
func (c *Case) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", c.Seed)
	for i, t := range c.Tables {
		fmt.Fprintf(&b, "table %d %q: %d int cols, float=%v, %d rows, replicated=%v\n",
			i, t.Name, t.NInt, t.HasFloat, len(t.Rows), t.Replicated)
	}
	b.WriteString("plan: ")
	writeSpec(&b, c.Plan)
	b.WriteString("\n")
	return b.String()
}

func writeSpec(b *strings.Builder, p *PlanSpec) {
	switch p.Op {
	case OpScan:
		fmt.Fprintf(b, "(scan %d)", p.Table)
	case OpFilter:
		fmt.Fprintf(b, "(filter c%d>%d ", p.Col, p.Val)
		writeSpec(b, p.Left)
		b.WriteString(")")
	case OpProject:
		fmt.Fprintf(b, "(project %v ", p.Cols)
		writeSpec(b, p.Left)
		b.WriteString(")")
	case OpDistinct:
		fmt.Fprintf(b, "(distinct %v ", p.Keys)
		writeSpec(b, p.Left)
		b.WriteString(")")
	case OpGroupBy:
		fmt.Fprintf(b, "(groupby %v aggs=%d ", p.Keys, len(p.Aggs))
		writeSpec(b, p.Left)
		b.WriteString(")")
	case OpJoin:
		fmt.Fprintf(b, "(join b%v=p%v bout=%v pout=%v ", p.Keys, p.PKeys, p.BOuts, p.POuts)
		writeSpec(b, p.Left)
		b.WriteString(" ")
		writeSpec(b, p.Right)
		b.WriteString(")")
	}
}

// colTypes models a schema during generation: the Int32 column indexes
// and the Float64 column indexes of the current intermediate result.
type colTypes struct {
	ints   []int
	floats []int
}

func (ct colTypes) n() int { return len(ct.ints) + len(ct.floats) }

// NewCase generates a random case from the seed. maxRows bounds the base
// table sizes; the short test mode uses small tables with small value
// domains so joins and groups collide constantly.
func NewCase(seed int64, maxRows int) *Case {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed}

	ntab := 1 + rng.Intn(3)
	for i := 0; i < ntab; i++ {
		ts := TableSpec{
			Name:       fmt.Sprintf("t%d", i),
			NInt:       1 + rng.Intn(3),
			HasFloat:   rng.Intn(2) == 0,
			Replicated: rng.Intn(4) == 0,
		}
		domain := int32(2 + rng.Intn(6))
		nrows := rng.Intn(maxRows + 1)
		for r := 0; r < nrows; r++ {
			row := make([]int32, ts.NInt)
			for c := range row {
				row[c] = rng.Int31n(domain)
			}
			ts.Rows = append(ts.Rows, row)
		}
		c.Tables = append(c.Tables, ts)
	}

	g := &gen{rng: rng, tables: c.Tables}
	c.Plan, _ = g.plan(2 + rng.Intn(2))
	return c
}

type gen struct {
	rng    *rand.Rand
	tables []TableSpec
}

func (g *gen) scan() (*PlanSpec, colTypes) {
	i := g.rng.Intn(len(g.tables))
	t := g.tables[i]
	ct := colTypes{}
	for c := 0; c < t.NInt; c++ {
		ct.ints = append(ct.ints, c)
	}
	if t.HasFloat {
		ct.floats = append(ct.floats, t.NInt)
	}
	return &PlanSpec{Op: OpScan, Table: i}, ct
}

// pick returns k distinct random elements of xs (k clamped to len).
func (g *gen) pick(xs []int, k int) []int {
	idx := g.rng.Perm(len(xs))
	if k > len(xs) {
		k = len(xs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = xs[idx[i]]
	}
	return out
}

func (g *gen) plan(depth int) (*PlanSpec, colTypes) {
	if depth <= 0 {
		return g.scan()
	}
	switch g.rng.Intn(6) {
	case 0:
		return g.scan()
	case 1: // filter
		child, ct := g.plan(depth - 1)
		col := ct.ints[g.rng.Intn(len(ct.ints))]
		return &PlanSpec{Op: OpFilter, Col: col, Val: g.rng.Int31n(6), Left: child}, ct
	case 2: // project: keep a non-empty subset (always ≥1 int col)
		child, ct := g.plan(depth - 1)
		keep := g.pick(ct.ints, 1+g.rng.Intn(len(ct.ints)))
		if len(ct.floats) > 0 && g.rng.Intn(2) == 0 {
			keep = append(keep, ct.floats[0])
		}
		out := colTypes{}
		for i, c := range keep {
			if contains(ct.floats, c) {
				out.floats = append(out.floats, i)
			} else {
				out.ints = append(out.ints, i)
			}
		}
		return &PlanSpec{Op: OpProject, Cols: keep, Left: child}, out
	case 3: // distinct over ALL columns of an all-Int32 schema
		child, ct := g.plan(depth - 1)
		if len(ct.floats) > 0 {
			// Drop the float columns first; DISTINCT with keys ⊂ columns
			// keeps an engine-dependent representative, so the harness
			// only generates the all-columns form.
			child = &PlanSpec{Op: OpProject, Cols: append([]int(nil), ct.ints...), Left: child}
			ct = colTypes{ints: seq(len(ct.ints))}
		}
		return &PlanSpec{Op: OpDistinct, Keys: seq(len(ct.ints)), Left: child}, ct
	case 4: // groupby
		child, ct := g.plan(depth - 1)
		keys := g.pick(ct.ints, 1+g.rng.Intn(min(2, len(ct.ints))))
		aggs := []AggSel{{Kind: engine.AggCount}}
		out := colTypes{ints: seq(len(keys))}
		next := len(keys)
		out.ints = append(out.ints, next)
		next++
		if len(ct.ints) > len(keys) && g.rng.Intn(2) == 0 {
			rest := diff(ct.ints, keys)
			aggs = append(aggs, AggSel{Kind: engine.AggCountDistinct, Col: rest[g.rng.Intn(len(rest))]})
			out.ints = append(out.ints, next)
			next++
		}
		if len(ct.floats) > 0 {
			for _, k := range []engine.AggKind{engine.AggMinF64, engine.AggMaxF64, engine.AggSumF64} {
				if g.rng.Intn(2) == 0 {
					aggs = append(aggs, AggSel{Kind: k, Col: ct.floats[0]})
					out.floats = append(out.floats, next)
					next++
				}
			}
		}
		return &PlanSpec{Op: OpGroupBy, Keys: keys, Aggs: aggs, Left: child}, out
	default: // join
		left, lct := g.plan(depth - 1)
		right, rct := g.plan(depth - 1)
		nk := 1 + g.rng.Intn(min(2, min(len(lct.ints), len(rct.ints))))
		bk := g.pick(lct.ints, nk)
		pk := g.pick(rct.ints, nk)
		// Always emit ≥1 Int32 column from each side so every intermediate
		// schema supports filters, join keys, and distribution keys above.
		bouts := g.pick(lct.ints, 1+g.rng.Intn(len(lct.ints)))
		if len(lct.floats) > 0 && g.rng.Intn(2) == 0 {
			bouts = append(bouts, lct.floats[0])
		}
		pouts := g.pick(rct.ints, 1+g.rng.Intn(len(rct.ints)))
		if len(rct.floats) > 0 && g.rng.Intn(2) == 0 {
			pouts = append(pouts, rct.floats[0])
		}
		out := colTypes{}
		i := 0
		for _, c := range bouts {
			if contains(lct.floats, c) {
				out.floats = append(out.floats, i)
			} else {
				out.ints = append(out.ints, i)
			}
			i++
		}
		for _, c := range pouts {
			if contains(rct.floats, c) {
				out.floats = append(out.floats, i)
			} else {
				out.ints = append(out.ints, i)
			}
			i++
		}
		return &PlanSpec{Op: OpJoin, Keys: bk, PKeys: pk, BOuts: bouts, POuts: pouts, Left: left, Right: right}, out
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func diff(xs, drop []int) []int {
	var out []int
	for _, x := range xs {
		if !contains(drop, x) {
			out = append(out, x)
		}
	}
	return out
}
