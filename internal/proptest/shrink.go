package proptest

// Shrink reduces a failing case to a (locally) minimal one that still
// fails, greedily applying two kinds of reduction until neither helps:
//
//   - plan shrinking: replace the plan with one of its subtrees (a
//     subtree generated as part of a valid plan is itself a valid plan);
//   - data shrinking: drop the first or second half of a base table's
//     rows.
//
// fails must be side-effect free; Shrink calls it repeatedly. The
// returned case fails and every single reduction step from it passes —
// the classic QuickCheck minimum.
func Shrink(c *Case, fails func(*Case) bool) *Case {
	cur := c
	for {
		next, ok := shrinkStep(cur, fails)
		if !ok {
			return cur
		}
		cur = next
	}
}

func shrinkStep(c *Case, fails func(*Case) bool) (*Case, bool) {
	// Plan shrinking first: a smaller plan usually obsoletes most data.
	for _, sub := range subtrees(c.Plan) {
		cand := &Case{Seed: c.Seed, Tables: c.Tables, Plan: sub}
		if fails(cand) {
			return cand, true
		}
	}
	// Data shrinking: halve tables.
	for ti := range c.Tables {
		n := len(c.Tables[ti].Rows)
		if n == 0 {
			continue
		}
		for _, keep := range [][2]int{{0, n / 2}, {n / 2, n}} {
			if keep[1]-keep[0] == n {
				continue // no reduction
			}
			cand := &Case{Seed: c.Seed, Tables: cloneTables(c.Tables), Plan: c.Plan}
			cand.Tables[ti].Rows = c.Tables[ti].Rows[keep[0]:keep[1]]
			if fails(cand) {
				return cand, true
			}
		}
	}
	return nil, false
}

// subtrees lists the proper subtrees of p in breadth-first order, so the
// shrinker tries the largest reductions first.
func subtrees(p *PlanSpec) []*PlanSpec {
	var out []*PlanSpec
	queue := []*PlanSpec{p}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n != p {
			out = append(out, n)
		}
		if n.Left != nil {
			queue = append(queue, n.Left)
		}
		if n.Right != nil {
			queue = append(queue, n.Right)
		}
	}
	return out
}

func cloneTables(ts []TableSpec) []TableSpec {
	out := make([]TableSpec, len(ts))
	copy(out, ts)
	return out
}
