package proptest

import (
	"fmt"
	"math"
	"sort"

	"probkb/internal/engine"
	"probkb/internal/mpp"
)

// Worker counts the parallel engine leg exercises, and segment counts the
// MPP leg exercises — the issue's "serial ≡ parallel ≡ cluster" triangle.
var (
	workerCounts  = []int{2, 8}
	segmentCounts = []int{1, 2, 8}
)

// morselSize used by the engine legs: small enough that even the tiny
// generated tables split into many morsels.
const morselSize = 16

// BaseTable materializes a TableSpec as an engine table.
func BaseTable(ts TableSpec) *engine.Table {
	cols := make([]engine.ColDef, 0, ts.NInt+1)
	for c := 0; c < ts.NInt; c++ {
		cols = append(cols, engine.C(fmt.Sprintf("c%d", c), engine.Int32))
	}
	if ts.HasFloat {
		cols = append(cols, engine.C("w", engine.Float64))
	}
	t := engine.NewTable(ts.Name, engine.NewSchema(cols...))
	for _, row := range ts.Rows {
		vals := make([]any, 0, len(row)+1)
		for _, v := range row {
			vals = append(vals, v)
		}
		if ts.HasFloat {
			vals = append(vals, floatOf(row))
		}
		t.AppendRow(vals...)
	}
	return t
}

func aggSpecs(sels []AggSel) []engine.AggSpec {
	out := make([]engine.AggSpec, len(sels))
	for i, s := range sels {
		out[i] = engine.AggSpec{Kind: s.Kind, Col: s.Col, Name: fmt.Sprintf("a%d", i)}
	}
	return out
}

func joinOuts(p *PlanSpec) []engine.JoinOut {
	var outs []engine.JoinOut
	for i, c := range p.BOuts {
		outs = append(outs, engine.BuildCol(fmt.Sprintf("b%d", i), c))
	}
	for i, c := range p.POuts {
		outs = append(outs, engine.ProbeCol(fmt.Sprintf("p%d", i), c))
	}
	return outs
}

func filterPred(col int, val int32) func(t *engine.Table, row int) bool {
	return func(t *engine.Table, row int) bool { return t.Int32Col(col)[row] > val }
}

// BuildEngine compiles the spec to a single-node engine plan over tabs.
func BuildEngine(p *PlanSpec, tabs []*engine.Table) engine.Node {
	switch p.Op {
	case OpScan:
		return engine.NewScan(tabs[p.Table])
	case OpFilter:
		return engine.NewFilter(BuildEngine(p.Left, tabs),
			fmt.Sprintf("c%d > %d", p.Col, p.Val), filterPred(p.Col, p.Val))
	case OpProject:
		exprs := make([]engine.OutExpr, len(p.Cols))
		for i, c := range p.Cols {
			exprs[i] = engine.ColExpr(fmt.Sprintf("x%d", i), c)
		}
		return engine.NewProject(BuildEngine(p.Left, tabs), exprs...)
	case OpDistinct:
		return engine.NewDistinct(BuildEngine(p.Left, tabs), p.Keys)
	case OpGroupBy:
		return engine.NewGroupBy(BuildEngine(p.Left, tabs), p.Keys, aggSpecs(p.Aggs))
	case OpJoin:
		return engine.NewHashJoin(BuildEngine(p.Left, tabs), BuildEngine(p.Right, tabs),
			p.Keys, p.PKeys, joinOuts(p), "proptest join")
	}
	panic(fmt.Sprintf("proptest: unknown op %d", p.Op))
}

// BuildMPP compiles the spec to a distributed plan on cl. Base tables are
// hash-distributed by column 0 (or replicated, per the spec); PlanJoin and
// EnsureDistributedBy insert whatever motions collocation requires, so the
// harness also exercises Redistribute and Broadcast.
func BuildMPP(p *PlanSpec, c *Case, cl *mpp.Cluster, tabs []*engine.Table) mpp.Node {
	switch p.Op {
	case OpScan:
		if c.Tables[p.Table].Replicated {
			return mpp.NewScan(cl.Replicate(tabs[p.Table]))
		}
		return mpp.NewScan(cl.Distribute(tabs[p.Table], []int{0}))
	case OpFilter:
		return mpp.NewFilter(BuildMPP(p.Left, c, cl, tabs),
			fmt.Sprintf("c%d > %d", p.Col, p.Val), filterPred(p.Col, p.Val))
	case OpProject:
		exprs := make([]engine.OutExpr, len(p.Cols))
		for i, col := range p.Cols {
			exprs[i] = engine.ColExpr(fmt.Sprintf("x%d", i), col)
		}
		return mpp.NewProject(BuildMPP(p.Left, c, cl, tabs), exprs...)
	case OpDistinct:
		child := mpp.EnsureDistributedBy(BuildMPP(p.Left, c, cl, tabs), p.Keys[:1])
		return mpp.NewDistinct(child, p.Keys)
	case OpGroupBy:
		child := mpp.EnsureDistributedBy(BuildMPP(p.Left, c, cl, tabs), p.Keys[:1])
		return mpp.NewGroupBy(child, p.Keys, aggSpecs(p.Aggs))
	case OpJoin:
		return mpp.PlanJoin(BuildMPP(p.Left, c, cl, tabs), BuildMPP(p.Right, c, cl, tabs),
			p.Keys, p.PKeys, joinOuts(p), "proptest join", nil)
	}
	panic(fmt.Sprintf("proptest: unknown op %d", p.Op))
}

// runEngine executes the spec on the single-node engine with the given
// worker count.
func runEngine(c *Case, tabs []*engine.Table, workers int) (*engine.Table, error) {
	root := BuildEngine(c.Plan, tabs)
	engine.Configure(root, engine.Opts{Workers: workers, MorselSize: morselSize})
	return root.Run()
}

// Check runs one case through every leg of the differential triangle:
//
//   - engine Workers=1 vs Workers∈workerCounts: results must be
//     bit-identical including row order (the morsel model's determinism
//     contract).
//   - engine vs MPP at each segment count (2 workers per segment):
//     results must be equal as multisets; Float64 aggregates compare
//     under a small relative tolerance because per-segment partial sums
//     associate differently.
//
// The returned error describes the first divergence.
func Check(c *Case) error {
	tabs := make([]*engine.Table, len(c.Tables))
	for i, ts := range c.Tables {
		tabs[i] = BaseTable(ts)
	}

	ref, err := runEngine(c, tabs, 1)
	if err != nil {
		return fmt.Errorf("serial run: %w", err)
	}
	for _, w := range workerCounts {
		got, err := runEngine(c, tabs, w)
		if err != nil {
			return fmt.Errorf("workers=%d run: %w", w, err)
		}
		if err := bitIdentical(ref, got); err != nil {
			return fmt.Errorf("workers=%d diverges from serial: %w", w, err)
		}
	}
	for _, ns := range segmentCounts {
		cl := mpp.NewCluster(ns)
		cl.SetWorkers(2)
		root := BuildMPP(c.Plan, c, cl, tabs)
		dt, err := root.Run()
		if err != nil {
			return fmt.Errorf("segments=%d run: %w", ns, err)
		}
		if err := multisetEqual(ref, mpp.Gather(dt)); err != nil {
			return fmt.Errorf("segments=%d diverges from single-node: %w", ns, err)
		}
	}
	return nil
}

// bitIdentical reports the first difference between two tables compared
// exactly: same schema shape, same row count, same row order, floats
// compared by bit pattern.
func bitIdentical(a, b *engine.Table) error {
	if err := sameShape(a, b); err != nil {
		return err
	}
	for ci, col := range a.Schema().Cols {
		switch col.Type {
		case engine.Int32:
			av, bv := a.Int32Col(ci), b.Int32Col(ci)
			for r := range av {
				if av[r] != bv[r] {
					return fmt.Errorf("col %d row %d: %d vs %d", ci, r, av[r], bv[r])
				}
			}
		case engine.Float64:
			av, bv := a.Float64Col(ci), b.Float64Col(ci)
			for r := range av {
				if math.Float64bits(av[r]) != math.Float64bits(bv[r]) {
					return fmt.Errorf("col %d row %d: %v vs %v (bits differ)", ci, r, av[r], bv[r])
				}
			}
		}
	}
	return nil
}

func sameShape(a, b *engine.Table) error {
	if a.Schema().NumCols() != b.Schema().NumCols() {
		return fmt.Errorf("column counts differ: %d vs %d", a.Schema().NumCols(), b.Schema().NumCols())
	}
	for i, ac := range a.Schema().Cols {
		if bc := b.Schema().Cols[i]; ac.Type != bc.Type {
			return fmt.Errorf("col %d type differs: %v vs %v", i, ac.Type, bc.Type)
		}
	}
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	return nil
}

// canonRow is one row split into its Int32 and Float64 parts, in schema
// order within each part.
type canonRow struct {
	ints   []int32
	floats []float64
}

func canonRows(t *engine.Table) []canonRow {
	var intCols, floatCols []int
	for i, c := range t.Schema().Cols {
		switch c.Type {
		case engine.Int32:
			intCols = append(intCols, i)
		case engine.Float64:
			floatCols = append(floatCols, i)
		}
	}
	rows := make([]canonRow, t.NumRows())
	for r := range rows {
		row := canonRow{ints: make([]int32, len(intCols)), floats: make([]float64, len(floatCols))}
		for i, ci := range intCols {
			row.ints[i] = t.Int32Col(ci)[r]
		}
		for i, ci := range floatCols {
			row.floats[i] = t.Float64Col(ci)[r]
		}
		rows[r] = row
	}
	sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })
	return rows
}

func rowLess(a, b canonRow) bool {
	for i := range a.ints {
		if a.ints[i] != b.ints[i] {
			return a.ints[i] < b.ints[i]
		}
	}
	for i := range a.floats {
		if a.floats[i] != b.floats[i] {
			return a.floats[i] < b.floats[i]
		}
	}
	return false
}

// floatTol is the relative tolerance for Float64 values in the multiset
// comparison. Divergence from summation order is a few ulps; anything
// near 1e-9 relative is a real bug.
const floatTol = 1e-9

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= floatTol*(1+math.Abs(a)+math.Abs(b))
}

// multisetEqual compares two tables as unordered bags of rows. Int32
// values must match exactly; Float64 values within floatTol. Rows are
// paired by canonical sort order, which is unambiguous because float
// divergence (ulps) is far below any genuine value difference.
func multisetEqual(a, b *engine.Table) error {
	if err := sameShape(a, b); err != nil {
		return err
	}
	ar, br := canonRows(a), canonRows(b)
	for i := range ar {
		for j := range ar[i].ints {
			if ar[i].ints[j] != br[i].ints[j] {
				return fmt.Errorf("sorted row %d int col %d: %d vs %d", i, j, ar[i].ints[j], br[i].ints[j])
			}
		}
		for j := range ar[i].floats {
			if !floatsClose(ar[i].floats[j], br[i].floats[j]) {
				return fmt.Errorf("sorted row %d float col %d: %v vs %v", i, j, ar[i].floats[j], br[i].floats[j])
			}
		}
	}
	return nil
}
