package proptest

import (
	"flag"
	"testing"
)

var (
	flagN    = flag.Int("proptest.n", 0, "override the number of generated cases (0 = mode default)")
	flagSeed = flag.Int64("proptest.seed", 1, "base seed for case generation")
)

// runMany checks n generated cases; on the first divergence it shrinks
// the case and fails with both the minimal and the original spec.
func runMany(t *testing.T, n, maxRows int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seed := *flagSeed + int64(i)
		c := NewCase(seed, maxRows)
		if err := Check(c); err != nil {
			minCase := Shrink(c, func(x *Case) bool { return Check(x) != nil })
			t.Fatalf("divergence at seed %d: %v\n\nshrunk case:\n%s\nre-check of shrunk case: %v\n\noriginal case:\n%s",
				seed, err, minCase, Check(minCase), c)
		}
	}
}

// TestDifferentialShort is the short differential run wired into plain
// `go test ./...`: 500 random plans, each executed serial, parallel
// (2 and 8 workers), and on 1/2/8-segment clusters. The slow build tag
// adds a much longer run (see slow_test.go).
func TestDifferentialShort(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 100
	}
	if *flagN > 0 {
		n = *flagN
	}
	runMany(t, n, 60)
}

// TestShrinkReducesData checks that the shrinker actually shrinks: with a
// failure predicate that only looks at table 0's row count, the minimal
// case must be smaller than the original and still failing.
func TestShrinkReducesData(t *testing.T) {
	c := NewCase(7, 60)
	if len(c.Tables[0].Rows) < 8 {
		t.Fatalf("seed 7 generated only %d rows in table 0; pick another seed", len(c.Tables[0].Rows))
	}
	orig := len(c.Tables[0].Rows)
	fails := func(x *Case) bool { return len(x.Tables[0].Rows) >= 4 }
	minCase := Shrink(c, fails)
	if !fails(minCase) {
		t.Fatal("shrunk case no longer fails")
	}
	if got := len(minCase.Tables[0].Rows); got >= orig {
		t.Fatalf("shrink did not reduce table 0: %d rows, originally %d", got, orig)
	}
}

// TestShrinkReducesPlan checks plan-level shrinking: when the failure is
// "the plan contains a join", the minimum has the join at the root with
// join-free subtrees.
func TestShrinkReducesPlan(t *testing.T) {
	var hasJoin func(p *PlanSpec) bool
	hasJoin = func(p *PlanSpec) bool {
		if p == nil {
			return false
		}
		return p.Op == OpJoin || hasJoin(p.Left) || hasJoin(p.Right)
	}
	// Find a seed whose plan contains a join below the root.
	for seed := int64(0); seed < 200; seed++ {
		c := NewCase(seed, 20)
		if !hasJoin(c.Plan) {
			continue
		}
		minCase := Shrink(c, func(x *Case) bool { return hasJoin(x.Plan) })
		if minCase.Plan.Op != OpJoin {
			t.Fatalf("seed %d: minimal plan root is not the join:\n%s", seed, minCase)
		}
		if hasJoin(minCase.Plan.Left) || hasJoin(minCase.Plan.Right) {
			t.Fatalf("seed %d: minimal join still has a join subtree:\n%s", seed, minCase)
		}
		return
	}
	t.Skip("no generated plan contained a join in 200 seeds")
}

// TestKnownDivergenceShrinks plants a real divergence — a mutated engine
// result via a deliberately wrong comparison — to prove Check reports
// errors with context. (A pure smoke test for the failure path.)
func TestCheckReportsRunErrors(t *testing.T) {
	// distinct over a float column subset is invalid for the harness by
	// construction, but an out-of-range filter column is a hard error the
	// engine panics on; instead exercise the error path with an MPP
	// precondition violation: distinct keyed off the distribution column
	// is fine, so use a join with mismatched key arity.
	c := &Case{
		Seed:   0,
		Tables: []TableSpec{{Name: "t0", NInt: 1, Rows: [][]int32{{1}, {2}}}},
		Plan: &PlanSpec{
			Op:    OpJoin,
			Keys:  []int{0},
			PKeys: []int{}, // arity mismatch: engine.NewHashJoin panics, mpp records an error
			BOuts: []int{0},
			POuts: []int{0},
			Left:  &PlanSpec{Op: OpScan, Table: 0},
			Right: &PlanSpec{Op: OpScan, Table: 0},
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected the invalid spec to panic or error")
		}
	}()
	if err := Check(c); err == nil {
		t.Fatal("invalid spec produced no error")
	}
}
