//go:build slow

package proptest

import "testing"

// TestDifferentialLong is the long-run differential sweep, enabled with
// `go test -tags slow ./internal/proptest` (see `make proptest`): an
// order of magnitude more cases over larger tables than the short run.
func TestDifferentialLong(t *testing.T) {
	n := 5000
	if *flagN > 0 {
		n = *flagN
	}
	runMany(t, n, 200)
}
