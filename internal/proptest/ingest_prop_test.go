package proptest

import (
	"testing"
)

// TestIngestSplitInvariance is the streaming-ingest property: across
// randomized streams, batch partitions, and cancel points, absorbing
// the firehose batch-by-batch (with a recovery re-stream after a
// cancelled batch) converges to exactly the t=0 oracle's closure, with
// generations strictly monotone and cancelled batches publishing
// nothing. Failures shrink to a minimal stream/partition.
func TestIngestSplitInvariance(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	if *flagN > 0 {
		n = *flagN
	}
	for i := 0; i < n; i++ {
		seed := *flagSeed + int64(i)
		c := NewIngestCase(seed)
		if err := CheckIngest(c); err != nil {
			minCase := ShrinkIngest(c, func(x *IngestCase) bool { return CheckIngest(x) != nil })
			t.Fatalf("ingest split invariance violated at seed %d: %v\n\nshrunk case:\n%s\noriginal case:\n%s",
				seed, err, minCase, c)
		}
	}
}

// TestReplayIngestDeterministic pins the oracle: the same case reaches
// the same fingerprint twice, and the stream actually changes the
// closure (no vacuous cases).
func TestReplayIngestDeterministic(t *testing.T) {
	c := NewIngestCase(7)
	a, err := ReplayIngest(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayIngest(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("oracle not deterministic: %x vs %x", a, b)
	}
	empty := &IngestCase{Seed: c.Seed}
	e, err := ReplayIngest(empty)
	if err != nil {
		t.Fatal(err)
	}
	if e == a {
		t.Fatal("stream did not change the closure — vacuous case generator")
	}
}

// TestShrinkIngestReduces checks the shrinker shrinks: with a predicate
// that only needs two facts to "fail", the minimum keeps exactly two,
// the partition stays consistent, and the cancel point is cleared.
func TestShrinkIngestReduces(t *testing.T) {
	c := NewIngestCase(5)
	for len(c.Facts) < 4 {
		c = NewIngestCase(c.Seed + 100)
	}
	fails := func(x *IngestCase) bool { return len(x.Facts) >= 2 }
	minCase := ShrinkIngest(c, fails)
	if !fails(minCase) {
		t.Fatal("shrunk case no longer fails")
	}
	if len(minCase.Facts) != 2 {
		t.Fatalf("shrink left %d facts, want 2", len(minCase.Facts))
	}
	total := 0
	for _, sz := range minCase.Splits {
		total += sz
	}
	if total != len(minCase.Facts) {
		t.Fatalf("splits %v sum to %d for %d facts", minCase.Splits, total, len(minCase.Facts))
	}
	if minCase.CancelAt > len(minCase.Splits) {
		t.Fatalf("cancelAt %d beyond %d splits", minCase.CancelAt, len(minCase.Splits))
	}
	if minCase.CancelAt != 0 {
		t.Fatalf("cancel point survived shrinking: %d", minCase.CancelAt)
	}
}
