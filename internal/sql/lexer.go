// Package sql implements the SQL dialect ProbKB's grounding and
// quality-control queries are written in. The paper expresses its whole
// inference algorithm as SQL over the facts and MLN tables (Figures 3
// and Query 3); this package makes those queries *executable text* —
// the test suite runs the paper's queries verbatim against the engine.
//
// The dialect is the fragment those queries need:
//
//	SELECT [DISTINCT] expr [AS name], ... FROM t [alias]
//	       [JOIN t [alias] ON cond [AND cond]...]...
//	       [WHERE cond [AND cond]...]
//	       [GROUP BY col, ...] [HAVING cond [AND cond]...]
//
//	DELETE FROM t WHERE (col, ...) IN ( select )
//	DELETE FROM t WHERE cond [AND cond]...
//
// with aggregates COUNT(*), COUNT(DISTINCT col), MIN, MAX, SUM;
// comparisons =, <>, <, <=, >, >=; NULL literals; and qualified column
// references. The planner (plan.go) compiles statements onto the
// engine's physical operators, turning equality conjuncts into hash-join
// keys the way a DBMS would.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , . *
	tokCompare // = <> < <= > >=
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords the parser treats specially (matched case-insensitively;
// stored upper-case).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "JOIN": true,
	"ON": true, "WHERE": true, "GROUP": true, "BY": true, "HAVING": true,
	"AND": true, "AS": true, "IN": true, "DELETE": true, "NULL": true,
	"COUNT": true, "MIN": true, "MAX": true, "SUM": true,
	"IS": true, "NOT": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
}

// lex splits a statement into tokens.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			out = append(out, token{tokSymbol, string(c), i})
			i++
		case c == '=':
			out = append(out, token{tokCompare, "=", i})
			i++
		case c == '<':
			if i+1 < n && input[i+1] == '>' {
				out = append(out, token{tokCompare, "<>", i})
				i += 2
			} else if i+1 < n && input[i+1] == '=' {
				out = append(out, token{tokCompare, "<=", i})
				i += 2
			} else {
				out = append(out, token{tokCompare, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{tokCompare, ">=", i})
				i += 2
			} else {
				out = append(out, token{tokCompare, ">", i})
				i++
			}
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", i)
			}
			out = append(out, token{tokString, input[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.' || input[j] == 'e' ||
				input[j] == 'E' || ((input[j] == '+' || input[j] == '-') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			out = append(out, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			if keywords[strings.ToUpper(word)] {
				out = append(out, token{tokIdent, strings.ToUpper(word), i})
			} else {
				out = append(out, token{tokIdent, word, i})
			}
			i = j
		case c == ';':
			i++ // trailing semicolons are allowed and ignored
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", n})
	return out, nil
}
