package sql

import (
	"math"

	"probkb/internal/engine"
)

// Join-order optimization: a greedy cost-based reorder of the FROM/JOIN
// list using ANALYZE-style statistics, the way a DBMS picks a join order
// before handing the plan to the executor. Inner-join conjuncts are
// pooled (the planner already treats ON and WHERE uniformly), so any
// order is semantically valid; the optimizer picks one that keeps
// intermediate results small:
//
//   - start from the table with the smallest estimated cardinality after
//     its single-table literal predicates;
//   - repeatedly add the connected table minimizing the estimated join
//     output, |S ⋈ T| ≈ |S|·|T| / Π max(d_S(col), d_T(col)) over the
//     bridging equality predicates (the textbook distinct-value model);
//   - fall back to a cross join only when no connected table remains.
//
// Statistics are cached per (table, row count) in the DB.

type cachedStats struct {
	rows int
	st   *engine.TableStats
}

// statsOf returns (and caches) ANALYZE output for t.
func (db *DB) statsOf(t *engine.Table) *engine.TableStats {
	if db.stats == nil {
		db.stats = make(map[*engine.Table]cachedStats)
	}
	if c, ok := db.stats[t]; ok && c.rows == t.NumRows() {
		return c.st
	}
	st := engine.Analyze(t)
	db.stats[t] = cachedStats{rows: t.NumRows(), st: st}
	return st
}

// refInfo is one FROM/JOIN source with its statistics.
type refInfo struct {
	ref   TableRef
	table *engine.Table
	stats *engine.TableStats
	// card is the estimated cardinality after single-table predicates.
	card float64
}

// chooseJoinOrder returns the indices of refs in execution order.
func (db *DB) chooseJoinOrder(refs []refInfo, pool []Condition) []int {
	n := len(refs)
	if n <= 2 {
		// With two tables order barely matters (the engine builds on the
		// left input; keep the syntactic order, which conventionally puts
		// the small MLN table first).
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}

	binding := make(map[string]int, n)
	for i, r := range refs {
		binding[r.ref.Binding()] = i
	}

	// bridges[i][j] lists the equality conjuncts connecting refs i and j,
	// as (colOfI, colOfJ) pairs.
	type bridge struct{ ci, cj int }
	bridges := make(map[[2]int][]bridge)
	for _, c := range pool {
		if c.Op != "=" || c.IsNull || c.NotNul ||
			c.Left.isLiteral() || c.Right.isLiteral() ||
			c.Left.Agg != aggNone || c.Right.Agg != aggNone {
			continue
		}
		li, lok := bindingOf(binding, refs, c.Left.Col)
		ri, rok := bindingOf(binding, refs, c.Right.Col)
		if !lok || !rok || li == ri {
			continue
		}
		lc := colIndexIn(refs[li].table, c.Left.Col.Col)
		rc := colIndexIn(refs[ri].table, c.Right.Col.Col)
		if lc < 0 || rc < 0 {
			continue
		}
		a, b := li, ri
		ca, cb := lc, rc
		if a > b {
			a, b = b, a
			ca, cb = cb, ca
		}
		bridges[[2]int{a, b}] = append(bridges[[2]int{a, b}], bridge{ci: ca, cj: cb})
	}

	used := make([]bool, n)
	var order []int

	// Seed: smallest filtered cardinality.
	best := 0
	for i := 1; i < n; i++ {
		if refs[i].card < refs[best].card {
			best = i
		}
	}
	order = append(order, best)
	used[best] = true
	card := refs[best].card

	// distinctIn estimates the distinct values of (ref, col) within the
	// current joined set: the base distinct count capped by the set's
	// cardinality.
	distinctIn := func(ri, col int, setCard float64) float64 {
		d := float64(refs[ri].stats.DistinctOf(col))
		if d > setCard {
			d = setCard
		}
		if d < 1 {
			d = 1
		}
		return d
	}

	for len(order) < n {
		bestIdx := -1
		bestCost := math.Inf(1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			// Selectivity over every bridge between j and the joined set.
			sel := 1.0
			connected := false
			for _, i := range order {
				a, b := i, j
				swap := a > b
				if swap {
					a, b = b, a
				}
				for _, br := range bridges[[2]int{a, b}] {
					ci, cj := br.ci, br.cj
					if swap {
						ci, cj = cj, ci
					}
					// ci belongs to the in-set ref, cj to candidate j.
					dIn := distinctIn(i, ci, card)
					dJ := distinctIn(j, cj, refs[j].card)
					sel /= math.Max(dIn, dJ)
					connected = true
				}
			}
			cost := card * refs[j].card * sel
			if !connected {
				// Cross join: strongly penalized but still orderable.
				cost = card * refs[j].card * 1e6
			}
			if cost < bestCost {
				bestCost = cost
				bestIdx = j
			}
		}
		order = append(order, bestIdx)
		used[bestIdx] = true
		card = math.Max(bestCost, 1)
		if card > 1e18 {
			card = 1e18
		}
	}
	return order
}

// bindingOf resolves a column reference to a ref index; unqualified
// references resolve only if exactly one ref has the column.
func bindingOf(binding map[string]int, refs []refInfo, ref ColRef) (int, bool) {
	if ref.Table != "" {
		i, ok := binding[ref.Table]
		return i, ok
	}
	found, count := -1, 0
	for i, r := range refs {
		if colIndexIn(r.table, ref.Col) >= 0 {
			found = i
			count++
		}
	}
	return found, count == 1
}

func colIndexIn(t *engine.Table, col string) int {
	return t.Schema().ColIndex(col)
}

// filteredCard estimates a table's cardinality after its single-table
// literal equality predicates (col = const → 1/distinct each).
func filteredCard(t *engine.Table, st *engine.TableStats, b string, pool []Condition) float64 {
	card := float64(st.Rows)
	for _, c := range pool {
		if c.Op != "=" || c.IsNull || c.NotNul {
			continue
		}
		var col ColRef
		switch {
		case !c.Left.isLiteral() && c.Right.isLiteral() && c.Left.Agg == aggNone:
			col = c.Left.Col
		case !c.Right.isLiteral() && c.Left.isLiteral() && c.Right.Agg == aggNone:
			col = c.Right.Col
		default:
			continue
		}
		if col.Table != "" && col.Table != b {
			continue
		}
		idx := colIndexIn(t, col.Col)
		if idx < 0 {
			continue
		}
		card /= float64(st.DistinctOf(idx))
	}
	if card < 1 {
		card = 1
	}
	return card
}
