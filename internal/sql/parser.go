package sql

import (
	"fmt"
	"strconv"
)

// Parse parses one SQL statement of the supported dialect.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	var stmt Statement
	switch {
	case p.peekIs("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
	case p.peekIs("DELETE"):
		del, err := p.parseDelete()
		if err != nil {
			return nil, err
		}
		stmt.Delete = del
	default:
		return nil, p.errf("expected SELECT or DELETE")
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input")
	}
	return &stmt, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("sql: %s (near offset %d, token %q)", fmt.Sprintf(format, args...), t.pos, t.text)
}

func (p *parser) peekIs(word string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == word
}

func (p *parser) accept(word string) bool {
	if p.peekIs(word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(word string) error {
	if !p.accept(word) {
		return p.errf("expected %s", word)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

// ident consumes a non-keyword identifier.
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent || keywords[t.text] {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

// parseColRef parses ident [ "." ident ].
func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Col: second}, nil
	}
	return ColRef{Col: first}, nil
}

// parseExpr parses a column reference, literal, or aggregate.
func (p *parser) parseExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Expr{}, p.errf("bad number %q", t.text)
		}
		return Expr{IsNumber: true, Number: v}, nil
	case t.kind == tokString:
		p.pos++
		return Expr{IsString: true, Str: t.text}, nil
	case p.accept("NULL"):
		return Expr{IsNull: true}, nil
	case p.accept("COUNT"):
		if err := p.expectSymbol("("); err != nil {
			return Expr{}, err
		}
		if p.acceptSymbol("*") {
			if err := p.expectSymbol(")"); err != nil {
				return Expr{}, err
			}
			return Expr{Agg: aggCount}, nil
		}
		if err := p.expect("DISTINCT"); err != nil {
			return Expr{}, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return Expr{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return Expr{}, err
		}
		return Expr{Agg: aggCountDistinct, Col: col}, nil
	case p.peekIs("MIN") || p.peekIs("MAX") || p.peekIs("SUM"):
		kind := map[string]aggKind{"MIN": aggMin, "MAX": aggMax, "SUM": aggSum}[t.text]
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return Expr{}, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return Expr{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return Expr{}, err
		}
		return Expr{Agg: kind, Col: col}, nil
	default:
		col, err := p.parseColRef()
		if err != nil {
			return Expr{}, err
		}
		return Expr{Col: col}, nil
	}
}

// parseCondition parses expr cmp expr | expr IS [NOT] NULL.
func (p *parser) parseCondition() (Condition, error) {
	left, err := p.parseExpr()
	if err != nil {
		return Condition{}, err
	}
	if p.accept("IS") {
		not := p.accept("NOT")
		if err := p.expect("NULL"); err != nil {
			return Condition{}, err
		}
		return Condition{Left: left, IsNull: !not, NotNul: not}, nil
	}
	t := p.cur()
	if t.kind != tokCompare {
		return Condition{}, p.errf("expected comparison operator")
	}
	p.pos++
	right, err := p.parseExpr()
	if err != nil {
		return Condition{}, err
	}
	return Condition{Left: left, Op: CmpOp(t.text), Right: right}, nil
}

// parseConjunction parses cond (AND cond)*.
func (p *parser) parseConjunction() ([]Condition, error) {
	var out []Condition
	for {
		c, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if !p.accept("AND") {
			return out, nil
		}
	}
}

// parseTableRef parses ident [ [AS] ident ].
func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	p.accept("AS")
	if t := p.cur(); t.kind == tokIdent && !keywords[t.text] {
		p.pos++
		ref.Alias = t.text
	}
	return ref, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept("DISTINCT")

	for {
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: expr}
		if p.accept("AS") {
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = from

	for p.accept("JOIN") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Table: ref, On: on})
	}

	if p.accept("WHERE") {
		w, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		h, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expect("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: ref}
	if err := p.expect("WHERE"); err != nil {
		return nil, err
	}

	// Tuple-IN form: WHERE (c1, c2, ...) IN ( SELECT ... )  — and the
	// paper's Query 3 writes it without parentheses around a single
	// column too, so also allow: WHERE c1, c2 IN (SELECT ...). Detect by
	// looking ahead for IN after a column list.
	save := p.pos
	cols, ok := p.tryParseColList()
	if ok && p.accept("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if len(sub.Items) != len(cols) {
			return nil, fmt.Errorf("sql: IN column count %d does not match subquery width %d", len(cols), len(sub.Items))
		}
		d.InCols = cols
		d.InSelect = sub
		return d, nil
	}
	p.pos = save

	w, err := p.parseConjunction()
	if err != nil {
		return nil, err
	}
	d.Where = w
	return d, nil
}

// tryParseColList parses "(c1, c2)" or "c1, c2" without committing.
func (p *parser) tryParseColList() ([]ColRef, bool) {
	save := p.pos
	paren := p.acceptSymbol("(")
	var cols []ColRef
	for {
		col, err := p.parseColRef()
		if err != nil {
			p.pos = save
			return nil, false
		}
		cols = append(cols, col)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if paren && !p.acceptSymbol(")") {
		p.pos = save
		return nil, false
	}
	return cols, true
}
