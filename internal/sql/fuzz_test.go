package sql

import (
	"sort"
	"strings"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/mpp"
)

// fuzzSeeds are statements of every supported shape; they seed both fuzz
// targets (the on-disk corpus under testdata/fuzz adds mutated variants).
var fuzzSeeds = []string{
	"SELECT id FROM facts",
	"SELECT DISTINCT f.id, f.cls FROM facts f",
	"SELECT f.id, d.label FROM facts f JOIN dims d ON f.cls = d.cls",
	"SELECT f.id FROM facts f JOIN dims d ON f.cls = d.cls AND f.id <> d.cls WHERE f.w >= 0.5",
	"SELECT cls, COUNT(*), COUNT(DISTINCT id), MIN(w), MAX(w), SUM(w) FROM facts GROUP BY cls",
	"SELECT cls, COUNT(*) AS n FROM facts GROUP BY cls HAVING COUNT(*) > 1",
	"SELECT id FROM facts WHERE w IS NOT NULL ORDER BY id DESC, cls LIMIT 10",
	"SELECT 'tag' AS t, 3.5, NULL FROM facts",
	"DELETE FROM facts WHERE w < 0.1",
	"DELETE FROM facts WHERE (id, cls) IN (SELECT id, cls FROM facts WHERE w < 0.1)",
	"DELETE FROM facts WHERE id IN (SELECT id FROM facts WHERE w IS NULL)",
	"select f.id from FACTS f join dims d on f.cls = d.cls where f.w > -1e-3;",
}

// FuzzParseSQL checks that Parse never panics and that printing is a
// normalizing fixed point: parse(input) → print → parse → print yields
// the same text as the first print.
func FuzzParseSQL(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		text := stmt.String()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("printed statement does not re-parse\ninput: %q\nprinted: %q\nerror: %v", input, text, err)
		}
		if text2 := again.String(); text2 != text {
			t.Fatalf("printing is not a fixed point\ninput: %q\nfirst print: %q\nsecond print: %q", input, text, text2)
		}
	})
}

// fuzzCatalog builds the tiny fixed schema the execution fuzzers query:
// a hash-distributed facts table and a replicated dims table.
func fuzzCatalog() *engine.Catalog {
	facts := engine.NewTable("facts", engine.NewSchema(
		engine.C("id", engine.Int32), engine.C("cls", engine.Int32), engine.C("w", engine.Float64)))
	for i := 0; i < 16; i++ {
		facts.AppendRow(int32(i), int32(i%4), float64(i)/16)
	}
	dims := engine.NewTable("dims", engine.NewSchema(
		engine.C("cls", engine.Int32), engine.C("label", engine.String)))
	for i := 0; i < 4; i++ {
		dims.AppendRow(int32(i), strings.Repeat("x", i+1))
	}
	cat := engine.NewCatalog()
	cat.Put(facts)
	cat.Put(dims)
	return cat
}

// sortedRows canonicalizes a result table to sorted printed rows for
// order-insensitive comparison.
func sortedRows(t *engine.Table) []string {
	rows := make([]string, t.NumRows())
	for r := range rows {
		parts := make([]string, t.Schema().NumCols())
		for c := range parts {
			parts[c] = t.ValueString(r, c)
		}
		rows[r] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

// FuzzDistSQL drives the distributed query path end to end: whatever the
// input, DistDB.Query must fail cleanly or produce a result — never
// panic — and when the same SELECT also runs on the single-node DB, the
// two engines must return the same multiset of rows.
func FuzzDistSQL(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		cat := fuzzCatalog()
		dist := NewDistDB(cat, mpp.NewCluster(2), map[string][]int{"facts": {0}})
		distOut, distErr := dist.Query(input)
		if distErr != nil {
			return
		}
		local, err := NewDB(cat).Query(input)
		if err != nil {
			// The single-node dialect is a superset of the distributed one;
			// a distributed success must also plan locally.
			t.Fatalf("distributed ok but single-node failed for %q: %v", input, err)
		}
		a, b := sortedRows(local), sortedRows(distOut)
		if len(a) != len(b) {
			t.Fatalf("row counts diverge for %q: single-node %d, distributed %d", input, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("results diverge for %q: row %d: %q vs %q", input, i, a[i], b[i])
			}
		}
	})
}
