package sql

import (
	"context"
	"fmt"
	"math"

	"probkb/internal/engine"
	"probkb/internal/obs"
)

// DB executes SQL statements against an engine catalog.
type DB struct {
	cat      *engine.Catalog
	stats    map[*engine.Table]cachedStats
	optimize bool
	workers  int
}

// NewDB wraps a catalog. The cost-based join-order optimizer is on by
// default; SetOptimize(false) forces syntactic join order.
func NewDB(cat *engine.Catalog) *DB { return &DB{cat: cat, optimize: true} }

// SetOptimize toggles the join-order optimizer (useful for plan
// comparisons and tests).
func (db *DB) SetOptimize(on bool) { db.optimize = on }

// SetWorkers sets the engine worker-pool size planned queries run with
// (engine.Opts.Workers): 0 means the engine default, 1 forces serial
// execution. Results are identical for every setting.
func (db *DB) SetWorkers(n int) { db.workers = n }

// Query parses, plans, and runs a SELECT; it returns the result table.
func (db *DB) Query(text string) (*engine.Table, error) {
	plan, err := db.Plan(text)
	if err != nil {
		return nil, err
	}
	return engine.Run(plan, "result")
}

// Plan parses and plans a SELECT without running it (for EXPLAIN).
func (db *DB) Plan(text string) (engine.Node, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	if stmt.Select == nil {
		return nil, fmt.Errorf("sql: Plan requires a SELECT")
	}
	plan, err := db.planSelect(stmt.Select)
	if err != nil {
		return nil, err
	}
	engine.Configure(plan, engine.Opts{Workers: db.workers})
	return plan, nil
}

// Explain runs a SELECT and renders its annotated physical plan.
func (db *DB) Explain(text string) (string, error) {
	plan, err := db.Plan(text)
	if err != nil {
		return "", err
	}
	if _, err := plan.Run(); err != nil {
		return "", err
	}
	return engine.Explain(plan), nil
}

// QueryContext is Query with cancellation: the context's Err is
// consulted at every operator boundary, so a canceled context stops the
// plan before its next operator runs. If an active query rides the
// context (internal/obs), its rows-produced counter is fed as operators
// materialize.
func (db *DB) QueryContext(ctx context.Context, text string) (*engine.Table, error) {
	out, _, err := db.QueryAnalyzeContext(ctx, text)
	return out, err
}

// QueryAnalyzeContext runs a SELECT and returns the executed plan tree
// alongside the result, so callers can render EXPLAIN ANALYZE or
// journal the profiled plan of the query they just ran. On error the
// plan (possibly partially executed) is still returned when available.
func (db *DB) QueryAnalyzeContext(ctx context.Context, text string) (*engine.Table, engine.Node, error) {
	plan, err := db.Plan(text)
	if err != nil {
		return nil, nil, err
	}
	engine.Configure(plan, db.execOpts(ctx))
	out, err := engine.Run(plan, "result")
	if err != nil {
		return nil, plan, err
	}
	return out, plan, nil
}

// ExplainAnalyze runs a SELECT and renders its plan with the
// optimizer's cardinality estimates next to the actuals the run
// collected (engine.ExplainAnalyze).
func (db *DB) ExplainAnalyze(ctx context.Context, text string) (string, error) {
	_, plan, err := db.QueryAnalyzeContext(ctx, text)
	if err != nil {
		return "", err
	}
	return engine.ExplainAnalyze(plan), nil
}

// execOpts builds the engine execution options for a context-carrying
// run: the configured worker count, cancellation wired to the context,
// and the active query's rows-produced feed when one rides the context.
func (db *DB) execOpts(ctx context.Context) engine.Opts {
	o := engine.Opts{Workers: db.workers}
	if ctx == nil {
		return o
	}
	o.Cancel = ctx.Err
	if aq := obs.QueryFrom(ctx); aq != nil {
		o.OnRows = aq.AddRows
	}
	return o
}

// Exec runs a DELETE and reports how many rows it removed.
func (db *DB) Exec(text string) (int, error) {
	stmt, err := Parse(text)
	if err != nil {
		return 0, err
	}
	if stmt.Delete == nil {
		return 0, fmt.Errorf("sql: Exec requires a DELETE")
	}
	return db.execDelete(stmt.Delete)
}

// ---------------------------------------------------------------------------
// Scope: column resolution over a physical layout

// scopeCol describes one physical column of the current intermediate
// result.
type scopeCol struct {
	binding string // table binding the column came from
	name    string
	typ     engine.ColType
}

type scope struct {
	cols []scopeCol
}

// resolve finds a reference's physical column index.
func (s *scope) resolve(ref ColRef) (int, error) {
	found := -1
	for i, c := range s.cols {
		if c.name != ref.Col {
			continue
		}
		if ref.Table != "" && c.binding != ref.Table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column reference %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %s", ref)
	}
	return found, nil
}

// has reports whether the reference resolves in this scope.
func (s *scope) has(ref ColRef) bool {
	_, err := s.resolve(ref)
	return err == nil
}

// scopeOf builds the scope of a base table under a binding.
func scopeOf(binding string, t *engine.Table) *scope {
	sc := &scope{}
	for _, c := range t.Schema().Cols {
		sc.cols = append(sc.cols, scopeCol{binding: binding, name: c.Name, typ: c.Type})
	}
	return sc
}

// ---------------------------------------------------------------------------
// SELECT planning

func (db *DB) planSelect(s *SelectStmt) (engine.Node, error) {
	// Pool every conjunct; each is applied at the earliest join step
	// where it resolves (standard inner-join pushdown).
	var pool []Condition
	for _, j := range s.Joins {
		pool = append(pool, j.On...)
	}
	pool = append(pool, s.Where...)
	used := make([]bool, len(pool))

	// Resolve every source and pick the join order.
	allRefs := append([]TableRef{s.From}, make([]TableRef, 0, len(s.Joins))...)
	for _, j := range s.Joins {
		allRefs = append(allRefs, j.Table)
	}
	seen := map[string]bool{}
	infos := make([]refInfo, 0, len(allRefs))
	for _, ref := range allRefs {
		b := ref.Binding()
		if seen[b] {
			return nil, fmt.Errorf("sql: duplicate table binding %q", b)
		}
		seen[b] = true
		t, err := db.cat.Get(ref.Name)
		if err != nil {
			return nil, err
		}
		st := db.statsOf(t)
		infos = append(infos, refInfo{
			ref: ref, table: t, stats: st,
			card: filteredCard(t, st, b, pool),
		})
	}
	var order []int
	if db.optimize {
		order = db.chooseJoinOrder(infos, pool)
	} else {
		order = make([]int, len(infos))
		for i := range order {
			order[i] = i
		}
	}

	// Estimate threading: est tracks the optimizer's running cardinality
	// guess for the node most recently built, and every node is stamped
	// with it so EXPLAIN ANALYZE can show estimates next to actuals. The
	// scan estimate is the raw table cardinality — filters are separate
	// physical nodes here, so the honest per-node estimate applies their
	// selectivity at the Filter, not the Scan.
	em := newEstimator(infos)

	first := infos[order[0]]
	var plan engine.Node = engine.NewScan(first.table)
	sc := scopeOf(first.ref.Binding(), first.table)
	est := stamp(plan, float64(first.table.NumRows()))

	applyFilters := func(plan engine.Node, sc *scope) (engine.Node, error) {
		for i, c := range pool {
			if used[i] {
				continue
			}
			if !condResolves(c, sc) {
				continue
			}
			pred, err := compileCondition(c, sc)
			if err != nil {
				return nil, err
			}
			plan = engine.NewFilter(plan, c.String(), pred)
			est = stamp(plan, est*em.condSelectivity(c, sc))
			used[i] = true
		}
		return plan, nil
	}

	var err error
	// Join the remaining tables in the chosen order.
	for _, oi := range order[1:] {
		info := infos[oi]
		b := info.ref.Binding()
		t := info.table
		tScope := scopeOf(b, t)

		// Split the pool: equality conjuncts bridging current scope and
		// the new table become hash keys.
		var buildKeys, probeKeys []int
		for i, c := range pool {
			if used[i] || c.Op != "=" || c.Left.isLiteral() || c.Right.isLiteral() ||
				c.Left.Agg != aggNone || c.Right.Agg != aggNone || c.IsNull || c.NotNul {
				continue
			}
			var cur, next ColRef
			switch {
			case sc.has(c.Left.Col) && tScope.has(c.Right.Col):
				cur, next = c.Left.Col, c.Right.Col
			case sc.has(c.Right.Col) && tScope.has(c.Left.Col):
				cur, next = c.Right.Col, c.Left.Col
			default:
				continue
			}
			bi, err := sc.resolve(cur)
			if err != nil {
				return nil, err
			}
			pi, err := tScope.resolve(next)
			if err != nil {
				return nil, err
			}
			if sc.cols[bi].typ != engine.Int32 || tScope.cols[pi].typ != engine.Int32 {
				continue // only int columns hash; leave as a post-filter
			}
			buildKeys = append(buildKeys, bi)
			probeKeys = append(probeKeys, pi)
			used[i] = true
		}

		// Output layout: all current columns then all new columns, named
		// by binding to stay unambiguous.
		var outs []engine.JoinOut
		newScope := &scope{}
		for i, c := range sc.cols {
			outs = append(outs, engine.BuildCol(c.binding+"."+c.name, i))
			newScope.cols = append(newScope.cols, c)
		}
		for i, c := range tScope.cols {
			outs = append(outs, engine.ProbeCol(c.binding+"."+c.name, i))
			newScope.cols = append(newScope.cols, c)
		}
		desc := engine.JoinDesc("build", plan.OutSchema(), buildKeys, b, t.Schema(), probeKeys)
		probe := engine.NewScan(t)
		rawRight := stamp(probe, float64(t.NumRows()))
		sel := em.joinSelectivity(sc, buildKeys, tScope, probeKeys, est, rawRight)
		plan = engine.NewHashJoin(plan, probe, buildKeys, probeKeys, outs, desc)
		est = stamp(plan, est*rawRight*sel)
		sc = newScope

		// Apply every newly-resolvable conjunct.
		if plan, err = applyFilters(plan, sc); err != nil {
			return nil, err
		}
	}
	// Base-table-only filters (single-table query).
	if plan, err = applyFilters(plan, sc); err != nil {
		return nil, err
	}
	for i, c := range pool {
		if !used[i] {
			return nil, fmt.Errorf("sql: condition %s does not resolve against the FROM tables", c)
		}
	}

	// Aggregation.
	hasAgg := len(s.GroupBy) > 0
	for _, it := range s.Items {
		if it.Expr.Agg != aggNone {
			hasAgg = true
		}
	}
	for _, h := range s.Having {
		if h.Left.Agg != aggNone || h.Right.Agg != aggNone {
			hasAgg = true
		}
	}
	if hasAgg {
		plan, sc, est, err = db.planAggregate(plan, sc, s, em, est)
		if err != nil {
			return nil, err
		}
	} else if len(s.Having) > 0 {
		return nil, fmt.Errorf("sql: HAVING without aggregation")
	}

	// Final projection. projCols remembers which scope column each output
	// column reads, so DISTINCT below can estimate via base-table
	// distincts; non-column outputs get a zero scopeCol (no stats).
	var exprs []engine.OutExpr
	var projCols []scopeCol
	for _, it := range s.Items {
		name := it.OutName()
		e := it.Expr
		switch {
		case e.IsNull:
			exprs = append(exprs, engine.NullF64Expr(name))
			projCols = append(projCols, scopeCol{})
		case e.IsNumber:
			exprs = append(exprs, engine.ConstF64Expr(name, e.Number))
			projCols = append(projCols, scopeCol{})
		case e.IsString:
			exprs = append(exprs, engine.OutExpr{Name: name, Type: engine.String, Col: -1, Str: e.Str})
			projCols = append(projCols, scopeCol{})
		default:
			ref := e.Col
			if e.Agg != aggNone {
				ref = ColRef{Col: aggColName(e)}
			}
			idx, err := sc.resolve(ref)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, engine.ColExpr(name, idx))
			projCols = append(projCols, sc.cols[idx])
		}
	}
	plan = engine.NewProject(plan, exprs...)
	est = stamp(plan, est)

	if s.Distinct {
		keys := make([]int, 0, len(s.Items))
		for i, cd := range plan.OutSchema().Cols {
			if cd.Type != engine.Int32 {
				return nil, fmt.Errorf("sql: DISTINCT requires integer output columns (column %s is %s)", cd.Name, cd.Type)
			}
			keys = append(keys, i)
		}
		plan = engine.NewDistinct(plan, keys)
		// Distinct output ≈ product of the key columns' base distinct
		// counts, capped by the input cardinality.
		groups := 1.0
		for _, pc := range projCols {
			_, d, _, ok := em.colStats(pc)
			if !ok {
				d = est
			}
			groups *= capDistinct(d, est)
			if groups >= est {
				groups = est
				break
			}
		}
		est = stamp(plan, groups)
	}

	// ORDER BY resolves against the output column names.
	if len(s.OrderBy) > 0 {
		outSchema := plan.OutSchema()
		keys := make([]engine.SortKey, 0, len(s.OrderBy))
		for _, o := range s.OrderBy {
			if o.Col.Table != "" {
				return nil, fmt.Errorf("sql: ORDER BY uses output column names, not %s", o.Col)
			}
			idx := outSchema.ColIndex(o.Col.Col)
			if idx < 0 {
				return nil, fmt.Errorf("sql: ORDER BY column %s is not in the select list", o.Col)
			}
			keys = append(keys, engine.SortKey{Col: idx, Desc: o.Desc})
		}
		plan = engine.NewSort(plan, keys...)
		stamp(plan, est)
	}
	if s.Limit >= 0 {
		plan = engine.NewLimit(plan, s.Limit)
		stamp(plan, math.Min(float64(s.Limit), est))
	}
	return plan, nil
}

// aggColName is the internal column name an aggregate materializes as.
func aggColName(e Expr) string { return "#" + e.String() }

// planAggregate plans GROUP BY / HAVING, returning the new plan, a
// scope over (group keys..., aggregates...), and the updated
// cardinality estimate.
func (db *DB) planAggregate(plan engine.Node, sc *scope, s *SelectStmt, em *estimator, est float64) (engine.Node, *scope, float64, error) {
	// Collect the distinct aggregates from the select list and HAVING.
	var aggExprs []Expr
	addAgg := func(e Expr) {
		if e.Agg == aggNone {
			return
		}
		for _, a := range aggExprs {
			if a.Agg == e.Agg && a.Col == e.Col {
				return
			}
		}
		aggExprs = append(aggExprs, e)
	}
	for _, it := range s.Items {
		addAgg(it.Expr)
	}
	for _, h := range s.Having {
		addAgg(h.Left)
		addAgg(h.Right)
	}

	keys := make([]int, 0, len(s.GroupBy))
	newScope := &scope{}
	for _, g := range s.GroupBy {
		idx, err := sc.resolve(g)
		if err != nil {
			return nil, nil, 0, err
		}
		keys = append(keys, idx)
		newScope.cols = append(newScope.cols, sc.cols[idx])
	}

	specs := make([]engine.AggSpec, 0, len(aggExprs))
	for _, e := range aggExprs {
		spec := engine.AggSpec{Name: aggColName(e)}
		switch e.Agg {
		case aggCount:
			spec.Kind = engine.AggCount
		case aggCountDistinct:
			spec.Kind = engine.AggCountDistinct
		case aggMin:
			spec.Kind = engine.AggMinF64
		case aggMax:
			spec.Kind = engine.AggMaxF64
		case aggSum:
			spec.Kind = engine.AggSumF64
		}
		if e.Agg != aggCount {
			idx, err := sc.resolve(e.Col)
			if err != nil {
				return nil, nil, 0, err
			}
			if e.Agg == aggCountDistinct && sc.cols[idx].typ != engine.Int32 {
				return nil, nil, 0, fmt.Errorf("sql: COUNT(DISTINCT) requires an integer column")
			}
			if e.Agg != aggCountDistinct && sc.cols[idx].typ != engine.Float64 {
				return nil, nil, 0, fmt.Errorf("sql: %s requires a float column", e)
			}
			spec.Col = idx
		}
		specs = append(specs, spec)
		typ := engine.Int32
		if e.Agg == aggMin || e.Agg == aggMax || e.Agg == aggSum {
			typ = engine.Float64
		}
		newScope.cols = append(newScope.cols, scopeCol{name: aggColName(e), typ: typ})
	}

	plan = engine.NewGroupBy(plan, keys, specs)
	// Group count ≈ product of key-column distincts, capped by the input
	// estimate (keys resolve against the pre-aggregation scope).
	est = stamp(plan, em.groupCard(sc, keys, est))
	sc = newScope

	// HAVING over the aggregate scope: rewrite aggregate expressions to
	// their materialized columns.
	for _, h := range s.Having {
		hh := h
		if hh.Left.Agg != aggNone {
			hh.Left = Expr{Col: ColRef{Col: aggColName(hh.Left)}}
		}
		if hh.Right.Agg != aggNone {
			hh.Right = Expr{Col: ColRef{Col: aggColName(hh.Right)}}
		}
		pred, err := compileCondition(hh, sc)
		if err != nil {
			return nil, nil, 0, err
		}
		plan = engine.NewFilter(plan, h.String(), pred)
		est = stamp(plan, est*defaultSel)
	}
	return plan, sc, est, nil
}

// condResolves reports whether every column the condition mentions is in
// scope.
func condResolves(c Condition, sc *scope) bool {
	check := func(e Expr) bool {
		if e.isLiteral() || e.Agg != aggNone {
			return e.Agg == aggNone // aggregates never resolve pre-grouping
		}
		return sc.has(e.Col)
	}
	if c.IsNull || c.NotNul {
		return check(c.Left)
	}
	return check(c.Left) && check(c.Right)
}

// compileCondition builds the filter predicate for a resolvable condition.
func compileCondition(c Condition, sc *scope) (func(t *engine.Table, row int) bool, error) {
	if c.IsNull || c.NotNul {
		get, typ, err := compileValue(c.Left, sc)
		if err != nil {
			return nil, err
		}
		wantNull := c.IsNull
		return func(t *engine.Table, row int) bool {
			_, isNull := get(t, row)
			_ = typ
			return isNull == wantNull
		}, nil
	}

	// String equality is supported; everything else compares as float64.
	if isStringOperand(c.Left, sc) || isStringOperand(c.Right, sc) {
		if c.Op != "=" && c.Op != "<>" {
			return nil, fmt.Errorf("sql: strings support only = and <>: %s", c)
		}
		ls, err := compileString(c.Left, sc)
		if err != nil {
			return nil, err
		}
		rs, err := compileString(c.Right, sc)
		if err != nil {
			return nil, err
		}
		eq := c.Op == "="
		return func(t *engine.Table, row int) bool {
			return (ls(t, row) == rs(t, row)) == eq
		}, nil
	}

	lv, _, err := compileValue(c.Left, sc)
	if err != nil {
		return nil, err
	}
	rv, _, err := compileValue(c.Right, sc)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(t *engine.Table, row int) bool {
		a, an := lv(t, row)
		b, bn := rv(t, row)
		if an || bn {
			return false // SQL three-valued logic: NULL comparisons are not true
		}
		switch op {
		case "=":
			return a == b
		case "<>":
			return a != b
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		case ">=":
			return a >= b
		}
		return false
	}, nil
}

// compileValue builds a numeric accessor returning (value, isNull).
func compileValue(e Expr, sc *scope) (func(t *engine.Table, row int) (float64, bool), engine.ColType, error) {
	switch {
	case e.IsNumber:
		v := e.Number
		return func(*engine.Table, int) (float64, bool) { return v, false }, engine.Float64, nil
	case e.IsNull:
		return func(*engine.Table, int) (float64, bool) { return math.NaN(), true }, engine.Float64, nil
	case e.IsString:
		return nil, 0, fmt.Errorf("sql: string literal in numeric comparison")
	}
	idx, err := sc.resolve(e.Col)
	if err != nil {
		return nil, 0, err
	}
	switch sc.cols[idx].typ {
	case engine.Int32:
		return func(t *engine.Table, row int) (float64, bool) {
			v := t.Int32Col(idx)[row]
			return float64(v), v == engine.NullInt32
		}, engine.Int32, nil
	case engine.Float64:
		return func(t *engine.Table, row int) (float64, bool) {
			v := t.Float64Col(idx)[row]
			return v, engine.IsNullFloat64(v)
		}, engine.Float64, nil
	default:
		return nil, 0, fmt.Errorf("sql: column %s is not numeric", e.Col)
	}
}

func isStringOperand(e Expr, sc *scope) bool {
	if e.IsString {
		return true
	}
	if e.isLiteral() || e.Agg != aggNone {
		return false
	}
	idx, err := sc.resolve(e.Col)
	return err == nil && sc.cols[idx].typ == engine.String
}

func compileString(e Expr, sc *scope) (func(t *engine.Table, row int) string, error) {
	if e.IsString {
		s := e.Str
		return func(*engine.Table, int) string { return s }, nil
	}
	idx, err := sc.resolve(e.Col)
	if err != nil {
		return nil, err
	}
	if sc.cols[idx].typ != engine.String {
		return nil, fmt.Errorf("sql: column %s is not text", e.Col)
	}
	return func(t *engine.Table, row int) string { return t.StringCol(idx)[row] }, nil
}

// ---------------------------------------------------------------------------
// DELETE

func (db *DB) execDelete(d *DeleteStmt) (int, error) {
	t, err := db.cat.Get(d.Table.Name)
	if err != nil {
		return 0, err
	}
	sc := scopeOf(d.Table.Binding(), t)

	if d.InSelect != nil {
		sub, err := db.planSelect(d.InSelect)
		if err != nil {
			return 0, err
		}
		result, err := engine.Run(sub, "in_subquery")
		if err != nil {
			return 0, err
		}
		// Match columns must all be Int32 on both sides.
		outerCols := make([]int, len(d.InCols))
		subCols := make([]int, len(d.InCols))
		for i, ref := range d.InCols {
			idx, err := sc.resolve(ref)
			if err != nil {
				return 0, err
			}
			if sc.cols[idx].typ != engine.Int32 {
				return 0, fmt.Errorf("sql: IN requires integer columns (%s)", ref)
			}
			outerCols[i] = idx
			if result.Schema().Cols[i].Type != engine.Int32 {
				return 0, fmt.Errorf("sql: IN subquery column %d is not integer", i)
			}
			subCols[i] = i
		}
		set := engine.NewRowSet(result, subCols)
		return t.DeleteWhere(func(row int) bool {
			return set.Contains(t, row, outerCols)
		}), nil
	}

	preds := make([]func(*engine.Table, int) bool, 0, len(d.Where))
	for _, c := range d.Where {
		p, err := compileCondition(c, sc)
		if err != nil {
			return 0, err
		}
		preds = append(preds, p)
	}
	return t.DeleteWhere(func(row int) bool {
		for _, p := range preds {
			if !p(t, row) {
				return false
			}
		}
		return true
	}), nil
}
