package sql

import (
	"fmt"
	"strings"
)

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Table string // alias or table name; empty if unqualified
	Col   string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// aggKind mirrors engine.AggKind at the syntax level.
type aggKind int

const (
	aggNone aggKind = iota
	aggCount
	aggCountDistinct
	aggMin
	aggMax
	aggSum
)

// Expr is a select-list expression: a column, a literal, or an aggregate.
type Expr struct {
	// Col is set for plain references and for aggregate arguments.
	Col ColRef
	// Agg marks aggregate expressions.
	Agg aggKind
	// Literal forms (IsNull / IsNumber / IsString exclusive).
	IsNull   bool
	IsNumber bool
	Number   float64
	IsString bool
	Str      string
}

func (e Expr) isLiteral() bool { return e.IsNull || e.IsNumber || e.IsString }

// String renders the expression.
func (e Expr) String() string {
	switch {
	case e.Agg == aggCount:
		return "COUNT(*)"
	case e.Agg == aggCountDistinct:
		return fmt.Sprintf("COUNT(DISTINCT %s)", e.Col)
	case e.Agg == aggMin:
		return fmt.Sprintf("MIN(%s)", e.Col)
	case e.Agg == aggMax:
		return fmt.Sprintf("MAX(%s)", e.Col)
	case e.Agg == aggSum:
		return fmt.Sprintf("SUM(%s)", e.Col)
	case e.IsNull:
		return "NULL"
	case e.IsNumber:
		return fmt.Sprintf("%g", e.Number)
	case e.IsString:
		return "'" + e.Str + "'"
	default:
		return e.Col.String()
	}
}

// SelectItem is one output column.
type SelectItem struct {
	Expr  Expr
	Alias string // empty: derive from the expression
}

// OutName returns the output column name.
func (s SelectItem) OutName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Expr.Agg == aggNone && !s.Expr.isLiteral() {
		return s.Expr.Col.Col
	}
	return s.Expr.String()
}

// CmpOp is a comparison operator.
type CmpOp string

// Condition is one conjunct: left op right, or "left IS [NOT] NULL".
type Condition struct {
	Left   Expr
	Op     CmpOp
	Right  Expr
	IsNull bool // left IS NULL
	NotNul bool // left IS NOT NULL
}

// String renders the condition.
func (c Condition) String() string {
	if c.IsNull {
		return c.Left.String() + " IS NULL"
	}
	if c.NotNul {
		return c.Left.String() + " IS NOT NULL"
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// TableRef is FROM/JOIN source with optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the query refers to this table by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON ... step.
type JoinClause struct {
	Table TableRef
	On    []Condition
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    []Condition
	GroupBy  []ColRef
	Having   []Condition
	OrderBy  []OrderItem
	// Limit is -1 when absent.
	Limit int
}

// DeleteStmt is a parsed DELETE. Exactly one of In / Where is used.
type DeleteStmt struct {
	Table TableRef
	// InCols/InSelect: DELETE FROM t WHERE (c1, c2) IN (SELECT ...).
	InCols   []ColRef
	InSelect *SelectStmt
	// Where: plain conjunctive delete.
	Where []Condition
}

// Statement is a parsed SQL statement.
type Statement struct {
	Select *SelectStmt
	Delete *DeleteStmt
}

// String round-trips the statement to SQL text (normalized). Printing a
// parsed statement and re-parsing it yields the same normalized text —
// the fuzz targets in fuzz_test.go enforce this as a fixed point.
func (s *Statement) String() string {
	if s.Select != nil {
		return s.Select.String()
	}
	return s.Delete.String()
}

// String round-trips the DELETE to SQL text (normalized). The tuple-IN
// form always prints with parentheses around the column list, which the
// parser also accepts for a single column.
func (d *DeleteStmt) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM " + d.Table.Name)
	if d.Table.Alias != "" {
		b.WriteString(" " + d.Table.Alias)
	}
	b.WriteString(" WHERE ")
	if d.InSelect != nil {
		parts := make([]string, len(d.InCols))
		for i, c := range d.InCols {
			parts[i] = c.String()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ") IN (" + d.InSelect.String() + ")")
		return b.String()
	}
	b.WriteString(condList(d.Where))
	return b.String()
}

// String round-trips the statement to SQL text (normalized).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + s.From.Name)
	if s.From.Alias != "" {
		b.WriteString(" " + s.From.Alias)
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.Name)
		if j.Table.Alias != "" {
			b.WriteString(" " + j.Table.Alias)
		}
		b.WriteString(" ON " + condList(j.On))
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE " + condList(s.Where))
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(s.Having) > 0 {
		b.WriteString(" HAVING " + condList(s.Having))
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Col.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

func condList(cs []Condition) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}
