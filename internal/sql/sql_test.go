package sql

import (
	"strings"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/mln"
)

// paperCatalog loads the Table 1 example KB into a catalog under the
// names the paper's queries use: T (facts), M1/M3 (MLN partitions), FC
// (functional constraints).
func paperCatalog(t *testing.T) (*engine.Catalog, *kb.KB) {
	t.Helper()
	k := kb.New()
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	for _, line := range []string{
		"1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"1.53 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)",
		"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)",
		"0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)",
	} {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}

	parts, err := k.MLNPartitions()
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	cat.Put(k.FactsTable())
	for i := mln.P1; i <= mln.P6; i++ {
		cat.Put(parts.Table(i))
	}
	cat.Put(k.ConstraintsTable())
	return cat, k
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, COUNT(*) FROM t WHERE x >= 1.5e2 AND s = 'hi';")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	// Spot checks.
	if toks[0].text != "SELECT" || toks[1].text != "a" || toks[2].text != "." {
		t.Fatalf("tokens: %+v", toks[:4])
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad character accepted")
	}
	_ = kinds
}

func TestParseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT M1.R1 AS R, T.x AS x FROM M1 JOIN T ON M1.R2 = T.R WHERE T.w > 0.5",
		"SELECT DISTINCT T.x, T.C1 FROM T JOIN FC ON T.R = FC.R WHERE FC.arg = 1 GROUP BY T.R, T.x, T.C1, T.C2 HAVING COUNT(*) > MIN(FC.deg)",
		"SELECT COUNT(DISTINCT T.y) AS n FROM T GROUP BY T.x",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		text := stmt.Select.String()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse %q: %v", text, err)
		}
		if again.Select.String() != text {
			t.Fatalf("round trip unstable: %q vs %q", text, again.Select.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT",
		"SELECT x FROM",
		"SELECT x FROM t JOIN u",  // missing ON
		"SELECT x FROM t WHERE",   // missing condition
		"SELECT x FROM t GROUP x", // missing BY
		"SELECT x FROM t trailing junk (",
		"SELECT COUNT(x) FROM t", // COUNT needs * or DISTINCT
		"DELETE FROM t",          // missing WHERE
		"DELETE FROM t WHERE (a, b) IN (SELECT x FROM u)", // arity mismatch
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

// TestPaperQuery11 runs the paper's Query 1-1 verbatim (Figure 3): apply
// every M1 rule with one join.
func TestPaperQuery11(t *testing.T) {
	cat, k := paperCatalog(t)
	db := NewDB(cat)
	out, err := db.Query(`
		SELECT M1.R1 AS R, T.x AS x, T.C1 AS C1, T.y AS y, T.C2 AS C2
		FROM M1 JOIN T ON M1.R2 = T.R AND M1.C1 = T.C1 AND M1.C2 = T.C2`)
	if err != nil {
		t.Fatal(err)
	}
	// Both born_in facts fire their matching live_in rule: 2 rows.
	if out.NumRows() != 2 {
		t.Fatalf("Query 1-1 rows = %d, want 2:\n%s", out.NumRows(), out)
	}
	liveIn, _ := k.RelDict.Lookup("live_in")
	for r := 0; r < out.NumRows(); r++ {
		if out.Int32Col(0)[r] != liveIn {
			t.Fatalf("derived head relation wrong:\n%s", out)
		}
	}
}

// TestPaperQuery13 runs Query 1-3 verbatim: the two-way self-join of T
// against M3, with the WHERE T2.x = T3.x entity check becoming a hash key.
func TestPaperQuery13(t *testing.T) {
	cat, k := paperCatalog(t)
	db := NewDB(cat)
	query := `
		SELECT M3.R1 AS R, T2.y AS x, T2.C2 AS C1, T3.y AS y, T3.C2 AS C2
		FROM M3 JOIN T T2 ON M3.R2 = T2.R AND M3.C3 = T2.C1 AND M3.C1 = T2.C2
		        JOIN T T3 ON M3.R3 = T3.R AND M3.C3 = T3.C1 AND M3.C2 = T3.C2
		WHERE T2.x = T3.x`
	out, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	// Only the born_in-pair rule fires on the base facts:
	// located_in(Brooklyn, New_York_City).
	if out.NumRows() != 1 {
		t.Fatalf("Query 1-3 rows = %d, want 1:\n%s", out.NumRows(), out)
	}
	locatedIn, _ := k.RelDict.Lookup("located_in")
	brooklyn, _ := k.Entities.Lookup("Brooklyn")
	nyc, _ := k.Entities.Lookup("New_York_City")
	if out.Int32Col(0)[0] != locatedIn || out.Int32Col(1)[0] != brooklyn || out.Int32Col(3)[0] != nyc {
		t.Fatalf("Query 1-3 result wrong:\n%s", out)
	}

	// The planner must have turned T2.x = T3.x into a join key, not a
	// post-filter: the explain output shows no Filter node for it.
	exp, err := db.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exp, "Filter (T2.x = T3.x)") {
		t.Fatalf("entity check left as a post-filter:\n%s", exp)
	}
	if !strings.Contains(exp, "Hash Join") {
		t.Fatalf("no hash join in plan:\n%s", exp)
	}
}

// TestPaperQuery23 runs Query 2-3 verbatim: ground factors with IDs.
func TestPaperQuery23(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	// Against the base facts the head (located_in) does not exist yet, so
	// the factor join returns nothing — exactly the reason Algorithm 1
	// computes the closure before groundFactors.
	out, err := db.Query(`
		SELECT T1.I AS I1, T2.I AS I2, T3.I AS I3, M3.w AS w
		FROM M3 JOIN T T1 ON M3.R1 = T1.R AND M3.C1 = T1.C1 AND M3.C2 = T1.C2
		        JOIN T T2 ON M3.R2 = T2.R AND M3.C3 = T2.C1 AND M3.C1 = T2.C2
		        JOIN T T3 ON M3.R3 = T3.R AND M3.C3 = T3.C1 AND M3.C2 = T3.C2
		WHERE T1.x = T2.y AND T1.y = T3.y AND T2.x = T3.x`)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("factors before closure = %d rows, want 0", out.NumRows())
	}
}

// TestPaperQuery23AfterClosure grounds the KB first (so heads exist),
// then checks the SQL factor query produces exactly the grounder's M3
// factors — the SQL text and the hand-built plan are the same program.
func TestPaperQuery23AfterClosure(t *testing.T) {
	cat, k := paperCatalog(t)
	res, err := ground.Ground(k, ground.Options{})
	if err != nil {
		t.Fatal(err)
	}
	closure := res.Facts.Clone()
	closure.SetName("T")
	cat.Put(closure) // replace the base facts with the closed set

	db := NewDB(cat)
	out, err := db.Query(`
		SELECT T1.I AS I1, T2.I AS I2, T3.I AS I3, M3.w AS w
		FROM M3 JOIN T T1 ON M3.R1 = T1.R AND M3.C1 = T1.C1 AND M3.C2 = T1.C2
		        JOIN T T2 ON M3.R2 = T2.R AND M3.C3 = T2.C1 AND M3.C1 = T2.C2
		        JOIN T T3 ON M3.R3 = T3.R AND M3.C3 = T3.C1 AND M3.C2 = T3.C2
		WHERE T1.x = T2.y AND T1.y = T3.y AND T2.x = T3.x`)
	if err != nil {
		t.Fatal(err)
	}
	// The grounder produced two M3 factors (live_in pair, born_in pair).
	if out.NumRows() != 2 {
		t.Fatalf("SQL factor rows = %d, want 2:\n%s", out.NumRows(), out)
	}
	// Each SQL row matches a grounder factor row exactly.
	type frow struct {
		i1, i2, i3 int32
		w          float64
	}
	want := map[frow]bool{}
	for r := 0; r < res.Factors.NumRows(); r++ {
		i3 := res.Factors.Int32Col(ground.TPhiI3)[r]
		if i3 == engine.NullInt32 {
			continue // singleton or M1 factor
		}
		want[frow{
			res.Factors.Int32Col(ground.TPhiI1)[r],
			res.Factors.Int32Col(ground.TPhiI2)[r],
			i3,
			res.Factors.Float64Col(ground.TPhiW)[r],
		}] = true
	}
	for r := 0; r < out.NumRows(); r++ {
		got := frow{out.Int32Col(0)[r], out.Int32Col(1)[r], out.Int32Col(2)[r], out.Float64Col(3)[r]}
		if !want[got] {
			t.Fatalf("SQL factor %+v not among grounder factors %v", got, want)
		}
	}
}

// TestPaperQuery3 runs the applyConstraints DELETE verbatim against a
// violating KB.
func TestPaperQuery3(t *testing.T) {
	k := kb.New()
	k.InternFact("born_in", "Mandel", "Person", "Berlin", "City", 0.9)
	k.InternFact("born_in", "Mandel", "Person", "Chicago", "City", 0.9)
	k.InternFact("born_in", "Freud", "Person", "Vienna", "City", 0.9)
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	facts := k.FactsTable()
	cat.Put(facts)
	cat.Put(k.ConstraintsTable())
	db := NewDB(cat)

	deleted, err := db.Exec(`
		DELETE FROM T WHERE (T.x, T.C1) IN (
			SELECT DISTINCT T.x, T.C1
			FROM T JOIN FC ON T.R = FC.R
			WHERE FC.arg = 1
			GROUP BY T.R, T.x, T.C1, T.C2
			HAVING COUNT(*) > MIN(FC.deg)
		)`)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 2 {
		t.Fatalf("Query 3 deleted %d rows, want the 2 Mandel facts", deleted)
	}
	if facts.NumRows() != 1 {
		t.Fatalf("facts left = %d, want 1", facts.NumRows())
	}
}

func TestGroupByAndHaving(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	out, err := db.Query(`
		SELECT T.x, COUNT(*) AS n, COUNT(DISTINCT T.y) AS ny, MIN(T.w) AS mn, MAX(T.w) AS mx, SUM(T.w) AS sm
		FROM T GROUP BY T.x`)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 { // one subject: Ruth_Gruber
		t.Fatalf("groups = %d:\n%s", out.NumRows(), out)
	}
	if out.Int32Col(1)[0] != 2 || out.Int32Col(2)[0] != 2 {
		t.Fatalf("counts wrong:\n%s", out)
	}
	if out.Float64Col(3)[0] != 0.93 || out.Float64Col(4)[0] != 0.96 {
		t.Fatalf("min/max wrong:\n%s", out)
	}
	if diff := out.Float64Col(5)[0] - 1.89; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum wrong:\n%s", out)
	}
}

func TestWhereLiteralsAndNulls(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	out, err := db.Query("SELECT T.I FROM T WHERE T.w > 0.95")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("w > 0.95 rows = %d:\n%s", out.NumRows(), out)
	}
	// NULL handling: add an inferred (NULL-weight) fact.
	facts := cat.MustGet("T")
	facts.AppendRow(99, 0, 0, 0, 0, 0, engine.NullFloat64())
	if out, err = db.Query("SELECT T.I FROM T WHERE T.w IS NULL"); err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Int32Col(0)[0] != 99 {
		t.Fatalf("IS NULL rows:\n%s", out)
	}
	if out, err = db.Query("SELECT T.I FROM T WHERE T.w IS NOT NULL"); err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("IS NOT NULL rows = %d", out.NumRows())
	}
	// Comparisons against NULL are never true.
	if out, err = db.Query("SELECT T.I FROM T WHERE T.w > 0"); err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("NULL compared true: %d rows", out.NumRows())
	}
}

func TestSelectLiteralsAndNullProjection(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	out, err := db.Query("SELECT T.I, 7 AS seven, NULL AS w2, 'tag' AS tag FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Cols[1].Type != engine.Float64 || out.Float64Col(1)[0] != 7 {
		t.Fatalf("numeric literal wrong:\n%s", out)
	}
	if !engine.IsNullFloat64(out.Float64Col(2)[0]) {
		t.Fatal("NULL projection wrong")
	}
	if out.StringCol(3)[0] != "tag" {
		t.Fatal("string literal wrong")
	}
}

func TestStringComparison(t *testing.T) {
	cat := engine.NewCatalog()
	tab := engine.NewTable("D", engine.NewSchema(engine.C("id", engine.Int32), engine.C("name", engine.String)))
	tab.AppendRow(1, "kale")
	tab.AppendRow(2, "calcium")
	cat.Put(tab)
	db := NewDB(cat)
	out, err := db.Query("SELECT D.id FROM D WHERE D.name = 'kale'")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Int32Col(0)[0] != 1 {
		t.Fatalf("string filter wrong:\n%s", out)
	}
	if _, err := db.Query("SELECT D.id FROM D WHERE D.name > 'a'"); err == nil {
		t.Fatal("string ordering comparison accepted")
	}
}

func TestCrossJoin(t *testing.T) {
	cat := engine.NewCatalog()
	a := engine.NewTable("A", engine.NewSchema(engine.C("x", engine.Int32)))
	a.AppendRow(1)
	a.AppendRow(2)
	b := engine.NewTable("B", engine.NewSchema(engine.C("y", engine.Int32)))
	b.AppendRow(10)
	b.AppendRow(20)
	cat.Put(a)
	cat.Put(b)
	db := NewDB(cat)
	// No usable key equality: the planner falls back to a cross product
	// with the ON condition as a post-filter.
	out, err := db.Query("SELECT A.x, B.y FROM A JOIN B ON A.x < B.y")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Fatalf("cross join with filter rows = %d, want 4", out.NumRows())
	}
}

func TestPlannerErrors(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	bad := []string{
		"SELECT T.nope FROM T",                              // unknown column
		"SELECT x FROM NoSuchTable",                         // unknown table
		"SELECT T.I FROM T JOIN T ON T.I = T.I",             // duplicate binding
		"SELECT C1 FROM T T2 JOIN T T3 ON T2.R = T3.R",      // unqualified ambiguous
		"SELECT T.I FROM T HAVING COUNT(*) > 1 AND T.I = 1", // non-agg HAVING ref unresolvable post-group
		"SELECT DISTINCT T.w FROM T",                        // DISTINCT over float
		"SELECT T.I FROM T WHERE U.x = 1",                   // unresolvable condition
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
	if _, err := db.Exec("SELECT T.I FROM T"); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := db.Query("DELETE FROM T WHERE T.I = 1"); err == nil {
		t.Error("Query of DELETE accepted")
	}
}

func TestDeleteWhere(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	n, err := db.Exec("DELETE FROM T WHERE T.w < 0.95")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	if cat.MustGet("T").NumRows() != 1 {
		t.Fatal("wrong rows left")
	}
}

// TestSQLAgreesWithGrounderQuery: the SQL Query 1-1 must produce exactly
// the candidate atoms the grounding engine's hand-built plan produces.
func TestSQLAgreesWithGrounderQuery(t *testing.T) {
	cat, k := paperCatalog(t)
	db := NewDB(cat)
	out, err := db.Query(`
		SELECT M1.R1 AS R, T.x AS x, T.C1 AS C1, T.y AS y, T.C2 AS C2
		FROM M1 JOIN T ON M1.R2 = T.R AND M1.C1 = T.C1 AND M1.C2 = T.C2`)
	if err != nil {
		t.Fatal(err)
	}
	// The grounder's first iteration over M1 infers exactly these facts.
	liveIn, _ := k.RelDict.Lookup("live_in")
	seen := map[[5]int32]bool{}
	for r := 0; r < out.NumRows(); r++ {
		seen[[5]int32{
			out.Int32Col(0)[r], out.Int32Col(1)[r], out.Int32Col(2)[r],
			out.Int32Col(3)[r], out.Int32Col(4)[r],
		}] = true
	}
	rg, _ := k.Entities.Lookup("Ruth_Gruber")
	nyc, _ := k.Entities.Lookup("New_York_City")
	br, _ := k.Entities.Lookup("Brooklyn")
	writer, _ := k.Classes.Lookup("Writer")
	city, _ := k.Classes.Lookup("City")
	place, _ := k.Classes.Lookup("Place")
	for _, want := range [][5]int32{
		{liveIn, rg, writer, nyc, city},
		{liveIn, rg, writer, br, place},
	} {
		if !seen[want] {
			t.Fatalf("missing inferred atom %v in:\n%s", want, out)
		}
	}
}

func TestOrderByAndLimit(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	out, err := db.Query("SELECT T.I AS id, T.w AS w FROM T ORDER BY w DESC")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Float64Col(1)[0] != 0.96 || out.Float64Col(1)[1] != 0.93 {
		t.Fatalf("ORDER BY DESC wrong:\n%s", out)
	}
	out2, err := db.Query("SELECT T.I AS id FROM T ORDER BY id ASC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if out2.NumRows() != 1 || out2.Int32Col(0)[0] != 0 {
		t.Fatalf("LIMIT wrong:\n%s", out2)
	}
	// NULLs sort last ascending.
	facts := cat.MustGet("T")
	facts.AppendRow(7, 0, 0, 0, 0, 0, engine.NullFloat64())
	out3, err := db.Query("SELECT T.I AS id, T.w AS w FROM T ORDER BY w")
	if err != nil {
		t.Fatal(err)
	}
	if out3.Int32Col(0)[out3.NumRows()-1] != 7 {
		t.Fatalf("NULL should sort last:\n%s", out3)
	}
	// Errors.
	for _, q := range []string{
		"SELECT T.I FROM T ORDER BY nope",
		"SELECT T.I FROM T ORDER BY T.I", // qualified: output names only
		"SELECT T.I FROM T LIMIT -1",
		"SELECT T.I FROM T LIMIT x",
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
	// Round trip.
	stmt, err := Parse("SELECT T.I AS id FROM T ORDER BY id DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Select.String(); !strings.Contains(got, "ORDER BY id DESC LIMIT 3") {
		t.Fatalf("round trip: %q", got)
	}
}

func TestExplainOutput(t *testing.T) {
	cat, _ := paperCatalog(t)
	db := NewDB(cat)
	exp, err := db.Explain("SELECT T.I FROM T WHERE T.w > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Seq Scan on T", "Filter", "Project", "rows="} {
		if !strings.Contains(exp, want) {
			t.Fatalf("explain missing %q:\n%s", want, exp)
		}
	}
}
