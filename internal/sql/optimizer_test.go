package sql

import (
	"math/rand"
	"testing"

	"probkb/internal/engine"
)

func seededRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// optimizerCatalog builds a three-table chain Big—Mid—Tiny where the
// syntactic order (Big first) is maximally wasteful and the right plan
// starts from Tiny.
func optimizerCatalog() *engine.Catalog {
	cat := engine.NewCatalog()

	big := engine.NewTable("Big", engine.NewSchema(engine.C("k", engine.Int32), engine.C("v", engine.Int32)))
	for i := 0; i < 5000; i++ {
		big.AppendRow(int32(i%500), int32(i))
	}
	mid := engine.NewTable("Mid", engine.NewSchema(engine.C("k", engine.Int32), engine.C("m", engine.Int32)))
	for i := 0; i < 500; i++ {
		mid.AppendRow(int32(i), int32(i%50))
	}
	tiny := engine.NewTable("Tiny", engine.NewSchema(engine.C("m", engine.Int32)))
	for i := 0; i < 3; i++ {
		tiny.AppendRow(int32(i))
	}
	cat.Put(big)
	cat.Put(mid)
	cat.Put(tiny)
	return cat
}

const chainQuery = `
	SELECT Big.v FROM Big
	JOIN Mid ON Big.k = Mid.k
	JOIN Tiny ON Mid.m = Tiny.m`

// totalIntermediateRows sums the row counts of every join node in a plan
// after running it.
func totalIntermediateRows(t *testing.T, plan engine.Node) int {
	t.Helper()
	if _, err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	var walk func(n engine.Node)
	walk = func(n engine.Node) {
		if _, ok := n.(*engine.HashJoinNode); ok {
			total += n.Stats().Rows
		}
		for _, k := range n.Children() {
			walk(k)
		}
	}
	walk(plan)
	return total
}

func TestOptimizerReordersJoins(t *testing.T) {
	cat := optimizerCatalog()

	naive := NewDB(cat)
	naive.SetOptimize(false)
	naivePlan, err := naive.Plan(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewDB(cat)
	optPlan, err := opt.Plan(chainQuery)
	if err != nil {
		t.Fatal(err)
	}

	naiveRows := totalIntermediateRows(t, naivePlan)
	optRows := totalIntermediateRows(t, optPlan)
	if optRows >= naiveRows {
		t.Fatalf("optimizer did not shrink intermediates: %d vs naive %d", optRows, naiveRows)
	}

	// Both orders return the same result multiset.
	nRes, err := naive.Query(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	oRes, err := opt.Query(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	if nRes.NumRows() != oRes.NumRows() {
		t.Fatalf("result sizes differ: %d vs %d", nRes.NumRows(), oRes.NumRows())
	}
	count := func(tab *engine.Table) map[int32]int {
		m := map[int32]int{}
		for r := 0; r < tab.NumRows(); r++ {
			m[tab.Int32Col(0)[r]]++
		}
		return m
	}
	nm, om := count(nRes), count(oRes)
	for k, v := range nm {
		if om[k] != v {
			t.Fatalf("result multisets differ at %d: %d vs %d", k, v, om[k])
		}
	}
}

func TestOptimizerUsesLiteralSelectivity(t *testing.T) {
	// A selective literal predicate makes Big the cheapest start despite
	// its size — v = const keeps one row.
	cat := optimizerCatalog()
	db := NewDB(cat)
	q := `
		SELECT Big.v FROM Tiny
		JOIN Mid ON Mid.m = Tiny.m
		JOIN Big ON Big.k = Mid.k
		WHERE Big.v = 42`
	out, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() > 1 {
		t.Fatalf("selective query returned %d rows", out.NumRows())
	}
}

func TestOptimizerCrossJoinFallback(t *testing.T) {
	// Disconnected tables still plan (cross product) under the optimizer.
	cat := optimizerCatalog()
	db := NewDB(cat)
	out, err := db.Query("SELECT Tiny.m FROM Tiny JOIN Mid ON Mid.m = Mid.m")
	if err != nil {
		t.Fatal(err)
	}
	// Mid.m = Mid.m is a tautology over non-null values: full cross
	// product 3 × 500.
	if out.NumRows() != 1500 {
		t.Fatalf("cross join rows = %d, want 1500", out.NumRows())
	}
}

// TestOptimizerInvariance: on random chain joins over random tables, the
// optimized and syntactic plans return identical result multisets.
func TestOptimizerInvariance(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := seededRng(seed)
		cat := engine.NewCatalog()
		names := []string{"A", "B", "C"}
		for _, name := range names {
			tab := engine.NewTable(name, engine.NewSchema(
				engine.C("k", engine.Int32), engine.C("v", engine.Int32)))
			n := 1 + rng.Intn(40)
			for i := 0; i < n; i++ {
				tab.AppendRow(rng.Int31n(6), rng.Int31n(6))
			}
			cat.Put(tab)
		}
		q := "SELECT A.v FROM A JOIN B ON A.k = B.k JOIN C ON B.v = C.v"
		if rng.Intn(2) == 0 {
			q += " WHERE A.v < 4"
		}

		naive := NewDB(cat)
		naive.SetOptimize(false)
		nRes, err := naive.Query(q)
		if err != nil {
			t.Fatalf("seed %d naive: %v", seed, err)
		}
		opt := NewDB(cat)
		oRes, err := opt.Query(q)
		if err != nil {
			t.Fatalf("seed %d optimized: %v", seed, err)
		}
		if nRes.NumRows() != oRes.NumRows() {
			t.Fatalf("seed %d: result sizes differ: %d vs %d", seed, nRes.NumRows(), oRes.NumRows())
		}
		nm := map[int32]int{}
		om := map[int32]int{}
		for r := 0; r < nRes.NumRows(); r++ {
			nm[nRes.Int32Col(0)[r]]++
			om[oRes.Int32Col(0)[r]]++
		}
		for k, v := range nm {
			if om[k] != v {
				t.Fatalf("seed %d: multisets differ at %d", seed, k)
			}
		}
	}
}

func TestAnalyzeStats(t *testing.T) {
	tab := engine.NewTable("T", engine.NewSchema(
		engine.C("a", engine.Int32), engine.C("w", engine.Float64), engine.C("s", engine.String)))
	tab.AppendRow(1, 0.5, "x")
	tab.AppendRow(1, engine.NullFloat64(), "y")
	tab.AppendRow(engine.NullInt32, 0.5, "x")
	st := engine.Analyze(tab)
	if st.Rows != 3 {
		t.Fatalf("rows = %d", st.Rows)
	}
	if st.Cols[0].Distinct != 2 || st.Cols[0].Nulls != 1 {
		t.Fatalf("int col stats = %+v", st.Cols[0])
	}
	if st.Cols[1].Distinct != 2 || st.Cols[1].Nulls != 1 {
		t.Fatalf("float col stats = %+v", st.Cols[1])
	}
	if st.Cols[2].Distinct != 2 {
		t.Fatalf("string col stats = %+v", st.Cols[2])
	}
	if st.DistinctOf(99) != 3 || st.DistinctOf(0) != 2 {
		t.Fatal("DistinctOf bounds wrong")
	}
}

func TestStatsCacheInvalidation(t *testing.T) {
	cat := optimizerCatalog()
	db := NewDB(cat)
	tiny := cat.MustGet("Tiny")
	st1 := db.statsOf(tiny)
	if st1.Rows != 3 {
		t.Fatalf("rows = %d", st1.Rows)
	}
	// Cache hit returns the same object.
	if db.statsOf(tiny) != st1 {
		t.Fatal("stats not cached")
	}
	tiny.AppendRow(int32(9))
	st2 := db.statsOf(tiny)
	if st2 == st1 || st2.Rows != 4 {
		t.Fatal("stats cache not invalidated on growth")
	}
}
