package sql

import (
	"math"

	"probkb/internal/engine"
)

// Per-operator cardinality estimation for EXPLAIN ANALYZE. The planner
// threads a running estimate through the physical tree it builds —
// scans carry raw table cardinality, filters multiply per-condition
// selectivities, joins apply the same distinct-value model the
// join-order optimizer costs with — and stamps each node via
// engine.SetEstRows, so ExplainAnalyze can put the optimizer's guess
// next to what the operator actually produced. Scope columns keep their
// base-table binding through arbitrarily deep join chains, which is
// what lets a filter applied three joins in still look up the distinct
// count of its base column.

// estimator resolves scope columns back to base-table statistics.
type estimator struct {
	infos map[string]refInfo // by binding
}

func newEstimator(infos []refInfo) *estimator {
	e := &estimator{infos: make(map[string]refInfo, len(infos))}
	for _, in := range infos {
		e.infos[in.ref.Binding()] = in
	}
	return e
}

// colStats resolves one scope column to (base rows, distinct, nulls);
// ok is false for columns that no longer map to a base table (aggregate
// outputs, constants).
func (e *estimator) colStats(c scopeCol) (rows, distinct, nulls float64, ok bool) {
	info, found := e.infos[c.binding]
	if !found {
		return 0, 0, 0, false
	}
	idx := colIndexIn(info.table, c.name)
	if idx < 0 {
		return 0, 0, 0, false
	}
	st := info.stats
	return float64(st.Rows), float64(st.DistinctOf(idx)), float64(st.Cols[idx].Nulls), true
}

// defaultSel is the selectivity assumed for conditions the model cannot
// resolve (range predicates, unresolvable columns) — the textbook 1/3.
const defaultSel = 1.0 / 3.0

// condSelectivity estimates the fraction of rows a filter condition
// keeps.
func (e *estimator) condSelectivity(c Condition, sc *scope) float64 {
	// IS NULL / IS NOT NULL use the base column's null fraction.
	if c.IsNull || c.NotNul {
		if c.Left.isLiteral() || c.Left.Agg != aggNone {
			return defaultSel
		}
		idx, err := sc.resolve(c.Left.Col)
		if err != nil {
			return defaultSel
		}
		rows, _, nulls, ok := e.colStats(sc.cols[idx])
		if !ok || rows <= 0 {
			return defaultSel
		}
		frac := nulls / rows
		if c.NotNul {
			frac = 1 - frac
		}
		return clampSel(frac)
	}
	if c.Op != "=" {
		return defaultSel
	}
	// col = literal: 1/distinct of the column.
	lv, rv := c.Left, c.Right
	if rv.isLiteral() != lv.isLiteral() {
		col := lv
		if lv.isLiteral() {
			col = rv
		}
		if col.Agg != aggNone {
			return defaultSel
		}
		if idx, err := sc.resolve(col.Col); err == nil {
			if _, d, _, ok := e.colStats(sc.cols[idx]); ok && d >= 1 {
				return clampSel(1 / d)
			}
		}
		return defaultSel
	}
	// col = col (residual equality): 1/max of the distinct counts.
	if lv.isLiteral() || rv.isLiteral() || lv.Agg != aggNone || rv.Agg != aggNone {
		return defaultSel
	}
	li, lerr := sc.resolve(lv.Col)
	ri, rerr := sc.resolve(rv.Col)
	if lerr != nil || rerr != nil {
		return defaultSel
	}
	_, ld, _, lok := e.colStats(sc.cols[li])
	_, rd, _, rok := e.colStats(sc.cols[ri])
	if !lok || !rok {
		return defaultSel
	}
	return clampSel(1 / math.Max(ld, rd))
}

// joinSelectivity estimates the selectivity of the hash-join equality
// tuple: Π 1/max(d_build(col), d_probe(col)), each distinct count
// capped by its side's cardinality — the same distinct-value model
// chooseJoinOrder costs with.
func (e *estimator) joinSelectivity(sc *scope, buildKeys []int, tScope *scope, probeKeys []int, leftCard, rightCard float64) float64 {
	sel := 1.0
	for k := range buildKeys {
		_, db, _, bok := e.colStats(sc.cols[buildKeys[k]])
		_, dp, _, pok := e.colStats(tScope.cols[probeKeys[k]])
		if !bok {
			db = leftCard
		}
		if !pok {
			dp = rightCard
		}
		db = capDistinct(db, leftCard)
		dp = capDistinct(dp, rightCard)
		sel /= math.Max(db, dp)
	}
	return sel
}

// groupCard estimates the group count of an aggregation: the product of
// the key columns' distinct counts, capped by the input cardinality.
func (e *estimator) groupCard(sc *scope, keys []int, inCard float64) float64 {
	if len(keys) == 0 {
		return 1
	}
	groups := 1.0
	for _, k := range keys {
		_, d, _, ok := e.colStats(sc.cols[k])
		if !ok {
			d = inCard
		}
		groups *= capDistinct(d, inCard)
		if groups >= inCard {
			return math.Max(inCard, 1)
		}
	}
	return math.Max(groups, 1)
}

func capDistinct(d, card float64) float64 {
	if d > card {
		d = card
	}
	if d < 1 {
		d = 1
	}
	return d
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// stamp floors an estimate at one row and records it on a plan node.
func stamp(n engine.Node, est float64) float64 {
	if est < 1 {
		est = 1
	}
	engine.SetEstRows(n, est)
	return est
}
