package sql

import (
	"context"
	"fmt"
	"math"

	"probkb/internal/engine"
	"probkb/internal/mpp"
)

// DistDB executes SELECTs as distributed plans over a simulated MPP
// cluster. Planning is strictly *motion-free*: base tables stay where
// the distribution spec placed them and the planner never inserts a
// redistribution, so a join whose inputs are not collocated surfaces an
// error at execution time — it does not crash, and it does not silently
// ship rows. That makes DistDB the ad-hoc-query mirror of the paper's
// collocation discipline: dimension tables are replicated, the big fact
// table is hash-distributed, and every join must be local.
type DistDB struct {
	cluster *mpp.Cluster
	tables  map[string]*mpp.DistTable
}

// NewDistDB distributes every catalog table across the cluster. Tables
// with an entry in hashed are hash-distributed by those column indexes;
// all others are replicated (the dimension-table default).
func NewDistDB(cat *engine.Catalog, cluster *mpp.Cluster, hashed map[string][]int) *DistDB {
	db := &DistDB{cluster: cluster, tables: map[string]*mpp.DistTable{}}
	for _, name := range cat.Names() {
		t := cat.MustGet(name)
		if key, ok := hashed[name]; ok {
			db.tables[name] = cluster.Distribute(t, key)
		} else {
			db.tables[name] = cluster.Replicate(t)
		}
	}
	return db
}

// Query parses, plans, and runs a SELECT as a distributed plan, then
// gathers the per-segment results into one table.
func (db *DistDB) Query(text string) (*engine.Table, error) {
	return db.QueryContext(context.Background(), text)
}

// QueryContext is Query with cancellation: the context is installed on
// the cluster for the duration of the run, so segment tasks stop at
// their next boundary when it is canceled. The DistDB must own its
// cluster (the per-request construction in the probkb API does).
func (db *DistDB) QueryContext(ctx context.Context, text string) (*engine.Table, error) {
	out, _, err := db.QueryAnalyzeContext(ctx, text)
	return out, err
}

// QueryAnalyzeContext runs the query and also returns the executed
// distributed plan tree, for mpp.ExplainAnalyze rendering and plan
// journaling. On execution error the plan is still returned.
func (db *DistDB) QueryAnalyzeContext(ctx context.Context, text string) (*engine.Table, mpp.Node, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, nil, err
	}
	if stmt.Select == nil {
		return nil, nil, fmt.Errorf("sql: distributed Query requires a SELECT")
	}
	plan, err := db.planSelect(stmt.Select)
	if err != nil {
		return nil, nil, err
	}
	if ctx != nil {
		db.cluster.SetContext(ctx)
	}
	out, err := plan.Run()
	if err != nil {
		return nil, plan, err
	}
	res := mpp.Gather(out)
	res.SetName("result")
	return res, plan, nil
}

// ExplainAnalyze runs a distributed SELECT and renders its plan with
// estimates next to actuals (per-segment rows and motion volumes
// included).
func (db *DistDB) ExplainAnalyze(ctx context.Context, text string) (string, error) {
	_, plan, err := db.QueryAnalyzeContext(ctx, text)
	if err != nil {
		return "", err
	}
	return mpp.ExplainAnalyze(plan), nil
}

// planSelect is the distributed reduction of DB.planSelect: joins in
// syntactic order, filters pushed to the earliest resolvable step, and
// a final projection. Aggregation, DISTINCT, ORDER BY and LIMIT are not
// supported distributed — the single-node DB covers those.
func (db *DistDB) planSelect(s *SelectStmt) (mpp.Node, error) {
	if len(s.GroupBy) > 0 || len(s.Having) > 0 || s.Distinct || len(s.OrderBy) > 0 || s.Limit >= 0 {
		return nil, fmt.Errorf("sql: distributed queries support joins, filters and projection only")
	}
	for _, it := range s.Items {
		if it.Expr.Agg != aggNone {
			return nil, fmt.Errorf("sql: distributed queries do not support aggregates")
		}
	}

	var pool []Condition
	for _, j := range s.Joins {
		pool = append(pool, j.On...)
	}
	pool = append(pool, s.Where...)
	used := make([]bool, len(pool))

	refs := append([]TableRef{s.From}, make([]TableRef, 0, len(s.Joins))...)
	for _, j := range s.Joins {
		refs = append(refs, j.Table)
	}
	seen := map[string]bool{}
	for _, ref := range refs {
		b := ref.Binding()
		if seen[b] {
			return nil, fmt.Errorf("sql: duplicate table binding %q", b)
		}
		seen[b] = true
	}

	first, err := db.distTable(refs[0].Name)
	if err != nil {
		return nil, err
	}
	var plan mpp.Node = mpp.NewScan(first)
	sc := scopeOfSchema(refs[0].Binding(), first.Schema())
	// Distributed estimates are deliberately crude — no ANALYZE stats
	// exist for distributed tables, so scans estimate their total rows,
	// filters assume the textbook 1/3, and joins assume the smaller
	// input's cardinality. ExplainAnalyze shows how far off that is.
	est := stampD(plan, float64(first.NumRows()))

	applyFilters := func(plan mpp.Node, sc *scope) (mpp.Node, error) {
		for i, c := range pool {
			if used[i] || !condResolves(c, sc) {
				continue
			}
			pred, err := compileCondition(c, sc)
			if err != nil {
				return nil, err
			}
			plan = mpp.NewFilter(plan, c.String(), pred)
			est = stampD(plan, est*defaultSel)
			used[i] = true
		}
		return plan, nil
	}

	for _, ref := range refs[1:] {
		b := ref.Binding()
		t, err := db.distTable(ref.Name)
		if err != nil {
			return nil, err
		}
		tScope := scopeOfSchema(b, t.Schema())

		// Equality conjuncts bridging the current scope and the new table
		// become hash keys, exactly as in the single-node planner.
		var buildKeys, probeKeys []int
		for i, c := range pool {
			if used[i] || c.Op != "=" || c.Left.isLiteral() || c.Right.isLiteral() ||
				c.Left.Agg != aggNone || c.Right.Agg != aggNone || c.IsNull || c.NotNul {
				continue
			}
			var cur, next ColRef
			switch {
			case sc.has(c.Left.Col) && tScope.has(c.Right.Col):
				cur, next = c.Left.Col, c.Right.Col
			case sc.has(c.Right.Col) && tScope.has(c.Left.Col):
				cur, next = c.Right.Col, c.Left.Col
			default:
				continue
			}
			bi, err := sc.resolve(cur)
			if err != nil {
				return nil, err
			}
			pi, err := tScope.resolve(next)
			if err != nil {
				return nil, err
			}
			if sc.cols[bi].typ != engine.Int32 || tScope.cols[pi].typ != engine.Int32 {
				continue
			}
			buildKeys = append(buildKeys, bi)
			probeKeys = append(probeKeys, pi)
			used[i] = true
		}
		if len(buildKeys) == 0 {
			return nil, fmt.Errorf("sql: distributed join with %s needs an integer equality condition", b)
		}

		var outs []engine.JoinOut
		newScope := &scope{}
		for i, c := range sc.cols {
			outs = append(outs, engine.BuildCol(c.binding+"."+c.name, i))
			newScope.cols = append(newScope.cols, c)
		}
		for i, c := range tScope.cols {
			outs = append(outs, engine.ProbeCol(c.binding+"."+c.name, i))
			newScope.cols = append(newScope.cols, c)
		}
		// A non-collocated pair records a deferred error inside the node;
		// it surfaces when the plan runs.
		probe := mpp.NewScan(t)
		rawRight := stampD(probe, float64(t.NumRows()))
		plan = mpp.NewHashJoin(plan, probe, buildKeys, probeKeys, outs,
			fmt.Sprintf("join %s", b))
		est = stampD(plan, math.Min(est, rawRight))
		sc = newScope

		if plan, err = applyFilters(plan, sc); err != nil {
			return nil, err
		}
	}
	plan, err = applyFilters(plan, sc)
	if err != nil {
		return nil, err
	}
	for i, c := range pool {
		if !used[i] {
			return nil, fmt.Errorf("sql: condition %s does not resolve against the FROM tables", c)
		}
	}

	var exprs []engine.OutExpr
	for _, it := range s.Items {
		name := it.OutName()
		e := it.Expr
		switch {
		case e.IsNull:
			exprs = append(exprs, engine.NullF64Expr(name))
		case e.IsNumber:
			exprs = append(exprs, engine.ConstF64Expr(name, e.Number))
		case e.IsString:
			exprs = append(exprs, engine.OutExpr{Name: name, Type: engine.String, Col: -1, Str: e.Str})
		default:
			idx, err := sc.resolve(e.Col)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, engine.ColExpr(name, idx))
		}
	}
	proj := mpp.NewProject(plan, exprs...)
	stampD(proj, est)
	return proj, nil
}

// stampD floors an estimate at one row and records it on a distributed
// plan node.
func stampD(n mpp.Node, est float64) float64 {
	if est < 1 {
		est = 1
	}
	mpp.SetEstRows(n, est)
	return est
}

func (db *DistDB) distTable(name string) (*mpp.DistTable, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return t, nil
}

// scopeOfSchema builds the scope of a distributed base table under a
// binding; the schema stands in for the table scopeOf would take.
func scopeOfSchema(binding string, sch engine.Schema) *scope {
	sc := &scope{}
	for _, c := range sch.Cols {
		sc.cols = append(sc.cols, scopeCol{binding: binding, name: c.Name, typ: c.Type})
	}
	return sc
}
