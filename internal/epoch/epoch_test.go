package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPinSeesCurrentGeneration(t *testing.T) {
	m := New("v1", nil)
	p := m.Pin()
	if p.Value() != "v1" || p.Gen() != 1 {
		t.Fatalf("pin: got (%q, %d), want (v1, 1)", p.Value(), p.Gen())
	}
	p.Unpin()

	if gen := m.Publish("v2"); gen != 2 {
		t.Fatalf("publish: gen %d, want 2", gen)
	}
	p = m.Pin()
	defer p.Unpin()
	if p.Value() != "v2" || p.Gen() != 2 {
		t.Fatalf("pin after publish: got (%q, %d), want (v2, 2)", p.Value(), p.Gen())
	}
}

// TestPinnedGenerationSurvivesPublish is the MVCC contract: a reader
// pinned to generation N keeps N's value after N+1 publishes, and N is
// not reclaimed until that reader unpins.
func TestPinnedGenerationSurvivesPublish(t *testing.T) {
	var reclaimed []uint64
	m := New("v1", func(gen uint64, _ string) { reclaimed = append(reclaimed, gen) })

	p := m.Pin()
	m.Publish("v2")
	if p.Value() != "v1" {
		t.Fatalf("pinned reader moved generations: got %q", p.Value())
	}
	if len(reclaimed) != 0 {
		t.Fatalf("generation reclaimed while pinned: %v", reclaimed)
	}
	if m.Live() != 2 {
		t.Fatalf("live: got %d, want 2 (old pinned + current)", m.Live())
	}
	p.Unpin()
	if len(reclaimed) != 1 || reclaimed[0] != 1 {
		t.Fatalf("after last unpin: reclaimed %v, want [1]", reclaimed)
	}
	if m.Live() != 1 {
		t.Fatalf("live after reclaim: got %d, want 1", m.Live())
	}
}

func TestUnpinIdempotent(t *testing.T) {
	m := New(1, nil)
	p := m.Pin()
	p.Unpin()
	p.Unpin() // must not double-release
	m.Publish(2)
	if m.Live() != 1 {
		t.Fatalf("live: got %d, want 1", m.Live())
	}
	if m.Pins() != 0 {
		t.Fatalf("pins: got %d, want 0", m.Pins())
	}
}

func TestValueAfterUnpinPanics(t *testing.T) {
	m := New(1, nil)
	p := m.Pin()
	p.Unpin()
	defer func() {
		if recover() == nil {
			t.Fatal("Value after Unpin did not panic")
		}
	}()
	p.Value()
}

// TestNoLeakAfterLastUnpin publishes many generations with overlapping
// pins and asserts exactly the superseded ones reclaim: the epoch
// layer must neither free a pinned generation nor leak an unpinned one.
func TestNoLeakAfterLastUnpin(t *testing.T) {
	freed := map[uint64]int{}
	m := New(0, func(gen uint64, _ int) { freed[gen]++ })

	const gens = 100
	var pins []*Pin[int]
	for i := 1; i < gens; i++ {
		pins = append(pins, m.Pin())
		m.Publish(i)
	}
	// Every generation except the current one is pinned exactly once.
	if m.Live() != gens {
		t.Fatalf("live: got %d, want %d", m.Live(), gens)
	}
	for _, p := range pins {
		p.Unpin()
	}
	if m.Live() != 1 {
		t.Fatalf("live after unpins: got %d, want 1 (only current)", m.Live())
	}
	if m.Reclaimed() != gens-1 {
		t.Fatalf("reclaimed: got %d, want %d", m.Reclaimed(), gens-1)
	}
	for gen, n := range freed {
		if n != 1 {
			t.Errorf("generation %d reclaimed %d times", gen, n)
		}
		if gen == uint64(gens) {
			t.Errorf("current generation %d reclaimed", gen)
		}
	}
}

// TestConcurrentPinPublish races many readers against a publisher under
// -race: every pin must observe a fully published value (value matches
// its generation number), every superseded generation must reclaim
// exactly once, and nothing may reclaim while pinned.
func TestConcurrentPinPublish(t *testing.T) {
	type payload struct{ gen uint64 }
	var reclaims atomic.Uint64
	m := New(&payload{gen: 1}, func(gen uint64, v *payload) {
		if v.gen != gen {
			t.Errorf("reclaim: value gen %d under generation %d", v.gen, gen)
		}
		reclaims.Add(1)
	})

	const (
		readers  = 8
		pinsEach = 2000
		writes   = 500
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pinsEach; i++ {
				p := m.Pin()
				if got := p.Value().gen; got != p.Gen() {
					t.Errorf("pin observed value gen %d under generation %d", got, p.Gen())
				}
				p.Unpin()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			next := &payload{}
			next.gen = m.Current() + 1
			m.Publish(next)
		}
	}()
	wg.Wait()

	if m.Pins() != 0 {
		t.Fatalf("pins outstanding after quiesce: %d", m.Pins())
	}
	if m.Live() != 1 {
		t.Fatalf("live generations after quiesce: %d, want 1", m.Live())
	}
	if got := reclaims.Load(); got != writes {
		t.Fatalf("reclaims: got %d, want %d", got, writes)
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	m := New(struct{}{}, nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Pin().Unpin()
		}
	})
}
