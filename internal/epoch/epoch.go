// Package epoch is the MVCC serving tier's concurrency primitive: a
// lock-free epoch manager over immutable generations of a value.
//
// The serving workload is read-while-write — queries keep arriving
// while knowledge expansion derives new facts (Wick et al. serve
// marginals concurrently with ongoing MCMC for the same reason). The
// manager resolves it without reader-side locks:
//
//   - Readers Pin() the current generation and use it for as long as
//     they like; a pin is one atomic pointer load plus one CAS on the
//     generation's reference count, never a mutex.
//   - A writer builds the next generation off to the side (the value is
//     immutable once published — internal/kb's COW Fork makes building
//     it cheap) and Publish()es it with a single atomic swap. In-flight
//     readers keep their pinned generation; new readers see the new one.
//   - A generation is reclaimed — its OnReclaim hook runs — when the
//     last reference drops: the publisher's own reference at swap time
//     plus one per outstanding pin. A failed build is simply never
//     published; pins are unaffected.
//
// The package is mechanism only: it knows nothing about knowledge
// bases, HTTP, or metrics. internal/server composes it with
// probkb.Expansion snapshots and exports the gauges.
package epoch

import (
	"sync/atomic"
)

// generation is one refcounted immutable value. refs counts the
// publisher's reference (dropped when a newer generation replaces it)
// plus one per outstanding pin; the generation whose refs hits zero is
// unreachable — the current pointer moved past it and every reader
// left — and is reclaimed exactly once.
type generation[T any] struct {
	val  T
	gen  uint64
	refs atomic.Int64
}

// Manager publishes immutable generations of T to lock-free readers.
// The zero value is not usable; call New.
type Manager[T any] struct {
	cur atomic.Pointer[generation[T]]
	// live counts generations published but not yet reclaimed — the
	// leak-detection observable the reclamation tests assert on.
	live atomic.Int64
	// reclaimed counts generations whose last reference dropped.
	reclaimed atomic.Uint64
	// pins counts outstanding pins across all generations.
	pins atomic.Int64
	// onReclaim, when non-nil, observes each generation as its last
	// reference drops. It runs on whichever goroutine released the last
	// reference (a reader's Unpin or a writer's Publish); keep it cheap
	// or hand off.
	onReclaim func(gen uint64, v T)
}

// New returns a manager serving v as generation 1. onReclaim may be
// nil.
func New[T any](v T, onReclaim func(gen uint64, v T)) *Manager[T] {
	m := &Manager[T]{onReclaim: onReclaim}
	g := &generation[T]{val: v, gen: 1}
	g.refs.Store(1) // the publisher's reference
	m.live.Store(1)
	m.cur.Store(g)
	return m
}

// Pin acquires the current generation for reading. The returned Pin's
// Value is immutable and valid until Unpin; the generation cannot be
// reclaimed while any pin on it is outstanding. Pin never blocks on a
// writer: it is a pointer load plus a reference-count CAS, retried only
// in the unlikely window where the loaded generation was concurrently
// retired and fully released (the retry then sees the newer one).
func (m *Manager[T]) Pin() *Pin[T] {
	for {
		g := m.cur.Load()
		r := g.refs.Load()
		if r == 0 {
			// Fully released between our load and now; the current
			// pointer has already moved on. Reload.
			continue
		}
		if g.refs.CompareAndSwap(r, r+1) {
			m.pins.Add(1)
			return &Pin[T]{m: m, g: g}
		}
	}
}

// Publish atomically swaps in v as the next generation and returns its
// generation number. The previous generation loses the publisher's
// reference and is reclaimed once its last reader unpins. The caller
// must not mutate v after publishing — readers now hold it without
// locks.
func (m *Manager[T]) Publish(v T) uint64 {
	g := &generation[T]{val: v}
	g.refs.Store(1)
	m.live.Add(1)
	for {
		old := m.cur.Load()
		g.gen = old.gen + 1
		if m.cur.CompareAndSwap(old, g) {
			m.release(old)
			return g.gen
		}
	}
}

// Current returns the current generation number without pinning.
func (m *Manager[T]) Current() uint64 { return m.cur.Load().gen }

// Live returns how many generations are published but not yet
// reclaimed (at least 1: the current one holds the publisher's
// reference).
func (m *Manager[T]) Live() int64 { return m.live.Load() }

// Pins returns the number of outstanding pins across all generations.
func (m *Manager[T]) Pins() int64 { return m.pins.Load() }

// Reclaimed returns how many generations have been reclaimed since New.
func (m *Manager[T]) Reclaimed() uint64 { return m.reclaimed.Load() }

// release drops one reference and reclaims the generation when it was
// the last.
func (m *Manager[T]) release(g *generation[T]) {
	if g.refs.Add(-1) == 0 {
		m.live.Add(-1)
		m.reclaimed.Add(1)
		if m.onReclaim != nil {
			m.onReclaim(g.gen, g.val)
		}
	}
}

// Pin is one reader's hold on a generation.
type Pin[T any] struct {
	m        *Manager[T]
	g        *generation[T]
	unpinned atomic.Bool
}

// Value returns the pinned generation's value. It panics after Unpin —
// using a released generation is a lifetime bug, not a race to paper
// over.
func (p *Pin[T]) Value() T {
	if p.unpinned.Load() {
		panic("epoch: Value after Unpin")
	}
	return p.g.val
}

// Gen returns the pinned generation's number (valid even after Unpin).
func (p *Pin[T]) Gen() uint64 { return p.g.gen }

// Unpin releases the hold. It is idempotent: the second and later calls
// are no-ops, so `defer pin.Unpin()` composes with early manual
// release.
func (p *Pin[T]) Unpin() {
	if p.unpinned.Swap(true) {
		return
	}
	p.m.pins.Add(-1)
	p.m.release(p.g)
}
