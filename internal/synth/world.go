package synth

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/mln"
)

// ruleClasses derives the (C1, C2, C3) class names of a rule spec from
// its relations' signatures.
func (g *generator) ruleClasses(spec ruleSpec) (c1, c2, c3 string) {
	head := g.relations[spec.headRel]
	c1, c2 = head.dom, head.rng
	b0 := g.relations[spec.bodyRel[0]]
	switch spec.shape {
	case mln.P3, mln.P5: // q(z, x): z is b0's domain
		c3 = b0.dom
	case mln.P4, mln.P6: // q(x, z): z is b0's range
		c3 = b0.rng
	}
	return
}

// clauseFor interns a rule spec into the given KB's dictionaries.
func (g *generator) clauseFor(k *kb.KB, spec ruleSpec) (mln.Clause, error) {
	c1, c2, c3 := g.ruleClasses(spec)
	intern := func(ri int) int32 {
		r := g.relations[ri]
		return k.AddRelation(r.name, k.Classes.Intern(r.dom), k.Classes.Intern(r.rng))
	}
	head := mln.RawAtom{Rel: intern(spec.headRel), Arg1: 0, Arg2: 1}
	classes := map[int]int32{0: k.Classes.Intern(c1), 1: k.Classes.Intern(c2)}
	var body []mln.RawAtom
	b0 := intern(spec.bodyRel[0])
	switch spec.shape {
	case mln.P1:
		body = []mln.RawAtom{{Rel: b0, Arg1: 0, Arg2: 1}}
	case mln.P2:
		body = []mln.RawAtom{{Rel: b0, Arg1: 1, Arg2: 0}}
	default:
		classes[2] = k.Classes.Intern(c3)
		b1 := intern(spec.bodyRel[1])
		switch spec.shape {
		case mln.P3:
			body = []mln.RawAtom{{Rel: b0, Arg1: 2, Arg2: 0}, {Rel: b1, Arg1: 2, Arg2: 1}}
		case mln.P4:
			body = []mln.RawAtom{{Rel: b0, Arg1: 0, Arg2: 2}, {Rel: b1, Arg1: 2, Arg2: 1}}
		case mln.P5:
			body = []mln.RawAtom{{Rel: b0, Arg1: 2, Arg2: 0}, {Rel: b1, Arg1: 1, Arg2: 2}}
		case mln.P6:
			body = []mln.RawAtom{{Rel: b0, Arg1: 0, Arg2: 2}, {Rel: b1, Arg1: 1, Arg2: 2}}
		}
	}
	return mln.Canonicalize(head, body, classes, spec.weight)
}

// closeWorld computes the hidden truth: the closure of the seed facts
// under the *sound* rules, using the repo's own batch grounder over a KB
// keyed by true entity IDs. The level stratification guarantees the
// closure converges within Levels iterations.
func (g *generator) closeWorld(seeds []trueFact) error {
	tk := kb.New()
	for _, s := range seeds {
		r := g.relations[s.rel]
		tk.InternFact(r.name,
			"T"+strconv.Itoa(int(s.x)), r.dom,
			"T"+strconv.Itoa(int(s.y)), r.rng,
			1.0)
	}
	for _, spec := range g.soundRules {
		c, err := g.clauseFor(tk, spec)
		if err != nil {
			return fmt.Errorf("synth: sound rule: %w", err)
		}
		if err := tk.AddRule(c); err != nil {
			return err
		}
	}
	res, err := ground.Ground(tk, ground.Options{SkipFactors: true, MaxIterations: g.opts.Levels + 1})
	if err != nil {
		return fmt.Errorf("synth: closing world: %w", err)
	}
	// Read the closure back into the true-ID world set.
	for r := 0; r < res.Facts.NumRows(); r++ {
		f := kb.FactAtRow(res.Facts, r)
		relName := tk.RelDict.Name(f.Rel)
		ri, ok := g.relIndex[relName]
		if !ok {
			return fmt.Errorf("synth: closure produced unknown relation %q", relName)
		}
		x := mustTrueID(tk.Entities.Name(f.X))
		y := mustTrueID(tk.Entities.Name(f.Y))
		g.world[trueKey{ri, x, y}] = true
	}
	return nil
}

func mustTrueID(sym string) int32 {
	if !strings.HasPrefix(sym, "T") {
		panic("synth: true-world entity symbol " + sym + " lacks T prefix")
	}
	n, err := strconv.Atoi(sym[1:])
	if err != nil {
		panic(err)
	}
	return int32(n)
}

// emit renders the hidden world into the observed symbolic KB and builds
// the oracle.
func (g *generator) emit() (*Corpus, error) {
	obs := kb.New()
	o := &Oracle{
		world:        g.world,
		relIdxByName: g.relIndex,
		entsOfSym:    make(map[int32][]int32),
		plantedFalse: make(map[kb.Key]bool),
		ambiguous:    make(map[int32]bool),
		synonymous:   make(map[int32]bool),
		containerOf:  make(map[int32]int32),
		kb:           obs,
	}

	// Declare the class taxonomy so the observed KB's TC closes over
	// superclasses (Remark 1).
	for sub, super := range superClass {
		if err := obs.DeclareSubclass(obs.Classes.Intern(sub), obs.Classes.Intern(super)); err != nil {
			return nil, err
		}
	}

	// Surface-name interning: register every entity's symbols up front so
	// the oracle maps are complete even for entities no fact mentions.
	symID := func(name string) int32 { return obs.Entities.Intern(name) }
	for _, e := range g.entities {
		for _, s := range e.syms {
			id := symID(s)
			o.entsOfSym[id] = append(o.entsOfSym[id], e.id)
		}
		if len(e.syms) > 1 {
			for _, s := range e.syms {
				o.synonymous[symID(s)] = true
			}
		}
		if e.container >= 0 {
			o.containerOf[e.id] = e.container
		}
	}
	for id, ents := range o.entsOfSym {
		if len(ents) > 1 {
			o.ambiguous[id] = true
		}
	}
	o.trueEnts = g.entities

	// Rules: interleave sound and wrong deterministically, recording the
	// partition.
	corpus := &Corpus{KB: obs, Oracle: o}
	type tagged struct {
		spec  ruleSpec
		wrong bool
	}
	all := make([]tagged, 0, len(g.soundRules)+len(g.wrongRules))
	for _, s := range g.soundRules {
		all = append(all, tagged{s, false})
	}
	for _, s := range g.wrongRules {
		all = append(all, tagged{s, true})
	}
	g.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, t := range all {
		c, err := g.clauseFor(obs, t.spec)
		if err != nil {
			return nil, err
		}
		if err := obs.AddRule(c); err != nil {
			return nil, err
		}
		idx := len(obs.Rules) - 1
		if t.wrong {
			corpus.WrongRules = append(corpus.WrongRules, idx)
			o.wrongRule = append(o.wrongRule, true)
		} else {
			corpus.SoundRules = append(corpus.SoundRules, idx)
			o.wrongRule = append(o.wrongRule, false)
		}
	}

	// Constraints (the Leibniz stand-in): one Type I constraint per
	// functional relation.
	for _, r := range g.relations {
		if r.funcDeg == 0 {
			continue
		}
		rel := obs.AddRelation(r.name, obs.Classes.Intern(r.dom), obs.Classes.Intern(r.rng))
		if err := obs.AddConstraint(kb.Constraint{Rel: rel, Type: kb.TypeI, Degree: r.funcDeg}); err != nil {
			return nil, err
		}
	}

	// Observed facts: sample the world through surface names.
	pickSym := func(e int32) string {
		syms := g.entities[e].syms
		return syms[g.rng.Intn(len(syms))]
	}
	emitFact := func(ri int, xSym, ySym string) {
		r := g.relations[ri]
		w := 0.5 + g.rng.Float64()*0.5
		obs.InternFact(r.name, xSym, r.dom, ySym, r.rng, w)
	}
	observed := 0
	for _, key := range g.sortedWorldKeys() {
		r := g.relations[key.rel]
		rate := g.opts.ObservedDerived
		if r.level == 0 {
			rate = g.opts.ObservedBase
		}
		if g.rng.Float64() >= rate {
			continue
		}
		xSym, ySym := pickSym(key.x), pickSym(key.y)
		emitFact(key.rel, xSym, ySym)
		observed++

		// Synonym plant in action: an extractor meets the same fact on
		// different pages under different object names; under a
		// functional relation the two renderings violate the constraint
		// even though both are true.
		if syms := g.entities[key.y].syms; len(syms) > 1 && g.rng.Float64() < 0.5 {
			for _, s := range syms {
				if s != ySym {
					emitFact(key.rel, xSym, s)
					break
				}
			}
		}

		// General-type plant: also state the fact at country granularity;
		// it is *true* (containment), so it joins the world, but it
		// violates the relation's functional constraint.
		if r.geo && g.rng.Float64() < g.opts.GeneralTypeRate {
			if country, ok := o.containerOf[key.y]; ok {
				g.world[trueKey{key.rel, key.x, country}] = true
				emitFact(key.rel, xSym, pickSym(country))
			}
		}
	}

	// E1 extraction errors: fabricated facts, recorded as planted-false
	// unless fabrication accidentally lands on a truth. Half of the
	// fabrications follow the pattern the paper's Figure 5(b) shows —
	// a bogus second partner for a subject that already has one under a
	// functional relation (capital_of(Calcutta, India)-style errors) —
	// which is what makes extraction errors visible to the constraint
	// checker at all.
	funcSubjects := g.functionalSubjects()
	nErr := int(float64(observed) * g.opts.ExtractionErrorRate)
	for i := 0; i < nErr; i++ {
		var (
			ri   int
			x, y int32
		)
		if len(funcSubjects) > 0 && g.rng.Intn(6) == 0 {
			fs := funcSubjects[g.rng.Intn(len(funcSubjects))]
			ri, x = fs.rel, fs.subj
			rngPool := g.pool[g.relations[ri].rng]
			if len(rngPool) == 0 {
				continue
			}
			y = rngPool[g.rng.Intn(len(rngPool))]
		} else {
			ri = g.rng.Intn(len(g.relations))
			r := g.relations[ri]
			domPool, rngPool := g.pool[r.dom], g.pool[r.rng]
			if len(domPool) == 0 || len(rngPool) == 0 {
				continue
			}
			x = domPool[g.rng.Intn(len(domPool))]
			y = rngPool[g.rng.Intn(len(rngPool))]
		}
		r := g.relations[ri]
		xSym, ySym := pickSym(x), pickSym(y)
		emitFact(ri, xSym, ySym)
		symKey := kb.Key{
			Rel: obs.RelDict.Intern(r.name),
			X:   obs.Entities.Intern(xSym), XClass: obs.Classes.Intern(r.dom),
			Y: obs.Entities.Intern(ySym), YClass: obs.Classes.Intern(r.rng),
		}
		if !o.Judge(symKey) {
			o.plantedFalse[symKey] = true
		}
	}

	corpus.TrueWorldSize = len(g.world)
	// Sanity: weights must be finite (hard rules live in constraints).
	for _, c := range obs.Rules {
		if math.IsInf(c.Weight, 0) {
			return nil, fmt.Errorf("synth: generated an infinite-weight rule")
		}
	}
	return corpus, nil
}
