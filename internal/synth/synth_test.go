package synth

import (
	"testing"

	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/quality"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := ReVerbSherlock(0.005, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateScalesCounts(t *testing.T) {
	c := testCorpus(t)
	st := c.KB.Stats()
	if st.Facts < 500 {
		t.Fatalf("facts = %d, too few", st.Facts)
	}
	if st.Rules != len(c.SoundRules)+len(c.WrongRules) {
		t.Fatalf("rule partition inconsistent: %d vs %d + %d",
			st.Rules, len(c.SoundRules), len(c.WrongRules))
	}
	if len(c.WrongRules) == 0 || len(c.SoundRules) == 0 {
		t.Fatal("both sound and wrong rules must exist")
	}
	// Wrong-rule share near the requested rate.
	frac := float64(len(c.WrongRules)) / float64(st.Rules)
	if frac < 0.2 || frac > 0.5 {
		t.Fatalf("wrong-rule fraction = %v", frac)
	}
	if st.Constraints == 0 {
		t.Fatal("no functional constraints generated")
	}
	if c.TrueWorldSize < st.Facts/2 {
		t.Fatalf("true world %d facts vs observed %d", c.TrueWorldSize, st.Facts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := ReVerbSherlock(0.004, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReVerbSherlock(0.004, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.KB.Stats() != b.KB.Stats() {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.KB.Stats(), b.KB.Stats())
	}
	if a.TrueWorldSize != b.TrueWorldSize {
		t.Fatal("same seed, different world size")
	}
	c, err := ReVerbSherlock(0.004, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.KB.Stats() == a.KB.Stats() {
		t.Fatal("different seeds produced identical corpora (suspicious)")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Options{Scale: 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	opts := DefaultOptions()
	opts.Levels = 0
	if _, err := Generate(opts); err == nil {
		t.Fatal("zero levels accepted")
	}
}

func TestOracleJudgesObservedFacts(t *testing.T) {
	c := testCorpus(t)
	correct, planted := 0, 0
	for _, f := range c.KB.Facts {
		if c.Oracle.Judge(f.Key()) {
			correct++
		} else {
			planted++
		}
	}
	// Most observed facts are true samples; the planted errors are the
	// ExtractionErrorRate share.
	if correct == 0 || planted == 0 {
		t.Fatalf("judgments degenerate: %d correct, %d planted", correct, planted)
	}
	frac := float64(planted) / float64(correct+planted)
	if frac > 0.15 {
		t.Fatalf("planted-false share %v too high", frac)
	}
	// Every recorded planted-false key must judge false.
	for key := range c.Oracle.plantedFalse {
		if c.Oracle.Judge(key) {
			t.Fatal("plantedFalse key judged true")
		}
	}
}

func TestOracleAmbiguity(t *testing.T) {
	c := testCorpus(t)
	n := 0
	for sym := range c.Oracle.ambiguous {
		if len(c.Oracle.entsOfSym[sym]) < 2 {
			t.Fatal("ambiguous symbol with one denotation")
		}
		if !c.Oracle.Ambiguous(sym) {
			t.Fatal("Ambiguous() disagrees with map")
		}
		n++
	}
	if n == 0 {
		t.Fatal("no ambiguous symbols planted")
	}
}

func TestExpansionPrecisionImprovesWithQC(t *testing.T) {
	c := testCorpus(t)

	// Raw: no quality control.
	raw, err := ground.Ground(c.KB, ground.Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	rawPrec := c.Oracle.Precision(raw.Facts, raw.BaseFacts)

	// QC: rule cleaning to the top half + semantic constraints in the
	// loop.
	cleaned := quality.CleanRules(c.KB, 0.5)
	checker := quality.NewChecker(cleaned)
	qc, err := ground.Ground(cleaned, ground.Options{MaxIterations: 4, ConstraintHook: checker.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	qcPrec := c.Oracle.Precision(qc.Facts, qc.BaseFacts)

	if raw.InferredFacts() == 0 {
		t.Fatal("raw expansion inferred nothing; corpus too sparse for the test")
	}
	t.Logf("raw: %d inferred at precision %.3f; qc: %d inferred at precision %.3f",
		raw.InferredFacts(), rawPrec, qc.InferredFacts(), qcPrec)
	if qcPrec <= rawPrec {
		t.Fatalf("quality control did not improve precision: %.3f vs %.3f", qcPrec, rawPrec)
	}
}

func TestCategorizeViolations(t *testing.T) {
	c := testCorpus(t)
	res, err := ground.Ground(c.KB, ground.Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	checker := quality.NewChecker(c.KB)
	viol := checker.Violations(res.Facts)
	if len(viol) == 0 {
		t.Fatal("no violations found; error planting failed")
	}
	b := c.Oracle.CategorizeAll(viol, res.Facts, res.BaseFacts)
	if b.Total() != len(viol) {
		t.Fatalf("breakdown total %d != violations %d", b.Total(), len(viol))
	}
	if b[quality.SrcAmbiguousEntity] == 0 {
		t.Fatalf("expected ambiguous-entity violations, got breakdown:\n%s", b)
	}
	t.Logf("violation breakdown:\n%s", b)
}

func TestRuleScoresSeparateSoundFromWrong(t *testing.T) {
	c := testCorpus(t)
	scores := quality.ScoreRules(c.KB)
	var soundAvg, wrongAvg float64
	for _, i := range c.SoundRules {
		soundAvg += scores[i].Score
	}
	soundAvg /= float64(len(c.SoundRules))
	for _, i := range c.WrongRules {
		wrongAvg += scores[i].Score
	}
	wrongAvg /= float64(len(c.WrongRules))
	if soundAvg <= wrongAvg {
		t.Fatalf("sound rules should outscore wrong rules: %.3f vs %.3f", soundAvg, wrongAvg)
	}
	t.Logf("avg score: sound %.3f, wrong %.3f", soundAvg, wrongAvg)
}

func TestS1GrowsRules(t *testing.T) {
	c := testCorpus(t)
	target := len(c.KB.Rules) * 3
	grown, err := S1(c, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Rules) != target {
		t.Fatalf("S1 rules = %d, want %d", len(grown.Rules), target)
	}
	// All synthetic rules must still partition.
	if _, err := grown.MLNPartitions(); err != nil {
		t.Fatal(err)
	}
	// Shrinking keeps a prefix.
	shrunk, err := S1(c, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk.Rules) != 5 {
		t.Fatalf("S1 shrink = %d rules", len(shrunk.Rules))
	}
	// The original is untouched.
	if len(c.KB.Rules) == target {
		t.Fatal("S1 mutated the base corpus")
	}
}

func TestS2GrowsFacts(t *testing.T) {
	c := testCorpus(t)
	target := len(c.KB.Facts) * 2
	grown, err := S2(c, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Facts) != target {
		t.Fatalf("S2 facts = %d, want %d", len(grown.Facts), target)
	}
	if len(c.KB.Facts) == target {
		t.Fatal("S2 mutated the base corpus")
	}
	if _, err := S2(c, 1, 5); err == nil {
		t.Fatal("S2 below base size should error")
	}
	// Grown facts are type-correct: every fact's classes match a known
	// relation signature.
	sigs := make(map[[3]int32]bool)
	for _, r := range grown.Relations {
		sigs[[3]int32{r.ID, r.Domain, r.Range}] = true
	}
	for _, f := range grown.Facts {
		if !sigs[[3]int32{f.Rel, f.XClass, f.YClass}] {
			t.Fatalf("fact %+v has unregistered signature", f)
		}
	}
}

func TestGroundingScalesWithS2(t *testing.T) {
	// Smoke test: the grounders handle a grown S2 KB.
	c := testCorpus(t)
	grown, err := S2(c, len(c.KB.Facts)+500, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ground.Ground(grown, ground.Options{MaxIterations: 1, SkipFactors: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts.NumRows() < grown.Stats().Facts {
		t.Fatal("S2 grounding lost facts")
	}
}

func TestGeneratedCorpusValidates(t *testing.T) {
	c := testCorpus(t)
	if errs := c.KB.Validate(); len(errs) != 0 {
		for i, e := range errs {
			if i > 5 {
				break
			}
			t.Log(e)
		}
		t.Fatalf("generated corpus fails validation with %d errors", len(errs))
	}
	// The taxonomy is declared: City ⊆ Place.
	city, okC := c.KB.Classes.Lookup("City")
	place, okP := c.KB.Classes.Lookup("Place")
	if !okC || !okP || !c.KB.IsSubclass(city, place) {
		t.Fatal("taxonomy not declared in generated corpus")
	}
}

func TestWorldContainsObservedTrueFacts(t *testing.T) {
	c := testCorpus(t)
	// Facts sampled from the world (not planted false) must be judged
	// true by construction.
	for _, f := range c.KB.Facts {
		key := f.Key()
		if c.Oracle.plantedFalse[key] {
			continue
		}
		if !c.Oracle.Judge(key) {
			// Could be a fabrication that landed on another symbol
			// rendering. Count these.
			t.Logf("non-planted fact judged false: %s", c.KB.FactString(f))
		}
	}
}

var _ = kb.TypeI // keep import
