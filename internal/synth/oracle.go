package synth

import (
	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/quality"
)

// Oracle knows the planted truth behind a generated corpus and replaces
// the human judges of Section 6.2: it can Judge any symbolic fact,
// measure the precision of an expansion, and Categorize constraint
// violations into the Figure 7(b) taxonomy.
type Oracle struct {
	world        map[trueKey]bool
	relIdxByName map[string]int
	trueEnts     []trueEntity

	// entsOfSym maps an observed entity symbol to the true entities it
	// denotes (more than one for planted ambiguities).
	entsOfSym map[int32][]int32
	// plantedFalse records the E1 fabrication keys.
	plantedFalse map[kb.Key]bool
	// ambiguous / synonymous flag symbol IDs.
	ambiguous  map[int32]bool
	synonymous map[int32]bool
	// containerOf maps a true city to its true country.
	containerOf map[int32]int32
	// wrongRule[i] reports whether KB.Rules[i] is unsound.
	wrongRule []bool

	kb *kb.KB
}

// relIdx resolves an observed relation ID to the generator's relation
// index, or -1.
func (o *Oracle) relIdx(rel int32) int {
	name := o.kb.RelDict.Name(rel)
	if i, ok := o.relIdxByName[name]; ok {
		return i
	}
	return -1
}

// Judge reports whether a symbolic fact is true: some combination of the
// underlying entities its symbols denote must be a world fact. A fact
// inferred by joining through an ambiguous name is false exactly when no
// single denotation supports it — the paper's E3/E4 failure mode.
func (o *Oracle) Judge(key kb.Key) bool {
	ri := o.relIdx(key.Rel)
	if ri < 0 {
		return false
	}
	for _, ex := range o.entsOfSym[key.X] {
		for _, ey := range o.entsOfSym[key.Y] {
			if o.world[trueKey{ri, ex, ey}] {
				return true
			}
		}
	}
	return false
}

// EvalInferred judges every inferred fact (ID at or above baseFacts) in a
// grounding result table and returns (correct, total).
func (o *Oracle) EvalInferred(facts *engine.Table, baseFacts int) (correct, total int) {
	ids := facts.Int32Col(kb.TPiI)
	for r := 0; r < facts.NumRows(); r++ {
		if int(ids[r]) < baseFacts {
			continue
		}
		total++
		if o.Judge(kb.FactAtRow(facts, r).Key()) {
			correct++
		}
	}
	return correct, total
}

// Precision returns correct/total for the inferred facts, or 0 when none
// exist.
func (o *Oracle) Precision(facts *engine.Table, baseFacts int) float64 {
	c, t := o.EvalInferred(facts, baseFacts)
	if t == 0 {
		return 0
	}
	return float64(c) / float64(t)
}

// Ambiguous reports whether a symbol was planted as ambiguous.
func (o *Oracle) Ambiguous(sym int32) bool { return o.ambiguous[sym] }

// Categorize assigns a constraint violation to its Figure 7(b) error
// source by inspecting the violating facts in tpi against the planted
// truth. baseFacts separates observed from inferred fact IDs.
func (o *Oracle) Categorize(v quality.Violation, tpi *engine.Table, baseFacts int) quality.ErrorSource {
	// 1. The violating symbol itself covers several true entities.
	if o.ambiguous[v.Entity] {
		return quality.SrcAmbiguousEntity
	}

	// Collect the violating group's facts: same relation, entity in the
	// constrained position.
	entCol, otherCol := kb.TPiX, kb.TPiY
	if v.Type == kb.TypeII {
		entCol, otherCol = kb.TPiY, kb.TPiX
	}
	type vf struct {
		key      kb.Key
		other    int32
		inferred bool
	}
	var group []vf
	ids := tpi.Int32Col(kb.TPiI)
	for r := 0; r < tpi.NumRows(); r++ {
		if tpi.Int32Col(kb.TPiR)[r] != v.Rel || tpi.Int32Col(entCol)[r] != v.Entity {
			continue
		}
		group = append(group, vf{
			key:      kb.FactAtRow(tpi, r).Key(),
			other:    tpi.Int32Col(otherCol)[r],
			inferred: int(ids[r]) >= baseFacts,
		})
	}

	// 2. General types: two partners that are a (city, container-country)
	// pair — both facts true at different granularity.
	for i := range group {
		for j := range group {
			if i == j {
				continue
			}
			for _, e1 := range o.entsOfSym[group[i].other] {
				for _, e2 := range o.entsOfSym[group[j].other] {
					if o.containerOf[e1] == e2 {
						return quality.SrcGeneralType
					}
				}
			}
		}
	}

	// 3. Synonyms: two partner symbols denoting the same true entity.
	for i := range group {
		for j := i + 1; j < len(group); j++ {
			for _, e1 := range o.entsOfSym[group[i].other] {
				for _, e2 := range o.entsOfSym[group[j].other] {
					if e1 == e2 {
						return quality.SrcSynonym
					}
				}
			}
		}
	}

	// 4. A planted extraction error in the group.
	for _, f := range group {
		if o.plantedFalse[f.key] {
			return quality.SrcIncorrectExtraction
		}
	}

	// 5. Inferred members of the group: attribute to a wrong rule or an
	// ambiguous join key if a one-step derivation from the current facts
	// explains them.
	idx := newDerivationIndex(tpi)
	sawInferred := false
	for _, f := range group {
		if !f.inferred || o.Judge(f.key) {
			continue
		}
		sawInferred = true
		if o.derivedByWrongRule(idx, f.key) {
			return quality.SrcIncorrectRule
		}
	}
	if sawInferred {
		for _, f := range group {
			if f.inferred && !o.Judge(f.key) && o.derivedViaAmbiguousJoin(idx, f.key) {
				return quality.SrcAmbiguousJoinKey
			}
		}
		return quality.SrcPropagated
	}
	return quality.SrcIncorrectExtraction
}

// CategorizeAll tallies a violation list into a Breakdown (Figure 7(b)).
func (o *Oracle) CategorizeAll(viol []quality.Violation, tpi *engine.Table, baseFacts int) quality.Breakdown {
	var b quality.Breakdown
	for _, v := range viol {
		b[o.Categorize(v, tpi, baseFacts)]++
	}
	return b
}

// derivationIndex indexes a facts table for one-step derivation checks.
type derivationIndex struct {
	bySig map[[3]int32][]pairI32 // (rel, c1, c2) → (x, y) pairs
}

type pairI32 struct{ x, y int32 }

func newDerivationIndex(tpi *engine.Table) *derivationIndex {
	ix := &derivationIndex{bySig: make(map[[3]int32][]pairI32)}
	for r := 0; r < tpi.NumRows(); r++ {
		sig := [3]int32{
			tpi.Int32Col(kb.TPiR)[r],
			tpi.Int32Col(kb.TPiC1)[r],
			tpi.Int32Col(kb.TPiC2)[r],
		}
		ix.bySig[sig] = append(ix.bySig[sig], pairI32{tpi.Int32Col(kb.TPiX)[r], tpi.Int32Col(kb.TPiY)[r]})
	}
	return ix
}

// derivations enumerates the variable bindings under which rule c derives
// the fact key from the indexed table, calling visit with the binding;
// visit returns false to stop.
func (o *Oracle) derivations(ix *derivationIndex, c *mln.Clause, key kb.Key, visit func(z int32, hasZ bool) bool) {
	if c.Head.Rel != key.Rel || c.Class[mln.X] != key.XClass || c.Class[mln.Y] != key.YClass {
		return
	}
	val := map[mln.Var]int32{mln.X: key.X, mln.Y: key.Y}
	b0 := c.Body[0]
	if len(c.Body) == 1 {
		sig := [3]int32{b0.Rel, c.Class[b0.Arg1], c.Class[b0.Arg2]}
		for _, p := range ix.bySig[sig] {
			if p.x == val[b0.Arg1] && p.y == val[b0.Arg2] {
				visit(0, false)
				return
			}
		}
		return
	}
	b1 := c.Body[1]
	sig0 := [3]int32{b0.Rel, c.Class[b0.Arg1], c.Class[b0.Arg2]}
	sig1 := [3]int32{b1.Rel, c.Class[b1.Arg1], c.Class[b1.Arg2]}
	zOf := func(a mln.Atom, p pairI32) int32 {
		if a.Arg1 == mln.Z {
			return p.x
		}
		return p.y
	}
	headValOf := func(a mln.Atom, p pairI32) (mln.Var, int32) {
		if a.Arg1 == mln.Z {
			return a.Arg2, p.y
		}
		return a.Arg1, p.x
	}
	for _, p0 := range ix.bySig[sig0] {
		hv, hval := headValOf(b0, p0)
		if val[hv] != hval {
			continue
		}
		z := zOf(b0, p0)
		for _, p1 := range ix.bySig[sig1] {
			hv1, hval1 := headValOf(b1, p1)
			if val[hv1] != hval1 || zOf(b1, p1) != z {
				continue
			}
			if !visit(z, true) {
				return
			}
		}
	}
}

// derivedByWrongRule reports whether any planted-wrong rule derives key
// in one step from the current facts.
func (o *Oracle) derivedByWrongRule(ix *derivationIndex, key kb.Key) bool {
	for i := range o.kb.Rules {
		if !o.wrongRule[i] {
			continue
		}
		found := false
		o.derivations(ix, &o.kb.Rules[i], key, func(int32, bool) bool {
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}

// derivedViaAmbiguousJoin reports whether some rule derives key in one
// step joining through an ambiguous symbol as z.
func (o *Oracle) derivedViaAmbiguousJoin(ix *derivationIndex, key kb.Key) bool {
	for i := range o.kb.Rules {
		found := false
		o.derivations(ix, &o.kb.Rules[i], key, func(z int32, hasZ bool) bool {
			if hasZ && o.ambiguous[z] {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
