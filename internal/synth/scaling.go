package synth

import (
	"fmt"
	"math/rand"

	"probkb/internal/kb"
	"probkb/internal/mln"
)

// ReVerbSherlock generates the default-configuration corpus at the given
// scale (see Options); it is the dataset behind Table 2, Table 3, and
// Figure 7.
func ReVerbSherlock(scale float64, seed int64) (*Corpus, error) {
	opts := DefaultOptions()
	opts.Scale = scale
	opts.Seed = seed
	return Generate(opts)
}

// S1 derives the Figure 6(a) family: the corpus's facts with the rule
// set grown (or shrunk) to nRules. Extra rules are built the way the
// paper describes — "substituting random heads for existing rules" — so
// every synthetic rule remains structurally valid and type-consistent.
func S1(c *Corpus, nRules int, seed int64) (*kb.KB, error) {
	base := c.KB
	out := base.Clone()
	if nRules <= len(base.Rules) {
		out.Rules = out.Rules[:nRules]
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))

	// Head candidates per (C1, C2) signature, from the relations the KB
	// already knows.
	type sig struct{ c1, c2 int32 }
	heads := make(map[sig][]int32)
	for _, r := range base.Relations {
		heads[sig{r.Domain, r.Range}] = append(heads[sig{r.Domain, r.Range}], r.ID)
	}

	need := nRules - len(base.Rules)
	attempts := 0
	for added := 0; added < need; {
		attempts++
		if attempts > need*100 {
			return nil, fmt.Errorf("synth: S1 could not grow rule set to %d", nRules)
		}
		tpl := base.Rules[rng.Intn(len(base.Rules))]
		s := sig{tpl.Class[mln.X], tpl.Class[mln.Y]}
		cands := heads[s]
		if len(cands) == 0 {
			continue
		}
		nc := tpl
		nc.Head.Rel = cands[rng.Intn(len(cands))]
		nc.Weight = 0.2 + rng.Float64()*1.6
		if err := out.AddRule(nc); err != nil {
			return nil, err
		}
		added++
	}
	return out, nil
}

// S2 derives the Figure 6(b) family: the corpus's rules with the fact
// set grown to nFacts by adding random edges over the existing entities
// and relations, as in the paper.
func S2(c *Corpus, nFacts int, seed int64) (*kb.KB, error) {
	base := c.KB
	out := base.Clone()
	if nFacts <= len(base.Facts) {
		return nil, fmt.Errorf("synth: S2 target %d below base fact count %d", nFacts, len(base.Facts))
	}
	rng := rand.New(rand.NewSource(seed))

	// Entity pools per class, from the observed membership pairs.
	pool := make(map[int32][]int32)
	for _, m := range base.Members {
		pool[m.Class] = append(pool[m.Class], m.Entity)
	}
	sigs := base.Relations

	need := nFacts - len(base.Facts)
	attempts := 0
	for added := 0; added < need; {
		attempts++
		if attempts > need*50 {
			return nil, fmt.Errorf("synth: S2 could not grow fact set to %d", nFacts)
		}
		r := sigs[rng.Intn(len(sigs))]
		domPool, rngPool := pool[r.Domain], pool[r.Range]
		if len(domPool) == 0 || len(rngPool) == 0 {
			continue
		}
		f := kb.Fact{
			Rel: r.ID,
			X:   domPool[rng.Intn(len(domPool))], XClass: r.Domain,
			Y: rngPool[rng.Intn(len(rngPool))], YClass: r.Range,
			W: 0.5 + rng.Float64()*0.5,
		}
		if _, fresh := out.AddFact(f); fresh {
			added++
		}
	}
	return out, nil
}
