// Package synth generates the synthetic evaluation datasets.
//
// The paper evaluates on the ReVerb-Sherlock KB (407K web-extracted
// facts, 30,912 learned Horn rules, 10,374 Leibniz functional
// constraints) plus two synthetic families S1 (rule-count sweep) and S2
// (fact-count sweep). Those corpora cannot be redistributed, so this
// package builds a *generative replacement with a planted ground truth*:
//
//  1. A hidden "true world" is constructed over true entities: a class
//     taxonomy, typed relations organized into derivation levels, seed
//     facts that respect the functional constraints, and sound rules
//     whose closure (computed with the repo's own grounder) defines what
//     is true.
//  2. The observed KB is an *extraction* of that world: a sample of true
//     facts rendered through surface names, corrupted with the paper's
//     four error sources — E1 extraction errors, E2 wrong rules, E3
//     ambiguous names (one surface form covering several true entities)
//     plus synonyms and general-type objects, and E4 propagated errors
//     (which emerge on their own once grounding runs).
//  3. An Oracle retains the mapping and judges any symbolic fact, so the
//     precision/recall curves of Figure 7(a) and the violation taxonomy
//     of Figure 7(b) are measured exactly instead of by sampled human
//     judgment.
//
// All generation is deterministic in Options.Seed.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"probkb/internal/kb"
	"probkb/internal/mln"
)

// sortInts sorts an int slice ascending.
func sortInts(s []int) { sort.Ints(s) }

// sortTrueKeys orders world keys by (rel, x, y).
func sortTrueKeys(keys []trueKey) {
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].rel != keys[b].rel {
			return keys[a].rel < keys[b].rel
		}
		if keys[a].x != keys[b].x {
			return keys[a].x < keys[b].x
		}
		return keys[a].y < keys[b].y
	})
}

// Paper-scale constants (Table 2 plus the Leibniz repository size); a
// corpus at Scale = 1 matches them.
const (
	PaperRelations   = 82768
	PaperRules       = 30912
	PaperEntities    = 277216
	PaperFacts       = 407247
	PaperConstraints = 10374
)

// Options configures the ReVerb-Sherlock-like generator.
type Options struct {
	// Scale multiplies the paper-scale counts; the default 0.02 yields a
	// corpus a laptop grounds in well under a second.
	Scale float64
	Seed  int64

	// Error-source rates.
	ExtractionErrorRate float64 // E1: fraction of observed facts that are fabrications
	WrongRuleRate       float64 // E2: fraction of rules that are unsound
	AmbiguousNameRate   float64 // E3: fraction of entities sharing a surface name
	SynonymRate         float64 // entities with two surface names
	GeneralTypeRate     float64 // geo facts duplicated at coarser granularity

	// ObservedBase is the fraction of true level-0 facts the extractor
	// saw; ObservedDerived the fraction of true derived facts it saw
	// (these give sound rules their statistical support).
	ObservedBase    float64
	ObservedDerived float64

	// FunctionalFraction of relations carry a functional constraint.
	FunctionalFraction float64

	// Levels is the derivation depth of the true world (relations are
	// stratified so the closure converges in at most Levels iterations).
	Levels int
}

// DefaultOptions returns the configuration used throughout the
// experiments unless a sweep overrides a field.
func DefaultOptions() Options {
	return Options{
		Scale:               0.02,
		Seed:                42,
		ExtractionErrorRate: 0.06,
		WrongRuleRate:       0.33,
		AmbiguousNameRate:   0.05,
		SynonymRate:         0.012,
		GeneralTypeRate:     0.02,
		ObservedBase:        0.85,
		ObservedDerived:     0.30,
		FunctionalFraction:  float64(PaperConstraints) / float64(PaperRelations),
		Levels:              4,
	}
}

// Corpus is a generated dataset: the observed KB handed to ProbKB, and
// the oracle that knows the planted truth.
type Corpus struct {
	KB     *kb.KB
	Oracle *Oracle
	// TrueWorldSize is the number of facts in the hidden closure.
	TrueWorldSize int
	// SoundRules and WrongRules partition KB.Rules by index.
	SoundRules []int
	WrongRules []int
}

// taxonomy is the fixed class vocabulary. City and Country are
// subclasses of Place; Writer and Politician of Person — the general-
// type error source needs the Place umbrella.
var (
	classNames = []string{
		"Person", "Writer", "Politician", "Place", "City", "Country",
		"Organization", "Company", "University", "Book", "Food", "Disease",
	}
	superClass = map[string]string{
		"City": "Place", "Country": "Place",
		"Writer": "Person", "Politician": "Person",
		"Company": "Organization", "University": "Organization",
	}
)

// relation is the generator's internal view of one typed relation.
type relation struct {
	name     string
	dom, rng string // class names
	level    int
	// functional marks a Type I constraint with the given degree (0 = none).
	funcDeg int
	geo     bool // range is Place: eligible for general-type planting
}

// trueEntity is one real-world object.
type trueEntity struct {
	id    int32
	class string
	// syms are the surface names the extractor uses for this entity
	// (usually one; two for synonym plants; a shared one for ambiguity
	// plants).
	syms []string
	// container: for City entities, the Country that contains them
	// (general-type planting).
	container int32
}

// trueFact is one fact of the hidden world, over true entity IDs.
type trueFact struct {
	rel  int // index into relations
	x, y int32
}

// generator carries all intermediate state.
type generator struct {
	opts Options
	rng  *rand.Rand

	relations []relation
	relIndex  map[string]int // name → index
	// byLevelSig[level]["dom/rng"] lists relation indices;
	// byLevelSigFunc only the functional ones.
	byLevelSig     []map[string][]int
	byLevelSigFunc []map[string][]int

	entities []trueEntity
	// pool[class] lists entity IDs whose class is class or a subclass.
	pool map[string][]int32

	soundRules []ruleSpec
	wrongRules []ruleSpec

	world map[trueKey]bool
}

// ruleSpec is a generated rule before symbol interning.
type ruleSpec struct {
	shape   int // mln.P1..P6
	headRel int
	bodyRel [2]int
	weight  float64
}

// trueKey identifies a world fact.
type trueKey struct {
	rel  int
	x, y int32
}

// Generate builds a ReVerb-Sherlock-like corpus.
func Generate(opts Options) (*Corpus, error) {
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("synth: scale must be positive, got %v", opts.Scale)
	}
	if opts.Levels < 1 {
		return nil, fmt.Errorf("synth: need at least one level, got %d", opts.Levels)
	}
	g := &generator{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	g.makeRelations()
	g.makeEntities()
	if err := g.makeRules(); err != nil {
		return nil, err
	}
	seeds := g.makeSeedFacts()
	if err := g.closeWorld(seeds); err != nil {
		return nil, err
	}
	g.plantAmbiguity()
	return g.emit()
}

func (g *generator) scaled(paper int, min int) int {
	n := int(float64(paper) * g.opts.Scale)
	if n < min {
		n = min
	}
	return n
}

func sigOf(dom, rng string) string { return dom + "/" + rng }

// makeRelations creates the typed relation vocabulary, stratified into
// derivation levels (level-0 relations get seed facts; level ℓ+1
// relations are rule heads over level-ℓ bodies).
func (g *generator) makeRelations() {
	n := g.scaled(PaperRelations, 24)
	g.relIndex = make(map[string]int, n)
	g.byLevelSig = make([]map[string][]int, g.opts.Levels+1)
	g.byLevelSigFunc = make([]map[string][]int, g.opts.Levels+1)
	for i := range g.byLevelSig {
		g.byLevelSig[i] = make(map[string][]int)
		g.byLevelSigFunc[i] = make(map[string][]int)
	}
	// Level share: most relations are base extractions.
	levelOf := func(i int) int {
		f := float64(i) / float64(n)
		switch {
		case f < 0.60:
			return 0
		case f < 0.80:
			return 1
		case f < 0.92:
			return 2
		default:
			lv := 3
			if lv > g.opts.Levels {
				lv = g.opts.Levels
			}
			return lv
		}
	}
	for i := 0; i < n; i++ {
		dom := classNames[g.rng.Intn(len(classNames))]
		rng := classNames[g.rng.Intn(len(classNames))]
		r := relation{
			name:  fmt.Sprintf("rel%d_%s_%s", i, dom, rng),
			dom:   dom,
			rng:   rng,
			level: levelOf(i),
			geo:   rng == "Place",
		}
		if g.rng.Float64() < g.opts.FunctionalFraction {
			// Mostly strictly functional, some pseudo-functional.
			r.funcDeg = 1
			if g.rng.Float64() < 0.25 {
				r.funcDeg = 2 + g.rng.Intn(2)
			}
		}
		g.relIndex[r.name] = len(g.relations)
		g.relations = append(g.relations, r)
		g.byLevelSig[r.level][sigOf(dom, rng)] = append(g.byLevelSig[r.level][sigOf(dom, rng)], i)
		if r.funcDeg > 0 {
			g.byLevelSigFunc[r.level][sigOf(dom, rng)] = append(g.byLevelSigFunc[r.level][sigOf(dom, rng)], i)
		}
	}
}

// makeEntities creates the true entities and their surface names,
// planting ambiguity and synonym pairs.
func (g *generator) makeEntities() {
	n := g.scaled(PaperEntities, 120)
	g.pool = make(map[string][]int32)
	g.entities = make([]trueEntity, n)

	addToPools := func(id int32, class string) {
		g.pool[class] = append(g.pool[class], id)
		for c := class; ; {
			sup, ok := superClass[c]
			if !ok {
				break
			}
			g.pool[sup] = append(g.pool[sup], id)
			c = sup
		}
	}

	for i := 0; i < n; i++ {
		class := classNames[g.rng.Intn(len(classNames))]
		e := trueEntity{id: int32(i), class: class, container: -1}
		e.syms = []string{fmt.Sprintf("%s_%d", class, i)}
		g.entities[i] = e
		addToPools(int32(i), class)
	}

	// Synonym plants: one entity, two names.
	nSyn := int(float64(n) * g.opts.SynonymRate)
	for s := 0; s < nSyn; s++ {
		e := int32(g.rng.Intn(n))
		if len(g.entities[e].syms) != 1 {
			continue
		}
		g.entities[e].syms = append(g.entities[e].syms, g.entities[e].syms[0]+"_aka")
	}

	// Containment: every City gets a Country (general-type planting).
	countries := g.pool["Country"]
	if len(countries) > 0 {
		for _, c := range g.pool["City"] {
			if g.entities[c].class == "City" {
				g.entities[c].container = countries[g.rng.Intn(len(countries))]
			}
		}
	}
}

// makeRules generates the rule set: sound rules connect level-ℓ bodies to
// level-(ℓ+1) heads and participate in the world closure; wrong rules
// have the same structural distribution but are excluded from the truth.
func (g *generator) makeRules() error {
	n := g.scaled(PaperRules, 30)
	nWrong := int(float64(n) * g.opts.WrongRuleRate)
	nSound := n - nWrong

	gen := func(count int, wrong bool) ([]ruleSpec, error) {
		var out []ruleSpec
		attempts := 0
		for len(out) < count {
			attempts++
			if attempts > count*200 {
				return nil, fmt.Errorf("synth: could not generate %d rules (got %d); vocabulary too sparse", count, len(out))
			}
			var (
				spec ruleSpec
				ok   bool
			)
			// Unsound rules strongly prefer functional head relations:
			// learned junk rules like "located_in(x,y) → capital_of(x,y)"
			// (the paper's Figure 5 example) write into relations that
			// carry constraints, which is exactly why semantic
			// constraints catch their output.
			funcPref := 0.4
			if wrong {
				funcPref = 0.85
			}
			if wrong && g.rng.Intn(2) == 0 {
				// Half the unsound rules are *cascade* rules: copy-shaped
				// clauses whose head level is arbitrary, so the junk they
				// derive feeds other rules (and other cascade rules) —
				// the error-propagation chains of Figure 5(a). Sound
				// rules are level-stratified, so only errors cascade.
				spec, ok = g.tryCascadeRule(funcPref)
			} else {
				shape := mln.P1 + g.rng.Intn(mln.NumPartitions)
				level := g.rng.Intn(g.opts.Levels) // body level
				spec, ok = g.tryRule(shape, level, funcPref)
			}
			if !ok {
				continue
			}
			out = append(out, spec)
		}
		return out, nil
	}

	sound, err := gen(nSound, false)
	if err != nil {
		return err
	}
	wrong, err := gen(nWrong, true)
	if err != nil {
		return err
	}
	g.soundRules, g.wrongRules = sound, wrong
	return nil
}

// tryCascadeRule builds a P1/P2 wrong rule between arbitrary levels,
// preferring functional heads (which is what makes its junk detectable).
// Unlike tryRule, the head is drawn first — straight from the functional
// pool when the preference fires — and the classes follow from it, so
// the preference is not defeated by sparse signatures.
func (g *generator) tryCascadeRule(funcPref float64) (ruleSpec, bool) {
	shape := mln.P1
	if g.rng.Intn(2) == 0 {
		shape = mln.P2
	}
	bodyLevel := g.rng.Intn(g.opts.Levels + 1)
	headLevel := g.rng.Intn(g.opts.Levels + 1)
	spec := ruleSpec{shape: shape, weight: 0.2 + g.rng.Float64()*1.6}

	var head int
	if g.rng.Float64() < funcPref {
		// Any functional relation at the head level.
		var pool []int
		for _, ids := range g.byLevelSigFunc[headLevel] {
			pool = append(pool, ids...)
		}
		if len(pool) == 0 {
			return spec, false
		}
		sortInts(pool)
		head = pool[g.rng.Intn(len(pool))]
	} else {
		cls := func() string { return classNames[g.rng.Intn(len(classNames))] }
		pool := g.byLevelSig[headLevel][sigOf(cls(), cls())]
		if len(pool) == 0 {
			return spec, false
		}
		head = pool[g.rng.Intn(len(pool))]
	}
	spec.headRel = head
	c1, c2 := g.relations[head].dom, g.relations[head].rng

	bodySig := sigOf(c1, c2)
	if shape == mln.P2 {
		bodySig = sigOf(c2, c1)
	}
	bodyPool := g.byLevelSig[bodyLevel][bodySig]
	if len(bodyPool) == 0 {
		return spec, false
	}
	spec.bodyRel[0] = bodyPool[g.rng.Intn(len(bodyPool))]
	if spec.bodyRel[0] == spec.headRel {
		return spec, false
	}
	return spec, true
}

// tryRule attempts to instantiate one rule of the given shape with body
// relations at the given level; funcPref is the probability of selecting
// a functional head relation when one fits.
func (g *generator) tryRule(shape, level int, funcPref float64) (ruleSpec, bool) {
	pick := func(level int, dom, rng string) (int, bool) {
		ids := g.byLevelSig[level][sigOf(dom, rng)]
		if len(ids) == 0 {
			return 0, false
		}
		return ids[g.rng.Intn(len(ids))], true
	}
	cls := func() string { return classNames[g.rng.Intn(len(classNames))] }

	c1, c2, c3 := cls(), cls(), cls()
	spec := ruleSpec{shape: shape, weight: 0.2 + g.rng.Float64()*1.6}

	// Rules over functional head relations are common in web rule sets
	// (born_in, capital_of, ...); prefer one 40% of the time. This is
	// also what makes bad derivations *detectable*: junk flowing into a
	// functional relation violates its constraint.
	var (
		head int
		ok   bool
	)
	if fn := g.byLevelSigFunc[level+1][sigOf(c1, c2)]; len(fn) > 0 && g.rng.Float64() < funcPref {
		head, ok = fn[g.rng.Intn(len(fn))], true
	} else {
		head, ok = pick(level+1, c1, c2)
	}
	if !ok {
		return spec, false
	}
	spec.headRel = head

	switch shape {
	case mln.P1: // p(x,y) ← q(x,y)
		b, ok := pick(level, c1, c2)
		if !ok {
			return spec, false
		}
		spec.bodyRel[0] = b
	case mln.P2: // p(x,y) ← q(y,x)
		b, ok := pick(level, c2, c1)
		if !ok {
			return spec, false
		}
		spec.bodyRel[0] = b
	case mln.P3: // q(z,x), r(z,y)
		b0, ok0 := pick(level, c3, c1)
		b1, ok1 := pick(level, c3, c2)
		if !ok0 || !ok1 {
			return spec, false
		}
		spec.bodyRel = [2]int{b0, b1}
	case mln.P4: // q(x,z), r(z,y)
		b0, ok0 := pick(level, c1, c3)
		b1, ok1 := pick(level, c3, c2)
		if !ok0 || !ok1 {
			return spec, false
		}
		spec.bodyRel = [2]int{b0, b1}
	case mln.P5: // q(z,x), r(y,z)
		b0, ok0 := pick(level, c3, c1)
		b1, ok1 := pick(level, c2, c3)
		if !ok0 || !ok1 {
			return spec, false
		}
		spec.bodyRel = [2]int{b0, b1}
	case mln.P6: // q(x,z), r(y,z)
		b0, ok0 := pick(level, c1, c3)
		b1, ok1 := pick(level, c2, c3)
		if !ok0 || !ok1 {
			return spec, false
		}
		spec.bodyRel = [2]int{b0, b1}
	}
	return spec, true
}

// plantAmbiguity merges surface names *after* the world is known, the
// way real name collisions work: prominent entities (ones with facts in
// the same functional relation) end up sharing a name, which is exactly
// what produces the Figure 5(b) violations. Runs after closeWorld so the
// fact distribution is visible.
func (g *generator) plantAmbiguity() {
	// subjectsOf[funcRel] lists the distinct true subjects with a world
	// fact under that functional relation, in deterministic order.
	// degree counts every world fact an entity participates in: merging
	// *prominent* entities is what makes ambiguity both detectable (they
	// violate functional constraints) and damaging (their junk flows
	// through many join keys) — the paper's "Jack" problem.
	subjectsOf := make(map[int][]int32)
	degree := make(map[int32]int)
	seen := make(map[[2]int32]bool)
	keys := g.sortedWorldKeys()
	for _, k := range keys {
		degree[k.x]++
		degree[k.y]++
		if g.relations[k.rel].funcDeg == 0 {
			continue
		}
		sk := [2]int32{int32(k.rel), k.x}
		if seen[sk] {
			continue
		}
		seen[sk] = true
		subjectsOf[k.rel] = append(subjectsOf[k.rel], k.x)
	}
	var funcRels []int
	for ri := range subjectsOf {
		if len(subjectsOf[ri]) >= 2 {
			funcRels = append(funcRels, ri)
		}
	}
	sortInts(funcRels)
	// Bias each relation's subject list toward high-degree entities.
	for _, ri := range funcRels {
		subs := subjectsOf[ri]
		sortByDegreeDesc(subs, degree)
	}

	// Merge groups of 2-4 entities per shared name (the paper's "Mandel"
	// covers three different people), drawing from the prominent half of
	// each relation's subjects.
	budget := int(float64(len(g.entities)) * g.opts.AmbiguousNameRate)
	merged := make(map[int32]bool)
	attempts := 0
	for group := 0; budget > 1 && len(funcRels) > 0; group++ {
		attempts++
		if attempts > budget*200 {
			break
		}
		ri := funcRels[g.rng.Intn(len(funcRels))]
		subs := subjectsOf[ri]
		half := (len(subs) + 1) / 2
		// Group sizes follow the common-name pattern: most collisions
		// cover 2-3 entities, but a few "Jack"-like names cover many —
		// and junk from z-joins through a merged name grows with the
		// *square* of its group size, which is what drives the paper's
		// error explosion.
		want := 2 + g.rng.Intn(3)
		if g.rng.Intn(4) == 0 {
			want = 4 + g.rng.Intn(5)
		}
		var members []int32
		var class string
		for try := 0; try < 20 && len(members) < want; try++ {
			var e int32
			if len(members) == 0 {
				e = subs[g.rng.Intn(half)]
			} else {
				e = subs[g.rng.Intn(len(subs))]
			}
			if merged[e] {
				continue
			}
			if len(members) == 0 {
				class = g.entities[e].class
			} else if g.entities[e].class != class {
				continue
			}
			dup := false
			for _, m := range members {
				if m == e {
					dup = true
					break
				}
			}
			if !dup {
				members = append(members, e)
			}
		}
		if len(members) < 2 {
			continue
		}
		shared := fmt.Sprintf("amb_%s_%d", class, group)
		for _, e := range members {
			g.entities[e].syms = []string{shared}
			merged[e] = true
		}
		budget -= len(members)
	}
}

// sortByDegreeDesc orders entity IDs by descending degree (ties by ID,
// keeping the order deterministic).
func sortByDegreeDesc(ids []int32, degree map[int32]int) {
	sort.SliceStable(ids, func(a, b int) bool {
		da, db := degree[ids[a]], degree[ids[b]]
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
}

// funcSubject is one (functional relation, subject) pair with a world
// fact — the anchor for Figure 5(b)-style extraction errors.
type funcSubject struct {
	rel  int
	subj int32
}

// functionalSubjects lists the (functional relation, subject) pairs that
// already have a true partner, deterministically ordered.
func (g *generator) functionalSubjects() []funcSubject {
	var out []funcSubject
	seen := make(map[funcSubject]bool)
	for _, k := range g.sortedWorldKeys() {
		if g.relations[k.rel].funcDeg == 0 {
			continue
		}
		fs := funcSubject{k.rel, k.x}
		if !seen[fs] {
			seen[fs] = true
			out = append(out, fs)
		}
	}
	return out
}

// sortedWorldKeys returns the world facts in a deterministic order, so
// that generation does not depend on map iteration order.
func (g *generator) sortedWorldKeys() []trueKey {
	keys := make([]trueKey, 0, len(g.world))
	for k := range g.world {
		keys = append(keys, k)
	}
	sortTrueKeys(keys)
	return keys
}

// pickSkewed draws an index in [0, n) with a Zipf-like skew: web
// extractions concentrate heavily on prominent entities, and that skew is
// what gives grounding joins their high fan-out (and error propagation
// its multiplier).
func (g *generator) pickSkewed(n int) int {
	// Inverse-power sampling: index ∝ u^k spreads mass toward low
	// indices. k = 3 gives a heavy head without degenerate repetition.
	u := g.rng.Float64()
	return int(u * u * u * float64(n))
}

// makeSeedFacts draws the level-0 true facts, respecting functional
// degrees in the true world. Subjects and objects are degree-skewed (see
// pickSkewed).
func (g *generator) makeSeedFacts() []trueFact {
	target := g.scaled(PaperFacts, 200)
	var seeds []trueFact
	partner := make(map[[2]int32]int) // (rel, x) → partner count

	level0 := []int{}
	for i, r := range g.relations {
		if r.level == 0 {
			level0 = append(level0, i)
		}
	}
	attempts := 0
	for len(seeds) < target && attempts < target*20 {
		attempts++
		ri := level0[g.rng.Intn(len(level0))]
		r := g.relations[ri]
		domPool, rngPool := g.pool[r.dom], g.pool[r.rng]
		if len(domPool) == 0 || len(rngPool) == 0 {
			continue
		}
		x := domPool[g.pickSkewed(len(domPool))]
		y := rngPool[g.pickSkewed(len(rngPool))]
		if r.funcDeg > 0 && partner[[2]int32{int32(ri), x}] >= r.funcDeg {
			continue
		}
		k := trueKey{ri, x, y}
		if g.world == nil {
			g.world = make(map[trueKey]bool, target*2)
		}
		if g.world[k] {
			continue
		}
		g.world[k] = true
		partner[[2]int32{int32(ri), x}]++
		seeds = append(seeds, trueFact{ri, x, y})
	}
	return seeds
}
