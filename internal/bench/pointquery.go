package bench

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"probkb"
	"probkb/internal/obs"
	"probkb/internal/server"
)

// PointQueryResult is the point-query harness's record in
// BENCH_<date>.json: per-kind latencies for the cold (cache-bypassing)
// and cached GET /query paths, plus the full-closure wall time the same
// corpus costs — the number a point lookup used to pay.
type PointQueryResult struct {
	ServeResult
	FullClosureMS float64 `json:"full_closure_ms"`
}

// PointQuery drives GET /query under load: clients goroutines alternate
// between cold point queries (nocache=1 — every request grounds the
// atom's local proof graph and samples its neighborhood) and cached
// ones over a fixed atom pool. The expansion the server holds is
// grounding-only; the local path does all inference, so the cold
// latency is the true on-demand cost and the full-closure reference
// (one Expand with inference over the same corpus, timed up front) is
// what it replaces.
func PointQuery(cfg Config, clients int, duration time.Duration, w io.Writer) (*PointQueryResult, error) {
	cfg = cfg.withDefaults()
	if clients <= 0 {
		clients = 8
	}
	if duration <= 0 {
		duration = 2 * time.Second
	}

	k, _, err := probkb.Synthesize(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// The yardstick: what one "what is P(fact)?" lookup costs when the
	// only route is the global pipeline (closure + full-graph Gibbs).
	fullStart := time.Now()
	oracle, err := k.Expand(probkb.Config{
		Engine:       probkb.SingleNode,
		RunInference: true,
		GibbsBurnin:  20,
		GibbsSamples: 100,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fullClosure := time.Since(fullStart)

	// The served expansion skips global inference entirely — point
	// queries bring their own.
	exp, err := k.Expand(probkb.Config{
		Engine:       probkb.SingleNode,
		RunInference: false,
		GibbsBurnin:  20,
		GibbsSamples: 100,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	prevLogger := obs.Logger()
	obs.SetLogger(obs.NewTextLogger(io.Discard, slog.LevelWarn))
	defer obs.SetLogger(prevLogger)

	srv := httptest.NewServer(server.New(k, exp))
	defer srv.Close()

	// Atom pool: inferred facts exercise local grounding + neighborhood
	// Gibbs (the interesting path); pad with observed facts if the
	// corpus derived too few.
	targets := oracle.InferredFacts()
	if len(targets) > 64 {
		targets = targets[:64]
	}
	if len(targets) == 0 {
		targets = oracle.Facts()
		if len(targets) > 64 {
			targets = targets[:64]
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("bench: point-query: corpus has no facts")
	}
	atoms := make([]string, len(targets))
	for i, f := range targets {
		atoms[i] = url.QueryEscape(fmt.Sprintf("%s(%s, %s)", f.Rel, f.X, f.Y))
	}

	type sample struct {
		kind string
		dur  time.Duration
	}
	perClient := make([][]sample, clients)
	errs := make([]int, clients)
	deadline := time.Now().Add(duration)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			client := &http.Client{}
			for time.Now().Before(deadline) {
				atom := atoms[rng.Intn(len(atoms))]
				var kind, target string
				if rng.Intn(2) == 0 {
					kind = "query-cold"
					target = srv.URL + "/query?nocache=1&atom=" + atom
				} else {
					kind = "query-cached"
					target = srv.URL + "/query?atom=" + atom
				}
				start := time.Now()
				resp, err := client.Get(target)
				elapsed := time.Since(start)
				if err != nil {
					errs[c]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c]++
					continue
				}
				perClient[c] = append(perClient[c], sample{kind, elapsed})
			}
		}(c)
	}
	wg.Wait()

	byKind := map[string][]time.Duration{}
	res := &PointQueryResult{
		ServeResult:   ServeResult{Clients: clients, Seconds: duration.Seconds()},
		FullClosureMS: float64(fullClosure) / float64(time.Millisecond),
	}
	for c := range perClient {
		res.Errors += errs[c]
		for _, s := range perClient[c] {
			byKind[s.kind] = append(byKind[s.kind], s.dur)
			res.Requests++
		}
	}
	if res.Requests == 0 {
		return nil, fmt.Errorf("bench: point-query: no request succeeded (%d errors)", res.Errors)
	}
	res.QPS = float64(res.Requests) / duration.Seconds()
	for _, kind := range []string{"query-cold", "query-cached"} {
		durs := byKind[kind]
		if len(durs) == 0 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		res.Kinds = append(res.Kinds, ServeKind{
			Kind:     kind,
			Requests: len(durs),
			P50ms:    percentileMS(durs, 0.50),
			P95ms:    percentileMS(durs, 0.95),
			P99ms:    percentileMS(durs, 0.99),
		})
	}

	fmt.Fprintf(w, "Point queries: %d clients for %s over %d atoms (scale=%.3g)\n\n",
		clients, duration, len(atoms), cfg.Scale)
	fmt.Fprintf(w, "  %-14s %10s %10s %10s %10s\n", "kind", "requests", "p50", "p95", "p99")
	for _, k := range res.Kinds {
		fmt.Fprintf(w, "  %-14s %10d %9.2fms %9.2fms %9.2fms\n",
			k.Kind, k.Requests, k.P50ms, k.P95ms, k.P99ms)
	}
	fmt.Fprintf(w, "\n  total %d requests, %d errors, %.0f qps\n", res.Requests, res.Errors, res.QPS)
	fmt.Fprintf(w, "  full-closure reference (one Expand with inference): %.1fms\n", res.FullClosureMS)
	return res, nil
}
