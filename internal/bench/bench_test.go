package bench

import (
	"bytes"
	"strings"
	"testing"

	"probkb/internal/quality"
)

// tiny returns a configuration small enough that every experiment runs
// in well under a second.
func tiny() Config { return Config{Scale: 0.004, Seed: 3, Segments: 2} }

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# relations", "# rules", "hidden true world"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(tiny(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 systems", len(rows))
	}
	// All systems reach the same closure and factor counts.
	for _, r := range rows[1:] {
		if r.FinalFacts != rows[0].FinalFacts || r.Factors != rows[0].Factors {
			t.Fatalf("systems disagree: %+v vs %+v", r, rows[0])
		}
	}
	for _, r := range rows {
		if len(r.Iters) == 0 || len(r.Iters) > 4 {
			t.Fatalf("iteration count out of range: %+v", r)
		}
	}
}

func TestTable4AndSystems(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if got := len(Table4Configs()); got != 6 {
		t.Fatalf("Table 4 has %d configs, want 6", got)
	}
	names := map[System]string{
		SysProbKBp: "ProbKB-p", SysProbKB: "ProbKB",
		SysTuffyT: "Tuffy-T", SysProbKBpn: "ProbKB-pn",
	}
	for sys, want := range names {
		if sys.String() != want {
			t.Fatalf("System(%d) = %q, want %q", int(sys), sys, want)
		}
	}
}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Redistribute Motion") || !strings.Contains(out, "Broadcast Motion") {
		t.Fatalf("Figure 4 output missing motions:\n%s", out)
	}
}

func TestFig6Sweeps(t *testing.T) {
	cfg := tiny()
	var buf bytes.Buffer
	a, err := Fig6a(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || a[0].Queries[SysProbKB] != 6 && a[0].Queries[SysProbKB] > 6 {
		t.Fatalf("fig6a points: %+v", a)
	}
	// Query counts: Tuffy equals the rule count, ProbKB stays at the
	// non-empty partition count.
	for _, p := range a {
		if p.Queries[SysTuffyT] != p.Size {
			t.Fatalf("Tuffy queries = %d at %d rules", p.Queries[SysTuffyT], p.Size)
		}
		if p.Queries[SysProbKB] > 6 {
			t.Fatalf("ProbKB queries = %d, want <= 6", p.Queries[SysProbKB])
		}
	}
	if _, err := Fig6b(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	c, err := Fig6c(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c {
		if p.Times[SysProbKBp] <= 0 || p.Times[SysProbKBpn] <= 0 {
			t.Fatalf("missing MPP timings: %+v", p)
		}
	}
}

func TestFig7AndGrowth(t *testing.T) {
	cfg := tiny()
	var buf bytes.Buffer
	series, err := Fig7a(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("fig7a series = %d, want 6", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("config %q has no points", s.Config.Name)
		}
	}

	b, err := Fig7b(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() == 0 {
		t.Fatal("fig7b found no violations")
	}
	_ = quality.SrcAmbiguousEntity

	rows, err := Growth(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("growth rows = %d", len(rows))
	}
	// Constraints keep the KB no larger than the raw run at every
	// iteration where both are defined.
	for _, r := range rows {
		if r.FactsRaw >= 0 && r.FactsSC >= 0 && r.FactsSC > r.FactsRaw {
			t.Fatalf("SC grew past raw at iteration %d: %+v", r.Iteration, r)
		}
	}
}
