package bench

import (
	"fmt"
	"io"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/quality"
	"probkb/internal/synth"
)

// QCConfig is one quality-control configuration of Table 4.
type QCConfig struct {
	Name        string
	Constraints bool
	Theta       float64
	// MaxIters caps grounding: the paper stops uncontrolled runs at
	// iteration 4 because the KB "grows unmanageably large".
	MaxIters int
}

// Table4Configs returns the six configurations of Table 4.
func Table4Configs() []QCConfig {
	return []QCConfig{
		{Name: "no-SC no-RC", Constraints: false, Theta: 1.0, MaxIters: 4},
		{Name: "RC top 20%", Constraints: false, Theta: 0.2, MaxIters: 4},
		{Name: "RC top 10%", Constraints: false, Theta: 0.1, MaxIters: 4},
		{Name: "SC only", Constraints: true, Theta: 1.0, MaxIters: 15},
		{Name: "SC RC top 50%", Constraints: true, Theta: 0.5, MaxIters: 15},
		{Name: "SC RC top 20%", Constraints: true, Theta: 0.2, MaxIters: 15},
	}
}

// Table4 prints the parameter grid.
func Table4(_ Config, w io.Writer) error {
	fmt.Fprintf(w, "Table 4: quality control parameters\n\n")
	fmt.Fprintf(w, "  %-16s %-12s %-8s %s\n", "Config", "Constraints", "θ", "Iteration cap")
	for _, qc := range Table4Configs() {
		fmt.Fprintf(w, "  %-16s %-12v %-8.2g %d\n", qc.Name, qc.Constraints, qc.Theta, qc.MaxIters)
	}
	return nil
}

// Fig7aPoint is one iteration's quality measurement for one config.
type Fig7aPoint struct {
	Iteration int
	Correct   int
	Inferred  int
	Precision float64
}

// Fig7aSeries is one config's precision/recall curve.
type Fig7aSeries struct {
	Config QCConfig
	Points []Fig7aPoint
}

// Fig7a runs knowledge expansion under each Table 4 configuration,
// scoring the inferred facts against the planted truth after every
// iteration — the precision-vs-correct-facts curves of Figure 7(a).
func Fig7a(cfg Config, w io.Writer) ([]Fig7aSeries, error) {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}

	var out []Fig7aSeries
	for _, qc := range Table4Configs() {
		series, err := runQCConfig(c, qc)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7a %q: %w", qc.Name, err)
		}
		out = append(out, series)
	}

	fmt.Fprintf(w, "Figure 7(a): precision of inferred facts under quality control (scale=%.3g)\n\n", cfg.Scale)
	fmt.Fprintf(w, "  %-16s %10s %10s %10s\n", "Config", "#inferred", "#correct", "precision")
	for _, s := range out {
		last := Fig7aPoint{}
		if len(s.Points) > 0 {
			last = s.Points[len(s.Points)-1]
		}
		fmt.Fprintf(w, "  %-16s %10d %10d %10.3f\n", s.Config.Name, last.Inferred, last.Correct, last.Precision)
	}
	fmt.Fprintf(w, "\n  per-iteration curves:\n")
	for _, s := range out {
		fmt.Fprintf(w, "  %-16s:", s.Config.Name)
		for _, p := range s.Points {
			fmt.Fprintf(w, " (%d, %.2f)", p.Correct, p.Precision)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n  paper: no-QC precision 0.14; SC only 0.55 at 23K facts; SC+RC20%% 0.75 at 16K facts\n")
	return out, nil
}

// runQCConfig expands the corpus KB under one QC configuration, scoring
// after each iteration.
func runQCConfig(c *synth.Corpus, qc QCConfig) (Fig7aSeries, error) {
	work := c.KB
	if qc.Theta < 1 {
		work = quality.CleanRules(work, qc.Theta)
	} else {
		work = work.Clone()
	}
	opts := ground.Options{MaxIterations: qc.MaxIters}
	if qc.Constraints {
		quality.PreClean(work)
		opts.ConstraintHook = quality.NewChecker(work).Hook()
	}
	base := work.Stats().Facts
	series := Fig7aSeries{Config: qc}
	opts.Observer = func(iter int, tpi *engine.Table) {
		correct, total := c.Oracle.EvalInferred(tpi, base)
		p := Fig7aPoint{Iteration: iter, Correct: correct, Inferred: total}
		if total > 0 {
			p.Precision = float64(correct) / float64(total)
		}
		series.Points = append(series.Points, p)
	}
	if _, err := ground.Ground(work, opts); err != nil {
		return series, err
	}
	return series, nil
}

// Fig7b grounds the raw corpus (no quality control, capped as in the
// paper), finds every functional-constraint violation, and categorizes
// them against the planted truth — the error-source pie of Figure 7(b).
func Fig7b(cfg Config, w io.Writer) (quality.Breakdown, error) {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return quality.Breakdown{}, err
	}
	res, err := ground.Ground(c.KB, ground.Options{MaxIterations: 3, SkipFactors: true})
	if err != nil {
		return quality.Breakdown{}, err
	}
	checker := quality.NewChecker(c.KB)
	viol := checker.Violations(res.Facts)
	b := c.Oracle.CategorizeAll(viol, res.Facts, res.BaseFacts)

	fmt.Fprintf(w, "Figure 7(b): error sources behind %d constraint violations (scale=%.3g)\n\n",
		len(viol), cfg.Scale)
	fmt.Fprint(w, b.String())
	fmt.Fprintf(w, "\n  paper: ambiguities 34%%, ambiguous join keys 24%%, incorrect rules 33%%, "+
		"incorrect extractions 6%%, general types 2%%, synonyms 1%%\n")
	return b, nil
}

// Feedback contrasts score-only rule cleaning with constraint-informed
// cleaning (the paper's §6.2.3 future-work suggestion, implemented in
// quality.CleanRulesWithConstraints) at the same θ.
func Feedback(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return err
	}
	theta := 0.2

	run := func(work *kb.KB) (inferred, correct int, err error) {
		res, err := ground.Ground(work, ground.Options{MaxIterations: 4, SkipFactors: true})
		if err != nil {
			return 0, 0, err
		}
		cc, tt := c.Oracle.EvalInferred(res.Facts, res.BaseFacts)
		return tt, cc, nil
	}

	plain := quality.CleanRules(c.KB, theta)
	pi, pc, err := run(plain)
	if err != nil {
		return err
	}
	informed, err := quality.CleanRulesWithConstraints(c.KB, theta, 4)
	if err != nil {
		return err
	}
	ii, ic, err := run(informed)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Constraint-informed rule cleaning (θ=%.2g, scale=%.3g)\n\n", theta, cfg.Scale)
	fmt.Fprintf(w, "  %-26s %10s %10s %10s\n", "cleaning", "#inferred", "#correct", "precision")
	prec := func(c, t int) float64 {
		if t == 0 {
			return 0
		}
		return float64(c) / float64(t)
	}
	fmt.Fprintf(w, "  %-26s %10d %10d %10.3f\n", "score only (Sherlock)", pi, pc, prec(pc, pi))
	fmt.Fprintf(w, "  %-26s %10d %10d %10.3f\n", "constraint-informed", ii, ic, prec(ic, ii))
	fmt.Fprintf(w, "\n  paper §6.2.3: \"it is possible to use semantic constraints to improve rule learners\"\n")
	return nil
}

// GrowthRow is one iteration's fact count with and without constraints.
type GrowthRow struct {
	Iteration    int
	FactsRaw     int
	FactsSC      int
	ConvergedRaw bool
	ConvergedSC  bool
}

// Growth reproduces the Section 6.1.1 narrative: without constraints the
// KB grows unmanageably; with them the closure stays small and
// terminates.
func Growth(cfg Config, w io.Writer) ([]GrowthRow, error) {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	const iters = 5

	sizes := func(k *kb.KB, constraints bool) ([]int, bool, error) {
		work := k.Clone()
		opts := ground.Options{MaxIterations: iters, SkipFactors: true}
		if constraints {
			quality.PreClean(work)
			opts.ConstraintHook = quality.NewChecker(work).Hook()
		}
		var out []int
		opts.Observer = func(_ int, tpi *engine.Table) {
			out = append(out, tpi.NumRows())
		}
		res, err := ground.Ground(work, opts)
		if err != nil {
			return nil, false, err
		}
		return out, res.Converged, nil
	}

	raw, convRaw, err := sizes(c.KB, false)
	if err != nil {
		return nil, err
	}
	sc, convSC, err := sizes(c.KB, true)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "KB growth per grounding iteration, with vs without semantic constraints (scale=%.3g)\n\n", cfg.Scale)
	fmt.Fprintf(w, "  %10s %14s %14s\n", "iteration", "facts (raw)", "facts (SC)")
	var rows []GrowthRow
	for i := 0; i < iters; i++ {
		row := GrowthRow{Iteration: i + 1, FactsRaw: -1, FactsSC: -1, ConvergedRaw: convRaw, ConvergedSC: convSC}
		if i < len(raw) {
			row.FactsRaw = raw[i]
		}
		if i < len(sc) {
			row.FactsSC = sc[i]
		}
		rows = append(rows, row)
		rawS, scS := "-", "-"
		if row.FactsRaw >= 0 {
			rawS = fmt.Sprint(row.FactsRaw)
		}
		if row.FactsSC >= 0 {
			scS = fmt.Sprint(row.FactsSC)
		}
		fmt.Fprintf(w, "  %10d %14s %14s\n", row.Iteration, rawS, scS)
	}
	fmt.Fprintf(w, "\n  raw converged: %v; with constraints converged: %v\n", convRaw, convSC)
	fmt.Fprintf(w, "  paper: without constraints iteration 5 is infeasible (592M factors after 4); "+
		"with them grounding finishes 15 iterations in 2 minutes\n")
	return rows, nil
}
