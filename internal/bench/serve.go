package bench

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"probkb"
	"probkb/internal/obs"
	"probkb/internal/server"
)

// ServeKind aggregates one request kind's latencies under load.
type ServeKind struct {
	Kind     string  `json:"kind"` // "sql" (point query) or "facts" (marginal lookup)
	Requests int     `json:"requests"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// ServeResult is the serving-load harness's record in BENCH_<date>.json.
type ServeResult struct {
	Clients  int         `json:"clients"`
	Seconds  float64     `json:"seconds"`
	Requests int         `json:"requests"`
	Errors   int         `json:"errors"`
	QPS      float64     `json:"qps"`
	Kinds    []ServeKind `json:"kinds"`
}

// Serve runs the serving-load harness at its default shape: 8
// concurrent clients hammering an in-process probkb-server for 2
// seconds. This is the paper's "system responsivity" claim measured:
// queries hit the materialized expansion, never inference, so point
// lookups cost milliseconds of CPU regardless of the sample budget.
func Serve(cfg Config, w io.Writer) (*ServeResult, error) {
	return ServeN(cfg, 8, 2*time.Second, w)
}

// ServeN is Serve with an explicit client count and measurement window.
//
// The harness synthesizes the corpus, expands it once (a short Gibbs
// run — the marginals only need to exist, not converge), mounts the
// expansion on internal/server behind httptest, and drives it with
// clients goroutines. Each client alternates between the two read
// paths the paper's serving story rests on:
//
//   - point SQL: GET /sql?q=SELECT ... FROM T WHERE T.x = <id>
//   - marginal lookup: GET /facts?rel=&x=&y= for a known fact
//
// Per-request wall times aggregate into p50/p95/p99 per kind plus
// overall qps.
func ServeN(cfg Config, clients int, duration time.Duration, w io.Writer) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	if clients <= 0 {
		clients = 8
	}
	if duration <= 0 {
		duration = 2 * time.Second
	}

	k, _, err := probkb.Synthesize(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	exp, err := k.Expand(probkb.Config{
		Engine:       probkb.SingleNode,
		RunInference: true,
		GibbsBurnin:  20,
		GibbsSamples: 100,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Per-request INFO log lines would measure stderr throughput, not
	// the server; keep warnings and up.
	prevLogger := obs.Logger()
	obs.SetLogger(obs.NewTextLogger(io.Discard, slog.LevelWarn))
	defer obs.SetLogger(prevLogger)

	srv := httptest.NewServer(server.New(k, exp))
	defer srv.Close()

	// Target pools: known facts for marginal lookups, entity ids for
	// point SQL. Bounded so the pools don't dominate memory at scale.
	facts := exp.Facts()
	if len(facts) == 0 {
		return nil, fmt.Errorf("bench: serve: expansion has no facts")
	}
	if len(facts) > 512 {
		facts = facts[:512]
	}
	factURLs := make([]string, len(facts))
	for i, f := range facts {
		factURLs[i] = srv.URL + "/facts?rel=" + url.QueryEscape(f.Rel) +
			"&x=" + url.QueryEscape(f.X) + "&y=" + url.QueryEscape(f.Y)
	}
	entities := k.Stats().Entities
	if entities == 0 {
		entities = 1
	}

	type sample struct {
		kind string
		dur  time.Duration
	}
	perClient := make([][]sample, clients)
	errs := make([]int, clients)
	deadline := time.Now().Add(duration)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			client := &http.Client{}
			for time.Now().Before(deadline) {
				var kind, target string
				if rng.Intn(2) == 0 {
					kind = "sql"
					q := fmt.Sprintf("SELECT T.R, T.y, T.w FROM T WHERE T.x = %d", rng.Intn(entities))
					target = srv.URL + "/sql?q=" + url.QueryEscape(q)
				} else {
					kind = "facts"
					target = factURLs[rng.Intn(len(factURLs))]
				}
				start := time.Now()
				resp, err := client.Get(target)
				elapsed := time.Since(start)
				if err != nil {
					errs[c]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c]++
					continue
				}
				perClient[c] = append(perClient[c], sample{kind, elapsed})
			}
		}(c)
	}
	wg.Wait()

	byKind := map[string][]time.Duration{}
	res := &ServeResult{Clients: clients, Seconds: duration.Seconds()}
	for c := range perClient {
		res.Errors += errs[c]
		for _, s := range perClient[c] {
			byKind[s.kind] = append(byKind[s.kind], s.dur)
			res.Requests++
		}
	}
	if res.Requests == 0 {
		return nil, fmt.Errorf("bench: serve: no request succeeded (%d errors)", res.Errors)
	}
	res.QPS = float64(res.Requests) / duration.Seconds()
	for _, kind := range []string{"sql", "facts"} {
		durs := byKind[kind]
		if len(durs) == 0 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		res.Kinds = append(res.Kinds, ServeKind{
			Kind:     kind,
			Requests: len(durs),
			P50ms:    percentileMS(durs, 0.50),
			P95ms:    percentileMS(durs, 0.95),
			P99ms:    percentileMS(durs, 0.99),
		})
	}

	fmt.Fprintf(w, "Serving load: %d clients for %s against the materialized expansion (scale=%.3g)\n\n",
		clients, duration, cfg.Scale)
	fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s\n", "kind", "requests", "p50", "p95", "p99")
	for _, k := range res.Kinds {
		fmt.Fprintf(w, "  %-8s %10d %9.2fms %9.2fms %9.2fms\n",
			k.Kind, k.Requests, k.P50ms, k.P95ms, k.P99ms)
	}
	fmt.Fprintf(w, "\n  total %d requests, %d errors, %.0f qps\n", res.Requests, res.Errors, res.QPS)
	return res, nil
}

// percentileMS returns the nearest-rank q-quantile of sorted durations,
// in milliseconds.
func percentileMS(sorted []time.Duration, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
