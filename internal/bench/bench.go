// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment prints the same rows or series
// the paper reports; cmd/probkb-bench is the CLI front end and the root
// bench_test.go wraps the same code in testing.B benchmarks.
//
// Absolute numbers differ from the paper — the substrate is an
// in-process engine, not PostgreSQL/Greenplum on a 32-core cluster, and
// the corpus is a scaled synthetic replacement — but the comparisons the
// paper makes (who wins, by how much, in which direction) reproduce.
// EXPERIMENTS.md records paper-vs-measured for every artifact.
package bench

import (
	"fmt"
	"io"

	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/mpp"
	"probkb/internal/synth"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies the paper's corpus sizes (1.0 = 407K facts,
	// 30,912 rules). The default harness scale is 0.02.
	Scale float64
	// Seed drives all generation.
	Seed int64
	// Segments sizes the MPP cluster.
	Segments int
}

// DefaultConfig is the harness default.
func DefaultConfig() Config {
	return Config{Scale: 0.02, Seed: 42, Segments: 4}
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.02
	}
	if c.Segments == 0 {
		c.Segments = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// corpus generates the ReVerb-Sherlock-like dataset for the config.
func (c Config) corpus() (*synth.Corpus, error) {
	return synth.ReVerbSherlock(c.Scale, c.Seed)
}

// System identifies one grounding configuration under comparison.
type System int

// The systems of Section 6.1.
const (
	SysProbKBp  System = iota // MPP with redistributed views
	SysProbKB                 // single node
	SysTuffyT                 // per-rule baseline
	SysProbKBpn               // MPP without views
)

// String names the system as the paper does.
func (s System) String() string {
	switch s {
	case SysProbKBp:
		return "ProbKB-p"
	case SysProbKB:
		return "ProbKB"
	case SysTuffyT:
		return "Tuffy-T"
	case SysProbKBpn:
		return "ProbKB-pn"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Ground runs the system's grounder over k.
func (s System) Ground(k *kb.KB, opts ground.Options, segments int) (*ground.Result, error) {
	switch s {
	case SysProbKB:
		return ground.Ground(k, opts)
	case SysTuffyT:
		g, err := ground.NewTuffy(k, opts)
		if err != nil {
			return nil, err
		}
		return g.Ground()
	case SysProbKBp, SysProbKBpn:
		g, err := ground.NewMPP(k, opts, mpp.NewCluster(segments), s == SysProbKBp)
		if err != nil {
			return nil, err
		}
		return g.Ground()
	default:
		return nil, fmt.Errorf("bench: unknown system %v", s)
	}
}

// Table2 prints the corpus statistics the way Table 2 does.
func Table2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return err
	}
	st := c.KB.Stats()
	fmt.Fprintf(w, "Table 2: synthetic ReVerb-Sherlock KB statistics (scale=%.3g)\n\n", cfg.Scale)
	fmt.Fprintf(w, "  # relations  %8d      # entities %8d\n", st.Relations, st.Entities)
	fmt.Fprintf(w, "  # rules      %8d      # facts    %8d\n", st.Rules, st.Facts)
	fmt.Fprintf(w, "  # classes    %8d      # constraints %5d\n", st.Classes, st.Constraints)
	fmt.Fprintf(w, "  (hidden true world: %d facts; %d sound rules, %d planted-wrong rules)\n",
		c.TrueWorldSize, len(c.SoundRules), len(c.WrongRules))
	fmt.Fprintf(w, "\n  paper at scale 1: %d relations, %d rules, %d entities, %d facts\n",
		synth.PaperRelations, synth.PaperRules, synth.PaperEntities, synth.PaperFacts)
	return nil
}
