package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestServeMixed(t *testing.T) {
	var buf bytes.Buffer
	res, err := ServeMixed(tiny(), 4, 400*time.Millisecond, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 4 || res.Generations == 0 || res.FactsAdded == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if len(res.Phases) != 2 || res.Phases[0].Phase != "idle" || res.Phases[1].Phase != "under-write" {
		t.Fatalf("phases: %+v", res.Phases)
	}
	for _, p := range res.Phases {
		if p.Requests == 0 {
			t.Fatalf("phase %q made no requests: %+v", p.Phase, p)
		}
		if p.Errors != 0 {
			t.Fatalf("phase %q had %d errors: %+v", p.Phase, p.Errors, p)
		}
		if p.P50ms <= 0 || p.P50ms > p.P99ms+1e-9 || p.P95ms > p.P99ms+1e-9 {
			t.Fatalf("phase %q percentiles out of order: %+v", p.Phase, p)
		}
	}
	out := buf.String()
	for _, want := range []string{"Mixed read-while-expand load", "under-write", "generations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
