package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestIngest(t *testing.T) {
	var buf bytes.Buffer
	res, err := Ingest(tiny(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts == 0 || res.Batches == 0 || res.FactsPerSec <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Added == 0 {
		t.Fatalf("stream added nothing new — not measuring absorption: %+v", res)
	}
	if res.AbsorbP50ms <= 0 || res.AbsorbP50ms > res.AbsorbP99ms+1e-9 ||
		res.AbsorbP95ms > res.AbsorbP99ms+1e-9 {
		t.Fatalf("absorb percentiles out of order: %+v", res)
	}
	if res.RefreshSeconds <= 0 {
		t.Fatalf("closing refresh not timed: %+v", res)
	}
	out := buf.String()
	for _, want := range []string{"Streaming ingest", "facts/sec", "p95", "refresh"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
