package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestServeN(t *testing.T) {
	var buf bytes.Buffer
	res, err := ServeN(tiny(), 4, 200*time.Millisecond, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 4 || res.Requests == 0 || res.QPS <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d load-harness requests failed: %+v", res.Errors, res)
	}
	kinds := map[string]ServeKind{}
	for _, k := range res.Kinds {
		kinds[k.Kind] = k
	}
	for _, want := range []string{"sql", "facts"} {
		k, ok := kinds[want]
		if !ok {
			t.Fatalf("no %q requests recorded: %+v", want, res.Kinds)
		}
		if k.P50ms <= 0 || k.P50ms > k.P99ms+1e-9 || k.P95ms > k.P99ms+1e-9 {
			t.Fatalf("%s percentiles out of order: %+v", want, k)
		}
	}
	out := buf.String()
	for _, want := range []string{"Serving load", "p95", "qps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPercentileMS(t *testing.T) {
	durs := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond,
	}
	if got := percentileMS(durs, 0.50); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := percentileMS(durs, 1.0); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := percentileMS(durs[:1], 0.99); got != 1 {
		t.Errorf("single-sample p99 = %v, want 1", got)
	}
}
