package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"probkb"
	"probkb/internal/ingest"
)

// IngestResult is the streaming-ingest harness's record in
// BENCH_<date>.json: sustained absorption throughput plus per-batch
// absorb-latency percentiles, with the closing marginal refresh timed
// separately (it is Gibbs-dominated and amortized over many batches in
// steady state).
type IngestResult struct {
	Facts          int     `json:"facts"`
	Batches        int     `json:"batches"`
	Added          int     `json:"added"`
	Seconds        float64 `json:"seconds"`
	FactsPerSec    float64 `json:"facts_per_sec"`
	AbsorbP50ms    float64 `json:"absorb_p50_ms"`
	AbsorbP95ms    float64 `json:"absorb_p95_ms"`
	AbsorbP99ms    float64 `json:"absorb_p99_ms"`
	RefreshSeconds float64 `json:"refresh_seconds"`
}

// timedAbsorber wraps the real Ingester so the harness measures exactly
// what the pipeline's writer goroutine pays per batch, queueing excluded.
type timedAbsorber struct {
	inner ingest.Absorber

	mu         sync.Mutex
	durs       []time.Duration
	added      int
	lastAbsorb time.Time
	refresh    time.Duration
}

func (a *timedAbsorber) Absorb(ctx context.Context, facts []ingest.Fact) (ingest.Ack, error) {
	start := time.Now()
	ack, err := a.inner.Absorb(ctx, facts)
	a.mu.Lock()
	a.durs = append(a.durs, time.Since(start))
	a.added += ack.Added
	a.lastAbsorb = time.Now()
	a.mu.Unlock()
	return ack, err
}

func (a *timedAbsorber) Refresh(ctx context.Context) (uint64, error) {
	start := time.Now()
	gen, err := a.inner.Refresh(ctx)
	a.mu.Lock()
	a.refresh += time.Since(start)
	a.mu.Unlock()
	return gen, err
}

// Ingest benchmarks the streaming-ingest pipeline: the synthesized
// corpus expands once to a converged baseline, then a firehose of fresh
// random facts (new edges over the corpus's existing entities, the S2
// growth recipe) streams through an ingest.Pipeline at its default
// batch shape. Every batch lands with semi-naive delta grounding, so
// the numbers answer the incremental-maintenance question directly:
// how many facts per second can the KB absorb while staying queryable,
// and what does one batch cost at p50/p95/p99?
func Ingest(cfg Config, w io.Writer) (*IngestResult, error) {
	cfg = cfg.withDefaults()
	k, _, err := probkb.Synthesize(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	exp, err := k.Expand(probkb.Config{
		Engine:       probkb.SingleNode,
		RunInference: true,
		GibbsBurnin:  20,
		GibbsSamples: 100,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	stream := ingestStream(exp, cfg.Seed)
	if len(stream) == 0 {
		return nil, fmt.Errorf("bench: ingest: empty fact stream")
	}

	ta := &timedAbsorber{inner: probkb.NewIngester(exp)}
	p := ingest.New(ta, ingest.Config{RefreshOnClose: true})
	ctx := context.Background()
	p.Start(ctx)

	start := time.Now()
	if err := p.Submit(ctx, stream...); err != nil {
		return nil, fmt.Errorf("bench: ingest: %w", err)
	}
	if err := p.Close(ctx); err != nil {
		return nil, fmt.Errorf("bench: ingest: %w", err)
	}

	ta.mu.Lock()
	durs := append([]time.Duration(nil), ta.durs...)
	added := ta.added
	refresh := ta.refresh
	absorbWall := ta.lastAbsorb.Sub(start)
	ta.mu.Unlock()
	if len(durs) == 0 {
		return nil, fmt.Errorf("bench: ingest: no batch absorbed")
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

	st := p.Stats()
	res := &IngestResult{
		Facts:          int(st.Facts),
		Batches:        int(st.Batches),
		Added:          added,
		Seconds:        absorbWall.Seconds(),
		FactsPerSec:    float64(st.Facts) / absorbWall.Seconds(),
		AbsorbP50ms:    percentileMS(durs, 0.50),
		AbsorbP95ms:    percentileMS(durs, 0.95),
		AbsorbP99ms:    percentileMS(durs, 0.99),
		RefreshSeconds: refresh.Seconds(),
	}

	fmt.Fprintf(w, "Streaming ingest: %d facts in %d batches over a %d-fact baseline (scale=%.3g)\n\n",
		res.Facts, res.Batches, exp.Stats().TotalFacts, cfg.Scale)
	fmt.Fprintf(w, "  throughput %9.0f facts/sec  (%d added after dedup, %.3fs wall)\n",
		res.FactsPerSec, res.Added, res.Seconds)
	fmt.Fprintf(w, "  absorb     p50 %.2fms  p95 %.2fms  p99 %.2fms per batch\n",
		res.AbsorbP50ms, res.AbsorbP95ms, res.AbsorbP99ms)
	fmt.Fprintf(w, "  refresh    %.3fs closing Gibbs pass\n", res.RefreshSeconds)
	return res, nil
}

// ingestStream synthesizes the firehose: as many fresh facts as the
// baseline has observed ones, each a new random edge over existing
// entities in an existing relation signature — so the stream joins the
// rule bodies it lands next to and delta grounding has real work to do.
func ingestStream(exp *probkb.Expansion, seed int64) []ingest.Fact {
	type sig struct{ rel, xc, yc string }
	var (
		sigs  []sig
		xPool = map[sig][]string{}
		yPool = map[sig][]string{}
		base  int
	)
	seen := map[string]bool{}
	for _, f := range exp.Facts() {
		if f.Inferred {
			continue
		}
		base++
		s := sig{f.Rel, f.XClass, f.YClass}
		if _, ok := xPool[s]; !ok {
			sigs = append(sigs, s)
		}
		xPool[s] = append(xPool[s], f.X)
		yPool[s] = append(yPool[s], f.Y)
		seen[f.Rel+"|"+f.X+"|"+f.Y] = true
	}
	rng := rand.New(rand.NewSource(seed + 1))
	stream := make([]ingest.Fact, 0, base)
	for tries := 0; len(stream) < base && tries < base*20; tries++ {
		s := sigs[rng.Intn(len(sigs))]
		x := xPool[s][rng.Intn(len(xPool[s]))]
		y := yPool[s][rng.Intn(len(yPool[s]))]
		key := s.rel + "|" + x + "|" + y
		if x == y || seen[key] {
			continue
		}
		seen[key] = true
		stream = append(stream, ingest.Fact{
			Rel: s.rel, X: x, XClass: s.xc, Y: y, YClass: s.yc,
			Probability: 0.5 + 0.5*rng.Float64(),
		})
	}
	return stream
}
