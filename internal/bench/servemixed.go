package bench

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"probkb"
	"probkb/internal/obs"
	"probkb/internal/server"
)

// MixedPhase aggregates the read latencies of one phase of the mixed
// workload: "idle" (no writer) or "under-write" (a writer streaming
// POST /facts extends, each publishing a new generation mid-phase).
type MixedPhase struct {
	Phase    string  `json:"phase"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// MixedResult is the read-while-expand harness's record in
// BENCH_<date>.json: the MVCC serving tier's claim — readers make
// progress at comparable latency while generations turn over — in
// numbers.
type MixedResult struct {
	Clients     int          `json:"clients"`
	Seconds     float64      `json:"seconds"`
	Generations int          `json:"generations"` // published by the writer mid-phase
	FactsAdded  int          `json:"facts_added"`
	Phases      []MixedPhase `json:"phases"`
}

// ServeMixed measures the epoch-pinned read path against a moving
// target: the same point-read workload as Serve, first against an idle
// server, then while one writer continuously streams fact batches
// through POST /facts — every accepted batch builds a generation on a
// copy-on-write fork and publishes it. Readers pin per request, so the
// under-write phase answers from a mix of generations but each answer
// is a whole one; the interesting output is the latency delta between
// the two phases and that the reader side never stalls.
func ServeMixed(cfg Config, clients int, duration time.Duration, w io.Writer) (*MixedResult, error) {
	cfg = cfg.withDefaults()
	if clients <= 0 {
		clients = 8
	}
	if duration <= 0 {
		duration = 2 * time.Second
	}
	phaseDur := duration / 2

	k, _, err := probkb.Synthesize(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	exp, err := k.Expand(probkb.Config{
		Engine:       probkb.SingleNode,
		RunInference: true,
		GibbsBurnin:  20,
		GibbsSamples: 100,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	prevLogger := obs.Logger()
	obs.SetLogger(obs.NewTextLogger(io.Discard, slog.LevelWarn))
	defer obs.SetLogger(prevLogger)

	srv := httptest.NewServer(server.New(k, exp))
	defer srv.Close()

	facts := exp.Facts()
	if len(facts) == 0 {
		return nil, fmt.Errorf("bench: serve-mixed: expansion has no facts")
	}
	if len(facts) > 512 {
		facts = facts[:512]
	}
	factURLs := make([]string, len(facts))
	for i, f := range facts {
		factURLs[i] = srv.URL + "/facts?rel=" + url.QueryEscape(f.Rel) +
			"&x=" + url.QueryEscape(f.X) + "&y=" + url.QueryEscape(f.Y)
	}
	entities := k.Stats().Entities
	if entities == 0 {
		entities = 1
	}

	// runPhase drives the read workload for phaseDur and aggregates it.
	runPhase := func(phase string) MixedPhase {
		perClient := make([][]time.Duration, clients)
		errs := make([]int, clients)
		deadline := time.Now().Add(phaseDur)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
				client := &http.Client{}
				for time.Now().Before(deadline) {
					var target string
					if rng.Intn(2) == 0 {
						q := fmt.Sprintf("SELECT T.R, T.y, T.w FROM T WHERE T.x = %d", rng.Intn(entities))
						target = srv.URL + "/sql?q=" + url.QueryEscape(q)
					} else {
						target = factURLs[rng.Intn(len(factURLs))]
					}
					start := time.Now()
					resp, err := client.Get(target)
					elapsed := time.Since(start)
					if err != nil {
						errs[c]++
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs[c]++
						continue
					}
					perClient[c] = append(perClient[c], elapsed)
				}
			}(c)
		}
		wg.Wait()

		var durs []time.Duration
		p := MixedPhase{Phase: phase}
		for c := range perClient {
			p.Errors += errs[c]
			durs = append(durs, perClient[c]...)
		}
		p.Requests = len(durs)
		p.QPS = float64(p.Requests) / phaseDur.Seconds()
		if len(durs) > 0 {
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			p.P50ms = percentileMS(durs, 0.50)
			p.P95ms = percentileMS(durs, 0.95)
			p.P99ms = percentileMS(durs, 0.99)
		}
		return p
	}

	res := &MixedResult{Clients: clients, Seconds: duration.Seconds()}

	// Phase 1: the baseline — readers against an idle server.
	res.Phases = append(res.Phases, runPhase("idle"))

	// Phase 2: the same readers while a writer streams extends. Each
	// batch interns fresh entities so every round genuinely grows the
	// KB and publishes a new generation.
	stopWriter := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		client := &http.Client{}
		for round := 0; ; round++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			const batch = 8
			var b strings.Builder
			b.WriteString(`{"facts": [`)
			for i := 0; i < batch; i++ {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, `{"rel": "observed_with", "x": "mx%d_%d", "xClass": "Entity", "y": "my%d_%d", "yClass": "Entity", "probability": 0.7}`,
					round, i, round, i)
			}
			b.WriteString(`]}`)
			resp, err := client.Post(srv.URL+"/facts", "application/json", strings.NewReader(b.String()))
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				res.Generations++
				res.FactsAdded += batch
			}
		}
	}()
	under := runPhase("under-write")
	close(stopWriter)
	<-writerDone
	res.Phases = append(res.Phases, under)

	// The whole point of the harness: readers progressed through live
	// generation turnover. Zero published generations means the writer
	// never ran (or every extend failed) and the numbers are vacuous.
	if res.Generations == 0 {
		return nil, fmt.Errorf("bench: serve-mixed: writer published no generations during the under-write phase")
	}
	if under.Requests == 0 {
		return nil, fmt.Errorf("bench: serve-mixed: readers made no progress during the under-write phase")
	}

	fmt.Fprintf(w, "Mixed read-while-expand load: %d reader clients, %s per phase (scale=%.3g)\n", clients, phaseDur, cfg.Scale)
	fmt.Fprintf(w, "writer published %d generations (+%d facts) during the under-write phase\n\n", res.Generations, res.FactsAdded)
	fmt.Fprintf(w, "  %-12s %10s %8s %10s %10s %10s %8s\n", "phase", "requests", "errors", "p50", "p95", "p99", "qps")
	for _, p := range res.Phases {
		fmt.Fprintf(w, "  %-12s %10d %8d %9.2fms %9.2fms %9.2fms %8.0f\n",
			p.Phase, p.Requests, p.Errors, p.P50ms, p.P95ms, p.P99ms, p.QPS)
	}
	return res, nil
}
