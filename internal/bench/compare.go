package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Report is the BENCH_<date>.json document probkb-bench writes: one
// entry per experiment with its wall time and typed result rows.
type Report struct {
	Date        string             `json:"date"`
	Scale       float64            `json:"scale"`
	Seed        int64              `json:"seed"`
	Segments    int                `json:"segments"`
	Experiments []ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's record in a Report.
type ExperimentResult struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	// Result carries the experiment's typed rows when it returns them
	// (table3, fig6*, fig7*, growth); table-only experiments leave it null.
	Result any `json:"result,omitempty"`
}

// LoadReport reads a BENCH_<date>.json file.
func LoadReport(path string) (Report, error) {
	var r Report
	body, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("bench: %w", err)
	}
	if err := json.Unmarshal(body, &r); err != nil {
		return r, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}

// Regression thresholds: a metric regresses when it is both relatively
// slower (>20%) and absolutely slower (>5ms) than the baseline, so
// micro-experiments whose times sit in scheduler noise can't trip the
// gate.
const (
	RegressionRatio    = 1.20
	RegressionAbsFloor = 0.005 // seconds
)

// Delta compares one experiment's recorded wall time across two runs.
type Delta struct {
	ID         string  `json:"id"`
	OldSeconds float64 `json:"old_seconds"`
	NewSeconds float64 `json:"new_seconds"`
	Ratio      float64 `json:"ratio"`
	Regressed  bool    `json:"regressed"`
}

// Comparison is the result of CompareReports.
type Comparison struct {
	Deltas []Delta `json:"deltas"`
	// OnlyOld / OnlyNew list experiment IDs present in one run but not
	// the other (no timing comparison is possible for those).
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
}

// Regressions returns the deltas flagged as regressed.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// CompareReports diffs the per-experiment wall times of two bench runs.
// A comparison is only meaningful between runs at the same scale/seed/
// segments; mismatches are reported as an error rather than a silently
// wrong verdict.
func CompareReports(old, new Report) (Comparison, error) {
	var c Comparison
	if old.Scale != new.Scale || old.Seed != new.Seed || old.Segments != new.Segments {
		return c, fmt.Errorf(
			"bench: incomparable runs: baseline scale=%g seed=%d segments=%d vs scale=%g seed=%d segments=%d",
			old.Scale, old.Seed, old.Segments, new.Scale, new.Seed, new.Segments)
	}
	oldByID := make(map[string]ExperimentResult, len(old.Experiments))
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	newIDs := make(map[string]bool, len(new.Experiments))
	for _, e := range new.Experiments {
		newIDs[e.ID] = true
		o, ok := oldByID[e.ID]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, e.ID)
			continue
		}
		d := Delta{ID: e.ID, OldSeconds: o.Seconds, NewSeconds: e.Seconds}
		if o.Seconds > 0 {
			d.Ratio = e.Seconds / o.Seconds
		}
		d.Regressed = d.Ratio > RegressionRatio && e.Seconds-o.Seconds > RegressionAbsFloor
		c.Deltas = append(c.Deltas, d)
	}
	for _, e := range old.Experiments {
		if !newIDs[e.ID] {
			c.OnlyOld = append(c.OnlyOld, e.ID)
		}
	}
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	return c, nil
}

// WriteComparison renders the comparison as a fixed-width table and
// returns how many deltas regressed.
func WriteComparison(w io.Writer, c Comparison) int {
	fmt.Fprintf(w, "%-10s %12s %12s %8s  %s\n", "experiment", "old (s)", "new (s)", "ratio", "verdict")
	regressed := 0
	for _, d := range c.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%-10s %12.4f %12.4f %8.2f  %s\n", d.ID, d.OldSeconds, d.NewSeconds, d.Ratio, verdict)
	}
	for _, id := range c.OnlyOld {
		fmt.Fprintf(w, "%-10s only in baseline\n", id)
	}
	for _, id := range c.OnlyNew {
		fmt.Fprintf(w, "%-10s only in new run (no baseline)\n", id)
	}
	return regressed
}
