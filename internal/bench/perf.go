package bench

import (
	"fmt"
	"io"
	"time"

	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/mpp"
	"probkb/internal/quality"
	"probkb/internal/synth"
)

// Table3Row is one system's measurements for Table 3.
type Table3Row struct {
	System     System
	Load       time.Duration
	Iters      []time.Duration // Query 1, iterations 1..4
	Query2     time.Duration
	FinalFacts int
	Factors    int
}

// Table3 reproduces the ReVerb-Sherlock case study (Section 6.1.1):
// constraints applied once up front, then four grounding iterations
// without further quality control, then factor construction — for
// ProbKB-p, ProbKB, and Tuffy-T.
func Table3(cfg Config, w io.Writer) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	// "We run Query 3 once before inference starts and do not perform
	// any further quality control during inference."
	pre := c.KB.Clone()
	removed := quality.PreClean(pre)

	systems := []System{SysProbKBp, SysProbKB, SysTuffyT}
	rows := make([]Table3Row, 0, len(systems))
	for _, sys := range systems {
		res, err := sys.Ground(pre, ground.Options{MaxIterations: 4}, cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %v: %w", sys, err)
		}
		row := Table3Row{
			System:     sys,
			Load:       res.LoadTime,
			Query2:     res.FactorTime,
			FinalFacts: res.Facts.NumRows(),
			Factors:    res.Factors.NumRows(),
		}
		for _, it := range res.PerIteration {
			row.Iters = append(row.Iters, it.Elapsed)
		}
		rows = append(rows, row)
	}

	fmt.Fprintf(w, "Table 3: ReVerb-Sherlock case study (scale=%.3g, %d facts after pre-cleaning %d)\n\n",
		cfg.Scale, pre.Stats().Facts, removed)
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %10s %10s %10s %12s %12s\n",
		"System", "Load", "Iter 1", "Iter 2", "Iter 3", "Iter 4", "Query 2", "Facts", "Factors")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %10s", r.System, round(r.Load))
		for i := 0; i < 4; i++ {
			if i < len(r.Iters) {
				fmt.Fprintf(w, " %10s", round(r.Iters[i]))
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintf(w, " %10s %12d %12d\n", round(r.Query2), r.FinalFacts, r.Factors)
	}
	fmt.Fprintf(w, "\n  paper: ProbKB load 607x faster than Tuffy-T; Query 1 ~100x faster in iters 2-4\n")
	return rows, nil
}

func round(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

// SweepPoint is one (size, per-system time, inferred count) measurement
// of Figures 6(a)/(b)/(c). Queries counts the join queries each system
// issued — the O(k)-vs-O(n) comparison of Section 4.3.1, which holds
// regardless of substrate speed.
type SweepPoint struct {
	Size     int
	Times    map[System]time.Duration
	Queries  map[System]int
	Inferred int
}

// groundOnce runs the first grounding iteration only (as the paper's S1
// and S2 experiments do) and returns the query time — bulkload excluded,
// as in the paper, which reports load separately in Table 3 — and the
// inferred count.
func groundOnce(sys System, k *kb.KB, segments int) (time.Duration, int, int, error) {
	res, err := sys.Ground(k, ground.Options{MaxIterations: 1, SkipFactors: true}, segments)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.AtomTime, res.InferredFacts(), res.AtomQueries, nil
}

// Fig6a sweeps the rule count (synthetic family S1) for Tuffy-T, ProbKB,
// and ProbKB-p. Fractions mirror the paper's x axis (0.01 to 1.0 of one
// million rules, scaled by cfg.Scale).
func Fig6a(cfg Config, w io.Writer) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.01, 0.2, 0.5, 1.0}
	systems := []System{SysTuffyT, SysProbKB, SysProbKBp}

	fmt.Fprintf(w, "Figure 6(a): grounding time vs #rules (S1, scale=%.3g, first iteration)\n\n", cfg.Scale)
	fmt.Fprintf(w, "  %10s %12s %12s %12s %12s %18s\n",
		"#rules", "Tuffy-T", "ProbKB", "ProbKB-p", "#inferred", "queries (T/P)")

	var points []SweepPoint
	for _, f := range fractions {
		n := int(f * 1e6 * cfg.Scale)
		if n < 1 {
			n = 1
		}
		k, err := synth.S1(c, n, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		p := SweepPoint{Size: n, Times: map[System]time.Duration{}, Queries: map[System]int{}}
		for _, sys := range systems {
			d, inferred, queries, err := groundOnce(sys, k, cfg.Segments)
			if err != nil {
				return nil, fmt.Errorf("bench: fig6a %v at %d rules: %w", sys, n, err)
			}
			p.Times[sys] = d
			p.Queries[sys] = queries
			p.Inferred = inferred
		}
		points = append(points, p)
		fmt.Fprintf(w, "  %10d %12s %12s %12s %12d %12d/%d\n", n,
			round(p.Times[SysTuffyT]), round(p.Times[SysProbKB]), round(p.Times[SysProbKBp]),
			p.Inferred, p.Queries[SysTuffyT], p.Queries[SysProbKB])
	}
	fmt.Fprintf(w, "\n  paper at 1M rules: Tuffy-T 16507s, ProbKB 210s, ProbKB-p 53s (311x)\n")
	return points, nil
}

// Fig6b sweeps the fact count (synthetic family S2) for the same three
// systems.
func Fig6b(cfg Config, w io.Writer) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	return factSweep(cfg, w, "Figure 6(b): grounding time vs #facts (S2, first iteration)",
		[]System{SysTuffyT, SysProbKB, SysProbKBp}, false)
}

// Fig6c compares the MPP variants — ProbKB (single node), ProbKB-pn
// (MPP, no views), ProbKB-p (MPP with views) — over the S2 sweep,
// including factor construction (Queries 1 and 2, as in the paper).
func Fig6c(cfg Config, w io.Writer) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	return factSweep(cfg, w, "Figure 6(c): MPP variants over S2 (Queries 1 and 2)",
		[]System{SysProbKB, SysProbKBpn, SysProbKBp}, true)
}

func factSweep(cfg Config, w io.Writer, title string, systems []System, withFactors bool) ([]SweepPoint, error) {
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.1, 2, 5, 10}

	fmt.Fprintf(w, "%s (scale=%.3g)\n\n", title, cfg.Scale)
	fmt.Fprintf(w, "  %10s", "#facts")
	for _, s := range systems {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintf(w, " %12s\n", "#inferred")

	var points []SweepPoint
	base := len(c.KB.Facts)
	for _, f := range fractions {
		n := int(f * 1e6 * cfg.Scale)
		if n <= base {
			n = base + 100
		}
		k, err := synth.S2(c, n, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		p := SweepPoint{Size: n, Times: map[System]time.Duration{}, Queries: map[System]int{}}
		for _, sys := range systems {
			res, err := sys.Ground(k, ground.Options{MaxIterations: 1, SkipFactors: !withFactors}, cfg.Segments)
			if err != nil {
				return nil, fmt.Errorf("bench: %v at %d facts: %w", sys, n, err)
			}
			// Query time only (Queries 1 and, for Fig 6(c), 2); bulkload
			// is Table 3's row.
			p.Times[sys] = res.AtomTime + res.FactorTime
			p.Queries[sys] = res.AtomQueries + res.FactorQueries
			p.Inferred = res.InferredFacts()
		}
		points = append(points, p)
		fmt.Fprintf(w, "  %10d", n)
		for _, s := range systems {
			fmt.Fprintf(w, " %12s", round(p.Times[s]))
		}
		fmt.Fprintf(w, " %12d\n", p.Inferred)
	}
	if withFactors {
		fmt.Fprintf(w, "\n  paper at 10M facts: ProbKB-pn 3.1x, ProbKB-p 6.3x over ProbKB\n")
	} else {
		fmt.Fprintf(w, "\n  paper at 10M facts: 237x speed-up of ProbKB-p over Tuffy-T\n")
	}
	return points, nil
}

// WorkersRow is one worker count's measurement of the morsel-parallel
// sweep.
type WorkersRow struct {
	Workers  int
	Query    time.Duration
	Inferred int
	Factors  int
}

// Workers measures the grounding-dominated workload (Queries 1 and 2
// over an S2-inflated facts table) at increasing engine worker-pool
// sizes. Results must be identical at every worker count — the morsel
// execution model guarantees it, internal/proptest verifies it, and this
// experiment double-checks the row counts while reporting the speedup.
func Workers(cfg Config, w io.Writer) ([]WorkersRow, error) {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	n := int(10e6 * cfg.Scale)
	if n <= len(c.KB.Facts) {
		n = len(c.KB.Facts) + 1000
	}
	k, err := synth.S2(c, n, cfg.Seed)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Morsel parallelism: grounding over %d facts vs engine workers (scale=%.3g)\n\n", n, cfg.Scale)
	fmt.Fprintf(w, "  %8s %12s %12s %12s %10s\n", "workers", "query time", "#inferred", "#factors", "speedup")

	var rows []WorkersRow
	for _, nw := range []int{1, 2, 4, 8} {
		res, err := ground.Ground(k, ground.Options{MaxIterations: 1, Workers: nw})
		if err != nil {
			return nil, fmt.Errorf("bench: workers=%d: %w", nw, err)
		}
		row := WorkersRow{
			Workers:  nw,
			Query:    res.AtomTime + res.FactorTime,
			Inferred: res.InferredFacts(),
			Factors:  res.Factors.NumRows(),
		}
		rows = append(rows, row)
		if row.Inferred != rows[0].Inferred || row.Factors != rows[0].Factors {
			return rows, fmt.Errorf("bench: workers=%d changed results: %d inferred / %d factors, want %d / %d",
				nw, row.Inferred, row.Factors, rows[0].Inferred, rows[0].Factors)
		}
		fmt.Fprintf(w, "  %8d %12s %12d %12d %9.2fx\n",
			nw, round(row.Query), row.Inferred, row.Factors,
			float64(rows[0].Query)/float64(row.Query))
	}
	fmt.Fprintf(w, "\n  identical results at every worker count; speedup tracks available cores\n")
	return rows, nil
}

// Fig4 reproduces the query-plan comparison: the M3 grounding join
// against a large TΠ, planned with and without redistributed
// materialized views, printed as annotated operator trees with motion
// costs.
func Fig4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	c, err := cfg.corpus()
	if err != nil {
		return err
	}
	// The paper's sample run joins M3 against a synthetic TΠ with 10M
	// records; scale that down.
	n := int(10e6 * cfg.Scale)
	if n <= len(c.KB.Facts) {
		n = len(c.KB.Facts) + 1000
	}
	k, err := synth.S2(c, n, cfg.Seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Figure 4: Greenplum-style plans for the M3 grounding join over %d facts, %d segments\n",
		n, cfg.Segments)

	run := func(useViews bool, title string) error {
		g, err := ground.NewMPP(k, ground.Options{}, mpp.NewCluster(cfg.Segments), useViews)
		if err != nil {
			return err
		}
		loadStart := time.Now()
		if err := g.Load(); err != nil {
			return err
		}
		loadTime := time.Since(loadStart)
		plan := g.AtomsPlan(mln.P3)
		start := time.Now()
		if _, err := plan.Run(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		re, bc := mpp.CountMotions(plan)
		fmt.Fprintf(w, "\n%s (load+views %s, query %s; %d redistribute, %d broadcast motions, %dB moved)\n",
			title, round(loadTime), round(elapsed), re, bc, mpp.MotionBytes(plan))
		fmt.Fprint(w, mpp.Explain(plan))
		return nil
	}
	if err := run(true, "WITH redistributed materialized views (optimized, left plan)"); err != nil {
		return err
	}
	return run(false, "WITHOUT views (unoptimized, right plan)")
}
