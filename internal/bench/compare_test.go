package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestReport(path string, r Report) error {
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

func sampleReport(times map[string]float64) Report {
	r := Report{Date: "2026-01-01T00:00:00Z", Scale: 0.02, Seed: 42, Segments: 4}
	for _, id := range []string{"table2", "table3", "fig6a"} {
		if s, ok := times[id]; ok {
			r.Experiments = append(r.Experiments, ExperimentResult{ID: id, Seconds: s})
		}
	}
	return r
}

// TestCompareFlagsInjectedRegression injects a 2x slowdown on one
// experiment and checks exactly that one regresses — the bench-diff
// gate's contract.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	old := sampleReport(map[string]float64{"table2": 1.0, "table3": 2.0, "fig6a": 0.5})
	new := sampleReport(map[string]float64{"table2": 1.05, "table3": 4.0, "fig6a": 0.5})

	c, err := CompareReports(old, new)
	if err != nil {
		t.Fatal(err)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].ID != "table3" {
		t.Fatalf("regressions = %+v, want exactly table3", regs)
	}
	if regs[0].Ratio < 1.99 || regs[0].Ratio > 2.01 {
		t.Fatalf("ratio = %g, want 2.0", regs[0].Ratio)
	}

	var sb strings.Builder
	if n := WriteComparison(&sb, c); n != 1 {
		t.Fatalf("WriteComparison counted %d regressions, want 1", n)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Fatalf("table missing REGRESSED verdict:\n%s", sb.String())
	}
}

// TestCompareNoiseFloor: a big relative slowdown below the 5ms absolute
// floor must not regress — micro-experiment times sit in scheduler noise.
func TestCompareNoiseFloor(t *testing.T) {
	old := sampleReport(map[string]float64{"table2": 0.001})
	new := sampleReport(map[string]float64{"table2": 0.003}) // 3x, but +2ms

	c, err := CompareReports(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("noise-level delta regressed: %+v", regs)
	}
}

// TestCompareRejectsMismatchedRuns: different scale/seed/segments make
// wall times incomparable; the gate must error, not mis-judge.
func TestCompareRejectsMismatchedRuns(t *testing.T) {
	old := sampleReport(map[string]float64{"table2": 1.0})
	new := sampleReport(map[string]float64{"table2": 1.0})
	new.Scale = 0.05
	if _, err := CompareReports(old, new); err == nil {
		t.Fatal("mismatched scales compared without error")
	}
}

// TestCompareDisjointExperiments: IDs present in only one run are listed,
// not silently dropped or falsely regressed.
func TestCompareDisjointExperiments(t *testing.T) {
	old := sampleReport(map[string]float64{"table2": 1.0, "table3": 2.0})
	new := sampleReport(map[string]float64{"table2": 1.0, "fig6a": 0.5})

	c, err := CompareReports(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "table3" {
		t.Fatalf("only_old = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "fig6a" {
		t.Fatalf("only_new = %v", c.OnlyNew)
	}
	if len(c.Deltas) != 1 || c.Deltas[0].ID != "table2" {
		t.Fatalf("deltas = %+v", c.Deltas)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := writeTestReport(path, sampleReport(map[string]float64{"table2": 1.5})); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 42 || len(r.Experiments) != 1 || r.Experiments[0].Seconds != 1.5 {
		t.Fatalf("loaded report = %+v", r)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline loaded without error")
	}
}
