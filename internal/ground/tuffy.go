package ground

import (
	"fmt"
	"time"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/obs"
)

// TuffyGrounder re-implements the Tuffy-T baseline of Section 6.1: one
// table per relation, one join query per rule, one insertion per rule.
// Its output is semantically identical to the batch grounder's; the
// difference is purely the query plan — O(n) queries per iteration for n
// rules instead of O(k) for k partitions.
type TuffyGrounder struct {
	kb   *kb.KB
	opts Options

	tpi       *engine.Table
	ix        *factIndex
	relTables map[int32]*engine.Table
}

// NewTuffy prepares a Tuffy-T grounder for the KB.
func NewTuffy(k *kb.KB, opts Options) (*TuffyGrounder, error) {
	for i, c := range k.Rules {
		if _, err := c.Partition(); err != nil {
			return nil, fmt.Errorf("ground: rule %d: %w", i, err)
		}
	}
	return &TuffyGrounder{kb: k, opts: opts}, nil
}

// load bulkloads the facts: the master table plus one predicate table per
// relation name. The per-relation copies are what make Tuffy's bulkload
// two to three orders of magnitude slower on KBs with many relations
// (Table 3, "Load" row).
func (g *TuffyGrounder) load() {
	g.tpi = g.kb.FactsTable()
	g.ix = newFactIndex(g.tpi)
	g.relTables = make(map[int32]*engine.Table, g.kb.RelDict.Len())
	// Every relation gets its own (initially empty) table, mirroring
	// Tuffy's per-predicate schema creation.
	for id := int32(0); id < int32(g.kb.RelDict.Len()); id++ {
		g.relTables[id] = engine.NewTable("pred_"+g.kb.RelDict.Name(id), kb.FactsSchema())
	}
	g.scatterFacts(0)
}

// scatterFacts copies rows [from, NumRows) of the master table into the
// per-relation tables.
func (g *TuffyGrounder) scatterFacts(from int) {
	rels := g.tpi.Int32Col(kb.TPiR)
	perRel := make(map[int32][]int32)
	for r := from; r < g.tpi.NumRows(); r++ {
		perRel[rels[r]] = append(perRel[rels[r]], int32(r))
	}
	for rel, rows := range perRel {
		g.relTables[rel].AppendRowsFrom(g.tpi, rows)
	}
}

// rebuildRelTables reloads every predicate table from the master table
// (needed after constraint deletions).
func (g *TuffyGrounder) rebuildRelTables() {
	for _, t := range g.relTables {
		t.Truncate()
	}
	g.scatterFacts(0)
}

// Ground runs the per-rule grounding loop.
func (g *TuffyGrounder) Ground() (*Result, error) {
	ctx, span := obs.StartSpan(g.opts.ctxOf(), "ground")
	defer span.End()
	span.SetAttr("grounder", "tuffy")
	res := &Result{}

	loadStart := time.Now()
	g.load()
	res.LoadTime = time.Since(loadStart)
	res.BaseFacts = g.tpi.NumRows()

	atomStart := time.Now()
	atomsCtx, atomsSpan := obs.StartSpan(ctx, "ground.atoms")
	maxIters := g.opts.MaxIterations
	for iter := 1; maxIters == 0 || iter <= maxIters; iter++ {
		iterStart := time.Now()
		_, iterSpan := obs.StartSpan(atomsCtx, "iteration")
		st := IterStats{Iteration: iter}

		// One query per rule against this iteration's snapshot; results
		// collected and merged per rule, as Tuffy inserts per rule.
		snapshotLen := g.tpi.NumRows()
		type ruleOut struct{ out *engine.Table }
		outs := make([]ruleOut, 0, len(g.kb.Rules))
		for i := range g.kb.Rules {
			plan := g.ruleAtomsPlan(&g.kb.Rules[i])
			out, err := plan.Run()
			if err != nil {
				iterSpan.End()
				atomsSpan.End()
				return nil, fmt.Errorf("ground: tuffy rule %d: %w", i, err)
			}
			engine.ObservePlan("tuffy-atoms", plan)
			st.Queries++
			outs = append(outs, ruleOut{out: out})
		}
		candRows := 0
		for _, ro := range outs {
			candRows += ro.out.NumRows()
			st.NewFacts += g.ix.merge(ro.out)
		}
		g.scatterFacts(snapshotLen)
		if g.opts.ConstraintHook != nil {
			st.Deleted = g.opts.ConstraintHook(g.tpi)
			if st.Deleted > 0 {
				g.ix.rebuild()
				g.rebuildRelTables()
			}
		}

		st.Elapsed = time.Since(iterStart)
		res.PerIteration = append(res.PerIteration, st)
		res.Iterations = iter
		res.AtomQueries += st.Queries
		observeIteration(st, candRows-st.NewFacts)
		iterSpan.SetAttr("iter", iter)
		iterSpan.SetAttr("new_facts", st.NewFacts)
		iterSpan.SetAttr("queries", st.Queries)
		iterSpan.End()
		// The Tuffy baseline journals iteration stats only; per-rule plan
		// profiles (O(#rules) per iteration) would blow the journal bound.
		emitIteration(g.opts.Journal, st)
		if g.opts.OnIteration != nil {
			g.opts.OnIteration(st)
		}
		if st.NewFacts == 0 {
			res.Converged = true
			break
		}
	}
	res.AtomTime = time.Since(atomStart)
	res.Facts = g.tpi
	atomsSpan.SetAttr("iterations", res.Iterations)
	atomsSpan.End()

	if g.opts.SkipFactors {
		return res, nil
	}

	factorStart := time.Now()
	_, factorsSpan := obs.StartSpan(ctx, "ground.factors")
	factors := engine.NewTable("TPhi", FactorSchema())
	for i := range g.kb.Rules {
		plan := g.ruleFactorsPlan(&g.kb.Rules[i])
		out, err := plan.Run()
		if err != nil {
			factorsSpan.End()
			return nil, fmt.Errorf("ground: tuffy rule %d factors: %w", i, err)
		}
		engine.ObservePlan("tuffy-factors", plan)
		res.FactorQueries++
		factors.AppendTable(out)
	}
	appendSingletonFactors(factors, g.tpi)
	res.FactorQueries++
	res.Factors = factors
	res.FactorTime = time.Since(factorStart)
	factorsSpan.SetAttr("factors", factors.NumRows())
	factorsSpan.End()
	return res, nil
}

// classFilter returns a scan of the relation table for atom a, filtered
// to the clause's class constraints — Tuffy-T's typed predicate access.
func (g *TuffyGrounder) classFilter(c *mln.Clause, a mln.Atom) engine.Node {
	c1 := c.Class[a.Arg1]
	c2 := c.Class[a.Arg2]
	scan := engine.NewScan(g.relTables[a.Rel])
	return engine.NewFilter(scan, fmt.Sprintf("C1 = %d AND C2 = %d", c1, c2),
		func(t *engine.Table, r int) bool {
			return t.Int32Col(kb.TPiC1)[r] == c1 && t.Int32Col(kb.TPiC2)[r] == c2
		})
}

// ruleAtomsPlan builds the single-rule inference query: SELECT the head
// tuple from the (filtered, possibly self-joined) body tables.
func (g *TuffyGrounder) ruleAtomsPlan(c *mln.Clause) engine.Node {
	b0 := c.Body[0]
	if len(c.Body) == 1 {
		return engine.NewProject(g.classFilter(c, b0),
			engine.ConstI32Expr("R", c.Head.Rel),
			engine.ColExpr("x", tCol(b0, mln.X)),
			engine.ConstI32Expr("C1", c.Class[mln.X]),
			engine.ColExpr("y", tCol(b0, mln.Y)),
			engine.ConstI32Expr("C2", c.Class[mln.Y]),
		)
	}
	b1 := c.Body[1]
	j := engine.NewHashJoin(
		g.classFilter(c, b0), g.classFilter(c, b1),
		[]int{tCol(b0, mln.Z)}, []int{tCol(b1, mln.Z)},
		[]engine.JoinOut{
			engine.BuildCol("x", tCol(b0, mln.X)),
			engine.ProbeCol("y", tCol(b1, mln.Y)),
		},
		"T2.z = T3.z")
	return engine.NewProject(j,
		engine.ConstI32Expr("R", c.Head.Rel),
		engine.ColExpr("x", 0),
		engine.ConstI32Expr("C1", c.Class[mln.X]),
		engine.ColExpr("y", 1),
		engine.ConstI32Expr("C2", c.Class[mln.Y]),
	)
}

// ruleFactorsPlan builds the single-rule factor query, joining the head
// predicate table to resolve I1.
func (g *TuffyGrounder) ruleFactorsPlan(c *mln.Clause) engine.Node {
	b0 := c.Body[0]
	var bodyJoin engine.Node
	if len(c.Body) == 1 {
		// Body IDs plus head argument values: (I2, xv, yv).
		bodyJoin = engine.NewProject(g.classFilter(c, b0),
			engine.ColExpr("I2", kb.TPiI),
			engine.ColExpr("xv", tCol(b0, mln.X)),
			engine.ColExpr("yv", tCol(b0, mln.Y)),
			engine.ConstI32Expr("I3", engine.NullInt32),
		)
	} else {
		b1 := c.Body[1]
		bodyJoin = engine.NewHashJoin(
			g.classFilter(c, b0), g.classFilter(c, b1),
			[]int{tCol(b0, mln.Z)}, []int{tCol(b1, mln.Z)},
			[]engine.JoinOut{
				engine.BuildCol("I2", kb.TPiI),
				engine.BuildCol("xv", tCol(b0, mln.X)),
				engine.ProbeCol("yv", tCol(b1, mln.Y)),
				engine.ProbeCol("I3", kb.TPiI),
			},
			"T2.z = T3.z")
	}
	// Resolve I1 against the head predicate table (class-filtered).
	head := g.classFilter(c, c.Head)
	j := engine.NewHashJoin(bodyJoin, head,
		[]int{1, 2}, []int{kb.TPiX, kb.TPiY},
		[]engine.JoinOut{
			engine.ProbeCol("I1", kb.TPiI),
			engine.BuildCol("I2", 0),
			engine.BuildCol("I3", 3),
		},
		"head args")
	return engine.NewProject(j,
		engine.ColExpr("I1", 0),
		engine.ColExpr("I2", 1),
		engine.ColExpr("I3", 2),
		engine.ConstF64Expr("w", c.Weight),
	)
}
