package ground

import (
	"context"
	"testing"

	"probkb/internal/kb"
)

// localQueryFor resolves the atom's names, failing on unknown symbols.
func localQueryFor(t *testing.T, k *kb.KB, rel, x, y string) LocalQuery {
	t.Helper()
	r, ok1 := k.RelDict.Lookup(rel)
	xi, ok2 := k.Entities.Lookup(x)
	yi, ok3 := k.Entities.Lookup(y)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("unknown symbol in %s(%s, %s)", rel, x, y)
	}
	return LocalQuery{Rel: r, X: xi, Y: yi}
}

func TestLocalGroundMatchesGlobalOnPaperExample(t *testing.T) {
	k := paperKB(t)
	global, err := Ground(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLocal(k.Rules, k.FactsTable(), Options{})

	// The example is one tight entity neighborhood: with generous
	// bounds the local closure must reproduce the global fact set.
	q := localQueryFor(t, k, "located_in", "Brooklyn", "New_York_City")
	q.Depth, q.Radius = 4, 5
	lres, err := lg.Ground(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want, got := factSet(global.Facts), factSet(lres.Facts)
	if len(got) != len(want) {
		t.Fatalf("local closure has %d facts, global %d", len(got), len(want))
	}
	for key := range want {
		if !got[key] {
			t.Fatalf("local closure misses %v", key)
		}
	}
	if len(lres.TargetRows) == 0 {
		t.Fatal("target atom not found in its own local closure")
	}
	if lres.RulesReachable != 4 {
		t.Fatalf("rules reachable = %d, want all 4", lres.RulesReachable)
	}
	if lres.SeedFacts != 2 {
		t.Fatalf("seed facts = %d, want both born_in observations", lres.SeedFacts)
	}
	if !lres.Converged {
		t.Fatal("local closure did not converge within the depth bound")
	}
}

func TestLocalGroundObservedAtom(t *testing.T) {
	k := paperKB(t)
	lg := NewLocal(k.Rules, k.FactsTable(), Options{})
	q := localQueryFor(t, k, "born_in", "Ruth_Gruber", "Brooklyn")
	lres, err := lg.Ground(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(lres.TargetRows) == 0 {
		t.Fatal("observed atom not found")
	}
	if r := lres.TargetRows[0]; r >= lres.BaseFacts {
		t.Fatalf("observed atom landed at row %d, past the %d seed rows", r, lres.BaseFacts)
	}
}

func TestLocalGroundDepthOneStillDerives(t *testing.T) {
	k := paperKB(t)
	lg := NewLocal(k.Rules, k.FactsTable(), Options{})
	// Depth 1 keeps only the two located_in rules; the born_in ∧
	// born_in rule derives the atom from raw evidence in one step.
	q := localQueryFor(t, k, "located_in", "Brooklyn", "New_York_City")
	q.Depth = 1
	lres, err := lg.Ground(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if lres.RulesReachable != 2 {
		t.Fatalf("rules reachable at depth 1 = %d, want the 2 located_in rules", lres.RulesReachable)
	}
	if len(lres.TargetRows) == 0 {
		t.Fatal("depth-1 derivation missed the atom")
	}
}

func TestLocalGroundIrrelevantEvidenceExcluded(t *testing.T) {
	k := paperKB(t)
	// A disconnected fact about unrelated entities must not enter the
	// entity ball.
	k.InternFact("born_in", "Freud", "Writer", "Vienna", "Place", 0.9)
	lg := NewLocal(k.Rules, k.FactsTable(), Options{})
	q := localQueryFor(t, k, "located_in", "Brooklyn", "New_York_City")
	lres, err := lg.Ground(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if lres.SeedFacts != 2 {
		t.Fatalf("seed facts = %d, want 2 (Vienna is disconnected)", lres.SeedFacts)
	}
	rels := lres.Facts.Int32Col(kb.TPiR)
	xs := lres.Facts.Int32Col(kb.TPiX)
	freud, _ := k.Entities.Lookup("Freud")
	for r := 0; r < lres.Facts.NumRows(); r++ {
		if xs[r] == freud {
			t.Fatalf("disconnected entity leaked into the local closure (rel %d)", rels[r])
		}
	}
}

func TestLocalGroundUnderivableAtom(t *testing.T) {
	k := paperKB(t)
	// live_in(NYC, Brooklyn) reverses the argument order no rule
	// produces: the closure must complete without finding it.
	q := localQueryFor(t, k, "live_in", "New_York_City", "Brooklyn")
	lg := NewLocal(k.Rules, k.FactsTable(), Options{})
	lres, err := lg.Ground(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(lres.TargetRows) != 0 {
		t.Fatalf("underivable atom matched rows %v", lres.TargetRows)
	}
}

func TestLocalGroundConcurrent(t *testing.T) {
	k := paperKB(t)
	lg := NewLocal(k.Rules, k.FactsTable(), Options{})
	queries := []LocalQuery{
		localQueryFor(t, k, "located_in", "Brooklyn", "New_York_City"),
		localQueryFor(t, k, "live_in", "Ruth_Gruber", "Brooklyn"),
		localQueryFor(t, k, "born_in", "Ruth_Gruber", "Brooklyn"),
	}
	done := make(chan error, 8*len(queries))
	for i := 0; i < 8; i++ {
		for _, q := range queries {
			go func(q LocalQuery) {
				_, err := lg.Ground(context.Background(), q)
				done <- err
			}(q)
		}
	}
	for i := 0; i < 8*len(queries); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
