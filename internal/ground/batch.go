package ground

import (
	"fmt"
	"time"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

// BatchGrounder is the ProbKB grounder: Algorithm 1 over the relational
// model, applying all rules of a partition with one multi-way join.
type BatchGrounder struct {
	kb    *kb.KB
	parts *mln.Partitions
	opts  Options
}

// NewBatch prepares a batch grounder for the KB.
func NewBatch(k *kb.KB, opts Options) (*BatchGrounder, error) {
	parts, err := k.MLNPartitions()
	if err != nil {
		return nil, fmt.Errorf("ground: partitioning rules: %w", err)
	}
	return &BatchGrounder{kb: k, parts: parts, opts: opts}, nil
}

// Ground runs Algorithm 1 and returns the grounding result.
func (g *BatchGrounder) Ground() (*Result, error) {
	res := &Result{}

	loadStart := time.Now()
	tpi := g.kb.FactsTable()
	ix := newFactIndex(tpi)
	res.LoadTime = time.Since(loadStart)
	res.BaseFacts = tpi.NumRows()

	return g.groundFrom(tpi, ix, -1, res)
}

// groundFrom runs the closure loop and factor phase over an existing
// facts table. deltaMin >= 0 seeds the first iteration's semi-naive
// delta at that fact-ID watermark (the incremental-expansion path); -1
// starts naive.
//
// The delta is tracked by fact ID, not row offset: IDs are assigned
// monotonically by the fact index and never reused, so constraint-hook
// deletions — which shift rows but leave surviving IDs intact — cannot
// corrupt the watermark. A deleted fact simply drops out of the next
// delta, and a re-derived one re-enters it under a fresh ID, so
// semi-naive evaluation stays armed across removals instead of falling
// back to naive joins for the rest of the run.
func (g *BatchGrounder) groundFrom(tpi *engine.Table, ix *factIndex, deltaMin int32, res *Result) (*Result, error) {
	ctx, span := obs.StartSpan(g.opts.ctxOf(), "ground")
	defer span.End()
	active := g.parts.NonEmpty()

	// Phase 1: transitive closure (groundAtoms until fixpoint or cap).
	atomStart := time.Now()
	atomsCtx, atomsSpan := obs.StartSpan(ctx, "ground.atoms")
	maxIters := g.opts.MaxIterations
	// partial packages what grounding completed so far so a cancelled run
	// can hand back a usable PartialError instead of discarding work.
	partial := func(err error) (*Result, error) {
		res.Facts = tpi
		res.AtomTime = time.Since(atomStart)
		return res, err
	}
	// Semi-naive bookkeeping: deltaMin is the fact-ID watermark below
	// which every derivation has already been attempted; -1 forces a
	// full (naive) join.
	for iter := 1; maxIters == 0 || iter <= maxIters; iter++ {
		// Cooperative cancellation: check at every fixpoint iteration.
		if err := atomsCtx.Err(); err != nil {
			atomsSpan.End()
			return partial(err)
		}
		iterStart := time.Now()
		_, iterSpan := obs.StartSpan(atomsCtx, "iteration")
		st := IterStats{Iteration: iter}

		var delta *engine.Table
		if deltaMin >= 0 && (g.opts.SemiNaive || iter == 1) {
			// Semi-naive delta; an explicit seed (incremental expansion)
			// applies on the first iteration even under naive evaluation.
			delta = deltaRows(tpi, deltaMin)
		}
		// IDs handed out from here on belong to this iteration's merge:
		// they form the next iteration's delta.
		nextMin := ix.next

		// Run every partition's query against this iteration's snapshot
		// of TΠ, then merge (Algorithm 1 lines 3-5).
		candidates := make([]*engine.Table, 0, len(active))
		for _, p := range active {
			for _, plan := range g.atomsPlans(p, tpi, delta) {
				engine.Configure(plan, engine.Opts{Workers: g.opts.Workers})
				planStart := time.Now()
				out, err := plan.Run()
				if err != nil {
					iterSpan.End()
					atomsSpan.End()
					return partial(fmt.Errorf("ground: partition %d atoms query: %w", p, err))
				}
				observePartition("atoms", p, time.Since(planStart))
				engine.ObservePlan("ground-atoms", plan)
				g.opts.Journal.EmitProfile(journal.QueryProfile{
					Query: "ground-atoms", Partition: p, Iteration: iter,
					Plan: journal.Capture[engine.Node](plan),
				})
				st.Queries++
				candidates = append(candidates, out)
			}
		}
		candRows := 0
		for _, c := range candidates {
			candRows += c.NumRows()
			st.NewFacts += ix.merge(c)
		}
		if g.opts.ConstraintHook != nil {
			st.Deleted = g.opts.ConstraintHook(tpi)
			if st.Deleted > 0 {
				ix.rebuild()
			}
		}
		// Removals don't invalidate the watermark: a deleted fact's ID
		// vanishes from the table (and thus from the next delta), and any
		// re-derivation re-enters under a fresh ID above nextMin.
		deltaMin = nextMin

		st.Elapsed = time.Since(iterStart)
		res.PerIteration = append(res.PerIteration, st)
		res.Iterations = iter
		res.AtomQueries += st.Queries
		observeIteration(st, candRows-st.NewFacts)
		iterSpan.SetAttr("iter", iter)
		iterSpan.SetAttr("new_facts", st.NewFacts)
		iterSpan.SetAttr("deleted", st.Deleted)
		iterSpan.SetAttr("queries", st.Queries)
		iterSpan.End()
		emitIteration(g.opts.Journal, st)
		if g.opts.OnIteration != nil {
			g.opts.OnIteration(st)
		}
		if g.opts.Observer != nil {
			g.opts.Observer(iter, tpi)
		}
		if st.NewFacts == 0 {
			res.Converged = true
			break
		}
	}
	res.AtomTime = time.Since(atomStart)
	res.Facts = tpi
	atomsSpan.SetAttr("iterations", res.Iterations)
	atomsSpan.SetAttr("facts", tpi.NumRows())
	atomsSpan.SetAttr("queries", res.AtomQueries)
	atomsSpan.End()
	span.SetAttr("base_facts", res.BaseFacts)
	span.SetAttr("inferred_facts", res.InferredFacts())

	if g.opts.SkipFactors {
		return res, nil
	}

	// Phase 2: ground factors (Algorithm 1 lines 8-10).
	factorStart := time.Now()
	factorsCtx, factorsSpan := obs.StartSpan(ctx, "ground.factors")
	factors := engine.NewTable("TPhi", FactorSchema())
	for _, p := range active {
		// Cooperative cancellation: check between factor queries. The
		// grounded facts survive in the partial result; only the factor
		// table is incomplete.
		if err := factorsCtx.Err(); err != nil {
			factorsSpan.End()
			return res, err
		}
		plan := g.factorsPlan(p, tpi)
		engine.Configure(plan, engine.Opts{Workers: g.opts.Workers})
		planStart := time.Now()
		out, err := plan.Run()
		if err != nil {
			factorsSpan.End()
			return res, fmt.Errorf("ground: partition %d factors query: %w", p, err)
		}
		observePartition("factors", p, time.Since(planStart))
		engine.ObservePlan("ground-factors", plan)
		g.opts.Journal.EmitProfile(journal.QueryProfile{
			Query: "ground-factors", Partition: p,
			Plan: journal.Capture[engine.Node](plan),
		})
		res.FactorQueries++
		factors.AppendTable(out) // bag union (Proposition 1)
	}
	appendSingletonFactors(factors, tpi)
	res.FactorQueries++
	obs.Default.Counter("probkb_ground_queries_total", obs.L("phase", "factors")).Add(int64(res.FactorQueries))
	res.Factors = factors
	res.FactorTime = time.Since(factorStart)
	factorsSpan.SetAttr("factors", factors.NumRows())
	factorsSpan.SetAttr("queries", res.FactorQueries)
	factorsSpan.End()
	return res, nil
}

// deltaRows copies the rows of t whose fact ID is >= minID into a fresh
// table (the Δ input of semi-naive evaluation). Selecting by ID rather
// than row position keeps the delta exact across constraint deletions.
func deltaRows(t *engine.Table, minID int32) *engine.Table {
	out := engine.NewTable(t.Name()+"_delta", t.Schema())
	ids := t.Int32Col(kb.TPiI)
	rows := make([]int32, 0, len(ids))
	for r, id := range ids {
		if id >= minID {
			rows = append(rows, int32(r))
		}
	}
	out.AppendRowsFrom(t, rows)
	return out
}

// atomsPlans returns the query plans for partition p this iteration:
// one full join under naive evaluation; under semi-naive, the Δ-joins
// (Δ for one-atom bodies; Δ⋈T and T⋈Δ for two-atom bodies, whose union
// covers every derivation using at least one new fact — Δ⋈Δ pairs appear
// in both and dedup in the merge).
func (g *BatchGrounder) atomsPlans(p int, tpi, delta *engine.Table) []engine.Node {
	_, body := mln.Shape(p)
	if delta == nil {
		return []engine.Node{g.atomsPlan(p, tpi, tpi)}
	}
	if len(body) == 1 {
		return []engine.Node{g.atomsPlan(p, delta, delta)}
	}
	return []engine.Node{
		g.atomsPlan(p, delta, tpi),
		g.atomsPlan(p, tpi, delta),
	}
}

// atomsPlan builds Query 1-p: the join computing new ground atoms from
// partition p, with the first body atom probing t2src and the second
// t3src (both the full table under naive evaluation).
func (g *BatchGrounder) atomsPlan(p int, t2src, t3src *engine.Table) engine.Node {
	m := g.parts.Table(p)
	lay := layoutOf(p)
	_, body := mln.Shape(p)
	b0 := body[0]

	// J1: Mi ⋈ T on the first body atom's relation and classes.
	j1Keys := []int{lay.r2, lay.class[b0.Arg1], lay.class[b0.Arg2]}
	tKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2}

	if len(body) == 1 {
		outs := []engine.JoinOut{
			engine.BuildCol("R", lay.r1),
			engine.ProbeCol("x", tCol(b0, mln.X)),
			engine.BuildCol("C1", lay.class[mln.X]),
			engine.ProbeCol("y", tCol(b0, mln.Y)),
			engine.BuildCol("C2", lay.class[mln.Y]),
		}
		j := engine.NewHashJoin(engine.NewScan(m), engine.NewScan(t2src), j1Keys, tKeys, outs,
			fmt.Sprintf("M%d.R2 = T.R AND classes", p))
		return engine.NewDistinct(j, candidateKeyCols)
	}

	b1 := body[1]
	// J1 output: R1, R3, CX, CY, CZ, xv (value of x from the first body
	// fact), zv (value of z).
	j1Outs := []engine.JoinOut{
		engine.BuildCol("R1", lay.r1),
		engine.BuildCol("R3", lay.r3),
		engine.BuildCol("CX", lay.class[mln.X]),
		engine.BuildCol("CY", lay.class[mln.Y]),
		engine.BuildCol("CZ", lay.class[mln.Z]),
		engine.ProbeCol("xv", tCol(b0, mln.X)),
		engine.ProbeCol("zv", tCol(b0, mln.Z)),
	}
	j1 := engine.NewHashJoin(engine.NewScan(m), engine.NewScan(t2src), j1Keys, tKeys, j1Outs,
		fmt.Sprintf("M%d.R2 = T2.R AND classes", p))

	// J2: join the second body atom, matching z.
	varCol := map[mln.Var]int{mln.X: 2, mln.Y: 3, mln.Z: 4}
	j2BuildKeys := []int{1, varCol[b1.Arg1], varCol[b1.Arg2], 6}
	j2ProbeKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2, tCol(b1, mln.Z)}
	j2Outs := []engine.JoinOut{
		engine.BuildCol("R", 0),
		engine.BuildCol("x", 5),
		engine.BuildCol("C1", 2),
		engine.ProbeCol("y", tCol(b1, mln.Y)),
		engine.BuildCol("C2", 3),
	}
	j2 := engine.NewHashJoin(j1, engine.NewScan(t3src), j2BuildKeys, j2ProbeKeys, j2Outs,
		fmt.Sprintf("M%d.R3 = T3.R AND classes AND T2.z = T3.z", p))
	return engine.NewDistinct(j2, candidateKeyCols)
}

// factorsPlan builds Query 2-p: the join emitting ground factors
// (I1, I2, I3, w) for partition p. It mirrors atomsPlan but carries fact
// IDs and the rule weight, and additionally joins the rule head to
// resolve I1.
func (g *BatchGrounder) factorsPlan(p int, tpi *engine.Table) engine.Node {
	m := g.parts.Table(p)
	lay := layoutOf(p)
	_, body := mln.Shape(p)
	b0 := body[0]

	scanT := func() engine.Node { return engine.NewScan(tpi) }
	j1Keys := []int{lay.r2, lay.class[b0.Arg1], lay.class[b0.Arg2]}
	tKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2}
	headKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2, kb.TPiX, kb.TPiY}

	if len(body) == 1 {
		// J1 output: R1, CX, CY, xv, yv, I2, w.
		j1Outs := []engine.JoinOut{
			engine.BuildCol("R1", lay.r1),
			engine.BuildCol("CX", lay.class[mln.X]),
			engine.BuildCol("CY", lay.class[mln.Y]),
			engine.ProbeCol("xv", tCol(b0, mln.X)),
			engine.ProbeCol("yv", tCol(b0, mln.Y)),
			engine.ProbeCol("I2", kb.TPiI),
			engine.BuildCol("w", lay.w),
		}
		j1 := engine.NewHashJoin(engine.NewScan(m), scanT(), j1Keys, tKeys, j1Outs,
			fmt.Sprintf("M%d.R2 = T2.R AND classes", p))
		// Head join resolves I1.
		j2Outs := []engine.JoinOut{
			engine.ProbeCol("I1", kb.TPiI),
			engine.BuildCol("I2", 5),
			engine.BuildCol("w", 6),
		}
		j2 := engine.NewHashJoin(j1, scanT(), []int{0, 1, 2, 3, 4}, headKeys, j2Outs,
			fmt.Sprintf("M%d.R1 = T1.R AND head classes AND head args", p))
		return engine.NewProject(j2,
			engine.ColExpr("I1", 0),
			engine.ColExpr("I2", 1),
			engine.ConstI32Expr("I3", engine.NullInt32),
			engine.ColExpr("w", 2),
		)
	}

	b1 := body[1]
	// J1 output: R1, R3, CX, CY, CZ, xv, zv, I2, w.
	j1Outs := []engine.JoinOut{
		engine.BuildCol("R1", lay.r1),
		engine.BuildCol("R3", lay.r3),
		engine.BuildCol("CX", lay.class[mln.X]),
		engine.BuildCol("CY", lay.class[mln.Y]),
		engine.BuildCol("CZ", lay.class[mln.Z]),
		engine.ProbeCol("xv", tCol(b0, mln.X)),
		engine.ProbeCol("zv", tCol(b0, mln.Z)),
		engine.ProbeCol("I2", kb.TPiI),
		engine.BuildCol("w", lay.w),
	}
	j1 := engine.NewHashJoin(engine.NewScan(m), scanT(), j1Keys, tKeys, j1Outs,
		fmt.Sprintf("M%d.R2 = T2.R AND classes", p))

	varCol := map[mln.Var]int{mln.X: 2, mln.Y: 3, mln.Z: 4}
	j2BuildKeys := []int{1, varCol[b1.Arg1], varCol[b1.Arg2], 6}
	j2ProbeKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2, tCol(b1, mln.Z)}
	// J2 output: R1, CX, CY, xv, yv, I2, I3, w.
	j2Outs := []engine.JoinOut{
		engine.BuildCol("R1", 0),
		engine.BuildCol("CX", 2),
		engine.BuildCol("CY", 3),
		engine.BuildCol("xv", 5),
		engine.ProbeCol("yv", tCol(b1, mln.Y)),
		engine.BuildCol("I2", 7),
		engine.ProbeCol("I3", kb.TPiI),
		engine.BuildCol("w", 8),
	}
	j2 := engine.NewHashJoin(j1, scanT(), j2BuildKeys, j2ProbeKeys, j2Outs,
		fmt.Sprintf("M%d.R3 = T3.R AND classes AND T2.z = T3.z", p))

	j3Outs := []engine.JoinOut{
		engine.ProbeCol("I1", kb.TPiI),
		engine.BuildCol("I2", 5),
		engine.BuildCol("I3", 6),
		engine.BuildCol("w", 7),
	}
	return engine.NewHashJoin(j2, scanT(), []int{0, 1, 2, 3, 4}, headKeys, j3Outs,
		fmt.Sprintf("M%d.R1 = T1.R AND head classes AND head args", p))
}

// appendSingletonFactors emits one size-1 factor per observed (non-NULL
// weight) fact: groundFactors(TΠ) in Algorithm 1 line 10.
func appendSingletonFactors(factors, tpi *engine.Table) {
	ids := tpi.Int32Col(kb.TPiI)
	ws := tpi.Float64Col(kb.TPiW)
	for r := 0; r < tpi.NumRows(); r++ {
		if engine.IsNullFloat64(ws[r]) {
			continue
		}
		factors.AppendRow(ids[r], engine.NullInt32, engine.NullInt32, ws[r])
	}
}

// Ground is the one-call convenience: batch-ground k under opts.
func Ground(k *kb.KB, opts Options) (*Result, error) {
	g, err := NewBatch(k, opts)
	if err != nil {
		return nil, err
	}
	return g.Ground()
}

// Extend incrementally expands a previous grounding result with newly
// arrived facts: the prior closure is reused as-is and the first
// iteration joins only against the delta (semi-naive seeding), so the
// cost scales with the new data, not the whole KB. The rule set and
// options must describe the same MLN the prior run used; the factor
// phase, when enabled, recomputes TΦ over the combined closure.
func Extend(k *kb.KB, prev *Result, newFacts []kb.Fact, opts Options) (*Result, error) {
	g, err := NewBatch(k, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	loadStart := time.Now()
	tpi := prev.Facts.Clone()
	ix := newFactIndex(tpi)
	res.LoadTime = time.Since(loadStart)

	// Append the genuinely new facts with fresh IDs, preserving their
	// observation weights. The seed delta is everything at or above the
	// pre-append ID watermark.
	deltaMin := ix.next
	for _, f := range newFacts {
		probe := engine.NewTable("new", kb.FactsSchema())
		probe.AppendRow(int32(0), f.Rel, f.X, f.XClass, f.Y, f.YClass, f.W)
		if ix.set.Contains(probe, 0, tpiKeyCols) {
			continue
		}
		before := tpi.NumRows()
		tpi.AppendRow(ix.next, f.Rel, f.X, f.XClass, f.Y, f.YClass, f.W)
		ix.next++
		ix.set.NoteAppended(before)
	}
	res.BaseFacts = tpi.NumRows()

	return g.groundFrom(tpi, ix, deltaMin, res)
}
