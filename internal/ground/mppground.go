package ground

import (
	"fmt"
	"time"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/mpp"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

// The four distribution keys of Section 4.4: the paper materializes
// redistributed views of TΠ under exactly these key tuples, which cover
// every probe-side join the six grounding queries perform.
var (
	keyRCC   = []int{kb.TPiR, kb.TPiC1, kb.TPiC2}
	keyRCxC  = []int{kb.TPiR, kb.TPiC1, kb.TPiC2, kb.TPiX}
	keyRCCy  = []int{kb.TPiR, kb.TPiC1, kb.TPiC2, kb.TPiY}
	keyRCxCy = []int{kb.TPiR, kb.TPiC1, kb.TPiC2, kb.TPiX, kb.TPiY}
)

// MPPGrounder runs Algorithm 1 on the mpp cluster substrate: ProbKB-p
// when redistributed materialized views are enabled, ProbKB-pn when they
// are not (the two MPP configurations of Figure 6(c)).
type MPPGrounder struct {
	kb       *kb.KB
	parts    *mln.Partitions
	opts     Options
	cluster  *mpp.Cluster
	useViews bool

	tpi   *engine.Table // master copy
	ix    *factIndex
	dT    *mpp.DistTable
	views *mpp.Views
	repM  [mln.NumPartitions + 1]*mpp.DistTable
	// distributedLen is how many master rows the cluster copies already
	// hold; rows beyond it are appended incrementally.
	distributedLen int
}

// NewMPP prepares an MPP grounder. useViews selects ProbKB-p (true) or
// ProbKB-pn (false).
func NewMPP(k *kb.KB, opts Options, cluster *mpp.Cluster, useViews bool) (*MPPGrounder, error) {
	parts, err := k.MLNPartitions()
	if err != nil {
		return nil, fmt.Errorf("ground: partitioning rules: %w", err)
	}
	return &MPPGrounder{kb: k, parts: parts, opts: opts, cluster: cluster, useViews: useViews}, nil
}

// load distributes the facts table and replicates the MLN tables across
// the cluster; with views enabled it also materializes the four
// redistributed views.
func (g *MPPGrounder) load() error {
	if err := g.cluster.Err(); err != nil {
		return err
	}
	g.tpi = g.kb.FactsTable()
	g.ix = newFactIndex(g.tpi)
	if err := g.redistribute(); err != nil {
		return err
	}
	for _, p := range g.parts.NonEmpty() {
		g.repM[p] = g.cluster.Replicate(g.parts.Table(p))
	}
	return nil
}

// redistribute reloads the distributed facts table from the master copy
// and rebuilds the views from scratch (initial load, and after
// constraint deletions invalidate the copies). Only the three views the
// groundAtoms queries probe are built here; the head-join view of the
// factor phase is materialized lazily by ensureHeadView.
func (g *MPPGrounder) redistribute() error {
	// The base table is distributed by fact ID — a fine key for storage
	// balance, but never a join key; the views (or motions) supply join
	// placement.
	g.dT = g.cluster.Distribute(g.tpi, []int{kb.TPiI})
	if err := g.dT.Err(); err != nil {
		return err
	}
	g.distributedLen = g.tpi.NumRows()
	if !g.useViews {
		g.views = nil
		return nil
	}
	g.views = mpp.NewViews(g.cluster)
	for _, key := range [][]int{keyRCC, keyRCxC, keyRCCy} {
		if v := g.views.Materialize(g.dT, key); v.Err() != nil {
			return v.Err()
		}
	}
	return nil
}

// ensureHeadView materializes the (R, C1, x, C2, y) view the factor
// phase's head joins probe; grounding iterations never use it, so it is
// built once, just in time.
func (g *MPPGrounder) ensureHeadView() error {
	if g.views == nil {
		return nil
	}
	if _, ok := g.views.Lookup(g.dT.Name(), keyRCxCy); !ok {
		if v := g.views.Materialize(g.dT, keyRCxCy); v.Err() != nil {
			return v.Err()
		}
	}
	return nil
}

// appendDelta incrementally ships the master rows added since the last
// distribution to the cluster copies and views (Algorithm 1 line 7, the
// common no-deletion case).
func (g *MPPGrounder) appendDelta() error {
	from := g.distributedLen
	if err := g.dT.AppendFrom(g.tpi, from); err != nil {
		return err
	}
	if g.views != nil {
		if err := g.views.AppendFrom(g.dT.Name(), g.tpi, from); err != nil {
			return err
		}
	}
	g.distributedLen = g.tpi.NumRows()
	return nil
}

// Ground runs the distributed Algorithm 1.
func (g *MPPGrounder) Ground() (*Result, error) {
	ctx, span := obs.StartSpan(g.opts.ctxOf(), "ground")
	defer span.End()
	span.SetAttr("segments", g.cluster.NumSegments())
	span.SetAttr("views", g.useViews)
	res := &Result{}

	loadStart := time.Now()
	_, loadSpan := obs.StartSpan(ctx, "ground.load")
	err := g.load()
	loadSpan.End()
	if err != nil {
		return nil, fmt.Errorf("ground: mpp load: %w", err)
	}
	res.LoadTime = time.Since(loadStart)
	res.BaseFacts = g.tpi.NumRows()

	active := g.parts.NonEmpty()

	atomStart := time.Now()
	atomsCtx, atomsSpan := obs.StartSpan(ctx, "ground.atoms")
	// partial packages what grounding completed so far so a cancelled run
	// can hand back a usable PartialError instead of discarding work.
	partial := func(err error) (*Result, error) {
		res.Facts = g.tpi
		res.AtomTime = time.Since(atomStart)
		return res, err
	}

	maxIters := g.opts.MaxIterations
	for iter := 1; maxIters == 0 || iter <= maxIters; iter++ {
		// Cooperative cancellation: check at every fixpoint iteration.
		if err := atomsCtx.Err(); err != nil {
			atomsSpan.End()
			return partial(err)
		}
		iterStart := time.Now()
		_, iterSpan := obs.StartSpan(atomsCtx, "iteration")
		st := IterStats{Iteration: iter}

		candidates := make([]*engine.Table, 0, len(active))
		candRows := 0
		for _, p := range active {
			plan := g.atomsPlanMPP(p)
			planStart := time.Now()
			out, err := plan.Run()
			if err != nil {
				iterSpan.End()
				atomsSpan.End()
				return partial(fmt.Errorf("ground: mpp partition %d atoms query: %w", p, err))
			}
			observePartition("atoms", p, time.Since(planStart))
			mpp.ObservePlan("mpp-atoms", plan)
			g.opts.Journal.EmitProfile(journal.QueryProfile{
				Query: "mpp-atoms", Partition: p, Iteration: iter,
				Plan: journal.Capture[mpp.Node](plan),
			})
			st.Queries++
			candidates = append(candidates, mpp.Gather(out))
		}
		for _, c := range candidates {
			candRows += c.NumRows()
			st.NewFacts += g.ix.merge(c)
		}
		if g.opts.ConstraintHook != nil {
			st.Deleted = g.opts.ConstraintHook(g.tpi)
			if st.Deleted > 0 {
				g.ix.rebuild()
			}
		}
		// Maintain the cluster copies for whoever reads them next — the
		// next iteration or the factor phase. When this is the final
		// iteration and no factor phase follows, the maintenance would
		// feed nobody; skip it.
		lastIter := st.NewFacts == 0 || (maxIters != 0 && iter == maxIters)
		needFresh := !lastIter || !g.opts.SkipFactors
		if needFresh {
			var err error
			switch {
			case st.Deleted > 0:
				// Deletions invalidate the cluster copies; rebuild.
				err = g.redistribute()
			case st.NewFacts > 0:
				// The common case: incrementally maintain the distributed
				// table and its views with just the new rows.
				err = g.appendDelta()
			}
			if err != nil {
				iterSpan.End()
				atomsSpan.End()
				return partial(fmt.Errorf("ground: mpp view maintenance: %w", err))
			}
		}

		st.Elapsed = time.Since(iterStart)
		res.PerIteration = append(res.PerIteration, st)
		res.Iterations = iter
		res.AtomQueries += st.Queries
		observeIteration(st, candRows-st.NewFacts)
		iterSpan.SetAttr("iter", iter)
		iterSpan.SetAttr("new_facts", st.NewFacts)
		iterSpan.SetAttr("deleted", st.Deleted)
		iterSpan.SetAttr("queries", st.Queries)
		iterSpan.End()
		emitIteration(g.opts.Journal, st)
		if g.opts.OnIteration != nil {
			g.opts.OnIteration(st)
		}
		if st.NewFacts == 0 {
			res.Converged = true
			break
		}
	}
	res.AtomTime = time.Since(atomStart)
	res.Facts = g.tpi
	atomsSpan.SetAttr("iterations", res.Iterations)
	atomsSpan.SetAttr("facts", g.tpi.NumRows())
	atomsSpan.End()
	span.SetAttr("base_facts", res.BaseFacts)
	span.SetAttr("inferred_facts", res.InferredFacts())

	if g.opts.SkipFactors {
		return res, nil
	}

	factorStart := time.Now()
	factorsCtx, factorsSpan := obs.StartSpan(ctx, "ground.factors")
	if err := g.ensureHeadView(); err != nil {
		factorsSpan.End()
		return res, fmt.Errorf("ground: mpp head view: %w", err)
	}
	factors := engine.NewTable("TPhi", FactorSchema())
	for _, p := range active {
		// Cooperative cancellation: check between factor queries. The
		// grounded facts survive in the partial result; only the factor
		// table is incomplete.
		if err := factorsCtx.Err(); err != nil {
			factorsSpan.End()
			return res, err
		}
		plan := g.factorsPlanMPP(p)
		planStart := time.Now()
		out, err := plan.Run()
		if err != nil {
			factorsSpan.End()
			return res, fmt.Errorf("ground: mpp partition %d factors query: %w", p, err)
		}
		observePartition("factors", p, time.Since(planStart))
		mpp.ObservePlan("mpp-factors", plan)
		g.opts.Journal.EmitProfile(journal.QueryProfile{
			Query: "mpp-factors", Partition: p,
			Plan: journal.Capture[mpp.Node](plan),
		})
		res.FactorQueries++
		factors.AppendTable(mpp.Gather(out))
	}
	appendSingletonFactors(factors, g.tpi)
	res.FactorQueries++
	obs.Default.Counter("probkb_ground_queries_total", obs.L("phase", "factors")).Add(int64(res.FactorQueries))
	res.Factors = factors
	res.FactorTime = time.Since(factorStart)
	factorsSpan.SetAttr("factors", factors.NumRows())
	factorsSpan.End()
	return res, nil
}

// probeT returns the scan the planner should use for a TΠ probe joined on
// key: the matching view when views are on (no motion), the base table
// otherwise (the planner will insert a motion).
func (g *MPPGrounder) probeT() mpp.Node { return mpp.NewScan(g.dT) }

// Load distributes the facts and MLN tables without grounding; the
// Figure 4 harness uses it to build standalone plans.
func (g *MPPGrounder) Load() error { return g.load() }

// AtomsPlan exposes the distributed groundAtoms plan for partition p; the
// Figure 4 harness uses it to print optimized vs unoptimized plans.
func (g *MPPGrounder) AtomsPlan(p int) mpp.Node { return g.atomsPlanMPP(p) }

// atomsPlanMPP mirrors BatchGrounder.atomsPlan on the cluster.
func (g *MPPGrounder) atomsPlanMPP(p int) mpp.Node {
	lay := layoutOf(p)
	_, body := mln.Shape(p)
	b0 := body[0]
	scanM := mpp.NewScan(g.repM[p])

	j1Keys := []int{lay.r2, lay.class[b0.Arg1], lay.class[b0.Arg2]}

	if len(body) == 1 {
		outs := []engine.JoinOut{
			engine.BuildCol("R", lay.r1),
			engine.ProbeCol("x", tCol(b0, mln.X)),
			engine.BuildCol("C1", lay.class[mln.X]),
			engine.ProbeCol("y", tCol(b0, mln.Y)),
			engine.BuildCol("C2", lay.class[mln.Y]),
		}
		return mpp.PlanJoin(scanM, g.probeT(), j1Keys, keyRCC, outs,
			fmt.Sprintf("M%d.R2 = T.R AND classes", p), g.views)
	}

	b1 := body[1]
	j1Outs := []engine.JoinOut{
		engine.BuildCol("R1", lay.r1),
		engine.BuildCol("R3", lay.r3),
		engine.BuildCol("CX", lay.class[mln.X]),
		engine.BuildCol("CY", lay.class[mln.Y]),
		engine.BuildCol("CZ", lay.class[mln.Z]),
		engine.ProbeCol("xv", tCol(b0, mln.X)),
		engine.ProbeCol("zv", tCol(b0, mln.Z)),
	}
	j1 := mpp.PlanJoin(scanM, g.probeT(), j1Keys, keyRCC, j1Outs,
		fmt.Sprintf("M%d.R2 = T2.R AND classes", p), g.views)

	varCol := map[mln.Var]int{mln.X: 2, mln.Y: 3, mln.Z: 4}
	j2BuildKeys := []int{1, varCol[b1.Arg1], varCol[b1.Arg2], 6}
	j2ProbeKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2, tCol(b1, mln.Z)}
	j2Outs := []engine.JoinOut{
		engine.BuildCol("R", 0),
		engine.BuildCol("x", 5),
		engine.BuildCol("C1", 2),
		engine.ProbeCol("y", tCol(b1, mln.Y)),
		engine.BuildCol("C2", 3),
	}
	return mpp.PlanJoin(j1, g.probeT(), j2BuildKeys, j2ProbeKeys, j2Outs,
		fmt.Sprintf("M%d.R3 = T3.R AND classes AND T2.z = T3.z", p), g.views)
}

// factorsPlanMPP mirrors BatchGrounder.factorsPlan on the cluster.
func (g *MPPGrounder) factorsPlanMPP(p int) mpp.Node {
	lay := layoutOf(p)
	_, body := mln.Shape(p)
	b0 := body[0]
	scanM := mpp.NewScan(g.repM[p])

	j1Keys := []int{lay.r2, lay.class[b0.Arg1], lay.class[b0.Arg2]}
	headProbeKeys := keyRCxCy

	if len(body) == 1 {
		j1Outs := []engine.JoinOut{
			engine.BuildCol("R1", lay.r1),
			engine.BuildCol("CX", lay.class[mln.X]),
			engine.BuildCol("CY", lay.class[mln.Y]),
			engine.ProbeCol("xv", tCol(b0, mln.X)),
			engine.ProbeCol("yv", tCol(b0, mln.Y)),
			engine.ProbeCol("I2", kb.TPiI),
			engine.BuildCol("w", lay.w),
		}
		j1 := mpp.PlanJoin(scanM, g.probeT(), j1Keys, keyRCC, j1Outs,
			fmt.Sprintf("M%d.R2 = T2.R AND classes", p), g.views)
		j2Outs := []engine.JoinOut{
			engine.ProbeCol("I1", kb.TPiI),
			engine.BuildCol("I2", 5),
			engine.BuildCol("w", 6),
		}
		j2 := mpp.PlanJoin(j1, g.probeT(), []int{0, 1, 2, 3, 4}, headProbeKeys, j2Outs,
			fmt.Sprintf("M%d.R1 = T1.R AND head", p), g.views)
		return mpp.NewProject(j2,
			engine.ColExpr("I1", 0),
			engine.ColExpr("I2", 1),
			engine.ConstI32Expr("I3", engine.NullInt32),
			engine.ColExpr("w", 2),
		)
	}

	b1 := body[1]
	j1Outs := []engine.JoinOut{
		engine.BuildCol("R1", lay.r1),
		engine.BuildCol("R3", lay.r3),
		engine.BuildCol("CX", lay.class[mln.X]),
		engine.BuildCol("CY", lay.class[mln.Y]),
		engine.BuildCol("CZ", lay.class[mln.Z]),
		engine.ProbeCol("xv", tCol(b0, mln.X)),
		engine.ProbeCol("zv", tCol(b0, mln.Z)),
		engine.ProbeCol("I2", kb.TPiI),
		engine.BuildCol("w", lay.w),
	}
	j1 := mpp.PlanJoin(scanM, g.probeT(), j1Keys, keyRCC, j1Outs,
		fmt.Sprintf("M%d.R2 = T2.R AND classes", p), g.views)

	varCol := map[mln.Var]int{mln.X: 2, mln.Y: 3, mln.Z: 4}
	j2BuildKeys := []int{1, varCol[b1.Arg1], varCol[b1.Arg2], 6}
	j2ProbeKeys := []int{kb.TPiR, kb.TPiC1, kb.TPiC2, tCol(b1, mln.Z)}
	j2Outs := []engine.JoinOut{
		engine.BuildCol("R1", 0),
		engine.BuildCol("CX", 2),
		engine.BuildCol("CY", 3),
		engine.BuildCol("xv", 5),
		engine.ProbeCol("yv", tCol(b1, mln.Y)),
		engine.BuildCol("I2", 7),
		engine.ProbeCol("I3", kb.TPiI),
		engine.BuildCol("w", 8),
	}
	j2 := mpp.PlanJoin(j1, g.probeT(), j2BuildKeys, j2ProbeKeys, j2Outs,
		fmt.Sprintf("M%d.R3 = T3.R AND classes AND T2.z = T3.z", p), g.views)

	j3Outs := []engine.JoinOut{
		engine.ProbeCol("I1", kb.TPiI),
		engine.BuildCol("I2", 5),
		engine.BuildCol("I3", 6),
		engine.BuildCol("w", 7),
	}
	return mpp.PlanJoin(j2, g.probeT(), []int{0, 1, 2, 3, 4}, headProbeKeys, j3Outs,
		fmt.Sprintf("M%d.R1 = T1.R AND head", p), g.views)
}
