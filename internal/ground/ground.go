// Package ground implements MLN grounding over the relational model of
// Section 4 of the paper — the system's core contribution.
//
// Two grounders share identical semantics:
//
//   - BatchGrounder (probkb mode, Algorithm 1): applies *all rules of a
//     partition at once* by joining the MLN table Mi against the facts
//     table TΠ — O(k) queries per iteration for k non-empty partitions,
//     regardless of rule count. It runs on the single-node engine or,
//     through the mpp planner, on a Greenplum-style cluster with
//     redistributed materialized views.
//
//   - TuffyGrounder (the Tuffy-T baseline of Section 6.1): one table per
//     relation and one join query per rule — O(n) queries per iteration
//     for n rules.
//
// Grounding is two phases (Algorithm 1): groundAtoms computes the
// transitive closure of the facts under the rules, then groundFactors
// replays the joins carrying fact IDs to emit the ground factor table TΦ
// (Definition 7), including singleton factors for the observed facts.
package ground

import (
	"context"
	"fmt"
	"time"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

// Grounding metrics, accumulated across runs by every grounder
// (batch, MPP, and the Tuffy baseline).
func init() {
	obs.Default.Help("probkb_ground_iterations_total", "Grounding closure iterations executed.")
	obs.Default.Help("probkb_ground_facts_total", "New facts produced by grounding iterations.")
	obs.Default.Help("probkb_ground_facts_deduped_total", "Candidate facts dropped as duplicates during merge.")
	obs.Default.Help("probkb_ground_facts_deleted_total", "Facts removed by the constraint hook during grounding.")
	obs.Default.Help("probkb_ground_queries_total", "Join queries issued, by grounding phase.")
	obs.Default.Help("probkb_ground_partition_seconds", "Per-rule-partition batch query time, by phase.")
}

// ctxOf returns the options' tracing context, defaulting to background.
func (o Options) ctxOf() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// observeIteration accumulates one closure iteration's counters.
func observeIteration(st IterStats, deduped int) {
	obs.Default.Counter("probkb_ground_iterations_total").Inc()
	obs.Default.Counter("probkb_ground_facts_total").Add(int64(st.NewFacts))
	obs.Default.Counter("probkb_ground_facts_deduped_total").Add(int64(deduped))
	obs.Default.Counter("probkb_ground_facts_deleted_total").Add(int64(st.Deleted))
	obs.Default.Counter("probkb_ground_queries_total", obs.L("phase", "atoms")).Add(int64(st.Queries))
}

// observePartition records one partition batch query's wall time.
func observePartition(phase string, partition int, elapsed time.Duration) {
	obs.Default.Histogram("probkb_ground_partition_seconds", nil,
		obs.L("phase", phase), obs.L("partition", fmt.Sprintf("P%d", partition))).
		Observe(elapsed.Seconds())
}

// Factor-table column indices (Definition 7): a row (I1, I2, I3, w) is a
// weighted ground rule I1 ← I2 [, I3]; I2 and I3 are NULL for factors of
// size 2 or 1.
const (
	TPhiI1 = 0
	TPhiI2 = 1
	TPhiI3 = 2
	TPhiW  = 3
)

// FactorSchema returns the schema of TΦ.
func FactorSchema() engine.Schema {
	return engine.NewSchema(
		engine.C("I1", engine.Int32),
		engine.C("I2", engine.Int32),
		engine.C("I3", engine.Int32),
		engine.C("w", engine.Float64),
	)
}

// IterStats records what one grounding iteration did.
type IterStats struct {
	Iteration int
	NewFacts  int
	Deleted   int // facts removed by the constraint hook
	Queries   int
	Elapsed   time.Duration
}

// Result is the output of a grounding run.
type Result struct {
	// Facts is the final TΠ: observed facts (weighted) plus inferred
	// facts (NULL weight), one row per distinct fact.
	Facts *engine.Table
	// Factors is TΦ.
	Factors *engine.Table
	// BaseFacts is the number of facts present before inference.
	BaseFacts int
	// Iterations actually executed.
	Iterations int
	// Converged reports whether a fixpoint was reached (no new facts in
	// the final iteration) rather than the iteration cap.
	Converged bool
	// PerIteration has one entry per executed iteration.
	PerIteration []IterStats
	// AtomQueries and FactorQueries count the join queries issued in each
	// phase — the O(k) vs O(n) comparison of Section 4.3.1.
	AtomQueries   int
	FactorQueries int
	// LoadTime, AtomTime, FactorTime break down the wall clock.
	LoadTime   time.Duration
	AtomTime   time.Duration
	FactorTime time.Duration
}

// InferredFacts returns how many facts grounding added.
func (r *Result) InferredFacts() int {
	return r.Facts.NumRows() - r.BaseFacts
}

// Options configures a grounding run.
type Options struct {
	// Ctx carries the caller's tracing context; grounders attach their
	// "ground" span tree beneath the span it carries (see internal/obs).
	// nil means context.Background().
	Ctx context.Context
	// MaxIterations caps the closure loop; 0 means run to fixpoint.
	MaxIterations int
	// ConstraintHook, when non-nil, is invoked on TΠ after each
	// iteration's merge (Algorithm 1 line 6, applyConstraints). It must
	// delete offending rows in place and return how many it removed.
	ConstraintHook func(tpi *engine.Table) int
	// SkipFactors skips the groundFactors phase (Query 2); the scaling
	// experiments of Figure 6(a)/(b) time only the first phase.
	SkipFactors bool
	// SemiNaive switches the closure loop to semi-naive evaluation:
	// iteration i joins each partition against the *delta* of facts new
	// in iteration i-1 (for two-atom bodies, Δ⋈T ∪ T⋈Δ), instead of
	// re-joining the full table. Same fixpoint, less rework on deep
	// closures. The paper uses naive evaluation; this is the ablation
	// DESIGN.md calls out. The delta is tracked by fact-ID watermark, so
	// constraint deletions leave semi-naive armed: a removed fact drops
	// out of the next delta and a re-derived one re-enters it under a
	// fresh ID — no naive fallback.
	SemiNaive bool
	// Workers is the engine worker-pool size grounding query plans run
	// with (engine.Opts.Workers): 0 means the engine default
	// (runtime.NumCPU()), 1 forces serial execution. Results are
	// identical for every setting.
	Workers int
	// OnIteration, when non-nil, observes each iteration's stats.
	OnIteration func(IterStats)
	// Observer, when non-nil, sees the facts table after each iteration's
	// merge and constraint pass (read-only). The Figure 7(a) harness uses
	// it to score precision per iteration.
	Observer func(iter int, tpi *engine.Table)
	// Journal, when non-nil, receives this run's structured events:
	// per-iteration stats and per-partition query profiles with full
	// operator trees (motions included on the MPP grounders). Writer
	// methods are nil-safe, so emissions below never guard.
	Journal *journal.Writer
}

// emitIteration records one closure iteration into the run journal.
func emitIteration(w *journal.Writer, st IterStats) {
	w.Emit(journal.TypeIteration, journal.Iteration{
		Phase:     "ground",
		Iteration: st.Iteration,
		NewFacts:  st.NewFacts,
		Deleted:   st.Deleted,
		Queries:   st.Queries,
		Seconds:   st.Elapsed.Seconds(),
	})
}

// factIndex tracks the distinct facts of a TΠ table by their identity key
// (R, x, C1, y, C2) and hands out the next fact ID.
type factIndex struct {
	set  *engine.RowSet
	tpi  *engine.Table
	next int32
}

// tpiKeyCols are the identity columns of TΠ.
var tpiKeyCols = []int{kb.TPiR, kb.TPiX, kb.TPiC1, kb.TPiY, kb.TPiC2}

func newFactIndex(tpi *engine.Table) *factIndex {
	next := int32(0)
	ids := tpi.Int32Col(kb.TPiI)
	for _, id := range ids {
		if id >= next {
			next = id + 1
		}
	}
	return &factIndex{set: engine.NewRowSet(tpi, tpiKeyCols), tpi: tpi, next: next}
}

// candidateKeyCols are the identity columns of a groundAtoms result
// (schema R, x, C1, y, C2).
var candidateKeyCols = []int{0, 1, 2, 3, 4}

// merge appends the rows of candidates (schema (R, x, C1, y, C2)) that
// are not yet in TΠ, assigning fresh IDs and NULL weights; it returns the
// number of new facts.
func (ix *factIndex) merge(candidates *engine.Table) int {
	added := 0
	r32 := candidates.Int32Col(0)
	x32 := candidates.Int32Col(1)
	c132 := candidates.Int32Col(2)
	y32 := candidates.Int32Col(3)
	c232 := candidates.Int32Col(4)
	for r := 0; r < candidates.NumRows(); r++ {
		if ix.set.Contains(candidates, r, candidateKeyCols) {
			continue
		}
		before := ix.tpi.NumRows()
		ix.tpi.AppendRow(ix.next, r32[r], x32[r], c132[r], y32[r], c232[r], engine.NullFloat64())
		ix.next++
		ix.set.NoteAppended(before)
		added++
	}
	return added
}

// rebuild re-indexes TΠ after in-place deletions.
func (ix *factIndex) rebuild() {
	ix.set = engine.NewRowSet(ix.tpi, tpiKeyCols)
}

// ---------------------------------------------------------------------------
// Join-shape derivation
//
// Everything below derives the grounding joins from the canonical shape
// of each partition, so Queries 1-i and 2-i for all six partitions come
// out of one generator.

// mCols describes the column layout of an MLN partition table.
type mCols struct {
	r1, r2, r3 int // r3 = -1 for length-2 partitions
	w          int
	class      [3]int // class column per canonical variable X, Y, Z (Z = -1 if absent)
}

// layoutOf returns the column layout of partition p's table.
func layoutOf(p int) mCols {
	if p == mln.P1 || p == mln.P2 {
		return mCols{r1: 0, r2: 1, r3: -1, w: 4, class: [3]int{2, 3, -1}}
	}
	return mCols{r1: 0, r2: 1, r3: 2, w: 6, class: [3]int{3, 4, 5}}
}

// atomSide tells where an atom's variables sit in a TΠ row: the variable
// in the subject position (T.x) and in the object position (T.y).
func atomSide(a mln.Atom) (subj, obj mln.Var) { return a.Arg1, a.Arg2 }

// tCol returns the TΠ value column holding variable v of atom a, given
// that the row matched atom a.
func tCol(a mln.Atom, v mln.Var) int {
	if a.Arg1 == v {
		return kb.TPiX
	}
	if a.Arg2 == v {
		return kb.TPiY
	}
	panic(fmt.Sprintf("ground: atom %v does not mention %v", a, v))
}

// hasVar reports whether atom a mentions v.
func hasVar(a mln.Atom, v mln.Var) bool { return a.Arg1 == v || a.Arg2 == v }
