package ground

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/mpp"
)

// paperKB reconstructs the running example of Table 1 / Figure 3.
func paperKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New()
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	for _, line := range []string{
		"1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"1.53 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)",
		"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)",
		"0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)",
	} {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

// factSet extracts the set of fact keys from a TΠ table.
func factSet(t *engine.Table) map[kb.Key]bool {
	out := make(map[kb.Key]bool, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		out[kb.FactAtRow(t, r).Key()] = true
	}
	return out
}

// factorKey is a comparable rendering of one factor, with fact IDs
// resolved to fact keys so different grounders (which may assign
// different IDs) can be compared.
type factorKey struct {
	f1, f2, f3 kb.Key
	has2, has3 bool
	w          float64
}

func factorMultiset(t *testing.T, res *Result) map[factorKey]int {
	t.Helper()
	// Map fact ID → key.
	byID := make(map[int32]kb.Key, res.Facts.NumRows())
	ids := res.Facts.Int32Col(kb.TPiI)
	for r := 0; r < res.Facts.NumRows(); r++ {
		byID[ids[r]] = kb.FactAtRow(res.Facts, r).Key()
	}
	out := make(map[factorKey]int)
	i1s := res.Factors.Int32Col(TPhiI1)
	i2s := res.Factors.Int32Col(TPhiI2)
	i3s := res.Factors.Int32Col(TPhiI3)
	ws := res.Factors.Float64Col(TPhiW)
	for r := 0; r < res.Factors.NumRows(); r++ {
		fk := factorKey{w: ws[r]}
		var ok bool
		if fk.f1, ok = byID[i1s[r]]; !ok {
			t.Fatalf("factor row %d references unknown fact %d", r, i1s[r])
		}
		if i2s[r] != engine.NullInt32 {
			fk.has2 = true
			if fk.f2, ok = byID[i2s[r]]; !ok {
				t.Fatalf("factor row %d references unknown fact %d", r, i2s[r])
			}
		}
		if i3s[r] != engine.NullInt32 {
			fk.has3 = true
			if fk.f3, ok = byID[i3s[r]]; !ok {
				t.Fatalf("factor row %d references unknown fact %d", r, i3s[r])
			}
		}
		out[fk]++
	}
	return out
}

func factorsEqual(a, b map[factorKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// bruteForceClosure computes the fact closure by direct semantic rule
// application — the oracle the relational grounders must match.
func bruteForceClosure(k *kb.KB) map[kb.Key]bool {
	facts := make(map[kb.Key]bool)
	for _, f := range k.Facts {
		facts[f.Key()] = true
	}
	matches := func(key kb.Key, a mln.Atom, c *mln.Clause) bool {
		return key.Rel == a.Rel && key.XClass == c.Class[a.Arg1] && key.YClass == c.Class[a.Arg2]
	}
	for changed := true; changed; {
		changed = false
		var newKeys []kb.Key
		for i := range k.Rules {
			c := &k.Rules[i]
			if len(c.Body) == 1 {
				b := c.Body[0]
				for key := range facts {
					if !matches(key, b, c) {
						continue
					}
					val := map[mln.Var]int32{b.Arg1: key.X, b.Arg2: key.Y}
					h := kb.Key{Rel: c.Head.Rel, X: val[mln.X], XClass: c.Class[mln.X],
						Y: val[mln.Y], YClass: c.Class[mln.Y]}
					if !facts[h] {
						newKeys = append(newKeys, h)
					}
				}
				continue
			}
			b0, b1 := c.Body[0], c.Body[1]
			for k0 := range facts {
				if !matches(k0, b0, c) {
					continue
				}
				v0 := map[mln.Var]int32{b0.Arg1: k0.X, b0.Arg2: k0.Y}
				for k1 := range facts {
					if !matches(k1, b1, c) {
						continue
					}
					v1 := map[mln.Var]int32{b1.Arg1: k1.X, b1.Arg2: k1.Y}
					if v0[mln.Z] != v1[mln.Z] {
						continue
					}
					h := kb.Key{Rel: c.Head.Rel, X: v0[mln.X], XClass: c.Class[mln.X],
						Y: v1[mln.Y], YClass: c.Class[mln.Y]}
					if !facts[h] {
						newKeys = append(newKeys, h)
					}
				}
			}
		}
		for _, nk := range newKeys {
			if !facts[nk] {
				facts[nk] = true
				changed = true
			}
		}
	}
	return facts
}

func TestBatchGroundPaperExample(t *testing.T) {
	k := paperKB(t)
	res, err := Ground(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("grounding did not converge")
	}
	if res.BaseFacts != 2 {
		t.Fatalf("base facts = %d, want 2", res.BaseFacts)
	}
	// Expected closure: 2 observed + live_in(RG, Brooklyn), live_in(RG,
	// NYC), located_in(Brooklyn, NYC) = 5 facts.
	if res.Facts.NumRows() != 5 {
		t.Fatalf("closure has %d facts, want 5:\n%s", res.Facts.NumRows(), res.Facts)
	}
	if res.InferredFacts() != 3 {
		t.Fatalf("inferred = %d, want 3", res.InferredFacts())
	}
	got := factSet(res.Facts)
	liveIn, _ := k.RelDict.Lookup("live_in")
	locatedIn, _ := k.RelDict.Lookup("located_in")
	writer, _ := k.Classes.Lookup("Writer")
	place, _ := k.Classes.Lookup("Place")
	city, _ := k.Classes.Lookup("City")
	rg, _ := k.Entities.Lookup("Ruth_Gruber")
	nyc, _ := k.Entities.Lookup("New_York_City")
	br, _ := k.Entities.Lookup("Brooklyn")
	for _, want := range []kb.Key{
		{Rel: liveIn, X: rg, XClass: writer, Y: br, YClass: place},
		{Rel: liveIn, X: rg, XClass: writer, Y: nyc, YClass: city},
		{Rel: locatedIn, X: br, XClass: place, Y: nyc, YClass: city},
	} {
		if !got[want] {
			t.Fatalf("missing inferred fact %+v in %v", want, got)
		}
	}
	// Factors: 2 singletons + 2 from M1 + 2 from M3 = 6 (Figure 3(e)
	// minus the grow_up_in rules this KB omits).
	if res.Factors.NumRows() != 6 {
		t.Fatalf("factors = %d, want 6:\n%s", res.Factors.NumRows(), res.Factors)
	}
	// Inferred facts carry NULL weights.
	nulls := 0
	for r := 0; r < res.Facts.NumRows(); r++ {
		if engine.IsNullFloat64(res.Facts.Float64Col(kb.TPiW)[r]) {
			nulls++
		}
	}
	if nulls != 3 {
		t.Fatalf("NULL-weight facts = %d, want 3", nulls)
	}
}

func TestBatchGroundFactorWeights(t *testing.T) {
	k := paperKB(t)
	res, err := Ground(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Collect factor weights; expect the 4 rule weights and 2 fact weights.
	var ws []float64
	for r := 0; r < res.Factors.NumRows(); r++ {
		ws = append(ws, res.Factors.Float64Col(TPhiW)[r])
	}
	sort.Float64s(ws)
	want := []float64{0.32, 0.52, 0.93, 0.96, 1.40, 1.53}
	if len(ws) != len(want) {
		t.Fatalf("weights = %v", ws)
	}
	for i := range want {
		if math.Abs(ws[i]-want[i]) > 1e-9 {
			t.Fatalf("weights = %v, want %v", ws, want)
		}
	}
}

func TestBatchMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		k := randomKB(rand.New(rand.NewSource(seed)))
		res, err := Ground(k, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForceClosure(k)
		got := factSet(res.Facts)
		if len(got) != len(want) {
			t.Fatalf("seed %d: closure size %d, oracle %d", seed, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("seed %d: oracle fact %+v missing", seed, key)
			}
		}
	}
}

// randomKB builds a small random KB whose rules actually fire: a handful
// of classes, relation names used by both facts and rules.
func randomKB(rng *rand.Rand) *kb.KB {
	k := kb.New()
	classes := []string{"A", "B", "C"}
	rels := []string{"r0", "r1", "r2", "r3", "r4"}
	ents := []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"}

	nf := 8 + rng.Intn(12)
	for i := 0; i < nf; i++ {
		k.InternFact(
			rels[rng.Intn(len(rels))],
			ents[rng.Intn(len(ents))], classes[rng.Intn(len(classes))],
			ents[rng.Intn(len(ents))], classes[rng.Intn(len(classes))],
			0.5+rng.Float64()/2)
	}
	nr := 3 + rng.Intn(6)
	for i := 0; i < nr; i++ {
		cls := map[int]int32{
			0: k.Classes.Intern(classes[rng.Intn(len(classes))]),
			1: k.Classes.Intern(classes[rng.Intn(len(classes))]),
			2: k.Classes.Intern(classes[rng.Intn(len(classes))]),
		}
		relID := func() int32 { return k.RelDict.Intern(rels[rng.Intn(len(rels))]) }
		head := mln.RawAtom{Rel: relID(), Arg1: 0, Arg2: 1}
		var body []mln.RawAtom
		switch rng.Intn(6) {
		case 0:
			body = []mln.RawAtom{{Rel: relID(), Arg1: 0, Arg2: 1}}
		case 1:
			body = []mln.RawAtom{{Rel: relID(), Arg1: 1, Arg2: 0}}
		case 2:
			body = []mln.RawAtom{{Rel: relID(), Arg1: 2, Arg2: 0}, {Rel: relID(), Arg1: 2, Arg2: 1}}
		case 3:
			body = []mln.RawAtom{{Rel: relID(), Arg1: 0, Arg2: 2}, {Rel: relID(), Arg1: 2, Arg2: 1}}
		case 4:
			body = []mln.RawAtom{{Rel: relID(), Arg1: 2, Arg2: 0}, {Rel: relID(), Arg1: 1, Arg2: 2}}
		case 5:
			body = []mln.RawAtom{{Rel: relID(), Arg1: 0, Arg2: 2}, {Rel: relID(), Arg1: 1, Arg2: 2}}
		}
		c, err := mln.Canonicalize(head, body, cls, 0.1+rng.Float64())
		if err != nil {
			panic(err)
		}
		if err := k.AddRule(c); err != nil {
			panic(err)
		}
	}
	return k
}

// TestGroundersAgree is the flagship equivalence test: batch, Tuffy-T,
// ProbKB-p (MPP with views), and ProbKB-pn (MPP without) must produce the
// same fact closure and the same factor multiset on random KBs.
func TestGroundersAgree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := randomKB(rand.New(rand.NewSource(seed + 1000)))

		batch, err := Ground(k, Options{})
		if err != nil {
			t.Fatalf("seed %d batch: %v", seed, err)
		}

		tg, err := NewTuffy(k, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tuffy, err := tg.Ground()
		if err != nil {
			t.Fatalf("seed %d tuffy: %v", seed, err)
		}

		cluster := mpp.NewCluster(3)
		mg, err := NewMPP(k, Options{}, cluster, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mppViews, err := mg.Ground()
		if err != nil {
			t.Fatalf("seed %d mpp+views: %v", seed, err)
		}

		mgn, err := NewMPP(k, Options{}, mpp.NewCluster(2), false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mppNoViews, err := mgn.Ground()
		if err != nil {
			t.Fatalf("seed %d mpp-noviews: %v", seed, err)
		}

		want := factSet(batch.Facts)
		for name, res := range map[string]*Result{
			"tuffy": tuffy, "mpp+views": mppViews, "mpp-noviews": mppNoViews,
		} {
			got := factSet(res.Facts)
			if len(got) != len(want) {
				t.Fatalf("seed %d: %s closure size %d, batch %d", seed, name, len(got), len(want))
			}
			for key := range want {
				if !got[key] {
					t.Fatalf("seed %d: %s missing fact %+v", seed, name, key)
				}
			}
		}

		wantF := factorMultiset(t, batch)
		for name, res := range map[string]*Result{
			"tuffy": tuffy, "mpp+views": mppViews, "mpp-noviews": mppNoViews,
		} {
			if got := factorMultiset(t, res); !factorsEqual(got, wantF) {
				t.Fatalf("seed %d: %s factor multiset differs (got %d kinds, want %d)",
					seed, name, len(got), len(wantF))
			}
		}
	}
}

// TestSemiNaiveEquivalence: semi-naive evaluation reaches exactly the
// naive fixpoint, facts and factors both, on random KBs.
func TestSemiNaiveEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		k := randomKB(rand.New(rand.NewSource(seed + 5000)))
		naive, err := Ground(k, Options{})
		if err != nil {
			t.Fatalf("seed %d naive: %v", seed, err)
		}
		semi, err := Ground(k, Options{SemiNaive: true})
		if err != nil {
			t.Fatalf("seed %d semi: %v", seed, err)
		}
		want := factSet(naive.Facts)
		got := factSet(semi.Facts)
		if len(got) != len(want) {
			t.Fatalf("seed %d: semi-naive closure %d facts, naive %d", seed, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("seed %d: semi-naive missing %+v", seed, key)
			}
		}
		if !factorsEqual(factorMultiset(t, naive), factorMultiset(t, semi)) {
			t.Fatalf("seed %d: factor multisets differ", seed)
		}
	}
}

// TestSemiNaiveWithConstraintHook: deletions force a naive fallback but
// the final closure still matches.
func TestSemiNaiveWithConstraintHook(t *testing.T) {
	k := paperKB(t)
	locatedIn, _ := k.RelDict.Lookup("located_in")
	hook := func(tpi *engine.Table) int {
		return tpi.DeleteWhere(func(r int) bool {
			return tpi.Int32Col(kb.TPiR)[r] == locatedIn
		})
	}
	naive, err := Ground(k, Options{MaxIterations: 5, ConstraintHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	semi, err := Ground(k, Options{MaxIterations: 5, ConstraintHook: hook, SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := factSet(naive.Facts)
	got := factSet(semi.Facts)
	if len(got) != len(want) {
		t.Fatalf("closures differ: %d vs %d", len(got), len(want))
	}
	for key := range want {
		if !got[key] {
			t.Fatalf("semi-naive missing %+v", key)
		}
	}
}

// TestSemiNaiveRearmsAfterRemoval: a constraint deletion must not
// disarm semi-naive evaluation for the rest of the run. The hook here
// fires on a fact naive joins keep re-deriving from the base, so the
// old row-offset delta (invalidated to -1 on any removal) degenerated
// into naive churn: the violation was re-derived and re-deleted every
// iteration and the run never converged. With the fact-ID watermark the
// deleted fact simply leaves the delta, the chain keeps deriving
// incrementally, and the run converges with exactly one deletion.
func TestSemiNaiveRearmsAfterRemoval(t *testing.T) {
	build := func() *kb.KB {
		k := kb.New()
		k.InternFact("r0", "a", "C", "b", "C", 0.9)
		rules := []string{"1.0 bad(x:C, y:C) :- r0(x:C, y:C)"}
		for i := 0; i < 6; i++ {
			rules = append(rules, fmt.Sprintf("1.0 r%d(x:C, y:C) :- r%d(x:C, y:C)", i+1, i))
		}
		for _, line := range rules {
			c, err := k.ParseRule(line)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if err := k.AddRule(c); err != nil {
				t.Fatal(err)
			}
		}
		return k
	}
	hookFor := func(k *kb.KB) func(*engine.Table) int {
		bad, ok := k.RelDict.Lookup("bad")
		if !ok {
			t.Fatal("no bad relation")
		}
		return func(tpi *engine.Table) int {
			return tpi.DeleteWhere(func(r int) bool {
				return tpi.Int32Col(kb.TPiR)[r] == bad
			})
		}
	}

	ks := build()
	semi, err := Ground(ks, Options{MaxIterations: 20, ConstraintHook: hookFor(ks), SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !semi.Converged {
		t.Fatalf("semi-naive run did not converge in %d iterations: the removal disarmed the delta", semi.Iterations)
	}
	// r1 and bad derive in iteration 1, r2..r6 one per iteration after
	// that; iteration 7 finds the empty delta and fixpoints.
	if semi.Iterations != 7 {
		t.Fatalf("iterations = %d, want 7", semi.Iterations)
	}
	deleted := 0
	for _, st := range semi.PerIteration {
		deleted += st.Deleted
	}
	if deleted != 1 {
		t.Fatalf("total deletions = %d, want 1 (re-derivation churn means the delta went naive)", deleted)
	}

	// The closure still matches the naive oracle (which churns: it
	// re-derives and re-deletes the violation every iteration until the
	// cap, ending on the same fact set).
	kn := build()
	naive, err := Ground(kn, Options{MaxIterations: 20, ConstraintHook: hookFor(kn)})
	if err != nil {
		t.Fatal(err)
	}
	want := factSet(naive.Facts)
	got := factSet(semi.Facts)
	if len(got) != len(want) {
		t.Fatalf("closures differ: semi %d facts, naive %d", len(got), len(want))
	}
	for key := range want {
		if !got[key] {
			t.Fatalf("semi-naive missing %+v", key)
		}
	}
}

// TestSemiNaiveChainDepth: a linear implication chain forces one new
// fact per iteration — the worst case for naive re-derivation and the
// best case for semi-naive deltas.
func TestSemiNaiveChainDepth(t *testing.T) {
	k := kb.New()
	k.InternFact("r0", "a", "C", "b", "C", 0.9)
	for i := 0; i < 12; i++ {
		line := fmt.Sprintf("1.0 r%d(x:C, y:C) :- r%d(x:C, y:C)", i+1, i)
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	semi, err := Ground(k, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if semi.InferredFacts() != 12 {
		t.Fatalf("chain closure = %d new facts, want 12", semi.InferredFacts())
	}
	if semi.Iterations != 13 {
		t.Fatalf("iterations = %d, want 13 (12 derivation steps + fixpoint check)", semi.Iterations)
	}
}

// TestExtendMatchesFullReground: incrementally extending a converged
// closure with new facts must reach the same fact set as regrounding the
// combined KB from scratch.
func TestExtendMatchesFullReground(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed + 9000))
		k := randomKB(rng)
		prev, err := Ground(k, Options{SkipFactors: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// New extractions: facts over the same vocabulary.
		full := k.Clone()
		var newFacts []kb.Fact
		for i := 0; i < 5; i++ {
			rel := rng.Int31n(int32(k.RelDict.Len()))
			f := kb.Fact{
				Rel: rel,
				X:   rng.Int31n(int32(k.Entities.Len())), XClass: rng.Int31n(int32(k.Classes.Len())),
				Y: rng.Int31n(int32(k.Entities.Len())), YClass: rng.Int31n(int32(k.Classes.Len())),
				W: 0.5,
			}
			newFacts = append(newFacts, f)
			full.AddFact(f)
		}

		inc, err := Extend(k, prev, newFacts, Options{SemiNaive: true})
		if err != nil {
			t.Fatalf("seed %d extend: %v", seed, err)
		}
		want, err := Ground(full, Options{})
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		got := factSet(inc.Facts)
		wantSet := factSet(want.Facts)
		if len(got) != len(wantSet) {
			t.Fatalf("seed %d: incremental closure %d facts, full %d", seed, len(got), len(wantSet))
		}
		for key := range wantSet {
			if !got[key] {
				t.Fatalf("seed %d: incremental missing %+v", seed, key)
			}
		}
	}
}

// TestExtendIsIncremental: extending with facts that derive nothing new
// converges after one cheap delta iteration.
func TestExtendIsIncremental(t *testing.T) {
	k := paperKB(t)
	prev, err := Ground(k, Options{SkipFactors: true})
	if err != nil {
		t.Fatal(err)
	}
	// A fact over a relation no rule consumes.
	iso := kb.Fact{
		Rel: k.RelDict.Intern("isolated"),
		X:   k.Entities.Intern("q"), XClass: k.Classes.Intern("Qc"),
		Y: k.Entities.Intern("r"), YClass: k.Classes.Intern("Qc"),
		W: 0.5,
	}
	inc, err := Extend(k, prev, []kb.Fact{iso}, Options{SemiNaive: true, SkipFactors: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Iterations != 1 || !inc.Converged {
		t.Fatalf("iterations = %d converged = %v; want 1, true", inc.Iterations, inc.Converged)
	}
	if inc.Facts.NumRows() != prev.Facts.NumRows()+1 {
		t.Fatalf("facts = %d, want prior+1", inc.Facts.NumRows())
	}
	// A duplicate of an existing fact adds nothing at all.
	dup := kb.FactAtRow(prev.Facts, 0)
	inc2, err := Extend(k, prev, []kb.Fact{dup}, Options{SemiNaive: true, SkipFactors: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc2.Facts.NumRows() != prev.Facts.NumRows() {
		t.Fatal("duplicate new fact was appended")
	}
}

func TestQueryCountScaling(t *testing.T) {
	k := paperKB(t)
	batch, err := Ground(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tg, _ := NewTuffy(k, Options{})
	tuffy, err := tg.Ground()
	if err != nil {
		t.Fatal(err)
	}
	// Batch: queries per iteration = non-empty partitions (2: M1, M3).
	// Tuffy: queries per iteration = number of rules (4).
	if got := batch.PerIteration[0].Queries; got != 2 {
		t.Fatalf("batch queries/iter = %d, want 2", got)
	}
	if got := tuffy.PerIteration[0].Queries; got != 4 {
		t.Fatalf("tuffy queries/iter = %d, want 4", got)
	}
	if batch.Iterations != tuffy.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", batch.Iterations, tuffy.Iterations)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	k := paperKB(t)
	res, err := Ground(k, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	if res.Converged {
		t.Fatal("capped run should not report convergence")
	}
	// One iteration of the paper example infers all 3 facts (born_in
	// pairs drive everything), but convergence needs a second pass.
	if res.InferredFacts() != 3 {
		t.Fatalf("inferred after 1 iter = %d", res.InferredFacts())
	}
}

func TestSkipFactors(t *testing.T) {
	k := paperKB(t)
	res, err := Ground(k, Options{SkipFactors: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Factors != nil {
		t.Fatal("SkipFactors still produced factors")
	}
	if res.FactorQueries != 0 {
		t.Fatal("SkipFactors still counted factor queries")
	}
}

func TestConstraintHookRuns(t *testing.T) {
	k := paperKB(t)
	calls := 0
	locatedIn, _ := k.RelDict.Lookup("located_in")
	// Deleting only the derived head lets grounding re-derive it forever
	// (the paper's applyConstraints removes the *entity's* facts, body
	// included, so real runs terminate); cap the iterations here.
	res, err := Ground(k, Options{
		MaxIterations: 5,
		ConstraintHook: func(tpi *engine.Table) int {
			calls++
			// Delete every located_in fact as soon as it appears.
			return tpi.DeleteWhere(func(r int) bool {
				return tpi.Int32Col(kb.TPiR)[r] == locatedIn
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("constraint hook ran %d times, want 5", calls)
	}
	for key := range factSet(res.Facts) {
		if key.Rel == locatedIn {
			t.Fatal("deleted fact survived in final closure")
		}
	}
	if res.PerIteration[1].Deleted == 0 {
		t.Fatal("re-derived fact should be deleted again in iteration 2")
	}
}

func TestOnIterationCallback(t *testing.T) {
	k := paperKB(t)
	var iters []int
	_, err := Ground(k, Options{OnIteration: func(st IterStats) {
		iters = append(iters, st.Iteration)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) < 2 || iters[0] != 1 {
		t.Fatalf("iteration callbacks = %v", iters)
	}
}

func TestSingletonFactorsOnly(t *testing.T) {
	// A KB whose rules never fire still gets singleton factors.
	k := kb.New()
	k.InternFact("r", "a", "A", "b", "B", 0.7)
	c, err := k.ParseRule("1.0 p(x:Q, y:Q) :- q(x:Q, y:Q)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(c); err != nil {
		t.Fatal(err)
	}
	res, err := Ground(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InferredFacts() != 0 {
		t.Fatal("no rules should fire")
	}
	if res.Factors.NumRows() != 1 {
		t.Fatalf("factors = %d, want 1 singleton", res.Factors.NumRows())
	}
	if res.Factors.Int32Col(TPhiI2)[0] != engine.NullInt32 {
		t.Fatal("singleton factor should have NULL I2")
	}
}

func TestMPPAtomsPlanShapes(t *testing.T) {
	// ProbKB-p plans for length-3 rules use views (redistribute only the
	// small intermediate); ProbKB-pn plans broadcast the intermediate.
	k := paperKB(t)
	cluster := mpp.NewCluster(2)

	gp, err := NewMPP(k, Options{}, cluster, true)
	if err != nil {
		t.Fatal(err)
	}
	gp.load()
	planWith := gp.AtomsPlan(mln.P3)
	rw, bw := mpp.CountMotions(planWith)
	if bw != 0 {
		t.Fatalf("ProbKB-p plan broadcasts (%d); Figure 4 optimized plan must not", bw)
	}
	if rw == 0 {
		t.Fatal("ProbKB-p plan should redistribute the intermediate result")
	}

	gn, err := NewMPP(k, Options{}, mpp.NewCluster(2), false)
	if err != nil {
		t.Fatal(err)
	}
	gn.load()
	planWithout := gn.AtomsPlan(mln.P3)
	_, bn := mpp.CountMotions(planWithout)
	if bn == 0 {
		t.Fatal("ProbKB-pn plan should broadcast (Figure 4 unoptimized shape)")
	}
}

func TestGroundersEmptyRuleSet(t *testing.T) {
	k := kb.New()
	k.InternFact("r", "a", "A", "b", "B", 0.7)
	res, err := Ground(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InferredFacts() != 0 || !res.Converged {
		t.Fatal("empty rule set should converge immediately with no inferences")
	}
}
