package ground

import (
	"context"
	"fmt"
	"sort"
	"time"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/obs"
)

// DefaultLocalDepth is the proof-depth bound a LocalQuery with Depth 0
// gets: deep enough for the chained derivations the paper's rule sets
// produce, shallow enough that the local closure stays small.
const DefaultLocalDepth = 3

// LocalQuery asks for the local proof graph of one atom Rel(X, Y),
// everything dictionary-encoded (the caller resolves names read-only so
// concurrent queries never mutate the KB's dictionaries).
type LocalQuery struct {
	Rel  int32
	X, Y int32
	// Depth bounds the proof: only rules within Depth hops of Rel in
	// the clause-incidence graph participate, and the closure loop
	// runs at most Depth iterations. 0 means DefaultLocalDepth.
	Depth int
	// Radius bounds the evidence: base facts whose entities lie within
	// Radius hops of {X, Y} in the fact graph seed the grounding. 0
	// means Depth+1. Like Depth it trades completeness for locality;
	// both generous yields the full proof graph of the atom.
	Radius int
}

// LocalResult is a local grounding: a self-contained Result over the
// seed facts (original fact IDs preserved; locally derived facts get
// fresh IDs past the seed's maximum) plus the query bookkeeping.
type LocalResult struct {
	*Result
	// RulesReachable counts the rules backward-reachable from the query
	// relation within the depth bound.
	RulesReachable int
	// SeedFacts counts the base facts the entity ball contributed.
	SeedFacts int
	// TargetRows lists the rows of Facts matching (Rel, X, Y) — entity
	// classes are not constrained, so one atom may match several typed
	// facts. Empty when the atom is neither observed nor derivable
	// within the bounds.
	TargetRows []int
}

// LocalGrounder grounds query-local proof graphs: the ProPPR-style
// alternative to the global fixpoint, for "what is P(fact)?" lookups
// that cannot afford full-KB cost. Built once per fact set, it indexes
// the base evidence by entity; each Ground call then selects the rules
// reachable from the query relation, collects the base facts around
// the query entities, and runs the ordinary batched closure + factor
// phases (Algorithm 1) over just that slice.
//
// A LocalGrounder is immutable after construction and safe for
// concurrent Ground calls: every query grounds into its own tables.
type LocalGrounder struct {
	clauses []mln.Clause
	// byRel maps a relation to the indices of every clause mentioning
	// it (head or body) — the clause-incidence graph rule selection
	// walks.
	byRel map[int32][]int
	// base holds the evidence rows (TΠ-shaped, weights included);
	// byEntity maps an entity to the base rows mentioning it.
	base     *engine.Table
	byEntity map[int32][]int32
	opts     Options
}

// NewLocal indexes the rule set and a TΠ-shaped evidence table for
// local grounding. The table is captured by reference and must not be
// mutated afterwards. Options supply Workers and SemiNaive; per-call
// knobs (context, iteration cap) come from the LocalQuery.
func NewLocal(rules []mln.Clause, base *engine.Table, opts Options) *LocalGrounder {
	lg := &LocalGrounder{
		clauses:  rules,
		byRel:    make(map[int32][]int),
		base:     base,
		byEntity: make(map[int32][]int32),
		opts:     opts,
	}
	for i, c := range rules {
		rels := map[int32]bool{c.Head.Rel: true}
		for _, b := range c.Body {
			rels[b.Rel] = true
		}
		for r := range rels {
			lg.byRel[r] = append(lg.byRel[r], i)
		}
	}
	xs := base.Int32Col(kb.TPiX)
	ys := base.Int32Col(kb.TPiY)
	for r := 0; r < base.NumRows(); r++ {
		lg.byEntity[xs[r]] = append(lg.byEntity[xs[r]], int32(r))
		if ys[r] != xs[r] {
			lg.byEntity[ys[r]] = append(lg.byEntity[ys[r]], int32(r))
		}
	}
	return lg
}

// reachable selects the clauses within depth hops of rel in the
// clause-incidence graph (level 0 = clauses mentioning rel itself), in
// original rule order, plus the set of relations any of them mention —
// the only relations whose facts can participate locally. Backward
// edges (rel in a clause head) supply the atom's derivations; forward
// edges (rel in a body) supply the downstream factors the atom's
// marginal depends on — an MLN's factors are undirected, so both
// directions shape P(atom).
func (lg *LocalGrounder) reachable(rel int32, depth int) ([]mln.Clause, map[int32]bool) {
	rels := map[int32]bool{rel: true}
	selected := map[int]bool{}
	frontier := []int32{rel}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []int32
		for _, r := range frontier {
			for _, ci := range lg.byRel[r] {
				if selected[ci] {
					continue
				}
				selected[ci] = true
				c := lg.clauses[ci]
				for _, a := range append([]mln.Atom{c.Head}, c.Body...) {
					if !rels[a.Rel] {
						rels[a.Rel] = true
						next = append(next, a.Rel)
					}
				}
			}
		}
		frontier = next
	}
	idx := make([]int, 0, len(selected))
	for ci := range selected {
		idx = append(idx, ci)
	}
	sort.Ints(idx)
	out := make([]mln.Clause, len(idx))
	for i, ci := range idx {
		out[i] = lg.clauses[ci]
	}
	return out, rels
}

// entityBall collects the base rows reachable from the query entities
// within radius hops of the fact graph, restricted to relations that
// can appear in a local proof. Rows come back sorted (deterministic
// seed tables).
func (lg *LocalGrounder) entityBall(x, y int32, radius int, rels map[int32]bool) []int32 {
	relCol := lg.base.Int32Col(kb.TPiR)
	xs := lg.base.Int32Col(kb.TPiX)
	ys := lg.base.Int32Col(kb.TPiY)

	visited := map[int32]bool{x: true, y: true}
	rows := map[int32]bool{}
	frontier := []int32{x, y}
	if y == x {
		frontier = frontier[:1]
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []int32
		for _, e := range frontier {
			for _, r := range lg.byEntity[e] {
				if !rels[relCol[r]] || rows[r] {
					continue
				}
				rows[r] = true
				other := xs[r]
				if other == e {
					other = ys[r]
				}
				if !visited[other] {
					visited[other] = true
					next = append(next, other)
				}
			}
		}
		frontier = next
	}
	out := make([]int32, 0, len(rows))
	for r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Ground grounds the query atom's local proof graph: restricted rule
// partitions, an entity-ball seed table, then the standard closure and
// factor phases capped at the depth bound. The result is self-contained
// — its fact IDs agree with the evidence table on seed rows and are
// fresh for locally derived facts — and never touches the global
// fixpoint or the shared evidence table.
func (lg *LocalGrounder) Ground(ctx context.Context, q LocalQuery) (*LocalResult, error) {
	depth := q.Depth
	if depth <= 0 {
		depth = DefaultLocalDepth
	}
	radius := q.Radius
	if radius <= 0 {
		radius = depth + 1
	}

	ctx, span := obs.StartSpan(ctx, "ground-local")
	defer span.End()

	loadStart := time.Now()
	clauses, rels := lg.reachable(q.Rel, depth)
	parts, err := mln.Build(clauses)
	if err != nil {
		// The clauses came from a validated rule set; a shape failure
		// here is a programming error, but surface it rather than panic.
		return nil, fmt.Errorf("ground: local partitions: %w", err)
	}
	seedRows := lg.entityBall(q.X, q.Y, radius, rels)
	tpi := engine.NewTable("T_local", kb.FactsSchema())
	tpi.AppendRowsFrom(lg.base, seedRows)
	ix := newFactIndex(tpi)

	res := &Result{BaseFacts: tpi.NumRows()}
	res.LoadTime = time.Since(loadStart)

	opts := lg.opts
	opts.Ctx = ctx
	opts.MaxIterations = depth
	opts.ConstraintHook = nil
	opts.SkipFactors = false
	opts.OnIteration = nil
	opts.Observer = nil
	opts.Journal = nil
	g := &BatchGrounder{parts: parts, opts: opts}
	out, err := g.groundFrom(tpi, ix, -1, res)
	if err != nil {
		return nil, err
	}

	lres := &LocalResult{Result: out, RulesReachable: len(clauses), SeedFacts: len(seedRows)}
	relCol := out.Facts.Int32Col(kb.TPiR)
	xs := out.Facts.Int32Col(kb.TPiX)
	ys := out.Facts.Int32Col(kb.TPiY)
	for r := 0; r < out.Facts.NumRows(); r++ {
		if relCol[r] == q.Rel && xs[r] == q.X && ys[r] == q.Y {
			lres.TargetRows = append(lres.TargetRows, r)
		}
	}
	span.SetAttr("rules", len(clauses))
	span.SetAttr("seed_facts", len(seedRows))
	span.SetAttr("local_facts", out.Facts.NumRows())
	return lres, nil
}
