// Package top implements the data layer of `probkb top`: a minimal
// parser for the Prometheus text exposition format (the only format
// the server's /metrics speaks), counter-rate computation between two
// scrapes, and histogram quantile estimation from cumulative bucket
// counts — enough to render a live qps / latency / in-flight view
// without importing a metrics client library.
package top

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is one exposition line: a metric name, its label set, and a
// value. Histogram bucket lines keep their _bucket suffix and le label.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is one parsed /metrics response plus when it was taken.
type Scrape struct {
	Time    time.Time
	Samples []Sample
}

// Parse reads a Prometheus text exposition stream. Comment lines
// (# HELP, # TYPE) and blank lines are skipped; malformed sample lines
// are an error so a misconfigured -addr fails loudly rather than
// rendering zeros.
func Parse(r io.Reader, at time.Time) (*Scrape, error) {
	sc := &Scrape{Time: at}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		if err := parseLabels(line[i+1:end], s.Labels); err != nil {
			return s, fmt.Errorf("malformed labels in %q: %w", line, err)
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	// The value is the first field after the name/labels; an optional
	// timestamp field may follow and is ignored.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return fmt.Errorf("expected key=%q pair at %q", "value", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value at %q", s)
		}
		into[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// Value sums every series of the metric; ok reports whether any series
// matched. Summing collapses label splits (e.g. per-path counters) into
// the server-wide total a top view wants.
func (sc *Scrape) Value(name string) (v float64, ok bool) {
	for _, s := range sc.Samples {
		if s.Name == name {
			v += s.Value
			ok = true
		}
	}
	return v, ok
}

// Buckets aggregates the metric's cumulative histogram buckets across
// all label sets, keyed by upper bound (le). The +Inf bucket is keyed
// by math.Inf(1).
func (sc *Scrape) Buckets(name string) map[float64]float64 {
	out := map[float64]float64{}
	for _, s := range sc.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		out[le] += s.Value
	}
	return out
}

// Rate returns the per-second increase of a (summed) counter between
// two scrapes; ok is false when either scrape lacks the metric or no
// time passed. A counter reset (restart) reads as a negative delta and
// reports 0.
func Rate(prev, cur *Scrape, name string) (float64, bool) {
	pv, pok := prev.Value(name)
	cv, cok := cur.Value(name)
	dt := cur.Time.Sub(prev.Time).Seconds()
	if !pok || !cok || dt <= 0 {
		return 0, false
	}
	if cv < pv {
		return 0, true
	}
	return (cv - pv) / dt, true
}

// DeltaBuckets subtracts prev's cumulative bucket counts from cur's,
// yielding the interval histogram. Bounds missing from prev count as 0.
func DeltaBuckets(prev, cur *Scrape, name string) map[float64]float64 {
	p, c := prev.Buckets(name), cur.Buckets(name)
	out := make(map[float64]float64, len(c))
	for le, v := range c {
		d := v - p[le]
		if d < 0 {
			d = 0
		}
		out[le] = d
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) from cumulative bucket
// counts, interpolating linearly inside the crossing bucket — the same
// estimate Prometheus's histogram_quantile gives. It returns NaN for an
// empty histogram; a quantile landing in the +Inf bucket reports the
// highest finite bound.
func Quantile(buckets map[float64]float64, q float64) float64 {
	bounds := make([]float64, 0, len(buckets))
	for le := range buckets {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	if len(bounds) == 0 {
		return math.NaN()
	}
	total := buckets[bounds[len(bounds)-1]]
	if total <= 0 {
		return math.NaN()
	}
	target := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, le := range bounds {
		cum := buckets[le]
		if cum >= target {
			if math.IsInf(le, 1) {
				return prevBound
			}
			if cum == prevCum {
				return le
			}
			return prevBound + (le-prevBound)*(target-prevCum)/(cum-prevCum)
		}
		prevBound, prevCum = le, cum
	}
	return prevBound
}
