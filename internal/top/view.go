package top

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"
)

// QueryRow mirrors one entry of the server's /debug/queries listing.
type QueryRow struct {
	ID      string        `json:"id"`
	Kind    string        `json:"kind"`
	Text    string        `json:"query"`
	Phase   string        `json:"phase"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Rows    int64         `json:"rows"`
}

// Client polls one probkb-server for the top view.
type Client struct {
	Base string // e.g. "http://localhost:8080"
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Metrics fetches and parses /metrics.
func (c *Client) Metrics() (*Scrape, error) {
	resp, err := c.http().Get(c.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return Parse(resp.Body, time.Now())
}

// IncidentRow mirrors one entry of the server's /debug/incidents
// listing.
type IncidentRow struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Detector string    `json:"detector"`
	Summary  string    `json:"summary"`
	QueryID  string    `json:"query_id"`
}

// Incidents fetches the watchdog incident list from /debug/incidents
// (newest first).
func (c *Client) Incidents() ([]IncidentRow, error) {
	resp, err := c.http().Get(c.Base + "/debug/incidents")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/incidents: %s", resp.Status)
	}
	var payload struct {
		Incidents []IncidentRow `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return payload.Incidents, nil
}

// Incident fetches one full incident report as raw JSON.
func (c *Client) Incident(id string) (json.RawMessage, error) {
	resp, err := c.http().Get(c.Base + "/debug/incidents/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/incidents/%s: %s", id, resp.Status)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Queries fetches the in-flight query list from /debug/queries.
func (c *Client) Queries() ([]QueryRow, error) {
	resp, err := c.http().Get(c.Base + "/debug/queries")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/queries: %s", resp.Status)
	}
	var payload struct {
		Queries []QueryRow `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return payload.Queries, nil
}

// Render draws one frame of the top view. prev may be nil (first poll):
// rates and interval quantiles then fall back to lifetime cumulative
// values, marked with a trailing '*'. incidents is the newest-first
// /debug/incidents listing; the frame shows the count and the latest
// one.
func Render(prev, cur *Scrape, queries []QueryRow, incidents []IncidentRow) string {
	var b strings.Builder

	qps, latBuckets, cumulative := "-", cur.Buckets("probkb_http_request_seconds"), true
	if prev != nil {
		if r, ok := Rate(prev, cur, "probkb_http_requests_total"); ok {
			qps = fmt.Sprintf("%.1f", r)
		}
		if d := DeltaBuckets(prev, cur, "probkb_http_request_seconds"); sumInf(d) > 0 {
			latBuckets, cumulative = d, false
		}
	}
	p50 := fmtSeconds(Quantile(latBuckets, 0.50), cumulative)
	p99 := fmtSeconds(Quantile(latBuckets, 0.99), cumulative)

	inFlight, _ := cur.Value("probkb_queries_in_flight")
	gibbs, hasGibbs := cur.Value("probkb_infer_samples_per_second")
	goroutines, _ := cur.Value("probkb_go_goroutines")
	heap, _ := cur.Value("probkb_go_heap_bytes")
	slow, _ := cur.Value("probkb_slow_queries_total")
	// Admission-control sheds (summed over paths) and the serving
	// tier's current epoch generation — a climbing gen with flat
	// rejected is the healthy read-while-expand signature.
	rejected, _ := cur.Value("probkb_http_rejected_total")
	gen, hasGen := cur.Value("probkb_epoch_generation")

	fmt.Fprintf(&b, "probkb top  %s\n\n", cur.Time.Format("15:04:05"))
	fmt.Fprintf(&b, "  qps %-8s  p50 %-10s  p99 %-10s  in-flight %d  rejected %d  slow %d",
		qps, p50, p99, int(inFlight), int(rejected), int(slow))
	if hasGen {
		fmt.Fprintf(&b, "  gen %d", int(gen))
	}
	b.WriteString("\n")
	gs := "-"
	if hasGibbs {
		gs = fmt.Sprintf("%.0f", gibbs)
	}
	fmt.Fprintf(&b, "  gibbs %s samples/s   goroutines %d   heap %s\n",
		gs, int(goroutines), fmtBytes(heap))
	// Streaming-ingest row, shown once the server has absorbed a batch:
	// absorption rate over the poll interval, lifetime totals, current
	// firehose queue depth, and marginal staleness in batches.
	if facts, ok := cur.Value("probkb_ingest_facts_total"); ok && facts > 0 {
		fps := "-"
		if prev != nil {
			if r, ok := Rate(prev, cur, "probkb_ingest_facts_total"); ok {
				fps = fmt.Sprintf("%.0f", r)
			}
		}
		batches, _ := cur.Value("probkb_ingest_batches_total")
		refreshes, _ := cur.Value("probkb_ingest_refreshes_total")
		qdepth, _ := cur.Value("probkb_ingest_queue_depth")
		stale, _ := cur.Value("probkb_ingest_staleness_batches")
		fmt.Fprintf(&b, "  ingest %s facts/s   %d facts in %d batches   %d refreshes   queue %d   stale %d\n",
			fps, int64(facts), int64(batches), int64(refreshes), int(qdepth), int(stale))
	}
	if len(incidents) == 0 {
		b.WriteString("  incidents 0\n\n")
	} else {
		last := incidents[0]
		age := cur.Time.Sub(last.Time).Round(time.Second)
		fmt.Fprintf(&b, "  incidents %d   last %s %s (%s ago): %s\n\n",
			len(incidents), last.ID, last.Detector, age, last.Summary)
	}

	if len(queries) == 0 {
		b.WriteString("  no in-flight queries\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-5s %-9s %-8s %10s %10s  %s\n", "ID", "KIND", "PHASE", "ELAPSED", "ROWS", "QUERY")
	for _, q := range queries {
		text := q.Text
		if len(text) > 60 {
			text = text[:57] + "..."
		}
		fmt.Fprintf(&b, "  %-5s %-9s %-8s %10s %10d  %s\n",
			q.ID, q.Kind, q.Phase, q.Elapsed.Round(time.Millisecond), q.Rows, text)
	}
	return b.String()
}

// sumInf returns the +Inf bucket's count — the total observations.
func sumInf(buckets map[float64]float64) float64 {
	return buckets[math.Inf(1)]
}

func fmtSeconds(s float64, cumulative bool) string {
	if math.IsNaN(s) {
		return "-"
	}
	out := time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
	if cumulative {
		out += "*"
	}
	return out
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%.0fB", v)
}
