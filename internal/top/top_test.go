package top

import (
	"math"
	"strings"
	"testing"
	"time"
)

const exposition = `# HELP probkb_http_requests_total HTTP requests served.
# TYPE probkb_http_requests_total counter
probkb_http_requests_total{path="/sql",code="200"} 40
probkb_http_requests_total{path="/metrics",code="200"} 10
# TYPE probkb_queries_in_flight gauge
probkb_queries_in_flight 3
# TYPE probkb_http_rejected_total counter
probkb_http_rejected_total{path="/sql"} 4
probkb_http_rejected_total{path="/query"} 3
# TYPE probkb_epoch_generation gauge
probkb_epoch_generation 6
# TYPE probkb_http_request_seconds histogram
probkb_http_request_seconds_bucket{path="/sql",le="0.1"} 50
probkb_http_request_seconds_bucket{path="/sql",le="1"} 90
probkb_http_request_seconds_bucket{path="/sql",le="+Inf"} 100
probkb_http_request_seconds_sum{path="/sql"} 12.5
probkb_http_request_seconds_count{path="/sql"} 100
probkb_build_info{goversion="go1.23",version="v1 \"quoted\""} 1
`

func parseFixture(t *testing.T, text string, at time.Time) *Scrape {
	t.Helper()
	sc, err := Parse(strings.NewReader(text), at)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestParseValueAndLabels(t *testing.T) {
	sc := parseFixture(t, exposition, time.Unix(0, 0))
	if v, ok := sc.Value("probkb_http_requests_total"); !ok || v != 50 {
		t.Errorf("requests_total: got (%v, %v), want summed 50", v, ok)
	}
	if v, ok := sc.Value("probkb_queries_in_flight"); !ok || v != 3 {
		t.Errorf("in_flight: got (%v, %v), want 3", v, ok)
	}
	if _, ok := sc.Value("probkb_nonexistent"); ok {
		t.Error("nonexistent metric reported ok")
	}
	var build *Sample
	for i := range sc.Samples {
		if sc.Samples[i].Name == "probkb_build_info" {
			build = &sc.Samples[i]
		}
	}
	if build == nil {
		t.Fatal("build_info not parsed")
	}
	if got := build.Labels["version"]; got != `v1 "quoted"` {
		t.Errorf("escaped label: got %q", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"probkb_x{le=\"0.1\" 5\n", // unterminated label block
		"probkb_x 1.2.3\n",        // malformed value
		"probkb_x{le=0.1} 5\n",    // unquoted label value
		"probkb_requests_total\n", // missing value
	} {
		if _, err := Parse(strings.NewReader(bad), time.Unix(0, 0)); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestBucketsAggregateAcrossLabels(t *testing.T) {
	text := `probkb_h_bucket{path="/a",le="1"} 5
probkb_h_bucket{path="/b",le="1"} 7
probkb_h_bucket{path="/a",le="+Inf"} 10
probkb_h_bucket{path="/b",le="+Inf"} 10
`
	sc := parseFixture(t, text, time.Unix(0, 0))
	b := sc.Buckets("probkb_h")
	if b[1] != 12 || b[math.Inf(1)] != 20 {
		t.Errorf("aggregated buckets: got %v", b)
	}
}

func TestRate(t *testing.T) {
	prev := parseFixture(t, "probkb_c_total 100\n", time.Unix(100, 0))
	cur := parseFixture(t, "probkb_c_total 150\n", time.Unix(110, 0))
	if r, ok := Rate(prev, cur, "probkb_c_total"); !ok || r != 5 {
		t.Errorf("Rate: got (%v, %v), want 5/s", r, ok)
	}
	// Counter reset (server restart) must read as 0, not negative.
	reset := parseFixture(t, "probkb_c_total 10\n", time.Unix(120, 0))
	if r, ok := Rate(cur, reset, "probkb_c_total"); !ok || r != 0 {
		t.Errorf("Rate after reset: got (%v, %v), want 0", r, ok)
	}
	if _, ok := Rate(prev, cur, "probkb_missing"); ok {
		t.Error("Rate of missing metric reported ok")
	}
}

func TestQuantile(t *testing.T) {
	buckets := map[float64]float64{0.1: 50, 1: 90, math.Inf(1): 100}
	// p50 = 100*0.5 = 50 observations: exactly the 0.1 bound.
	if got := Quantile(buckets, 0.50); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("p50: got %v, want 0.1", got)
	}
	// p75 = 75 obs: 25/40 of the way through (0.1, 1].
	want := 0.1 + 0.9*25/40
	if got := Quantile(buckets, 0.75); math.Abs(got-want) > 1e-9 {
		t.Errorf("p75: got %v, want %v", got, want)
	}
	// A quantile landing in +Inf clamps to the highest finite bound.
	if got := Quantile(buckets, 0.999); got != 1 {
		t.Errorf("p99.9: got %v, want clamp to 1", got)
	}
	if got := Quantile(map[float64]float64{}, 0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram: got %v, want NaN", got)
	}
}

func TestDeltaBuckets(t *testing.T) {
	prev := parseFixture(t, `probkb_h_bucket{le="1"} 10
probkb_h_bucket{le="+Inf"} 20
`, time.Unix(0, 0))
	cur := parseFixture(t, `probkb_h_bucket{le="1"} 15
probkb_h_bucket{le="+Inf"} 32
`, time.Unix(10, 0))
	d := DeltaBuckets(prev, cur, "probkb_h")
	if d[1] != 5 || d[math.Inf(1)] != 12 {
		t.Errorf("delta: got %v", d)
	}
}

func TestRenderFrame(t *testing.T) {
	prev := parseFixture(t, exposition, time.Unix(100, 0))
	cur := parseFixture(t, strings.ReplaceAll(exposition,
		`probkb_http_requests_total{path="/sql",code="200"} 40`,
		`probkb_http_requests_total{path="/sql",code="200"} 90`), time.Unix(110, 0))
	frame := Render(prev, cur, []QueryRow{
		{ID: "q7", Kind: "sql", Text: "SELECT * FROM T", Phase: "run", Elapsed: 1500 * time.Millisecond, Rows: 42},
	}, []IncidentRow{
		{ID: "i2", Time: cur.Time.Add(-90 * time.Second), Detector: "stuck_query", Summary: "query q7 stuck"},
		{ID: "i1", Time: cur.Time.Add(-5 * time.Minute), Detector: "wal_growth", Summary: "wal runaway"},
	})
	for _, want := range []string{"qps 5.0", "in-flight 3", "rejected 7", "gen 6",
		"q7", "SELECT * FROM T", "run",
		"incidents 2", "i2 stuck_query (1m30s ago): query q7 stuck"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// First poll: no prev, rates unavailable, cumulative quantiles marked *.
	first := Render(nil, cur, nil, nil)
	if !strings.Contains(first, "qps -") || !strings.Contains(first, "*") {
		t.Errorf("first frame should mark cumulative fallback:\n%s", first)
	}
	if !strings.Contains(first, "no in-flight queries") {
		t.Errorf("first frame missing empty-query note:\n%s", first)
	}
	if !strings.Contains(first, "incidents 0") {
		t.Errorf("first frame missing incident count:\n%s", first)
	}
	// No ingest metrics in the fixture: the ingest row stays hidden.
	if strings.Contains(frame, "ingest") {
		t.Errorf("ingest row rendered without ingest metrics:\n%s", frame)
	}
}

func TestRenderIngestRow(t *testing.T) {
	const ingestMetrics = `# TYPE probkb_ingest_facts_total counter
probkb_ingest_facts_total 1000
# TYPE probkb_ingest_batches_total counter
probkb_ingest_batches_total 40
# TYPE probkb_ingest_refreshes_total counter
probkb_ingest_refreshes_total 5
# TYPE probkb_ingest_queue_depth gauge
probkb_ingest_queue_depth 17
# TYPE probkb_ingest_staleness_batches gauge
probkb_ingest_staleness_batches 3
`
	prev := parseFixture(t, exposition+ingestMetrics, time.Unix(100, 0))
	cur := parseFixture(t, exposition+strings.ReplaceAll(ingestMetrics,
		"probkb_ingest_facts_total 1000",
		"probkb_ingest_facts_total 1500"), time.Unix(110, 0))
	frame := Render(prev, cur, nil, nil)
	for _, want := range []string{"ingest 50 facts/s", "1500 facts in 40 batches",
		"5 refreshes", "queue 17", "stale 3"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}
