package infer

import (
	"context"
	"errors"
	"testing"
	"time"

	"probkb/internal/obs"
)

// TestMarginalsContextCancel cancels the sampler mid-run (from the
// per-sweep callback) and checks the partial contract: a context error,
// a positive collected count, and marginals normalized over the sweeps
// actually collected — all well inside a second.
func TestMarginalsContextCancel(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := graphFromFactors(t, 4, [][4]any{
			{0, null, null, 1.0},
			{1, 0, null, 1.5},
			{2, 1, null, 0.5},
			{3, null, null, -0.5},
		})
		ctx, cancel := context.WithCancel(context.Background())
		opts := Options{Burnin: 10, Samples: 1_000_000, Seed: 1, Parallel: parallel}
		opts.OnIteration = func(st SweepStats) {
			if st.Sweep >= opts.Burnin+20 {
				cancel()
			}
		}
		start := time.Now()
		probs, collected, err := MarginalsContext(ctx, g, opts)
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("parallel=%v: cancellation took %v, want < 1s", parallel, elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: err = %v, want context.Canceled", parallel, err)
		}
		if collected < 20 || collected >= opts.Samples {
			t.Fatalf("parallel=%v: collected = %d, want a partial positive count", parallel, collected)
		}
		if len(probs) != g.NumVars() {
			t.Fatalf("parallel=%v: %d marginals for %d vars", parallel, len(probs), g.NumVars())
		}
		for v, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("parallel=%v: marginal[%d] = %v not normalized over collected sweeps", parallel, v, p)
			}
		}
	}
}

// TestMarginalsContextCancelledBeforeStart returns no marginals when the
// context is already dead.
func TestMarginalsContextCancelledBeforeStart(t *testing.T) {
	g := graphFromFactors(t, 1, [][4]any{{0, null, null, 1.0}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probs, collected, err := MarginalsContext(ctx, g, Options{Burnin: 5, Samples: 50, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if probs != nil || collected != 0 {
		t.Fatalf("probs = %v collected = %d, want none", probs, collected)
	}
}

// TestSamplesPerSecondGaugeResets checks that the live throughput gauge
// does not keep its last in-flight value after the chain ends — neither
// on completion nor on cancellation.
func TestSamplesPerSecondGaugeResets(t *testing.T) {
	gauge := obs.Default.Gauge("probkb_infer_samples_per_second")
	g := graphFromFactors(t, 2, [][4]any{
		{0, null, null, 1.0},
		{1, 0, null, 0.5},
	})
	Marginals(g, Options{Burnin: 10, Samples: 200, Seed: 1})
	if v := gauge.Value(); v != 0 {
		t.Fatalf("gauge = %v after a completed run, want 0", v)
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Burnin: 5, Samples: 1_000_000, Seed: 1}
	opts.OnIteration = func(st SweepStats) {
		if st.Sweep >= 20 {
			cancel()
		}
	}
	if _, _, err := MarginalsContext(ctx, g, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("gauge = %v after a cancelled run, want 0", v)
	}
}
