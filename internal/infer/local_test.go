package infer

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestLocalMarginalOracle: the neighborhood Gibbs estimate of every
// variable must match the exact enumeration oracle — with an unbounded
// radius the subgraph is the variable's whole connected component,
// whose marginal equals the full graph's.
func TestLocalMarginalOracle(t *testing.T) {
	for seed := int64(300); seed < 304; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 3+rng.Intn(8))
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Burnin: 500, Samples: 8000, Seed: seed}
		for v := range exact {
			res, err := LocalMarginalContext(context.Background(), g, int32(v), 0, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(res.Probability - exact[v]); d > oracleTol {
				t.Errorf("seed %d var %d: local %v vs exact %v (|Δ|=%v, %d vars sampled)",
					seed, v, res.Probability, exact[v], d, res.Vars)
			}
			if res.Collected == 0 || res.Vars == 0 {
				t.Errorf("seed %d var %d: empty local run %+v", seed, v, res)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// A bounded radius must still produce a sane probability, and the
// neighborhood must be no larger than the full graph.
func TestLocalMarginalBoundedRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 10)
	res, err := LocalMarginalContext(context.Background(), g, 0, 1, Options{Burnin: 50, Samples: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability < 0 || res.Probability > 1 {
		t.Fatalf("probability = %v", res.Probability)
	}
	if res.Vars > g.NumVars() {
		t.Fatalf("neighborhood has %d vars, graph only %d", res.Vars, g.NumVars())
	}
}

func TestLocalMarginalBadTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(t, rng, 4)
	if _, err := LocalMarginalContext(context.Background(), g, 99, 0, Options{}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := LocalMarginalContext(context.Background(), g, -1, 0, Options{}); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestLocalMarginalCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(t, rng, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := LocalMarginalContext(ctx, g, 0, 0, Options{Burnin: 100, Samples: 1000, Seed: 1})
	if err == nil {
		t.Fatal("cancelled context produced no error")
	}
	if res.Collected != 0 {
		// Partial estimates are allowed, but a pre-cancelled context
		// should not have collected anything.
		t.Fatalf("collected %d sweeps on a pre-cancelled context", res.Collected)
	}
}
