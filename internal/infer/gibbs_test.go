package infer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probkb/internal/engine"
	"probkb/internal/factor"
	"probkb/internal/ground"
	"probkb/internal/kb"
)

// graphFromFactors builds a Graph over n variables with the given factor
// rows, going through the public table constructors.
func graphFromFactors(t *testing.T, n int, rows [][4]any) *factor.Graph {
	t.Helper()
	facts := engine.NewTable("T", kb.FactsSchema())
	for i := 0; i < n; i++ {
		facts.AppendRow(i, 0, i, 0, i, 0, engine.NullFloat64())
	}
	factors := engine.NewTable("TPhi", ground.FactorSchema())
	for _, r := range rows {
		factors.AppendRow(r[0], r[1], r[2], r[3])
	}
	g, err := factor.FromTables(facts, factors)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const null = engine.NullInt32

func TestSingleVariableMarginal(t *testing.T) {
	// One variable with a singleton weight w: P(X=1) = e^w / (1 + e^w).
	w := 1.2
	g := graphFromFactors(t, 1, [][4]any{{0, null, null, w}})
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(w) / (1 + math.Exp(w))
	if math.Abs(exact[0]-want) > 1e-12 {
		t.Fatalf("exact = %v, want %v", exact[0], want)
	}
	probs := Marginals(g, Options{Burnin: 200, Samples: 4000, Seed: 1})
	if math.Abs(probs[0]-want) > 0.03 {
		t.Fatalf("gibbs = %v, want ~%v", probs[0], want)
	}
}

func TestImplicationRaisesHeadMarginal(t *testing.T) {
	// X1 observed-ish (strong singleton), X0 ← X1 with positive weight:
	// P(X0) must exceed the no-rule baseline of 0.5.
	g := graphFromFactors(t, 2, [][4]any{
		{1, null, null, 3.0},
		{0, 1, null, 1.5},
	})
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if exact[0] <= 0.5 {
		t.Fatalf("head marginal %v should exceed 0.5", exact[0])
	}
	if exact[1] <= exact[0] {
		t.Fatalf("evidence var should be more probable than derived: %v vs %v", exact[1], exact[0])
	}
}

// randomGraph builds a random clause-factor graph with n vars.
func randomGraph(t *testing.T, rng *rand.Rand, n int) *factor.Graph {
	var rows [][4]any
	// Singletons for a few vars.
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			rows = append(rows, [4]any{v, null, null, rng.Float64()*3 - 1})
		}
	}
	// Clause factors.
	nf := 1 + rng.Intn(2*n)
	for i := 0; i < nf; i++ {
		head := rng.Intn(n)
		b1 := rng.Intn(n)
		if b1 == head {
			b1 = (b1 + 1) % n
		}
		if n > 2 && rng.Intn(2) == 0 {
			b2 := rng.Intn(n)
			if b2 == head || b2 == b1 {
				b2 = (head + b1 + 1) % n
			}
			if b2 != head && b2 != b1 {
				rows = append(rows, [4]any{head, b1, b2, rng.Float64() * 2})
				continue
			}
		}
		rows = append(rows, [4]any{head, b1, null, rng.Float64() * 2})
	}
	return graphFromFactors(t, n, rows)
}

func TestGibbsMatchesExactSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 3+rng.Intn(5))
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		probs := Marginals(g, Options{Burnin: 500, Samples: 8000, Seed: seed})
		for v := range exact {
			if math.Abs(probs[v]-exact[v]) > 0.05 {
				t.Fatalf("seed %d var %d: gibbs %v vs exact %v", seed, v, probs[v], exact[v])
			}
		}
	}
}

func TestGibbsMatchesExactChromatic(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 3+rng.Intn(5))
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		probs := Marginals(g, Options{Burnin: 500, Samples: 8000, Seed: seed, Parallel: true, Workers: 4})
		for v := range exact {
			if math.Abs(probs[v]-exact[v]) > 0.05 {
				t.Fatalf("seed %d var %d: chromatic %v vs exact %v", seed, v, probs[v], exact[v])
			}
		}
	}
}

// TestColoringValid: the greedy coloring never gives neighbors the same
// color, on random graphs.
func TestColoringValid(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(size)%12
		// Build inline to avoid needing *testing.T in the property.
		facts := engine.NewTable("T", kb.FactsSchema())
		for i := 0; i < n; i++ {
			facts.AppendRow(i, 0, i, 0, i, 0, engine.NullFloat64())
		}
		factors := engine.NewTable("TPhi", ground.FactorSchema())
		for i := 0; i < 2*n; i++ {
			h := rng.Intn(n)
			b := rng.Intn(n)
			if h == b {
				continue
			}
			factors.AppendRow(h, b, engine.NullInt32, 1.0)
		}
		g, err := factor.FromTables(facts, factors)
		if err != nil {
			return false
		}
		c := ColorGraph(g)
		if !c.Valid(g) {
			return false
		}
		// Classes partition the variables.
		seen := 0
		for _, cl := range c.Classes {
			seen += len(cl)
		}
		return seen == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 6)
	a := Marginals(g, Options{Burnin: 50, Samples: 200, Seed: 7})
	b := Marginals(g, Options{Burnin: 50, Samples: 200, Seed: 7})
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different marginals")
		}
	}
	// Chromatic with the same seed is deterministic under any worker
	// count (per-variable RNG streams).
	c1 := Marginals(g, Options{Burnin: 50, Samples: 200, Seed: 7, Parallel: true, Workers: 1})
	c4 := Marginals(g, Options{Burnin: 50, Samples: 200, Seed: 7, Parallel: true, Workers: 4})
	for v := range c1 {
		if c1[v] != c4[v] {
			t.Fatal("chromatic sampler not worker-count deterministic")
		}
	}
}

func TestExactBounds(t *testing.T) {
	facts := engine.NewTable("T", kb.FactsSchema())
	for i := 0; i < MaxExactVars+1; i++ {
		facts.AppendRow(i, 0, i, 0, i, 0, engine.NullFloat64())
	}
	factors := engine.NewTable("TPhi", ground.FactorSchema())
	g, err := factor.FromTables(facts, factors)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(g); err == nil {
		t.Fatal("Exact accepted an oversized graph")
	}
}

func TestEmptyGraph(t *testing.T) {
	facts := engine.NewTable("T", kb.FactsSchema())
	factors := engine.NewTable("TPhi", ground.FactorSchema())
	g, err := factor.FromTables(facts, factors)
	if err != nil {
		t.Fatal(err)
	}
	if probs := Marginals(g, Options{}); probs != nil {
		t.Fatal("empty graph should yield nil marginals")
	}
	if probs, err := Exact(g); err != nil || probs != nil {
		t.Fatal("empty graph exact should be nil")
	}
}

func TestApplyMarginals(t *testing.T) {
	facts := engine.NewTable("T", kb.FactsSchema())
	facts.AppendRow(0, 0, 0, 0, 0, 0, 0.9)                  // observed
	facts.AppendRow(1, 0, 1, 0, 1, 0, engine.NullFloat64()) // inferred
	g, err := factor.FromTables(facts, engine.NewTable("TPhi", ground.FactorSchema()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyMarginals(g, facts, []float64{0.1, 0.7}); err != nil {
		t.Fatal(err)
	}
	if facts.Float64Col(kb.TPiW)[0] != 0.9 {
		t.Fatal("observed weight overwritten")
	}
	if facts.Float64Col(kb.TPiW)[1] != 0.7 {
		t.Fatal("inferred weight not filled")
	}
	if err := ApplyMarginals(g, facts, []float64{0.1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// A NULL-weight fact missing from the graph is an error.
	facts.AppendRow(9, 0, 2, 0, 2, 0, engine.NullFloat64())
	if err := ApplyMarginals(g, facts, []float64{0.1, 0.7}); err == nil {
		t.Fatal("fact without a variable accepted")
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := sigmoid(100); s <= 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := sigmoid(-100); s >= 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
	// Symmetry.
	if math.Abs(sigmoid(2)+sigmoid(-2)-1) > 1e-12 {
		t.Fatal("sigmoid not symmetric")
	}
}

func TestEndToEndPipelineMarginals(t *testing.T) {
	// Ground the paper example, infer, and check that inferred facts get
	// probabilities in (0, 1) written back into TΠ.
	k := kb.New()
	k.InternFact("born_in", "RG", "Writer", "NYC", "City", 0.96)
	k.InternFact("born_in", "RG", "Writer", "Brooklyn", "Place", 0.93)
	for _, line := range []string{
		"1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)",
	} {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ground.Ground(k, ground.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := factor.FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	probs := Marginals(g, Options{Burnin: 200, Samples: 2000, Seed: 3})
	if err := ApplyMarginals(g, res.Facts, probs); err != nil {
		t.Fatal(err)
	}
	ws := res.Facts.Float64Col(kb.TPiW)
	for r := 0; r < res.Facts.NumRows(); r++ {
		if engine.IsNullFloat64(ws[r]) {
			t.Fatal("a fact still has NULL weight after ApplyMarginals")
		}
		if ws[r] < 0 || ws[r] > 1.6 {
			t.Fatalf("weight out of range: %v", ws[r])
		}
	}
	// Exact check: inferred marginals should agree with enumeration.
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if math.Abs(probs[v]-exact[v]) > 0.06 {
			t.Fatalf("var %d: gibbs %v vs exact %v", v, probs[v], exact[v])
		}
	}
}
